module bitspread

go 1.22
