package main

import (
	"strings"
	"testing"
)

func TestRunVoterWorstCase(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-rule", "voter", "-n", "128", "-z", "1", "-init", "worst", "-seed", "7"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "converged in") {
		t.Errorf("expected convergence report:\n%s", got)
	}
	if !strings.Contains(got, "rule=Voter(ℓ=1)") {
		t.Errorf("header missing:\n%s", got)
	}
}

func TestRunAdversarialInit(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-rule", "minority", "-ell", "3", "-n", "512", "-init", "adversarial", "-rounds", "200"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "adversarial instance") || !strings.Contains(got, "did not converge") {
		t.Errorf("adversarial run output:\n%s", got)
	}
}

func TestRunExplicitInitAndPlot(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-rule", "voter", "-n", "64", "-init", "32", "-rounds", "200", "-plot"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "X0=32") {
		t.Errorf("explicit init not applied:\n%s", out.String())
	}
}

func TestRunSequentialAndAgents(t *testing.T) {
	for _, mode := range []string{"sequential", "agents"} {
		var out strings.Builder
		err := run([]string{"-rule", "voter", "-n", "32", "-mode", mode, "-init", "worst"}, &out)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !strings.Contains(out.String(), "converged in") {
			t.Errorf("%s mode did not converge:\n%s", mode, out.String())
		}
	}
}

func TestRunAgentsSharded(t *testing.T) {
	runOnce := func() string {
		var out strings.Builder
		err := run([]string{"-rule", "voter", "-n", "64", "-mode", "agents",
			"-shards", "4", "-init", "worst", "-seed", "3"}, &out)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	got := runOnce()
	if !strings.Contains(got, "shards=4") {
		t.Errorf("header missing shard count:\n%s", got)
	}
	if !strings.Contains(got, "converged in") {
		t.Errorf("sharded agents run did not converge:\n%s", got)
	}
	if again := runOnce(); again != got {
		t.Errorf("same (seed, shards) produced different output:\n%s\nvs\n%s", got, again)
	}
}

func TestRunPackedAndChunkedModes(t *testing.T) {
	for _, mode := range []string{"packed", "chunked"} {
		runOnce := func() string {
			var out strings.Builder
			err := run([]string{"-rule", "voter", "-n", "256", "-mode", mode,
				"-shards", "3", "-init", "worst", "-seed", "5"}, &out)
			if err != nil {
				t.Fatalf("%s: %v", mode, err)
			}
			return out.String()
		}
		got := runOnce()
		if !strings.Contains(got, "shards=3") {
			t.Errorf("%s header missing shard count:\n%s", mode, got)
		}
		if !strings.Contains(got, "converged in") {
			t.Errorf("%s mode did not converge:\n%s", mode, got)
		}
		if again := runOnce(); again != got {
			t.Errorf("%s: same (seed, shards) produced different output:\n%s\nvs\n%s", mode, got, again)
		}
	}
}

func TestRunPackedShardLimit(t *testing.T) {
	// n=64 is a single bitset word, so any shard count above 1 cannot give
	// every shard a whole word and must be rejected, not clamped.
	for _, mode := range []string{"packed", "chunked"} {
		var out strings.Builder
		err := run([]string{"-rule", "voter", "-n", "64", "-mode", mode, "-shards", "2"}, &out)
		if err == nil {
			t.Fatalf("%s: oversubscribed shard count accepted", mode)
		}
		if !strings.Contains(err.Error(), "whole word") {
			t.Errorf("%s: error %q does not explain the word-ownership rule", mode, err)
		}
	}
}

func TestRunNoiseWarns(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-rule", "voter", "-n", "32", "-noise", "0.05", "-rounds", "50"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "warning") {
		t.Errorf("noise should warn about Prop 3:\n%s", out.String())
	}
}

func TestRunConflictMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-rule", "voter", "-n", "128", "-sources1", "3", "-sources0", "1", "-rounds", "2000"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "conflict mode") || !strings.Contains(got, "zealot-voter prediction 0.7500") {
		t.Errorf("conflict output:\n%s", got)
	}
}

func TestRunTraceOutput(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-rule", "voter", "-n", "32", "-init", "16", "-rounds", "30", "-trace", "10"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "round") {
		t.Errorf("trace lines missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-rule", "bogus"},
		{"-mode", "warp", "-n", "16"},
		{"-init", "not-a-number", "-n", "16"},
		{"-schedule", "bogus"},
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunTopologyMode(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-rule", "voter", "-n", "36", "-z", "1", "-topology", "torus", "-rounds", "200000"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "topology mode") || !strings.Contains(got, "torus") {
		t.Errorf("topology output:\n%s", got)
	}
	if !strings.Contains(got, "converged in") {
		t.Errorf("torus voter did not converge:\n%s", got)
	}
}

func TestRunTopologyUnknown(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-topology", "hypercube", "-n", "16"}, &out); err == nil {
		t.Error("unknown topology accepted")
	}
}
