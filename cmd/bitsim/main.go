// Command bitsim runs a single bit-dissemination instance and reports the
// outcome, optionally tracing or plotting the one-count trajectory.
//
// Examples:
//
//	bitsim -rule voter -ell 1 -n 65536 -z 1 -init worst
//	bitsim -rule minority -schedule sqrtnlogn -n 65536 -init worst -trace 1
//	bitsim -rule minority -ell 3 -n 4096 -init adversarial -rounds 10000 -plot
//	bitsim -rule voter -n 1024 -sources1 3 -sources0 1 -rounds 20000   (zealots)
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"bitspread/internal/cli"
	"bitspread/internal/engine"
	"bitspread/internal/graph"
	"bitspread/internal/obs"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
	"bitspread/internal/trace"
	"bitspread/internal/vm"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bitsim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) (err error) {
	fs := flag.NewFlagSet("bitsim", flag.ContinueOnError)
	var prof obs.Profile
	prof.Register(fs)
	var (
		metricsPath = fs.String("metrics", "", `write a Prometheus-style metrics snapshot at exit ("-": stdout; standard mode only)`)
		ruleName    = fs.String("rule", "voter", "update rule: "+cli.RuleNames())
		vmPath      = fs.String("vm", "", "run a bytecode rule instead of -rule: path to a .bsvm program or assembly text (see bitevolve -out)")
		ell         = fs.Int("ell", 1, "sample size ℓ (fixed schedule)")
		schedule    = fs.String("schedule", "fixed", "sample-size schedule: fixed, sqrtnlogn, logn, power")
		coeff       = fs.Float64("coeff", 1, "schedule coefficient")
		alpha       = fs.Float64("alpha", 0.5, "power-schedule exponent")
		delta       = fs.Float64("delta", 0.1, "tilt for -rule biased / laziness for -rule lazy")
		threshold   = fs.Int("threshold", 1, "threshold for -rule follower")
		n           = fs.Int64("n", 1024, "population size (including sources)")
		z           = fs.Int("z", 1, "correct opinion held by the source")
		initSpec    = fs.String("init", "worst", "initial configuration: worst, balanced, adversarial, or an explicit count")
		mode        = fs.String("mode", "parallel", "activation model: parallel, sequential, agents, packed, chunked, aggregated")
		shards      = fs.Int("shards", 1, "agent-engine shards (mode=agents/packed/chunked; deterministic per seed+shards)")
		unpacked    = fs.Bool("unpacked", false, "force the historical byte-per-opinion agent engine (mode=agents)")
		rounds      = fs.Int64("rounds", 0, "round cap (0: default O(n log n))")
		seed        = fs.Uint64("seed", 1, "random seed")
		every       = fs.Int64("trace", 0, "print the one-count every k rounds (0: off)")
		plot        = fs.Bool("plot", false, "print a terminal plot of the trajectory")
		noise       = fs.Float64("noise", 0, "post-decision flip probability (failure injection)")
		sources1    = fs.Int64("sources1", 0, "stubborn 1-sources (conflict mode when >0 together with -sources0)")
		sources0    = fs.Int64("sources0", 0, "stubborn 0-sources (conflict mode)")
		topology    = fs.String("topology", "", "restrict sampling to a graph: ring, ring4, torus, star, gnp (empty: the paper's complete graph)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer func() {
		if perr := prof.Stop(); perr != nil && err == nil {
			err = perr
		}
	}()

	sched, err := cli.BuildSchedule(*schedule, *ell, *coeff, *alpha)
	if err != nil {
		return err
	}
	var rule *protocol.Rule
	if *vmPath != "" {
		var prog *vm.Program
		rule, prog, err = cli.LoadVMRule(*vmPath)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "vm rule %s (address %s, ell=%d)\n", prog.Name, prog.Address(), prog.Ell)
	} else {
		rule, err = cli.BuildRule(*ruleName, sched.Of(*n), *delta, *threshold)
		if err != nil {
			return err
		}
	}
	if *noise > 0 {
		rule = protocol.WithNoise(rule, *noise)
	}

	if *sources1 > 0 || *sources0 > 0 {
		return runConflict(w, rule, *n, *sources1, *sources0, *rounds, *seed, *plot)
	}
	if *topology != "" {
		return runTopology(w, *topology, rule, *n, *z, *rounds, *seed, *plot)
	}

	cfg := engine.Config{N: *n, Rule: rule, Z: *z, MaxRounds: *rounds}
	switch *initSpec {
	case "worst":
		cfg.X0 = engine.WorstCaseInit(*n, *z)
	case "balanced":
		cfg.X0 = engine.BalancedInit(*n, *z)
	case "adversarial":
		adv, consts := engine.AdversarialConfig(rule, *n, *rounds)
		cfg = adv
		fmt.Fprintf(w, "adversarial instance: z=%d, X0=%d (proof constants a1=%.3f a2=%.3f a3=%.3f)\n",
			cfg.Z, cfg.X0, consts.A1, consts.A2, consts.A3)
	default:
		if _, err := fmt.Sscan(*initSpec, &cfg.X0); err != nil {
			return fmt.Errorf("bad -init %q: %w", *initSpec, err)
		}
	}

	recorder := trace.ForBudget(*n, cfg.MaxRounds, 64)
	if cfg.MaxRounds == 0 {
		recorder = trace.ForBudget(*n, engine.DefaultMaxRounds(*n), 64)
	}
	hook := recorder.Hook
	if *every > 0 {
		step := *every
		hook = func(round, count int64) {
			recorder.Hook(round, count)
			if round%step == 0 {
				fmt.Fprintf(w, "round %8d  ones %8d  (%.4f)\n", round, count, float64(count)/float64(*n))
			}
		}
	}
	cfg.Record = hook
	var reg *obs.Registry
	if *metricsPath != "" {
		reg = obs.NewRegistry()
		cfg.Probe = obs.NewMetrics(reg)
	}

	shardNote := ""
	switch *mode {
	case "agents", "packed", "chunked":
		if *shards > 1 {
			shardNote = fmt.Sprintf("  shards=%d", *shards)
		}
	}
	fmt.Fprintf(w, "rule=%v  n=%d  z=%d  X0=%d  mode=%s  seed=%d%s\n",
		rule, cfg.N, cfg.Z, cfg.X0, *mode, *seed, shardNote)
	if err := rule.CheckProp3(); err != nil {
		fmt.Fprintf(w, "warning: %v — the run cannot stabilize\n", err)
	}

	g := rng.New(*seed)
	var res engine.Result
	switch *mode {
	case "parallel":
		res, err = engine.RunParallel(cfg, g)
	case "sequential":
		res, err = engine.RunSequential(cfg, g)
	case "agents":
		res, err = engine.RunAgents(cfg, engine.AgentOptions{Shards: *shards, Unpacked: *unpacked}, g)
	case "packed", "chunked":
		// These modes request an explicit bitset body, so an unsatisfiable
		// shard count is an error rather than the silent clamp of -mode
		// agents: a packed shard must own at least one whole 64-bit word.
		if max := engine.MaxPackedShards(cfg.N); *shards > max {
			return fmt.Errorf("-shards %d exceeds the bitset limit for n=%d: a shard must own at least one whole word (max %d)",
				*shards, cfg.N, max)
		}
		res, err = engine.RunAgents(cfg, engine.AgentOptions{Shards: *shards, Chunked: *mode == "chunked"}, g)
	case "aggregated", "aggregate":
		res, err = engine.RunAggregated(cfg, g)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		return err
	}

	if res.Converged {
		fmt.Fprintf(w, "converged in %d parallel rounds (%d activations)\n", res.Rounds, res.Activations)
	} else {
		fmt.Fprintf(w, "did not converge within %d rounds (final ones: %d)\n", res.Rounds, res.FinalCount)
	}
	if res.HitWrongConsensus {
		fmt.Fprintln(w, "the run visited the all-wrong configuration")
	}
	if *plot && recorder.Len() > 0 {
		fmt.Fprint(w, recorder.Plot(12))
	}
	return obs.WriteSnapshot(reg, *metricsPath, w)
}

// runConflict handles the stubborn-sources mode (§1.3): no consensus is
// absorbing, so the run executes a fixed horizon and reports mixing
// statistics instead of a convergence time.
func runConflict(w io.Writer, rule *protocol.Rule, n, s1, s0, rounds int64, seed uint64, plot bool) error {
	if rounds <= 0 {
		rounds = 10_000
	}
	recorder := trace.ForBudget(n, rounds, 64)
	res, err := engine.RunConflict(engine.ConflictConfig{
		N:        n,
		Rule:     rule,
		Sources1: s1,
		Sources0: s0,
		X0:       (s1 + n - s0) / 2,
		Rounds:   rounds,
		Record:   recorder.Hook,
	}, rng.New(seed))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "conflict mode: rule=%v  n=%d  stubborn(1)=%d  stubborn(0)=%d  rounds=%d\n",
		rule, n, s1, s0, rounds)
	fmt.Fprintf(w, "time-average fraction of ones: %.4f", res.MeanFraction)
	if s1+s0 > 0 {
		fmt.Fprintf(w, "  (zealot-voter prediction %.4f)", float64(s1)/float64(s1+s0))
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "consensus visits: %d (with opposed sources, stabilization is impossible)\n", res.ConsensusVisits)
	if plot && recorder.Len() > 0 {
		fmt.Fprint(w, recorder.Plot(12))
	}
	return nil
}

// runTopology handles graph-restricted sampling (-topology): the run
// starts from the all-wrong configuration on the chosen structure.
func runTopology(w io.Writer, spec string, rule *protocol.Rule, n int64, z int, rounds int64, seed uint64, plot bool) error {
	g := rng.New(seed)
	var (
		topo graph.Topology
		err  error
	)
	switch spec {
	case "ring":
		topo, err = graph.NewRing(int(n), 1)
	case "ring4":
		topo, err = graph.NewRing(int(n), 4)
	case "torus":
		side := int(math.Round(math.Sqrt(float64(n))))
		topo, err = graph.NewTorus(side, side)
	case "star":
		topo, err = graph.NewStar(int(n))
	case "gnp":
		p := 4 * math.Log(float64(n)) / float64(n)
		topo, err = graph.NewErdosRenyi(int(n), p, g)
	default:
		return fmt.Errorf("unknown topology %q (want ring, ring4, torus, star, gnp)", spec)
	}
	if err != nil {
		return err
	}
	size := int64(topo.Size())
	if rounds <= 0 {
		rounds = 16 * size * size // rings can genuinely need Θ(n²)
	}
	recorder := trace.ForBudget(size, rounds, 64)
	res, err := graph.Run(graph.Config{
		Topology:    topo,
		Rule:        rule,
		Z:           z,
		InitialOnes: 0,
		MaxRounds:   rounds,
		Record:      recorder.Hook,
	}, g)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "topology mode: rule=%v  %s  z=%d  all-wrong start  seed=%d\n",
		rule, topo.Name(), z, seed)
	if res.Converged {
		fmt.Fprintf(w, "converged in %d rounds\n", res.Rounds)
	} else {
		fmt.Fprintf(w, "did not converge within %d rounds (final ones: %d)\n", res.Rounds, res.FinalOnes)
	}
	if plot && recorder.Len() > 0 {
		fmt.Fprint(w, recorder.Plot(12))
	}
	return nil
}
