package main

import (
	"strings"
	"testing"
)

func TestRunMinorityPortrait(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-rule", "minority", "-ell", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"rule: Minority(ℓ=3)",
		"Proposition 3: satisfied",
		"roots in [0,1]",
		"Case 1",
		"proof constants",
		"drift portrait",
		"attracting",
		"repelling",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunVoterZeroBias(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-rule", "voter", "-ell", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "F ≡ 0") {
		t.Errorf("voter should report the zero bias:\n%s", out.String())
	}
}

func TestRunAntiVoterViolation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-rule", "antivoter", "-ell", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "VIOLATED") {
		t.Errorf("antivoter should report a Prop 3 violation:\n%s", out.String())
	}
}

func TestRunUnknownRule(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-rule", "bogus"}, &out); err == nil {
		t.Error("unknown rule accepted")
	}
}

func TestSignGlyphs(t *testing.T) {
	if got := signGlyphs([]int{1, -1, 0}); got != "+ - 0" {
		t.Errorf("signGlyphs = %q", got)
	}
}

func TestNarrowWidthClamps(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-rule", "minority", "-ell", "3", "-width", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "|F|max") {
		t.Errorf("portrait footer missing:\n%s", out.String())
	}
}
