// Command bitbias prints the bias-polynomial analysis of a rule — the
// paper's Section 4 machinery as a tool: F_n(p) in closed form, its roots
// in [0,1] with the sign pattern between them, the Theorem 12 proof case,
// the derived (a₁,a₂,a₃) constants, and an ASCII drift portrait.
//
// Examples:
//
//	bitbias -rule minority -ell 3
//	bitbias -rule majority -ell 5
//	bitbias -rule biased -ell 4 -delta -0.05
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"bitspread/internal/bias"
	"bitspread/internal/cli"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bitbias:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bitbias", flag.ContinueOnError)
	var (
		ruleName  = fs.String("rule", "minority", "update rule: "+cli.RuleNames())
		ell       = fs.Int("ell", 3, "sample size ℓ")
		delta     = fs.Float64("delta", 0.1, "tilt for -rule biased / laziness for -rule lazy")
		threshold = fs.Int("threshold", 1, "threshold for -rule follower")
		width     = fs.Int("width", 61, "portrait width (grid points across [0,1])")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rule, err := cli.BuildRule(*ruleName, *ell, *delta, *threshold)
	if err != nil {
		return err
	}

	a := bias.For(rule)
	fmt.Fprintf(w, "rule: %v\n", rule)
	g0, g1 := rule.Tables()
	fmt.Fprintf(w, "g[0]: %v\ng[1]: %v\n", g0, g1)
	if err := rule.CheckProp3(); err != nil {
		fmt.Fprintf(w, "Proposition 3: VIOLATED (%v)\n", err)
	} else {
		fmt.Fprintln(w, "Proposition 3: satisfied (consensus absorbing)")
	}

	fmt.Fprintf(w, "\nF(p) = %v\n", a.F())
	if a.IsZero() {
		fmt.Fprintln(w, "F ≡ 0: the Lemma 11 regime (driftless, like the Voter)")
	} else {
		fmt.Fprintf(w, "roots in [0,1]: %v\n", a.Roots())
		fmt.Fprintf(w, "sign pattern:   %v\n", signGlyphs(a.Signs()))
		fmt.Fprintln(w, "fixed points of the mean-field map p ↦ p + F(p):")
		for _, fp := range a.Fixpoints() {
			fmt.Fprintf(w, "  p = %-8.4g %-11s (F' = %+.4g)\n", fp.P, fp.Stability, a.DriftDerivative(fp.P))
		}
	}
	fmt.Fprintf(w, "Theorem 12 case: %v\n", a.Classify())

	c, ok := a.ProofConstants()
	if ok {
		fmt.Fprintf(w, "proof constants: a1=%.4f a2=%.4f a3=%.4f, adversarial z=%d, X0/n=%.4f\n",
			c.A1, c.A2, c.A3, c.Z, c.X0Frac)
	} else {
		fmt.Fprintf(w, "Lemma 11 constants: a1=%.2f a2=%.2f a3=%.2f, z=%d, X0/n=%.3f\n",
			c.A1, c.A2, c.A3, c.Z, c.X0Frac)
	}

	fmt.Fprintln(w, "\ndrift portrait (column p, value F(p); '+' up, '-' down):")
	printPortrait(w, a, *width)
	return nil
}

func signGlyphs(signs []int) string {
	parts := make([]string, len(signs))
	for i, s := range signs {
		switch {
		case s > 0:
			parts[i] = "+"
		case s < 0:
			parts[i] = "-"
		default:
			parts[i] = "0"
		}
	}
	return strings.Join(parts, " ")
}

// printPortrait renders F across [0,1] as a signed bar chart.
func printPortrait(w io.Writer, a *bias.Analysis, width int) {
	if width < 11 {
		width = 11
	}
	maxAbs := 0.0
	vals := make([]float64, width)
	for i := range vals {
		p := float64(i) / float64(width-1)
		vals[i] = a.Drift(p)
		if v := abs(vals[i]); v > maxAbs {
			maxAbs = v
		}
	}
	const rows = 9 // odd: a middle zero line
	half := rows / 2
	//bitlint:floatexact axis-scaling guard; only a bit-exact zero magnitude would divide by zero
	if maxAbs == 0 {
		maxAbs = 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for i, v := range vals {
		lvl := int(v / maxAbs * float64(half))
		switch {
		case lvl > 0:
			for r := half - lvl; r < half; r++ {
				grid[r][i] = '+'
			}
		case lvl < 0:
			for r := half + 1; r <= half-lvl && r < rows; r++ {
				grid[r][i] = '-'
			}
		}
		grid[half][i] = '.'
	}
	for _, row := range grid {
		fmt.Fprintf(w, "  %s\n", row)
	}
	fmt.Fprintf(w, "  p=0%sp=1   (|F|max = %.4g)\n", strings.Repeat(" ", width-6), maxAbs)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
