// Command bitlint runs the repo's static-contract suite (internal/analysis)
// over a set of packages and fails when any unsuppressed diagnostic
// remains. It is the machine check behind `make lint`: determinism
// (detrand, maporder), probability-domain (probrange), numeric-comparison
// (floatcmp), and fail-fast (validatefirst) contracts all gate CI here
// instead of living only in comments and dynamic suites.
//
// Usage:
//
//	bitlint [-json] [-show-suppressed] [packages...]
//
// Packages default to ./... and accept any `go list` pattern. The exit
// status is non-zero when an unsuppressed diagnostic is found, so the
// tool slots directly into Makefiles. -json emits every diagnostic —
// including suppressed ones with their justifications — as one JSON
// document for tooling; the human mode prints vet-style lines.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"bitspread/internal/analysis"
)

// errViolations distinguishes lint findings from operational failures.
var errViolations = errors.New("bitlint: unsuppressed diagnostics")

// jsonDiag is the stable -json wire form of one diagnostic.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

// jsonReport is the top-level -json document.
type jsonReport struct {
	Packages     []string   `json:"packages"`
	Diagnostics  []jsonDiag `json:"diagnostics"`
	Unsuppressed int        `json:"unsuppressed"`
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bitlint", flag.ContinueOnError)
	fs.SetOutput(w)
	jsonOut := fs.Bool("json", false, "emit diagnostics (including suppressed ones) as JSON")
	showSuppressed := fs.Bool("show-suppressed", false, "also print suppressed diagnostics with their justifications")
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	if err := fs.Parse(args); err != nil {
		return err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		return err
	}
	analyzers := analysis.All()

	var diags []analysis.Diagnostic
	pkgPaths := make([]string, 0, len(pkgs))
	for _, pkg := range pkgs {
		pkgPaths = append(pkgPaths, pkg.PkgPath)
		ds, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			return err
		}
		diags = append(diags, ds...)
	}
	sort.Strings(pkgPaths)

	unsuppressed := 0
	for _, d := range diags {
		if !d.Suppressed {
			unsuppressed++
		}
	}

	if *jsonOut {
		rep := jsonReport{Packages: pkgPaths, Diagnostics: []jsonDiag{}, Unsuppressed: unsuppressed}
		for _, d := range diags {
			rep.Diagnostics = append(rep.Diagnostics, jsonDiag{
				File:       d.Pos.Filename,
				Line:       d.Pos.Line,
				Column:     d.Pos.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
				Reason:     d.Reason,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			if d.Suppressed && !*showSuppressed {
				continue
			}
			if d.Suppressed {
				fmt.Fprintf(w, "%s: suppressed [%s]: %s (%s)\n", d.Pos, d.Reason, d.Message, d.Analyzer)
			} else {
				fmt.Fprintln(w, d)
			}
		}
	}

	if unsuppressed > 0 {
		return fmt.Errorf("%w: %d finding(s) across %d package(s)", errViolations, unsuppressed, len(pkgs))
	}
	if !*jsonOut {
		fmt.Fprintf(w, "bitlint: %d package(s) clean (%d suppressed justification(s))\n",
			len(pkgs), len(diags)-unsuppressed)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
