// Command bitlint runs the repo's static-contract suite (internal/analysis)
// over a set of packages and fails when any unsuppressed diagnostic
// remains. It is the machine check behind `make lint`: determinism
// (detrand, maporder, taintdet), probability-domain (probrange),
// numeric-comparison (floatcmp), fail-fast (validatefirst),
// cancellation (ctxloop), crash-safety (errsink), and data-race
// (atomicmix) contracts all gate CI here instead of living only in
// comments and dynamic suites.
//
// Usage:
//
//	bitlint [-json] [-show-suppressed] [-baseline FILE] [-write-baseline FILE] [-suppression-audit] [packages...]
//
// Packages default to ./... and accept any `go list` pattern. The exit
// status is non-zero when an unsuppressed diagnostic is found, so the
// tool slots directly into Makefiles. -json emits every diagnostic —
// including suppressed ones with their justifications — as one JSON
// document for tooling, with SARIF-style tool/rule metadata; the human
// mode prints vet-style lines.
//
// -write-baseline FILE snapshots the current unsuppressed findings as a
// sorted line-per-finding file; -baseline FILE then fails only on
// findings NOT in the snapshot, so the suite can be adopted on a tree
// with known debt and still block regressions. Baseline keys omit line
// numbers deliberately: unrelated edits that shift a known finding must
// not resurrect it.
//
// -suppression-audit lists every //bitlint: justification in the tree
// (file, analyzer, reason) and fails if any directive has an empty
// reason — the audit that keeps suppressions honest.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"bitspread/internal/analysis"
)

// errViolations distinguishes lint findings from operational failures.
var errViolations = errors.New("bitlint: unsuppressed diagnostics")

// jsonDiag is the stable -json wire form of one diagnostic.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
}

// jsonTool and jsonRule are the SARIF-style driver metadata: enough for a
// converter to produce a conformant sarif run without re-deriving the
// rule table from source.
type jsonTool struct {
	Name    string     `json:"name"`
	Version string     `json:"version"`
	Rules   []jsonRule `json:"rules"`
}

type jsonRule struct {
	ID  string `json:"id"`
	Doc string `json:"doc"`
}

// jsonReport is the top-level -json document. Tool was added for bitlint
// v2; earlier fields are unchanged so existing consumers keep working.
type jsonReport struct {
	Tool         jsonTool   `json:"tool"`
	Packages     []string   `json:"packages"`
	Diagnostics  []jsonDiag `json:"diagnostics"`
	Unsuppressed int        `json:"unsuppressed"`
}

// baselineKey renders one finding as its baseline line. Line and column
// are omitted so unrelated edits that move a known finding do not
// resurrect it; file, analyzer, and message identify it well enough in
// practice because messages embed the symbol names involved.
func baselineKey(d analysis.Diagnostic) string {
	return d.Pos.Filename + "\t" + d.Analyzer + "\t" + d.Message
}

// readBaseline loads a baseline file into a set of finding keys.
func readBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bitlint: baseline: %w", err)
	}
	set := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			set[line] = true
		}
	}
	return set, nil
}

// writeBaseline snapshots the unsuppressed findings, sorted and
// deduplicated, one key per line.
func writeBaseline(path string, diags []analysis.Diagnostic) (int, error) {
	seen := map[string]bool{}
	var keys []string
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		if k := baselineKey(d); !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := strings.Join(keys, "\n")
	if out != "" {
		out += "\n"
	}
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		return 0, fmt.Errorf("bitlint: baseline: %w", err)
	}
	return len(keys), nil
}

// emptyReasonDiag recognizes the diagnostic the suite reports for a
// //bitlint: directive that carries no justification text.
func emptyReasonDiag(d analysis.Diagnostic) bool {
	return strings.Contains(d.Message, "directive needs a justification")
}

// suppressionAudit lists every suppression with its justification and
// fails when any directive has an empty reason.
func suppressionAudit(w io.Writer, diags []analysis.Diagnostic) error {
	empty := 0
	suppressed := 0
	for _, d := range diags {
		if emptyReasonDiag(d) {
			empty++
			fmt.Fprintf(w, "%s: EMPTY REASON: %s\n", d.Pos, d.Message)
			continue
		}
		if d.Suppressed {
			suppressed++
			fmt.Fprintf(w, "%s: [%s] %s\n", d.Pos, d.Analyzer, d.Reason)
		}
	}
	fmt.Fprintf(w, "bitlint: %d suppression(s), %d with empty reasons\n", suppressed, empty)
	if empty > 0 {
		return fmt.Errorf("%w: %d suppression directive(s) without a justification", errViolations, empty)
	}
	return nil
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bitlint", flag.ContinueOnError)
	fs.SetOutput(w)
	jsonOut := fs.Bool("json", false, "emit diagnostics (including suppressed ones) as JSON")
	showSuppressed := fs.Bool("show-suppressed", false, "also print suppressed diagnostics with their justifications")
	dir := fs.String("C", ".", "directory to resolve package patterns in")
	baseline := fs.String("baseline", "", "fail only on findings not present in this baseline file")
	writeBaselineTo := fs.String("write-baseline", "", "write the sorted unsuppressed-finding snapshot to this file and exit")
	audit := fs.Bool("suppression-audit", false, "list every //bitlint: suppression with its justification; fail on empty reasons")
	if err := fs.Parse(args); err != nil {
		return err
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		return err
	}
	analyzers := analysis.All()

	var diags []analysis.Diagnostic
	pkgPaths := make([]string, 0, len(pkgs))
	for _, pkg := range pkgs {
		pkgPaths = append(pkgPaths, pkg.PkgPath)
		ds, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			return err
		}
		diags = append(diags, ds...)
	}
	sort.Strings(pkgPaths)

	if *audit {
		return suppressionAudit(w, diags)
	}
	if *writeBaselineTo != "" {
		n, err := writeBaseline(*writeBaselineTo, diags)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "bitlint: wrote %d finding(s) to %s\n", n, *writeBaselineTo)
		return nil
	}

	known := map[string]bool{}
	if *baseline != "" {
		if known, err = readBaseline(*baseline); err != nil {
			return err
		}
	}

	unsuppressed, baselined := 0, 0
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		if known[baselineKey(d)] {
			baselined++
			continue
		}
		unsuppressed++
	}

	if *jsonOut {
		rep := jsonReport{
			Tool:         jsonTool{Name: "bitlint", Version: "2", Rules: []jsonRule{}},
			Packages:     pkgPaths,
			Diagnostics:  []jsonDiag{},
			Unsuppressed: unsuppressed,
		}
		for _, a := range analyzers {
			rep.Tool.Rules = append(rep.Tool.Rules, jsonRule{ID: a.Name, Doc: a.Doc})
		}
		for _, d := range diags {
			rep.Diagnostics = append(rep.Diagnostics, jsonDiag{
				File:       d.Pos.Filename,
				Line:       d.Pos.Line,
				Column:     d.Pos.Column,
				Analyzer:   d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
				Reason:     d.Reason,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			if d.Suppressed && !*showSuppressed {
				continue
			}
			switch {
			case d.Suppressed:
				fmt.Fprintf(w, "%s: suppressed [%s]: %s (%s)\n", d.Pos, d.Reason, d.Message, d.Analyzer)
			case known[baselineKey(d)]:
				// Baselined findings are known debt; the baseline file is
				// the ledger, so CI output stays signal-only.
			default:
				fmt.Fprintln(w, d)
			}
		}
	}

	if unsuppressed > 0 {
		return fmt.Errorf("%w: %d finding(s) across %d package(s)", errViolations, unsuppressed, len(pkgs))
	}
	if !*jsonOut {
		suffix := ""
		if baselined > 0 {
			suffix = fmt.Sprintf(", %d baselined finding(s)", baselined)
		}
		suppressedCount := 0
		for _, d := range diags {
			if d.Suppressed {
				suppressedCount++
			}
		}
		fmt.Fprintf(w, "bitlint: %d package(s) clean (%d suppressed justification(s)%s)\n",
			len(pkgs), suppressedCount, suffix)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
