package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCleanTree is the merge gate in miniature: the repo's own packages
// must carry zero unsuppressed bitlint diagnostics.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module for export data")
	}
	var out strings.Builder
	if err := run([]string{"-C", "../..", "./..."}, &out); err != nil {
		t.Fatalf("tree is not lint-clean: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "clean") {
		t.Errorf("expected clean summary, got:\n%s", out.String())
	}
}

// writeSeededModule creates a throwaway module whose internal/engine
// package violates detrand (math/rand import), floatcmp (p == 0.5), and
// maporder, to prove a violating diff fails the lint gate.
func writeSeededModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module seeded.example\n\ngo 1.22\n",
		"internal/engine/bad.go": `package engine

import "math/rand"

func step(p float64, m map[int]int) int {
	if p == 0.5 {
		return rand.Int()
	}
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestSeededViolationsFail(t *testing.T) {
	dir := writeSeededModule(t)
	var out strings.Builder
	err := run([]string{"-C", dir, "./..."}, &out)
	if err == nil {
		t.Fatalf("seeded violations not detected:\n%s", out.String())
	}
	if !errors.Is(err, errViolations) {
		t.Fatalf("expected lint findings, got operational error: %v", err)
	}
	got := out.String()
	for _, want := range []string{"detrand", "floatcmp", "maporder"} {
		if !strings.Contains(got, "("+want+")") {
			t.Errorf("missing %s finding in output:\n%s", want, got)
		}
	}
}

func TestJSONMode(t *testing.T) {
	dir := writeSeededModule(t)
	var out strings.Builder
	err := run([]string{"-C", dir, "-json", "./..."}, &out)
	if !errors.Is(err, errViolations) {
		t.Fatalf("expected lint findings, got: %v", err)
	}
	var rep struct {
		Packages     []string `json:"packages"`
		Unsuppressed int      `json:"unsuppressed"`
		Diagnostics  []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if rep.Unsuppressed == 0 || len(rep.Diagnostics) == 0 {
		t.Fatalf("expected diagnostics in JSON report, got %+v", rep)
	}
	analyzers := map[string]bool{}
	for _, d := range rep.Diagnostics {
		if d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		analyzers[d.Analyzer] = true
	}
	for _, want := range []string{"detrand", "floatcmp", "maporder"} {
		if !analyzers[want] {
			t.Errorf("JSON report missing %s diagnostics", want)
		}
	}
}

func TestBadPattern(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-C", "../..", "./no/such/dir/..."}, &out); err == nil {
		t.Error("expected error for unknown package pattern")
	}
}
