package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCleanTree is the merge gate in miniature: the repo's own packages
// must carry zero unsuppressed bitlint diagnostics.
func TestCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module for export data")
	}
	var out strings.Builder
	if err := run([]string{"-C", "../..", "./..."}, &out); err != nil {
		t.Fatalf("tree is not lint-clean: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "clean") {
		t.Errorf("expected clean summary, got:\n%s", out.String())
	}
}

// writeSeededModule creates a throwaway module that violates every
// analyzer family: detrand (math/rand import), floatcmp (p == 0.5),
// maporder, taintdet (time.Now into a Journal record), errsink (dropped
// *os.File Close), ctxloop (severed context and an unobserved loop), and
// atomicmix (mixed atomic/plain access) — to prove a violating diff
// fails the lint gate on each front.
func writeSeededModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module seeded.example\n\ngo 1.22\n",
		"internal/engine/bad.go": `package engine

import "math/rand"

func step(p float64, m map[int]int) int {
	if p == 0.5 {
		return rand.Int()
	}
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
`,
		"internal/sim/bad.go": `package sim

import (
	"os"
	"time"
)

type Journal struct{ lines []string }

func (j *Journal) Record(line string) {
	j.lines = append(j.lines, line)
}

func Leak(j *Journal) {
	stamp := time.Now().String()
	j.Record(stamp)
}

func Drop(f *os.File) {
	f.Close()
}
`,
		"internal/serve/bad.go": `package serve

import (
	"context"
	"sync/atomic"
)

var hits int64

func Spin(ctx context.Context, work chan int) {
	go helper(context.Background())
	for {
		<-work
	}
}

func helper(ctx context.Context) {}

func Bump() { atomic.AddInt64(&hits, 1) }

func Peek() int64 { return hits }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestSeededViolationsFail(t *testing.T) {
	dir := writeSeededModule(t)
	var out strings.Builder
	err := run([]string{"-C", dir, "./..."}, &out)
	if err == nil {
		t.Fatalf("seeded violations not detected:\n%s", out.String())
	}
	if !errors.Is(err, errViolations) {
		t.Fatalf("expected lint findings, got operational error: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"detrand", "floatcmp", "maporder",
		"taintdet", "errsink", "ctxloop", "atomicmix",
	} {
		if !strings.Contains(got, "("+want+")") {
			t.Errorf("missing %s finding in output:\n%s", want, got)
		}
	}
}

func TestJSONMode(t *testing.T) {
	dir := writeSeededModule(t)
	var out strings.Builder
	err := run([]string{"-C", dir, "-json", "./..."}, &out)
	if !errors.Is(err, errViolations) {
		t.Fatalf("expected lint findings, got: %v", err)
	}
	var rep struct {
		Packages     []string `json:"packages"`
		Unsuppressed int      `json:"unsuppressed"`
		Diagnostics  []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		} `json:"diagnostics"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if rep.Unsuppressed == 0 || len(rep.Diagnostics) == 0 {
		t.Fatalf("expected diagnostics in JSON report, got %+v", rep)
	}
	analyzers := map[string]bool{}
	for _, d := range rep.Diagnostics {
		if d.File == "" || d.Line == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		analyzers[d.Analyzer] = true
	}
	for _, want := range []string{
		"detrand", "floatcmp", "maporder",
		"taintdet", "errsink", "ctxloop", "atomicmix",
	} {
		if !analyzers[want] {
			t.Errorf("JSON report missing %s diagnostics", want)
		}
	}
}

// TestJSONRuleTable checks the SARIF-style tool metadata: every analyzer
// in the suite appears as a rule with its doc string.
func TestJSONRuleTable(t *testing.T) {
	dir := writeSeededModule(t)
	var out strings.Builder
	err := run([]string{"-C", dir, "-json", "./..."}, &out)
	if !errors.Is(err, errViolations) {
		t.Fatalf("expected lint findings, got: %v", err)
	}
	var rep struct {
		Tool struct {
			Name  string `json:"name"`
			Rules []struct {
				ID  string `json:"id"`
				Doc string `json:"doc"`
			} `json:"rules"`
		} `json:"tool"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("-json output does not parse: %v", err)
	}
	if rep.Tool.Name != "bitlint" {
		t.Errorf("tool name = %q, want bitlint", rep.Tool.Name)
	}
	if len(rep.Tool.Rules) != 9 {
		t.Errorf("rule table has %d entries, want 9", len(rep.Tool.Rules))
	}
	for _, r := range rep.Tool.Rules {
		if r.ID == "" || r.Doc == "" {
			t.Errorf("incomplete rule entry: %+v", r)
		}
	}
}

// TestBaselineRoundTrip proves -write-baseline then -baseline accepts the
// same tree, and that an emptied baseline resurrects the failures.
func TestBaselineRoundTrip(t *testing.T) {
	dir := writeSeededModule(t)
	baseline := filepath.Join(t.TempDir(), "baseline.txt")

	var out strings.Builder
	if err := run([]string{"-C", dir, "-write-baseline", baseline, "./..."}, &out); err != nil {
		t.Fatalf("-write-baseline failed: %v\n%s", err, out.String())
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 5 {
		t.Fatalf("baseline has %d lines, expected the seeded findings", len(lines))
	}
	if !sortedLines(lines) {
		t.Errorf("baseline is not sorted:\n%s", data)
	}

	out.Reset()
	if err := run([]string{"-C", dir, "-baseline", baseline, "./..."}, &out); err != nil {
		t.Fatalf("baselined tree should pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "baselined finding(s)") {
		t.Errorf("expected baselined-count summary, got:\n%s", out.String())
	}

	if err := os.WriteFile(baseline, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-C", dir, "-baseline", baseline, "./..."}, &out); !errors.Is(err, errViolations) {
		t.Fatalf("emptied baseline should fail with findings, got: %v", err)
	}
}

func sortedLines(lines []string) bool {
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			return false
		}
	}
	return true
}

// writeSuppressedModule seeds one justified suppression and one
// empty-reason directive for the audit tests.
func writeSuppressedModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module audited.example\n\ngo 1.22\n",
		"cmd/tool/f.go": `package main

import (
	"fmt"
	"time"
)

func main() {
	fmt.Println(time.Now()) //bitlint:wallclock demo fixture exercising the audit path
}
`,
		"internal/engine/f.go": `package engine

func count(m map[int]int) int {
	s := 0
	//bitlint:maporder
	for _, v := range m {
		s += v
	}
	return s
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestSuppressionAudit lists justifications and fails on the empty one.
func TestSuppressionAudit(t *testing.T) {
	dir := writeSuppressedModule(t)
	var out strings.Builder
	err := run([]string{"-C", dir, "-suppression-audit", "./..."}, &out)
	if !errors.Is(err, errViolations) {
		t.Fatalf("empty-reason directive should fail the audit, got: %v\n%s", err, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "demo fixture exercising the audit path") {
		t.Errorf("audit output missing the justified suppression:\n%s", got)
	}
	if !strings.Contains(got, "EMPTY REASON") {
		t.Errorf("audit output missing the empty-reason report:\n%s", got)
	}
}

// TestSuppressionAuditCleanTree runs the audit over the repo itself:
// every suppression in the tree must carry a justification.
func TestSuppressionAuditCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole module for export data")
	}
	var out strings.Builder
	if err := run([]string{"-C", "../..", "-suppression-audit", "./..."}, &out); err != nil {
		t.Fatalf("suppression audit failed on the repo: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "suppression(s), 0 with empty reasons") {
		t.Errorf("expected audit summary, got:\n%s", out.String())
	}
}

func TestBadPattern(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-C", "../..", "./no/such/dir/..."}, &out); err == nil {
		t.Error("expected error for unknown package pattern")
	}
}
