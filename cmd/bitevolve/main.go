// Command bitevolve runs the seeded evolutionary search over the bytecode
// rule space (internal/evolve on internal/vm genomes) and reports the best
// protocol it finds: tables, bias-polynomial portrait, content address and
// disassembly, plus a convergence-time measurement against the Voter
// baseline at an independent evaluation scale.
//
// The search is a pure function of its flags: identical invocations
// reproduce every generation bit for bit.
//
// Examples:
//
//	bitevolve -ell 2 -seed 1
//	bitevolve -ell 3 -population 48 -generations 100 -eval-n 65536
//	bitevolve -ell 3 -seed 7 -asm
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bitspread/internal/evolve"
	"bitspread/internal/protocol"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bitevolve:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bitevolve", flag.ContinueOnError)
	var (
		ell         = fs.Int("ell", 2, "sample size ℓ of the searched rule space")
		population  = fs.Int("population", 48, "genomes per generation")
		generations = fs.Int("generations", 100, "number of generations")
		seed        = fs.Uint64("seed", 1, "search seed (equal seeds reproduce the search exactly)")
		simN        = fs.Int64("sim-n", 1024, "population size for fitness simulations (also run at 8x)")
		cutoff      = fs.Float64("drift-cutoff", 0, "bias pre-filter threshold on max|F| (0: the documented default)")
		evalN       = fs.Int64("eval-n", 65536, "independent measurement scale for the final comparison (0: skip)")
		evalSeeds   = fs.Int("eval-seeds", 3, "number of measurement seeds")
		showAsm     = fs.Bool("asm", false, "print the best genome's disassembly")
		outPath     = fs.String("out", "", "write the best genome as encoded bytecode (.bsvm) to this path")
		verbose     = fs.Bool("v", false, "print per-generation progress")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := evolve.Options{
		Ell:         *ell,
		Population:  *population,
		Generations: *generations,
		Seed:        *seed,
		SimN:        *simN,
		DriftCutoff: *cutoff,
	}
	if *verbose {
		opts.Progress = func(gen int, stat evolve.GenStat) {
			fmt.Fprintf(w, "gen %3d  best %.6g  mean %.6g  simulated %d  drift %.3g\n",
				gen, stat.Best.Fitness, stat.MeanFitness, stat.Simulated, stat.Best.Drift)
		}
	}

	out, err := evolve.Search(opts)
	if err != nil {
		return err
	}
	best := out.Best

	g0, g1 := best.Rule.Tables()
	fmt.Fprintf(w, "search: ℓ=%d population=%d generations=%d seed=%d sim-n=%d\n",
		*ell, *population, *generations, *seed, *simN)
	fmt.Fprintf(w, "evaluations: %d (%d pruned analytically by the bias pre-filter)\n",
		out.Evaluations, out.Pruned)
	fmt.Fprintf(w, "\nbest genome: %s\n", best.Program.Address())
	fmt.Fprintf(w, "g[0]: %v\ng[1]: %v\n", g0, g1)
	fmt.Fprintf(w, "Theorem 12 case: %v   max|F| = %.6g\n", best.Case, best.Drift)
	if best.Simulated {
		fmt.Fprintf(w, "fitness: %.6g (worst normalized rounds across scales and opinions)\n", best.Fitness)
	} else {
		fmt.Fprintf(w, "fitness: %.6g (PRE-FILTER PENALTY — the search never escaped the drifty regime)\n", best.Fitness)
	}
	if err := best.Rule.CheckProp3(); err != nil {
		return fmt.Errorf("evolved rule leaked out of the protocol class: %w", err)
	}
	fmt.Fprintln(w, "Proposition 3: satisfied (consensus absorbing)")

	if *showAsm {
		text, err := best.Program.Disassemble()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n%s", text)
	}
	if *outPath != "" {
		if best.Program.Name == "" {
			// A display name for bitsim/registry listings; the content
			// address ignores it, so naming cannot change identity.
			best.Program.Name = fmt.Sprintf("evolved-ell%d-seed%d", *ell, *seed)
		}
		if err := os.WriteFile(*outPath, best.Program.Encode(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *outPath)
	}

	if *evalN > 0 {
		if *evalSeeds < 1 {
			return fmt.Errorf("-eval-seeds must be >= 1")
		}
		seeds := make([]uint64, *evalSeeds)
		for i := range seeds {
			seeds[i] = *seed*0x9e3779b97f4a7c15 + uint64(i) + 1
		}
		evolved, err := evolve.Measure(best.Rule, *evalN, 0, seeds)
		if err != nil {
			return err
		}
		voter, err := evolve.Measure(protocol.Voter(*ell), *evalN, 0, seeds)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nmeasurement at n=%d (worst over z, mean over %d seeds):\n", *evalN, *evalSeeds)
		fmt.Fprintf(w, "  evolved: %10.1f rounds\n", evolved)
		fmt.Fprintf(w, "  Voter:   %10.1f rounds\n", voter)
		fmt.Fprintf(w, "  ratio:   %10.3f\n", evolved/voter)
	}
	return nil
}
