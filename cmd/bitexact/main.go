// Command bitexact computes exact (non-Monte-Carlo) quantities of the
// bit-dissemination chain for small populations: expected convergence
// times from every state and absorption probabilities, in the parallel
// setting (dense linear solve) or the sequential setting (closed-form
// birth–death recursions).
//
// Examples:
//
//	bitexact -rule voter -ell 1 -n 128 -z 1
//	bitexact -rule minority -ell 3 -n 200 -z 1 -setting sequential
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"bitspread/internal/cli"
	"bitspread/internal/engine"
	"bitspread/internal/markov"
	"bitspread/internal/protocol"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bitexact:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bitexact", flag.ContinueOnError)
	var (
		ruleName  = fs.String("rule", "voter", "update rule: "+cli.RuleNames())
		ell       = fs.Int("ell", 1, "sample size ℓ")
		delta     = fs.Float64("delta", 0.1, "tilt for -rule biased / laziness for -rule lazy")
		threshold = fs.Int("threshold", 1, "threshold for -rule follower")
		n         = fs.Int64("n", 64, "population size (parallel setting caps at 2048)")
		z         = fs.Int("z", 1, "correct opinion")
		setting   = fs.String("setting", "parallel", "activation model: parallel or sequential")
		states    = fs.Int("states", 8, "number of starting states to print (spread over the range)")
		qsd       = fs.Bool("qsd", false, "also print the quasi-stationary trap analysis (parallel setting only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	rule, err := cli.BuildRule(*ruleName, *ell, *delta, *threshold)
	if err != nil {
		return err
	}
	target := int(*n) * *z
	fmt.Fprintf(w, "rule=%v  n=%d  z=%d  setting=%s  (times in parallel rounds)\n",
		rule, *n, *z, *setting)

	var hitting func(x int) float64
	switch *setting {
	case "parallel":
		chain, err := markov.ParallelChain(rule, *n, *z)
		if err != nil {
			return err
		}
		h, err := chain.ExpectedHittingTimes(map[int]bool{target: true})
		if err != nil {
			return err
		}
		hitting = func(x int) float64 { return h[x] }
	case "sequential":
		bd, err := markov.SequentialBirthDeath(rule, *n, *z)
		if err != nil {
			return err
		}
		hitting = func(x int) float64 {
			var act float64
			if x <= target {
				act = bd.ExpectedTimeUp(x, target)
			} else {
				act = bd.ExpectedTimeDown(x, target)
			}
			return act / float64(*n) // activations → parallel rounds
		}
	default:
		return fmt.Errorf("unknown setting %q", *setting)
	}

	lo, hi := int64(*z), *n-1+int64(*z)
	fmt.Fprintf(w, "%10s  %12s  %14s\n", "X0", "X0/n", "E[τ] rounds")
	worst := engine.WorstCaseInit(*n, *z)
	printRow(w, *n, worst, hitting(int(worst)))
	step := (hi - lo) / int64(*states)
	if step < 1 {
		step = 1
	}
	for x := lo + step; x < hi; x += step {
		printRow(w, *n, x, hitting(int(x)))
	}
	printRow(w, *n, hi, hitting(int(hi)))
	if *qsd {
		if *setting != "parallel" {
			return fmt.Errorf("-qsd needs -setting parallel")
		}
		return printQSD(w, rule, *n, *z)
	}
	return nil
}

// printQSD prints the quasi-stationary distribution of the non-consensus
// states: where a trapped run spends its time, and the per-round escape
// rate (whose inverse is the expected convergence time from
// quasi-stationarity — the metastable view of experiment X6).
func printQSD(w io.Writer, rule *protocol.Rule, n int64, z int) error {
	chain, err := markov.ParallelChain(rule, n, z)
	if err != nil {
		return err
	}
	target := int(n) * z
	transient := make(map[int]bool, n)
	lo, hi := z, int(n)-1+z
	for x := lo; x <= hi; x++ {
		if x != target {
			transient[x] = true
		}
	}
	dist, escape, err := chain.QuasiStationary(transient, 0, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nquasi-stationary trap analysis:\n")
	fmt.Fprintf(w, "  per-round escape rate 1-λ = %.6g\n", escape)
	fmt.Fprintf(w, "  E[τ from quasi-stationarity] = 1/(1-λ) = %.6g rounds\n", 1/escape)
	peak, mass := 0, 0.0
	mean := 0.0
	for x, m := range dist {
		mean += float64(x) * m
		if m > mass {
			peak, mass = x, m
		}
	}
	fmt.Fprintf(w, "  QSD mean one-fraction %.4f, mode at X=%d (%.4f of the mass)\n",
		mean/float64(n), peak, mass)
	return nil
}

func printRow(w io.Writer, n, x int64, rounds float64) {
	val := fmt.Sprintf("%.4g", rounds)
	if math.IsInf(rounds, 1) {
		val = "+Inf (unreachable)"
	}
	fmt.Fprintf(w, "%10d  %12.4f  %14s\n", x, float64(x)/float64(n), val)
}
