package main

import (
	"strings"
	"testing"
)

func TestRunParallelExact(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-rule", "voter", "-n", "32", "-z", "1"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "E[τ] rounds") || !strings.Contains(got, "1.0000") {
		t.Errorf("exact table malformed:\n%s", got)
	}
	// The consensus row reports 0 expected rounds.
	if !strings.Contains(got, "             0\n") {
		t.Errorf("missing zero row for the consensus state:\n%s", got)
	}
}

func TestRunSequentialExact(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-rule", "voter", "-n", "40", "-z", "0", "-setting", "sequential"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "setting=sequential") {
		t.Errorf("sequential output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-rule", "bogus"},
		{"-setting", "warp"},
		{"-n", "100000"}, // beyond the exact-chain cap
	}
	for _, args := range cases {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestRunQSD(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-rule", "minority", "-ell", "3", "-n", "32", "-z", "1", "-qsd"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "quasi-stationary") || !strings.Contains(got, "escape rate") {
		t.Errorf("QSD output missing:\n%s", got)
	}
	// The Minority trap's QSD mean sits near the interior attractor 1/2.
	if !strings.Contains(got, "QSD mean one-fraction 0.5") {
		t.Errorf("QSD mean not near 0.5:\n%s", got)
	}
}

func TestRunQSDRejectsSequential(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-rule", "voter", "-n", "16", "-setting", "sequential", "-qsd"}, &out); err == nil {
		t.Error("sequential -qsd accepted")
	}
}
