// Command bitbench is the engine benchmark smoke runner: it times the hot
// paths of the simulation stack — the literal vs. bit-packed vs.
// aggregated agent engines, the serial vs. sharded agent engine and the
// cached vs. uncached batched count engine — and appends one JSON record
// per invocation to a trajectory file (default BENCH_engines.json), so
// performance across commits accumulates into a machine-readable history.
//
// Benchmarks run at -gomaxprocs (default NumCPU, recorded per run: earlier
// trajectory entries measured shard speedups at GOMAXPROCS=1, which
// undersold sharding). -cpuprofile/-memprofile write pprof profiles of the
// run, so engine hot paths can be profiled without a separate harness.
//
// SIGINT/SIGTERM stop the run at the next benchmark boundary and still
// flush a record with the measurements taken so far (flagged
// "interrupted"), so a cancelled session never loses its data.
//
// Examples:
//
//	bitbench                               # defaults, appends to BENCH_engines.json
//	bitbench -suite agents -n 1048576      # literal vs packed vs aggregated at n=2²⁰
//	bitbench -n 262144 -budget 500ms       # bigger instance, longer timing windows
//	bitbench -out - -budget 20ms           # quick look, write the record to stdout
//	bitbench -suite agents -cpuprofile cpu.pb.gz   # profile the agent engines
//	bitbench -suite packed-scale -scale-procs 1,2,4 -scale-shards 1,4
//	                                       # GOMAXPROCS × shards × n matrix
//	bitbench -suite fabric-scale -fabric-workers 1,2,4
//	                                       # distributed-sweep worker scaling
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"bitspread/internal/engine"
	"bitspread/internal/fabric"
	"bitspread/internal/obs"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
	"bitspread/internal/sim"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bitbench:", err)
		os.Exit(1)
	}
}

// measurement is one timed benchmark in the output record.
type measurement struct {
	// NsPerOp is the wall time per operation; the operation is one full
	// engine run for the agent benchmarks and one replica-round for the
	// batch benchmarks.
	NsPerOp float64 `json:"ns_per_op"`
	// Ops is how many operations the timing window executed.
	Ops int64 `json:"ops"`
	// AgentRoundsPerSec is the throughput unit of the packed-scale suite:
	// agent-rounds (n × rounds executed) per wall-clock second. Zero for
	// benchmarks outside that suite.
	AgentRoundsPerSec float64 `json:"agent_rounds_per_sec,omitempty"`
	// TasksPerSec is the throughput unit of the fabric-scale suite:
	// merged (task, replica) checkpoints per wall-clock second of the
	// whole lease-compute-merge cycle. Zero outside that suite.
	TasksPerSec float64 `json:"tasks_per_sec,omitempty"`
	// Steals counts speculative lease duplications the fabric-scale
	// cell's idle workers performed (fabric.BoardStats.Steals).
	Steals int64 `json:"steals,omitempty"`
}

// record is one line of the trajectory file.
type record struct {
	Timestamp  string                 `json:"timestamp"`
	GoVersion  string                 `json:"go_version"`
	GoMaxProcs int                    `json:"gomaxprocs"`
	N          int64                  `json:"n"`
	Shards     int                    `json:"shards"`
	Replicas   int                    `json:"replicas"`
	Benchmarks map[string]measurement `json:"benchmarks"`
	// ShardSpeedup is serial/sharded agent-engine time per run;
	// CacheSpeedup maps ℓ to uncached/cached time per replica-round.
	ShardSpeedup float64            `json:"shard_speedup,omitempty"`
	CacheSpeedup map[string]float64 `json:"cache_speedup"`
	// PackSpeedup is unpacked-literal/bit-packed time per run and
	// AggSpeedup is unpacked-literal/aggregated time per run, both from
	// the agents suite.
	PackSpeedup float64 `json:"pack_speedup,omitempty"`
	AggSpeedup  float64 `json:"agg_speedup,omitempty"`
	// Interrupted marks a record flushed after SIGINT/SIGTERM: the
	// benchmarks map holds only what finished before the signal.
	Interrupted bool `json:"interrupted,omitempty"`
}

func run(ctx context.Context, args []string, w io.Writer) (err error) {
	fs := flag.NewFlagSet("bitbench", flag.ContinueOnError)
	var prof obs.Profile
	prof.Register(fs)
	var (
		out         = fs.String("out", "BENCH_engines.json", "trajectory file to append the JSON record to (- for stdout)")
		n           = fs.Int64("n", 1<<16, "population size for the benchmarks")
		shards      = fs.Int("shards", runtime.NumCPU(), "shard count for the sharded agent benchmark")
		replicas    = fs.Int("replicas", 1024, "batch width for the count-level benchmarks")
		budget      = fs.Duration("budget", 200*time.Millisecond, "minimum timing window per benchmark")
		maxProcs    = fs.Int("gomaxprocs", runtime.NumCPU(), "GOMAXPROCS for the benchmark run (recorded in the output)")
		suite       = fs.String("suite", "all", "benchmark suite: engines (shard/cache), agents (literal vs packed vs aggregated), packed-scale (GOMAXPROCS × shards × n matrix), fabric-scale (distributed-sweep workers × partitions matrix), all")
		fabWorkers  = fs.String("fabric-workers", "1,2,4", "fabric-scale worker counts, CSV")
		fabParts    = fs.Int("fabric-partitions", 4, "fabric-scale partitions per cell (more partitions than workers exercises the lease queue)")
		fabExps     = fs.String("fabric-exp", "T2", "fabric-scale experiment IDs, comma-separated")
		scaleProcs  = fs.String("scale-procs", "", "packed-scale GOMAXPROCS values, CSV (default: 1,2,4,… up to NumCPU)")
		scaleNs     = fs.String("scale-ns", "1048576,16777216", "packed-scale population sizes, CSV (n ≥ 2³² runs the chunked path only)")
		scaleShards = fs.String("scale-shards", "", "packed-scale shard counts, CSV (default: 1 and NumCPU)")
		metricsPath = fs.String("metrics", "", `attach the standard engine probe to the agent benchmarks and write a metrics snapshot at exit ("-": stdout); measures the instrumented hot path`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 4 {
		return fmt.Errorf("population %d too small", *n)
	}
	switch *suite {
	case "engines", "agents", "packed-scale", "fabric-scale", "all":
	default:
		return fmt.Errorf("unknown suite %q (want engines, agents, packed-scale, fabric-scale or all)", *suite)
	}
	if *maxProcs > 0 {
		runtime.GOMAXPROCS(*maxProcs)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer func() {
		if perr := prof.Stop(); perr != nil && err == nil {
			err = perr
		}
	}()

	// A nil engine.Probe interface keeps the uninstrumented fast path; it
	// is only non-nil when -metrics asks for the instrumented measurement
	// (assigning a typed-nil *obs.Metrics here would re-enable the hook).
	var reg *obs.Registry
	var benchProbe engine.Probe
	if *metricsPath != "" {
		reg = obs.NewRegistry()
		benchProbe = obs.NewMetrics(reg)
		defer func() {
			if merr := obs.WriteSnapshot(reg, *metricsPath, w); merr != nil && err == nil {
				err = merr
			}
		}()
	}

	rec := record{
		//bitlint:wallclock record timestamp is provenance metadata; no simulation state depends on it
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		N:            *n,
		Shards:       *shards,
		Replicas:     *replicas,
		Benchmarks:   map[string]measurement{},
		CacheSpeedup: map[string]float64{},
	}

	// The benchmarks run in a fixed order; a signal stops the sequence at
	// the next boundary and whatever finished is still flushed below.
	ells := []int{1, 3, protocol.SqrtNLogN(1).Of(*n)}
	var specs []benchSpec
	if *suite == "packed-scale" {
		specs, err = packedScaleSpecs(ctx, *scaleProcs, *scaleNs, *scaleShards, *budget)
		if err != nil {
			return err
		}
		// Each cell sets its own GOMAXPROCS; restore the flag value for
		// whatever runs after the matrix.
		defer runtime.GOMAXPROCS(*maxProcs)
	}
	if *suite == "fabric-scale" {
		specs, err = fabricScaleSpecs(ctx, *fabWorkers, *fabParts, *fabExps)
		if err != nil {
			return err
		}
	}
	if *suite != "engines" && *suite != "packed-scale" && *suite != "fabric-scale" {
		specs = append(specs,
			benchSpec{"agents/literal", func() measurement {
				return benchAgents(ctx, *n, engine.AgentOptions{Unpacked: true}, benchProbe, *budget)
			}},
			benchSpec{"agents/packed", func() measurement {
				return benchAgents(ctx, *n, engine.AgentOptions{}, benchProbe, *budget)
			}},
			benchSpec{"agents/aggregated", func() measurement {
				return benchAggregated(ctx, *n, benchProbe, *budget)
			}},
		)
	}
	if *suite != "agents" && *suite != "packed-scale" && *suite != "fabric-scale" {
		specs = append(specs,
			benchSpec{"agents/serial", func() measurement {
				return benchAgents(ctx, *n, engine.AgentOptions{}, benchProbe, *budget)
			}},
			benchSpec{"agents/sharded", func() measurement {
				return benchAgents(ctx, *n, engine.AgentOptions{Shards: *shards}, benchProbe, *budget)
			}},
		)
		for _, ell := range ells {
			rule := protocol.Minority(ell)
			key := fmt.Sprintf("ell=%d", ell)
			specs = append(specs,
				benchSpec{"batch/uncached/" + key, func() measurement { return benchBatch(ctx, rule, *n, *replicas, false, *budget) }},
				benchSpec{"batch/cached/" + key, func() measurement { return benchBatch(ctx, rule, *n, *replicas, true, *budget) }},
			)
		}
	}
	for _, s := range specs {
		if ctx.Err() != nil {
			rec.Interrupted = true
			break
		}
		rec.Benchmarks[s.key] = s.bench()
	}

	// Derived ratios, from whichever pairs completed.
	if serial, ok := rec.Benchmarks["agents/serial"]; ok {
		if sharded, ok := rec.Benchmarks["agents/sharded"]; ok {
			rec.ShardSpeedup = serial.NsPerOp / sharded.NsPerOp
		}
	}
	if literal, ok := rec.Benchmarks["agents/literal"]; ok {
		if packed, ok := rec.Benchmarks["agents/packed"]; ok {
			rec.PackSpeedup = literal.NsPerOp / packed.NsPerOp
		}
		if agg, ok := rec.Benchmarks["agents/aggregated"]; ok {
			rec.AggSpeedup = literal.NsPerOp / agg.NsPerOp
		}
	}
	for _, ell := range ells {
		key := fmt.Sprintf("ell=%d", ell)
		uncached, okU := rec.Benchmarks["batch/uncached/"+key]
		cached, okC := rec.Benchmarks["batch/cached/"+key]
		if okU && okC {
			rec.CacheSpeedup[key] = uncached.NsPerOp / cached.NsPerOp
		}
	}

	if err := flushRecord(w, *out, rec, ells); err != nil {
		return err
	}
	if rec.Interrupted {
		return fmt.Errorf("interrupted after %d of %d benchmarks (partial record flushed): %w",
			len(rec.Benchmarks), len(specs), ctx.Err())
	}
	return nil
}

// benchSpec is one keyed benchmark in the run sequence.
type benchSpec struct {
	key   string
	bench func() measurement
}

// parseCSVInt64s splits a comma-separated list of positive integers.
func parseCSVInt64s(spec string) ([]int64, error) {
	var out []int64
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		v, err := strconv.ParseInt(field, 10, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad list entry %q (want a positive integer)", field)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list %q", spec)
	}
	return out, nil
}

// defaultScaleProcs is the GOMAXPROCS axis when -scale-procs is empty:
// powers of two up to NumCPU, plus NumCPU itself.
func defaultScaleProcs() []int64 {
	ncpu := int64(runtime.NumCPU())
	var out []int64
	for p := int64(1); p < ncpu; p *= 2 {
		out = append(out, p)
	}
	return append(out, ncpu)
}

// packedScaleSpecs builds the GOMAXPROCS × n × shards benchmark matrix of
// the packed-scale suite. Each cell pins GOMAXPROCS before timing (the
// recorded key carries the value, so one record can hold the whole sweep).
// Shard counts a population cannot satisfy (a shard must own at least one
// whole bitset word) are skipped, and populations at or above the packed
// engine's 2³² index-sampling gate run the chunked variant only — the
// packed variant would be silently routed there anyway.
func packedScaleSpecs(ctx context.Context, procsCSV, nsCSV, shardsCSV string, budget time.Duration) ([]benchSpec, error) {
	procs := defaultScaleProcs()
	if procsCSV != "" {
		var err error
		if procs, err = parseCSVInt64s(procsCSV); err != nil {
			return nil, fmt.Errorf("-scale-procs: %w", err)
		}
	}
	ns, err := parseCSVInt64s(nsCSV)
	if err != nil {
		return nil, fmt.Errorf("-scale-ns: %w", err)
	}
	for _, n := range ns {
		if n < 4 {
			return nil, fmt.Errorf("-scale-ns: population %d too small", n)
		}
	}
	shardAxis := []int64{1, int64(runtime.NumCPU())}
	if shardsCSV != "" {
		if shardAxis, err = parseCSVInt64s(shardsCSV); err != nil {
			return nil, fmt.Errorf("-scale-shards: %w", err)
		}
	}

	var specs []benchSpec
	for _, p := range procs {
		for _, n := range ns {
			variants := []struct {
				name string
				opts engine.AgentOptions
			}{
				{"packed", engine.AgentOptions{}},
				{"chunked", engine.AgentOptions{Chunked: true}},
			}
			if n > int64(math.MaxUint32) {
				variants = variants[1:]
			}
			for _, s := range shardAxis {
				if s > int64(engine.MaxPackedShards(n)) {
					continue
				}
				for _, v := range variants {
					p, n, s, opts := int(p), n, int(s), v.opts
					opts.Shards = s
					key := fmt.Sprintf("packed-scale/%s/p=%d/shards=%d/n=%d", v.name, p, s, n)
					specs = append(specs, benchSpec{key, func() measurement {
						runtime.GOMAXPROCS(p)
						return benchScaleCell(ctx, n, opts, budget)
					}})
				}
			}
		}
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("packed-scale matrix is empty (every shard count exceeds n/64 words?)")
	}
	return specs, nil
}

// benchScaleCell times one packed-scale matrix cell — the two-round
// Minority(3) instance of benchAgents — and derives the agent-rounds/sec
// throughput from it.
func benchScaleCell(ctx context.Context, n int64, opts engine.AgentOptions, budget time.Duration) measurement {
	cfg := engine.Config{
		N:         n,
		Rule:      protocol.Minority(3),
		Z:         1,
		X0:        n / 2,
		MaxRounds: 2,
	}
	g := rng.New(1)
	var rounds int64
	m := timeIt(ctx, budget, func(iters int) {
		for i := 0; i < iters; i++ {
			res, err := engine.RunAgents(cfg, opts, g)
			if err != nil {
				panic(err)
			}
			rounds = res.Rounds
		}
	})
	if m.NsPerOp > 0 {
		m.AgentRoundsPerSec = float64(n) * float64(rounds) / m.NsPerOp * 1e9
	}
	return m
}

// fabricScaleSpecs builds the workers × partitions matrix of the
// fabric-scale suite: each cell stands up an in-process lease board
// (the same fabric.Board the HTTP coordinator serves), lets W worker
// goroutines pull, compute and complete partitions of the sweep, and
// times the whole lease-compute-merge cycle. The first cell's merged
// bytes become the reference every later cell must match — the suite
// measures throughput only over runs it can prove correct.
func fabricScaleSpecs(ctx context.Context, workersCSV string, partitions int, expsCSV string) ([]benchSpec, error) {
	workerAxis, err := parseCSVInt64s(workersCSV)
	if err != nil {
		return nil, fmt.Errorf("-fabric-workers: %w", err)
	}
	if partitions < 1 {
		return nil, fmt.Errorf("-fabric-partitions: %d partitions", partitions)
	}
	spec := fabric.SweepSpec{Exps: strings.Split(expsCSV, ","), Seed: 2024, Quick: true, SimWorkers: 1}
	if _, err := spec.Experiments(); err != nil {
		return nil, fmt.Errorf("-fabric-exp: %w", err)
	}
	var refMerged []byte // cells run sequentially; the first one sets it
	var specs []benchSpec
	for _, w := range workerAxis {
		w := int(w)
		key := fmt.Sprintf("fabric-scale/workers=%d/parts=%d", w, partitions)
		specs = append(specs, benchSpec{key, func() measurement {
			m, merged := benchFabricCell(ctx, spec, w, partitions)
			if ctx.Err() != nil {
				return m
			}
			if refMerged == nil {
				refMerged = merged
			} else if !bytes.Equal(merged, refMerged) {
				panic(fmt.Sprintf("fabric-scale %s: merged journal differs from the first cell's — the fabric lost byte identity", key))
			}
			return m
		}})
	}
	return specs, nil
}

// benchFabricCell runs one distributed sweep with w worker goroutines
// over an in-process lease board and returns the timing plus the merged
// journal bytes. Long-TTL leases keep expiry re-issue out of the
// measurement; steals still happen whenever workers outnumber the
// remaining partitions, and are reported.
func benchFabricCell(ctx context.Context, spec fabric.SweepSpec, w, partitions int) (measurement, []byte) {
	board, err := fabric.NewBoard(partitions, time.Hour)
	if err != nil {
		panic(err)
	}
	dir, err := os.MkdirTemp("", "bitbench-fabric-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	var (
		mu      sync.Mutex // board and shard-path bookkeeping
		paths   []string
		wg      sync.WaitGroup
		workErr error
	)
	fail := func(err error) {
		mu.Lock()
		if workErr == nil {
			workErr = err
		}
		mu.Unlock()
	}
	start := time.Now() //bitlint:wallclock benchmark timing measures the host, not the simulation
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", i)
			for ctx.Err() == nil {
				mu.Lock()
				//bitlint:wallclock lease bookkeeping is bench harness state; simulation results never read it
				status, lease := board.Acquire(name, time.Now())
				mu.Unlock()
				switch status {
				case fabric.Granted:
					path := filepath.Join(dir, fmt.Sprintf("%s-shard-%d.jsonl", name, lease.Shard.Index))
					if _, err := fabric.RunShard(ctx, spec, lease.Shard, path, false, nil); err != nil {
						if ctx.Err() == nil {
							fail(fmt.Errorf("worker %s shard %s: %w", name, lease.Shard, err))
						}
						return
					}
					mu.Lock()
					paths = append(paths, path)
					_, _, cerr := board.Complete(lease.ID)
					mu.Unlock()
					if cerr != nil {
						fail(fmt.Errorf("worker %s complete %s: %w", name, lease.ID, cerr))
						return
					}
				case fabric.Wait:
					time.Sleep(time.Millisecond)
				default: // Drained
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if workErr != nil {
		panic(workErr)
	}
	if ctx.Err() != nil {
		return measurement{}, nil
	}

	srcs := make([]sim.MergeSource, len(paths))
	for i, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			panic(err)
		}
		srcs[i] = sim.MergeSource{Name: filepath.Base(p), Data: data}
	}
	var merged bytes.Buffer
	stats, err := sim.MergeJournals(&merged, srcs)
	if err != nil {
		panic(fmt.Errorf("fabric-scale merge: %w", err))
	}
	wall := time.Since(start) //bitlint:wallclock benchmark timing measures the host, not the simulation
	m := measurement{
		NsPerOp: float64(wall.Nanoseconds()) / float64(stats.Entries),
		Ops:     int64(stats.Entries),
		Steals:  int64(board.Stats().Steals),
	}
	if wall > 0 {
		m.TasksPerSec = float64(stats.Entries) / wall.Seconds()
	}
	return m, merged.Bytes()
}

// flushRecord appends the record to the trajectory file (or stdout) and
// prints the human summary.
func flushRecord(w io.Writer, out string, rec record, ells []int) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if out == "-" {
		fmt.Fprintln(w, string(line))
		return nil
	}
	f, err := os.OpenFile(out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(f, string(line)); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "appended %d benchmarks to %s (gomaxprocs %d", len(rec.Benchmarks), out, rec.GoMaxProcs)
	if rec.PackSpeedup > 0 {
		fmt.Fprintf(w, ", packed %.2fx", rec.PackSpeedup)
	}
	if rec.AggSpeedup > 0 {
		fmt.Fprintf(w, ", aggregated %.1fx", rec.AggSpeedup)
	}
	if rec.ShardSpeedup > 0 {
		fmt.Fprintf(w, ", shard %.2fx", rec.ShardSpeedup)
		for _, ell := range ells {
			key := fmt.Sprintf("ell=%d", ell)
			if v, ok := rec.CacheSpeedup[key]; ok {
				fmt.Fprintf(w, ", cache %s %.2fx", key, v)
			}
		}
	}
	fmt.Fprintln(w, ")")
	return nil
}

// timeIt runs f(iters) in growing batches until the cumulative wall time
// reaches the budget or ctx ends, then reports the amortized
// per-iteration cost. A cancelled window is shorter but still a valid
// amortized measurement.
func timeIt(ctx context.Context, budget time.Duration, f func(iters int)) measurement {
	var (
		total time.Duration
		ops   int64
		batch = 1
	)
	for total < budget {
		start := time.Now() //bitlint:wallclock benchmark timing measures the host, not the simulation
		f(batch)
		total += time.Since(start) //bitlint:wallclock benchmark timing measures the host, not the simulation
		ops += int64(batch)
		if ctx.Err() != nil {
			break
		}
		if batch < 1<<20 {
			batch *= 2
		}
	}
	return measurement{NsPerOp: float64(total.Nanoseconds()) / float64(ops), Ops: ops}
}

// benchAgents times full two-round agent-engine runs at ℓ = 3, the
// configuration of the repo's BenchmarkRunAgents acceptance target. A
// non-nil probe measures the instrumented hot path (-metrics).
func benchAgents(ctx context.Context, n int64, opts engine.AgentOptions, probe engine.Probe, budget time.Duration) measurement {
	cfg := engine.Config{
		N:         n,
		Rule:      protocol.Minority(3),
		Z:         1,
		X0:        n / 2,
		MaxRounds: 2,
		Probe:     probe,
	}
	g := rng.New(1)
	return timeIt(ctx, budget, func(iters int) {
		for i := 0; i < iters; i++ {
			if _, err := engine.RunAgents(cfg, opts, g); err != nil {
				panic(err)
			}
		}
	})
}

// benchAggregated times the aggregated opinion-class engine on the same
// two-round instance as benchAgents, so agg_speedup is apples-to-apples
// against agents/literal.
func benchAggregated(ctx context.Context, n int64, probe engine.Probe, budget time.Duration) measurement {
	cfg := engine.Config{
		N:         n,
		Rule:      protocol.Minority(3),
		Z:         1,
		X0:        n / 2,
		MaxRounds: 2,
		Probe:     probe,
	}
	g := rng.New(1)
	return timeIt(ctx, budget, func(iters int) {
		for i := 0; i < iters; i++ {
			if _, err := engine.RunAggregated(cfg, g); err != nil {
				panic(err)
			}
		}
	})
}

// benchBatch times one replica-round of the count engine over a batch,
// with or without the adopt-probability cache. Replicas that absorb are
// re-seeded at n/2 so the batch stays in the band where Eq. 4 is
// evaluated.
func benchBatch(ctx context.Context, rule *protocol.Rule, n int64, replicas int, cached bool, budget time.Duration) measurement {
	const z = 1
	xs := make([]int64, replicas)
	gs := make([]*rng.RNG, replicas)
	master := rng.New(7)
	for i := range xs {
		xs[i] = n / 2
		gs[i] = rng.New(master.Uint64())
	}
	var cache *protocol.AdoptCache
	if cached {
		cache = protocol.NewAdoptCache(rule, n)
	}
	m := timeIt(ctx, budget, func(iters int) {
		for i := 0; i < iters; i++ {
			if cached {
				engine.StepCountBatch(cache, z, xs, gs)
			} else {
				for r := range xs {
					xs[r] = engine.StepCount(rule, n, z, xs[r], gs[r])
				}
			}
			for r := range xs {
				if xs[r] <= 1 || xs[r] >= n-1 {
					xs[r] = n / 2
				}
			}
		}
	})
	// Report per replica-round, matching BenchmarkStepCountBatch.
	m.NsPerOp /= float64(replicas)
	m.Ops *= int64(replicas)
	return m
}
