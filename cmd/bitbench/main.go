// Command bitbench is the engine benchmark smoke runner: it times the hot
// paths of the simulation stack — the literal vs. bit-packed vs.
// aggregated agent engines, the serial vs. sharded agent engine and the
// cached vs. uncached batched count engine — and appends one JSON record
// per invocation to a trajectory file (default BENCH_engines.json), so
// performance across commits accumulates into a machine-readable history.
//
// Benchmarks run at -gomaxprocs (default NumCPU, recorded per run: earlier
// trajectory entries measured shard speedups at GOMAXPROCS=1, which
// undersold sharding). -cpuprofile/-memprofile write pprof profiles of the
// run, so engine hot paths can be profiled without a separate harness.
//
// SIGINT/SIGTERM stop the run at the next benchmark boundary and still
// flush a record with the measurements taken so far (flagged
// "interrupted"), so a cancelled session never loses its data.
//
// Examples:
//
//	bitbench                               # defaults, appends to BENCH_engines.json
//	bitbench -suite agents -n 1048576      # literal vs packed vs aggregated at n=2²⁰
//	bitbench -n 262144 -budget 500ms       # bigger instance, longer timing windows
//	bitbench -out - -budget 20ms           # quick look, write the record to stdout
//	bitbench -suite agents -cpuprofile cpu.pb.gz   # profile the agent engines
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"bitspread/internal/engine"
	"bitspread/internal/obs"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bitbench:", err)
		os.Exit(1)
	}
}

// measurement is one timed benchmark in the output record.
type measurement struct {
	// NsPerOp is the wall time per operation; the operation is one full
	// engine run for the agent benchmarks and one replica-round for the
	// batch benchmarks.
	NsPerOp float64 `json:"ns_per_op"`
	// Ops is how many operations the timing window executed.
	Ops int64 `json:"ops"`
}

// record is one line of the trajectory file.
type record struct {
	Timestamp  string                 `json:"timestamp"`
	GoVersion  string                 `json:"go_version"`
	GoMaxProcs int                    `json:"gomaxprocs"`
	N          int64                  `json:"n"`
	Shards     int                    `json:"shards"`
	Replicas   int                    `json:"replicas"`
	Benchmarks map[string]measurement `json:"benchmarks"`
	// ShardSpeedup is serial/sharded agent-engine time per run;
	// CacheSpeedup maps ℓ to uncached/cached time per replica-round.
	ShardSpeedup float64            `json:"shard_speedup,omitempty"`
	CacheSpeedup map[string]float64 `json:"cache_speedup"`
	// PackSpeedup is unpacked-literal/bit-packed time per run and
	// AggSpeedup is unpacked-literal/aggregated time per run, both from
	// the agents suite.
	PackSpeedup float64 `json:"pack_speedup,omitempty"`
	AggSpeedup  float64 `json:"agg_speedup,omitempty"`
	// Interrupted marks a record flushed after SIGINT/SIGTERM: the
	// benchmarks map holds only what finished before the signal.
	Interrupted bool `json:"interrupted,omitempty"`
}

func run(ctx context.Context, args []string, w io.Writer) (err error) {
	fs := flag.NewFlagSet("bitbench", flag.ContinueOnError)
	var prof obs.Profile
	prof.Register(fs)
	var (
		out         = fs.String("out", "BENCH_engines.json", "trajectory file to append the JSON record to (- for stdout)")
		n           = fs.Int64("n", 1<<16, "population size for the benchmarks")
		shards      = fs.Int("shards", runtime.NumCPU(), "shard count for the sharded agent benchmark")
		replicas    = fs.Int("replicas", 1024, "batch width for the count-level benchmarks")
		budget      = fs.Duration("budget", 200*time.Millisecond, "minimum timing window per benchmark")
		maxProcs    = fs.Int("gomaxprocs", runtime.NumCPU(), "GOMAXPROCS for the benchmark run (recorded in the output)")
		suite       = fs.String("suite", "all", "benchmark suite: engines (shard/cache), agents (literal vs packed vs aggregated), all")
		metricsPath = fs.String("metrics", "", `attach the standard engine probe to the agent benchmarks and write a metrics snapshot at exit ("-": stdout); measures the instrumented hot path`)
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 4 {
		return fmt.Errorf("population %d too small", *n)
	}
	switch *suite {
	case "engines", "agents", "all":
	default:
		return fmt.Errorf("unknown suite %q (want engines, agents or all)", *suite)
	}
	if *maxProcs > 0 {
		runtime.GOMAXPROCS(*maxProcs)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer func() {
		if perr := prof.Stop(); perr != nil && err == nil {
			err = perr
		}
	}()

	// A nil engine.Probe interface keeps the uninstrumented fast path; it
	// is only non-nil when -metrics asks for the instrumented measurement
	// (assigning a typed-nil *obs.Metrics here would re-enable the hook).
	var reg *obs.Registry
	var benchProbe engine.Probe
	if *metricsPath != "" {
		reg = obs.NewRegistry()
		benchProbe = obs.NewMetrics(reg)
		defer func() {
			if merr := obs.WriteSnapshot(reg, *metricsPath, w); merr != nil && err == nil {
				err = merr
			}
		}()
	}

	rec := record{
		//bitlint:wallclock record timestamp is provenance metadata; no simulation state depends on it
		Timestamp:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:    runtime.Version(),
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		N:            *n,
		Shards:       *shards,
		Replicas:     *replicas,
		Benchmarks:   map[string]measurement{},
		CacheSpeedup: map[string]float64{},
	}

	// The benchmarks run in a fixed order; a signal stops the sequence at
	// the next boundary and whatever finished is still flushed below.
	type benchSpec struct {
		key   string
		bench func() measurement
	}
	ells := []int{1, 3, protocol.SqrtNLogN(1).Of(*n)}
	var specs []benchSpec
	if *suite != "engines" {
		specs = append(specs,
			benchSpec{"agents/literal", func() measurement {
				return benchAgents(ctx, *n, engine.AgentOptions{Unpacked: true}, benchProbe, *budget)
			}},
			benchSpec{"agents/packed", func() measurement {
				return benchAgents(ctx, *n, engine.AgentOptions{}, benchProbe, *budget)
			}},
			benchSpec{"agents/aggregated", func() measurement {
				return benchAggregated(ctx, *n, benchProbe, *budget)
			}},
		)
	}
	if *suite != "agents" {
		specs = append(specs,
			benchSpec{"agents/serial", func() measurement {
				return benchAgents(ctx, *n, engine.AgentOptions{}, benchProbe, *budget)
			}},
			benchSpec{"agents/sharded", func() measurement {
				return benchAgents(ctx, *n, engine.AgentOptions{Shards: *shards}, benchProbe, *budget)
			}},
		)
		for _, ell := range ells {
			rule := protocol.Minority(ell)
			key := fmt.Sprintf("ell=%d", ell)
			specs = append(specs,
				benchSpec{"batch/uncached/" + key, func() measurement { return benchBatch(ctx, rule, *n, *replicas, false, *budget) }},
				benchSpec{"batch/cached/" + key, func() measurement { return benchBatch(ctx, rule, *n, *replicas, true, *budget) }},
			)
		}
	}
	for _, s := range specs {
		if ctx.Err() != nil {
			rec.Interrupted = true
			break
		}
		rec.Benchmarks[s.key] = s.bench()
	}

	// Derived ratios, from whichever pairs completed.
	if serial, ok := rec.Benchmarks["agents/serial"]; ok {
		if sharded, ok := rec.Benchmarks["agents/sharded"]; ok {
			rec.ShardSpeedup = serial.NsPerOp / sharded.NsPerOp
		}
	}
	if literal, ok := rec.Benchmarks["agents/literal"]; ok {
		if packed, ok := rec.Benchmarks["agents/packed"]; ok {
			rec.PackSpeedup = literal.NsPerOp / packed.NsPerOp
		}
		if agg, ok := rec.Benchmarks["agents/aggregated"]; ok {
			rec.AggSpeedup = literal.NsPerOp / agg.NsPerOp
		}
	}
	for _, ell := range ells {
		key := fmt.Sprintf("ell=%d", ell)
		uncached, okU := rec.Benchmarks["batch/uncached/"+key]
		cached, okC := rec.Benchmarks["batch/cached/"+key]
		if okU && okC {
			rec.CacheSpeedup[key] = uncached.NsPerOp / cached.NsPerOp
		}
	}

	if err := flushRecord(w, *out, rec, ells); err != nil {
		return err
	}
	if rec.Interrupted {
		return fmt.Errorf("interrupted after %d of %d benchmarks (partial record flushed): %w",
			len(rec.Benchmarks), len(specs), ctx.Err())
	}
	return nil
}

// flushRecord appends the record to the trajectory file (or stdout) and
// prints the human summary.
func flushRecord(w io.Writer, out string, rec record, ells []int) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if out == "-" {
		fmt.Fprintln(w, string(line))
		return nil
	}
	f, err := os.OpenFile(out, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintln(f, string(line)); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "appended %d benchmarks to %s (gomaxprocs %d", len(rec.Benchmarks), out, rec.GoMaxProcs)
	if rec.PackSpeedup > 0 {
		fmt.Fprintf(w, ", packed %.2fx", rec.PackSpeedup)
	}
	if rec.AggSpeedup > 0 {
		fmt.Fprintf(w, ", aggregated %.1fx", rec.AggSpeedup)
	}
	if rec.ShardSpeedup > 0 {
		fmt.Fprintf(w, ", shard %.2fx", rec.ShardSpeedup)
		for _, ell := range ells {
			key := fmt.Sprintf("ell=%d", ell)
			if v, ok := rec.CacheSpeedup[key]; ok {
				fmt.Fprintf(w, ", cache %s %.2fx", key, v)
			}
		}
	}
	fmt.Fprintln(w, ")")
	return nil
}

// timeIt runs f(iters) in growing batches until the cumulative wall time
// reaches the budget or ctx ends, then reports the amortized
// per-iteration cost. A cancelled window is shorter but still a valid
// amortized measurement.
func timeIt(ctx context.Context, budget time.Duration, f func(iters int)) measurement {
	var (
		total time.Duration
		ops   int64
		batch = 1
	)
	for total < budget {
		start := time.Now() //bitlint:wallclock benchmark timing measures the host, not the simulation
		f(batch)
		total += time.Since(start) //bitlint:wallclock benchmark timing measures the host, not the simulation
		ops += int64(batch)
		if ctx.Err() != nil {
			break
		}
		if batch < 1<<20 {
			batch *= 2
		}
	}
	return measurement{NsPerOp: float64(total.Nanoseconds()) / float64(ops), Ops: ops}
}

// benchAgents times full two-round agent-engine runs at ℓ = 3, the
// configuration of the repo's BenchmarkRunAgents acceptance target. A
// non-nil probe measures the instrumented hot path (-metrics).
func benchAgents(ctx context.Context, n int64, opts engine.AgentOptions, probe engine.Probe, budget time.Duration) measurement {
	cfg := engine.Config{
		N:         n,
		Rule:      protocol.Minority(3),
		Z:         1,
		X0:        n / 2,
		MaxRounds: 2,
		Probe:     probe,
	}
	g := rng.New(1)
	return timeIt(ctx, budget, func(iters int) {
		for i := 0; i < iters; i++ {
			if _, err := engine.RunAgents(cfg, opts, g); err != nil {
				panic(err)
			}
		}
	})
}

// benchAggregated times the aggregated opinion-class engine on the same
// two-round instance as benchAgents, so agg_speedup is apples-to-apples
// against agents/literal.
func benchAggregated(ctx context.Context, n int64, probe engine.Probe, budget time.Duration) measurement {
	cfg := engine.Config{
		N:         n,
		Rule:      protocol.Minority(3),
		Z:         1,
		X0:        n / 2,
		MaxRounds: 2,
		Probe:     probe,
	}
	g := rng.New(1)
	return timeIt(ctx, budget, func(iters int) {
		for i := 0; i < iters; i++ {
			if _, err := engine.RunAggregated(cfg, g); err != nil {
				panic(err)
			}
		}
	})
}

// benchBatch times one replica-round of the count engine over a batch,
// with or without the adopt-probability cache. Replicas that absorb are
// re-seeded at n/2 so the batch stays in the band where Eq. 4 is
// evaluated.
func benchBatch(ctx context.Context, rule *protocol.Rule, n int64, replicas int, cached bool, budget time.Duration) measurement {
	const z = 1
	xs := make([]int64, replicas)
	gs := make([]*rng.RNG, replicas)
	master := rng.New(7)
	for i := range xs {
		xs[i] = n / 2
		gs[i] = rng.New(master.Uint64())
	}
	var cache *protocol.AdoptCache
	if cached {
		cache = protocol.NewAdoptCache(rule, n)
	}
	m := timeIt(ctx, budget, func(iters int) {
		for i := 0; i < iters; i++ {
			if cached {
				engine.StepCountBatch(cache, z, xs, gs)
			} else {
				for r := range xs {
					xs[r] = engine.StepCount(rule, n, z, xs[r], gs[r])
				}
			}
			for r := range xs {
				if xs[r] <= 1 || xs[r] >= n-1 {
					xs[r] = n / 2
				}
			}
		}
	})
	// Report per replica-round, matching BenchmarkStepCountBatch.
	m.NsPerOp /= float64(replicas)
	m.Ops *= int64(replicas)
	return m
}
