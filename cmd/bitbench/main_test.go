package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quickArgs keeps the smoke test fast: tiny instance, minimal timing
// windows.
func quickArgs(out string) []string {
	return []string{"-out", out, "-n", "2048", "-replicas", "16", "-budget", "2ms"}
}

func TestRunAppendsTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_engines.json")
	var msg strings.Builder
	for i := 0; i < 2; i++ {
		if err := run(context.Background(), quickArgs(path), &msg); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(msg.String(), "appended") {
		t.Errorf("missing summary line: %q", msg.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", lines, err)
		}
		if rec.N != 2048 || rec.Timestamp == "" || rec.GoVersion == "" {
			t.Errorf("line %d metadata incomplete: %+v", lines, rec)
		}
		for _, key := range []string{
			"agents/serial", "agents/sharded",
			"batch/uncached/ell=1", "batch/cached/ell=1",
			"batch/uncached/ell=3", "batch/cached/ell=3",
		} {
			m, ok := rec.Benchmarks[key]
			if !ok || m.NsPerOp <= 0 || m.Ops <= 0 {
				t.Errorf("line %d: benchmark %q missing or empty (%+v)", lines, key, m)
			}
		}
		if rec.ShardSpeedup <= 0 {
			t.Errorf("line %d: shard speedup %v", lines, rec.ShardSpeedup)
		}
		if len(rec.CacheSpeedup) != 3 {
			t.Errorf("line %d: cache speedups %v, want 3 entries", lines, rec.CacheSpeedup)
		}
	}
	if lines != 2 {
		t.Errorf("trajectory has %d lines after two runs, want 2", lines)
	}
}

func TestRunStdout(t *testing.T) {
	var msg strings.Builder
	if err := run(context.Background(), quickArgs("-"), &msg); err != nil {
		t.Fatal(err)
	}
	var rec record
	if err := json.Unmarshal([]byte(msg.String()), &rec); err != nil {
		t.Fatalf("stdout record not valid JSON: %v\n%s", err, msg.String())
	}
}

func TestRunPackedScaleSuite(t *testing.T) {
	var msg strings.Builder
	err := run(context.Background(), []string{"-out", "-", "-suite", "packed-scale",
		"-scale-procs", "1,2", "-scale-ns", "2048,4096", "-scale-shards", "1,3",
		"-budget", "2ms"}, &msg)
	if err != nil {
		t.Fatal(err)
	}
	var rec record
	if err := json.Unmarshal([]byte(msg.String()), &rec); err != nil {
		t.Fatalf("stdout record not valid JSON: %v\n%s", err, msg.String())
	}
	// 2 procs × 2 ns × 2 shard counts × {packed, chunked} = 16 cells.
	if len(rec.Benchmarks) != 16 {
		t.Fatalf("packed-scale produced %d cells, want 16: %+v", len(rec.Benchmarks), rec.Benchmarks)
	}
	for key, m := range rec.Benchmarks {
		if !strings.HasPrefix(key, "packed-scale/") {
			t.Errorf("unexpected key %q in packed-scale record", key)
		}
		if m.NsPerOp <= 0 || m.Ops <= 0 || m.AgentRoundsPerSec <= 0 {
			t.Errorf("cell %q missing measurements: %+v", key, m)
		}
	}
	for _, key := range []string{
		"packed-scale/packed/p=1/shards=1/n=2048",
		"packed-scale/chunked/p=2/shards=3/n=4096",
	} {
		if _, ok := rec.Benchmarks[key]; !ok {
			t.Errorf("expected cell %q missing", key)
		}
	}
}

func TestRunPackedScaleSkipsUnsatisfiableShards(t *testing.T) {
	// n=64 is one bitset word: shards=2 cannot give each shard a whole
	// word, so only the shards=1 cells survive.
	var msg strings.Builder
	err := run(context.Background(), []string{"-out", "-", "-suite", "packed-scale",
		"-scale-procs", "1", "-scale-ns", "64", "-scale-shards", "1,2",
		"-budget", "1ms"}, &msg)
	if err != nil {
		t.Fatal(err)
	}
	var rec record
	if err := json.Unmarshal([]byte(msg.String()), &rec); err != nil {
		t.Fatal(err)
	}
	if len(rec.Benchmarks) != 2 {
		t.Errorf("want 2 surviving cells (packed+chunked at shards=1), got %+v", rec.Benchmarks)
	}
	// And an entirely unsatisfiable matrix is an error, not an empty record.
	if err := run(context.Background(), []string{"-out", "-", "-suite", "packed-scale",
		"-scale-ns", "64", "-scale-shards", "2", "-budget", "1ms"}, &msg); err == nil {
		t.Error("empty packed-scale matrix accepted")
	}
}

func TestRunFabricScaleSuite(t *testing.T) {
	var msg strings.Builder
	err := run(context.Background(), []string{"-out", "-", "-suite", "fabric-scale",
		"-fabric-workers", "1,2", "-fabric-partitions", "3", "-fabric-exp", "T2"}, &msg)
	if err != nil {
		t.Fatal(err)
	}
	var rec record
	if err := json.Unmarshal([]byte(msg.String()), &rec); err != nil {
		t.Fatalf("stdout record not valid JSON: %v\n%s", err, msg.String())
	}
	if len(rec.Benchmarks) != 2 {
		t.Fatalf("fabric-scale produced %d cells, want 2: %+v", len(rec.Benchmarks), rec.Benchmarks)
	}
	var ops []int64
	for _, key := range []string{
		"fabric-scale/workers=1/parts=3",
		"fabric-scale/workers=2/parts=3",
	} {
		m, ok := rec.Benchmarks[key]
		if !ok || m.Ops <= 0 || m.NsPerOp <= 0 || m.TasksPerSec <= 0 {
			t.Fatalf("cell %q missing measurements: %+v", key, m)
		}
		ops = append(ops, m.Ops)
	}
	// Every cell merges the identical sweep, so the checkpoint counts
	// must agree (byte identity itself is asserted inside the suite).
	if ops[0] != ops[1] {
		t.Errorf("cells merged %v entries, want identical counts", ops)
	}

	// Bad axes are errors, not empty records.
	for name, args := range map[string][]string{
		"bad workers":    {"-out", "-", "-suite", "fabric-scale", "-fabric-workers", "0"},
		"bad partitions": {"-out", "-", "-suite", "fabric-scale", "-fabric-partitions", "0"},
		"bad experiment": {"-out", "-", "-suite", "fabric-scale", "-fabric-exp", "nope"},
	} {
		if err := run(context.Background(), args, &msg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestRunRejectsTinyPopulation(t *testing.T) {
	var msg strings.Builder
	if err := run(context.Background(), []string{"-n", "2"}, &msg); err == nil {
		t.Error("population 2 accepted")
	}
}

// TestRunInterruptedStillFlushes: a signal must not lose the session — a
// record flagged interrupted is appended with whatever finished, and the
// run reports the cancellation.
func TestRunInterruptedStillFlushes(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	path := filepath.Join(t.TempDir(), "BENCH_engines.json")
	var msg strings.Builder
	err := run(ctx, quickArgs(path), &msg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("no record flushed after interruption: %v", rerr)
	}
	var rec record
	if jerr := json.Unmarshal(data, &rec); jerr != nil {
		t.Fatalf("flushed record not valid JSON: %v\n%s", jerr, data)
	}
	if !rec.Interrupted {
		t.Errorf("record not flagged interrupted: %+v", rec)
	}
}
