package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// quickArgs keeps the smoke test fast: tiny instance, minimal timing
// windows.
func quickArgs(out string) []string {
	return []string{"-out", out, "-n", "2048", "-replicas", "16", "-budget", "2ms"}
}

func TestRunAppendsTrajectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_engines.json")
	var msg strings.Builder
	for i := 0; i < 2; i++ {
		if err := run(quickArgs(path), &msg); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(msg.String(), "appended") {
		t.Errorf("missing summary line: %q", msg.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines int
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		lines++
		var rec record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", lines, err)
		}
		if rec.N != 2048 || rec.Timestamp == "" || rec.GoVersion == "" {
			t.Errorf("line %d metadata incomplete: %+v", lines, rec)
		}
		for _, key := range []string{
			"agents/serial", "agents/sharded",
			"batch/uncached/ell=1", "batch/cached/ell=1",
			"batch/uncached/ell=3", "batch/cached/ell=3",
		} {
			m, ok := rec.Benchmarks[key]
			if !ok || m.NsPerOp <= 0 || m.Ops <= 0 {
				t.Errorf("line %d: benchmark %q missing or empty (%+v)", lines, key, m)
			}
		}
		if rec.ShardSpeedup <= 0 {
			t.Errorf("line %d: shard speedup %v", lines, rec.ShardSpeedup)
		}
		if len(rec.CacheSpeedup) != 3 {
			t.Errorf("line %d: cache speedups %v, want 3 entries", lines, rec.CacheSpeedup)
		}
	}
	if lines != 2 {
		t.Errorf("trajectory has %d lines after two runs, want 2", lines)
	}
}

func TestRunStdout(t *testing.T) {
	var msg strings.Builder
	if err := run(quickArgs("-"), &msg); err != nil {
		t.Fatal(err)
	}
	var rec record
	if err := json.Unmarshal([]byte(msg.String()), &rec); err != nil {
		t.Fatalf("stdout record not valid JSON: %v\n%s", err, msg.String())
	}
}

func TestRunRejectsTinyPopulation(t *testing.T) {
	var msg strings.Builder
	if err := run([]string{"-n", "2"}, &msg); err == nil {
		t.Error("population 2 accepted")
	}
}
