package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, id := range []string{"T1", "T7", "F4", "X7", "X12"} {
		if !strings.Contains(got, id) {
			t.Errorf("list missing %s:\n%s", id, got)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-exp", "T7", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "== T7") || !strings.Contains(got, "verdict:") {
		t.Errorf("experiment output:\n%s", got)
	}
}

func TestRunCommaSeparated(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-exp", "T6, T7", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "== T6") || !strings.Contains(got, "== T7") {
		t.Errorf("multi-experiment output:\n%s", got)
	}
}

func TestRunCSV(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-exp", "T6", "-quick", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "rule,") {
		t.Errorf("CSV header missing:\n%s", got)
	}
	if strings.Contains(got, "==") {
		t.Errorf("CSV mode leaked ASCII decoration:\n%s", got)
	}
}

// TestRunUnknownExperiment: a bad -exp must fail (main exits non-zero) and
// the error must name the valid IDs so the user can correct the call.
func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), []string{"-exp", "Z9"}, &out)
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"Z9"`) {
		t.Errorf("error does not name the bad ID: %v", err)
	}
	for _, id := range []string{"T1", "F4", "X12"} {
		if !strings.Contains(msg, id) {
			t.Errorf("error does not list valid ID %s: %v", id, err)
		}
	}
}

func TestRunMarkdown(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-exp", "T7", "-quick", "-md"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "| ID | Title |") {
		t.Errorf("markdown header missing:\n%s", got)
	}
	if !strings.Contains(got, "| T7 |") {
		t.Errorf("markdown row missing:\n%s", got)
	}
	// Pipes inside cells must be escaped so the table stays intact.
	if strings.Contains(got, " |E[X") {
		t.Errorf("unescaped pipe leaked:\n%s", got)
	}
}

func TestRunResumeNeedsJournal(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), []string{"-exp", "T7", "-resume"}, &out); err == nil {
		t.Error("-resume without -journal accepted")
	}
}

// TestRunCancelledSweepSuggestsResume: an interrupted sweep must fail with
// the context error and, when a journal is in play, tell the user how to
// resume.
func TestRunCancelledSweepSuggestsResume(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	var out strings.Builder
	err := run(ctx, []string{"-exp", "T2", "-quick", "-journal", path}, &out)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "-resume") {
		t.Errorf("interruption error missing the resume hint: %v", err)
	}
}

// TestRunResumeReproducesSweep is the acceptance scenario: a sweep killed
// mid-way leaves a journal with a prefix of the work, and resuming from it
// must print the exact same final table as an uninterrupted run.
func TestRunResumeReproducesSweep(t *testing.T) {
	args := func(extra ...string) []string {
		return append([]string{"-exp", "T2", "-quick"}, extra...)
	}
	var want strings.Builder
	if err := run(context.Background(), args(), &want); err != nil {
		t.Fatal(err)
	}

	// Full run with a journal: same table, checkpoint on disk.
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	var journalled strings.Builder
	if err := run(context.Background(), args("-journal", path), &journalled); err != nil {
		t.Fatal(err)
	}
	if stripTimings(journalled.String()) != stripTimings(want.String()) {
		t.Error("journalled run differs from plain run")
	}

	// Simulate a sweep killed mid-way: keep only the first half of the
	// checkpoint, then resume. The table must come out identical.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("journal too small to truncate meaningfully (%d lines)", len(lines))
	}
	partial := strings.Join(lines[:len(lines)/2], "\n") + "\n"
	if err := os.WriteFile(path, []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}
	var resumed strings.Builder
	if err := run(context.Background(), args("-journal", path, "-resume"), &resumed); err != nil {
		t.Fatal(err)
	}
	got := resumed.String()
	if !strings.Contains(got, "resuming:") {
		t.Errorf("resume banner missing:\n%s", got)
	}
	got = got[strings.Index(got, "== T2"):] // drop the banner before comparing
	if stripTimings(got) != stripTimings(want.String()) {
		t.Errorf("resumed sweep differs from uninterrupted run:\n--- want\n%s\n--- got\n%s", want.String(), got)
	}
}

// stripTimings removes the wall-clock trailer lines, the only
// run-dependent part of the output.
func stripTimings(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "(") && strings.HasSuffix(line, "s)") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// Flag validation for the fabric transports, table-driven: every bad
// combination must fail before any work starts.
func TestRunFabricFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"partition without journal", []string{"-partition", "0/2"}, "-partition needs -journal"},
		{"partition with join", []string{"-partition", "0/2", "-join", "a.jsonl,b.jsonl", "-journal", "m.jsonl"}, "mutually exclusive"},
		{"join without journal", []string{"-join", "a.jsonl,b.jsonl"}, "-join needs -journal"},
		{"join single literal", []string{"-join", "only.jsonl", "-journal", "m.jsonl"}, "at least two shard files or a glob"},
		{"join empty list", []string{"-join", " , ", "-journal", "m.jsonl"}, "at least two shard files or a glob"},
		{"bad partition syntax", []string{"-partition", "2", "-journal", "s.jsonl"}, "bad partition"},
		{"partition index out of range", []string{"-partition", "2/2", "-journal", "s.jsonl"}, "outside"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out strings.Builder
			err := run(context.Background(), c.args, &out)
			if err == nil {
				t.Fatalf("args %v accepted", c.args)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("args %v: error %q missing %q", c.args, err, c.want)
			}
		})
	}
}

// A glob that matches nothing is an error, not an empty merge.
func TestRunJoinGlobMatchesNothing(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run(context.Background(), []string{
		"-join", filepath.Join(dir, "shard*.jsonl"),
		"-journal", filepath.Join(dir, "merged.jsonl"),
	}, &out)
	if err == nil || !strings.Contains(err.Error(), "matched no shard files") {
		t.Fatalf("empty glob: %v", err)
	}
}

// The tentpole acceptance scenario at the CLI: partitions 0/2 and 1/2 run
// as separate invocations, -join merges them, and both the merged journal
// bytes and the rendered tables are identical to a single-process
// -workers 1 run.
func TestRunPartitionJoinByteIdentity(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-exp", "T2,F1", "-quick", "-seed", "7"}

	// Single-process reference: one worker, one journal.
	ref := filepath.Join(dir, "ref.jsonl")
	var want strings.Builder
	if err := run(context.Background(), append(base, "-workers", "1", "-journal", ref), &want); err != nil {
		t.Fatal(err)
	}
	refBytes, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(refBytes) == 0 {
		t.Fatal("reference journal empty")
	}

	// Two independent shard processes (parallel sim workers inside each).
	for i := 0; i < 2; i++ {
		var out strings.Builder
		shardArgs := append(base, "-partition", fmt.Sprintf("%d/2", i),
			"-journal", filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i)))
		if err := run(context.Background(), shardArgs, &out); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if !strings.Contains(out.String(), "replicas checkpointed") {
			t.Fatalf("shard %d banner missing:\n%s", i, out.String())
		}
	}

	// Join via glob and render.
	merged := filepath.Join(dir, "merged.jsonl")
	var joined strings.Builder
	joinArgs := append(base, "-join", filepath.Join(dir, "shard*.jsonl"), "-journal", merged)
	if err := run(context.Background(), joinArgs, &joined); err != nil {
		t.Fatal(err)
	}
	mergedBytes, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(mergedBytes) != string(refBytes) {
		t.Error("merged journal is not byte-identical to the single-process reference")
	}

	got := joined.String()
	if !strings.Contains(got, "joined") {
		t.Errorf("join banner missing:\n%s", got)
	}
	got = got[strings.Index(got, "== T2"):]
	wantTables := want.String()[strings.Index(want.String(), "== T2"):]
	if stripTimings(got) != stripTimings(wantTables) {
		t.Errorf("joined tables differ from single-process run:\n--- want\n%s\n--- got\n%s", wantTables, got)
	}
}

// Overlapping shards are legal: a full 0/1 "shard" plus a 0/2 shard merge
// with every duplicate verified and deduplicated.
func TestRunJoinOverlappingShards(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-exp", "T2", "-quick", "-seed", "7"}
	for i, p := range []string{"0/2", "0/1"} {
		var out strings.Builder
		args := append(base, "-partition", p, "-journal", filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i)))
		if err := run(context.Background(), args, &out); err != nil {
			t.Fatalf("shard %s: %v", p, err)
		}
	}
	merged := filepath.Join(dir, "merged.jsonl")
	var joined strings.Builder
	args := append(base, "-join", filepath.Join(dir, "shard0.jsonl")+","+filepath.Join(dir, "shard1.jsonl"), "-journal", merged)
	if err := run(context.Background(), args, &joined); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(joined.String(), "duplicates deduped") {
		t.Errorf("join stats missing dedup count:\n%s", joined.String())
	}

	// Reference for byte comparison.
	ref := filepath.Join(dir, "ref.jsonl")
	var want strings.Builder
	if err := run(context.Background(), append(base, "-workers", "1", "-journal", ref), &want); err != nil {
		t.Fatal(err)
	}
	refBytes, _ := os.ReadFile(ref)
	gotBytes, _ := os.ReadFile(merged)
	if string(gotBytes) != string(refBytes) {
		t.Error("overlapping merge differs from reference")
	}
}
