package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, id := range []string{"T1", "T7", "F4", "X7"} {
		if !strings.Contains(got, id) {
			t.Errorf("list missing %s:\n%s", id, got)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "T7", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "== T7") || !strings.Contains(got, "verdict:") {
		t.Errorf("experiment output:\n%s", got)
	}
}

func TestRunCommaSeparated(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "T6, T7", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "== T6") || !strings.Contains(got, "== T7") {
		t.Errorf("multi-experiment output:\n%s", got)
	}
}

func TestRunCSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "T6", "-quick", "-csv"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "rule,") {
		t.Errorf("CSV header missing:\n%s", got)
	}
	if strings.Contains(got, "==") {
		t.Errorf("CSV mode leaked ASCII decoration:\n%s", got)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "Z9"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunMarkdown(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-exp", "T7", "-quick", "-md"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "| ID | Title |") {
		t.Errorf("markdown header missing:\n%s", got)
	}
	if !strings.Contains(got, "| T7 |") {
		t.Errorf("markdown row missing:\n%s", got)
	}
	// Pipes inside cells must be escaped so the table stays intact.
	if strings.Contains(got, " |E[X") {
		t.Errorf("unescaped pipe leaked:\n%s", got)
	}
}
