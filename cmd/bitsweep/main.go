// Command bitsweep runs the reproduction harness: every experiment in the
// paper-vs-measured index (DESIGN.md §4, EXPERIMENTS.md) or a selected
// subset, printing each experiment's table and verdict.
//
// Examples:
//
//	bitsweep -list
//	bitsweep -exp T2
//	bitsweep -exp all -quick
//	bitsweep -exp F4 -csv > f4.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"bitspread/internal/experiments"
	"bitspread/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bitsweep:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bitsweep", flag.ContinueOnError)
	var (
		expSpec = fs.String("exp", "all", "experiment ID (e.g. T2, F4) or 'all'")
		list    = fs.Bool("list", false, "list experiments and exit")
		quick   = fs.Bool("quick", false, "reduced sizes (seconds instead of minutes)")
		seed    = fs.Uint64("seed", 2024, "random seed")
		workers = fs.Int("workers", 0, "simulation worker goroutines (0: GOMAXPROCS)")
		csv     = fs.Bool("csv", false, "emit CSV instead of ASCII tables")
		md      = fs.Bool("md", false, "emit a Markdown paper-vs-measured table (the EXPERIMENTS.md format)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(w, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	var selected []experiments.Experiment
	if *expSpec == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*expSpec, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: %s)",
					id, strings.Join(experiments.IDs(), ", "))
			}
			selected = append(selected, e)
		}
	}

	opts := experiments.Options{Seed: *seed, Workers: *workers, Quick: *quick}
	if *md {
		return writeMarkdown(w, selected, opts)
	}
	for _, e := range selected {
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *csv {
			if tb, ok := res.Table.(*table.Table); ok {
				if err := tb.WriteCSV(w); err != nil {
					return err
				}
				continue
			}
		}
		fmt.Fprintf(w, "== %s — %s ==\n", e.ID, e.Title)
		fmt.Fprintf(w, "claim: %s\n\n", e.Claim)
		fmt.Fprintln(w, res.Table.String())
		fmt.Fprintf(w, "verdict: %s\n", res.Verdict)
		fmt.Fprintf(w, "(%.1fs)\n\n", time.Since(start).Seconds())
	}
	return nil
}

// writeMarkdown renders a paper-vs-measured Markdown table, one row per
// experiment — the machine-regenerated core of EXPERIMENTS.md.
func writeMarkdown(w io.Writer, selected []experiments.Experiment, opts experiments.Options) error {
	fmt.Fprintln(w, "| ID | Title | Paper predicts | Measured |")
	fmt.Fprintln(w, "|----|-------|----------------|----------|")
	for _, e := range selected {
		res, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n",
			e.ID, mdEscape(e.Title), mdEscape(e.Claim), mdEscape(res.Verdict))
	}
	return nil
}

// mdEscape keeps table cells on one line and protects pipes.
func mdEscape(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	return strings.ReplaceAll(s, "\n", " ")
}
