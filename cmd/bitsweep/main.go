// Command bitsweep runs the reproduction harness: every experiment in the
// paper-vs-measured index (DESIGN.md §4, EXPERIMENTS.md) or a selected
// subset, printing each experiment's table and verdict.
//
// Long sweeps are interruptible and resumable: SIGINT/SIGTERM (and
// -timeout) cancel the in-flight simulations at the next round boundary,
// and with -journal every finished replica is checkpointed to a JSONL
// file, so re-running with -resume picks up exactly where the sweep
// stopped and lands on the same final tables.
//
// Examples:
//
//	bitsweep -list
//	bitsweep -exp T2
//	bitsweep -exp all -quick
//	bitsweep -exp F4 -csv > f4.csv
//	bitsweep -exp all -journal sweep.jsonl          # ^C-safe
//	bitsweep -exp all -journal sweep.jsonl -resume  # continue after ^C
//
// Sweeps also distribute across machines with zero coordination
// (internal/fabric): each worker runs one shard of the deterministic
// (task, replica) partition, and the shard journals merge into a
// checkpoint byte-identical to a single-process run:
//
//	bitsweep -exp all -partition 0/2 -journal shard0.jsonl   # worker 1
//	bitsweep -exp all -partition 1/2 -journal shard1.jsonl   # worker 2
//	bitsweep -exp all -join 'shard*.jsonl' -journal merged.jsonl
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"bitspread/internal/experiments"
	"bitspread/internal/fabric"
	"bitspread/internal/obs"
	"bitspread/internal/sim"
	"bitspread/internal/table"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bitsweep:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, w io.Writer) (err error) {
	fs := flag.NewFlagSet("bitsweep", flag.ContinueOnError)
	var prof obs.Profile
	prof.Register(fs)
	var (
		metricsPath = fs.String("metrics", "", `write a Prometheus-style metrics snapshot of the sweep at exit ("-": stdout)`)
		spansPath   = fs.String("spans", "", "write run-level JSONL spans (replica lifecycle, checkpoints, recoveries) to this file")
		expSpec = fs.String("exp", "all", "experiment ID (e.g. T2, F4) or 'all'")
		list    = fs.Bool("list", false, "list experiments and exit")
		quick   = fs.Bool("quick", false, "reduced sizes (seconds instead of minutes)")
		seed    = fs.Uint64("seed", 2024, "random seed")
		workers = fs.Int("workers", 0, "simulation worker goroutines (0: GOMAXPROCS)")
		csv     = fs.Bool("csv", false, "emit CSV instead of ASCII tables")
		md      = fs.Bool("md", false, "emit a Markdown paper-vs-measured table (the EXPERIMENTS.md format)")
		journal   = fs.String("journal", "", "JSONL checkpoint file: every finished replica is flushed here")
		resume    = fs.Bool("resume", false, "load finished replicas from the -journal file instead of recomputing them")
		timeout   = fs.Duration("timeout", 0, "wall-clock budget for the whole sweep (0: none)")
		partition = fs.String("partition", "", "run one shard i/N of the sweep's (task, replica) space, checkpointing owned replicas to -journal (no tables)")
		join      = fs.String("join", "", "comma-separated shard journals or globs; merge them into -journal and render from the merged checkpoint")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.Start(); err != nil {
		return err
	}
	defer func() {
		if perr := prof.Stop(); perr != nil && err == nil {
			err = perr
		}
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	if *resume && *journal == "" {
		return errors.New("-resume needs -journal to know which checkpoint to load")
	}
	if *partition != "" && *join != "" {
		return errors.New("-partition and -join are mutually exclusive: a process either produces one shard or merges finished shards")
	}
	if *partition != "" && *journal == "" {
		return errors.New("-partition needs -journal: the shard's only output is its checkpoint file")
	}
	if *join != "" && *journal == "" {
		return errors.New("-join needs -journal as the merge destination")
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(w, "%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return nil
	}

	if *partition != "" {
		shard, err := fabric.ParseShard(*partition)
		if err != nil {
			return err
		}
		var exps []string
		if *expSpec != "all" {
			exps = strings.Split(*expSpec, ",")
		}
		spec := fabric.SweepSpec{Exps: exps, Seed: *seed, Quick: *quick, SimWorkers: *workers}
		logf := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }
		stats, err := fabric.RunShard(ctx, spec, shard, *journal, *resume, logf)
		if err != nil {
			return sweepErr("shard "+shard.String(), err, *journal)
		}
		fmt.Fprintf(w, "shard %s: %d replicas checkpointed to %s (%d experiments, %d partial-data errors tolerated)\n",
			shard, stats.Checkpointed, *journal, stats.Experiments, stats.TolerableErrors)
		return nil
	}

	if *join != "" {
		srcs, err := expandJoin(*join)
		if err != nil {
			return err
		}
		stats, err := sim.MergeJournalFiles(*journal, srcs...)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "joined %s -> %s\n\n", stats, *journal)
		// Render from the merged checkpoint exactly like -resume: replicas
		// every shard covered are served back, gaps are recomputed.
		*resume = true
	}

	var selected []experiments.Experiment
	if *expSpec == "all" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*expSpec, ",") {
			e, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: %s)",
					id, strings.Join(experiments.IDs(), ", "))
			}
			selected = append(selected, e)
		}
	}

	var ckpt *sim.Journal
	if *journal != "" {
		var err error
		ckpt, err = sim.OpenJournal(*journal, *resume)
		if err != nil {
			return err
		}
		defer ckpt.Close()
		if *resume {
			fmt.Fprintf(w, "resuming: %d replicas served from %s\n\n", ckpt.Len(), *journal)
		}
	}

	opts := experiments.Options{Seed: *seed, Workers: *workers, Quick: *quick, Ctx: ctx, Journal: ckpt}

	// Instrumentation: a shared registry feeds both the engine probe and
	// the run observer; spans go to their own JSONL file next to the
	// journal.
	var reg *obs.Registry
	var spans *obs.SpanWriter
	if *metricsPath != "" || *spansPath != "" {
		reg = obs.NewRegistry()
		if *spansPath != "" {
			f, ferr := os.Create(*spansPath)
			if ferr != nil {
				return ferr
			}
			defer f.Close()
			spans = obs.NewSpanWriter(f)
			defer func() {
				if serr := spans.Close(); serr != nil && err == nil {
					err = serr
				}
			}()
		}
		opts.Probe = obs.NewMetrics(reg)
		opts.Observer = obs.NewRunObserver(spans, reg)
		defer func() {
			if merr := obs.WriteSnapshot(reg, *metricsPath, w); merr != nil && err == nil {
				err = merr
			}
		}()
	}

	if *md {
		return writeMarkdown(w, selected, opts)
	}
	for _, e := range selected {
		start := time.Now() //bitlint:wallclock progress reporting only; experiment results never read it
		res, err := e.Run(opts)
		if err != nil {
			return sweepErr(e.ID, err, *journal)
		}
		if *csv {
			if tb, ok := res.Table.(*table.Table); ok {
				if err := tb.WriteCSV(w); err != nil {
					return err
				}
				continue
			}
		}
		fmt.Fprintf(w, "== %s — %s ==\n", e.ID, e.Title)
		fmt.Fprintf(w, "claim: %s\n\n", e.Claim)
		fmt.Fprintln(w, res.Table.String())
		fmt.Fprintf(w, "verdict: %s\n", res.Verdict)
		//bitlint:wallclock progress reporting only; experiment results never read it
		fmt.Fprintf(w, "(%.1fs)\n\n", time.Since(start).Seconds())
	}
	return nil
}

// expandJoin resolves the -join argument: comma-separated shard paths,
// each either a literal file or a glob. Merging fewer than two literal
// inputs is almost certainly a typo'd single path, so it is rejected
// unless a glob was given (a glob legitimately matches however many
// shards finished).
func expandJoin(spec string) ([]string, error) {
	var paths []string
	hasGlob := false
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if strings.ContainsAny(part, "*?[") {
			hasGlob = true
			matches, err := filepath.Glob(part)
			if err != nil {
				return nil, fmt.Errorf("-join pattern %q: %w", part, err)
			}
			paths = append(paths, matches...)
		} else {
			paths = append(paths, part)
		}
	}
	if !hasGlob && len(paths) < 2 {
		return nil, fmt.Errorf("-join needs at least two shard files or a glob pattern, got %d input(s)", len(paths))
	}
	if len(paths) == 0 {
		return nil, errors.New("-join matched no shard files")
	}
	sort.Strings(paths)
	return paths, nil
}

// sweepErr wraps an experiment failure; for an interruption it adds the
// resume recipe, since the whole point of the checkpoint is that ^C is
// cheap.
func sweepErr(id string, err error, journal string) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if journal != "" {
			return fmt.Errorf("%s: %w — finished replicas are checkpointed; re-run with -journal %s -resume to continue", id, err, journal)
		}
		return fmt.Errorf("%s: %w — run with -journal FILE to make interruptions resumable", id, err)
	}
	return fmt.Errorf("%s: %w", id, err)
}

// writeMarkdown renders a paper-vs-measured Markdown table, one row per
// experiment — the machine-regenerated core of EXPERIMENTS.md.
func writeMarkdown(w io.Writer, selected []experiments.Experiment, opts experiments.Options) error {
	fmt.Fprintln(w, "| ID | Title | Paper predicts | Measured |")
	fmt.Fprintln(w, "|----|-------|----------------|----------|")
	for _, e := range selected {
		res, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n",
			e.ID, mdEscape(e.Title), mdEscape(e.Claim), mdEscape(res.Verdict))
	}
	return nil
}

// mdEscape keeps table cells on one line and protects pipes.
func mdEscape(s string) string {
	s = strings.ReplaceAll(s, "|", "\\|")
	return strings.ReplaceAll(s, "\n", " ")
}
