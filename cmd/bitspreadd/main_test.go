package main

// End-to-end robustness proofs against a real daemon process: the child
// test binary re-execs itself as bitspreadd (TestMain), the parent
// drives it over HTTP and kills it for real — SIGKILL mid-sweep for the
// crash/resume byte-identity proof, SIGTERM for the graceful-drain
// proof. The in-process variants of these properties live in
// internal/serve; these tests are the ones a supervisor (systemd, k8s)
// actually exercises.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"bitspread/internal/serve"
)

func TestMain(m *testing.M) {
	if os.Getenv("BITSPREADD_CHILD") == "1" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		code := 0
		if err := run(ctx, strings.Fields(os.Getenv("BITSPREADD_ARGS")), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bitspreadd:", err)
			code = 1
		}
		stop()
		os.Exit(code)
	}
	os.Exit(m.Run())
}

// e2eSpec is a job whose replicas each run their full round cap (the
// anti-voter never stabilizes), giving the kill tests a wide window of
// mid-job state while staying seconds-scale overall.
func e2eSpec(replicas int) serve.JobSpec {
	x0 := int64(1024)
	return serve.JobSpec{
		Name:      "e2e",
		N:         2048,
		Z:         1,
		X0:        &x0,
		Rule:      "antivoter",
		Mode:      "agents",
		Replicas:  replicas,
		Seed:      11,
		MaxRounds: 6000,
	}
}

// daemon is one child bitspreadd process under test.
type daemon struct {
	t      *testing.T
	cmd    *exec.Cmd
	url    string
	lines  chan string
	waited bool
}

// startDaemon re-execs the test binary as a bitspreadd child with the
// given flags and waits for its "listening on" line.
func startDaemon(t *testing.T, args string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "BITSPREADD_CHILD=1", "BITSPREADD_ARGS="+args)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	addrCh := make(chan string, 1)
	lines := make(chan string, 64)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if a, ok := strings.CutPrefix(line, "bitspreadd: listening on "); ok {
				addrCh <- a
				continue
			}
			select {
			case lines <- line:
			default:
			}
		}
	}()
	d := &daemon{t: t, cmd: cmd, lines: lines}
	t.Cleanup(d.kill)
	select {
	case a := <-addrCh:
		d.url = "http://" + a
		return d
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never reported its listen address")
		return nil
	}
}

// kill force-stops the child if a test exits with it still running.
func (d *daemon) kill() {
	if d.waited {
		return
	}
	_ = d.cmd.Process.Kill()
	_ = d.cmd.Wait()
	d.waited = true
}

// wait reaps the child and returns its exit error (nil for exit 0).
func (d *daemon) wait() error {
	err := d.cmd.Wait()
	d.waited = true
	return err
}

// submit posts a job spec and returns the HTTP code and decoded status.
func submit(t *testing.T, url string, spec serve.JobSpec) (int, serve.JobStatus) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var js serve.JobStatus
	_ = json.NewDecoder(resp.Body).Decode(&js)
	return resp.StatusCode, js
}

// getStatus fetches one job's status; a transport error returns code 0.
func getStatus(url, id string) (int, serve.JobStatus) {
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		return 0, serve.JobStatus{}
	}
	defer resp.Body.Close()
	var js serve.JobStatus
	_ = json.NewDecoder(resp.Body).Decode(&js)
	return resp.StatusCode, js
}

// waitDone polls until the job finishes, failing on a non-done end.
func waitDone(t *testing.T, url, id string) {
	t.Helper()
	for i := 0; i < 12000; i++ {
		if _, js := getStatus(url, id); js.State != "" {
			switch js.State {
			case "done":
				return
			case "failed", "cancelled":
				t.Fatalf("job %s ended %q (error %q)", id, js.State, js.Error)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
}

// getResult fetches the canonical result payload.
func getResult(t *testing.T, url, id string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: code %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read result: %v", err)
	}
	return buf.Bytes()
}

// TestSIGKILLRestartResumesByteIdentical is the crash/resume acceptance
// proof: SIGKILL a daemon mid-sweep, restart it on the same data
// directory, and the merged journal-plus-recomputed result is
// byte-identical to an uninterrupted run in a fresh universe.
func TestSIGKILLRestartResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e test")
	}
	spec := e2eSpec(60)
	dir := t.TempDir()
	args := "-addr 127.0.0.1:0 -workers 1 -data " + dir

	d1 := startDaemon(t, args)
	code, js := submit(t, d1.url, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	id := js.ID

	// Wait for real mid-job state — at least two replicas checkpointed —
	// then kill without ceremony.
	journal := filepath.Join(dir, "replicas.jsonl")
	checkpointed := false
	for i := 0; i < 30000; i++ {
		if b, err := os.ReadFile(journal); err == nil && bytes.Count(b, []byte("\n")) >= 2 {
			checkpointed = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !checkpointed {
		t.Fatal("no replicas checkpointed before the kill window closed")
	}
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = d1.wait() // non-zero exit expected: it was murdered

	// Restart on the same directory: the intent log re-enqueues the job,
	// the journal serves the finished replicas, and the job completes.
	d2 := startDaemon(t, args)
	waitDone(t, d2.url, id)
	resumed := getResult(t, d2.url, id)
	d2.kill()

	// Control: the same spec, uninterrupted, in a fresh data directory.
	d3 := startDaemon(t, "-addr 127.0.0.1:0 -workers 1 -data "+t.TempDir())
	code, js3 := submit(t, d3.url, spec)
	if code != http.StatusAccepted || js3.ID != id {
		t.Fatalf("control submit: code %d id %s (want %s — same spec, same address)", code, js3.ID, id)
	}
	waitDone(t, d3.url, id)
	control := getResult(t, d3.url, id)

	if !bytes.Equal(resumed, control) {
		t.Fatalf("SIGKILL+resume result differs from uninterrupted run:\nresumed: %.200s...\ncontrol: %.200s...", resumed, control)
	}
}

// TestSIGTERMDrainsAndExitsZero is the graceful-degradation proof: on
// SIGTERM the daemon finishes its in-flight job, rejects new work with
// 503, exits 0, and leaves the completed result durable on disk.
func TestSIGTERMDrainsAndExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e test")
	}
	spec := e2eSpec(60)
	dir := t.TempDir()
	args := "-addr 127.0.0.1:0 -workers 1 -drain-timeout 120s -data " + dir

	d := startDaemon(t, args)
	code, js := submit(t, d.url, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	id := js.ID
	for i := 0; ; i++ {
		if _, s := getStatus(d.url, id); s.State == "running" {
			break
		}
		if i >= 12000 {
			t.Fatal("job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	// Readiness flips while the in-flight job keeps running...
	for i := 0; ; i++ {
		resp, err := http.Get(d.url + "/readyz")
		if err == nil {
			rcode := resp.StatusCode
			resp.Body.Close()
			if rcode == http.StatusServiceUnavailable {
				break
			}
		}
		if i >= 2000 {
			t.Fatal("readyz never flipped to 503 after SIGTERM")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// ...and new submissions are shed with a retry hint.
	other := e2eSpec(60)
	other.Seed = 99
	if code, _ := submit(t, d.url, other); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: code %d, want 503", code)
	}

	if err := d.wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v, want clean exit 0", err)
	}
	var sawDraining bool
	for line := range d.lines {
		if strings.Contains(line, "draining") {
			sawDraining = true
		}
	}
	if !sawDraining {
		t.Error("daemon never announced the drain")
	}

	// The drained job finished and survived the process: a fresh daemon
	// serves its result straight from the on-disk state.
	d2 := startDaemon(t, args)
	scode, status := getStatus(d2.url, id)
	if scode != http.StatusOK || status.State != "done" {
		t.Fatalf("after restart: code %d state %q, want done", scode, status.State)
	}
	if payload := getResult(t, d2.url, id); len(payload) == 0 {
		t.Fatal("empty result after drain and restart")
	}
}

// TestBadFlags keeps the flag surface honest without a subprocess.
func TestBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-definitely-not-a-flag"}, os.Stderr); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
