package main

// End-to-end robustness proofs against a real daemon process: the child
// test binary re-execs itself as bitspreadd (TestMain), the parent
// drives it over HTTP and kills it for real — SIGKILL mid-sweep for the
// crash/resume byte-identity proof, SIGTERM for the graceful-drain
// proof. The in-process variants of these properties live in
// internal/serve; these tests are the ones a supervisor (systemd, k8s)
// actually exercises.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"bitspread/internal/experiments"
	"bitspread/internal/fabric"
	"bitspread/internal/serve"
	"bitspread/internal/sim"
)

func TestMain(m *testing.M) {
	if os.Getenv("BITSPREADD_CHILD") == "1" {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		code := 0
		if err := run(ctx, strings.Fields(os.Getenv("BITSPREADD_ARGS")), os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bitspreadd:", err)
			code = 1
		}
		stop()
		os.Exit(code)
	}
	os.Exit(m.Run())
}

// e2eSpec is a job whose replicas each run their full round cap (the
// anti-voter never stabilizes), giving the kill tests a wide window of
// mid-job state while staying seconds-scale overall.
func e2eSpec(replicas int) serve.JobSpec {
	x0 := int64(1024)
	return serve.JobSpec{
		Name:      "e2e",
		N:         2048,
		Z:         1,
		X0:        &x0,
		Rule:      "antivoter",
		Mode:      "agents",
		Replicas:  replicas,
		Seed:      11,
		MaxRounds: 6000,
	}
}

// daemon is one child bitspreadd process under test.
type daemon struct {
	t      *testing.T
	cmd    *exec.Cmd
	url    string
	lines  chan string
	waited bool
}

// startDaemon re-execs the test binary as a bitspreadd child with the
// given flags and waits for its "listening on" line.
func startDaemon(t *testing.T, args string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "BITSPREADD_CHILD=1", "BITSPREADD_ARGS="+args)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start daemon: %v", err)
	}
	addrCh := make(chan string, 1)
	lines := make(chan string, 64)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if a, ok := strings.CutPrefix(line, "bitspreadd: listening on "); ok {
				addrCh <- a
				continue
			}
			select {
			case lines <- line:
			default:
			}
		}
	}()
	d := &daemon{t: t, cmd: cmd, lines: lines}
	t.Cleanup(d.kill)
	select {
	case a := <-addrCh:
		d.url = "http://" + a
		return d
	case <-time.After(60 * time.Second):
		t.Fatal("daemon never reported its listen address")
		return nil
	}
}

// kill force-stops the child if a test exits with it still running.
func (d *daemon) kill() {
	if d.waited {
		return
	}
	_ = d.cmd.Process.Kill()
	_ = d.cmd.Wait()
	d.waited = true
}

// wait reaps the child and returns its exit error (nil for exit 0).
func (d *daemon) wait() error {
	err := d.cmd.Wait()
	d.waited = true
	return err
}

// submit posts a job spec and returns the HTTP code and decoded status.
func submit(t *testing.T, url string, spec serve.JobSpec) (int, serve.JobStatus) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var js serve.JobStatus
	_ = json.NewDecoder(resp.Body).Decode(&js)
	return resp.StatusCode, js
}

// getStatus fetches one job's status; a transport error returns code 0.
func getStatus(url, id string) (int, serve.JobStatus) {
	resp, err := http.Get(url + "/v1/jobs/" + id)
	if err != nil {
		return 0, serve.JobStatus{}
	}
	defer resp.Body.Close()
	var js serve.JobStatus
	_ = json.NewDecoder(resp.Body).Decode(&js)
	return resp.StatusCode, js
}

// waitDone polls until the job finishes, failing on a non-done end.
func waitDone(t *testing.T, url, id string) {
	t.Helper()
	for i := 0; i < 12000; i++ {
		if _, js := getStatus(url, id); js.State != "" {
			switch js.State {
			case "done":
				return
			case "failed", "cancelled":
				t.Fatalf("job %s ended %q (error %q)", id, js.State, js.Error)
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
}

// getResult fetches the canonical result payload.
func getResult(t *testing.T, url, id string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: code %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read result: %v", err)
	}
	return buf.Bytes()
}

// TestSIGKILLRestartResumesByteIdentical is the crash/resume acceptance
// proof: SIGKILL a daemon mid-sweep, restart it on the same data
// directory, and the merged journal-plus-recomputed result is
// byte-identical to an uninterrupted run in a fresh universe.
func TestSIGKILLRestartResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e test")
	}
	spec := e2eSpec(60)
	dir := t.TempDir()
	args := "-addr 127.0.0.1:0 -workers 1 -data " + dir

	d1 := startDaemon(t, args)
	code, js := submit(t, d1.url, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	id := js.ID

	// Wait for real mid-job state — at least two replicas checkpointed —
	// then kill without ceremony.
	journal := filepath.Join(dir, "replicas.jsonl")
	checkpointed := false
	for i := 0; i < 30000; i++ {
		if b, err := os.ReadFile(journal); err == nil && bytes.Count(b, []byte("\n")) >= 2 {
			checkpointed = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !checkpointed {
		t.Fatal("no replicas checkpointed before the kill window closed")
	}
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = d1.wait() // non-zero exit expected: it was murdered

	// Restart on the same directory: the intent log re-enqueues the job,
	// the journal serves the finished replicas, and the job completes.
	d2 := startDaemon(t, args)
	waitDone(t, d2.url, id)
	resumed := getResult(t, d2.url, id)
	d2.kill()

	// Control: the same spec, uninterrupted, in a fresh data directory.
	d3 := startDaemon(t, "-addr 127.0.0.1:0 -workers 1 -data "+t.TempDir())
	code, js3 := submit(t, d3.url, spec)
	if code != http.StatusAccepted || js3.ID != id {
		t.Fatalf("control submit: code %d id %s (want %s — same spec, same address)", code, js3.ID, id)
	}
	waitDone(t, d3.url, id)
	control := getResult(t, d3.url, id)

	if !bytes.Equal(resumed, control) {
		t.Fatalf("SIGKILL+resume result differs from uninterrupted run:\nresumed: %.200s...\ncontrol: %.200s...", resumed, control)
	}
}

// TestSIGTERMDrainsAndExitsZero is the graceful-degradation proof: on
// SIGTERM the daemon finishes its in-flight job, rejects new work with
// 503, exits 0, and leaves the completed result durable on disk.
func TestSIGTERMDrainsAndExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e test")
	}
	spec := e2eSpec(60)
	dir := t.TempDir()
	args := "-addr 127.0.0.1:0 -workers 1 -drain-timeout 120s -data " + dir

	d := startDaemon(t, args)
	code, js := submit(t, d.url, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	id := js.ID
	for i := 0; ; i++ {
		if _, s := getStatus(d.url, id); s.State == "running" {
			break
		}
		if i >= 12000 {
			t.Fatal("job never started running")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	// Readiness flips while the in-flight job keeps running...
	for i := 0; ; i++ {
		resp, err := http.Get(d.url + "/readyz")
		if err == nil {
			rcode := resp.StatusCode
			resp.Body.Close()
			if rcode == http.StatusServiceUnavailable {
				break
			}
		}
		if i >= 2000 {
			t.Fatal("readyz never flipped to 503 after SIGTERM")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// ...and new submissions are shed with a retry hint.
	other := e2eSpec(60)
	other.Seed = 99
	if code, _ := submit(t, d.url, other); code != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: code %d, want 503", code)
	}

	if err := d.wait(); err != nil {
		t.Fatalf("daemon exit after SIGTERM: %v, want clean exit 0", err)
	}
	var sawDraining bool
	for line := range d.lines {
		if strings.Contains(line, "draining") {
			sawDraining = true
		}
	}
	if !sawDraining {
		t.Error("daemon never announced the drain")
	}

	// The drained job finished and survived the process: a fresh daemon
	// serves its result straight from the on-disk state.
	d2 := startDaemon(t, args)
	scode, status := getStatus(d2.url, id)
	if scode != http.StatusOK || status.State != "done" {
		t.Fatalf("after restart: code %d state %q, want done", scode, status.State)
	}
	if payload := getResult(t, d2.url, id); len(payload) == 0 {
		t.Fatal("empty result after drain and restart")
	}
}

// TestBadFlags keeps the flag surface honest without a subprocess.
func TestBadFlags(t *testing.T) {
	for name, args := range map[string][]string{
		"unknown flag":            {"-definitely-not-a-flag"},
		"pull plus coordinator":   {"-pull", "http://127.0.0.1:1", "-fabric-exp", "T2"},
		"worker without pull":     {"-worker", "w1"},
		"shard-dir without pull":  {"-shard-dir", "/tmp/x"},
		"pull without worker":     {"-pull", "http://127.0.0.1:1", "-shard-dir", "/tmp/x"},
		"pull without shard dir":  {"-pull", "http://127.0.0.1:1", "-worker", "w1"},
		"coordinator unknown exp": {"-fabric-exp", "nope", "-addr", "127.0.0.1:0"},
	} {
		if err := run(context.Background(), args, io.Discard); err == nil {
			t.Errorf("%s: accepted %q", name, args)
		}
	}
}

// startWorker re-execs the test binary as a bitspreadd pull worker. No
// address to wait for: workers announce themselves with a "pulling
// from" line and exit on their own when the sweep drains.
func startWorker(t *testing.T, name, url, dir string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	args := fmt.Sprintf("-pull %s -worker %s -shard-dir %s", url, name, dir)
	cmd.Env = append(os.Environ(), "BITSPREADD_CHILD=1", "BITSPREADD_ARGS="+args)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start worker: %v", err)
	}
	lines := make(chan string, 64)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			select {
			case lines <- sc.Text():
			default:
			}
		}
	}()
	d := &daemon{t: t, cmd: cmd, lines: lines}
	t.Cleanup(d.kill)
	return d
}

// fabricReferenceBytes is the single-process, single-worker journal the
// coordinator's merged output must reproduce byte for byte.
func fabricReferenceBytes(t *testing.T, spec fabric.SweepSpec) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ref.jsonl")
	j, err := sim.OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	exps, err := spec.Experiments()
	if err != nil {
		t.Fatal(err)
	}
	opts := experiments.Options{Seed: spec.Seed, Workers: 1, Quick: spec.Quick, Journal: j}
	for _, e := range exps {
		if _, err := e.Run(opts); err != nil {
			t.Fatalf("reference %s: %v", e.ID, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFabricWorkerSIGKILLReleaseByteIdentity is the distributed-sweep
// acceptance proof with real processes: a coordinator daemon leases
// partitions to a pull worker, the worker is SIGKILLed mid-lease, its
// expired lease is re-issued to a second worker, and the merged journal
// the coordinator finally serves is byte-identical to a single-process
// single-worker run.
func TestFabricWorkerSIGKILLReleaseByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess e2e test")
	}
	const ttl = 2 * time.Second
	spec := fabric.SweepSpec{Exps: []string{"T2", "F1"}, Seed: 7, Quick: true, SimWorkers: 1}
	want := fabricReferenceBytes(t, spec)

	coord := startDaemon(t, "-addr 127.0.0.1:0 -fabric-exp T2,F1 -fabric-seed 7 -fabric-quick -fabric-partitions 2 -lease-ttl "+ttl.String())

	// Worker 1 leases a partition and starts checkpointing replicas;
	// once its shard has real mid-lease state, murder it.
	w1dir := t.TempDir()
	w1 := startWorker(t, "w1", coord.url, w1dir)
	killed := false
	for i := 0; i < 30000; i++ {
		matches, _ := filepath.Glob(filepath.Join(w1dir, "shard-*.jsonl"))
		var total int
		for _, m := range matches {
			if b, err := os.ReadFile(m); err == nil {
				total += bytes.Count(b, []byte("\n"))
			}
		}
		if total >= 2 {
			killed = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !killed {
		t.Fatal("worker 1 never checkpointed replicas before the kill window closed")
	}
	if err := w1.cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL worker 1: %v", err)
	}
	_ = w1.wait() // non-zero exit expected: it was murdered

	// Let the dead worker's lease expire so the survivor triggers a
	// re-issue (not just a steal).
	time.Sleep(ttl + ttl/2)

	// Worker 2, fresh shard directory: it must pick up the orphaned
	// partition and drain the whole sweep, then exit 0 on its own.
	w2 := startWorker(t, "w2", coord.url, t.TempDir())
	if err := w2.wait(); err != nil {
		t.Fatalf("worker 2 exit: %v, want clean exit 0", err)
	}
	var sawDone bool
	for line := range w2.lines {
		if strings.Contains(line, "worker w2 done") {
			sawDone = true
		}
	}
	if !sawDone {
		t.Error("worker 2 never announced the drained sweep")
	}

	// The board records the recovery...
	resp, err := http.Get(coord.url + "/v1/fabric/status")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.FabricStatus
	_ = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if !st.Drained {
		t.Fatalf("status %+v, want drained", st)
	}
	if st.Board.Reissues < 1 {
		t.Errorf("board reissues = %d, want >= 1 (the SIGKILLed lease must have been re-issued)", st.Board.Reissues)
	}

	// ...and the merged journal is the single-process reference, byte
	// for byte, despite the crash and the re-lease.
	resp, err = http.Get(coord.url + "/v1/fabric/journal")
	if err != nil {
		t.Fatal(err)
	}
	got, rerr := io.ReadAll(resp.Body)
	resp.Body.Close()
	if rerr != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("journal: code %d err %v", resp.StatusCode, rerr)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("merged journal after SIGKILL + re-lease is not byte-identical to the single-process reference")
	}
}
