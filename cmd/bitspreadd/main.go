// Command bitspreadd is the crash-safe simulation daemon: a JSON HTTP
// service that accepts bit-dissemination jobs, runs them on a bounded
// worker pool behind per-tenant quotas and queue-depth admission
// control, and survives kills.
//
// Every accepted job is fsynced to an intent log before the client sees
// 202, every finished replica is checkpointed through the sim journal,
// and completed results are published to a content-addressed cache — so
// a SIGKILL'd daemon restarted on the same -data directory resumes its
// unfinished jobs and lands on byte-identical results. SIGTERM/SIGINT
// drain gracefully: in-flight jobs finish under -drain-timeout while new
// submissions get 503, then the process exits 0.
//
// Endpoints:
//
//	POST   /v1/jobs             submit a job spec (202, or 200 if cached)
//	GET    /v1/jobs             list known jobs
//	GET    /v1/jobs/{id}        job status
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/jobs/{id}/result canonical result payload (done jobs)
//	GET    /v1/jobs/{id}/events live NDJSON round/replica event stream
//	POST   /v1/protocols        register user bytecode (201, or 200 if known)
//	GET    /v1/protocols        list registered protocols
//	GET    /v1/protocols/{id}   one protocol with canonical disassembly
//	GET    /healthz, /readyz    liveness / readiness
//	GET    /metrics             Prometheus-style exposition
//
// User-defined decision rules arrive as gas-metered stack bytecode
// (internal/vm): POST /v1/protocols validates, classifies (environment
// models violating Proposition 3 are rejected with 422), and persists
// the program under its content address; jobs then reference it as
// "rule": "vm:<id>". Registered protocols survive restarts and replay
// before the job log, so recovered jobs resolve their bytecode.
//
// Examples:
//
//	bitspreadd -addr 127.0.0.1:8642 -data /var/lib/bitspreadd
//	curl -s localhost:8642/v1/jobs -d '{"n":4096,"z":1,"rule":"voter","replicas":100,"seed":7}'
//	curl -s localhost:8642/v1/jobs/<id>/result | jq .success_rate
//	curl -s localhost:8642/v1/protocols -d '{"asm":"name myrule\nell 2\nfrac\nhalt\n"}'
//	curl -s localhost:8642/v1/jobs -d '{"n":4096,"z":1,"rule":"vm:<id>","replicas":100,"seed":7}'
//
// With -fabric-exp the daemon additionally coordinates a distributed
// sweep (internal/fabric): it leases deterministic partitions of the
// (task, replica) space to pull workers over /v1/lease, re-issues
// leases whose holders die, and serves the merged journal — which is
// byte-identical to a single-process run — at /v1/fabric/journal.
// With -pull the process is a fleet worker instead of a daemon: it
// leases partitions from a coordinator, computes them locally with
// crash-safe shard checkpoints, and uploads the results until the
// sweep drains.
//
//	bitspreadd -addr :8642 -fabric-exp T2,F1 -fabric-partitions 4   # coordinator
//	bitspreadd -pull http://host:8642 -worker w1 -shard-dir /tmp/w1  # worker
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bitspread/internal/serve"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "bitspreadd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is cancelled (the signal
// handler) and the drain completes. The "listening on" line goes to w so
// callers binding port 0 can discover the address.
func run(ctx context.Context, args []string, w io.Writer) error {
	fs := flag.NewFlagSet("bitspreadd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8642", "listen address (host:port, port 0 picks a free one)")
		data         = fs.String("data", "", "durable state directory: intent log, replica journal, result cache (empty: memory-only, no crash recovery)")
		workers      = fs.Int("workers", 2, "job worker pool size")
		simWorkers   = fs.Int("sim-workers", 1, "replica parallelism within one job")
		queue        = fs.Int("queue", 64, "max jobs waiting for a worker; a full queue rejects with 503")
		rate         = fs.Float64("rate", 0, "per-tenant admission rate in jobs/second (0: quotas disabled)")
		burst        = fs.Int("burst", 8, "per-tenant token-bucket burst capacity")
		jobTimeout   = fs.Duration("job-timeout", 10*time.Minute, "wall-clock cap per job; specs may ask for less, never more")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget after SIGTERM/SIGINT")
		chaosSeed    = fs.Uint64("chaos-seed", 0, "seed for injected worker faults (fault drills)")
		chaosPanic   = fs.Float64("chaos-panic", 0, "probability a job's worker panics at start (fault drills)")
		chaosTimeout = fs.Float64("chaos-timeout", 0, "probability a job's deadline collapses to ~1ms (fault drills)")

		fabricExp        = fs.String("fabric-exp", "", "coordinate a distributed sweep of these comma-separated experiment IDs ('all': every experiment); enables the /v1/lease and /v1/fabric endpoints")
		fabricPartitions = fs.Int("fabric-partitions", 2, "number of (task, replica) partitions the fabric sweep is split into")
		fabricSeed       = fs.Uint64("fabric-seed", 2024, "random seed for the fabric sweep")
		fabricQuick      = fs.Bool("fabric-quick", false, "run the fabric sweep with reduced experiment sizes")
		fabricSimWorkers = fs.Int("fabric-sim-workers", 1, "replica parallelism each fabric worker uses inside its shard (0: worker's GOMAXPROCS)")
		leaseTTL         = fs.Duration("lease-ttl", time.Minute, "fabric lease time-to-live; a lease not renewed within this window is re-issued to another worker")

		pull       = fs.String("pull", "", "run as a fabric pull worker against this coordinator URL instead of serving")
		workerName = fs.String("worker", "", "worker name for -pull mode (lease accounting is per-worker)")
		shardDir   = fs.String("shard-dir", "", "crash-safe shard checkpoint directory for -pull mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	if *pull != "" {
		if *fabricExp != "" {
			return fmt.Errorf("-pull and -fabric-exp are mutually exclusive: a process is either a worker or a coordinator")
		}
		return runPullWorker(ctx, w, *pull, *workerName, *shardDir)
	}
	if *workerName != "" || *shardDir != "" {
		return fmt.Errorf("-worker and -shard-dir only apply in -pull mode")
	}

	// Operational diagnostics go to stderr via a mutex-protected logger;
	// stdout carries only the machine-scrapable lifecycle lines.
	diag := log.New(os.Stderr, "bitspreadd: ", 0)
	var chaos *serve.Chaos
	if *chaosPanic > 0 || *chaosTimeout > 0 {
		chaos = serve.NewChaos(*chaosSeed, *chaosPanic, *chaosTimeout)
		diag.Printf("chaos enabled: seed=%d panic=%g timeout=%g", *chaosSeed, *chaosPanic, *chaosTimeout)
	}

	var fabricOpts *serve.FabricOptions
	if *fabricExp != "" {
		var exps []string
		if *fabricExp != "all" {
			exps = strings.Split(*fabricExp, ",")
		}
		fabricOpts = &serve.FabricOptions{
			Exps:       exps,
			Seed:       *fabricSeed,
			Quick:      *fabricQuick,
			Partitions: *fabricPartitions,
			LeaseTTL:   *leaseTTL,
			SimWorkers: *fabricSimWorkers,
		}
		diag.Printf("fabric coordinator enabled: exps=%s partitions=%d ttl=%s", *fabricExp, *fabricPartitions, *leaseTTL)
	}

	s, err := serve.New(serve.Options{
		DataDir:     *data,
		Workers:     *workers,
		SimWorkers:  *simWorkers,
		QueueDepth:  *queue,
		TenantRate:  *rate,
		TenantBurst: *burst,
		JobTimeout:  *jobTimeout,
		Chaos:       chaos,
		Fabric:      fabricOpts,
		Logf:        diag.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		s.Close()
		return err
	}
	fmt.Fprintf(w, "bitspreadd: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		s.Close()
		return fmt.Errorf("http server: %w", err)
	case <-ctx.Done():
	}

	// Graceful degradation: readiness flips and new submissions get 503
	// immediately, in-flight jobs get drainTimeout to finish, and whatever
	// the deadline cuts off is left resumable in the journal — so the
	// daemon still exits 0 with its state safe on disk.
	fmt.Fprintln(w, "bitspreadd: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if derr := s.Drain(dctx); derr != nil {
		diag.Printf("drain deadline exceeded; interrupted jobs will resume from the journal on restart")
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if serr := httpSrv.Shutdown(sctx); serr != nil {
		diag.Printf("http shutdown: %v", serr)
	}
	fmt.Fprintln(w, "bitspreadd: stopped")
	return nil
}

// runPullWorker is -pull mode: lease partitions from the coordinator,
// compute them with crash-safe checkpoints, upload, repeat until the
// sweep drains. The lifecycle lines on w mirror the daemon's so the
// same supervisors can scrape either mode.
func runPullWorker(ctx context.Context, w io.Writer, url, name, dir string) error {
	diag := log.New(os.Stderr, "bitspreadd: ", 0)
	fmt.Fprintf(w, "bitspreadd: worker %s pulling from %s\n", name, url)
	err := serve.RunPullWorker(ctx, serve.PullWorkerOptions{
		URL:      url,
		Name:     name,
		ShardDir: dir,
		Logf:     diag.Printf,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "bitspreadd: worker %s done\n", name)
	return nil
}
