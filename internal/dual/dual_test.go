package dual

import (
	"math"
	"testing"

	"bitspread/internal/rng"
)

func TestRunValidation(t *testing.T) {
	g := rng.New(1)
	if _, err := Run(1, 10, 1, 0, g); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Run(10, 10, 2, 0, g); err == nil {
		t.Error("z=2 accepted")
	}
	if _, err := Run(10, 10, 1, 10, g); err == nil {
		t.Error("initialOnes = n accepted")
	}
}

func TestRunInitialConfiguration(t *testing.T) {
	g := rng.New(2)
	e, err := Run(20, 5, 1, 7, g)
	if err != nil {
		t.Fatal(err)
	}
	ops := e.OpinionsAt(0)
	if ops[0] != 1 {
		t.Error("source must hold z")
	}
	ones := 0
	for _, o := range ops {
		ones += int(o)
	}
	if ones != 8 { // 7 non-source ones + the source
		t.Errorf("initial ones = %d, want 8", ones)
	}
}

func TestSourceNeverChanges(t *testing.T) {
	g := rng.New(3)
	e, err := Run(16, 50, 0, 15, g)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round <= 50; round++ {
		if e.OpinionsAt(round)[0] != 0 {
			t.Fatalf("source flipped at round %d", round)
		}
	}
}

// TestDualityIdentity is the core Appendix B statement: agent i's opinion
// at round T equals the round-0 opinion of its backward walk's endpoint,
// and a walk that hits the source certifies the correct opinion (Eq. 17).
func TestDualityIdentity(t *testing.T) {
	g := rng.New(4)
	const n, T, z, ones = 40, 60, 1, 13
	e, err := Run(n, T, z, ones, g)
	if err != nil {
		t.Fatal(err)
	}
	initial := e.OpinionsAt(0)
	final := e.OpinionsAt(T)
	for i := 0; i < n; i++ {
		endpoint := e.WalkEndpoint(i)
		if got, want := final[i], initial[endpoint]; got != want {
			t.Errorf("agent %d: opinion %d, walk endpoint %d holds %d", i, got, endpoint, want)
		}
		if e.WalkHitsSource(i) && final[i] != z {
			t.Errorf("agent %d: walk hit source but opinion = %d ≠ z", i, final[i])
		}
	}
}

func TestAllWalksHitSourceImpliesConsensus(t *testing.T) {
	// With T well above 2n·ln n, all walks should coalesce into the source
	// and consensus on z must hold regardless of the initial configuration.
	g := rng.New(5)
	const n, z = 24, 0
	T := int(3 * float64(n) * math.Log(float64(n))) // ≈ 229
	e, err := Run(n, T, z, n-1, g)                  // all non-source agents start wrong
	if err != nil {
		t.Fatal(err)
	}
	allHit := true
	for i := 0; i < n; i++ {
		if !e.WalkHitsSource(i) {
			allHit = false
			break
		}
	}
	if !allHit {
		t.Skip("rare event: not all walks coalesced within 3n·ln n; skipping consensus check")
	}
	for i, o := range e.OpinionsAt(T) {
		if int(o) != z {
			t.Errorf("agent %d holds %d after full coalescence", i, o)
		}
	}
}

func TestCoalescenceTimeBound(t *testing.T) {
	// Theorem 2's engine: absorption within 2n·ln n should succeed in the
	// vast majority of runs (failure probability ≤ 1/n).
	g := rng.New(6)
	const n, reps = 64, 60
	maxSteps := int64(2 * float64(n) * math.Log(n))
	failures := 0
	for i := 0; i < reps; i++ {
		res := CoalescenceTime(n, maxSteps, g.Split(), false)
		if !res.Absorbed {
			failures++
		} else if res.Steps < 1 || res.Steps > maxSteps {
			t.Fatalf("steps = %d out of range", res.Steps)
		}
	}
	// Binomial(60, ≤1/64): ≥ 5 failures has probability < 10⁻³.
	if failures >= 5 {
		t.Errorf("%d of %d runs failed to coalesce within 2n·ln n", failures, reps)
	}
}

func TestCoalescenceSurvivorsMonotone(t *testing.T) {
	g := rng.New(7)
	res := CoalescenceTime(128, 10_000, g, true)
	if !res.Absorbed {
		t.Fatal("did not absorb")
	}
	if int64(len(res.Survivors)) != res.Steps {
		t.Fatalf("trace length %d, steps %d", len(res.Survivors), res.Steps)
	}
	prev := 127 // initial distinct non-source positions
	for i, s := range res.Survivors {
		if s > prev {
			t.Fatalf("survivor count rose at step %d: %d -> %d", i+1, prev, s)
		}
		prev = s
	}
	if res.Survivors[len(res.Survivors)-1] != 0 {
		t.Error("final survivor count nonzero despite absorption")
	}
}

func TestCoalescenceTimeHonoursCap(t *testing.T) {
	g := rng.New(8)
	res := CoalescenceTime(1024, 3, g, false)
	if res.Absorbed {
		t.Error("1024 walks cannot coalesce in 3 steps")
	}
	if res.Steps != 3 {
		t.Errorf("steps = %d, want cap 3", res.Steps)
	}
}
