// Package dual implements the coalescing-random-walk dual of the Voter
// dynamics used in Appendix B to prove Theorem 2 (see Figure 4).
//
// Running the Voter with ℓ = 1 forward in time defines, for every round t
// and agent i, the sampled agent S_t(i). Reading the same randomness
// backward defines n random walks W^{(i)} with W_T^{(i)} = i and
// W_t^{(i)} = S_t(W_{t+1}^{(i)}): agent i's opinion at time T is the
// opinion, at time 0, of wherever its walk ends — and if the walk ever
// touches the source (a sink), the opinion is the correct one (Eq. 16–17).
// Consensus on z is therefore implied by all walks coalescing into the
// source, which happens within 2·n·ln n rounds w.h.p.
package dual

import (
	"fmt"

	"bitspread/internal/rng"
)

// Execution is a recorded Voter (ℓ=1) run: the full sample table and the
// opinion history, enabling exact duality checks. Memory is O(n·T), so it
// is meant for moderate n; use CoalescenceTime for large-scale statistics.
type Execution struct {
	n, t    int
	z       int
	samples [][]int32 // samples[t][i] = S_t(i); source samples itself
	ops     [][]uint8 // ops[t][i] = opinion of agent i in round t
}

// Run simulates T rounds of the Voter dynamics with recorded samples.
// Agent 0 is the source and always holds z; initialOnes of the remaining
// agents start with opinion 1 (so the initial one-count is initialOnes+z).
func Run(n, t, z, initialOnes int, g *rng.RNG) (*Execution, error) {
	if n < 2 {
		return nil, fmt.Errorf("dual: population %d too small", n)
	}
	if z != 0 && z != 1 {
		return nil, fmt.Errorf("dual: correct opinion %d", z)
	}
	if initialOnes < 0 || initialOnes > n-1 {
		return nil, fmt.Errorf("dual: initialOnes %d outside [0, n-1]", initialOnes)
	}
	e := &Execution{
		n:       n,
		t:       t,
		z:       z,
		samples: make([][]int32, t),
		ops:     make([][]uint8, t+1),
	}
	e.ops[0] = make([]uint8, n)
	e.ops[0][0] = uint8(z)
	perm := g.Perm(n - 1)
	for i := 0; i < initialOnes; i++ {
		e.ops[0][perm[i]+1] = 1
	}
	for round := 0; round < t; round++ {
		cur := e.ops[round]
		next := make([]uint8, n)
		row := make([]int32, n)
		next[0] = uint8(z)
		row[0] = 0 // the source "samples itself" (Appendix B convention)
		for i := 1; i < n; i++ {
			s := int32(g.Intn(n))
			row[i] = s
			next[i] = cur[s]
		}
		e.samples[round] = row
		e.ops[round+1] = next
	}
	return e, nil
}

// OpinionsAt returns a copy of the opinion vector at round t ∈ [0, T].
func (e *Execution) OpinionsAt(t int) []uint8 {
	return append([]uint8(nil), e.ops[t]...)
}

// WalkHitsSource follows the backward dual walk started at agent i in
// round T and reports whether it ever reaches the source. By Eq. 17 a true
// result implies agent i holds the correct opinion in round T.
func (e *Execution) WalkHitsSource(i int) bool {
	w := int32(i)
	for t := e.t - 1; t >= 0; t-- {
		w = e.samples[t][w]
		if w == 0 {
			return true
		}
	}
	return false
}

// WalkEndpoint returns the position of the backward dual walk from agent i
// at round 0: agent i's round-T opinion equals the round-0 opinion of this
// endpoint (the duality identity, validated in tests).
func (e *Execution) WalkEndpoint(i int) int {
	w := int32(i)
	for t := e.t - 1; t >= 0; t-- {
		w = e.samples[t][w]
	}
	return int(w)
}

// CoalescenceResult reports a standalone coalescing run.
type CoalescenceResult struct {
	// Steps is the number of dual rounds until every walk was absorbed by
	// the source (or maxSteps if not Absorbed).
	Steps int64
	// Absorbed is true when all walks reached the source within maxSteps.
	Absorbed bool
	// Survivors traces the number of distinct non-source walk positions
	// after each step (useful for plotting the coalescence profile).
	Survivors []int
}

// CoalescenceTime simulates the dual process directly, without recording a
// forward execution: n walks start at every agent, each step every walk at
// a non-source position jumps to a uniformly random agent (walks sharing a
// position share the jump — they have coalesced), and the source absorbs.
// It returns the absorption time of the slowest walk.
//
// Per Appendix B, for T = 2·n·ln n absorption fails with probability at
// most 1/n; callers probing Theorem 2 should pass maxSteps ≥ that.
func CoalescenceTime(n int64, maxSteps int64, g *rng.RNG, trace bool) CoalescenceResult {
	// Active distinct positions, excluding the source.
	active := make(map[int64]bool, n)
	for i := int64(1); i < n; i++ {
		active[i] = true
	}
	res := CoalescenceResult{}
	for step := int64(1); step <= maxSteps; step++ {
		next := make(map[int64]bool, len(active))
		for range active {
			dst := int64(g.Intn(int(n)))
			if dst != 0 {
				next[dst] = true
			}
		}
		active = next
		res.Steps = step
		if trace {
			res.Survivors = append(res.Survivors, len(active))
		}
		if len(active) == 0 {
			res.Absorbed = true
			return res
		}
	}
	return res
}
