package rng

import (
	"math"
	"testing"
)

// FuzzBinomialRange fuzzes the sampler across parameter space: the draw
// must always land in [0, n] and never hang.
func FuzzBinomialRange(f *testing.F) {
	f.Add(uint64(1), int64(10), 0.5)
	f.Add(uint64(2), int64(0), 0.0)
	f.Add(uint64(3), int64(1_000_000), 0.999)
	f.Add(uint64(4), int64(12345), 1e-9)
	f.Add(uint64(5), int64(1<<40), 0.3)
	f.Fuzz(func(t *testing.T, seed uint64, n int64, p float64) {
		if n < 0 || n > 1<<40 || math.IsNaN(p) {
			t.Skip()
		}
		g := New(seed)
		v := g.Binomial(n, p)
		if v < 0 || v > n {
			t.Fatalf("Binomial(%d, %v) = %d out of range", n, p, v)
		}
	})
}

// FuzzIntn fuzzes the bounded-uniform generator.
func FuzzIntn(f *testing.F) {
	f.Add(uint64(1), 10)
	f.Add(uint64(9), 1)
	f.Fuzz(func(t *testing.T, seed uint64, n int) {
		if n <= 0 || n > 1<<30 {
			t.Skip()
		}
		g := New(seed)
		for i := 0; i < 8; i++ {
			if v := g.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	})
}
