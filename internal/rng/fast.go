package rng

import "math"

// This file holds the allocation-free fast paths used by the sharded agent
// engine and the batched count engine: block generation of raw words,
// division-free Bernoulli trials against precomputed 64-bit thresholds, and
// a fixed-bound uniform sampler with the Lemire rejection threshold hoisted
// out of the loop. Every fast path consumes the underlying xoshiro stream
// exactly like its scalar counterpart, so engines can mix them freely
// without perturbing reproducibility.

// FillUint64 fills dst with the generator's next len(dst) outputs. It is
// equivalent to calling Uint64 once per element but keeps the state in
// registers for the whole block.
func (r *RNG) FillUint64(dst []uint64) {
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	for i := range dst {
		dst[i] = rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// BernoulliAlways is the threshold sentinel meaning "succeed with
// probability 1 without consuming randomness"; 0 symmetrically means
// "fail without consuming". Both arise naturally from BernoulliThreshold.
const BernoulliAlways = math.MaxUint64

// BernoulliThreshold converts a probability into a 64-bit acceptance
// threshold t for BernoulliT. For p in (0, 1) the induced trial succeeds
// exactly when Float64() < p would, so threshold-based trials reproduce
// the distribution of Bernoulli(p) bit-for-bit while replacing the
// float conversion and comparison with a single integer compare.
//
// Degenerate probabilities map to the non-consuming sentinels: p <= 0
// yields 0 and p >= 1 (as well as p so close to 1 that no 53-bit uniform
// can reach it) yields BernoulliAlways.
func BernoulliThreshold(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return BernoulliAlways
	}
	t53 := uint64(math.Ceil(p * (1 << 53)))
	if t53 >= 1<<53 {
		// p > 1 - 2⁻⁵³: every representable uniform lies below p.
		return BernoulliAlways
	}
	// Float64() < p  ⟺  (u >> 11) < ⌈p·2⁵³⌉  ⟺  u < ⌈p·2⁵³⌉ << 11.
	return t53 << 11
}

// BernoulliT returns true with the probability encoded by threshold t
// (see BernoulliThreshold). It consumes exactly one Uint64 for
// non-degenerate thresholds and nothing for the sentinels.
func (r *RNG) BernoulliT(t uint64) bool {
	switch t {
	case 0:
		return false
	case BernoulliAlways:
		return true
	}
	return r.Uint64() < t
}

// Bounded is a uniform sampler over the fixed range [0, n) with Lemire's
// rejection threshold precomputed at construction, for hot loops that draw
// many indices from the same range. Next produces the same values and
// consumes the same stream as RNG.Intn(n), so a Bounded can replace Intn
// mid-run without changing any sequence. The zero value is invalid;
// Bounded is immutable and safe to share across goroutines (each with its
// own RNG).
type Bounded struct {
	bound     uint64
	threshold uint64
}

// NewBounded returns a sampler over [0, n). It panics if n <= 0.
func NewBounded(n int) Bounded {
	if n <= 0 {
		panic("rng: NewBounded called with non-positive n")
	}
	bound := uint64(n)
	return Bounded{bound: bound, threshold: (-bound) % bound}
}

// N returns the exclusive upper bound of the sampler's range.
func (b Bounded) N() int { return int(b.bound) }

// Next returns a uniform integer in [0, n), identical in value and stream
// consumption to RNG.Intn(n).
func (b Bounded) Next(r *RNG) int {
	x := r.Uint64()
	hi, lo := mul64(x, b.bound)
	// threshold < bound, so lo < threshold implies the lazy Intn path
	// would have entered its rejection loop too — the sequences agree.
	for lo < b.threshold {
		x = r.Uint64()
		hi, lo = mul64(x, b.bound)
	}
	return int(hi)
}

// Fill fills dst with uniform integers in [0, n), equivalent to calling
// Next once per element.
func (b Bounded) Fill(r *RNG, dst []int) {
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	next := func() uint64 {
		result := rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
		return result
	}
	for i := range dst {
		x := next()
		hi, lo := mul64(x, b.bound)
		for lo < b.threshold {
			x = next()
			hi, lo = mul64(x, b.bound)
		}
		dst[i] = int(hi)
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}
