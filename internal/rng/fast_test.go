package rng

import (
	"math"
	"testing"
)

// TestFillUint64MatchesScalar: block generation must be the identity on the
// stream — same values, same post-state as repeated Uint64 calls.
func TestFillUint64MatchesScalar(t *testing.T) {
	a, b := New(99), New(99)
	block := make([]uint64, 257)
	a.FillUint64(block)
	for i, got := range block {
		if want := b.Uint64(); got != want {
			t.Fatalf("block[%d] = %d, scalar gives %d", i, got, want)
		}
	}
	if a.Uint64() != b.Uint64() {
		t.Error("post-block states diverged")
	}
}

// TestBernoulliThresholdMatchesFloat: for non-degenerate p, the threshold
// trial must decide exactly as Float64() < p on the same stream.
func TestBernoulliThresholdMatchesFloat(t *testing.T) {
	ps := []float64{1e-17, 1e-9, 0.1, 0.25, 1.0 / 3, 0.5, 0.75, 0.999999, 1 - 1e-12}
	for _, p := range ps {
		thr := BernoulliThreshold(p)
		if thr == 0 || thr == BernoulliAlways {
			t.Fatalf("p=%v unexpectedly degenerate", p)
		}
		a, b := New(7), New(7)
		for i := 0; i < 5000; i++ {
			got := a.BernoulliT(thr)
			want := b.Float64() < p
			if got != want {
				t.Fatalf("p=%v trial %d: threshold says %v, float says %v", p, i, got, want)
			}
		}
	}
}

// TestBernoulliThresholdDegenerate: the sentinels must not consume
// randomness and must be certain.
func TestBernoulliThresholdDegenerate(t *testing.T) {
	if BernoulliThreshold(0) != 0 || BernoulliThreshold(-1) != 0 {
		t.Error("p<=0 must map to threshold 0")
	}
	if BernoulliThreshold(1) != BernoulliAlways || BernoulliThreshold(2) != BernoulliAlways {
		t.Error("p>=1 must map to BernoulliAlways")
	}
	// p within 2⁻⁵³ of 1 is indistinguishable from 1 for a 53-bit uniform.
	if BernoulliThreshold(1-math.Pow(2, -54)) != BernoulliAlways {
		t.Error("p > 1-2⁻⁵³ must map to BernoulliAlways")
	}
	g := New(3)
	before := *g
	if g.BernoulliT(0) {
		t.Error("threshold 0 succeeded")
	}
	if !g.BernoulliT(BernoulliAlways) {
		t.Error("BernoulliAlways failed")
	}
	if *g != before {
		t.Error("degenerate trials consumed randomness")
	}
}

// TestBoundedMatchesIntn: Next must be a drop-in for Intn — same values,
// same stream consumption — including bounds that exercise rejection.
func TestBoundedMatchesIntn(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 1000, 1 << 20, (1 << 62) + 12345} {
		b := NewBounded(n)
		if b.N() != n {
			t.Fatalf("N() = %d, want %d", b.N(), n)
		}
		x, y := New(42), New(42)
		for i := 0; i < 2000; i++ {
			if got, want := b.Next(x), y.Intn(n); got != want {
				t.Fatalf("n=%d draw %d: Bounded %d vs Intn %d", n, i, got, want)
			}
		}
		if x.Uint64() != y.Uint64() {
			t.Fatalf("n=%d: stream consumption diverged", n)
		}
	}
}

// TestBoundedFillMatchesNext: Fill must equal repeated Next.
func TestBoundedFillMatchesNext(t *testing.T) {
	b := NewBounded(12345)
	x, y := New(5), New(5)
	dst := make([]int, 1000)
	b.Fill(x, dst)
	for i, got := range dst {
		if want := b.Next(y); got != want {
			t.Fatalf("dst[%d] = %d, Next gives %d", i, got, want)
		}
	}
	if x.Uint64() != y.Uint64() {
		t.Error("post-fill states diverged")
	}
}

func TestNewBoundedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBounded(0) did not panic")
		}
	}()
	NewBounded(0)
}

func BenchmarkBernoulliFloat(b *testing.B) {
	g := New(1)
	acc := 0
	for i := 0; i < b.N; i++ {
		if g.Bernoulli(0.37) {
			acc++
		}
	}
	_ = acc
}

func BenchmarkBernoulliThreshold(b *testing.B) {
	g := New(1)
	thr := BernoulliThreshold(0.37)
	acc := 0
	for i := 0; i < b.N; i++ {
		if g.BernoulliT(thr) {
			acc++
		}
	}
	_ = acc
}

func BenchmarkIntnScalar(b *testing.B) {
	g := New(1)
	acc := 0
	for i := 0; i < b.N; i++ {
		acc += g.Intn(1 << 18)
	}
	_ = acc
}

func BenchmarkBoundedFill(b *testing.B) {
	g := New(1)
	bd := NewBounded(1 << 18)
	dst := make([]int, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bd.Fill(g, dst)
	}
	b.SetBytes(0)
	_ = dst
}
