// Package rng provides a deterministic, splittable pseudo-random number
// generator and the exact discrete samplers the simulators need.
//
// Every experiment in this repository is seeded explicitly: there is no
// package-level generator and no dependence on global state, so runs are
// reproducible bit-for-bit given the same seed, and replicas can derive
// statistically independent streams with Split.
//
// The core generator is xoshiro256**, seeded through SplitMix64. Both are
// public-domain algorithms by Blackman and Vigna; they are small, fast, and
// pass BigCrush, which is more than sufficient for Monte-Carlo simulation.
package rng

import "math"

// RNG is a xoshiro256** generator. The zero value is not usable; construct
// instances with New or Split so the state is properly mixed.
type RNG struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances a SplitMix64 state and returns the next output.
// It is used to expand seeds into full xoshiro state vectors, following the
// seeding procedure recommended by the xoshiro authors.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically derived from seed.
// Distinct seeds yield independent-looking streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	r.s0 = splitmix64(&sm)
	r.s1 = splitmix64(&sm)
	r.s2 = splitmix64(&sm)
	r.s3 = splitmix64(&sm)
	// Guard against the (astronomically unlikely) all-zero state, which is
	// the single fixed point of xoshiro256**.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new generator from r's stream. The child is seeded from
// two fresh outputs of r, so parent and child streams do not overlap in
// practice; this is how the experiment runner hands seeds to replicas.
func (r *RNG) Split() *RNG {
	seed := r.Uint64()
	mix := r.Uint64()
	child := &RNG{}
	sm := seed ^ (mix << 1) ^ 0xa0761d6478bd642f
	child.s0 = splitmix64(&sm)
	child.s1 = splitmix64(&sm)
	child.s2 = splitmix64(&sm)
	child.s3 = splitmix64(&sm)
	if child.s0|child.s1|child.s2|child.s3 == 0 {
		child.s0 = 0x9e3779b97f4a7c15
	}
	return child
}

// SplitN derives k child generators from r's stream, in order: the result
// is exactly what k successive Split calls would return. It is the one
// blessed way the sharded engines hand each worker its own stream — the
// children are derived before any goroutine starts and every worker owns
// exactly one, so no stream is ever shared across goroutines and the
// realization depends on (seed, k), never on scheduling (the bitlint
// detrand analyzer rejects goroutines that capture a shared *RNG).
func (r *RNG) SplitN(k int) []*RNG {
	out := make([]*RNG, k)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's nearly-divisionless unbiased method.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// Bernoulli returns true with probability p. Values of p outside [0,1] are
// clamped: p <= 0 never succeeds, p >= 1 always does.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the polar
// (Marsaglia) method. It is used by samplers and by synthetic chains.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		//bitlint:floatexact Marsaglia polar rejection: only a bit-exact zero radius divides by zero below
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
