package rng

import "math"

// binvThreshold is the n·p value below which plain inversion (BINV) is used.
// Above it, Hörmann's BTRS transformed-rejection sampler takes over. The
// usual crossover in the literature is 10–30; 10 keeps the inversion loop
// short while staying well inside BTRS's validity region (n·p ≥ 10).
const binvThreshold = 10

// Binomial returns an exact sample from Binomial(n, p): the number of
// successes in n independent trials each succeeding with probability p.
//
// The sampler is exact in distribution (no normal approximation):
//   - n·min(p,1−p) < binvThreshold: sequential inversion (BINV),
//   - otherwise: BTRS, Hörmann's transformed rejection with squeeze,
//     which has O(1) expected time uniformly in n and p.
//
// It panics if n < 0 or p is NaN. p is clamped to [0, 1].
func (r *RNG) Binomial(n int64, p float64) int64 {
	switch {
	case n < 0:
		panic("rng: Binomial called with negative n")
	case math.IsNaN(p):
		panic("rng: Binomial called with NaN p")
	case n == 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	}
	if p > 0.5 {
		return n - r.binomialSmallP(n, 1-p)
	}
	return r.binomialSmallP(n, p)
}

// binomialSmallP samples Binomial(n, p) for 0 < p <= 0.5.
func (r *RNG) binomialSmallP(n int64, p float64) int64 {
	if float64(n)*p < binvThreshold {
		return r.binomialInversion(n, p)
	}
	return r.binomialBTRS(n, p)
}

// binomialInversion is the classical BINV algorithm: walk the pmf from k=0,
// subtracting successive probabilities from a single uniform. Expected time
// is O(n·p + 1), so it is only used when n·p is small.
func (r *RNG) binomialInversion(n int64, p float64) int64 {
	q := 1 - p
	s := p / q
	// qn = q^n computed in log space to stay accurate for large n.
	qn := math.Exp(float64(n) * math.Log1p(-p))
	for {
		u := r.Float64()
		pr := qn
		var k int64
		for u > pr {
			u -= pr
			k++
			if k > n {
				break // float round-off exhausted the mass; retry
			}
			pr *= (float64(n-k+1) / float64(k)) * s
		}
		if k <= n {
			return k
		}
	}
}

// binomialBTRS implements the BTRS algorithm of W. Hörmann,
// "The generation of binomial random variates" (J. Statist. Comput.
// Simulation 46, 1993), valid for p <= 0.5 and n·p >= 10. The dominating
// density is a transformed triangle; a cheap squeeze accepts ~86% of
// candidates without evaluating the pmf.
func (r *RNG) binomialBTRS(n int64, p float64) int64 {
	nf := float64(n)
	q := 1 - p
	spq := math.Sqrt(nf * p * q)

	b := 1.15 + 2.53*spq
	a := -0.0873 + 0.0248*b + 0.01*p
	c := nf*p + 0.5
	vr := 0.92 - 4.2/b

	alpha := (2.83 + 5.1/b) * spq
	lpq := math.Log(p / q)
	m := math.Floor((nf + 1) * p) // mode
	hm, _ := math.Lgamma(m + 1)
	hnm, _ := math.Lgamma(nf - m + 1)
	h := hm + hnm

	for {
		u := r.Float64() - 0.5
		v := r.Float64()
		us := 0.5 - math.Abs(u)
		kf := math.Floor((2*a/us+b)*u + c)
		if kf < 0 || kf > nf {
			continue
		}
		if us >= 0.07 && v <= vr {
			return int64(kf) // inside the squeeze: accept immediately
		}
		// Full acceptance test against the binomial pmf in log space.
		v2 := math.Log(v * alpha / (a/(us*us) + b))
		lk, _ := math.Lgamma(kf + 1)
		lnk, _ := math.Lgamma(nf - kf + 1)
		if v2 <= h-lk-lnk+(kf-m)*lpq {
			return int64(kf)
		}
	}
}

// Hypergeometric returns a sample of the number of marked items in a
// uniform draw of k items without replacement from a population of n items
// of which marked are marked. It is exact and runs in O(k) time via the
// sequential conditional-Bernoulli construction; the engines use it for the
// without-replacement sampling ablation.
//
// It panics if any argument is negative, or if marked > n or k > n.
func (r *RNG) Hypergeometric(n, marked, k int64) int64 {
	if n < 0 || marked < 0 || k < 0 || marked > n || k > n {
		panic("rng: Hypergeometric called with invalid parameters")
	}
	var got int64
	remaining := n
	left := marked
	for i := int64(0); i < k; i++ {
		if left == 0 {
			break
		}
		if r.Float64() < float64(left)/float64(remaining) {
			got++
			left--
		}
		remaining--
	}
	return got
}
