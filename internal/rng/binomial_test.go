package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinomialEdgeCases(t *testing.T) {
	r := New(1)
	tests := []struct {
		name string
		n    int64
		p    float64
		want int64
	}{
		{"n=0", 0, 0.5, 0},
		{"p=0", 100, 0, 0},
		{"p=1", 100, 1, 100},
		{"p<0 clamps", 100, -0.3, 0},
		{"p>1 clamps", 100, 1.3, 100},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for i := 0; i < 50; i++ {
				if got := r.Binomial(tt.n, tt.p); got != tt.want {
					t.Fatalf("Binomial(%d, %v) = %d, want %d", tt.n, tt.p, got, tt.want)
				}
			}
		})
	}
}

func TestBinomialPanics(t *testing.T) {
	t.Run("negative n", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("Binomial(-1, 0.5) did not panic")
			}
		}()
		New(1).Binomial(-1, 0.5)
	})
	t.Run("NaN p", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("Binomial(1, NaN) did not panic")
			}
		}()
		New(1).Binomial(1, math.NaN())
	})
}

func TestBinomialRange(t *testing.T) {
	r := New(2)
	cases := []struct {
		n int64
		p float64
	}{
		{1, 0.5}, {10, 0.1}, {10, 0.9}, {1000, 0.5}, {1000, 0.001},
		{1 << 20, 0.3}, {1 << 30, 0.7},
	}
	for _, c := range cases {
		for i := 0; i < 200; i++ {
			v := r.Binomial(c.n, c.p)
			if v < 0 || v > c.n {
				t.Fatalf("Binomial(%d, %v) = %d out of range", c.n, c.p, v)
			}
		}
	}
}

// TestBinomialMoments checks the first two moments over a grid spanning both
// the inversion and the BTRS branch, and both sides of the p=0.5 reflection.
func TestBinomialMoments(t *testing.T) {
	cases := []struct {
		name  string
		n     int64
		p     float64
		draws int
	}{
		{"inversion small", 20, 0.1, 200000},
		{"inversion tiny p large n", 100000, 0.00005, 200000},
		{"btrs moderate", 100, 0.4, 200000},
		{"btrs large", 100000, 0.5, 50000},
		{"btrs reflected", 100, 0.8, 200000},
		{"btrs huge n", 10000000, 0.25, 20000},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			r := New(uint64(len(c.name)) * 7919)
			mean := float64(c.n) * c.p
			variance := float64(c.n) * c.p * (1 - c.p)
			sum, sumSq := 0.0, 0.0
			for i := 0; i < c.draws; i++ {
				v := float64(r.Binomial(c.n, c.p))
				sum += v
				sumSq += v * v
			}
			m := sum / float64(c.draws)
			se := math.Sqrt(variance / float64(c.draws))
			if math.Abs(m-mean) > 5*se {
				t.Errorf("mean = %v, want %v ± %v", m, mean, 5*se)
			}
			v := sumSq/float64(c.draws) - m*m
			// Sample variance concentrates with relative error ~sqrt(2/draws)
			// for near-normal summands; allow a generous 10%.
			if variance > 0 && math.Abs(v-variance)/variance > 0.1 {
				t.Errorf("variance = %v, want %v (±10%%)", v, variance)
			}
		})
	}
}

// TestBinomialChiSquare compares the sampler against the exact pmf for a
// small case where every outcome is enumerable, covering the BTRS branch
// (n·p = 12.5 ≥ 10).
func TestBinomialChiSquare(t *testing.T) {
	const n, p, draws = 25, 0.5, 200000
	r := New(99)
	counts := make([]int, n+1)
	for i := 0; i < draws; i++ {
		counts[r.Binomial(n, p)]++
	}
	// Exact pmf via multiplicative recurrence.
	pmf := make([]float64, n+1)
	pmf[0] = math.Pow(1-p, n)
	for k := 1; k <= n; k++ {
		pmf[k] = pmf[k-1] * float64(n-k+1) / float64(k) * p / (1 - p)
	}
	// Pool the extreme tails so every cell has expected count >= 5.
	chi2 := 0.0
	cells := 0
	tailObs, tailExp := 0.0, 0.0
	for k := 0; k <= n; k++ {
		exp := pmf[k] * draws
		if exp < 5 {
			tailObs += float64(counts[k])
			tailExp += exp
			continue
		}
		d := float64(counts[k]) - exp
		chi2 += d * d / exp
		cells++
	}
	if tailExp > 0 {
		d := tailObs - tailExp
		chi2 += d * d / tailExp
		cells++
	}
	// Critical value for cells-1 dof at p=0.001 is below 2*(cells-1)+20
	// for the cell counts arising here; use the exact value for 20 dof.
	if cells > 22 {
		t.Fatalf("unexpected cell count %d", cells)
	}
	if chi2 > 48.27 { // chi2_{0.999, 21}
		t.Errorf("chi-square = %.2f over %d cells, distribution mismatch", chi2, cells)
	}
}

func TestBinomialQuickRange(t *testing.T) {
	r := New(123)
	f := func(nRaw uint16, pRaw uint16) bool {
		n := int64(nRaw)
		p := float64(pRaw) / math.MaxUint16
		v := r.Binomial(n, p)
		return v >= 0 && v <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestHypergeometricEdges(t *testing.T) {
	r := New(4)
	if got := r.Hypergeometric(10, 0, 5); got != 0 {
		t.Errorf("no marked items: got %d", got)
	}
	if got := r.Hypergeometric(10, 10, 5); got != 5 {
		t.Errorf("all marked: got %d, want 5", got)
	}
	if got := r.Hypergeometric(10, 4, 0); got != 0 {
		t.Errorf("empty draw: got %d", got)
	}
}

func TestHypergeometricMean(t *testing.T) {
	r := New(5)
	const n, marked, k, draws = 50, 20, 10, 100000
	want := float64(k) * float64(marked) / float64(n) // = 4
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += float64(r.Hypergeometric(n, marked, k))
	}
	mean := sum / draws
	if math.Abs(mean-want) > 0.05 {
		t.Errorf("hypergeometric mean = %v, want %v", mean, want)
	}
}

func TestHypergeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Hypergeometric with marked > n did not panic")
		}
	}()
	New(1).Hypergeometric(5, 6, 2)
}

func BenchmarkBinomialInversion(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Binomial(100, 0.01)
	}
}

func BenchmarkBinomialBTRS(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Binomial(1000000, 0.3)
	}
}
