package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: generators with equal seeds diverged: %d != %d", i, got, want)
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("generators with different seeds produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must not mirror the parent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("parent and child streams coincide on %d of 100 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	c1 := New(7).Split()
	c2 := New(7).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

// SplitN must be exactly k successive Splits — the sharded engines rely on
// the equivalence to keep per-worker streams a pure function of (seed, k).
func TestSplitNMatchesSuccessiveSplits(t *testing.T) {
	const k = 5
	children := New(7).SplitN(k)
	if len(children) != k {
		t.Fatalf("SplitN returned %d generators, want %d", len(children), k)
	}
	serial := New(7)
	for i := 0; i < k; i++ {
		want := serial.Split()
		for j := 0; j < 20; j++ {
			if got, w := children[i].Uint64(), want.Uint64(); got != w {
				t.Fatalf("child %d draw %d: SplitN stream %#x differs from successive-Split stream %#x", i, j, got, w)
			}
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const draws = 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += r.Float64()
	}
	mean := sum / draws
	// Standard error is 1/sqrt(12*draws) ≈ 0.00065; allow 5 sigma.
	if math.Abs(mean-0.5) > 0.0033 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(9)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	// Pearson chi-square with 9 dof; 99.9% critical value is 27.88.
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.88 {
		t.Errorf("Intn uniformity chi-square = %.2f, exceeds 27.88 (p<0.001)", chi2)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestBernoulliEdges(t *testing.T) {
	r := New(2)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-0.5) {
			t.Fatal("Bernoulli(-0.5) returned true")
		}
		if !r.Bernoulli(1.5) {
			t.Fatal("Bernoulli(1.5) returned false")
		}
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := New(13)
	const p, draws = 0.3, 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	freq := float64(hits) / draws
	// 5 sigma of sqrt(p(1-p)/draws) ≈ 0.0073.
	if math.Abs(freq-p) > 0.0073 {
		t.Errorf("Bernoulli(%v) frequency = %v", p, freq)
	}
}

func TestPerm(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(19)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	expected := float64(draws) / n
	for v, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("Perm first element %d appeared %d times, expected ~%.0f", v, c, expected)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const draws = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < draws; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.012 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.025 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestUint64QuickNoShortCycles(t *testing.T) {
	// Property: for any seed, the first 64 outputs are pairwise distinct.
	f := func(seed uint64) bool {
		r := New(seed)
		seen := make(map[uint64]bool, 64)
		for i := 0; i < 64; i++ {
			v := r.Uint64()
			if seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIntnQuickInRange(t *testing.T) {
	r := New(31)
	f := func(nRaw uint16) bool {
		n := int(nRaw)%1000 + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
