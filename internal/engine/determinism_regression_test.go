package engine_test

// Seed-determinism regression suite: every engine must be a pure function
// of (seed, Config, Shards) — the contract the detrand and maporder
// analyzers (internal/analysis) exist to protect statically. Each engine
// runs twice from the same seed under a fault schedule drawn from every
// family (reset, stubborn, omission, source-crash, churn) and must
// reproduce the identical Result struct and the identical round-by-round
// trajectory. A failure here means nondeterminism crept into an engine
// body — ambient randomness, map iteration, or a data race on the shared
// schedule — and pins down which engine before any χ² suite would notice.

import (
	"testing"

	"bitspread/internal/engine"
	"bitspread/internal/fault"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// regressionSchedule touches every fault family so the replayed stream
// includes each perturbation code path.
func regressionSchedule(t *testing.T) *fault.Schedule {
	t.Helper()
	s, err := fault.New(
		fault.ResetAt(2, 0.5, 0),
		fault.StubbornFor(3, 2, 0.25, 1),
		fault.OmissionFor(6, 2, 0.5),
		fault.SourceCrashFor(9, 2),
		fault.ChurnAt(12, 0.25, 0.5),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// trajProbe is a trajectory-capturing Probe; the regression suite runs
// every engine with one attached so determinism is proven for the
// instrumented code path, and its trajectory is checked against the
// Record hook's.
type trajProbe struct {
	counts  []int64
	shards  map[int]bool
	faulted int
}

func (p *trajProbe) RoundDone(round, ones, sampled int64) { p.counts = append(p.counts, ones) }
func (p *trajProbe) FaultApplied(round int64)             { p.faulted++ }
func (p *trajProbe) ShardRound(shard int, sampled int64) {
	if p.shards == nil {
		p.shards = map[int]bool{}
	}
	p.shards[shard] = true
}

// traced runs one engine once with a probe attached, recording the full
// trajectory through the Record hook and cross-checking the probe's view
// of it.
func traced(t *testing.T, run func(engine.Config, *rng.RNG) (engine.Result, error),
	cfg engine.Config, seed uint64) (engine.Result, []int64) {
	t.Helper()
	var traj []int64
	cfg.Record = func(round, count int64) { traj = append(traj, count) }
	probe := &trajProbe{}
	cfg.Probe = probe
	res, err := run(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	if len(probe.counts) != len(traj) {
		t.Fatalf("probe saw %d rounds, Record saw %d", len(probe.counts), len(traj))
	}
	for i := range traj {
		if probe.counts[i] != traj[i] {
			t.Fatalf("probe and Record diverge at point %d: %d vs %d", i, probe.counts[i], traj[i])
		}
	}
	return res, traj
}

// tracedPlain is traced without any probe, for instrumented-vs-plain
// equality checks.
func tracedPlain(t *testing.T, run func(engine.Config, *rng.RNG) (engine.Result, error),
	cfg engine.Config, seed uint64) (engine.Result, []int64) {
	t.Helper()
	var traj []int64
	cfg.Record = func(round, count int64) { traj = append(traj, count) }
	res, err := run(cfg, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return res, traj
}

func TestSeedDeterminismUnderFaults(t *testing.T) {
	sched := regressionSchedule(t)
	base := engine.Config{
		N:         256,
		Rule:      protocol.Voter(3),
		Z:         1,
		X0:        96,
		MaxRounds: 48, // determinism, not convergence, is under test
		Faults:    sched,
	}

	engines := map[string]func(engine.Config, *rng.RNG) (engine.Result, error){
		"count": engine.RunParallel,
		"sequential": func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
			return engine.RunSequential(cfg, g)
		},
		"literal": func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{Unpacked: true}, g)
		},
		"packed": func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{}, g)
		},
		"sharded": func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{Shards: 4, Unpacked: true}, g)
		},
		"sharded-packed": func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{Shards: 4}, g)
		},
		"chunked": func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{Chunked: true}, g)
		},
		"sharded-chunked": func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{Chunked: true, Shards: 4}, g)
		},
		"aggregated": engine.RunAggregated,
	}

	// 128-agent chunks put a chunk boundary inside the n=256 population, so
	// the chunked engines replay their multi-chunk code paths.
	defer engine.SetChunkShiftForTest(7)()

	for name, run := range engines {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []uint64{1, 0xDEADBEEF, 1 << 40} {
				res1, traj1 := traced(t, run, base, seed)
				res2, traj2 := traced(t, run, base, seed)
				if res1 != res2 {
					t.Fatalf("seed %#x: results differ between identical runs:\n  first:  %+v\n  second: %+v",
						seed, res1, res2)
				}
				if len(traj1) != len(traj2) {
					t.Fatalf("seed %#x: trajectory lengths differ: %d vs %d", seed, len(traj1), len(traj2))
				}
				for i := range traj1 {
					if traj1[i] != traj2[i] {
						t.Fatalf("seed %#x: trajectories diverge at round %d: %d vs %d",
							seed, i+1, traj1[i], traj2[i])
					}
				}
				if res1.Rounds == 0 || len(traj1) == 0 {
					t.Fatalf("seed %#x: degenerate run (rounds=%d, trajectory=%d points) proves nothing",
						seed, res1.Rounds, len(traj1))
				}
				// A probe must be a pure observer: the instrumented run and
				// the probe-free run must coincide byte for byte.
				resPlain, trajPlain := tracedPlain(t, run, base, seed)
				if res1 != resPlain {
					t.Fatalf("seed %#x: probe changed the Result:\n  probed: %+v\n  plain:  %+v",
						seed, res1, resPlain)
				}
				for i := range traj1 {
					if traj1[i] != trajPlain[i] {
						t.Fatalf("seed %#x: probe changed the trajectory at round %d: %d vs %d",
							seed, i+1, traj1[i], trajPlain[i])
					}
				}
			}
		})
	}
}

// TestSeedDeterminismDistinguishesSeeds guards the guard: if an engine
// ignored its seed (or a future refactor hard-coded one), the identical-
// replay test above would pass vacuously. Distinct seeds must produce
// distinct trajectories for at least one engine/seed pair.
func TestSeedDeterminismDistinguishesSeeds(t *testing.T) {
	base := engine.Config{
		N:         256,
		Rule:      protocol.Voter(3),
		Z:         1,
		X0:        96,
		MaxRounds: 48,
		Faults:    regressionSchedule(t),
	}
	_, trajA := traced(t, engine.RunParallel, base, 7)
	_, trajB := traced(t, engine.RunParallel, base, 8)
	same := len(trajA) == len(trajB)
	if same {
		for i := range trajA {
			if trajA[i] != trajB[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical trajectories; the engine is not consuming its seed")
	}
}
