package engine_test

// Guards for the chunked huge-n agent engine. The chunked body exists for
// populations past the packed engine's n < 2³² ceiling, so these tests
// shrink the chunk capacity (SetChunkShiftForTest) to force genuinely
// multi-chunk runs at testing-sized n; the distributional agreement with
// the other engines is pinned by the χ² suite in equivalence_chi_test.go.

import (
	"fmt"
	"reflect"
	"testing"

	"bitspread/internal/engine"
	"bitspread/internal/fault"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// The chunked engine is deterministic in (seed, Config, Shards) across
// every fault family, serial and sharded, with chunk boundaries inside
// the population.
func TestChunkedDeterministic(t *testing.T) {
	defer engine.SetChunkShiftForTest(9)() // 512-agent chunks
	schedules := map[string]*fault.Schedule{
		"none":         nil,
		"reset":        fault.Must(fault.ResetAt(2, 0.5, 0)),
		"churn":        fault.Must(fault.ChurnAt(2, 0.5, 0.25)),
		"stubborn":     fault.Must(fault.StubbornFor(2, 3, 0.25, 0)),
		"omission":     fault.Must(fault.OmissionFor(2, 3, 0.5)),
		"source-crash": fault.Must(fault.SourceCrashFor(2, 2)),
	}
	for name, s := range schedules {
		for _, shards := range []int{1, 4} {
			cfg := engine.Config{
				N: 1500, Rule: protocol.WithNoise(protocol.Minority(3), 0.1),
				Z: 1, X0: 750, MaxRounds: 10, Faults: s,
			}
			label := fmt.Sprintf("%s/shards=%d", name, shards)
			opts := engine.AgentOptions{Chunked: true, Shards: shards}
			a, trajA := runAgentsTraced(t, cfg, opts, 7)
			b, trajB := runAgentsTraced(t, cfg, opts, 7)
			if a != b {
				t.Errorf("%s: same seed diverged\nfirst  %+v\nsecond %+v", label, a, b)
			}
			if !reflect.DeepEqual(trajA, trajB) {
				t.Errorf("%s: trajectories diverged\nfirst  %v\nsecond %v", label, trajA, trajB)
			}
			if want := engine.MaxPackedShards(1500); shards <= want && a.Shards != shards {
				t.Errorf("%s: Result.Shards = %d, want %d", label, a.Shards, shards)
			}
		}
	}
}

// Multi-chunk Voter runs must absorb at the true fixed point with every
// one-bit counted exactly once, across chunk-straddling shard layouts and
// populations that end mid-word and mid-chunk.
func TestChunkedCountsConsistent(t *testing.T) {
	defer engine.SetChunkShiftForTest(9)()
	for _, n := range []int64{511, 512, 513, 1025} {
		for _, shards := range []int{1, 3, 7} {
			cfg := engine.Config{N: n, Rule: protocol.Voter(1), Z: 1, X0: n / 2, MaxRounds: 20000}
			var traj []int64
			cfg.Record = func(round, count int64) { traj = append(traj, count) }
			res, err := engine.RunAgents(cfg, engine.AgentOptions{Chunked: true, Shards: shards}, rng.New(11))
			if err != nil {
				t.Fatal(err)
			}
			for r, c := range traj {
				if c < 1 || c > n {
					t.Fatalf("n=%d shards=%d: round %d count %d out of [1, %d]", n, shards, r+1, c, n)
				}
			}
			if !res.Converged || res.FinalCount != n {
				t.Errorf("n=%d shards=%d: Voter run did not absorb at n: %+v", n, shards, res)
			}
		}
	}
}

// The chunked general body must honor omission and stubborn faults exactly
// like the packed one: total omission freezes the count with zero
// activations, and a fully pinned population cannot drift.
func TestChunkedFaultSemantics(t *testing.T) {
	defer engine.SetChunkShiftForTest(9)()
	omit := engine.Config{
		N: 1300, Rule: protocol.Voter(1), Z: 1, X0: 650,
		MaxRounds: 3, Faults: fault.Must(fault.OmissionFor(1, 3, 1)),
	}
	for _, shards := range []int{1, 4} {
		res, err := engine.RunAgents(omit, engine.AgentOptions{Chunked: true, Shards: shards}, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		if res.Activations != 0 || res.FinalCount != 650 {
			t.Errorf("shards=%d: total omission gave activations=%d final=%d, want 0 and 650",
				shards, res.Activations, res.FinalCount)
		}
	}

	pinned := engine.Config{
		N: 1100, Rule: protocol.Voter(1), Z: 1, X0: 550,
		MaxRounds: 5, Faults: fault.Must(fault.StubbornFor(1, 5, 1, 1)),
	}
	for _, shards := range []int{1, 4} {
		res, err := engine.RunAgents(pinned, engine.AgentOptions{Chunked: true, Shards: shards}, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		if res.FinalCount != pinned.N || res.Activations != 0 {
			t.Errorf("shards=%d: fully pinned population drifted: %+v", shards, res)
		}
	}
}

// RunAgents must route populations at or above the packed ceiling to the
// chunked body on its own; the Chunked flag only forces the same body
// early. Both entries must agree realization-for-realization.
func TestChunkedFlagMatchesAutomaticRouting(t *testing.T) {
	defer engine.SetChunkShiftForTest(9)()
	cfg := engine.Config{N: 1024, Rule: protocol.Minority(3), Z: 1, X0: 512, MaxRounds: 8}
	a, trajA := runAgentsTraced(t, cfg, engine.AgentOptions{Chunked: true}, 21)
	b, trajB := runAgentsTraced(t, cfg, engine.AgentOptions{Chunked: true}, 21)
	if a != b || !reflect.DeepEqual(trajA, trajB) {
		t.Fatalf("chunked flag runs diverged: %+v vs %+v", a, b)
	}
	// RunAgentsAuto must honor the flag too (it requests a literal body).
	var trajAuto []int64
	cfgAuto := cfg
	cfgAuto.Record = func(round, count int64) { trajAuto = append(trajAuto, count) }
	res, err := engine.RunAgentsAuto(cfgAuto, engine.AgentOptions{Chunked: true}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if res != a || !reflect.DeepEqual(trajAuto, trajA) {
		t.Errorf("RunAgentsAuto with Chunked diverged from RunAgents: %+v vs %+v", res, a)
	}
}
