package engine

import (
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// Perturber injects mid-run faults at parallel-round boundaries. It is the
// engine-facing contract implemented by fault.Schedule (internal/fault);
// the engine package deliberately knows nothing about concrete fault kinds.
//
// All methods except PerturbCount and PerturbAgents must be pure functions
// of their arguments: a Perturber is shared read-only across replicas and
// worker goroutines, so any randomness must come from the generator the
// engine passes in. Rounds are 1-based, matching Result.Rounds.
type Perturber interface {
	// Empty reports whether the schedule perturbs nothing; engines treat an
	// empty Perturber exactly like a nil one (byte-identical runs).
	Empty() bool
	// Horizon is the last round affected by any event. Consensus reached
	// before the horizon does not end the run — self-stabilization is only
	// credited once the disturbance is over.
	Horizon() int64
	// BoundaryAt reports whether a boundary event (an opinion rewrite)
	// fires at the start of round t.
	BoundaryAt(t int64) bool
	// SourceOpinion is the opinion the source holds during round t, given
	// the true opinion z (≠ z inside source-crash windows).
	SourceOpinion(t int64, z int) int
	// OmitProb is the probability that a non-source agent's round-t update
	// is lost (the agent keeps its opinion).
	OmitProb(t int64) float64
	// Stubborn is how many non-source agents are pinned at 1 and at 0
	// during round t, for a population of n.
	Stubborn(t, n int64) (ones, zeros int64)
	// PerturbCount applies the boundary events of round t to the one-count
	// x (source included, the source holding src), drawing from g.
	PerturbCount(t, n int64, src int, x int64, g *rng.RNG) int64
	// PerturbAgents applies the boundary events of round t to the opinion
	// slice (ops[0] is the source), drawing from g.
	PerturbAgents(t int64, ops []uint8, g *rng.RNG)
}

// perturber resolves the effective fault hook: nil when faults are absent
// or the schedule is empty, so the zero-fault paths stay byte-identical to
// the pre-hook engine.
func (c *Config) perturber() Perturber {
	if c.Faults != nil && !c.Faults.Empty() {
		return c.Faults
	}
	return nil
}

// faultHorizon returns f's horizon, or 0 for a nil hook.
func faultHorizon(f Perturber) int64 {
	if f == nil {
		return 0
	}
	return f.Horizon()
}

// faultBoundaryCount applies the round-t boundary to a count-level state:
// the source flips to its scheduled opinion (adjusting x, which includes
// it) and the boundary events rewrite non-source opinions. srcPrev is the
// source's opinion during round t-1; the returned src drives round t.
func faultBoundaryCount(f Perturber, t, n int64, z, srcPrev int, x int64, g *rng.RNG) (int64, int) {
	src := f.SourceOpinion(t, z)
	if src != srcPrev {
		x += int64(src - srcPrev)
	}
	if f.BoundaryAt(t) {
		x = f.PerturbCount(t, n, src, x, g)
	}
	return x, src
}

// stepCountFaulty advances one count-level round under active faults: the
// source holds src, stubborn agents keep their pinned opinions, and each
// updating agent's refresh is lost with probability OmitProb(t) (it keeps
// its opinion). With no stubborn agents, no omission and src == z it draws
// the same distribution as StepCount. Exactly one of rule/cache is used,
// mirroring the uncached and batched engines. The second return value is
// the number of agents that actually drew samples this round — the free,
// non-omitted agents — which feeds Result.Activations.
func stepCountFaulty(rule *protocol.Rule, cache *protocol.AdoptCache, f Perturber, t, n int64, src int, x int64, g *rng.RNG) (next, sampled int64) {
	var p0, p1 float64
	if cache != nil {
		p0, p1 = cache.Probs(x)
	} else {
		p := float64(x) / float64(n)
		p1 = rule.AdoptProb(1, p)
		p0 = rule.AdoptProb(0, p)
	}
	s1, s0 := f.Stubborn(t, n)
	m1 := x - int64(src) - s1
	m0 := (n - x) - int64(1-src) - s0
	// Validated schedules keep these non-negative; clamp so an invalid
	// hand-rolled Perturber degrades instead of panicking in rng.
	if m1 < 0 {
		m1 = 0
	}
	if m0 < 0 {
		m0 = 0
	}
	var keep1 int64
	if q := f.OmitProb(t); q > 0 {
		u1 := g.Binomial(m1, 1-q)
		u0 := g.Binomial(m0, 1-q)
		keep1 = m1 - u1
		m1, m0 = u1, u0
	}
	return int64(src) + s1 + keep1 + g.Binomial(m1, p1) + g.Binomial(m0, p0), m1 + m0
}

// sequentialStepFaulty is SequentialStep under active faults: the activated
// agent may be stubborn (no change), its update may be omitted (no change),
// and the source holds src. The second return value reports whether the
// activated agent actually drew its samples — false when it was stubborn
// or its update was omitted — which feeds Result.Activations.
//
// The single uniform is partitioned as [stubborn | omitted | down | up |
// kept]: with pStub = (s1+s0)/(n-1) and omission probability q, the down
// and up masses are (m_b/(n-1))·(1-q)·(rule term), exactly the marginals
// of the pre-partition layout, so the transition law is unchanged.
func sequentialStepFaulty(r *protocol.Rule, f Perturber, t, n int64, src int, x int64, g *rng.RNG) (int64, bool) {
	p := float64(x) / float64(n)
	s1, s0 := f.Stubborn(t, n)
	m1 := float64(x - int64(src) - s1)
	m0 := float64((n - x) - int64(1-src) - s0)
	if m1 < 0 {
		m1 = 0
	}
	if m0 < 0 {
		m0 = 0
	}
	nonSource := float64(n - 1)
	q := f.OmitProb(t)
	update := 1 - q
	pStub := float64(s1+s0) / nonSource
	pOmit := (1 - pStub) * q

	u := g.Float64()
	if u < pStub+pOmit {
		return x, false
	}
	base := pStub + pOmit
	pDown := (m1 / nonSource) * (1 - r.AdoptProb(1, p)) * update
	pUp := (m0 / nonSource) * r.AdoptProb(0, p) * update
	switch {
	case u < base+pDown:
		return x - 1, true
	case u < base+pDown+pUp:
		return x + 1, true
	default:
		return x, true
	}
}

// faultBoundaryAgents applies the round-t boundary to an agent-level state:
// the source's slot takes its scheduled opinion and boundary events rewrite
// non-source slots in place. Returns the source opinion driving round t.
func faultBoundaryAgents(f Perturber, t int64, z int, ops []uint8, g *rng.RNG) int {
	src := f.SourceOpinion(t, z)
	ops[0] = uint8(src)
	if f.BoundaryAt(t) {
		f.PerturbAgents(t, ops, g)
	}
	return src
}
