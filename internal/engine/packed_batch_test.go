package engine_test

// Guards for the replica-batched packed runner: RunAgentsReplicas is a
// pure evaluation-sharing transform (the memoized inverse-CDF threshold
// table is an exact function of the one-count), so every replica must be
// bit-identical to its solo RunAgents run — across fault families, shard
// counts and rules with and without the deterministic fast regime.

import (
	"fmt"
	"testing"

	"bitspread/internal/engine"
	"bitspread/internal/fault"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

func TestRunAgentsReplicasMatchesSolo(t *testing.T) {
	seeds := []uint64{1, 2, 3, 0xDEADBEEF, 1 << 40, 77, 78, 79}
	schedules := map[string]*fault.Schedule{
		"none":     nil,
		"reset":    fault.Must(fault.ResetAt(2, 0.5, 0)),
		"omission": fault.Must(fault.OmissionFor(2, 3, 0.5)),
	}
	rules := map[string]*protocol.Rule{
		"minority": protocol.Minority(3), // deterministic tables: memoized kThr path
		"noisy":    protocol.WithNoise(protocol.Minority(3), 0.1),
	}
	for sname, sched := range schedules {
		for rname, rule := range rules {
			for _, shards := range []int{1, 3} {
				label := fmt.Sprintf("%s/%s/shards=%d", sname, rname, shards)
				cfg := engine.Config{N: 300, Rule: rule, Z: 1, X0: 150, MaxRounds: 40, Faults: sched}
				opts := engine.AgentOptions{Shards: shards}
				batch, err := engine.RunAgentsReplicas(cfg, opts, seeds)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if len(batch) != len(seeds) {
					t.Fatalf("%s: %d results for %d seeds", label, len(batch), len(seeds))
				}
				for i, seed := range seeds {
					solo, err := engine.RunAgents(cfg, opts, rng.New(seed))
					if err != nil {
						t.Fatal(err)
					}
					if batch[i] != solo {
						t.Errorf("%s seed=%d: batched %+v differs from solo %+v", label, seed, batch[i], solo)
					}
				}
			}
		}
	}
}

// Early-converging replicas retire from the batch without disturbing the
// streams of the ones still running.
func TestRunAgentsReplicasRetirement(t *testing.T) {
	// Voter runs absorb at scattered rounds, so some replicas retire long
	// before others.
	cfg := engine.Config{N: 128, Rule: protocol.Voter(1), Z: 1, X0: 64, MaxRounds: 10000}
	seeds := []uint64{5, 6, 7, 8, 9, 10}
	batch, err := engine.RunAgentsReplicas(cfg, engine.AgentOptions{}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	rounds := make(map[int64]bool)
	for i, seed := range seeds {
		solo, err := engine.RunAgents(cfg, engine.AgentOptions{}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != solo {
			t.Errorf("seed=%d: batched %+v differs from solo %+v", seed, batch[i], solo)
		}
		if !batch[i].Converged {
			t.Errorf("seed=%d: replica did not absorb: %+v", seed, batch[i])
		}
		rounds[batch[i].Rounds] = true
	}
	if len(rounds) < 2 {
		t.Skip("all replicas absorbed at the same round; retirement not exercised")
	}
}

// Configurations the packed engine does not serve fall back to independent
// solo runs with the same results.
func TestRunAgentsReplicasFallback(t *testing.T) {
	cfg := engine.Config{N: 120, Rule: protocol.Minority(3), Z: 1, X0: 60, MaxRounds: 10}
	seeds := []uint64{11, 12, 13}
	for name, opts := range map[string]engine.AgentOptions{
		"unpacked":            {Unpacked: true},
		"without-replacement": {WithoutReplacement: true},
		"chunked":             {Chunked: true},
	} {
		batch, err := engine.RunAgentsReplicas(cfg, opts, seeds)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, seed := range seeds {
			solo, err := engine.RunAgents(cfg, opts, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			if batch[i] != solo {
				t.Errorf("%s seed=%d: batched %+v differs from solo %+v", name, seed, batch[i], solo)
			}
		}
	}

	if _, err := engine.RunAgentsReplicas(engine.Config{
		N: 10, Rule: protocol.Voter(1), Z: 1, X0: 5,
		Record: func(int64, int64) {},
	}, engine.AgentOptions{}, seeds); err == nil {
		t.Error("RunAgentsReplicas accepted a Config.Record hook")
	}
}
