package engine_test

// Guards for the bit-packed agent-engine fast path. The packed body
// samples from the same per-round distribution as the historical
// byte-per-opinion body but not from the same realization (it draws
// sample indices as 32-bit Lemire rejections), so the contract tested
// here is determinism, absorption/semantic agreement, and fault-handling
// behavior; the distributional agreement packed ↔ unpacked ↔ count-level
// ↔ aggregated is pinned by the χ² suite in equivalence_chi_test.go.
// The suite lives in the external test package so it can exercise real
// fault schedules (internal/fault implements engine.Perturber).

import (
	"fmt"
	"reflect"
	"testing"

	"bitspread/internal/engine"
	"bitspread/internal/fault"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

func runAgentsTraced(t *testing.T, cfg engine.Config, opts engine.AgentOptions, seed uint64) (engine.Result, []int64) {
	t.Helper()
	var traj []int64
	cfg.Record = func(round, count int64) { traj = append(traj, count) }
	res, err := engine.RunAgents(cfg, opts, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return res, traj
}

// The serial packed realization is frozen: these trajectories were
// captured from the pre-refactor single-worker engine, and the sharded
// rewrite (word-aligned worker ranges, factored round loop) must keep
// shards≤1 byte-identical to them. Covers the deterministic fast regime,
// the general body under noise + omission faults, and an odd-n Voter run
// whose final word is partial.
func TestPackedSerialGolden(t *testing.T) {
	sched := fault.Must(fault.OmissionFor(3, 2, 0.5))
	cases := []struct {
		name        string
		cfg         engine.Config
		seed        uint64
		final, acts int64
		traj        []int64
	}{
		{
			"det",
			engine.Config{N: 300, Rule: protocol.Minority(3), Z: 1, X0: 150, MaxRounds: 16},
			42, 149, 4784,
			[]int64{142, 148, 149, 146, 154, 126, 149, 153, 147, 145, 138, 147, 162, 139, 150, 149},
		},
		{
			"noisy",
			engine.Config{N: 300, Rule: protocol.WithNoise(protocol.Minority(3), 0.1), Z: 1, X0: 150, MaxRounds: 16, Faults: sched},
			42, 154, 4480,
			[]int64{152, 162, 154, 160, 160, 154, 143, 150, 158, 152, 156, 166, 149, 138, 162, 154},
		},
		{
			"voter",
			engine.Config{N: 257, Rule: protocol.Voter(1), Z: 1, X0: 128, MaxRounds: 16},
			7, 156, 4096,
			[]int64{127, 137, 143, 143, 146, 158, 152, 157, 150, 144, 133, 144, 155, 159, 156, 156},
		},
	}
	for _, tc := range cases {
		for _, shards := range []int{0, 1} {
			res, traj := runAgentsTraced(t, tc.cfg, engine.AgentOptions{Shards: shards}, tc.seed)
			if res.FinalCount != tc.final || res.Activations != tc.acts || res.Rounds != 16 {
				t.Errorf("%s/shards=%d: got final=%d rounds=%d activations=%d, want final=%d rounds=16 activations=%d",
					tc.name, shards, res.FinalCount, res.Rounds, res.Activations, tc.final, tc.acts)
			}
			if !reflect.DeepEqual(traj, tc.traj) {
				t.Errorf("%s/shards=%d: trajectory diverged from frozen serial realization\ngot  %v\nwant %v",
					tc.name, shards, traj, tc.traj)
			}
		}
	}
}

// The packed engine is deterministic in (seed, Config, Shards): same
// inputs, same Result and same trajectory — including under every fault
// family, whose boundary draws interleave with the packed stream.
func TestPackedDeterministic(t *testing.T) {
	schedules := map[string]*fault.Schedule{
		"none":         nil,
		"reset":        fault.Must(fault.ResetAt(2, 0.5, 0)),
		"churn":        fault.Must(fault.ChurnAt(2, 0.5, 0.25)),
		"stubborn":     fault.Must(fault.StubbornFor(2, 3, 0.25, 0)),
		"omission":     fault.Must(fault.OmissionFor(2, 3, 0.5)),
		"source-crash": fault.Must(fault.SourceCrashFor(2, 2)),
	}
	for name, s := range schedules {
		for _, shards := range []int{1, 4} {
			cfg := engine.Config{
				N: 200, Rule: protocol.WithNoise(protocol.Minority(3), 0.1),
				Z: 1, X0: 100, MaxRounds: 12, Faults: s,
			}
			label := fmt.Sprintf("%s/shards=%d", name, shards)
			a, trajA := runAgentsTraced(t, cfg, engine.AgentOptions{Shards: shards}, 7)
			b, trajB := runAgentsTraced(t, cfg, engine.AgentOptions{Shards: shards}, 7)
			if a != b {
				t.Errorf("%s: same seed diverged\nfirst  %+v\nsecond %+v", label, a, b)
			}
			if !reflect.DeepEqual(trajA, trajB) {
				t.Errorf("%s: trajectories diverged\nfirst  %v\nsecond %v", label, trajA, trajB)
			}
		}
	}
}

// Shard counts partition the agent range but not the dynamics: a packed
// sharded run must absorb at the same fixed points as the serial one and
// count every one-bit exactly once in FinalCount (the per-word merge at
// shard boundaries is the delicate part).
func TestPackedShardedCountsConsistent(t *testing.T) {
	for _, n := range []int64{17, 64, 127, 500} {
		for _, shards := range []int{2, 3, 4, 7} {
			cfg := engine.Config{N: n, Rule: protocol.Voter(1), Z: 1, X0: n / 2, MaxRounds: 4000}
			var traj []int64
			cfg.Record = func(round, count int64) { traj = append(traj, count) }
			res, err := engine.RunAgents(cfg, engine.AgentOptions{Shards: shards}, rng.New(11))
			if err != nil {
				t.Fatal(err)
			}
			for r, c := range traj {
				if c < 1 || c > n {
					t.Fatalf("n=%d shards=%d: round %d count %d out of [1, %d]", n, shards, r+1, c, n)
				}
			}
			if !res.Converged {
				t.Errorf("n=%d shards=%d: Voter run did not absorb: %+v", n, shards, res)
			}
			if res.FinalCount != n {
				t.Errorf("n=%d shards=%d: absorbed at %d, want %d", n, shards, res.FinalCount, n)
			}
		}
	}
}

// Without-replacement sampling needs per-agent sample sets, so RunAgents
// must fall back to the unpacked body (same realization with or without
// the Unpacked flag).
func TestWithoutReplacementIgnoresPacking(t *testing.T) {
	cfg := engine.Config{N: 120, Rule: protocol.Minority(3), Z: 1, X0: 60, MaxRounds: 10}
	a, trajA := runAgentsTraced(t, cfg, engine.AgentOptions{WithoutReplacement: true}, 5)
	b, trajB := runAgentsTraced(t, cfg, engine.AgentOptions{WithoutReplacement: true, Unpacked: true}, 5)
	if a != b || !reflect.DeepEqual(trajA, trajB) {
		t.Errorf("without-replacement runs differ: %+v vs %+v", a, b)
	}
}

// The packed engines must skip non-sampling agents in Activations: with
// every update omitted, no agent samples at all and the count freezes.
func TestPackedActivationsUnderTotalOmission(t *testing.T) {
	cfg := engine.Config{
		N: 130, Rule: protocol.Voter(1), Z: 1, X0: 65,
		MaxRounds: 3, Faults: fault.Must(fault.OmissionFor(1, 3, 1)),
	}
	for _, shards := range []int{1, 4} {
		res, err := engine.RunAgents(cfg, engine.AgentOptions{Shards: shards}, rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		if res.Activations != 0 {
			t.Errorf("shards=%d: %d activations under total omission, want 0", shards, res.Activations)
		}
		if res.FinalCount != 65 {
			t.Errorf("shards=%d: count moved under total omission: %d", shards, res.FinalCount)
		}
	}
}

// Stubborn-pinned agents keep their boundary opinion verbatim: pinning
// every non-source agent freezes the non-source population exactly.
func TestPackedStubbornPinsOpinions(t *testing.T) {
	cfg := engine.Config{
		N: 96, Rule: protocol.Voter(1), Z: 1, X0: 48,
		MaxRounds: 5, Faults: fault.Must(fault.StubbornFor(1, 5, 1, 1)),
	}
	for _, shards := range []int{1, 4} {
		res, err := engine.RunAgents(cfg, engine.AgentOptions{Shards: shards}, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		// StubbornFor(…, 1, 1) pins all n-1 non-source agents at opinion 1
		// plus the source's own 1: the count must sit at n for the window.
		if res.FinalCount != cfg.N {
			t.Errorf("shards=%d: fully pinned population drifted to %d, want %d", shards, res.FinalCount, cfg.N)
		}
		if res.Activations != 0 {
			t.Errorf("shards=%d: %d activations with all agents pinned, want 0", shards, res.Activations)
		}
	}
}
