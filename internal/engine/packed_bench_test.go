package engine

import (
	"testing"

	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// Micro-benchmarks for the agent-engine bodies at a fixed round budget,
// for profiling the packed fast path against the historical layout
// without the bitbench harness around it. MaxRounds is high enough that
// the Floyd initialization is amortized and the per-round loop dominates.
func benchAgentBody(b *testing.B, opts AgentOptions) {
	n := int64(1) << 20
	cfg := Config{N: n, Rule: protocol.Minority(3), Z: 1, X0: n / 2, MaxRounds: 8}
	g := rng.New(1)
	b.SetBytes(8 * cfg.MaxRounds * n) // nominal: rounds × agents
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunAgents(cfg, opts, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAgentBodyUnpacked(b *testing.B) {
	benchAgentBody(b, AgentOptions{Unpacked: true})
}

func BenchmarkAgentBodyPacked(b *testing.B) {
	benchAgentBody(b, AgentOptions{})
}
