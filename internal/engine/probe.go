package engine

// Probe receives structured per-round events from the engines. It
// generalizes Config.Record's (round, count) hook: where Record is a
// single-stream trajectory tap, a Probe sees one-counts, activation
// counts, fault applications and per-shard load, and is required to be
// safe for concurrent use — one Probe may be shared by every replica of
// a sweep and every shard goroutine of a run (internal/obs.Metrics is
// the standard atomic implementation).
//
// Probes are observers, never participants: implementations must not
// consume randomness, block, or mutate anything the engines read. The
// engines guarantee byte-identical Results with and without a probe
// attached (the determinism regression suite runs with one).
//
// Rounds are 1-based, matching Result.Rounds and Config.Record.
type Probe interface {
	// RoundDone fires after every parallel round (and, in the sequential
	// engine, after every n activations or at termination) with the
	// one-count and the number of agents that actually drew samples.
	RoundDone(round, ones, sampled int64)
	// FaultApplied fires at most once per round, when the fault schedule
	// actively perturbed it: a boundary event rewrote opinions or the
	// source deviated from the true opinion.
	FaultApplied(round int64)
	// ShardRound fires once per shard per round in the sharded agent
	// engines with the shard's sampled-agent count; single-stream engines
	// never call it.
	ShardRound(shard int, sampled int64)
}

// probeRound emits the per-round probe events shared by every engine:
// FaultApplied when the schedule actively touched round t (a boundary
// event fired or the source deviated from z), then RoundDone. No-op on a
// nil probe so call sites stay one guarded line.
func probeRound(p Probe, faults Perturber, t int64, z, src int, ones, sampled int64) {
	if p == nil {
		return
	}
	if faults != nil && (src != z || faults.BoundaryAt(t)) {
		p.FaultApplied(t)
	}
	p.RoundDone(t, ones, sampled)
}
