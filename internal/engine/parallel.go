package engine

import (
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// StepCount advances the exact count-level chain one parallel round:
// given x agents with opinion 1 (source included), it returns the next
// round's one-count, distributed exactly as in the agent-level model.
//
// Derivation: each non-source agent's ℓ samples are i.i.d. Bernoulli(x/n)
// (sampling is uniform with replacement over all n agents), so conditioned
// on X_t = x each of the m₁ one-holders independently keeps/adopts 1 with
// probability P₁(x/n) and each of the m₀ zero-holders adopts 1 with
// probability P₀(x/n) (Eq. 4). The source contributes z.
func StepCount(r *protocol.Rule, n int64, z int, x int64, g *rng.RNG) int64 {
	p := float64(x) / float64(n)
	p1 := r.AdoptProb(1, p)
	p0 := r.AdoptProb(0, p)
	m1 := x - int64(z)
	m0 := (n - x) - int64(1-z)
	return int64(z) + g.Binomial(m1, p1) + g.Binomial(m0, p0)
}

// RunParallel simulates the parallel-setting process with the exact
// count-level engine until the correct consensus is hit or the round cap
// expires. The generator g must not be shared across concurrent runs.
// With cfg.Faults set, scheduled perturbations are applied at round
// boundaries and consensus only counts once the schedule's horizon has
// passed; with cfg.Halt set, the run stops early when it fires.
func RunParallel(cfg Config, g *rng.RNG) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	absorbing := cfg.Rule.CheckProp3() == nil
	target := consensusTarget(cfg.N, cfg.Z)
	trap := wrongTrap(cfg.N, cfg.Z)
	roundCap := cfg.maxRounds()
	faults := cfg.perturber()
	horizon := faultHorizon(faults)

	x := cfg.X0
	src := cfg.Z
	res := Result{FinalCount: x}
	if x == target && absorbing && horizon == 0 {
		res.Converged = true
		return res, nil
	}
	for t := int64(1); t <= roundCap; t++ {
		if cfg.Halt != nil && cfg.Halt() {
			res.Interrupted = true
			return res, nil
		}
		sampled := cfg.N - 1
		if faults != nil {
			x, src = faultBoundaryCount(faults, t, cfg.N, cfg.Z, src, x, g)
			x, sampled = stepCountFaulty(cfg.Rule, nil, faults, t, cfg.N, src, x, g)
		} else {
			x = StepCount(cfg.Rule, cfg.N, cfg.Z, x, g)
		}
		res.Activations += sampled
		res.Rounds = t
		res.FinalCount = x
		if x == trap {
			res.HitWrongConsensus = true
		}
		if cfg.Record != nil {
			cfg.Record(t, x)
		}
		probeRound(cfg.Probe, faults, t, cfg.Z, src, x, sampled)
		if x == target && absorbing && t >= horizon {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}
