package engine

import (
	"bitspread/internal/rng"
)

// AgentOptions tunes the literal agent-level simulator.
type AgentOptions struct {
	// WithoutReplacement makes each agent draw its ℓ samples as distinct
	// agents (an ablation; the paper's model samples with replacement).
	WithoutReplacement bool
}

// RunAgents simulates the parallel setting literally, agent by agent, per
// the model definition in Section 1.1: in every round each non-source
// agent i draws a vector of ℓ agent indices uniformly at random (with
// replacement, unless opts says otherwise), counts the ones among the
// sampled opinions, and redraws its opinion from g^[b](k). Agent 0 is the
// source and always holds z.
//
// Cost is O(n·ℓ) per round; the engine exists to cross-validate the exact
// count-level engine and to host per-agent extensions.
func RunAgents(cfg Config, opts AgentOptions, g *rng.RNG) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	absorbing := cfg.Rule.CheckProp3() == nil
	target := consensusTarget(cfg.N, cfg.Z)
	trap := wrongTrap(cfg.N, cfg.Z)
	roundCap := cfg.maxRounds()
	ell := cfg.Rule.SampleSize()
	n := int(cfg.N)

	cur := initialOpinions(cfg, g)
	next := make([]uint8, n)
	x := cfg.X0

	res := Result{FinalCount: x}
	if x == target && absorbing {
		res.Converged = true
		return res, nil
	}

	scratch := make([]int, 0, ell) // distinct-sample workspace
	for t := int64(1); t <= roundCap; t++ {
		next[0] = uint8(cfg.Z)
		var count int64 = int64(next[0])
		for i := 1; i < n; i++ {
			k := 0
			if opts.WithoutReplacement && ell <= n {
				scratch = distinctSamples(scratch[:0], n, ell, g)
				for _, j := range scratch {
					k += int(cur[j])
				}
			} else {
				for s := 0; s < ell; s++ {
					k += int(cur[g.Intn(n)])
				}
			}
			if g.Bernoulli(cfg.Rule.G(int(cur[i]), k)) {
				next[i] = 1
				count++
			} else {
				next[i] = 0
			}
		}
		cur, next = next, cur
		x = count
		res.Rounds = t
		res.Activations += cfg.N - 1
		res.FinalCount = x
		if x == trap {
			res.HitWrongConsensus = true
		}
		if cfg.Record != nil {
			cfg.Record(t, x)
		}
		if x == target && absorbing {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

// initialOpinions lays out a configuration with X0 ones: the source (index
// 0) holds z and the remaining ones are assigned to a uniformly random set
// of non-source agents. Which agents start with which opinion is
// irrelevant to the count process (agents are anonymous), but randomizing
// keeps the agent engine honest for per-agent extensions.
func initialOpinions(cfg Config, g *rng.RNG) []uint8 {
	n := int(cfg.N)
	ops := make([]uint8, n)
	ops[0] = uint8(cfg.Z)
	onesToPlace := int(cfg.X0) - cfg.Z
	// Floyd-style sampling of onesToPlace distinct non-source indices.
	perm := g.Perm(n - 1)
	for i := 0; i < onesToPlace; i++ {
		ops[perm[i]+1] = 1
	}
	return ops
}

// distinctSamples appends ell distinct uniform indices from [0, n) to dst.
// It uses rejection, which is fast while ell ≪ n (the only regime the
// without-replacement ablation targets).
func distinctSamples(dst []int, n, ell int, g *rng.RNG) []int {
	for len(dst) < ell {
		v := g.Intn(n)
		dup := false
		for _, u := range dst {
			if u == v {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, v)
		}
	}
	return dst
}
