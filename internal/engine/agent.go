package engine

import (
	"bitspread/internal/rng"
)

// AgentOptions tunes the literal agent-level simulator.
type AgentOptions struct {
	// WithoutReplacement makes each agent draw its ℓ samples as distinct
	// agents (an ablation; the paper's model samples with replacement).
	WithoutReplacement bool
	// Shards splits the per-round inner loop over that many goroutines,
	// each consuming its own Split-derived random stream over a fixed
	// contiguous range of agents. Results are bit-reproducible given
	// (seed, Shards) regardless of GOMAXPROCS or scheduling; values <= 1
	// select the serial engine, which reproduces the historical
	// single-stream sequence exactly.
	Shards int
	// Unpacked forces the historical byte-per-opinion engine body instead
	// of the bit-packed fast path (see packed.go). The two sample from
	// the same per-round distribution — the packed path draws sample
	// indices as 32-bit Lemire rejections, so realizations for a given
	// seed differ — and each is deterministic in (seed, Config, Shards).
	// The flag exists for benchmarks and equivalence tests, and for
	// callers that need the historical realization for a fixed seed.
	Unpacked bool
	// Chunked forces the streaming chunked-bitset body (see chunked.go),
	// which samples indices with 64-bit Lemire rejection and therefore has
	// no n < 2³² ceiling. Populations at or above that ceiling take the
	// chunked body automatically; the flag exists to exercise it (and its
	// realization) at small n. Ignored when Unpacked or without-replacement
	// sampling already forces the historical body.
	Chunked bool
}

// effectiveShards resolves the shard count for a population of n agents:
// at most one shard per non-source agent, and never less than 1.
func (o AgentOptions) effectiveShards(n int64) int {
	s := o.Shards
	if int64(s) > n-1 {
		s = int(n - 1)
	}
	if s < 1 {
		s = 1
	}
	return s
}

// RunAgents simulates the parallel setting literally, agent by agent, per
// the model definition in Section 1.1: in every round each non-source
// agent i draws a vector of ℓ agent indices uniformly at random (with
// replacement, unless opts says otherwise), counts the ones among the
// sampled opinions, and redraws its opinion from g^[b](k). Agent 0 is the
// source and always holds z.
//
// Cost is O(n·ℓ) per round, split across opts.Shards goroutines when
// sharding is requested; the engine exists to cross-validate the exact
// count-level engine and to host per-agent extensions. Opinions are kept
// in a bit-packed layout by default (same per-round distribution as the
// historical byte-per-opinion body, which opts.Unpacked forces and
// without-replacement sampling or n ≥ 2³² fall back to; see packed.go).
func RunAgents(cfg Config, opts AgentOptions, g *rng.RNG) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	ell := cfg.Rule.SampleSize()
	withoutReplacement := opts.WithoutReplacement && ell <= int(cfg.N)
	if !opts.Unpacked && !withoutReplacement {
		// The packed bodies resolve the shard count themselves (a shard
		// must own at least one whole bitset word; Result.Shards reports
		// the resolved value).
		if opts.Chunked || cfg.N >= packedMaxN {
			return runAgentsChunked(cfg, opts.Shards, g)
		}
		return runAgentsPacked(cfg, opts.Shards, g)
	}
	shards := opts.effectiveShards(cfg.N)
	if shards > 1 {
		return runAgentsSharded(cfg, opts, shards, g)
	}
	absorbing := cfg.Rule.CheckProp3() == nil
	target := consensusTarget(cfg.N, cfg.Z)
	trap := wrongTrap(cfg.N, cfg.Z)
	roundCap := cfg.maxRounds()
	n := int(cfg.N)
	faults := cfg.perturber()
	horizon := faultHorizon(faults)

	cur := initialOpinions(cfg, g)
	next := make([]uint8, n)
	x := cfg.X0

	res := Result{FinalCount: x, Shards: 1}
	if x == target && absorbing && horizon == 0 {
		res.Converged = true
		return res, nil
	}

	var sampler *distinctSampler
	if withoutReplacement {
		sampler = newDistinctSampler(n, ell)
	}
	for t := int64(1); t <= roundCap; t++ {
		if cfg.Halt != nil && cfg.Halt() {
			res.Interrupted = true
			return res, nil
		}
		src := cfg.Z
		var omitQ float64
		pinnedEnd := 1
		if faults != nil {
			src = faultBoundaryAgents(faults, t, cfg.Z, cur, g)
			omitQ = faults.OmitProb(t)
			s1, s0 := faults.Stubborn(t, cfg.N)
			pinnedEnd = 1 + int(s1) + int(s0)
		}
		next[0] = uint8(src)
		var count int64 = int64(next[0])
		var sampled int64
		for i := 1; i < pinnedEnd; i++ {
			// Stubborn agents keep the opinion the boundary pinned them at.
			next[i] = cur[i]
			count += int64(cur[i])
		}
		for i := pinnedEnd; i < n; i++ {
			if omitQ > 0 && g.Bernoulli(omitQ) {
				next[i] = cur[i]
				count += int64(cur[i])
				continue
			}
			k := 0
			if sampler != nil {
				for _, j := range sampler.sample(g) {
					k += int(cur[j])
				}
			} else {
				for s := 0; s < ell; s++ {
					k += int(cur[g.Intn(n)])
				}
			}
			sampled++
			if g.Bernoulli(cfg.Rule.G(int(cur[i]), k)) {
				next[i] = 1
				count++
			} else {
				next[i] = 0
			}
		}
		cur, next = next, cur
		x = count
		res.Rounds = t
		res.Activations += sampled
		res.FinalCount = x
		if x == trap {
			res.HitWrongConsensus = true
		}
		if cfg.Record != nil {
			cfg.Record(t, x)
		}
		probeRound(cfg.Probe, faults, t, cfg.Z, src, x, sampled)
		if x == target && absorbing && t >= horizon {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

// initialOpinions lays out a configuration with X0 ones: the source (index
// 0) holds z and the remaining ones are assigned to a uniformly random set
// of non-source agents. Which agents start with which opinion is
// irrelevant to the count process (agents are anonymous), but randomizing
// keeps the agent engine honest for per-agent extensions.
//
// The ones are placed by Floyd's subset-sampling algorithm, which draws
// exactly onesToPlace variates and uses the opinion array itself as the
// membership set — O(X0) work instead of a full n-permutation.
func initialOpinions(cfg Config, g *rng.RNG) []uint8 {
	n := int(cfg.N)
	ops := make([]uint8, n)
	ops[0] = uint8(cfg.Z)
	onesToPlace := int(cfg.X0) - cfg.Z
	m := n - 1 // candidate non-source slots, ops[1..n-1]
	for j := m - onesToPlace; j < m; j++ {
		t := g.Intn(j + 1)
		if ops[1+t] == 1 {
			ops[1+j] = 1
		} else {
			ops[1+t] = 1
		}
	}
	return ops
}

// smallSampleCut is the ℓ at or below which a linear duplicate scan beats
// map bookkeeping for without-replacement draws.
const smallSampleCut = 16

// distinctSampler draws ℓ distinct uniform indices from [0, n) repeatedly
// without allocating per call. Strategy by regime:
//
//   - ℓ ≤ smallSampleCut: rejection with a linear duplicate scan (the
//     historical path, fastest while the scan fits in a cache line);
//   - ℓ ≤ n/2: rejection with a hash-set duplicate check, expected O(ℓ)
//     per call instead of the linear scan's O(ℓ²);
//   - ℓ > n/2: partial Fisher–Yates over a persistent index permutation,
//     O(ℓ) swaps with no rejection at all (the permutation stays valid
//     between calls, so no re-initialization is needed).
type distinctSampler struct {
	n, ell int
	buf    []int
	seen   map[int]struct{} // map-rejection path
	perm   []int            // partial-shuffle path
}

func newDistinctSampler(n, ell int) *distinctSampler {
	s := &distinctSampler{n: n, ell: ell}
	switch {
	case ell <= smallSampleCut:
		s.buf = make([]int, 0, ell)
	case ell <= n/2:
		s.buf = make([]int, 0, ell)
		s.seen = make(map[int]struct{}, ell)
	default:
		s.perm = make([]int, n)
		for i := range s.perm {
			s.perm[i] = i
		}
	}
	return s
}

// sample returns ℓ distinct indices; the slice is valid until the next
// call.
func (s *distinctSampler) sample(g *rng.RNG) []int {
	switch {
	case s.perm != nil:
		// Partial Fisher–Yates: any permutation prefix of length ℓ is a
		// uniform ordered sample without replacement.
		for i := 0; i < s.ell; i++ {
			j := i + g.Intn(s.n-i)
			s.perm[i], s.perm[j] = s.perm[j], s.perm[i]
		}
		return s.perm[:s.ell]
	case s.seen != nil:
		clear(s.seen)
		dst := s.buf[:0]
		for len(dst) < s.ell {
			v := g.Intn(s.n)
			if _, dup := s.seen[v]; dup {
				continue
			}
			s.seen[v] = struct{}{}
			dst = append(dst, v)
		}
		s.buf = dst
		return dst
	default:
		dst := s.buf[:0]
		for len(dst) < s.ell {
			v := g.Intn(s.n)
			dup := false
			for _, u := range dst {
				if u == v {
					dup = true
					break
				}
			}
			if !dup {
				dst = append(dst, v)
			}
		}
		s.buf = dst
		return dst
	}
}
