package engine_test

// Distributional equivalence suite: the aggregated opinion-class engine,
// the literal agent engine (both its historical byte-per-opinion body and
// the bit-packed fast path, which share a distribution but not a
// realization) and the count-level engine must draw the next one-count
// from the same distribution — fault-free and under every fault family
// in internal/fault. Each engine produces R replica final counts
// from fixed seeds; pairs are compared with the two-sample χ² statistic
// Σ (aᵢ-bᵢ)²/(aᵢ+bᵢ) (equal sample sizes, df = bins-1) at α = 0.01.
// Seeds are fixed, so the suite is deterministic: it either always passes
// or flags a real distributional divergence.

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"bitspread/internal/dist"
	"bitspread/internal/engine"
	"bitspread/internal/fault"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// chiEngine is one engine under comparison.
type chiEngine struct {
	name string
	run  func(cfg engine.Config, g *rng.RNG) (engine.Result, error)
}

func chiEngines() []chiEngine {
	agents := func(opts engine.AgentOptions) func(engine.Config, *rng.RNG) (engine.Result, error) {
		return func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
			return engine.RunAgents(cfg, opts, g)
		}
	}
	return []chiEngine{
		{"count", engine.RunParallel},
		{"literal", agents(engine.AgentOptions{Unpacked: true})},
		{"packed", agents(engine.AgentOptions{})},
		{"packed-sharded", agents(engine.AgentOptions{Shards: 3})},
		{"packed-sharded-ncpu", agents(engine.AgentOptions{Shards: runtime.NumCPU()})},
		{"chunked", agents(engine.AgentOptions{Chunked: true})},
		{"chunked-sharded", agents(engine.AgentOptions{Chunked: true, Shards: 3})},
		{"aggregated", engine.RunAggregated},
	}
}

// sampleFinalCounts runs R seeded replicas and returns their final counts.
func sampleFinalCounts(t *testing.T, cfg engine.Config, run func(engine.Config, *rng.RNG) (engine.Result, error), master uint64, reps int) []int64 {
	t.Helper()
	seeds := rng.New(master)
	out := make([]int64, reps)
	for i := range out {
		res, err := run(cfg, rng.New(seeds.Uint64()))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = res.FinalCount
	}
	return out
}

// chiSquareTwoSample bins the two equally-sized samples over their common
// value range (greedily merging adjacent values until each bin holds at
// least minBin combined observations) and returns the χ² p-value.
func chiSquareTwoSample(t *testing.T, a, b []int64) float64 {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("sample sizes differ: %d vs %d", len(a), len(b))
	}
	counts := map[int64][2]int64{}
	for _, v := range a {
		c := counts[v]
		c[0]++
		counts[v] = c
	}
	for _, v := range b {
		c := counts[v]
		c[1]++
		counts[v] = c
	}
	values := make([]int64, 0, len(counts))
	for v := range counts {
		values = append(values, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })

	const minBin = 20
	type bin struct{ a, b int64 }
	var bins []bin
	var cur bin
	for _, v := range values {
		c := counts[v]
		cur.a += c[0]
		cur.b += c[1]
		if cur.a+cur.b >= minBin {
			bins = append(bins, cur)
			cur = bin{}
		}
	}
	if cur.a+cur.b > 0 {
		if len(bins) > 0 {
			bins[len(bins)-1].a += cur.a
			bins[len(bins)-1].b += cur.b
		} else {
			bins = append(bins, cur)
		}
	}
	if len(bins) < 2 {
		// Both samples concentrated on one bin: identical by construction.
		return 1
	}
	stat := 0.0
	for _, bn := range bins {
		d := float64(bn.a - bn.b)
		stat += d * d / float64(bn.a+bn.b)
	}
	return dist.ChiSquareTail(stat, len(bins)-1)
}

func TestEngineEquivalenceChiSquare(t *testing.T) {
	if testing.Short() {
		t.Skip("χ² suite needs thousands of replicas")
	}
	const (
		n     = 256
		reps  = 1500
		alpha = 0.01
	)
	// 128-agent chunks put a chunk boundary inside the population, so the
	// chunked engines are compared on their multi-chunk code paths.
	defer engine.SetChunkShiftForTest(7)()
	schedules := map[string]*fault.Schedule{
		"none":         nil,
		"stubborn":     fault.Must(fault.StubbornFor(1, 2, 0.25, 0)),
		"stubborn-one": fault.Must(fault.StubbornFor(1, 2, 0.25, 1)),
		"omission":     fault.Must(fault.OmissionFor(1, 2, 0.5)),
		"source-crash": fault.Must(fault.SourceCrashFor(1, 2)),
		"reset":        fault.Must(fault.ResetAt(1, 0.5, 0)),
		"churn":        fault.Must(fault.ChurnAt(1, 0.5, 0.25)),
	}
	rules := []*protocol.Rule{protocol.Voter(1), protocol.Minority(3)}
	engines := chiEngines()
	for schedName, sched := range schedules {
		for _, r := range rules {
			cfg := engine.Config{
				N: n, Rule: r, Z: 1, X0: n / 2, MaxRounds: 2, Faults: sched,
			}
			samples := make([][]int64, len(engines))
			for i, e := range engines {
				// Distinct master per engine: replicas must be independent
				// across engines for the two-sample statistic.
				master := uint64(1000*i + 17)
				samples[i] = sampleFinalCounts(t, cfg, e.run, master, reps)
			}
			for i := 0; i < len(engines); i++ {
				for j := i + 1; j < len(engines); j++ {
					p := chiSquareTwoSample(t, samples[i], samples[j])
					name := fmt.Sprintf("%s/%v: %s vs %s", schedName, r, engines[i].name, engines[j].name)
					if p >= alpha {
						continue
					}
					// Escalate before flagging: with dozens of fixed-seed
					// comparisons at α = 0.01, isolated sub-α p-values are
					// expected under the null. Re-test the pair on an
					// independent, larger sample; a real divergence fails
					// again (its statistic grows linearly in reps), while a
					// fluke recurs with probability α.
					a := sampleFinalCounts(t, cfg, engines[i].run, uint64(1000*i+291749), 2*reps)
					b := sampleFinalCounts(t, cfg, engines[j].run, uint64(1000*j+291749), 2*reps)
					if p2 := chiSquareTwoSample(t, a, b); p2 < alpha {
						t.Errorf("%s: χ² p-values %.5f and %.5f (retry) < %v — distributions diverge",
							name, p, p2, alpha)
					}
				}
			}
		}
	}
}

// The aggregated engine must agree with the others on Activations
// semantics too: the expected sampled-agent count per round is
// (n-1-stubborn)·(1-q), so compare the replica means within a loose band.
func TestEngineEquivalenceActivations(t *testing.T) {
	const n, reps = 256, 300
	sched := fault.Must(fault.OmissionFor(1, 2, 0.5))
	cfg := engine.Config{
		N: n, Rule: protocol.Minority(3), Z: 1, X0: n / 2,
		MaxRounds: 2, Faults: sched,
	}
	means := map[string]float64{}
	for _, e := range chiEngines() {
		var sum int64
		seeds := rng.New(99)
		for i := 0; i < reps; i++ {
			res, err := e.run(cfg, rng.New(seeds.Uint64()))
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Activations
		}
		means[e.name] = float64(sum) / reps
	}
	// Two rounds at q = 0.5: expect about 2·(n-1)/2 = n-1 sampled updates.
	want := float64(n - 1)
	for name, m := range means {
		if m < 0.85*want || m > 1.15*want {
			t.Errorf("%s: mean activations %.1f, want ≈ %.1f", name, m, want)
		}
	}
}
