package engine

import (
	"sync"

	"bitspread/internal/rng"
)

// agentShard is one worker of the sharded agent engine: a fixed contiguous
// range of non-source agents driven by its own random stream.
type agentShard struct {
	lo, hi  int // agent index range [lo, hi)
	g       *rng.RNG
	sampler *distinctSampler
	count   int64 // ones written in the last round
	sampled int64 // agents that drew samples in the last round
}

// runAgentsSharded is the multi-core body of RunAgents for shards >= 2.
//
// Determinism contract: the initial configuration is drawn from g exactly
// as in the serial engine (so a given seed yields the same starting layout
// at every shard count), then each shard receives its own generator via
// shards successive g.Split() calls and owns a fixed range of agents.
// Because no stream is ever shared across goroutines and per-round
// aggregation is a fixed-order reduction, the full trajectory depends only
// on (seed, shards) — never on GOMAXPROCS or scheduling.
//
// The inner loop is allocation-free: uniform indices come from a
// fixed-bound Lemire sampler and the g^[b](k) coin flips compare raw
// uint64 draws against thresholds precomputed once per rule table entry.
func runAgentsSharded(cfg Config, opts AgentOptions, shards int, g *rng.RNG) (Result, error) {
	absorbing := cfg.Rule.CheckProp3() == nil
	target := consensusTarget(cfg.N, cfg.Z)
	trap := wrongTrap(cfg.N, cfg.Z)
	roundCap := cfg.maxRounds()
	ell := cfg.Rule.SampleSize()
	n := int(cfg.N)
	faults := cfg.perturber()
	horizon := faultHorizon(faults)

	cur := initialOpinions(cfg, g)
	next := make([]uint8, n)
	x := cfg.X0

	res := Result{FinalCount: x, Shards: shards}
	if x == target && absorbing && horizon == 0 {
		res.Converged = true
		return res, nil
	}

	// Precomputed 64-bit acceptance thresholds for g^[b](k), indexed by k.
	g0, g1 := cfg.Rule.Tables()
	thr0 := make([]uint64, ell+1)
	thr1 := make([]uint64, ell+1)
	for k := 0; k <= ell; k++ {
		thr0[k] = rng.BernoulliThreshold(g0[k])
		thr1[k] = rng.BernoulliThreshold(g1[k])
	}
	bounded := rng.NewBounded(n)
	withoutReplacement := opts.WithoutReplacement && ell <= n

	workers := make([]*agentShard, shards)
	for s := range workers {
		lo := 1 + s*(n-1)/shards
		hi := 1 + (s+1)*(n-1)/shards
		w := &agentShard{lo: lo, hi: hi, g: g.Split()}
		if withoutReplacement {
			w.sampler = newDistinctSampler(n, ell)
		}
		workers[s] = w
	}

	var wg sync.WaitGroup
	for t := int64(1); t <= roundCap; t++ {
		if cfg.Halt != nil && cfg.Halt() {
			res.Interrupted = true
			return res, nil
		}
		src := cfg.Z
		var omitThr uint64
		pinnedEnd := 1
		if faults != nil {
			// Boundary events run serially on the main stream, so the
			// trajectory stays a function of (seed, shards) alone.
			src = faultBoundaryAgents(faults, t, cfg.Z, cur, g)
			if q := faults.OmitProb(t); q > 0 {
				omitThr = rng.BernoulliThreshold(q)
			}
			s1, s0 := faults.Stubborn(t, cfg.N)
			pinnedEnd = 1 + int(s1) + int(s0)
		}
		next[0] = uint8(src)
		for _, w := range workers {
			wg.Add(1)
			go func(w *agentShard) {
				defer wg.Done()
				w.step(cur, next, ell, bounded, thr0, thr1, omitThr, pinnedEnd)
			}(w)
		}
		wg.Wait()

		count := int64(next[0])
		for _, w := range workers {
			count += w.count
		}
		cur, next = next, cur
		x = count
		res.Rounds = t
		var roundSampled int64
		for _, w := range workers {
			roundSampled += w.sampled
		}
		res.Activations += roundSampled
		res.FinalCount = x
		if x == trap {
			res.HitWrongConsensus = true
		}
		if cfg.Record != nil {
			cfg.Record(t, x)
		}
		if cfg.Probe != nil {
			for s, w := range workers {
				cfg.Probe.ShardRound(s, w.sampled)
			}
		}
		probeRound(cfg.Probe, faults, t, cfg.Z, src, x, roundSampled)
		if x == target && absorbing && t >= horizon {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

// step advances the shard's agent range one round, writing new opinions
// into next[lo:hi] and recording the ones written. Agents below pinnedEnd
// are stubborn and keep their opinion; when omitThr is non-zero each
// remaining agent first flips the omission coin and on success keeps its
// opinion without sampling.
func (w *agentShard) step(cur, next []uint8, ell int, bounded rng.Bounded, thr0, thr1 []uint64, omitThr uint64, pinnedEnd int) {
	g := w.g
	var count, sampled int64
	for i := w.lo; i < w.hi; i++ {
		if i < pinnedEnd {
			next[i] = cur[i]
			count += int64(cur[i])
			continue
		}
		if omitThr != 0 && g.BernoulliT(omitThr) {
			next[i] = cur[i]
			count += int64(cur[i])
			continue
		}
		k := 0
		if w.sampler != nil {
			for _, j := range w.sampler.sample(g) {
				k += int(cur[j])
			}
		} else {
			for s := 0; s < ell; s++ {
				k += int(cur[bounded.Next(g)])
			}
		}
		sampled++
		thr := thr0
		if cur[i] == 1 {
			thr = thr1
		}
		if g.BernoulliT(thr[k]) {
			next[i] = 1
			count++
		} else {
			next[i] = 0
		}
	}
	w.count = count
	w.sampled = sampled
}
