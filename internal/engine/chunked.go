package engine

import (
	"math/bits"
	"sync"

	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// This file is the huge-n body of the literal agent engine: the same
// bit-packed opinion layout as packed.go, but split into 2^chunkShift-agent
// chunks and sampled with 64-bit Lemire rejection, so nothing in it assumes
// the population fits a 32-bit index. The packed fast path is gated at
// n < 2³² because its per-index draws are 32-bit halves; here every index
// draw is a full word multiplied out through bits.Mul64, exact for any
// bound below 2⁶⁴ and just as free of divisions. The deterministic-rule
// fast regime needs no index sampling at all (k is drawn by inverse CDF
// from one word — see stepDet), so the chunked engine reuses the packed
// worker per chunk segment there and only pays the chunked addressing in
// the general body.
//
// Like the packed engine, realizations differ from every other body —
// the chunked engine spends a whole word where the packed one spends a
// half — so runs are reproducible per engine (same seed, Config, Shards ⇒
// same Result) and the χ² suite pins the distributional agreement.

// chunkShift is the log₂ capacity, in agents, of one bitset chunk. The
// default keeps chunks at the packed engine's exact ceiling (2³² opinions,
// 512 MiB per bitset chunk); tests shrink it to exercise multi-chunk runs
// at testing-sized n. It is package state only for that override — every
// run reads it once at state construction.
var chunkShift uint = 32

// chunkedBits holds n opinion bits as fixed-capacity chunks of
// 2^chunkShift bits. Word w of the population lives at
// chunks[w>>(chunkShift-6)][w&(chunkWords-1)]: every chunk except the last
// holds exactly chunkWords words, so global word addressing never scans.
type chunkedBits struct {
	n      int64
	shift  uint // copy of chunkShift at construction
	chunks [][]uint64
}

func newChunkedBits(n int64) *chunkedBits {
	shift := chunkShift
	size := int64(1) << shift
	cb := &chunkedBits{n: n, shift: shift, chunks: make([][]uint64, (n+size-1)>>shift)}
	for c := range cb.chunks {
		hi := size
		if rem := n - int64(c)<<shift; rem < hi {
			hi = rem
		}
		cb.chunks[c] = make([]uint64, int((hi+63)>>6))
	}
	return cb
}

// get returns opinion bit i.
func (cb *chunkedBits) get(i int64) uint64 {
	c := cb.chunks[i>>cb.shift]
	j := i & (int64(1)<<cb.shift - 1)
	return (c[j>>6] >> (uint(j) & 63)) & 1
}

// set stores opinion bit i.
func (cb *chunkedBits) set(i int64, bit uint64) {
	c := cb.chunks[i>>cb.shift]
	j := i & (int64(1)<<cb.shift - 1)
	mask := uint64(1) << (uint(j) & 63)
	if bit != 0 {
		c[j>>6] |= mask
	} else {
		c[j>>6] &^= mask
	}
}

// setWord stores the 64-bit word holding agents [w<<6, w<<6+64).
func (cb *chunkedBits) setWord(w int64, v uint64) {
	cb.chunks[w>>(cb.shift-6)][w&(int64(1)<<(cb.shift-6)-1)] = v
}

// count returns the number of one-bits across all chunks.
func (cb *chunkedBits) count() int64 {
	var c int
	for _, chunk := range cb.chunks {
		for _, w := range chunk {
			c += bits.OnesCount64(w)
		}
	}
	return int64(c)
}

// chunkedInitialOpinions is packedInitialOpinions on the chunked layout:
// the same Floyd subset-sampling walk with 64-bit Lemire draws (whole
// words, one per accepted variate) instead of 32-bit halves.
func chunkedInitialOpinions(cfg Config, s *halfStream) *chunkedBits {
	cb := newChunkedBits(cfg.N)
	cb.set(0, uint64(cfg.Z))
	onesToPlace := cfg.X0 - int64(cfg.Z)
	m := cfg.N - 1 // candidate non-source slots, bits 1..n-1
	buf := &s.buf
	g := s.g
	wpos := (s.pos + 1) >> 1 // consume whole words; drop a straggling half
	for j := m - onesToPlace; j < m; j++ {
		bound := uint64(j + 1)
		if wpos == packedBufferWords {
			g.FillUint64(buf[:])
			wpos = 0
		}
		hi, lo := bits.Mul64(buf[wpos], bound)
		wpos++
		if lo < bound {
			rej := -bound % bound
			for lo < rej {
				if wpos == packedBufferWords {
					g.FillUint64(buf[:])
					wpos = 0
				}
				hi, lo = bits.Mul64(buf[wpos], bound)
				wpos++
			}
		}
		t := int64(hi)
		// Branchless membership select, as in the packed walk: slot j when
		// slot t is already a member, t otherwise.
		b := int64(cb.get(1 + t))
		cb.set(1+(t^((t^j)&-b)), 1)
	}
	s.pos = wpos << 1
	return cb
}

// chunkedBoundary is packedBoundary on the chunked layout: the source bit
// takes its scheduled opinion and boundary events rewrite non-source
// opinions through an unpack → PerturbAgents → repack round-trip. The O(n)
// scratch slice is paid only on boundary rounds (point events) and reused.
func chunkedBoundary(f Perturber, t int64, z int, cur *chunkedBits, scratch []uint8, g *rng.RNG) (int, []uint8) {
	src := f.SourceOpinion(t, z)
	cur.set(0, uint64(src))
	if f.BoundaryAt(t) {
		if scratch == nil {
			scratch = make([]uint8, cur.n)
		}
		for i := int64(0); i < cur.n; i++ {
			scratch[i] = uint8(cur.get(i))
		}
		f.PerturbAgents(t, scratch, g)
		for _, c := range cur.chunks {
			clear(c)
		}
		for i := int64(0); i < cur.n; i++ {
			if scratch[i] != 0 {
				cur.set(i, 1)
			}
		}
	}
	return src, scratch
}

// chunkedWorker is one agent range of the chunked engine. The embedded
// packedWorker carries the half stream and serves the deterministic-rule
// regime chunk segment by chunk segment; the general body walks global
// indices directly. Workers own word-aligned global ranges
// (packedWordBounds on the global word count), so every bitset word — in
// whichever chunk — has exactly one writer.
type chunkedWorker struct {
	lo, hi  int64 // global agent index range [lo, hi)
	pw      packedWorker
	count   int64
	sampled int64
	_       [6]uint64 // pad: adjacent workers on distinct cache lines
}

// stepDet advances the worker's range one round in the deterministic-rule
// fault-free regime by delegating each chunk segment to the packed
// stepDet: the regime draws no indices, so chunk-local addressing is
// exact. Counts accumulate across segments on one stream.
func (w *chunkedWorker) stepDet(cur, next *chunkedBits, det0, det1 uint64, kThr []uint64) {
	w.count, w.sampled = 0, 0
	size := int64(1) << cur.shift
	for i := w.lo; i < w.hi; {
		c := i >> cur.shift
		base := int64(c) << cur.shift
		segEnd := base + size
		if segEnd > w.hi {
			segEnd = w.hi
		}
		w.pw.lo = int(i - base)
		w.pw.hi = int(segEnd - base)
		w.pw.stepDet(cur.chunks[c], next.chunks[c], det0, det1, kThr)
		w.count += w.pw.count
		w.sampled += w.pw.sampled
		i = segEnd
	}
}

// step advances the worker's range one general round (noisy tables,
// omission coins, pinned stubborn prefixes). Index draws are 64-bit
// Lemire rejections over the full population — chunk boundaries are
// invisible to the sampler; only the bit lookup routes through the chunk
// table. Coins compare whole words against precomputed thresholds with
// the non-consuming sentinels short-circuited.
func (w *chunkedWorker) step(cur, next *chunkedBits, ell int, thr0, thr1 []uint64, omitThr uint64, pinnedEnd int64) {
	n := cur.n
	bound := uint64(n)
	rej := -bound % bound
	s := w.pw.s
	buf := &s.buf
	g := s.g
	wpos := (s.pos + 1) >> 1 // whole words, as in the chunked init
	word := func() uint64 {
		if wpos == packedBufferWords {
			g.FillUint64(buf[:])
			wpos = 0
		}
		u := buf[wpos]
		wpos++
		return u
	}
	var count, sampled int64
	acc := uint64(0)
	for i := w.lo; i < w.hi; i++ {
		var bit uint64
		if i >= pinnedEnd {
			omitted := false
			if omitThr != 0 {
				if omitThr == rng.BernoulliAlways {
					omitted = true
				} else {
					omitted = word() < omitThr
				}
			}
			if !omitted {
				k := 0
				for sc := 0; sc < ell; sc++ {
					hi, lo := bits.Mul64(word(), bound)
					for lo < rej {
						hi, lo = bits.Mul64(word(), bound)
					}
					k += int(cur.get(int64(hi)))
				}
				sampled++
				thr := thr0[k]
				if cur.get(i) == 1 {
					thr = thr1[k]
				}
				switch thr {
				case 0:
					// bit stays 0 without consuming randomness.
				case rng.BernoulliAlways:
					bit = 1
				default:
					if word() < thr {
						bit = 1
					}
				}
				goto store
			}
		}
		// Stubborn or omitted: the agent keeps its opinion.
		bit = cur.get(i)
	store:
		acc |= bit << (uint(i) & 63)
		count += int64(bit)
		if i&63 == 63 || i == w.hi-1 {
			next.setWord(i>>6, acc)
			acc = 0
		}
	}
	s.pos = wpos << 1
	w.count = count
	w.sampled = sampled
}

// runAgentsChunked is the chunked-bitset body of RunAgents: the packed
// engine's structure — deterministic-rule fast regime, word-aligned
// shard ranges, fixed-order reduction — over the chunked layout, with no
// population ceiling. Deterministic in (seed, Config, Shards), like every
// agent engine.
func runAgentsChunked(cfg Config, requestedShards int, g *rng.RNG) (Result, error) {
	absorbing := cfg.Rule.CheckProp3() == nil
	target := consensusTarget(cfg.N, cfg.Z)
	trap := wrongTrap(cfg.N, cfg.Z)
	roundCap := cfg.maxRounds()
	ell := cfg.Rule.SampleSize()
	faults := cfg.perturber()
	horizon := faultHorizon(faults)

	totalWords := int((cfg.N + 63) >> 6)
	shards := packedEffectiveShards(requestedShards, totalWords)

	main := newHalfStream(g)
	cur := chunkedInitialOpinions(cfg, main)
	next := newChunkedBits(cfg.N)
	x := cfg.X0

	res := Result{FinalCount: x, Shards: shards}
	if x == target && absorbing && horizon == 0 {
		res.Converged = true
		return res, nil
	}

	g0, g1 := cfg.Rule.Tables()
	thr0 := make([]uint64, ell+1)
	thr1 := make([]uint64, ell+1)
	for k := 0; k <= ell; k++ {
		thr0[k] = rng.BernoulliThreshold(g0[k])
		thr1[k] = rng.BernoulliThreshold(g1[k])
	}
	det0, det1, detOK := detMasks(thr0, thr1)
	var pmf []float64
	var kThr []uint64
	if detOK {
		pmf = make([]float64, ell+1)
		kThr = make([]uint64, ell)
	}

	// Word-aligned, cache-line-padded global shard ranges, exactly as in
	// the packed engine; chunk boundaries fall on word boundaries by
	// construction, so the two alignments compose.
	workers := make([]*chunkedWorker, shards)
	if shards == 1 {
		workers[0] = &chunkedWorker{lo: 1, hi: cfg.N}
		workers[0].pw.s = main
	} else {
		bounds := packedWordBounds(totalWords, shards)
		streams := g.SplitN(shards)
		for s := range workers {
			lo := int64(bounds[s]) << 6
			if lo == 0 {
				lo = 1 // bit 0 is the coordinator-owned source bit
			}
			hi := int64(bounds[s+1]) << 6
			if hi > cfg.N {
				hi = cfg.N
			}
			workers[s] = &chunkedWorker{lo: lo, hi: hi}
			workers[s].pw.s = newHalfStream(streams[s])
		}
	}

	var scratch []uint8
	var wg sync.WaitGroup
	for t := int64(1); t <= roundCap; t++ {
		if cfg.Halt != nil && cfg.Halt() {
			res.Interrupted = true
			return res, nil
		}
		src := cfg.Z
		var omitThr uint64
		pinnedEnd := int64(1)
		if faults != nil {
			src, scratch = chunkedBoundary(faults, t, cfg.Z, cur, scratch, g)
			if q := faults.OmitProb(t); q > 0 {
				omitThr = rng.BernoulliThreshold(q)
			}
			s1, s0 := faults.Stubborn(t, cfg.N)
			pinnedEnd = 1 + s1 + s0
		}
		det := detOK && omitThr == 0 && pinnedEnd == 1
		if det {
			// Thresholds condition on the one-count agents sample from; a
			// fault boundary may just have rewritten the bitset.
			xs := x
			if faults != nil {
				xs = cur.count()
			}
			protocol.SampleCountPMF(ell, float64(xs)/float64(cfg.N), pmf)
			cdf := 0.0
			for m := 0; m < ell; m++ {
				cdf += pmf[m]
				kThr[m] = rng.BernoulliThreshold(cdf)
			}
		}
		if shards == 1 {
			if det {
				workers[0].stepDet(cur, next, det0, det1, kThr)
			} else {
				workers[0].step(cur, next, ell, thr0, thr1, omitThr, pinnedEnd)
			}
		} else {
			for _, w := range workers {
				wg.Add(1)
				go func(w *chunkedWorker) {
					defer wg.Done()
					if det {
						w.stepDet(cur, next, det0, det1, kThr)
					} else {
						w.step(cur, next, ell, thr0, thr1, omitThr, pinnedEnd)
					}
				}(w)
			}
			wg.Wait()
		}

		count := int64(0)
		var roundSampled int64
		for _, w := range workers {
			count += w.count
			roundSampled += w.sampled
		}
		res.Activations += roundSampled
		next.chunks[0][0] = next.chunks[0][0]&^1 | uint64(src)
		count += int64(src)

		cur, next = next, cur
		x = count
		res.Rounds = t
		res.FinalCount = x
		if x == trap {
			res.HitWrongConsensus = true
		}
		if cfg.Record != nil {
			cfg.Record(t, x)
		}
		if cfg.Probe != nil {
			if shards > 1 {
				for s, w := range workers {
					cfg.Probe.ShardRound(s, w.sampled)
				}
			}
			probeRound(cfg.Probe, faults, t, cfg.Z, src, x, roundSampled)
		}
		if x == target && absorbing && t >= horizon {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}
