package engine

import (
	"errors"
	"math"
	"testing"

	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

func TestConflictValidation(t *testing.T) {
	voter := protocol.Voter(1)
	tests := []struct {
		name    string
		cfg     ConflictConfig
		wantErr error
	}{
		{"ok", ConflictConfig{N: 10, Rule: voter, Sources1: 1, Sources0: 1, X0: 5, Rounds: 1}, nil},
		{"nil rule", ConflictConfig{N: 10, Sources1: 1, X0: 5, Rounds: 1}, ErrNoRule},
		{"no sources", ConflictConfig{N: 10, Rule: voter, X0: 5, Rounds: 1}, ErrNoSources},
		{"negative sources", ConflictConfig{N: 10, Rule: voter, Sources1: -1, Sources0: 2, X0: 5, Rounds: 1}, ErrNoSources},
		{"too many sources", ConflictConfig{N: 3, Rule: voter, Sources1: 2, Sources0: 1, X0: 2, Rounds: 1}, ErrPopulation},
		{"X0 below stubborn ones", ConflictConfig{N: 10, Rule: voter, Sources1: 2, Sources0: 1, X0: 1, Rounds: 1}, ErrInitial},
		{"X0 above range", ConflictConfig{N: 10, Rule: voter, Sources1: 1, Sources0: 2, X0: 9, Rounds: 1}, ErrInitial},
		{"no rounds", ConflictConfig{N: 10, Rule: voter, Sources1: 1, Sources0: 1, X0: 5}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := RunConflict(tt.cfg, rng.New(1))
			if tt.name == "no rounds" {
				if err == nil {
					t.Error("Rounds=0 accepted")
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestStepConflictRange(t *testing.T) {
	g := rng.New(2)
	const n, s1, s0 = 100, 3, 2
	x := int64(50)
	for i := 0; i < 5000; i++ {
		x = StepConflict(protocol.Minority(3), n, s1, s0, x, g)
		if x < s1 || x > n-s0 {
			t.Fatalf("count %d escaped [%d, %d]", x, s1, int64(n-s0))
		}
	}
}

func TestConflictVoterStationaryMean(t *testing.T) {
	// The zealot voter model: the stationary mean fraction is s1/(s1+s0).
	const (
		n      = 400
		s1, s0 = 3, 1
		rounds = 60_000
	)
	res, err := RunConflict(ConflictConfig{
		N: n, Rule: protocol.Voter(1), Sources1: s1, Sources0: s0,
		X0: n / 2, Rounds: rounds,
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	want := float64(s1) / float64(s1+s0) // 0.75
	if math.Abs(res.MeanFraction-want) > 0.06 {
		t.Errorf("time-average fraction = %v, want ~%v", res.MeanFraction, want)
	}
}

func TestConflictNeverReachesConsensus(t *testing.T) {
	// With stubborn agents on both sides no consensus exists at all.
	res, err := RunConflict(ConflictConfig{
		N: 64, Rule: protocol.Voter(1), Sources1: 1, Sources0: 1,
		X0: 32, Rounds: 5000,
	}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.ConsensusVisits != 0 {
		t.Errorf("visited a consensus %d times with opposed zealots", res.ConsensusVisits)
	}
}

func TestConflictSingleSourceMatchesBitDissemination(t *testing.T) {
	// With s0 = 0 and s1 = 1 the conflict chain is exactly the standard
	// z=1 process: it can and does reach the correct consensus.
	res, err := RunConflict(ConflictConfig{
		N: 64, Rule: protocol.Voter(1), Sources1: 1, Sources0: 0,
		X0: 1, Rounds: 20_000,
	}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.ConsensusVisits == 0 {
		t.Error("single-source run never visited the consensus")
	}
}

func TestConflictRecord(t *testing.T) {
	var calls int64
	_, err := RunConflict(ConflictConfig{
		N: 16, Rule: protocol.Voter(1), Sources1: 1, Sources0: 1,
		X0: 8, Rounds: 25,
		Record: func(round, count int64) {
			calls++
			if count < 1 || count > 15 {
				t.Errorf("count %d out of feasible range", count)
			}
		},
	}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if calls != 25 {
		t.Errorf("record fired %d times, want 25", calls)
	}
}
