package engine

import (
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// RunAggregated simulates the parallel agent-level process by aggregating
// agents into homogeneous opinion classes instead of iterating over them.
// Conditioned on X_t = x, every free (non-source, non-stubborn,
// non-omitted) agent's observed one-count k is an independent
// Binomial(ℓ, x/n) draw, so each opinion class advances by a multinomial
// split over k ∈ {0..ℓ} followed by a Binomial(cell, g^[b](k)) adoption
// draw per cell — O(classes·ℓ) per round instead of the literal engine's
// O(n·ℓ), and exact in distribution (the mixture Σ_k pmf(k)·g^[b](k) is
// precisely Eq. 4, so summing the per-cell adoptions reproduces
// Binomial(m_b, P_b(x/n)) — the χ² equivalence suite checks all three
// engines against each other, fault families included).
//
// The engine supports the full fault surface: boundary events and source
// flips act on the count (as in RunParallel), stubborn agents are carried
// as their own class, and omission thins each free class binomially before
// the split. What it cannot express is per-agent identity — anything that
// distinguishes one agent of a class from another, such as
// without-replacement sampling — which is why RunAgentsAuto falls back to
// the literal engine for those configurations.
//
// The trajectory is NOT byte-identical to RunAgents (the two consume
// randomness differently); it is equal in distribution, like StepCount.
// Result.Shards is 0: the run is single-stream, as the count engines are.
func RunAggregated(cfg Config, g *rng.RNG) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	absorbing := cfg.Rule.CheckProp3() == nil
	target := consensusTarget(cfg.N, cfg.Z)
	trap := wrongTrap(cfg.N, cfg.Z)
	roundCap := cfg.maxRounds()
	ell := cfg.Rule.SampleSize()
	faults := cfg.perturber()
	horizon := faultHorizon(faults)

	g0, g1 := cfg.Rule.Tables()
	pmf := make([]float64, ell+1)

	x := cfg.X0
	src := cfg.Z
	res := Result{FinalCount: x}
	if x == target && absorbing && horizon == 0 {
		res.Converged = true
		return res, nil
	}
	for t := int64(1); t <= roundCap; t++ {
		if cfg.Halt != nil && cfg.Halt() {
			res.Interrupted = true
			return res, nil
		}
		var s1, s0 int64
		var q float64
		if faults != nil {
			x, src = faultBoundaryCount(faults, t, cfg.N, cfg.Z, src, x, g)
			s1, s0 = faults.Stubborn(t, cfg.N)
			q = faults.OmitProb(t)
		}
		// Class sizes: free one-holders, free zero-holders, stubborn (s1,
		// s0), source. Clamped like stepCountFaulty so an invalid
		// hand-rolled Perturber degrades instead of panicking.
		m1 := x - int64(src) - s1
		m0 := (cfg.N - x) - int64(1-src) - s0
		if m1 < 0 {
			m1 = 0
		}
		if m0 < 0 {
			m0 = 0
		}
		var keep1 int64
		if q > 0 {
			u1 := g.Binomial(m1, 1-q)
			u0 := g.Binomial(m0, 1-q)
			keep1 = m1 - u1
			m1, m0 = u1, u0
		}
		protocol.SampleCountPMF(ell, float64(x)/float64(cfg.N), pmf)
		x = int64(src) + s1 + keep1 +
			splitAdopt(m1, pmf, g1, g) +
			splitAdopt(m0, pmf, g0, g)

		res.Rounds = t
		res.Activations += m1 + m0
		res.FinalCount = x
		if x == trap {
			res.HitWrongConsensus = true
		}
		if cfg.Record != nil {
			cfg.Record(t, x)
		}
		probeRound(cfg.Probe, faults, t, cfg.Z, src, x, m1+m0)
		if x == target && absorbing && t >= horizon {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

// splitAdopt advances one opinion class of m agents: it splits the class
// over observed one-counts k by sequential conditional binomials (the
// standard exact multinomial sampler) and immediately draws the
// Binomial(cell, tbl[k]) adopters of each cell, returning the total number
// of agents of the class holding 1 afterwards.
func splitAdopt(m int64, pmf, tbl []float64, g *rng.RNG) int64 {
	var ones int64
	rem := m
	remP := 1.0
	last := len(pmf) - 1
	for k := 0; k <= last && rem > 0; k++ {
		var cell int64
		if k == last || remP <= pmf[k] {
			// Final category (or all remaining mass): take the rest.
			cell = rem
			rem = 0
		} else {
			//bitlint:probok branch guarded by remP > pmf[k] >= 0, so the ratio lies in [0,1)
			cell = g.Binomial(rem, pmf[k]/remP)
			rem -= cell
			remP -= pmf[k]
		}
		ones += g.Binomial(cell, tbl[k])
	}
	return ones
}

// CanAggregate reports whether the aggregated engine can serve the given
// agent options exactly: it cannot express per-agent identity, so
// without-replacement sampling (each agent's samples must be distinct
// *agents*) forces the literal engine. Options that request a specific
// literal body (Unpacked, Chunked) also route literal — the caller asked
// for that body's realization, not merely its distribution.
func CanAggregate(opts AgentOptions) bool {
	return !opts.WithoutReplacement && !opts.Unpacked && !opts.Chunked
}

// RunAgentsAuto routes an agent-level configuration to the fastest exact
// engine: RunAggregated when the configuration is expressible as opinion
// classes, the literal RunAgents otherwise.
func RunAgentsAuto(cfg Config, opts AgentOptions, g *rng.RNG) (Result, error) {
	if CanAggregate(opts) {
		return RunAggregated(cfg, g)
	}
	return RunAgents(cfg, opts, g)
}
