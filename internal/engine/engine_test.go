package engine

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

func TestConfigValidation(t *testing.T) {
	voter := protocol.Voter(1)
	tests := []struct {
		name    string
		cfg     Config
		wantErr error
	}{
		{"ok", Config{N: 10, Rule: voter, Z: 1, X0: 5}, nil},
		{"tiny population", Config{N: 1, Rule: voter, Z: 1, X0: 1}, ErrPopulation},
		{"nil rule", Config{N: 10, Z: 1, X0: 5}, ErrNoRule},
		{"bad opinion", Config{N: 10, Rule: voter, Z: 2, X0: 5}, ErrOpinion},
		{"X0 below source", Config{N: 10, Rule: voter, Z: 1, X0: 0}, ErrInitial},
		{"X0 above range", Config{N: 10, Rule: voter, Z: 0, X0: 10}, ErrInitial},
		{"X0 full consensus ok", Config{N: 10, Rule: voter, Z: 1, X0: 10}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := RunParallel(tt.cfg, rng.New(1))
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("error = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestStepCountRangeQuick(t *testing.T) {
	g := rng.New(2)
	rules := []*protocol.Rule{
		protocol.Voter(3), protocol.Minority(4), protocol.Majority(5), protocol.TwoChoice(),
	}
	f := func(nRaw uint16, xRaw uint16, zBit, which uint8) bool {
		n := int64(nRaw)%1000 + 2
		z := int(zBit % 2)
		lo, hi := int64(z), n-1+int64(z)
		x := lo + int64(xRaw)%(hi-lo+1)
		r := rules[int(which)%len(rules)]
		next := StepCount(r, n, z, x, g)
		return next >= lo && next <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestConsensusIsAbsorbing(t *testing.T) {
	// With a rule satisfying Prop 3, both the correct consensus and the
	// step from it must be fixed.
	g := rng.New(3)
	for _, z := range []int{0, 1} {
		const n = 100
		target := consensusTarget(n, z)
		for i := 0; i < 100; i++ {
			if got := StepCount(protocol.Minority(3), n, z, target, g); got != target {
				t.Fatalf("consensus not absorbing: z=%d stepped %d -> %d", z, target, got)
			}
		}
	}
}

func TestRunParallelVoterConverges(t *testing.T) {
	for _, z := range []int{0, 1} {
		cfg := Config{
			N:    64,
			Rule: protocol.Voter(1),
			Z:    z,
			X0:   WorstCaseInit(64, z),
		}
		res, err := RunParallel(cfg, rng.New(uint64(z)+10))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("Voter did not converge for z=%d (rounds=%d, final=%d)", z, res.Rounds, res.FinalCount)
		}
		if res.FinalCount != consensusTarget(64, z) {
			t.Errorf("final count = %d", res.FinalCount)
		}
		if res.Activations != res.Rounds*63 {
			t.Errorf("activations = %d, want rounds*63 = %d", res.Activations, res.Rounds*63)
		}
	}
}

func TestRunParallelDeterministic(t *testing.T) {
	cfg := Config{N: 128, Rule: protocol.Voter(1), Z: 1, X0: 1}
	a, err := RunParallel(cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunParallel(cfg, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed produced different results: %+v vs %+v", a, b)
	}
}

func TestRunParallelAlreadyConverged(t *testing.T) {
	cfg := Config{N: 10, Rule: protocol.Voter(1), Z: 1, X0: 10}
	res, err := RunParallel(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Rounds != 0 {
		t.Errorf("expected immediate convergence, got %+v", res)
	}
}

func TestRunParallelMinorityBigSampleFast(t *testing.T) {
	// The [15] regime: ℓ = ⌈√(n ln n)⌉ should converge in O(log² n) rounds.
	const n = 1024
	ell := protocol.SqrtNLogN(1).Of(n)
	cfg := Config{
		N:    n,
		Rule: protocol.Minority(ell),
		Z:    1,
		X0:   WorstCaseInit(n, 1),
	}
	res, err := RunParallel(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("Minority with large samples did not converge")
	}
	logn := math.Log2(float64(n)) // = 10
	if float64(res.Rounds) > 10*logn*logn {
		t.Errorf("Minority took %d rounds, want O(log² n) ≈ %v", res.Rounds, logn*logn)
	}
}

func TestRunParallelMajorityTraps(t *testing.T) {
	// From the all-wrong configuration, Majority cannot recover: it sits in
	// the wrong consensus for the whole (capped) run.
	const n = 256
	cfg := Config{
		N:         n,
		Rule:      protocol.Majority(5),
		Z:         1,
		X0:        WorstCaseInit(n, 1),
		MaxRounds: 2000,
	}
	res, err := RunParallel(cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("Majority escaped the wrong consensus — should be trapped")
	}
	if !res.HitWrongConsensus {
		t.Error("trap flag not set")
	}
	if res.Rounds != 2000 {
		t.Errorf("rounds = %d, want cap 2000", res.Rounds)
	}
}

func TestRunParallelNoisyNeverConverges(t *testing.T) {
	// A Prop-3-violating rule has no absorbing consensus: Converged must
	// stay false even if the chain touches n·z.
	cfg := Config{
		N:         64,
		Rule:      protocol.WithNoise(protocol.Voter(1), 0.05),
		Z:         1,
		X0:        32,
		MaxRounds: 500,
	}
	res, err := RunParallel(cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("noisy rule reported convergence")
	}
}

func TestRecordCallback(t *testing.T) {
	var rounds []int64
	cfg := Config{
		N:         32,
		Rule:      protocol.Voter(1),
		Z:         1,
		X0:        16,
		MaxRounds: 50,
		Record: func(round, count int64) {
			rounds = append(rounds, round)
			if count < 1 || count > 32 {
				t.Errorf("recorded count %d out of range", count)
			}
		},
	}
	res, err := RunParallel(cfg, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rounds)) != res.Rounds {
		t.Errorf("recorded %d rounds, result says %d", len(rounds), res.Rounds)
	}
	for i, r := range rounds {
		if r != int64(i+1) {
			t.Fatalf("record round %d = %d", i, r)
		}
	}
}

// TestCountVsAgentOneStep validates the count engine against the literal
// agent engine: starting from the same configuration, the one-round
// distributions must agree (checked through mean and variance, with the
// exact mean known analytically).
func TestCountVsAgentOneStep(t *testing.T) {
	const (
		n    = 200
		x0   = 60
		z    = 1
		reps = 4000
	)
	rules := []*protocol.Rule{protocol.Voter(3), protocol.Minority(3), protocol.TwoChoice()}
	for _, r := range rules {
		r := r
		t.Run(r.Name(), func(t *testing.T) {
			p := float64(x0) / n
			p1, p0 := r.AdoptProb(1, p), r.AdoptProb(0, p)
			m1, m0 := float64(x0-z), float64(n-x0-(1-z))
			wantMean := float64(z) + m1*p1 + m0*p0
			wantVar := m1*p1*(1-p1) + m0*p0*(1-p0)

			measure := func(run func(Config, *rng.RNG) (Result, error), seed uint64) (mean, variance float64) {
				g := rng.New(seed)
				sum, sumSq := 0.0, 0.0
				for i := 0; i < reps; i++ {
					res, err := run(Config{N: n, Rule: r, Z: z, X0: x0, MaxRounds: 1}, g.Split())
					if err != nil {
						t.Fatal(err)
					}
					v := float64(res.FinalCount)
					sum += v
					sumSq += v * v
				}
				mean = sum / reps
				variance = sumSq/reps - mean*mean
				return mean, variance
			}

			agentRun := func(cfg Config, g *rng.RNG) (Result, error) {
				return RunAgents(cfg, AgentOptions{}, g)
			}
			cm, cv := measure(RunParallel, 1000)
			am, av := measure(agentRun, 2000)

			se := math.Sqrt(wantVar / reps)
			for _, m := range []struct {
				name string
				mean float64
			}{{"count", cm}, {"agent", am}} {
				if math.Abs(m.mean-wantMean) > 5*se {
					t.Errorf("%s engine mean = %v, want %v ± %v", m.name, m.mean, wantMean, 5*se)
				}
			}
			for _, v := range []struct {
				name     string
				variance float64
			}{{"count", cv}, {"agent", av}} {
				if wantVar > 0 && math.Abs(v.variance-wantVar)/wantVar > 0.25 {
					t.Errorf("%s engine variance = %v, want %v (±25%%)", v.name, v.variance, wantVar)
				}
			}
		})
	}
}

func TestRunAgentsConverges(t *testing.T) {
	cfg := Config{N: 64, Rule: protocol.Voter(2), Z: 0, X0: 63}
	res, err := RunAgents(cfg, AgentOptions{}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.FinalCount != 0 {
		t.Errorf("agent engine: %+v", res)
	}
}

func TestRunAgentsWithoutReplacement(t *testing.T) {
	cfg := Config{N: 64, Rule: protocol.Minority(3), Z: 1, X0: 32, MaxRounds: 5000}
	res, err := RunAgents(cfg, AgentOptions{WithoutReplacement: true}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalCount < 1 || res.FinalCount > 64 {
		t.Errorf("final count out of range: %d", res.FinalCount)
	}
}

func TestRunSequentialVoterConverges(t *testing.T) {
	cfg := Config{N: 32, Rule: protocol.Voter(1), Z: 1, X0: 1}
	res, err := RunSequential(cfg, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("sequential Voter did not converge: %+v", res)
	}
	if res.Rounds < 1 {
		t.Errorf("rounds = %d", res.Rounds)
	}
	if res.Activations < res.Rounds-1 {
		t.Errorf("activations %d inconsistent with %d rounds", res.Activations, res.Rounds)
	}
}

func TestSequentialStepMovesByAtMostOne(t *testing.T) {
	g := rng.New(14)
	const n, z = 100, 1
	x := int64(50)
	for i := 0; i < 10000; i++ {
		next := SequentialStep(protocol.Minority(5), n, z, x, g)
		if d := next - x; d < -1 || d > 1 {
			t.Fatalf("sequential step moved by %d", d)
		}
		x = next
		if x < 1 || x > n {
			t.Fatalf("count out of range: %d", x)
		}
	}
}

func TestWorstCaseInit(t *testing.T) {
	if got := WorstCaseInit(100, 1); got != 1 {
		t.Errorf("WorstCaseInit(z=1) = %d", got)
	}
	if got := WorstCaseInit(100, 0); got != 99 {
		t.Errorf("WorstCaseInit(z=0) = %d", got)
	}
}

func TestBalancedInit(t *testing.T) {
	if got := BalancedInit(100, 0); got != 50 {
		t.Errorf("BalancedInit = %d", got)
	}
	if got := BalancedInit(2, 1); got != 1 {
		t.Errorf("BalancedInit(2, z=1) = %d", got)
	}
}

func TestAdversarialConfig(t *testing.T) {
	cfg, c := AdversarialConfig(protocol.Minority(3), 1000, 500)
	if cfg.Z != 1 {
		t.Errorf("Minority adversarial z = %d, want 1 (Case 1)", cfg.Z)
	}
	if cfg.X0 <= int64(c.A2*1000) || cfg.X0 >= int64(c.A3*1000)+1 {
		t.Errorf("X0 = %d outside (a2·n, a3·n)", cfg.X0)
	}
	if err := cfg.validate(); err != nil {
		t.Errorf("adversarial config invalid: %v", err)
	}

	cfg, _ = AdversarialConfig(protocol.Majority(3), 1000, 500)
	if cfg.Z != 0 {
		t.Errorf("Majority adversarial z = %d, want 0 (Case 2)", cfg.Z)
	}
}

func TestDefaultMaxRounds(t *testing.T) {
	if got := DefaultMaxRounds(1); got != 1024 {
		t.Errorf("DefaultMaxRounds(1) = %d", got)
	}
	if got := DefaultMaxRounds(100); got <= 1024 {
		t.Errorf("DefaultMaxRounds(100) = %d", got)
	}
}

func TestRunParallelLargePopulation(t *testing.T) {
	// The count engine must handle n = 10^7 in reasonable time.
	if testing.Short() {
		t.Skip("large population test")
	}
	const n = 10_000_000
	cfg := Config{
		N:         n,
		Rule:      protocol.BiasedVoter(3, 0.2),
		Z:         1,
		X0:        n / 2,
		MaxRounds: 5000,
	}
	res, err := RunParallel(cfg, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("BiasedVoter(+0.2) with z=1 should converge upward quickly: %+v", res)
	}
}

// TestWithoutReplacementCrossCheck validates the agent engine's
// without-replacement option against the hypergeometric adopt
// probability: the one-round mean must match the analytic value, which
// differs measurably from the with-replacement one at small n.
func TestWithoutReplacementCrossCheck(t *testing.T) {
	const (
		n    = 60
		x0   = 20
		z    = 1
		reps = 4000
	)
	r := protocol.Minority(5)
	p1 := r.AdoptProbWithoutReplacement(1, n, x0)
	p0 := r.AdoptProbWithoutReplacement(0, n, x0)
	wantMean := float64(z) + float64(x0-z)*p1 + float64(n-x0-(1-z))*p0

	// Sanity: the two sampling models must differ at this scale, so the
	// test can actually distinguish them.
	with := float64(z) + float64(x0-z)*r.AdoptProb(1, float64(x0)/n) +
		float64(n-x0-(1-z))*r.AdoptProb(0, float64(x0)/n)
	if math.Abs(with-wantMean) < 0.3 {
		t.Fatalf("models too close to distinguish (%v vs %v); pick different parameters", with, wantMean)
	}

	g := rng.New(404)
	sum := 0.0
	for i := 0; i < reps; i++ {
		res, err := RunAgents(Config{N: n, Rule: r, Z: z, X0: x0, MaxRounds: 1},
			AgentOptions{WithoutReplacement: true}, g.Split())
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(res.FinalCount)
	}
	mean := sum / reps
	se := math.Sqrt(float64(n) / 4 / reps)
	if math.Abs(mean-wantMean) > 6*se {
		t.Errorf("without-replacement mean = %v, hypergeometric predicts %v (±%v)", mean, wantMean, 6*se)
	}
	if math.Abs(mean-with) < math.Abs(mean-wantMean) {
		t.Errorf("measured mean %v is closer to the with-replacement value %v than to the hypergeometric %v",
			mean, with, wantMean)
	}
}

// TestResultShardsReported: every engine reports the effective stream
// count in Result.Shards — 0 for the single-stream count-level,
// sequential and aggregated engines; the resolved shard count for the
// agent engines (n-1-clamped for the unpacked bodies, word-clamped for
// the packed and chunked ones). The requested and effective values differ
// exactly when the request exceeds the engine's ceiling.
func TestResultShardsReported(t *testing.T) {
	cfg := Config{N: 200, Rule: protocol.Voter(1), Z: 1, X0: 100, MaxRounds: 2}
	words := packedWords(200)
	cases := []struct {
		name string
		run  func() (Result, error)
		want int
	}{
		{"count", func() (Result, error) { return RunParallel(cfg, rng.New(1)) }, 0},
		{"sequential", func() (Result, error) { return RunSequential(cfg, rng.New(1)) }, 0},
		{"aggregated", func() (Result, error) { return RunAggregated(cfg, rng.New(1)) }, 0},
		{"unpacked-serial", func() (Result, error) {
			return RunAgents(cfg, AgentOptions{Unpacked: true}, rng.New(1))
		}, 1},
		{"unpacked-sharded", func() (Result, error) {
			return RunAgents(cfg, AgentOptions{Unpacked: true, Shards: 4}, rng.New(1))
		}, 4},
		{"unpacked-overclamped", func() (Result, error) {
			return RunAgents(cfg, AgentOptions{Unpacked: true, Shards: 1000}, rng.New(1))
		}, 199},
		{"packed-serial", func() (Result, error) {
			return RunAgents(cfg, AgentOptions{}, rng.New(1))
		}, 1},
		{"packed-sharded", func() (Result, error) {
			return RunAgents(cfg, AgentOptions{Shards: 3}, rng.New(1))
		}, 3},
		{"packed-overclamped", func() (Result, error) {
			return RunAgents(cfg, AgentOptions{Shards: 1000}, rng.New(1))
		}, words},
		{"chunked-sharded", func() (Result, error) {
			return RunAgents(cfg, AgentOptions{Chunked: true, Shards: 3}, rng.New(1))
		}, 3},
		{"chunked-overclamped", func() (Result, error) {
			return RunAgents(cfg, AgentOptions{Chunked: true, Shards: 1000}, rng.New(1))
		}, words},
	}
	for _, tc := range cases {
		res, err := tc.run()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Shards != tc.want {
			t.Errorf("%s: Result.Shards = %d, want %d", tc.name, res.Shards, tc.want)
		}
	}

	batch, err := RunAgentsReplicas(cfg, AgentOptions{Shards: 1000}, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range batch {
		if res.Shards != words {
			t.Errorf("replica %d: Result.Shards = %d, want %d", i, res.Shards, words)
		}
	}
}
