package engine

import (
	"fmt"

	"bitspread/internal/rng"
)

// RunAgentsReplicas runs one packed agent-level replica per seed, advancing
// all of them in lockstep so the deterministic-regime adoption thresholds —
// the inverse-CDF table kThr, a pure function of the round's one-count —
// are computed once per distinct count ever visited by the batch instead of
// once per replica-round. Replica i's Result is bit-identical to
// RunAgents(cfg, opts, rng.New(seeds[i])): the memoization is a pure
// evaluation-sharing transform, exactly like RunParallelReplicas at the
// count level. Converged replicas drop out of the batch; the round loop
// ends when none remain active or the cap expires.
//
// Configurations the packed engine does not serve (Unpacked,
// without-replacement sampling, Chunked or n ≥ 2³²) fall back to
// independent RunAgents calls, one per seed — same results, no threshold
// sharing. cfg.Record must be nil — a shared hook cannot tell replicas
// apart. cfg.Probe is supported: probes are concurrency-safe aggregators
// by contract.
func RunAgentsReplicas(cfg Config, opts AgentOptions, seeds []uint64) ([]Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Record != nil {
		return nil, fmt.Errorf("engine: RunAgentsReplicas does not support Config.Record")
	}
	ell := cfg.Rule.SampleSize()
	withoutReplacement := opts.WithoutReplacement && ell <= int(cfg.N)
	if opts.Unpacked || withoutReplacement || opts.Chunked || cfg.N >= packedMaxN {
		results := make([]Result, len(seeds))
		for i, seed := range seeds {
			res, err := RunAgents(cfg, opts, rng.New(seed))
			if err != nil {
				return nil, err
			}
			results[i] = res
		}
		return results, nil
	}

	p := newPackedParams(cfg, opts.Shards)
	results := make([]Result, len(seeds))
	states := make([]*packedState, len(seeds))
	active := make([]int, 0, len(seeds))
	for i, seed := range seeds {
		st := p.newState(rng.New(seed))
		if st.res.Converged {
			results[i] = st.res
			continue
		}
		states[i] = st
		active = append(active, i)
	}

	// kThr memo, keyed by the one-count the round's agents sample from.
	// Lookup-only access (no map iteration) keeps the batch deterministic;
	// the table is copied out of the state scratch on first computation so
	// later rounds of other replicas can't alias it.
	memo := make(map[int64][]uint64)
	thresholds := func(st *packedState, x int64) []uint64 {
		if kThr, ok := memo[x]; ok {
			return kThr
		}
		kThr := append([]uint64(nil), p.stateKThr(st, x)...)
		memo[x] = kThr
		return kThr
	}

	for t := int64(1); t <= p.roundCap && len(active) > 0; t++ {
		if cfg.Halt != nil && cfg.Halt() {
			for _, i := range active {
				states[i].res.Interrupted = true
				results[i] = states[i].res
			}
			return results, nil
		}
		live := active[:0]
		for _, i := range active {
			if p.round(states[i], t, thresholds) {
				results[i] = states[i].res
				states[i] = nil
				continue // retire this replica
			}
			live = append(live, i)
		}
		active = live
	}
	for _, i := range active {
		results[i] = states[i].res
	}
	return results, nil
}
