package engine_test

// Zero-fault equivalence guard and fault-path behavior for all four
// engines. These tests live in an external test package because
// internal/fault implements the engine's Perturber interface (fault →
// engine), so an in-package test importing fault would be an import cycle.

import (
	"testing"

	"bitspread/internal/engine"
	"bitspread/internal/fault"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

func voterCfg(n int64) engine.Config {
	return engine.Config{N: n, Rule: protocol.Voter(1), Z: 1, X0: n / 2}
}

// TestZeroFaultEquivalence: a nil Faults field, a nil *fault.Schedule and
// an empty schedule must leave every engine byte-identical — same stream
// consumption, same Result — to the unhooked code path. This is the
// contract that keeps every published table valid after the fault hooks.
func TestZeroFaultEquivalence(t *testing.T) {
	cfg := voterCfg(64)
	cfg.MaxRounds = 400
	faultless := []struct {
		name string
		set  func(*engine.Config)
	}{
		{"nil interface", func(c *engine.Config) { c.Faults = nil }},
		{"typed nil schedule", func(c *engine.Config) { c.Faults = (*fault.Schedule)(nil) }},
		{"empty schedule", func(c *engine.Config) { c.Faults = fault.Must() }},
	}
	type runFn struct {
		name string
		run  func(engine.Config, uint64) (engine.Result, error)
	}
	engines := []runFn{
		{"parallel", func(c engine.Config, seed uint64) (engine.Result, error) {
			return engine.RunParallel(c, rng.New(seed))
		}},
		{"sequential", func(c engine.Config, seed uint64) (engine.Result, error) {
			return engine.RunSequential(c, rng.New(seed))
		}},
		{"agent", func(c engine.Config, seed uint64) (engine.Result, error) {
			return engine.RunAgents(c, engine.AgentOptions{}, rng.New(seed))
		}},
		{"sharded", func(c engine.Config, seed uint64) (engine.Result, error) {
			return engine.RunAgents(c, engine.AgentOptions{Shards: 4}, rng.New(seed))
		}},
		{"batched", func(c engine.Config, seed uint64) (engine.Result, error) {
			rs, err := engine.RunParallelReplicas(c, []uint64{seed, seed + 1})
			if err != nil {
				return engine.Result{}, err
			}
			return rs[0], nil
		}},
	}
	for _, e := range engines {
		base := cfg
		base.Faults = nil
		want, err := e.run(base, 7)
		if err != nil {
			t.Fatalf("%s baseline: %v", e.name, err)
		}
		for _, fl := range faultless {
			c := cfg
			fl.set(&c)
			got, err := e.run(c, 7)
			if err != nil {
				t.Fatalf("%s/%s: %v", e.name, fl.name, err)
			}
			if got != want {
				t.Errorf("%s/%s: %+v != baseline %+v", e.name, fl.name, got, want)
			}
		}
	}
}

// TestBatchedFaultsMatchUnbatched: the batched count engine's fault path
// must reproduce RunParallel replica-for-replica — batching stays a pure
// evaluation-sharing transform under injected faults.
func TestBatchedFaultsMatchUnbatched(t *testing.T) {
	schedules := []*fault.Schedule{
		fault.Must(fault.ResetAt(4, 1, 0)),
		fault.Must(fault.ChurnAt(3, 0.5, 0.25)),
		fault.Must(fault.StubbornFor(2, 6, 0.3, 0)),
		fault.Must(fault.OmissionFor(2, 5, 0.5)),
		fault.Must(fault.SourceCrashFor(1, 6)),
		fault.Must(fault.SourceCrashFor(2, 4), fault.ResetAt(3, 0.8, 0), fault.OmissionFor(5, 3, 0.3)),
	}
	seeds := []uint64{11, 12, 13, 14, 15}
	for _, s := range schedules {
		cfg := voterCfg(48)
		cfg.X0 = 48 // start at consensus; the schedule is the disturbance
		cfg.Faults = s
		batch, err := engine.RunParallelReplicas(cfg, seeds)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		for i, seed := range seeds {
			want, err := engine.RunParallel(cfg, rng.New(seed))
			if err != nil {
				t.Fatalf("%v: %v", s, err)
			}
			if batch[i] != want {
				t.Errorf("%v replica %d: batched %+v vs unbatched %+v", s, i, batch[i], want)
			}
		}
	}
}

// TestFaultRecoveryAcrossEngines: inject a total adversarial reset into a
// converged Voter instance and require every engine to re-converge — the
// measurable face of self-stabilization.
func TestFaultRecoveryAcrossEngines(t *testing.T) {
	const n = 48
	s := fault.Must(fault.ResetAt(5, 1, 0))
	cfg := voterCfg(n)
	cfg.X0 = n
	cfg.Faults = s
	runs := map[string]func() (engine.Result, error){
		"parallel": func() (engine.Result, error) { return engine.RunParallel(cfg, rng.New(3)) },
		"sequential": func() (engine.Result, error) {
			return engine.RunSequential(cfg, rng.New(3))
		},
		"agent": func() (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{}, rng.New(3))
		},
		"sharded": func() (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{Shards: 3}, rng.New(3))
		},
	}
	for name, run := range runs {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Converged {
			t.Errorf("%s: did not recover from a full reset (%+v)", name, res)
			continue
		}
		if res.Rounds < s.Horizon() {
			t.Errorf("%s: converged at round %d before the horizon %d", name, res.Rounds, s.Horizon())
		}
		rec, ok := s.Recovery(res)
		if !ok || rec < 1 {
			t.Errorf("%s: recovery = %d,%v; a full reset must cost at least a round", name, rec, ok)
		}
	}
}

// TestConsensusNotCreditedBeforeHorizon: starting at consensus with a
// disturbance scheduled later, no engine may declare convergence at round
// 0 — the run must live through the schedule.
func TestConsensusNotCreditedBeforeHorizon(t *testing.T) {
	const n = 32
	cfg := voterCfg(n)
	cfg.X0 = n
	cfg.Faults = fault.Must(fault.ResetAt(6, 0.5, 0))
	res, err := engine.RunParallel(cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds < 6 {
		t.Errorf("run ended at round %d, before the scheduled reset", res.Rounds)
	}
	if !res.Converged {
		t.Errorf("voter failed to recover: %+v", res)
	}
}

// TestOmissionFreezesDynamics: omission probability 1 keeps every opinion
// fixed, so the count is exactly X0 for the whole burst.
func TestOmissionFreezesDynamics(t *testing.T) {
	cfg := voterCfg(40)
	cfg.MaxRounds = 3
	cfg.Faults = fault.Must(fault.OmissionFor(1, 3, 1))
	res, err := engine.RunParallel(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalCount != cfg.X0 {
		t.Errorf("count moved to %d under total omission", res.FinalCount)
	}
	agents, err := engine.RunAgents(cfg, engine.AgentOptions{}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if agents.FinalCount != cfg.X0 {
		t.Errorf("agent count moved to %d under total omission", agents.FinalCount)
	}
}

// TestSourceCrashBlocksConsensus: while the source is down it holds the
// wrong opinion, so the correct consensus is unreachable during the
// window; the stubborn-wrong variant pins non-source agents instead.
func TestSourceCrashBlocksConsensus(t *testing.T) {
	const n = 32
	cfg := voterCfg(n)
	cfg.X0 = n
	counts := map[int64]int64{}
	cfg.Record = func(round, count int64) { counts[round] = count }
	cfg.Faults = fault.Must(fault.SourceCrashFor(1, 5))
	res, err := engine.RunParallel(cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for tr := int64(1); tr <= 5; tr++ {
		if counts[tr] == n {
			t.Errorf("full consensus at round %d while the source is down", tr)
		}
	}
	if !res.Converged {
		t.Errorf("voter failed to recover after source restart: %+v", res)
	}
}

// TestStubbornWindowThenRecovery: a pinned wrong minority prevents the
// correct consensus while active; once released, Voter recovers.
func TestStubbornWindowThenRecovery(t *testing.T) {
	const n = 40
	cfg := voterCfg(n)
	cfg.X0 = n
	cfg.Faults = fault.Must(fault.StubbornFor(2, 8, 0.25, 0))
	counts := map[int64]int64{}
	cfg.Record = func(round, count int64) { counts[round] = count }
	res, err := engine.RunParallel(cfg, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for tr := int64(2); tr <= 9; tr++ {
		if counts[tr] == n {
			t.Errorf("consensus at round %d despite a pinned wrong minority", tr)
		}
	}
	if !res.Converged {
		t.Errorf("voter failed to recover after stubborn release: %+v", res)
	}
}

// TestShardedFaultDeterminism: the sharded agent engine under faults stays
// a pure function of (seed, shards).
func TestShardedFaultDeterminism(t *testing.T) {
	cfg := voterCfg(64)
	cfg.X0 = 64
	cfg.Faults = fault.Must(fault.ChurnAt(3, 0.5, 0.5), fault.OmissionFor(4, 3, 0.25))
	a, err := engine.RunAgents(cfg, engine.AgentOptions{Shards: 4}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.RunAgents(cfg, engine.AgentOptions{Shards: 4}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same (seed, shards) diverged: %+v vs %+v", a, b)
	}
}

// TestHaltInterruptsEngines: a Halt that fires immediately stops every
// engine at the first boundary with the partial result flagged.
func TestHaltInterruptsEngines(t *testing.T) {
	cfg := voterCfg(32)
	cfg.Halt = func() bool { return true }
	checks := map[string]func() (engine.Result, error){
		"parallel":   func() (engine.Result, error) { return engine.RunParallel(cfg, rng.New(1)) },
		"sequential": func() (engine.Result, error) { return engine.RunSequential(cfg, rng.New(1)) },
		"agent": func() (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{}, rng.New(1))
		},
		"sharded": func() (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{Shards: 2}, rng.New(1))
		},
	}
	for name, run := range checks {
		res, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Interrupted {
			t.Errorf("%s: halt ignored (%+v)", name, res)
		}
		if res.Converged || res.Rounds != 0 {
			t.Errorf("%s: interrupted run claims progress (%+v)", name, res)
		}
	}
	rs, err := engine.RunParallelReplicas(cfg, []uint64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if !r.Interrupted {
			t.Errorf("batched replica %d: halt ignored (%+v)", i, r)
		}
	}
}

// TestHaltMidRunKeepsPartialTrajectory: halting after k rounds reports the
// trajectory up to k, unconverged and flagged.
func TestHaltMidRunKeepsPartialTrajectory(t *testing.T) {
	cfg := voterCfg(64)
	cfg.MaxRounds = 1 << 40 // halt, not the cap, must end the run
	rounds := 0
	cfg.Halt = func() bool { rounds++; return rounds > 5 }
	res, err := engine.RunParallel(cfg, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged && res.Interrupted {
		t.Fatalf("result both converged and interrupted: %+v", res)
	}
	if !res.Converged && (!res.Interrupted || res.Rounds != 5) {
		t.Errorf("halt after 5 rounds gave %+v", res)
	}
}
