package engine

import (
	"math"
	"testing"

	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// TestShardsOneMatchesSerial: Shards=1 (and Shards=0) must select the
// serial engine and reproduce its realization byte-for-byte, trajectory
// included.
func TestShardsOneMatchesSerial(t *testing.T) {
	for _, withoutReplacement := range []bool{false, true} {
		base := Config{N: 96, Rule: protocol.Minority(3), Z: 1, X0: 48, MaxRounds: 200}

		runWithTrace := func(opts AgentOptions, seed uint64) (Result, []int64) {
			var traj []int64
			cfg := base
			cfg.Record = func(_, count int64) { traj = append(traj, count) }
			res, err := RunAgents(cfg, opts, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			return res, traj
		}

		serialRes, serialTraj := runWithTrace(AgentOptions{WithoutReplacement: withoutReplacement}, 31)
		for _, shards := range []int{0, 1} {
			res, traj := runWithTrace(AgentOptions{WithoutReplacement: withoutReplacement, Shards: shards}, 31)
			if res != serialRes {
				t.Errorf("woReplacement=%v Shards=%d: %+v differs from serial %+v",
					withoutReplacement, shards, res, serialRes)
			}
			if len(traj) != len(serialTraj) {
				t.Fatalf("trajectory lengths differ: %d vs %d", len(traj), len(serialTraj))
			}
			for i := range traj {
				if traj[i] != serialTraj[i] {
					t.Fatalf("woReplacement=%v Shards=%d: trajectories diverge at round %d",
						withoutReplacement, shards, i+1)
				}
			}
		}
	}
}

// TestShardedDeterministic: the same (seed, shards) pair must yield the
// same Result and trajectory on every run, independent of scheduling.
func TestShardedDeterministic(t *testing.T) {
	for _, shards := range []int{2, 3, 8} {
		base := Config{N: 200, Rule: protocol.Voter(3), Z: 1, X0: 100, MaxRounds: 150}
		run := func() (Result, []int64) {
			var traj []int64
			cfg := base
			cfg.Record = func(_, count int64) { traj = append(traj, count) }
			res, err := RunAgents(cfg, AgentOptions{Shards: shards}, rng.New(77))
			if err != nil {
				t.Fatal(err)
			}
			return res, traj
		}
		resA, trajA := run()
		resB, trajB := run()
		if resA != resB {
			t.Errorf("shards=%d: results differ: %+v vs %+v", shards, resA, resB)
		}
		// The packed engine serves this configuration and clamps the shard
		// count to one shard per bitset word.
		if want := packedEffectiveShards(shards, packedWords(200)); resA.Shards != want {
			t.Errorf("shards=%d: Result.Shards = %d, want %d", shards, resA.Shards, want)
		}
		for i := range trajA {
			if trajA[i] != trajB[i] {
				t.Fatalf("shards=%d: trajectories diverge at round %d", shards, i+1)
			}
		}
	}
}

// TestShardedClampAndConvergence: shard counts above the engine's ceiling
// are clamped — n-1 for the unpacked engine, one per bitset word for the
// packed one — and the sharded engine still detects absorption and the
// wrong-consensus trap.
func TestShardedClampAndConvergence(t *testing.T) {
	cfg := Config{N: 16, Rule: protocol.Voter(2), Z: 0, X0: 15}
	ures, err := RunAgents(cfg, AgentOptions{Shards: 1000, Unpacked: true}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if ures.Shards != 15 {
		t.Errorf("unpacked Shards = %d, want clamp to n-1 = 15", ures.Shards)
	}
	res, err := RunAgents(cfg, AgentOptions{Shards: 1000}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if want := MaxPackedShards(16); res.Shards != want {
		t.Errorf("packed Shards = %d, want clamp to one per word = %d", res.Shards, want)
	}
	if !res.Converged || res.FinalCount != 0 {
		t.Errorf("sharded Voter did not converge: %+v", res)
	}

	trap := Config{N: 64, Rule: protocol.Majority(5), Z: 1, X0: 1, MaxRounds: 100}
	tres, err := RunAgents(trap, AgentOptions{Shards: 4}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if tres.Converged || !tres.HitWrongConsensus {
		t.Errorf("sharded Majority from all-wrong: %+v", tres)
	}
}

// TestShardedOneStepMean: the sharded engine's one-round mean must match
// the analytic Eq. 4 expectation — the same cross-check the serial agent
// engine passes against the count engine.
func TestShardedOneStepMean(t *testing.T) {
	const (
		n    = 200
		x0   = 60
		z    = 1
		reps = 3000
	)
	r := protocol.Minority(3)
	p := float64(x0) / n
	p1, p0 := r.AdoptProb(1, p), r.AdoptProb(0, p)
	m1, m0 := float64(x0-z), float64(n-x0-(1-z))
	wantMean := float64(z) + m1*p1 + m0*p0
	wantVar := m1*p1*(1-p1) + m0*p0*(1-p0)

	g := rng.New(2024)
	sum := 0.0
	for i := 0; i < reps; i++ {
		res, err := RunAgents(Config{N: n, Rule: r, Z: z, X0: x0, MaxRounds: 1},
			AgentOptions{Shards: 4}, g.Split())
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(res.FinalCount)
	}
	mean := sum / reps
	se := math.Sqrt(wantVar / reps)
	if math.Abs(mean-wantMean) > 5*se {
		t.Errorf("sharded one-step mean = %v, want %v ± %v", mean, wantMean, 5*se)
	}
}

// TestInitialOpinionsFloyd: the Floyd-sampled initial layout must place
// exactly X0 ones with the source holding z, cover the edge cases without
// consuming randomness, and spread the ones uniformly.
func TestInitialOpinionsFloyd(t *testing.T) {
	count := func(ops []uint8) int64 {
		var c int64
		for _, v := range ops {
			c += int64(v)
		}
		return c
	}

	g := rng.New(12)
	for _, tc := range []struct{ n, x0, z int64 }{
		{10, 4, 1}, {10, 1, 1}, {10, 10, 1}, {10, 0, 0}, {10, 9, 0}, {2, 1, 1},
	} {
		ops := initialOpinions(Config{N: tc.n, Z: int(tc.z), X0: tc.x0}, g)
		if int64(ops[0]) != tc.z {
			t.Errorf("n=%d x0=%d: source holds %d, want z=%d", tc.n, tc.x0, ops[0], tc.z)
		}
		if got := count(ops); got != tc.x0 {
			t.Errorf("n=%d: placed %d ones, want %d", tc.n, got, tc.x0)
		}
	}

	// X0 with no free ones to place must not consume the stream.
	a, b := rng.New(9), rng.New(9)
	initialOpinions(Config{N: 50, Z: 1, X0: 1}, a)
	if a.Uint64() != b.Uint64() {
		t.Error("degenerate initial layout consumed randomness")
	}

	// Uniformity: each non-source slot should hold a one with probability
	// onesToPlace/(n-1).
	const (
		n     = 10
		ones  = 3
		reps  = 30000
		pSlot = float64(ones) / (n - 1)
	)
	freq := make([]int, n)
	for i := 0; i < reps; i++ {
		ops := initialOpinions(Config{N: n, Z: 0, X0: ones}, g)
		for j, v := range ops {
			freq[j] += int(v)
		}
	}
	se := math.Sqrt(pSlot * (1 - pSlot) / reps)
	for j := 1; j < n; j++ {
		got := float64(freq[j]) / reps
		if math.Abs(got-pSlot) > 5*se {
			t.Errorf("slot %d holds a one with frequency %v, want %v ± %v", j, got, pSlot, 5*se)
		}
	}
}

// TestDistinctSamplerRegimes: all three strategies must return ℓ distinct
// in-range indices with uniform marginals.
func TestDistinctSamplerRegimes(t *testing.T) {
	g := rng.New(33)
	for _, tc := range []struct {
		name   string
		n, ell int
	}{
		{"linear-scan", 100, 3},
		{"map-rejection", 100, 40},
		{"partial-shuffle", 100, 80},
		{"full-population", 20, 20},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := newDistinctSampler(tc.n, tc.ell)
			const reps = 4000
			freq := make([]int, tc.n)
			for i := 0; i < reps; i++ {
				out := s.sample(g)
				if len(out) != tc.ell {
					t.Fatalf("got %d samples, want %d", len(out), tc.ell)
				}
				seen := make(map[int]bool, tc.ell)
				for _, v := range out {
					if v < 0 || v >= tc.n {
						t.Fatalf("sample %d out of range", v)
					}
					if seen[v] {
						t.Fatalf("duplicate sample %d", v)
					}
					seen[v] = true
					freq[v]++
				}
			}
			p := float64(tc.ell) / float64(tc.n)
			se := math.Sqrt(p * (1 - p) / reps)
			for v, f := range freq {
				got := float64(f) / reps
				if math.Abs(got-p) > 6*se {
					t.Errorf("index %d drawn with frequency %v, want %v ± %v", v, got, p, 6*se)
				}
			}
		})
	}
}
