package engine

import (
	"fmt"

	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// StepCountBatch advances R replicas of the same instance one parallel
// round each: xs[i] is replaced by the next one-count of replica i, drawn
// from gs[i]. Both Eq. 4 evaluations are routed through the shared
// AdoptCache, so the O(ℓ) pmf sum is paid once per distinct count ever
// visited by the batch instead of once per replica-round.
//
// Each replica's update is identical — in value and in stream consumption —
// to StepCount(c.Rule(), c.N(), z, xs[i], gs[i]): the cache is exact, so
// batched and unbatched trajectories coincide realization-by-realization
// for the same generators. It panics if len(xs) != len(gs).
func StepCountBatch(c *protocol.AdoptCache, z int, xs []int64, gs []*rng.RNG) {
	if len(xs) != len(gs) {
		panic(fmt.Sprintf("engine: StepCountBatch with %d counts but %d generators", len(xs), len(gs)))
	}
	n := c.N()
	for i, x := range xs {
		p0, p1 := c.Probs(x)
		m1 := x - int64(z)
		m0 := (n - x) - int64(1-z)
		xs[i] = int64(z) + gs[i].Binomial(m1, p1) + gs[i].Binomial(m0, p0)
	}
}

// RunParallelReplicas runs one count-level replica per seed, advancing all
// of them in lockstep so every P₀/P₁ evaluation is served by one shared
// per-rule AdoptCache. Replica i's Result is bit-identical to
// RunParallel(cfg, rng.New(seeds[i])): the batching is a pure evaluation-
// sharing transform, not a statistical approximation. Converged replicas
// drop out of the batch; the round loop ends when none remain active or
// the cap expires.
//
// cfg.Record must be nil — a shared hook cannot tell replicas apart.
// cfg.Probe is supported: probes are concurrency-safe aggregators by
// contract, so RoundDone fires once per active replica per round and
// FaultApplied once per perturbed round (the schedule is shared).
func RunParallelReplicas(cfg Config, seeds []uint64) ([]Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Record != nil {
		return nil, fmt.Errorf("engine: RunParallelReplicas does not support Config.Record")
	}
	absorbing := cfg.Rule.CheckProp3() == nil
	target := consensusTarget(cfg.N, cfg.Z)
	trap := wrongTrap(cfg.N, cfg.Z)
	roundCap := cfg.maxRounds()
	faults := cfg.perturber()
	horizon := faultHorizon(faults)

	results := make([]Result, len(seeds))
	xs := make([]int64, len(seeds))
	gs := make([]*rng.RNG, len(seeds))
	active := make([]int, 0, len(seeds))
	for i, seed := range seeds {
		results[i] = Result{FinalCount: cfg.X0}
		if cfg.X0 == target && absorbing && horizon == 0 {
			results[i].Converged = true
			continue
		}
		xs[i] = cfg.X0
		gs[i] = rng.New(seed)
		active = append(active, i)
	}
	if len(active) == 0 {
		return results, nil
	}

	cache := protocol.NewAdoptCache(cfg.Rule, cfg.N)
	srcPrev := cfg.Z
	for t := int64(1); t <= roundCap && len(active) > 0; t++ {
		if cfg.Halt != nil && cfg.Halt() {
			for _, i := range active {
				results[i].Interrupted = true
			}
			return results, nil
		}
		src := cfg.Z
		if faults != nil {
			// The source opinion is a pure function of the round, so the
			// boundary flip is shared; the event randomness is per-replica.
			src = faults.SourceOpinion(t, cfg.Z)
			if cfg.Probe != nil && (src != cfg.Z || faults.BoundaryAt(t)) {
				cfg.Probe.FaultApplied(t)
			}
		}
		live := active[:0]
		for _, i := range active {
			var x int64
			sampled := cfg.N - 1
			if faults != nil {
				x = xs[i]
				if src != srcPrev {
					x += int64(src - srcPrev)
				}
				if faults.BoundaryAt(t) {
					x = faults.PerturbCount(t, cfg.N, src, x, gs[i])
				}
				x, sampled = stepCountFaulty(nil, cache, faults, t, cfg.N, src, x, gs[i])
			} else {
				p0, p1 := cache.Probs(xs[i])
				m1 := xs[i] - int64(cfg.Z)
				m0 := (cfg.N - xs[i]) - int64(1-cfg.Z)
				x = int64(cfg.Z) + gs[i].Binomial(m1, p1) + gs[i].Binomial(m0, p0)
			}
			xs[i] = x

			res := &results[i]
			res.Rounds = t
			res.Activations += sampled
			res.FinalCount = x
			if x == trap {
				res.HitWrongConsensus = true
			}
			if cfg.Probe != nil {
				cfg.Probe.RoundDone(t, x, sampled)
			}
			if x == target && absorbing && t >= horizon {
				res.Converged = true
				continue // retire this replica
			}
			live = append(live, i)
		}
		active = live
		srcPrev = src
	}
	return results, nil
}
