package engine_test

// Overhead guard for the probe hook: an uninstrumented engine must not
// allocate on account of the probe plumbing, and attaching the standard
// atomic obs probe must not add per-round allocations either — sweeps
// run millions of rounds, so even one escape per round would swamp the
// allocator.

import (
	"testing"

	"bitspread/internal/engine"
	"bitspread/internal/obs"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

func TestProbePathAllocationFree(t *testing.T) {
	cfg := engine.Config{
		N:         1 << 12,
		Rule:      protocol.Voter(3),
		Z:         1,
		X0:        1 << 11,
		MaxRounds: 64,
	}
	g := rng.New(5)
	plain := testing.AllocsPerRun(20, func() {
		if _, err := engine.RunParallel(cfg, g); err != nil {
			t.Fatal(err)
		}
	})

	probed := cfg
	probed.Probe = obs.NewMetrics(obs.NewRegistry())
	g2 := rng.New(5)
	instrumented := testing.AllocsPerRun(20, func() {
		if _, err := engine.RunParallel(probed, g2); err != nil {
			t.Fatal(err)
		}
	})

	// The runs execute up to 64 rounds each; a single per-round escape in
	// the probe path would show up as tens of extra allocations.
	if instrumented > plain {
		t.Errorf("attaching a probe added allocations: plain=%.1f instrumented=%.1f per run",
			plain, instrumented)
	}
}

// The packed sharded path emits ShardRound events from the coordinator
// after the per-round barrier; the emission sites must stay nil-guarded
// and allocation-free, like every probe call site.
func TestShardRoundProbeAllocationFree(t *testing.T) {
	cfg := engine.Config{
		N:         1 << 12,
		Rule:      protocol.Voter(3),
		Z:         1,
		X0:        1 << 11,
		MaxRounds: 64,
	}
	opts := engine.AgentOptions{Shards: 4}
	g := rng.New(5)
	plain := testing.AllocsPerRun(10, func() {
		if _, err := engine.RunAgents(cfg, opts, g); err != nil {
			t.Fatal(err)
		}
	})

	probed := cfg
	probed.Probe = obs.NewMetrics(obs.NewRegistry())
	g2 := rng.New(5)
	instrumented := testing.AllocsPerRun(10, func() {
		if _, err := engine.RunAgents(probed, opts, g2); err != nil {
			t.Fatal(err)
		}
	})

	if instrumented > plain {
		t.Errorf("ShardRound probe path added allocations: plain=%.1f instrumented=%.1f per run",
			plain, instrumented)
	}
}
