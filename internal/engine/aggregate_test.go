package engine_test

import (
	"testing"

	"bitspread/internal/engine"
	"bitspread/internal/fault"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

func TestRunAggregatedVoterConverges(t *testing.T) {
	cfg := engine.Config{N: 1 << 14, Rule: protocol.Voter(1), Z: 1, X0: 1}
	res, err := engine.RunAggregated(cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("aggregated Voter did not converge: %+v", res)
	}
	if res.FinalCount != cfg.N {
		t.Errorf("final count %d, want %d", res.FinalCount, cfg.N)
	}
	if res.Shards != 0 {
		t.Errorf("Shards = %d, want 0 (single-stream count-class engine)", res.Shards)
	}
	if res.Activations != res.Rounds*(cfg.N-1) {
		t.Errorf("fault-free activations = %d, want rounds·(n-1) = %d",
			res.Activations, res.Rounds*(cfg.N-1))
	}
}

func TestRunAggregatedDeterministic(t *testing.T) {
	cfg := engine.Config{
		N: 4096, Rule: protocol.Minority(3), Z: 1, X0: 2048, MaxRounds: 50,
		Faults: fault.Must(fault.StubbornFor(3, 5, 0.2, 0), fault.OmissionFor(10, 3, 0.4)),
	}
	a, err := engine.RunAggregated(cfg, rng.New(123))
	if err != nil {
		t.Fatal(err)
	}
	b, err := engine.RunAggregated(cfg, rng.New(123))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestRunAggregatedValidates(t *testing.T) {
	if _, err := engine.RunAggregated(engine.Config{N: 1}, rng.New(1)); err == nil {
		t.Error("no error for N=1")
	}
}

func TestRunAgentsAutoDispatch(t *testing.T) {
	cfg := engine.Config{N: 512, Rule: protocol.Voter(1), Z: 1, X0: 256, MaxRounds: 5}
	// Aggregatable options route to the class engine (Shards 0)…
	res, err := engine.RunAgentsAuto(cfg, engine.AgentOptions{}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 0 {
		t.Errorf("auto run used the literal engine (Shards=%d), want aggregated", res.Shards)
	}
	// …while per-agent identity falls back to the literal engine.
	if engine.CanAggregate(engine.AgentOptions{WithoutReplacement: true}) {
		t.Error("CanAggregate true for without-replacement sampling")
	}
	res, err = engine.RunAgentsAuto(cfg, engine.AgentOptions{WithoutReplacement: true}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 1 {
		t.Errorf("fallback run reports Shards=%d, want 1 (serial literal engine)", res.Shards)
	}
}

// Total omission freezes the aggregated dynamics exactly as it freezes the
// literal engine: the count cannot move and nobody samples.
func TestRunAggregatedTotalOmission(t *testing.T) {
	cfg := engine.Config{
		N: 1000, Rule: protocol.Minority(3), Z: 1, X0: 500,
		MaxRounds: 4, Faults: fault.Must(fault.OmissionFor(1, 4, 1)),
	}
	res, err := engine.RunAggregated(cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalCount != 500 {
		t.Errorf("count moved under total omission: %d", res.FinalCount)
	}
	if res.Activations != 0 {
		t.Errorf("%d activations under total omission, want 0", res.Activations)
	}
}
