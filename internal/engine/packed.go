package engine

import (
	"math"
	"math/bits"
	"sync"

	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// This file is the bit-packed fast path of the literal agent engine:
// opinions live in a []uint64 bitset (one bit per agent, 8× less memory
// traffic than the historical []uint8 layout, so the whole population
// stays cache-resident far longer), and randomness is consumed as a
// stream of 32-bit halves cut from block-generated xoshiro words
// (rng.FillUint64 keeps the generator state in registers for thousands
// of outputs). Two round bodies share that stream:
//
//   - stepDet, for deterministic 0/1 rule tables in fault-free rounds,
//     applies the aggregation insight per agent: conditioned on the
//     current one-count x, every agent's observed one-count k is iid
//     Binomial(ℓ, x/n), so one uniform word and an inverse-CDF
//     threshold scan replace the ℓ random bitset lookups entirely, and
//     a bitmask select replaces the (mispredicting) adoption branch.
//
//   - step, the general body (noisy tables, omission coins, pinned
//     stubborn prefixes), samples indices literally: one half per index
//     via Lemire's multiply-shift with rejection — exact for any bound
//     below 2³², which is why the packed path is gated on n < 2³² —
//     while coins splice two halves into a full word and compare it
//     against a precomputed rng.BernoulliThreshold (0/1 sentinel
//     entries consume nothing, like rng.Bernoulli's shortcuts).
//
// Both bodies draw each round's transition from the same law as the
// historical byte-per-opinion engine, at the 53-bit granularity at
// which rng.Bernoulli/rng.Binomial resolve probabilities everywhere in
// the repo; the initial configuration is laid out by the same Floyd
// subset-sampling walk. Realizations for a given seed differ from the
// unpacked body's — spending less randomness per agent is the point —
// so runs are reproducible per engine (same seed, Config, Shards ⇒
// same Result) but not across the packed/unpacked pair; the χ²
// equivalence suite (equivalence_chi_test.go) pins the distributional
// agreement, under every fault family. AgentOptions.Unpacked forces
// the historical body; without-replacement sampling and n ≥ 2³² fall
// back to it on their own.
const packedBufferWords = 1024

// packedBufferHalves is the stream length in 32-bit units.
const packedBufferHalves = 2 * packedBufferWords

// packedMaxN is the exclusive population bound of the packed fast path:
// Lemire-32 rejection is exact only for bounds that fit in 32 bits.
const packedMaxN = int64(math.MaxUint32)

// packedWords returns the number of 64-bit words holding n opinion bits.
func packedWords(n int) int { return (n + 63) / 64 }

// packedCount returns the number of one-bits in the opinion bitset.
func packedCount(bs []uint64) int64 {
	var c int
	for _, w := range bs {
		c += bits.OnesCount64(w)
	}
	return int64(c)
}

// packedGet returns opinion bit i.
func packedGet(bs []uint64, i int) uint64 {
	return (bs[i>>6] >> (uint(i) & 63)) & 1
}

// packedSet stores opinion bit i.
func packedSet(bs []uint64, i int, bit uint64) {
	mask := uint64(1) << (uint(i) & 63)
	if bit != 0 {
		bs[i>>6] |= mask
	} else {
		bs[i>>6] &^= mask
	}
}

// halfStream carries a generator's output as a block of raw words plus a
// cursor in 32-bit halves (buf[pos>>1] >> 32·(pos&1)), refilled through
// rng.FillUint64. The consumers — initialization, the round loops —
// inline the cursor accesses directly; the struct only threads the
// stream state between them.
type halfStream struct {
	g   *rng.RNG
	buf [packedBufferWords]uint64
	pos int // next 32-bit half
}

func newHalfStream(g *rng.RNG) *halfStream {
	return &halfStream{g: g, pos: packedBufferHalves}
}

// packedInitialOpinions is initialOpinions on the packed layout: the
// same Floyd subset-sampling walk, with the variates drawn from the
// half stream. The draw loop is inlined (one lazy Lemire-32 per
// accepted variate, like the round loop) because at X0 = n/2 the
// initialization is a visible fraction of a short run.
func packedInitialOpinions(cfg Config, s *halfStream) []uint64 {
	n := int(cfg.N)
	bs := make([]uint64, packedWords(n))
	packedSet(bs, 0, uint64(cfg.Z))
	onesToPlace := int(cfg.X0) - cfg.Z
	m := n - 1 // candidate non-source slots, bits 1..n-1
	buf := &s.buf
	pos := s.pos
	g := s.g
	for j := m - onesToPlace; j < m; j++ {
		bound := uint64(j + 1)
		if pos == packedBufferHalves {
			g.FillUint64(buf[:])
			pos = 0
		}
		h := uint32(buf[pos>>1] >> uint((pos&1)<<5))
		pos++
		mm := uint64(h) * bound
		if uint32(mm) < uint32(bound) {
			rej := uint32(-uint32(bound)) % uint32(bound)
			for uint32(mm) < rej {
				if pos == packedBufferHalves {
					g.FillUint64(buf[:])
					pos = 0
				}
				h = uint32(buf[pos>>1] >> uint((pos&1)<<5))
				pos++
				mm = uint64(h) * bound
			}
		}
		t := int(mm >> 32)
		// Select j when slot t is already a member, t otherwise, without
		// a branch: the membership bit is unpredictable (≈X0/n of the
		// walk hits a member), so a data-dependent branch mispredicts
		// its way through the whole initialization.
		b := (bs[(1+t)>>6] >> (uint(1+t) & 63)) & 1
		sel := 1 + (t ^ ((t ^ j) & -int(b)))
		bs[sel>>6] |= 1 << (uint(sel) & 63)
	}
	s.pos = pos
	return bs
}

// packedBoundary applies the round-t fault boundary to the packed state:
// the source bit takes its scheduled opinion, and boundary events rewrite
// non-source opinions through an unpack → PerturbAgents → repack
// round-trip. Boundary events are point events (rare rounds), so the O(n)
// copy is paid only when opinions are actually rewritten; the scratch
// slice is grown lazily on the first such round and reused after.
func packedBoundary(f Perturber, t int64, z int, cur []uint64, n int, scratch []uint8, g *rng.RNG) (int, []uint8) {
	src := f.SourceOpinion(t, z)
	packedSet(cur, 0, uint64(src))
	if f.BoundaryAt(t) {
		if scratch == nil {
			scratch = make([]uint8, n)
		}
		for i := 0; i < n; i++ {
			scratch[i] = uint8(packedGet(cur, i))
		}
		f.PerturbAgents(t, scratch, g)
		for w := range cur {
			cur[w] = 0
		}
		for i := 0; i < n; i++ {
			if scratch[i] != 0 {
				cur[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
	return src, scratch
}

// packedWorker is one agent range of the packed engine: the serial engine
// is a single worker spanning [1, n) on the main stream; the sharded
// engine runs one per shard on Split-derived streams, matching the
// stream layout of the unpacked agentShard.
type packedWorker struct {
	lo, hi  int // agent index range [lo, hi)
	s       *halfStream
	count   int64
	sampled int64
	nParts  int
	partIdx [2]int
	partBit [2]uint64
}

// stepDet advances the worker's agent range one packed round in the
// fully deterministic-rule, fault-free regime: no omission coins, no
// pinned agents in range, and 0/1 adoption tables packed into
// per-opinion bitmasks (bit k of det0/det1 is g^[0](k)/g^[1](k)).
//
// It applies the aggregation insight per agent: conditioned on the
// current one-count x, each agent's observed one-count k is iid
// Binomial(ℓ, x/n) — uniform sampling with replacement depends on the
// configuration only through x — so instead of ℓ random bitset lookups
// the round draws k directly by inverse CDF. kThr[m] holds the 53-bit
// BernoulliThreshold of P(K ≤ m), so k = #{m : u ≥ kThr[m]} for one
// uniform word u; the count comes out at the same Float64 granularity
// at which rng.Bernoulli and rng.Binomial resolve their probabilities
// everywhere else in the repo. The body is branchless past the buffer
// refill: the borrow of a 64-bit subtract accumulates k, and a mask
// select replaces the adoption branch on a random k, which mispredicts
// half the time for minority-style rules.
func (w *packedWorker) stepDet(cur, next []uint64, n int, det0, det1 uint64, kThr []uint64) {
	s := w.s
	buf := &s.buf
	pos := s.pos
	g := s.g
	if pos&1 == 1 {
		pos++ // align to a word boundary; one unused half is discarded
	}
	var count int64
	w.nParts = 0
	acc := uint64(0)
	wordIdx := w.lo >> 6
	xorMask := det0 ^ det1
	if len(kThr) == 3 {
		// ℓ = 3 is the canonical sample size of the repo's minority
		// experiments; unrolling the threshold scan into three
		// independent borrows removes the inner loop entirely. The walk
		// is blocked per 64-agent word so the current-opinion word is
		// loaded once per block (shifted out bit by bit) and the
		// one-count is taken as one popcount per flushed word instead
		// of a per-agent add.
		t0, t1, t2 := kThr[0], kThr[1], kThr[2]
		// pos stays even here (one whole word per agent), so a word
		// cursor replaces the half cursor inside the loop.
		wpos := pos >> 1
		for i := w.lo; i < w.hi; {
			blockEnd := (i | 63) + 1
			if blockEnd > w.hi {
				blockEnd = w.hi
			}
			// Refill per block, not per agent: if fewer words remain
			// than the block needs, refresh the whole buffer and
			// discard the unconsumed tail (≤ 63 fresh uniform words
			// that no draw ever observed — the stream stays iid and
			// the run stays deterministic, it just skips ahead).
			if packedBufferWords-wpos < blockEnd-i {
				g.FillUint64(buf[:])
				wpos = 0
			}
			o := uint(i) & 63
			cw := cur[wordIdx] >> o
			for ; i < blockEnd; i++ {
				u := buf[wpos]
				wpos++
				_, b0 := bits.Sub64(u, t0, 0)
				_, b1 := bits.Sub64(u, t1, 0)
				_, b2 := bits.Sub64(u, t2, 0)
				k := uint(3 - (b0 + b1 + b2))
				b := cw & 1
				cw >>= 1
				bit := ((det0 ^ (xorMask & (-b))) >> k) & 1
				acc |= bit << o
				o++
			}
			w.flushWord(next, wordIdx, acc, n)
			count += int64(bits.OnesCount64(acc))
			acc = 0
			wordIdx++
		}
		pos = wpos << 1
	} else {
		for i := w.lo; i < w.hi; i++ {
			if pos == packedBufferHalves {
				g.FillUint64(buf[:])
				pos = 0
			}
			u := buf[pos>>1]
			pos += 2
			k := uint(0)
			for _, t := range kThr {
				_, borrow := bits.Sub64(u, t, 0)
				k += uint(1 - borrow)
			}
			b := (cur[i>>6] >> (uint(i) & 63)) & 1
			// Select det1 when b == 1, det0 otherwise, without a branch.
			bit := ((det0 ^ (xorMask & (-b))) >> k) & 1
			acc |= bit << (uint(i) & 63)
			count += int64(bit)
			if i&63 == 63 || i == w.hi-1 {
				w.flushWord(next, wordIdx, acc, n)
				acc = 0
				wordIdx++
			}
		}
	}
	s.pos = pos
	w.count = count
	w.sampled = int64(w.hi - w.lo)
}

// detMasks packs 0/1 threshold tables into the stepDet bitmasks; ok is
// false when any entry is probabilistic (noisy rules) or ℓ ≥ 64.
func detMasks(thr0, thr1 []uint64) (det0, det1 uint64, ok bool) {
	if len(thr0) > 64 {
		return 0, 0, false
	}
	for k := range thr0 {
		switch thr0[k] {
		case 0:
		case rng.BernoulliAlways:
			det0 |= 1 << uint(k)
		default:
			return 0, 0, false
		}
		switch thr1[k] {
		case 0:
		case rng.BernoulliAlways:
			det1 |= 1 << uint(k)
		default:
			return 0, 0, false
		}
	}
	return det0, det1, true
}

// step advances the worker's agent range one packed round. The draw path
// is free of function calls: halves come straight out of the local block
// (refilled in bulk), indices from inline Lemire-32 rejection, and coins
// from inline threshold compares with the non-consuming 0 /
// BernoulliAlways sentinels short-circuited.
func (w *packedWorker) step(cur, next []uint64, n, ell int, thr0, thr1 []uint64, omitThr uint64, pinnedEnd int) {
	bound := uint64(n)
	rej := uint32(-uint32(n)) % uint32(n)
	s := w.s
	buf := &s.buf
	pos := s.pos
	g := s.g
	var count, sampled int64
	w.nParts = 0
	acc := uint64(0)
	wordIdx := w.lo >> 6
	for i := w.lo; i < w.hi; i++ {
		var bit uint64
		if i >= pinnedEnd {
			omitted := false
			if omitThr != 0 {
				if omitThr == rng.BernoulliAlways {
					omitted = true
				} else {
					if pos == packedBufferHalves {
						g.FillUint64(buf[:])
						pos = 0
					}
					h := uint32(buf[pos>>1] >> uint((pos&1)<<5))
					pos++
					if pos == packedBufferHalves {
						g.FillUint64(buf[:])
						pos = 0
					}
					h2 := uint32(buf[pos>>1] >> uint((pos&1)<<5))
					pos++
					omitted = uint64(h)|uint64(h2)<<32 < omitThr
				}
			}
			if !omitted {
				k := 0
				for sc := 0; sc < ell; sc++ {
					if pos == packedBufferHalves {
						g.FillUint64(buf[:])
						pos = 0
					}
					h := uint32(buf[pos>>1] >> uint((pos&1)<<5))
					pos++
					m := uint64(h) * bound
					for uint32(m) < rej {
						if pos == packedBufferHalves {
							g.FillUint64(buf[:])
							pos = 0
						}
						h = uint32(buf[pos>>1] >> uint((pos&1)<<5))
						pos++
						m = uint64(h) * bound
					}
					j := int(m >> 32)
					k += int((cur[j>>6] >> (uint(j) & 63)) & 1)
				}
				sampled++
				thr := thr0[k]
				if (cur[i>>6]>>(uint(i)&63))&1 == 1 {
					thr = thr1[k]
				}
				switch thr {
				case 0:
					// bit stays 0 without consuming randomness.
				case rng.BernoulliAlways:
					bit = 1
				default:
					if pos == packedBufferHalves {
						g.FillUint64(buf[:])
						pos = 0
					}
					h := uint32(buf[pos>>1] >> uint((pos&1)<<5))
					pos++
					if pos == packedBufferHalves {
						g.FillUint64(buf[:])
						pos = 0
					}
					h2 := uint32(buf[pos>>1] >> uint((pos&1)<<5))
					pos++
					if uint64(h)|uint64(h2)<<32 < thr {
						bit = 1
					}
				}
				goto store
			}
		}
		// Stubborn or omitted: the agent keeps its opinion.
		bit = (cur[i>>6] >> (uint(i) & 63)) & 1
	store:
		acc |= bit << (uint(i) & 63)
		count += int64(bit)
		if i&63 == 63 || i == w.hi-1 {
			w.flushWord(next, wordIdx, acc, n)
			acc = 0
			wordIdx++
		}
	}
	s.pos = pos
	w.count = count
	w.sampled = sampled
}

// flushWord stores a completed word: directly when every live bit of the
// word belongs to this worker, otherwise as a partial for the coordinator
// to merge (bit 0 is the coordinator-owned source bit, bits ≥ n are dead).
func (w *packedWorker) flushWord(next []uint64, wordIdx int, bitsWord uint64, n int) {
	liveStart := wordIdx << 6
	if liveStart == 0 {
		liveStart = 1 // the source bit belongs to the coordinator
	}
	liveEnd := wordIdx<<6 + 63
	if liveEnd > n-1 {
		liveEnd = n - 1
	}
	if liveStart >= w.lo && liveEnd < w.hi {
		next[wordIdx] = bitsWord
		return
	}
	w.partIdx[w.nParts] = wordIdx
	w.partBit[w.nParts] = bitsWord
	w.nParts++
}

// runAgentsPacked is the bit-packed body of RunAgents, serial for
// shards == 1 and sharded otherwise. Both are deterministic in
// (seed, Config, shards) and draw from the same per-round distribution
// as the unpacked bodies.
func runAgentsPacked(cfg Config, shards int, g *rng.RNG) (Result, error) {
	absorbing := cfg.Rule.CheckProp3() == nil
	target := consensusTarget(cfg.N, cfg.Z)
	trap := wrongTrap(cfg.N, cfg.Z)
	roundCap := cfg.maxRounds()
	ell := cfg.Rule.SampleSize()
	n := int(cfg.N)
	faults := cfg.perturber()
	horizon := faultHorizon(faults)

	// The main half stream serves initialization and, in the serial
	// case, the round loop itself. Its block pre-draws words, so the
	// generator may end up advanced past the variates actually consumed;
	// chained runs on one generator should Split it per run.
	main := newHalfStream(g)
	cur := packedInitialOpinions(cfg, main)
	next := make([]uint64, len(cur))
	x := cfg.X0

	res := Result{FinalCount: x, Shards: shards}
	if x == target && absorbing && horizon == 0 {
		res.Converged = true
		return res, nil
	}

	g0, g1 := cfg.Rule.Tables()
	thr0 := make([]uint64, ell+1)
	thr1 := make([]uint64, ell+1)
	for k := 0; k <= ell; k++ {
		thr0[k] = rng.BernoulliThreshold(g0[k])
		thr1[k] = rng.BernoulliThreshold(g1[k])
	}
	det0, det1, detOK := detMasks(thr0, thr1)
	var pmf []float64
	var kThr []uint64
	if detOK {
		pmf = make([]float64, ell+1)
		kThr = make([]uint64, ell)
	}

	workers := make([]*packedWorker, shards)
	if shards == 1 {
		workers[0] = &packedWorker{lo: 1, hi: n, s: main}
	} else {
		for s := range workers {
			lo := 1 + s*(n-1)/shards
			hi := 1 + (s+1)*(n-1)/shards
			// Each shard consumes its own Split-derived stream; boundary
			// draws stay on the main stream, so rounds are reproducible
			// for a given (seed, shards) regardless of scheduling.
			workers[s] = &packedWorker{lo: lo, hi: hi, s: newHalfStream(g.Split())}
		}
	}

	var scratch []uint8
	var wg sync.WaitGroup
	for t := int64(1); t <= roundCap; t++ {
		if cfg.Halt != nil && cfg.Halt() {
			res.Interrupted = true
			return res, nil
		}
		src := cfg.Z
		var omitThr uint64
		pinnedEnd := 1
		if faults != nil {
			src, scratch = packedBoundary(faults, t, cfg.Z, cur, n, scratch, g)
			if q := faults.OmitProb(t); q > 0 {
				omitThr = rng.BernoulliThreshold(q)
			}
			s1, s0 := faults.Stubborn(t, cfg.N)
			pinnedEnd = 1 + int(s1) + int(s0)
		}
		det := detOK && omitThr == 0 && pinnedEnd == 1
		if det {
			// The inverse-CDF thresholds condition on the one-count the
			// agents actually sample from; a fault boundary may just have
			// rewritten the bitset, so recount it then.
			xs := x
			if faults != nil {
				xs = packedCount(cur)
			}
			protocol.SampleCountPMF(ell, float64(xs)/float64(cfg.N), pmf)
			cdf := 0.0
			for m := 0; m < ell; m++ {
				cdf += pmf[m]
				kThr[m] = rng.BernoulliThreshold(cdf)
			}
		}
		if shards == 1 {
			if det {
				workers[0].stepDet(cur, next, n, det0, det1, kThr)
			} else {
				workers[0].step(cur, next, n, ell, thr0, thr1, omitThr, pinnedEnd)
			}
		} else {
			for _, w := range workers {
				wg.Add(1)
				go func(w *packedWorker) {
					defer wg.Done()
					if det {
						w.stepDet(cur, next, n, det0, det1, kThr)
					} else {
						w.step(cur, next, n, ell, thr0, thr1, omitThr, pinnedEnd)
					}
				}(w)
			}
			wg.Wait()
		}

		// Merge the shared boundary words: zero them first (partials of
		// distinct workers never overlap bit-wise, so OR order is free),
		// then OR the partials and the coordinator-owned source bit.
		for _, w := range workers {
			for p := 0; p < w.nParts; p++ {
				next[w.partIdx[p]] = 0
			}
		}
		count := int64(0)
		var roundSampled int64
		for _, w := range workers {
			for p := 0; p < w.nParts; p++ {
				next[w.partIdx[p]] |= w.partBit[p]
			}
			count += w.count
			roundSampled += w.sampled
		}
		res.Activations += roundSampled
		next[0] = next[0]&^1 | uint64(src)
		count += int64(src)

		cur, next = next, cur
		x = count
		res.Rounds = t
		res.FinalCount = x
		if x == trap {
			res.HitWrongConsensus = true
		}
		if cfg.Record != nil {
			cfg.Record(t, x)
		}
		if cfg.Probe != nil {
			if shards > 1 {
				for s, w := range workers {
					cfg.Probe.ShardRound(s, w.sampled)
				}
			}
			probeRound(cfg.Probe, faults, t, cfg.Z, src, x, roundSampled)
		}
		if x == target && absorbing && t >= horizon {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}
