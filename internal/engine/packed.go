package engine

import (
	"math"
	"math/bits"
	"sync"

	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// This file is the bit-packed fast path of the literal agent engine:
// opinions live in a []uint64 bitset (one bit per agent, 8× less memory
// traffic than the historical []uint8 layout, so the whole population
// stays cache-resident far longer), and randomness is consumed as a
// stream of 32-bit halves cut from block-generated xoshiro words
// (rng.FillUint64 keeps the generator state in registers for thousands
// of outputs). Two round bodies share that stream:
//
//   - stepDet, for deterministic 0/1 rule tables in fault-free rounds,
//     applies the aggregation insight per agent: conditioned on the
//     current one-count x, every agent's observed one-count k is iid
//     Binomial(ℓ, x/n), so one uniform word and an inverse-CDF
//     threshold scan replace the ℓ random bitset lookups entirely, and
//     a bitmask select replaces the (mispredicting) adoption branch.
//
//   - step, the general body (noisy tables, omission coins, pinned
//     stubborn prefixes), samples indices literally: one half per index
//     via Lemire's multiply-shift with rejection — exact for any bound
//     below 2³², which is why the packed path is gated on n < 2³² —
//     while coins splice two halves into a full word and compare it
//     against a precomputed rng.BernoulliThreshold (0/1 sentinel
//     entries consume nothing, like rng.Bernoulli's shortcuts).
//
// Both bodies draw each round's transition from the same law as the
// historical byte-per-opinion engine, at the 53-bit granularity at
// which rng.Bernoulli/rng.Binomial resolve probabilities everywhere in
// the repo; the initial configuration is laid out by the same Floyd
// subset-sampling walk. Realizations for a given seed differ from the
// unpacked body's — spending less randomness per agent is the point —
// so runs are reproducible per engine (same seed, Config, Shards ⇒
// same Result) but not across the packed/unpacked pair; the χ²
// equivalence suite (equivalence_chi_test.go) pins the distributional
// agreement, under every fault family. AgentOptions.Unpacked forces
// the historical body; without-replacement sampling and n ≥ 2³² fall
// back to it on their own.
const packedBufferWords = 1024

// packedBufferHalves is the stream length in 32-bit units.
const packedBufferHalves = 2 * packedBufferWords

// packedMaxN is the exclusive population bound of the packed fast path:
// Lemire-32 rejection is exact only for bounds that fit in 32 bits.
const packedMaxN = int64(math.MaxUint32)

// packedWords returns the number of 64-bit words holding n opinion bits.
func packedWords(n int) int { return (n + 63) / 64 }

// packedCount returns the number of one-bits in the opinion bitset.
func packedCount(bs []uint64) int64 {
	var c int
	for _, w := range bs {
		c += bits.OnesCount64(w)
	}
	return int64(c)
}

// packedGet returns opinion bit i.
func packedGet(bs []uint64, i int) uint64 {
	return (bs[i>>6] >> (uint(i) & 63)) & 1
}

// packedSet stores opinion bit i.
func packedSet(bs []uint64, i int, bit uint64) {
	mask := uint64(1) << (uint(i) & 63)
	if bit != 0 {
		bs[i>>6] |= mask
	} else {
		bs[i>>6] &^= mask
	}
}

// halfStream carries a generator's output as a block of raw words plus a
// cursor in 32-bit halves (buf[pos>>1] >> 32·(pos&1)), refilled through
// rng.FillUint64. The consumers — initialization, the round loops —
// inline the cursor accesses directly; the struct only threads the
// stream state between them.
type halfStream struct {
	g   *rng.RNG
	buf [packedBufferWords]uint64
	pos int // next 32-bit half
}

func newHalfStream(g *rng.RNG) *halfStream {
	return &halfStream{g: g, pos: packedBufferHalves}
}

// packedInitialOpinions is initialOpinions on the packed layout: the
// same Floyd subset-sampling walk, with the variates drawn from the
// half stream. The draw loop is inlined (one lazy Lemire-32 per
// accepted variate, like the round loop) because at X0 = n/2 the
// initialization is a visible fraction of a short run.
func packedInitialOpinions(cfg Config, s *halfStream) []uint64 {
	n := int(cfg.N)
	bs := make([]uint64, packedWords(n))
	packedSet(bs, 0, uint64(cfg.Z))
	onesToPlace := int(cfg.X0) - cfg.Z
	m := n - 1 // candidate non-source slots, bits 1..n-1
	buf := &s.buf
	pos := s.pos
	g := s.g
	for j := m - onesToPlace; j < m; j++ {
		bound := uint64(j + 1)
		if pos == packedBufferHalves {
			g.FillUint64(buf[:])
			pos = 0
		}
		h := uint32(buf[pos>>1] >> uint((pos&1)<<5))
		pos++
		mm := uint64(h) * bound
		if uint32(mm) < uint32(bound) {
			rej := uint32(-uint32(bound)) % uint32(bound)
			for uint32(mm) < rej {
				if pos == packedBufferHalves {
					g.FillUint64(buf[:])
					pos = 0
				}
				h = uint32(buf[pos>>1] >> uint((pos&1)<<5))
				pos++
				mm = uint64(h) * bound
			}
		}
		t := int(mm >> 32)
		// Select j when slot t is already a member, t otherwise, without
		// a branch: the membership bit is unpredictable (≈X0/n of the
		// walk hits a member), so a data-dependent branch mispredicts
		// its way through the whole initialization.
		b := (bs[(1+t)>>6] >> (uint(1+t) & 63)) & 1
		sel := 1 + (t ^ ((t ^ j) & -int(b)))
		bs[sel>>6] |= 1 << (uint(sel) & 63)
	}
	s.pos = pos
	return bs
}

// packedBoundary applies the round-t fault boundary to the packed state:
// the source bit takes its scheduled opinion, and boundary events rewrite
// non-source opinions through an unpack → PerturbAgents → repack
// round-trip. Boundary events are point events (rare rounds), so the O(n)
// copy is paid only when opinions are actually rewritten; the scratch
// slice is grown lazily on the first such round and reused after.
func packedBoundary(f Perturber, t int64, z int, cur []uint64, n int, scratch []uint8, g *rng.RNG) (int, []uint8) {
	src := f.SourceOpinion(t, z)
	packedSet(cur, 0, uint64(src))
	if f.BoundaryAt(t) {
		if scratch == nil {
			scratch = make([]uint8, n)
		}
		for i := 0; i < n; i++ {
			scratch[i] = uint8(packedGet(cur, i))
		}
		f.PerturbAgents(t, scratch, g)
		for w := range cur {
			cur[w] = 0
		}
		for i := 0; i < n; i++ {
			if scratch[i] != 0 {
				cur[i>>6] |= 1 << (uint(i) & 63)
			}
		}
	}
	return src, scratch
}

// lineWords is the cache-line granularity of shard ownership: 8 words of
// 64 opinions each, so one shard's round flips never dirty a cache line
// another shard writes (false-sharing-free by construction, not by luck).
const lineWords = 8

// packedWordBounds partitions nWords bitset words into shards contiguous
// ranges: bounds[s] is the first word of shard s and bounds[shards] ==
// nWords. Ranges are aligned to cache-line (8-word) multiples whenever
// shards ≤ lines, so concurrent round flips are false-sharing-free; with
// more shards than lines the split degrades to word granularity (still
// write-exclusive per word, never per bit). Callers must clamp shards to
// [1, nWords] first (packedEffectiveShards), which guarantees every
// shard at least one whole word.
func packedWordBounds(nWords, shards int) []int {
	bounds := make([]int, shards+1)
	lines := (nWords + lineWords - 1) / lineWords
	if shards <= lines {
		for s := 1; s < shards; s++ {
			bounds[s] = (s * lines / shards) * lineWords
		}
	} else {
		for s := 1; s < shards; s++ {
			bounds[s] = s * nWords / shards
		}
	}
	bounds[shards] = nWords
	return bounds
}

// MaxPackedShards returns the largest usable shard count of the packed
// engines (bit-packed and chunked) for a population of n agents: one shard
// per 64-opinion bitset word, because a shard must own at least one whole
// word to keep round flips write-exclusive. Requests above it are clamped —
// Result.Shards reports the resolved value — and front-ends may prefer to
// reject them outright (bitsim does).
func MaxPackedShards(n int64) int { return int((n + 63) >> 6) }

// packedEffectiveShards clamps a requested shard count to [1, nWords]: a
// packed shard owns whole 64-opinion words, so there can be no more
// shards than words. Result.Shards reports this resolved value.
func packedEffectiveShards(requested, nWords int) int {
	if requested > nWords {
		requested = nWords
	}
	if requested < 1 {
		requested = 1
	}
	return requested
}

// packedWorker is one agent range of the packed engine: the serial engine
// is a single worker spanning [1, n) on the main stream; the sharded
// engine runs one per shard on Split-derived streams over word-aligned
// ranges (packedWordBounds), so every bitset word has exactly one writer
// and rounds need no partial-word merge. The trailing pad keeps the
// per-round count/sampled stores of adjacent workers on distinct cache
// lines (the workers are small heap objects that would otherwise share
// one).
type packedWorker struct {
	lo, hi  int // agent index range [lo, hi)
	s       *halfStream
	count   int64
	sampled int64
	_       [11]uint64 // pad to 128 B: no false sharing between workers
}

// stepDet advances the worker's agent range one packed round in the
// fully deterministic-rule, fault-free regime: no omission coins, no
// pinned agents in range, and 0/1 adoption tables packed into
// per-opinion bitmasks (bit k of det0/det1 is g^[0](k)/g^[1](k)).
//
// It applies the aggregation insight per agent: conditioned on the
// current one-count x, each agent's observed one-count k is iid
// Binomial(ℓ, x/n) — uniform sampling with replacement depends on the
// configuration only through x — so instead of ℓ random bitset lookups
// the round draws k directly by inverse CDF. kThr[m] holds the 53-bit
// BernoulliThreshold of P(K ≤ m), so k = #{m : u ≥ kThr[m]} for one
// uniform word u; the count comes out at the same Float64 granularity
// at which rng.Bernoulli and rng.Binomial resolve their probabilities
// everywhere else in the repo. The body is branchless past the buffer
// refill: the borrow of a 64-bit subtract accumulates k, and a mask
// select replaces the adoption branch on a random k, which mispredicts
// half the time for minority-style rules.
func (w *packedWorker) stepDet(cur, next []uint64, det0, det1 uint64, kThr []uint64) {
	s := w.s
	buf := &s.buf
	pos := s.pos
	g := s.g
	if pos&1 == 1 {
		pos++ // align to a word boundary; one unused half is discarded
	}
	var count int64
	acc := uint64(0)
	wordIdx := w.lo >> 6
	xorMask := det0 ^ det1
	if len(kThr) == 3 {
		// ℓ = 3 is the canonical sample size of the repo's minority
		// experiments; unrolling the threshold scan into three
		// independent borrows removes the inner loop entirely. The walk
		// is blocked per 64-agent word so the current-opinion word is
		// loaded once per block (shifted out bit by bit) and the
		// one-count is taken as one popcount per flushed word instead
		// of a per-agent add.
		t0, t1, t2 := kThr[0], kThr[1], kThr[2]
		// pos stays even here (one whole word per agent), so a word
		// cursor replaces the half cursor inside the loop.
		wpos := pos >> 1
		for i := w.lo; i < w.hi; {
			blockEnd := (i | 63) + 1
			if blockEnd > w.hi {
				blockEnd = w.hi
			}
			// Refill per block, not per agent: if fewer words remain
			// than the block needs, refresh the whole buffer and
			// discard the unconsumed tail (≤ 63 fresh uniform words
			// that no draw ever observed — the stream stays iid and
			// the run stays deterministic, it just skips ahead).
			if packedBufferWords-wpos < blockEnd-i {
				g.FillUint64(buf[:])
				wpos = 0
			}
			o := uint(i) & 63
			cw := cur[wordIdx] >> o
			for ; i < blockEnd; i++ {
				u := buf[wpos]
				wpos++
				_, b0 := bits.Sub64(u, t0, 0)
				_, b1 := bits.Sub64(u, t1, 0)
				_, b2 := bits.Sub64(u, t2, 0)
				k := uint(3 - (b0 + b1 + b2))
				b := cw & 1
				cw >>= 1
				bit := ((det0 ^ (xorMask & (-b))) >> k) & 1
				acc |= bit << o
				o++
			}
			next[wordIdx] = acc
			count += int64(bits.OnesCount64(acc))
			acc = 0
			wordIdx++
		}
		pos = wpos << 1
	} else {
		for i := w.lo; i < w.hi; i++ {
			if pos == packedBufferHalves {
				g.FillUint64(buf[:])
				pos = 0
			}
			u := buf[pos>>1]
			pos += 2
			k := uint(0)
			for _, t := range kThr {
				_, borrow := bits.Sub64(u, t, 0)
				k += uint(1 - borrow)
			}
			b := (cur[i>>6] >> (uint(i) & 63)) & 1
			// Select det1 when b == 1, det0 otherwise, without a branch.
			bit := ((det0 ^ (xorMask & (-b))) >> k) & 1
			acc |= bit << (uint(i) & 63)
			count += int64(bit)
			if i&63 == 63 || i == w.hi-1 {
				next[wordIdx] = acc
				acc = 0
				wordIdx++
			}
		}
	}
	s.pos = pos
	w.count = count
	w.sampled = int64(w.hi - w.lo)
}

// detMasks packs 0/1 threshold tables into the stepDet bitmasks; ok is
// false when any entry is probabilistic (noisy rules) or ℓ ≥ 64.
func detMasks(thr0, thr1 []uint64) (det0, det1 uint64, ok bool) {
	if len(thr0) > 64 {
		return 0, 0, false
	}
	for k := range thr0 {
		switch thr0[k] {
		case 0:
		case rng.BernoulliAlways:
			det0 |= 1 << uint(k)
		default:
			return 0, 0, false
		}
		switch thr1[k] {
		case 0:
		case rng.BernoulliAlways:
			det1 |= 1 << uint(k)
		default:
			return 0, 0, false
		}
	}
	return det0, det1, true
}

// step advances the worker's agent range one packed round. The draw path
// is free of function calls: halves come straight out of the local block
// (refilled in bulk), indices from inline Lemire-32 rejection, and coins
// from inline threshold compares with the non-consuming 0 /
// BernoulliAlways sentinels short-circuited.
func (w *packedWorker) step(cur, next []uint64, n, ell int, thr0, thr1 []uint64, omitThr uint64, pinnedEnd int) {
	bound := uint64(n)
	rej := uint32(-uint32(n)) % uint32(n)
	s := w.s
	buf := &s.buf
	pos := s.pos
	g := s.g
	var count, sampled int64
	acc := uint64(0)
	wordIdx := w.lo >> 6
	for i := w.lo; i < w.hi; i++ {
		var bit uint64
		if i >= pinnedEnd {
			omitted := false
			if omitThr != 0 {
				if omitThr == rng.BernoulliAlways {
					omitted = true
				} else {
					if pos == packedBufferHalves {
						g.FillUint64(buf[:])
						pos = 0
					}
					h := uint32(buf[pos>>1] >> uint((pos&1)<<5))
					pos++
					if pos == packedBufferHalves {
						g.FillUint64(buf[:])
						pos = 0
					}
					h2 := uint32(buf[pos>>1] >> uint((pos&1)<<5))
					pos++
					omitted = uint64(h)|uint64(h2)<<32 < omitThr
				}
			}
			if !omitted {
				k := 0
				for sc := 0; sc < ell; sc++ {
					if pos == packedBufferHalves {
						g.FillUint64(buf[:])
						pos = 0
					}
					h := uint32(buf[pos>>1] >> uint((pos&1)<<5))
					pos++
					m := uint64(h) * bound
					for uint32(m) < rej {
						if pos == packedBufferHalves {
							g.FillUint64(buf[:])
							pos = 0
						}
						h = uint32(buf[pos>>1] >> uint((pos&1)<<5))
						pos++
						m = uint64(h) * bound
					}
					j := int(m >> 32)
					k += int((cur[j>>6] >> (uint(j) & 63)) & 1)
				}
				sampled++
				thr := thr0[k]
				if (cur[i>>6]>>(uint(i)&63))&1 == 1 {
					thr = thr1[k]
				}
				switch thr {
				case 0:
					// bit stays 0 without consuming randomness.
				case rng.BernoulliAlways:
					bit = 1
				default:
					if pos == packedBufferHalves {
						g.FillUint64(buf[:])
						pos = 0
					}
					h := uint32(buf[pos>>1] >> uint((pos&1)<<5))
					pos++
					if pos == packedBufferHalves {
						g.FillUint64(buf[:])
						pos = 0
					}
					h2 := uint32(buf[pos>>1] >> uint((pos&1)<<5))
					pos++
					if uint64(h)|uint64(h2)<<32 < thr {
						bit = 1
					}
				}
				goto store
			}
		}
		// Stubborn or omitted: the agent keeps its opinion.
		bit = (cur[i>>6] >> (uint(i) & 63)) & 1
	store:
		acc |= bit << (uint(i) & 63)
		count += int64(bit)
		if i&63 == 63 || i == w.hi-1 {
			next[wordIdx] = acc
			acc = 0
			wordIdx++
		}
	}
	s.pos = pos
	w.count = count
	w.sampled = sampled
}

// packedParams is the per-Config immutable context of the packed engine:
// everything derived from (Config, shards) without consuming randomness.
// One packedParams can drive many replicas (RunAgentsReplicas), each with
// its own packedState.
type packedParams struct {
	cfg        Config
	n          int
	ell        int
	shards     int // resolved shard count (packedEffectiveShards)
	absorbing  bool
	target     int64
	trap       int64
	roundCap   int64
	horizon    int64
	faults     Perturber
	thr0, thr1 []uint64
	det0, det1 uint64
	detOK      bool
}

func newPackedParams(cfg Config, requestedShards int) *packedParams {
	p := &packedParams{
		cfg:       cfg,
		n:         int(cfg.N),
		ell:       cfg.Rule.SampleSize(),
		absorbing: cfg.Rule.CheckProp3() == nil,
		target:    consensusTarget(cfg.N, cfg.Z),
		trap:      wrongTrap(cfg.N, cfg.Z),
		roundCap:  cfg.maxRounds(),
		faults:    cfg.perturber(),
	}
	p.shards = packedEffectiveShards(requestedShards, packedWords(p.n))
	p.horizon = faultHorizon(p.faults)
	g0, g1 := cfg.Rule.Tables()
	p.thr0 = make([]uint64, p.ell+1)
	p.thr1 = make([]uint64, p.ell+1)
	for k := 0; k <= p.ell; k++ {
		p.thr0[k] = rng.BernoulliThreshold(g0[k])
		p.thr1[k] = rng.BernoulliThreshold(g1[k])
	}
	p.det0, p.det1, p.detOK = detMasks(p.thr0, p.thr1)
	return p
}

// packedState is one replica of the packed engine: its generator, bitsets,
// workers and partial Result.
type packedState struct {
	g         *rng.RNG
	cur, next []uint64
	x         int64
	scratch   []uint8
	workers   []*packedWorker
	pmf       []float64
	kThr      []uint64
	wg        sync.WaitGroup
	res       Result
}

// newState draws a replica's initial configuration from g and lays out its
// workers. The main half stream serves initialization and, in the serial
// case, the round loop itself. Its block pre-draws words, so the generator
// may end up advanced past the variates actually consumed; chained runs on
// one generator should Split it per run. Shard streams are derived after
// initialization (SplitN on the same generator), so a given seed yields
// the same starting layout at every shard count.
func (p *packedParams) newState(g *rng.RNG) *packedState {
	main := newHalfStream(g)
	st := &packedState{g: g, cur: packedInitialOpinions(p.cfg, main), x: p.cfg.X0}
	st.next = make([]uint64, len(st.cur))
	st.res = Result{FinalCount: st.x, Shards: p.shards}
	if st.x == p.target && p.absorbing && p.horizon == 0 {
		st.res.Converged = true
		return st
	}
	if p.detOK {
		st.pmf = make([]float64, p.ell+1)
		st.kThr = make([]uint64, p.ell)
	}
	st.workers = make([]*packedWorker, p.shards)
	if p.shards == 1 {
		st.workers[0] = &packedWorker{lo: 1, hi: p.n, s: main}
	} else {
		// Word-aligned, cache-line-padded agent ranges: every bitset word
		// has exactly one writer and shard ranges start on 64-byte
		// boundaries. Each shard consumes its own Split-derived stream;
		// boundary draws stay on the main generator, so rounds are
		// reproducible for a given (seed, Shards) regardless of
		// GOMAXPROCS or scheduling.
		bounds := packedWordBounds(len(st.cur), p.shards)
		streams := g.SplitN(p.shards)
		for s := range st.workers {
			lo := bounds[s] << 6
			if lo == 0 {
				lo = 1 // bit 0 is the coordinator-owned source bit
			}
			hi := bounds[s+1] << 6
			if hi > p.n {
				hi = p.n
			}
			st.workers[s] = &packedWorker{lo: lo, hi: hi, s: newHalfStream(streams[s])}
		}
	}
	return st
}

// stateKThr fills the replica-local inverse-CDF threshold table for
// one-count x; the solo runner's kThrFunc.
func (p *packedParams) stateKThr(st *packedState, x int64) []uint64 {
	protocol.SampleCountPMF(p.ell, float64(x)/float64(p.cfg.N), st.pmf)
	cdf := 0.0
	for m := 0; m < p.ell; m++ {
		cdf += st.pmf[m]
		st.kThr[m] = rng.BernoulliThreshold(cdf)
	}
	return st.kThr
}

// kThrFunc supplies the deterministic-regime threshold table for a given
// one-count. The solo runner computes it in place (stateKThr); the
// replica-batched runner memoizes it per distinct count, which is exact —
// the table is a pure function of x — so batched and solo trajectories
// coincide realization-by-realization.
type kThrFunc func(st *packedState, x int64) []uint64

// round advances one replica a single parallel round and reports whether
// the run is finished (converged). The caller owns the Halt poll.
func (p *packedParams) round(st *packedState, t int64, thresholds kThrFunc) (done bool) {
	cfg := &p.cfg
	src := cfg.Z
	var omitThr uint64
	pinnedEnd := 1
	if p.faults != nil {
		src, st.scratch = packedBoundary(p.faults, t, cfg.Z, st.cur, p.n, st.scratch, st.g)
		if q := p.faults.OmitProb(t); q > 0 {
			omitThr = rng.BernoulliThreshold(q)
		}
		s1, s0 := p.faults.Stubborn(t, cfg.N)
		pinnedEnd = 1 + int(s1) + int(s0)
	}
	det := p.detOK && omitThr == 0 && pinnedEnd == 1
	var kThr []uint64
	if det {
		// The inverse-CDF thresholds condition on the one-count the
		// agents actually sample from; a fault boundary may just have
		// rewritten the bitset, so recount it then.
		xs := st.x
		if p.faults != nil {
			xs = packedCount(st.cur)
		}
		kThr = thresholds(st, xs)
	}
	if p.shards == 1 {
		if det {
			st.workers[0].stepDet(st.cur, st.next, p.det0, p.det1, kThr)
		} else {
			st.workers[0].step(st.cur, st.next, p.n, p.ell, p.thr0, p.thr1, omitThr, pinnedEnd)
		}
	} else {
		for _, w := range st.workers {
			st.wg.Add(1)
			go func(w *packedWorker) {
				defer st.wg.Done()
				if det {
					w.stepDet(st.cur, st.next, p.det0, p.det1, kThr)
				} else {
					w.step(st.cur, st.next, p.n, p.ell, p.thr0, p.thr1, omitThr, pinnedEnd)
				}
			}(w)
		}
		st.wg.Wait()
	}

	// Fixed-order reduction of the per-shard counts, then the
	// coordinator-owned source bit.
	count := int64(0)
	var roundSampled int64
	for _, w := range st.workers {
		count += w.count
		roundSampled += w.sampled
	}
	st.res.Activations += roundSampled
	st.next[0] = st.next[0]&^1 | uint64(src)
	count += int64(src)

	st.cur, st.next = st.next, st.cur
	st.x = count
	st.res.Rounds = t
	st.res.FinalCount = st.x
	if st.x == p.trap {
		st.res.HitWrongConsensus = true
	}
	if cfg.Record != nil {
		cfg.Record(t, st.x)
	}
	if cfg.Probe != nil {
		if p.shards > 1 {
			for s, w := range st.workers {
				cfg.Probe.ShardRound(s, w.sampled)
			}
		}
		probeRound(cfg.Probe, p.faults, t, cfg.Z, src, st.x, roundSampled)
	}
	if st.x == p.target && p.absorbing && t >= p.horizon {
		st.res.Converged = true
		return true
	}
	return false
}

// runAgentsPacked is the bit-packed body of RunAgents, serial for resolved
// shards == 1 and sharded otherwise. Both are deterministic in
// (seed, Config, Shards) and draw from the same per-round distribution
// as the unpacked bodies.
func runAgentsPacked(cfg Config, requestedShards int, g *rng.RNG) (Result, error) {
	p := newPackedParams(cfg, requestedShards)
	st := p.newState(g)
	if st.res.Converged {
		return st.res, nil
	}
	for t := int64(1); t <= p.roundCap; t++ {
		if cfg.Halt != nil && cfg.Halt() {
			st.res.Interrupted = true
			return st.res, nil
		}
		if p.round(st, t, p.stateKThr) {
			break
		}
	}
	return st.res, nil
}
