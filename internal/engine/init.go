package engine

import (
	"bitspread/internal/bias"
	"bitspread/internal/protocol"
)

// WorstCaseInit returns the all-wrong initial count for correct opinion z:
// every non-source agent holds 1-z, so only the source is right. This is
// the canonical adversarial start for upper-bound experiments (Theorem 2).
func WorstCaseInit(n int64, z int) int64 {
	if z == 1 {
		return 1 // only the source holds 1
	}
	return n - 1
}

// BalancedInit returns the count closest to n/2 that is feasible for z.
func BalancedInit(n int64, z int) int64 {
	x := n / 2
	lo, hi := int64(z), n-1+int64(z)
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// AdversarialConfig builds the slow-convergence instance that the proof of
// Theorem 12 constructs for the given rule: it analyses the rule's bias
// polynomial, picks the adversarial correct opinion z and starting
// fraction X₀/n prescribed by the applicable proof case (Lemma 11,
// Figure 2 or Figure 3), and returns the ready-to-run Config together with
// the derived constants.
func AdversarialConfig(r *protocol.Rule, n int64, maxRounds int64) (Config, bias.Constants) {
	a := bias.For(r)
	c, _ := a.ProofConstants()
	x0 := int64(c.X0Frac * float64(n))
	lo, hi := int64(c.Z), n-1+int64(c.Z)
	if x0 < lo {
		x0 = lo
	}
	if x0 > hi {
		x0 = hi
	}
	return Config{
		N:         n,
		Rule:      r,
		Z:         c.Z,
		X0:        x0,
		MaxRounds: maxRounds,
	}, c
}
