// Package engine simulates the bit-dissemination process of Section 1.1 in
// both activation models:
//
//   - the parallel setting (all non-source agents update simultaneously each
//     round), via an exact O(1)-per-round count-level engine and a literal
//     O(nℓ)-per-round agent-level engine used to cross-validate it;
//   - the sequential setting (one uniformly random non-source agent per
//     activation), the birth–death regime of [14].
//
// The count engine exploits the paper's observation that the configuration
// is fully described by (z, X_t): conditioned on X_t = x, every non-source
// agent updates independently with the probabilities of Eq. 4, so
//
//	X_{t+1} = z + Binomial(m₁, P₁(x/n)) + Binomial(m₀, P₀(x/n)),
//
// where m₁, m₀ count the non-source agents currently holding 1 and 0. This
// is exact in distribution and makes populations of 10⁸ agents cheap.
package engine

import (
	"errors"
	"fmt"
	"math"

	"bitspread/internal/protocol"
)

// Sentinel configuration errors.
var (
	// ErrPopulation is returned when the population size is less than 2
	// (one source plus at least one non-source agent).
	ErrPopulation = errors.New("engine: population must be at least 2")
	// ErrOpinion is returned when the correct opinion is not 0 or 1.
	ErrOpinion = errors.New("engine: correct opinion must be 0 or 1")
	// ErrInitial is returned when the initial one-count is inconsistent
	// with the source's opinion (the source always holds z, so X₀ must lie
	// in [z, n-1+z]).
	ErrInitial = errors.New("engine: initial count inconsistent with source opinion")
	// ErrNoRule is returned when no update rule is configured.
	ErrNoRule = errors.New("engine: rule must not be nil")
)

// Config describes one bit-dissemination instance.
type Config struct {
	// N is the total number of agents, including the source. Must be >= 2.
	N int64
	// Rule is the memory-less update rule every non-source agent runs.
	Rule *protocol.Rule
	// Z is the correct opinion, held by the source at all times.
	Z int
	// X0 is the initial number of agents (source included) with opinion 1.
	// The adversary chooses it; see the Init helpers.
	X0 int64
	// MaxRounds caps the simulation length in parallel rounds. Zero means
	// DefaultMaxRounds(N).
	MaxRounds int64
	// Record, if non-nil, is invoked after every parallel round with the
	// round index (1-based) and the new one-count. The sequential engine
	// invokes it once per parallel round (n activations), plus once more
	// for the final partial round when convergence lands mid-round, so the
	// trajectory always ends at the terminal count.
	Record func(round, count int64)
	// Probe, if non-nil, receives structured per-round events (one-count,
	// activation counts, fault applications, shard load); see Probe. Unlike
	// Record it must be safe for concurrent use, so the sim layer shares
	// one probe across replicas. Probes never affect the run: Results are
	// byte-identical with and without one.
	Probe Probe
	// Faults, if non-nil and non-empty, injects the schedule's mid-run
	// perturbations at round boundaries (see internal/fault). A nil or
	// empty Perturber leaves every engine byte-identical to the unhooked
	// code path: same stream consumption, same Result.
	Faults Perturber
	// Halt, if non-nil, is polled at round boundaries; once it returns
	// true the run stops and reports the partial Result with Interrupted
	// set. It must be safe for concurrent use (replicas share it) and
	// must not consume randomness.
	Halt func() bool
}

// DefaultMaxRounds returns the default simulation cap, 64·n·ln(n) + 1024
// parallel rounds: comfortably above the Voter's O(n log n) convergence
// (Theorem 2), so a valid protocol that can converge will.
func DefaultMaxRounds(n int64) int64 {
	if n < 2 {
		return 1024
	}
	return int64(64*float64(n)*math.Log(float64(n))) + 1024
}

// Validate reports the first configuration error without running anything;
// the sim layer uses it to fail a whole task fast instead of once per
// replica.
func (c *Config) Validate() error { return c.validate() }

// validate normalizes cfg and reports the first configuration error.
func (c *Config) validate() error {
	if c.N < 2 {
		return fmt.Errorf("%w (N=%d)", ErrPopulation, c.N)
	}
	if c.Rule == nil {
		return ErrNoRule
	}
	if c.Z != 0 && c.Z != 1 {
		return fmt.Errorf("%w (z=%d)", ErrOpinion, c.Z)
	}
	lo, hi := int64(c.Z), c.N-1+int64(c.Z)
	if c.X0 < lo || c.X0 > hi {
		return fmt.Errorf("%w (X0=%d, valid range [%d,%d])", ErrInitial, c.X0, lo, hi)
	}
	return nil
}

// maxRounds resolves the round cap.
func (c *Config) maxRounds() int64 {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return DefaultMaxRounds(c.N)
}

// Result reports the outcome of a run.
type Result struct {
	// Converged is true when the correct consensus X = n·z was reached and
	// the consensus is absorbing under the rule (Proposition 3 holds), so
	// the hitting time equals the paper's convergence time τ.
	Converged bool
	// Rounds is the first parallel round at which the correct consensus
	// held (0 if already at X₀), or the number of rounds executed when the
	// run did not converge.
	Rounds int64
	// Activations is the number of individual agent updates actually
	// performed: activations in which the agent drew its ℓ samples and
	// redrew its opinion. Stubborn-pinned agents and agents whose update
	// a fault schedule omitted perform no sampling and are not counted.
	// Fault-free, every parallel round contributes n-1 and every
	// sequential activation contributes 1, so the historical
	// Rounds·(n-1) (resp. activation-count) reading still holds there.
	Activations int64
	// FinalCount is the one-count when the run stopped.
	FinalCount int64
	// HitWrongConsensus is true if the run ever reached the all-wrong
	// configuration (every non-source agent holding 1-z); diagnostic for
	// rules like Majority that trap there.
	HitWrongConsensus bool
	// Interrupted is true when the run was stopped by Config.Halt before
	// reaching consensus or its round cap; the other fields then describe
	// the partial trajectory, not a completed measurement.
	Interrupted bool
	// Shards records how many independent random streams drove the run:
	// the effective AgentOptions.Shards for the agent engine, 0 for the
	// single-stream count-level and sequential engines. Together with the
	// seed it identifies the exact realization, since sharded runs are
	// bit-reproducible only for the same (seed, shards) pair.
	Shards int
}

// consensusTarget returns the absorbing correct-consensus count n·z.
func consensusTarget(n int64, z int) int64 {
	if z == 1 {
		return n
	}
	return 0
}

// wrongTrap returns the all-wrong count: every non-source agent holds 1-z.
func wrongTrap(n int64, z int) int64 {
	if z == 1 {
		return 1 // only the source holds 1
	}
	return n - 1
}
