package engine

import (
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// SequentialStep returns the next one-count after a single sequential
// activation from count x: one non-source agent chosen uniformly at random
// resamples and updates. The count moves by at most one, which is why the
// sequential process is a birth–death chain for every protocol — the
// structural fact behind the Ω(n) lower bound of [14].
func SequentialStep(r *protocol.Rule, n int64, z int, x int64, g *rng.RNG) int64 {
	p := float64(x) / float64(n)
	m1 := float64(x - int64(z))       // non-source agents holding 1
	m0 := float64(n - x - int64(1-z)) // non-source agents holding 0
	nonSource := float64(n - 1)

	u := g.Float64()
	// The activated agent holds 1 with probability m1/(n-1); it then drops
	// to 0 with probability 1-P₁(p). Otherwise it holds 0 and rises with
	// probability P₀(p).
	pDown := (m1 / nonSource) * (1 - r.AdoptProb(1, p))
	pUp := (m0 / nonSource) * r.AdoptProb(0, p)
	switch {
	case u < pDown:
		return x - 1
	case u < pDown+pUp:
		return x + 1
	default:
		return x
	}
}

// RunSequential simulates the sequential setting. The round cap of cfg is
// interpreted in parallel rounds: one parallel round is n activations, so
// the engine performs up to maxRounds·n activations. Result.Rounds reports
// parallel rounds (rounded up) for apples-to-apples comparison with the
// parallel engine, per the paper's convention. Fault boundaries fire every
// n activations — the sequential image of a parallel round boundary.
func RunSequential(cfg Config, g *rng.RNG) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	absorbing := cfg.Rule.CheckProp3() == nil
	target := consensusTarget(cfg.N, cfg.Z)
	trap := wrongTrap(cfg.N, cfg.Z)
	maxActivations := cfg.maxRounds() * cfg.N
	faults := cfg.perturber()
	horizon := faultHorizon(faults)

	x := cfg.X0
	src := cfg.Z
	res := Result{FinalCount: x}
	if x == target && absorbing && horizon == 0 {
		res.Converged = true
		return res, nil
	}
	var roundSampled int64
	for a := int64(1); a <= maxActivations; a++ {
		t := (a-1)/cfg.N + 1 // current parallel round
		if a%cfg.N == 1 {
			roundSampled = 0
			if cfg.Halt != nil && cfg.Halt() {
				res.Interrupted = true
				return res, nil
			}
			if faults != nil {
				x, src = faultBoundaryCount(faults, t, cfg.N, cfg.Z, src, x, g)
			}
		}
		if faults != nil {
			var did bool
			x, did = sequentialStepFaulty(cfg.Rule, faults, t, cfg.N, src, x, g)
			if did {
				res.Activations++
				roundSampled++
			}
		} else {
			x = SequentialStep(cfg.Rule, cfg.N, cfg.Z, x, g)
			res.Activations++
			roundSampled++
		}
		res.FinalCount = x
		if x == trap {
			res.HitWrongConsensus = true
		}
		if a%cfg.N == 0 {
			if cfg.Record != nil {
				cfg.Record(t, x)
			}
			probeRound(cfg.Probe, faults, t, cfg.Z, src, x, roundSampled)
		}
		if x == target && absorbing && t >= horizon {
			res.Converged = true
			res.Rounds = (a + cfg.N - 1) / cfg.N
			if a%cfg.N != 0 {
				// Mid-round convergence: the run stops before the n-th
				// activation, so the boundary hook above would never see the
				// terminal count. Emit the partial round so trajectory taps
				// end at consensus instead of one round early.
				if cfg.Record != nil {
					cfg.Record(t, x)
				}
				probeRound(cfg.Probe, faults, t, cfg.Z, src, x, roundSampled)
			}
			return res, nil
		}
	}
	res.Rounds = cfg.maxRounds()
	return res, nil
}
