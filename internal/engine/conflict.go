package engine

import (
	"errors"
	"fmt"

	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// ErrNoSources is returned when a conflict run has no source agents.
var ErrNoSources = errors.New("engine: conflict run needs at least one source")

// ConflictConfig describes the majority-bit-dissemination variant of
// §1.3: multiple stubborn sources with conflicting opinions. Sources1
// agents are pinned to opinion 1 and Sources0 to opinion 0; everyone else
// runs the rule. With both counts positive no consensus is absorbing, so
// the process cannot stabilize — the impossibility shown for passive
// communication in [7], which experiment X7 demonstrates quantitatively.
type ConflictConfig struct {
	// N is the total number of agents, including all sources.
	N int64
	// Rule is the memory-less update rule of the non-source agents.
	Rule *protocol.Rule
	// Sources1 and Sources0 are the stubborn agent counts for each opinion.
	Sources1, Sources0 int64
	// X0 is the initial one-count, sources included.
	X0 int64
	// Rounds is the number of rounds to run (the process has no absorbing
	// state to stop at when both source counts are positive).
	Rounds int64
	// Record, if non-nil, receives (round, count) after every round.
	Record func(round, count int64)
}

func (c *ConflictConfig) validate() error {
	if c.Rule == nil {
		return ErrNoRule
	}
	if c.Sources1 < 0 || c.Sources0 < 0 || c.Sources1+c.Sources0 == 0 {
		return fmt.Errorf("%w (s1=%d, s0=%d)", ErrNoSources, c.Sources1, c.Sources0)
	}
	if c.N < c.Sources1+c.Sources0+1 {
		return fmt.Errorf("%w (N=%d with %d sources)", ErrPopulation, c.N, c.Sources1+c.Sources0)
	}
	if c.X0 < c.Sources1 || c.X0 > c.N-c.Sources0 {
		return fmt.Errorf("%w (X0=%d, valid range [%d,%d])",
			ErrInitial, c.X0, c.Sources1, c.N-c.Sources0)
	}
	if c.Rounds < 1 {
		return fmt.Errorf("engine: conflict run needs Rounds >= 1, got %d", c.Rounds)
	}
	return nil
}

// StepConflict advances the count chain one round with s1 stubborn ones
// and s0 stubborn zeros: X' = s1 + Bin(x-s1, P1(x/n)) + Bin(n-x-s0, P0(x/n)).
func StepConflict(r *protocol.Rule, n, s1, s0 int64, x int64, g *rng.RNG) int64 {
	p := float64(x) / float64(n)
	return s1 +
		g.Binomial(x-s1, r.AdoptProb(1, p)) +
		g.Binomial(n-x-s0, r.AdoptProb(0, p))
}

// ConflictResult reports a conflict run.
type ConflictResult struct {
	// Rounds is the number of rounds executed.
	Rounds int64
	// FinalCount is the one-count at the end.
	FinalCount int64
	// MeanFraction is the time-average of X_t/n over the run. For the
	// Voter with zealots its stationary value is s1/(s1+s0) (the classic
	// zealot voter model), which X7 checks.
	MeanFraction float64
	// ConsensusVisits counts the rounds spent in either full consensus —
	// necessarily 0 whenever both source counts are positive.
	ConsensusVisits int64
}

// RunConflict simulates the conflicting-sources process for the
// configured number of rounds.
func RunConflict(cfg ConflictConfig, g *rng.RNG) (ConflictResult, error) {
	if err := cfg.validate(); err != nil {
		return ConflictResult{}, err
	}
	x := cfg.X0
	var res ConflictResult
	var fracSum float64
	for t := int64(1); t <= cfg.Rounds; t++ {
		x = StepConflict(cfg.Rule, cfg.N, cfg.Sources1, cfg.Sources0, x, g)
		fracSum += float64(x) / float64(cfg.N)
		if x == 0 || x == cfg.N {
			res.ConsensusVisits++
		}
		if cfg.Record != nil {
			cfg.Record(t, x)
		}
	}
	res.Rounds = cfg.Rounds
	res.FinalCount = x
	res.MeanFraction = fracSum / float64(cfg.Rounds)
	return res, nil
}
