package engine

import (
	"math"
	"testing"

	"bitspread/internal/dist"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// TestStepCountBatchMatchesStepCount: with the same generators, the batched
// step must reproduce StepCount exactly — value and stream consumption —
// across rules and sample sizes, including the cached (revisited-count)
// path.
func TestStepCountBatchMatchesStepCount(t *testing.T) {
	const n, z = 500, 1
	bigEll := protocol.SqrtNLogN(1).Of(n)
	for _, r := range []*protocol.Rule{
		protocol.Voter(1), protocol.Minority(3), protocol.Minority(bigEll), protocol.TwoChoice(),
	} {
		cache := protocol.NewAdoptCache(r, n)
		const reps = 64
		xs := make([]int64, reps)
		gs := make([]*rng.RNG, reps)
		ref := make([]*rng.RNG, reps)
		for i := range xs {
			xs[i] = int64(1 + i*7%(n-1))
			gs[i] = rng.New(uint64(1000 + i))
			ref[i] = rng.New(uint64(1000 + i))
		}
		want := make([]int64, reps)
		for i := range want {
			want[i] = StepCount(r, n, z, xs[i], ref[i])
		}
		StepCountBatch(cache, z, xs, gs)
		for i := range xs {
			if xs[i] != want[i] {
				t.Errorf("%v replica %d: batch %d vs StepCount %d", r, i, xs[i], want[i])
			}
			if gs[i].Uint64() != ref[i].Uint64() {
				t.Errorf("%v replica %d: stream consumption diverged", r, i)
			}
		}
		if hits, misses := cache.Stats(); hits+misses != reps || misses == 0 {
			t.Errorf("%v: cache accounting hits=%d misses=%d, want %d lookups", r, hits, misses, reps)
		}
	}
}

// TestRunParallelReplicasMatchesRunParallel: every replica of the batched
// engine must equal the standalone RunParallel run with the same seed,
// field for field.
func TestRunParallelReplicasMatchesRunParallel(t *testing.T) {
	for _, r := range []*protocol.Rule{protocol.Voter(1), protocol.Minority(3)} {
		cfg := Config{N: 256, Rule: r, Z: 1, X0: WorstCaseInit(256, 1), MaxRounds: 4000}
		seeds := make([]uint64, 32)
		master := rng.New(99)
		for i := range seeds {
			seeds[i] = master.Uint64()
		}
		batch, err := RunParallelReplicas(cfg, seeds)
		if err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			solo, err := RunParallel(cfg, rng.New(seed))
			if err != nil {
				t.Fatal(err)
			}
			if batch[i] != solo {
				t.Errorf("%v replica %d: batch %+v vs solo %+v", r, i, batch[i], solo)
			}
		}
	}
}

// TestRunParallelReplicasEdgeCases: immediate convergence, Record
// rejection, and invalid configs.
func TestRunParallelReplicasEdgeCases(t *testing.T) {
	done := Config{N: 10, Rule: protocol.Voter(1), Z: 1, X0: 10}
	res, err := RunParallelReplicas(done, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !r.Converged || r.Rounds != 0 {
			t.Errorf("replica %d: want immediate convergence, got %+v", i, r)
		}
	}

	rec := done
	rec.Record = func(_, _ int64) {}
	if _, err := RunParallelReplicas(rec, []uint64{1}); err == nil {
		t.Error("Record hook accepted")
	}

	if _, err := RunParallelReplicas(Config{N: 1, Rule: protocol.Voter(1), Z: 1, X0: 1}, []uint64{1}); err == nil {
		t.Error("invalid config accepted")
	}

	if res, err := RunParallelReplicas(done, nil); err != nil || len(res) != 0 {
		t.Errorf("empty seed list: res=%v err=%v", res, err)
	}
}

// TestStepCountBatchChiSquare cross-validates the batched step against the
// exact one-round distribution: X' = z + Bin(m₁, P₁) + Bin(m₀, P₀),
// whose pmf is computed by direct convolution. A Pearson test on many
// batched samples must not reject.
func TestStepCountBatchChiSquare(t *testing.T) {
	const (
		n    = 40
		x0   = 15
		z    = 1
		reps = 20000
	)
	r := protocol.Minority(3)
	p := float64(x0) / n
	p1, p0 := r.AdoptProb(1, p), r.AdoptProb(0, p)
	m1, m0 := int64(x0-z), int64(n-x0-(1-z))

	binPmf := func(m int64, q float64) []float64 {
		pmf := make([]float64, m+1)
		for k := int64(0); k <= m; k++ {
			logP := dist.LogChoose(m, k)
			if q > 0 {
				logP += float64(k) * math.Log(q)
			} else if k > 0 {
				continue
			}
			if q < 1 {
				logP += float64(m-k) * math.Log1p(-q)
			} else if k < m {
				continue
			}
			pmf[k] = math.Exp(logP)
		}
		return pmf
	}
	pmf1, pmf0 := binPmf(m1, p1), binPmf(m0, p0)
	expected := make([]float64, n+1)
	for a := range pmf1 {
		for b := range pmf0 {
			expected[z+a+b] += pmf1[a] * pmf0[b] * reps
		}
	}

	cache := protocol.NewAdoptCache(r, n)
	xs := make([]int64, reps)
	gs := make([]*rng.RNG, reps)
	master := rng.New(777)
	for i := range xs {
		xs[i] = x0
		gs[i] = rng.New(master.Uint64())
	}
	StepCountBatch(cache, z, xs, gs)

	observed := make([]int64, n+1)
	for _, x := range xs {
		if x < 0 || x > n {
			t.Fatalf("count %d out of range", x)
		}
		observed[x]++
	}
	stat, dof, err := dist.ChiSquareStat(observed, expected, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pval := dist.ChiSquareTail(stat, dof); pval < 1e-3 {
		t.Errorf("chi-square rejects the batched step: stat=%v dof=%d p=%v", stat, dof, pval)
	}
}
