package engine

// Test-only exports. The chunked engine's chunk capacity is package state
// solely so tests can shrink it and exercise multi-chunk runs at
// testing-sized n; production code never writes it.

// SetChunkShiftForTest overrides the chunked engine's chunk capacity
// (log₂ agents per chunk, minimum 6 — a chunk must hold a whole word) and
// returns a restore func. Callers must defer the restore; the override is
// process-global, so tests using it cannot run in parallel with other
// chunked-engine tests.
func SetChunkShiftForTest(shift uint) (restore func()) {
	if shift < 6 {
		panic("SetChunkShiftForTest: shift must be at least 6")
	}
	old := chunkShift
	chunkShift = shift
	return func() { chunkShift = old }
}

// PackedWordBoundsForTest exposes the shard partition of nWords bitset
// words for alignment tests.
func PackedWordBoundsForTest(nWords, shards int) []int {
	return packedWordBounds(nWords, shards)
}
