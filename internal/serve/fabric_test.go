package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"bitspread/internal/experiments"
	"bitspread/internal/fabric"
	"bitspread/internal/sim"
)

// fakeClock is a hand-advanced time source for lease-expiry tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}
func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func postLease(t *testing.T, ts *httptest.Server, worker string) (int, LeaseResponse) {
	t.Helper()
	body, _ := json.Marshal(LeaseRequest{Worker: worker})
	resp, err := http.Post(ts.URL+"/v1/lease", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lr LeaseResponse
	_ = json.NewDecoder(resp.Body).Decode(&lr)
	return resp.StatusCode, lr
}

func postComplete(t *testing.T, ts *httptest.Server, leaseID string, shard []byte) (int, CompleteResponse, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/lease/"+leaseID+"/complete", "application/x-ndjson", bytes.NewReader(shard))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var cr CompleteResponse
	_ = json.Unmarshal(raw, &cr)
	return resp.StatusCode, cr, string(raw)
}

func runShardBytes(t *testing.T, spec fabric.SweepSpec, shard fabric.Shard) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "shard.jsonl")
	if _, err := fabric.RunShard(context.Background(), spec, shard, path, false, t.Logf); err != nil {
		t.Fatalf("shard %v: %v", shard, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// referenceJournalBytes is the single-process single-worker journal the
// coordinator's merge must reproduce byte for byte.
func referenceJournalBytes(t *testing.T, spec fabric.SweepSpec) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ref.jsonl")
	j, err := sim.OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	exps, err := spec.Experiments()
	if err != nil {
		t.Fatal(err)
	}
	opts := experiments.Options{Seed: spec.Seed, Workers: 1, Quick: spec.Quick, Journal: j}
	for _, e := range exps {
		if _, err := e.Run(opts); err != nil {
			t.Fatalf("reference %s: %v", e.ID, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestFabricEndpointsDisabled(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, probe := range []struct{ method, path string }{
		{"POST", "/v1/lease"},
		{"POST", "/v1/lease/p0.g1/renew"},
		{"POST", "/v1/lease/p0.g1/complete"},
		{"GET", "/v1/fabric/status"},
		{"GET", "/v1/fabric/journal"},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, strings.NewReader("{}"))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s without fabric: %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}

func TestFabricLeaseValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Fabric: &FabricOptions{Exps: []string{"T2"}, Seed: 7, Quick: true}})
	if code, _ := postLease(t, ts, ""); code != http.StatusBadRequest {
		t.Errorf("nameless worker: %d, want 400", code)
	}
	resp, err := http.Post(ts.URL+"/v1/lease", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: %d, want 400", resp.StatusCode)
	}
	if _, err := New(Options{Fabric: &FabricOptions{Exps: []string{"nope"}}}); err == nil {
		t.Error("unknown experiment in FabricOptions accepted")
	}
}

// The full coordinator happy path: two workers lease the two partitions,
// upload their shards, and the merged journal is byte-identical to the
// single-process reference.
func TestFabricCoordinatorByteIdentity(t *testing.T) {
	fopts := &FabricOptions{Exps: []string{"T2", "F1"}, Seed: 7, Quick: true, Partitions: 2}
	_, ts := newTestServer(t, Options{Fabric: fopts})

	want := referenceJournalBytes(t, fopts.spec())

	leases := map[int]string{}
	for _, worker := range []string{"w1", "w2"} {
		code, lr := postLease(t, ts, worker)
		if code != http.StatusOK || lr.Status != "lease" || lr.Spec == nil {
			t.Fatalf("%s lease: %d %+v", worker, code, lr)
		}
		if lr.Partitions != 2 {
			t.Fatalf("lease advertises %d partitions, want 2", lr.Partitions)
		}
		leases[lr.Partition] = lr.LeaseID
	}
	if len(leases) != 2 {
		t.Fatalf("workers got %d distinct partitions, want 2", len(leases))
	}

	// Journal is 409 while shards are outstanding.
	resp, err := http.Get(ts.URL + "/v1/fabric/journal")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("journal before completion: %d, want 409", resp.StatusCode)
	}

	for part, leaseID := range leases {
		spec := fopts.spec()
		shard := runShardBytes(t, spec, fabric.Shard{Index: part, Count: 2})
		code, cr, raw := postComplete(t, ts, leaseID, shard)
		if code != http.StatusOK || cr.Duplicate || cr.Partition != part {
			t.Fatalf("complete %s: %d %+v %s", leaseID, code, cr, raw)
		}
	}

	// Status reports drained.
	resp, err = http.Get(ts.URL + "/v1/fabric/status")
	if err != nil {
		t.Fatal(err)
	}
	var st FabricStatus
	_ = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if !st.Drained || st.Board.Done != 2 {
		t.Fatalf("status %+v, want drained with 2 done", st)
	}

	// A late worker is told the sweep is done.
	if _, lr := postLease(t, ts, "w3"); lr.Status != "done" {
		t.Fatalf("post-drain lease: %+v, want done", lr)
	}

	// The merged journal is the reference, byte for byte.
	resp, err = http.Get(ts.URL + "/v1/fabric/journal")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("journal: %d", resp.StatusCode)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("coordinator merge is not byte-identical to the single-process reference")
	}
}

// An expired lease is re-issued to a survivor; the zombie's renew gets
// 410; duplicate completions are verified and acknowledged.
func TestFabricLeaseExpiryAndDuplicate(t *testing.T) {
	clk := newFakeClock()
	fopts := &FabricOptions{Exps: []string{"T2"}, Seed: 7, Quick: true, Partitions: 1, LeaseTTL: 10 * time.Second}
	_, ts := newTestServer(t, Options{Fabric: fopts, now: clk.now})

	_, dead := postLease(t, ts, "w1")
	if dead.Status != "lease" {
		t.Fatalf("first lease: %+v", dead)
	}

	// Renewal keeps it alive while the worker heartbeats.
	resp, err := http.Post(ts.URL+"/v1/lease/"+dead.LeaseID+"/renew", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("renew live lease: %d", resp.StatusCode)
	}

	// Worker dies: no renewals past the TTL; survivor gets the re-issue.
	clk.advance(11 * time.Second)
	_, release := postLease(t, ts, "w2")
	if release.Status != "lease" || release.Partition != dead.Partition {
		t.Fatalf("re-issue: %+v", release)
	}
	resp, err = http.Post(ts.URL+"/v1/lease/"+dead.LeaseID+"/renew", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("zombie renew: %d, want 410", resp.StatusCode)
	}

	shard := runShardBytes(t, fopts.spec(), fabric.Shard{Index: 0, Count: 1})
	if code, cr, raw := postComplete(t, ts, release.LeaseID, shard); code != http.StatusOK || cr.Duplicate {
		t.Fatalf("survivor complete: %d %+v %s", code, cr, raw)
	}
	// The zombie resurfaces and uploads the same partition: acknowledged
	// as a verified duplicate, not an error.
	if code, cr, _ := postComplete(t, ts, dead.LeaseID, shard); code != http.StatusOK || !cr.Duplicate {
		t.Fatalf("zombie duplicate complete: %d %+v", code, cr)
	}
	// A conflicting duplicate (different bytes for the same task space) is
	// rejected.
	conflict := bytes.Replace(shard, []byte(`"Rounds":`), []byte(`"Rounds":9`), 1)
	if code, _, _ := postComplete(t, ts, dead.LeaseID, conflict); code != http.StatusConflict {
		t.Fatalf("conflicting duplicate: %d, want 409", code)
	}

	var st FabricStatus
	resp, err = http.Get(ts.URL + "/v1/fabric/status")
	if err != nil {
		t.Fatal(err)
	}
	_ = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Board.Reissues != 1 {
		t.Fatalf("status %+v, want 1 reissue", st.Board)
	}
}

// A restarted coordinator pre-completes partitions whose shard bytes it
// already persisted, and still merges to the reference.
func TestFabricCoordinatorRestartKeepsShards(t *testing.T) {
	dir := t.TempDir()
	fopts := &FabricOptions{Exps: []string{"T2"}, Seed: 7, Quick: true, Partitions: 2}

	srv, ts := newTestServer(t, Options{DataDir: dir, Fabric: fopts})
	_, l := postLease(t, ts, "w1")
	shard0 := runShardBytes(t, fopts.spec(), fabric.Shard{Index: l.Partition, Count: 2})
	if code, _, raw := postComplete(t, ts, l.LeaseID, shard0); code != http.StatusOK {
		t.Fatalf("complete: %d %s", code, raw)
	}
	done0 := l.Partition
	ts.Close()
	srv.Close()

	_, ts2 := newTestServer(t, Options{DataDir: dir, Fabric: fopts})
	var st FabricStatus
	resp, err := http.Get(ts2.URL + "/v1/fabric/status")
	if err != nil {
		t.Fatal(err)
	}
	_ = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if st.Board.Done != 1 {
		t.Fatalf("restarted board %+v, want 1 pre-completed partition", st.Board)
	}

	_, l2 := postLease(t, ts2, "w2")
	if l2.Status != "lease" || l2.Partition == done0 {
		t.Fatalf("post-restart lease %+v, want the other partition", l2)
	}
	shard1 := runShardBytes(t, fopts.spec(), fabric.Shard{Index: l2.Partition, Count: 2})
	if code, _, raw := postComplete(t, ts2, l2.LeaseID, shard1); code != http.StatusOK {
		t.Fatalf("complete after restart: %d %s", code, raw)
	}

	resp, err = http.Get(ts2.URL + "/v1/fabric/journal")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if want := referenceJournalBytes(t, fopts.spec()); !bytes.Equal(got, want) {
		t.Fatal("post-restart merge differs from reference")
	}
}
