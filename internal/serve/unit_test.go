package serve

import (
	"bytes"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestHubDropsOnSlowSubscriberAndCounts(t *testing.T) {
	h := newHub(nil)
	slow := h.subscribe(1)
	fast := h.subscribe(8)
	for i := int64(1); i <= 4; i++ {
		h.publish(Event{Type: "round", Round: i})
	}
	if got := slow.dropped.Load(); got != 3 {
		t.Fatalf("slow subscriber dropped %d, want 3", got)
	}
	if got := fast.dropped.Load(); got != 0 {
		t.Fatalf("fast subscriber dropped %d, want 0", got)
	}
	if got := len(fast.ch); got != 4 {
		t.Fatalf("fast subscriber buffered %d, want 4", got)
	}
	h.close(Event{Type: "job_done", State: "done"})
	if _, open := <-slow.ch; !open {
		t.Fatal("slow subscriber lost its one buffered event")
	}
	if _, open := <-slow.ch; open {
		t.Fatal("channel not closed after hub close")
	}
	if fe := h.finalEvent(); fe.State != "done" {
		t.Fatalf("finalEvent = %+v", fe)
	}
}

func TestHubLateSubscriberGetsClosedChannel(t *testing.T) {
	h := newHub(nil)
	h.close(Event{Type: "job_done", State: "failed"})
	sub := h.subscribe(4)
	if _, open := <-sub.ch; open {
		t.Fatal("late subscription channel should be closed immediately")
	}
	if fe := h.finalEvent(); fe.State != "failed" {
		t.Fatalf("finalEvent = %+v", fe)
	}
	// Publishing after close must be a no-op, not a panic.
	h.publish(Event{Type: "round"})
}

func TestJobLogTornFinalLineDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	spec := testSpec(1)
	lg, entries, err := openJobLog(path, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh log has %d entries", len(entries))
	}
	if err := lg.append(jobLogEntry{Ev: "submit", ID: "aa", Spec: &spec}); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := lg.close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Simulate a crash mid-append: a torn, unparsable final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := f.WriteString(`{"ev":"end","id":"aa","sta`); err != nil {
		t.Fatalf("write torn line: %v", err)
	}
	f.Close()

	var logged []string
	lg2, entries, err := openJobLog(path, func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	if err != nil {
		t.Fatalf("reopen log: %v", err)
	}
	defer lg2.close()
	if len(entries) != 1 || entries[0].Ev != "submit" || entries[0].ID != "aa" {
		t.Fatalf("entries = %+v, want the one intact submit", entries)
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "truncated final line") {
		t.Fatalf("diagnostics = %q, want one truncation report", logged)
	}
}

func TestJobLogMidFileCorruptionIsAnError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.jsonl")
	content := `{"ev":"submit","id":"aa"}` + "\n" + `garbage` + "\n" + `{"ev":"end","id":"aa","state":"done"}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, _, err := openJobLog(path, nil); err == nil {
		t.Fatal("mid-file corruption must not be silently dropped")
	}
}

func TestAdmissionRefillAndBurst(t *testing.T) {
	clock := time.Unix(1000, 0)
	a := newAdmission(2, 3, func() time.Time { return clock })

	for i := 0; i < 3; i++ {
		if ok, _ := a.allow("t"); !ok {
			t.Fatalf("burst token %d denied", i)
		}
	}
	ok, ra := a.allow("t")
	if ok {
		t.Fatal("empty bucket allowed a submission")
	}
	// Next token accrues in 1/rate = 500ms.
	if ra != 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want 500ms", ra)
	}

	clock = clock.Add(time.Second) // refills 2 tokens
	for i := 0; i < 2; i++ {
		if ok, _ := a.allow("t"); !ok {
			t.Fatalf("refilled token %d denied", i)
		}
	}
	if ok, _ := a.allow("t"); ok {
		t.Fatal("over-refill: bucket should be empty again")
	}

	// Refill never exceeds burst.
	clock = clock.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if ok, _ := a.allow("t"); !ok {
			t.Fatalf("post-idle token %d denied", i)
		}
	}
	if ok, _ := a.allow("t"); ok {
		t.Fatal("bucket exceeded burst after long idle")
	}
}

func TestAdmissionDisabledAndTenantBound(t *testing.T) {
	if ok, _ := newAdmission(0, 1, nil).allow("anyone"); !ok {
		t.Fatal("rate 0 must disable quotas")
	}

	clock := time.Unix(0, 0)
	a := newAdmission(1, 1, func() time.Time { return clock })
	// A flood of unique tenants must not grow the table without bound.
	for i := 0; i < maxTenantBuckets+100; i++ {
		clock = clock.Add(time.Millisecond)
		a.allow(fmt.Sprintf("tenant-%d", i))
	}
	a.mu.Lock()
	n := len(a.bkts)
	a.mu.Unlock()
	if n > maxTenantBuckets {
		t.Fatalf("bucket table grew to %d, bound is %d", n, maxTenantBuckets)
	}
}

func TestResultCacheAtomicPutGet(t *testing.T) {
	c, err := newResultCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatalf("newResultCache: %v", err)
	}
	if _, ok := c.get("aa"); ok {
		t.Fatal("get on empty cache")
	}
	payload := []byte(`{"id":"aa"}` + "\n")
	if err := c.put("aa", payload); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, ok := c.get("aa")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("get = %q, %v", got, ok)
	}
	// Overwrite is atomic too: same ID, new payload.
	if err := c.put("aa", []byte("v2\n")); err != nil {
		t.Fatalf("re-put: %v", err)
	}
	if got, _ := c.get("aa"); !bytes.Equal(got, []byte("v2\n")) {
		t.Fatalf("after re-put: %q", got)
	}
	// No temp-file litter after successful publishes.
	names, err := os.ReadDir(c.dir)
	if err != nil {
		t.Fatalf("readdir: %v", err)
	}
	for _, e := range names {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}

	// A nil cache (memory-only server) is inert.
	var nilCache *resultCache
	if err := nilCache.put("x", payload); err != nil {
		t.Fatalf("nil put: %v", err)
	}
	if _, ok := nilCache.get("x"); ok {
		t.Fatal("nil cache returned a payload")
	}
}

func TestJobIDContentAddressing(t *testing.T) {
	spec := testSpec(1)
	spec.normalize()
	task, err := spec.buildTask(nil)
	if err != nil {
		t.Fatalf("buildTask: %v", err)
	}
	a := jobID(task, spec.Replicas)
	b := jobID(task, spec.Replicas)
	if a != b {
		t.Fatalf("same job hashed to %s and %s", a, b)
	}
	if c := jobID(task, spec.Replicas+1); c == a {
		t.Fatal("replica count must be part of the address")
	}
	other := testSpec(2)
	other.normalize()
	otherTask, err := other.buildTask(nil)
	if err != nil {
		t.Fatalf("buildTask: %v", err)
	}
	if c := jobID(otherTask, other.Replicas); c == a {
		t.Fatal("different seeds must address different jobs")
	}
}

func TestSpecNormalizeWorstCaseX0(t *testing.T) {
	s1 := JobSpec{N: 100, Z: 1, Rule: "voter", Seed: 1}
	s1.normalize()
	if *s1.X0 != 1 {
		t.Fatalf("z=1 worst case x0 = %d, want 1 (only the source holds 1)", *s1.X0)
	}
	s0 := JobSpec{N: 100, Z: 0, Rule: "voter", Seed: 1}
	s0.normalize()
	if *s0.X0 != 99 {
		t.Fatalf("z=0 worst case x0 = %d, want 99 (everyone but the source holds 1)", *s0.X0)
	}
	explicit := int64(40)
	s2 := JobSpec{N: 100, Z: 1, Rule: "voter", Seed: 1, X0: &explicit}
	s2.normalize()
	if *s2.X0 != 40 {
		t.Fatalf("explicit x0 overwritten to %d", *s2.X0)
	}
}

func TestTimeoutOrDefault(t *testing.T) {
	cap := 10 * time.Minute
	cases := []struct {
		in   string
		want time.Duration
		err  bool
	}{
		{"", cap, false},
		{"30s", 30 * time.Second, false},
		{"2h", cap, false}, // above the cap: clamped
		{"-5s", cap, false},
		{"soon", 0, true},
	}
	for _, c := range cases {
		sp := JobSpec{Timeout: c.in}
		got, err := sp.timeoutOrDefault(cap)
		if c.err != (err != nil) {
			t.Errorf("timeout %q: err = %v", c.in, err)
			continue
		}
		if !c.err && got != c.want {
			t.Errorf("timeout %q = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRetryAfterSecondsClamps(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "1"},
		{0.2, "1"}, // sub-second waits round up, never down to 0
		{1, "1"},
		{1.2, "2"},
		{59.5, "60"},
		{-5, "1"},
		{math.NaN(), "1"},
		{math.Inf(1), "3600"},
		{1e300, "3600"},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.in); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
