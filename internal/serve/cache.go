package serve

import (
	"fmt"
	"os"
	"path/filepath"
)

// resultCache is the content-addressed result store: one file per job ID
// under dir, written atomically (temp file + rename) so a crash can never
// leave a half-written result that a restarted daemon would serve.
// Because job IDs hash everything that determines the trajectory, a cache
// hit is exactly as good as a fresh run — byte-identical by the engines'
// determinism contract. A nil cache (no data directory) stores nothing.
type resultCache struct {
	dir string
}

// newResultCache creates the cache directory.
func newResultCache(dir string) (*resultCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: cache dir: %w", err)
	}
	return &resultCache{dir: dir}, nil
}

// path maps a job ID to its result file. IDs are lowercase hex by
// construction, so the name needs no escaping.
func (c *resultCache) path(id string) string {
	return filepath.Join(c.dir, id+".json")
}

// get returns the cached payload for id, if present.
func (c *resultCache) get(id string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	b, err := os.ReadFile(c.path(id))
	if err != nil {
		return nil, false
	}
	return b, true
}

// put stores the payload under id via temp-file-plus-rename, fsyncing the
// data before the rename so the publish is atomic and durable.
func (c *resultCache) put(id string, payload []byte) error {
	if c == nil {
		return nil
	}
	tmp, err := os.CreateTemp(c.dir, id+".tmp*")
	if err != nil {
		return fmt.Errorf("serve: cache temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close() //bitlint:errsink error-path cleanup; the write error is returned and the deferred Remove discards the temp file
		return fmt.Errorf("serve: cache write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //bitlint:errsink error-path cleanup; the sync error is returned and the deferred Remove discards the temp file
		return fmt.Errorf("serve: cache sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("serve: cache close: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(id)); err != nil {
		return fmt.Errorf("serve: cache publish: %w", err)
	}
	return nil
}
