package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bitspread/internal/fabric"
	"bitspread/internal/sim"
)

// FabricOptions turns the daemon into a sweep coordinator: it owns a
// fabric.Board over Partitions shards of the configured sweep and hands
// leases to pulling workers (`bitspreadd -pull`). Completed shard bytes
// are persisted under DataDir/fabric/ and pre-completed on restart, so a
// crashed coordinator never re-runs finished partitions.
type FabricOptions struct {
	// Exps selects the sweep's experiments (nil: all).
	Exps []string
	// Seed drives all sweep randomness.
	Seed uint64
	// Quick selects reduced experiment sizes.
	Quick bool
	// Partitions is the shard count N (default 2).
	Partitions int
	// LeaseTTL is how long a worker may go silent before its partition is
	// re-issued to a survivor (default 1m). Workers renew at a fraction
	// of this.
	LeaseTTL time.Duration
	// SimWorkers is handed through to each worker's shard run (0: the
	// worker's GOMAXPROCS). Never affects merged bytes.
	SimWorkers int
}

func (o FabricOptions) withDefaults() FabricOptions {
	if o.Partitions <= 0 {
		o.Partitions = 2
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = time.Minute
	}
	return o
}

func (o FabricOptions) spec() fabric.SweepSpec {
	return fabric.SweepSpec{Exps: o.Exps, Seed: o.Seed, Quick: o.Quick, SimWorkers: o.SimWorkers}
}

// fabricState is the coordinator: the lease board plus the uploaded shard
// bytes, both guarded by one mutex (board operations are cheap).
type fabricState struct {
	mu     sync.Mutex
	spec   fabric.SweepSpec
	board  *fabric.Board
	shards [][]byte // uploaded shard journals, indexed by partition; nil = not done
	dir    string   // persistence root, "" = memory only
	now    func() time.Time
	logf   func(string, ...any)
}

// newFabricState builds the coordinator and replays persisted shards.
func newFabricState(opts FabricOptions, dataDir string, now func() time.Time, logf func(string, ...any)) (*fabricState, error) {
	opts = opts.withDefaults()
	if _, err := opts.spec().Experiments(); err != nil {
		return nil, err
	}
	board, err := fabric.NewBoard(opts.Partitions, opts.LeaseTTL)
	if err != nil {
		return nil, err
	}
	if now == nil {
		//bitlint:wallclock lease expiry is serving policy; simulation results never read it
		now = time.Now
	}
	fs := &fabricState{
		spec:   opts.spec(),
		board:  board,
		shards: make([][]byte, opts.Partitions),
		now:    now,
		logf:   logf,
	}
	if dataDir != "" {
		fs.dir = filepath.Join(dataDir, "fabric")
		if err := os.MkdirAll(fs.dir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: fabric dir: %w", err)
		}
		for i := 0; i < opts.Partitions; i++ {
			data, err := os.ReadFile(fs.shardPath(i))
			if os.IsNotExist(err) {
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("serve: fabric shard %d: %w", i, err)
			}
			fs.shards[i] = data
			if err := board.MarkDone(i); err != nil {
				return nil, err
			}
			logf("serve: fabric: partition %d pre-completed from %s (%d bytes)", i, fs.shardPath(i), len(data))
		}
	}
	return fs, nil
}

func (f *fabricState) shardPath(i int) string {
	return filepath.Join(f.dir, fmt.Sprintf("shard-%d.jsonl", i))
}

// complete stores a partition's shard bytes. A duplicate completion (a
// stolen lease's second copy, a re-leased worker resurfacing) is verified
// merge-consistent with the stored bytes — shard files are not
// byte-ordered deterministically under parallel sim workers, but their
// entry sets are — and then dropped.
func (f *fabricState) complete(leaseID string, data []byte) (partIdx int, duplicate bool, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	part, already, err := f.board.Complete(leaseID)
	if err != nil {
		return 0, false, err
	}
	if already {
		if _, merr := sim.MergeJournals(io.Discard, []sim.MergeSource{
			{Name: "stored", Data: f.shards[part]},
			{Name: "duplicate", Data: data},
		}); merr != nil {
			return part, true, fmt.Errorf("duplicate shard %d upload conflicts with the stored copy: %w", part, merr)
		}
		return part, true, nil
	}
	// Reject garbage before marking the partition done durable: a shard
	// that cannot merge with itself would poison the final join.
	if _, merr := sim.MergeJournals(io.Discard, []sim.MergeSource{{Name: "upload", Data: data}}); merr != nil {
		// The board already flipped the partition; undo is not modelled, so
		// fail loudly — the lease generation still guards correctness
		// because the worker will retry against a done partition and hit
		// the duplicate path.
		return part, false, fmt.Errorf("shard %d upload is not a parseable journal: %w", part, merr)
	}
	f.shards[part] = data
	if f.dir != "" {
		if perr := f.persistShard(part, data); perr != nil {
			f.logf("serve: fabric: persisting shard %d: %v", part, perr)
		}
	}
	return part, false, nil
}

// persistShard publishes a shard's bytes with the same
// write-sync-close-rename ordering as resultCache.put: without the Sync
// before the Rename, a crash between the two could leave the final name
// pointing at torn bytes that a restart would replay as a done partition.
func (f *fabricState) persistShard(part int, data []byte) error {
	tmp, err := os.CreateTemp(f.dir, fmt.Sprintf("shard-%d.tmp*", part))
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close() //bitlint:errsink error-path cleanup; the write error is returned and the deferred Remove discards the temp file
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close() //bitlint:errsink error-path cleanup; the sync error is returned and the deferred Remove discards the temp file
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), f.shardPath(part))
}

// merged renders the canonical merged journal, or an error while shards
// are still outstanding.
func (f *fabricState) merged(w io.Writer) (sim.MergeStats, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.board.Drained() {
		st := f.board.Stats()
		return sim.MergeStats{}, fmt.Errorf("sweep incomplete: %d pending, %d leased of %d partitions", st.Pending, st.Leased, f.board.Count())
	}
	srcs := make([]sim.MergeSource, len(f.shards))
	for i, data := range f.shards {
		srcs[i] = sim.MergeSource{Name: fmt.Sprintf("shard-%d", i), Data: data}
	}
	return sim.MergeJournals(w, srcs)
}

// --- HTTP API ---

// LeaseRequest is the body of POST /v1/lease.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse answers lease acquisition and renewal.
type LeaseResponse struct {
	// Status is "lease", "wait" or "done".
	Status string `json:"status"`
	// LeaseID, Partition, Partitions and Spec are set when Status=="lease".
	LeaseID    string            `json:"lease_id,omitempty"`
	Partition  int               `json:"partition,omitempty"`
	Partitions int               `json:"partitions,omitempty"`
	Stolen     bool              `json:"stolen,omitempty"`
	TTLMillis  int64             `json:"ttl_ms,omitempty"`
	Spec       *fabric.SweepSpec `json:"spec,omitempty"`
	// RetryMillis hints the backoff when Status=="wait".
	RetryMillis int64 `json:"retry_ms,omitempty"`
}

// handleLease is POST /v1/lease: a worker asks for its next partition.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	if s.fabric == nil {
		writeError(w, http.StatusNotFound, "fabric coordinator not enabled")
		return
	}
	var req LeaseRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad lease request: %v", err)
		return
	}
	if req.Worker == "" {
		writeError(w, http.StatusBadRequest, "lease request needs a worker name")
		return
	}
	f := s.fabric
	f.mu.Lock()
	status, lease := f.board.Acquire(req.Worker, f.now())
	f.mu.Unlock()
	switch status {
	case fabric.Granted:
		spec := f.spec
		writeJSON(w, http.StatusOK, LeaseResponse{
			Status:     "lease",
			LeaseID:    lease.ID,
			Partition:  lease.Shard.Index,
			Partitions: lease.Shard.Count,
			Stolen:     lease.Stolen,
			TTLMillis:  f.board.TTL().Milliseconds(),
			Spec:       &spec,
		})
	case fabric.Wait:
		writeJSON(w, http.StatusOK, LeaseResponse{Status: "wait", RetryMillis: (f.board.TTL() / 4).Milliseconds()})
	default:
		writeJSON(w, http.StatusOK, LeaseResponse{Status: "done"})
	}
}

// handleLeaseRenew is POST /v1/lease/{id}/renew: a heartbeat. 410 means
// the lease was superseded and the worker should abandon the partition.
func (s *Server) handleLeaseRenew(w http.ResponseWriter, r *http.Request) {
	if s.fabric == nil {
		writeError(w, http.StatusNotFound, "fabric coordinator not enabled")
		return
	}
	id := r.PathValue("id")
	f := s.fabric
	f.mu.Lock()
	ok := f.board.Renew(id, f.now())
	f.mu.Unlock()
	if !ok {
		writeError(w, http.StatusGone, "lease %s is no longer current (expired and re-issued, or partition done)", id)
		return
	}
	writeJSON(w, http.StatusOK, LeaseResponse{Status: "lease", LeaseID: id, TTLMillis: s.fabric.board.TTL().Milliseconds()})
}

// CompleteResponse answers a shard upload.
type CompleteResponse struct {
	Partition int  `json:"partition"`
	Duplicate bool `json:"duplicate"`
}

// handleLeaseComplete is POST /v1/lease/{id}/complete with the shard
// journal bytes as the body.
func (s *Server) handleLeaseComplete(w http.ResponseWriter, r *http.Request) {
	if s.fabric == nil {
		writeError(w, http.StatusNotFound, "fabric coordinator not enabled")
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxShardUpload))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "shard upload: %v", err)
		return
	}
	part, duplicate, err := s.fabric.complete(r.PathValue("id"), data)
	if err != nil {
		status := http.StatusBadRequest
		if duplicate {
			status = http.StatusConflict
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, CompleteResponse{Partition: part, Duplicate: duplicate})
}

// FabricStatus is the body of GET /v1/fabric/status.
type FabricStatus struct {
	Partitions int               `json:"partitions"`
	Board      fabric.BoardStats `json:"board"`
	Drained    bool              `json:"drained"`
	Spec       fabric.SweepSpec  `json:"spec"`
}

// handleFabricStatus is GET /v1/fabric/status.
func (s *Server) handleFabricStatus(w http.ResponseWriter, r *http.Request) {
	if s.fabric == nil {
		writeError(w, http.StatusNotFound, "fabric coordinator not enabled")
		return
	}
	f := s.fabric
	f.mu.Lock()
	st := FabricStatus{
		Partitions: f.board.Count(),
		Board:      f.board.Stats(),
		Drained:    f.board.Drained(),
		Spec:       f.spec,
	}
	f.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleFabricJournal is GET /v1/fabric/journal: the canonical merged
// checkpoint, available once every partition completed (409 before).
func (s *Server) handleFabricJournal(w http.ResponseWriter, r *http.Request) {
	if s.fabric == nil {
		writeError(w, http.StatusNotFound, "fabric coordinator not enabled")
		return
	}
	var buf bytes.Buffer
	stats, err := s.fabric.merged(&buf)
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Merge-Stats", stats.String())
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
}

// maxShardUpload bounds one shard journal upload (64 MiB — a full
// non-quick sweep journal is a few MiB).
const maxShardUpload = 64 << 20
