// Package serve is the simulation service layer behind cmd/bitspreadd: a
// stdlib-net/http JSON API that accepts bit-dissemination jobs, runs them
// on a bounded worker pool, and streams round events to clients.
//
// The package holds the serving layer to the same standard the paper
// holds its protocols — self-stabilizing under adversarial disruption:
//
//   - Admission control, never unbounded memory: per-tenant token-bucket
//     quotas (429 + Retry-After) and queue-depth limits (503 +
//     Retry-After) shed overload at the door; event streams drop to slow
//     consumers instead of buffering without bound.
//   - Crash safety: every accepted job is fsynced to a JSONL intent log
//     before the client sees 202, every finished replica is checkpointed
//     through sim.Journal, and completed results are published atomically
//     to a content-addressed cache — so a SIGKILL'd daemon restarts,
//     re-runs exactly the incomplete jobs, and (by the engines'
//     determinism contract) lands on byte-identical results.
//   - Graceful degradation: SIGTERM drains — in-flight jobs finish under
//     a deadline while new submissions get 503 — a panicking job is
//     isolated and reported without taking the daemon down, and per-job
//     timeouts bound every run.
//
// Nothing here touches simulation semantics: serve composes sim.Task,
// sim.RunContext, sim.Journal, engine.Probe and internal/obs; the
// deterministic core stays a pure function of (seed, Config, Shards).
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"bitspread/internal/obs"
	"bitspread/internal/sim"
)

// Options configures a Server. The zero value is a usable memory-only
// test server (no crash safety, no quotas).
type Options struct {
	// DataDir is the durable state root: jobs.jsonl (intent log),
	// replicas.jsonl (sim journal) and cache/ (content-addressed results).
	// Empty runs memory-only: no journal, no cache, no crash recovery.
	DataDir string
	// Workers is the job worker pool size (default 2). Each worker runs
	// one job at a time.
	Workers int
	// SimWorkers is the per-job replica parallelism handed to
	// sim.RunContext (default 1: the pool parallelizes across jobs, not
	// within them).
	SimWorkers int
	// QueueDepth bounds the jobs waiting for a worker (default 64). A
	// full queue rejects with 503 + Retry-After.
	QueueDepth int
	// TenantRate is the per-tenant token refill rate in jobs/second
	// (default 0: quotas disabled). An empty bucket rejects with 429 +
	// Retry-After.
	TenantRate float64
	// TenantBurst is the per-tenant bucket capacity (default 8).
	TenantBurst int
	// JobTimeout caps each job's wall-clock budget (default 10m); specs
	// may request less, never more.
	JobTimeout time.Duration
	// MaxDone bounds the finished-job metadata kept in memory (default
	// 4096); older results remain served from the disk cache.
	MaxDone int
	// Registry receives service and engine metrics (nil: a fresh one).
	Registry *obs.Registry
	// Chaos, if non-nil, injects seeded worker faults; integration tests
	// use it to prove panic isolation and timeout handling.
	Chaos *Chaos
	// Fabric, if non-nil, additionally runs the daemon as a distributed
	// sweep coordinator: /v1/lease hands shard leases of the configured
	// sweep to pulling workers, completed shard bytes persist under
	// DataDir/fabric/, and /v1/fabric/journal serves the canonical merge.
	Fabric *FabricOptions
	// Logf receives operational diagnostics (nil: discarded).
	Logf func(format string, args ...any)

	// now overrides the admission clock in tests.
	now func() time.Time
	// testHook, if set, runs on the worker goroutine right after a job
	// enters the running state; tests use it to hold workers at a barrier.
	testHook func(jb *job)
}

// withDefaults resolves unset options.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.SimWorkers <= 0 {
		o.SimWorkers = 1
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.TenantBurst <= 0 {
		o.TenantBurst = 8
	}
	if o.JobTimeout <= 0 {
		o.JobTimeout = 10 * time.Minute
	}
	if o.MaxDone <= 0 {
		o.MaxDone = 4096
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// serverMetrics are the service-level counters and gauges, registered
// once at startup so the handlers touch only atomic hot paths.
type serverMetrics struct {
	submitted, deduped, cacheHits               *obs.Counter
	rejectedQuota, rejectedQueue, rejectedDrain *obs.Counter
	jobsDone, jobsFailed, jobsCancelled         *obs.Counter
	panics, eventsDropped                       *obs.Counter
	queueDepth, running                         *obs.Gauge
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	return serverMetrics{
		submitted:     reg.Counter("bitspreadd_jobs_submitted_total"),
		deduped:       reg.Counter("bitspreadd_jobs_deduped_total"),
		cacheHits:     reg.Counter("bitspreadd_cache_hits_total"),
		rejectedQuota: reg.Counter("bitspreadd_rejected_quota_total"),
		rejectedQueue: reg.Counter("bitspreadd_rejected_queue_total"),
		rejectedDrain: reg.Counter("bitspreadd_rejected_drain_total"),
		jobsDone:      reg.Counter("bitspreadd_jobs_done_total"),
		jobsFailed:    reg.Counter("bitspreadd_jobs_failed_total"),
		jobsCancelled: reg.Counter("bitspreadd_jobs_cancelled_total"),
		panics:        reg.Counter("bitspreadd_job_panics_total"),
		eventsDropped: reg.Counter("bitspreadd_events_dropped_total"),
		queueDepth:    reg.Gauge("bitspreadd_queue_depth"),
		running:       reg.Gauge("bitspreadd_jobs_running"),
	}
}

// Server is the simulation service: admission control in front of a
// bounded worker pool, with durable state under DataDir.
type Server struct {
	opts   Options
	m      serverMetrics
	probe  *obs.Metrics
	runObs *obs.RunObserver
	adm    *admission

	journal *sim.Journal
	log     *jobLog
	cache   *resultCache
	fabric  *fabricState
	protos  *protoRegistry

	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue    chan *job
	jobsWG   sync.WaitGroup
	workerWG sync.WaitGroup
	running  atomic.Int64

	mu        sync.Mutex
	jobs      map[string]*job
	seq       uint64
	doneOrder []string
	draining  bool
	closed    bool
}

// New builds the server, replays durable state from opts.DataDir —
// re-enqueueing every accepted job that has no terminal record — and
// starts the worker pool.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	s := &Server{
		opts:   opts,
		m:      newServerMetrics(opts.Registry),
		probe:  obs.NewMetrics(opts.Registry),
		runObs: obs.NewRunObserver(nil, opts.Registry),
		adm:    newAdmission(opts.TenantRate, opts.TenantBurst, opts.now),
		jobs:   map[string]*job{},
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())

	var replayed []jobLogEntry
	protoDir := ""
	if opts.DataDir != "" {
		if err := os.MkdirAll(opts.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: data dir: %w", err)
		}
		protoDir = filepath.Join(opts.DataDir, "protocols")
	}
	// The protocol registry loads before the job log replays: a recovered
	// job may reference "vm:<id>" bytecode from a previous daemon life.
	var err error
	s.protos, err = openProtoRegistry(protoDir, opts.Logf)
	if err != nil {
		return nil, err
	}
	if opts.DataDir != "" {
		s.log, replayed, err = openJobLog(filepath.Join(opts.DataDir, "jobs.jsonl"), opts.Logf)
		if err != nil {
			return nil, err
		}
		s.journal, err = sim.OpenJournalOpts(filepath.Join(opts.DataDir, "replicas.jsonl"), sim.JournalOptions{
			Resume: true,
			Fsync:  true,
			Logf:   opts.Logf,
		})
		if err != nil {
			return nil, err
		}
		s.cache, err = newResultCache(filepath.Join(opts.DataDir, "cache"))
		if err != nil {
			return nil, err
		}
	}

	if opts.Fabric != nil {
		fst, err := newFabricState(*opts.Fabric, opts.DataDir, opts.now, opts.Logf)
		if err != nil {
			return nil, err
		}
		s.fabric = fst
	}

	pending := s.replay(replayed)
	s.queue = make(chan *job, opts.QueueDepth+len(pending))
	for _, jb := range pending {
		s.jobsWG.Add(1)
		s.queue <- jb
	}
	s.m.queueDepth.Set(int64(len(s.queue)))
	for i := 0; i < opts.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s, nil
}

// replay rebuilds the job table from intent-log entries and returns the
// accepted-but-unfinished jobs in submission order — the SIGKILL recovery
// set. A job whose terminal record says done but whose cached result has
// vanished is treated as unfinished too: the journal makes recomputing it
// cheap and determinism makes the redo identical.
func (s *Server) replay(entries []jobLogEntry) []*job {
	var pending []*job
	for _, e := range entries {
		switch e.Ev {
		case "submit":
			if e.Spec == nil || s.jobs[e.ID] != nil {
				continue
			}
			spec := *e.Spec
			spec.normalize()
			task, err := spec.buildTask(s.vmRule)
			if err != nil {
				s.opts.Logf("serve: replay %s: unbuildable spec dropped: %v", e.ID, err)
				continue
			}
			timeout, err := spec.timeoutOrDefault(s.opts.JobTimeout)
			if err != nil {
				timeout = s.opts.JobTimeout
			}
			jb := &job{id: e.ID, spec: spec, task: task, timeout: timeout, seq: s.seq, hub: newHub(s.m.eventsDropped)}
			s.seq++
			s.jobs[e.ID] = jb
			pending = append(pending, jb)
		case "end":
			jb := s.jobs[e.ID]
			if jb == nil {
				continue
			}
			st := stateDone
			switch e.State {
			case "failed":
				st = stateFailed
			case "cancelled":
				st = stateCancelled
			}
			if st == stateDone {
				if _, ok := s.cache.get(e.ID); !ok {
					// Terminal record without a result — a crash between the
					// cache publish and nothing, or an evicted file. Re-run.
					continue
				}
			}
			jb.mu.Lock()
			jb.state = st
			jb.err = e.Error
			jb.mu.Unlock()
			jb.hub.close(Event{Type: "job_done", State: st.String()})
			s.doneOrder = append(s.doneOrder, e.ID)
			for i, p := range pending {
				if p == jb {
					pending = append(pending[:i], pending[i+1:]...)
					break
				}
			}
		}
	}
	s.evictDoneLocked()
	return pending
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/protocols", s.handleProtocolSubmit)
	mux.HandleFunc("GET /v1/protocols", s.handleProtocolList)
	mux.HandleFunc("GET /v1/protocols/{id}", s.handleProtocolGet)
	mux.HandleFunc("POST /v1/lease", s.handleLease)
	mux.HandleFunc("POST /v1/lease/{id}/renew", s.handleLeaseRenew)
	mux.HandleFunc("POST /v1/lease/{id}/complete", s.handleLeaseComplete)
	mux.HandleFunc("GET /v1/fabric/status", s.handleFabricStatus)
	mux.HandleFunc("GET /v1/fabric/journal", s.handleFabricJournal)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// BeginDrain flips the server into draining mode: readyz turns 503 and
// new submissions are rejected, while status, result and event endpoints
// keep serving.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Drain gracefully shuts the pool down: no new jobs are admitted, every
// already-accepted job (queued or running) is given until ctx ends to
// finish, and then the pool stops. It returns nil when all accepted work
// completed, or ctx's error when the deadline forced in-flight jobs to be
// interrupted — in which case they carry no terminal record and a
// restarted daemon resumes them from the journal.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	var drainErr error
	select {
	case <-done:
	case <-ctx.Done():
		drainErr = ctx.Err()
		s.baseCancel()
		<-done
	}
	s.shutdownPool()
	return drainErr
}

// Close hard-stops the server: in-flight jobs are cancelled at the next
// round boundary (checkpointed, resumable) and the pool exits.
func (s *Server) Close() {
	s.BeginDrain()
	s.baseCancel()
	s.jobsWG.Wait()
	s.shutdownPool()
}

// shutdownPool closes the queue, waits the workers out, and releases the
// durable state. Idempotent.
func (s *Server) shutdownPool() {
	s.mu.Lock()
	already := s.closed
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	if already {
		return
	}
	s.workerWG.Wait()
	s.baseCancel()
	if err := s.journal.Close(); err != nil {
		s.opts.Logf("serve: closing journal: %v", err)
	}
	if err := s.log.close(); err != nil {
		s.opts.Logf("serve: closing job log: %v", err)
	}
}

// worker drains the job queue until it closes.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for jb := range s.queue {
		s.m.queueDepth.Set(int64(len(s.queue)))
		s.runJob(jb)
	}
}

// runJob executes one job with panic isolation: a panicking worker —
// chaos-injected or real — fails only its job, never the daemon.
func (s *Server) runJob(jb *job) {
	defer s.jobsWG.Done()
	defer func() {
		if r := recover(); r != nil {
			s.m.panics.Inc()
			s.finishJob(jb, stateFailed, fmt.Sprintf("job panicked: %v", r), nil)
		}
	}()

	jb.mu.Lock()
	if jb.cancelPending {
		jb.mu.Unlock()
		s.finishJob(jb, stateCancelled, "cancelled before start", nil)
		return
	}
	jb.state = stateRunning
	jb.mu.Unlock()
	s.m.running.Set(s.running.Add(1))
	defer func() { s.m.running.Set(s.running.Add(-1)) }()
	if s.opts.testHook != nil {
		s.opts.testHook(jb)
	}

	panicNow, forceTimeout, forced := s.opts.Chaos.plan()
	timeout := jb.timeout
	if forceTimeout {
		timeout = forced
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	defer cancel()
	jb.mu.Lock()
	jb.cancel = cancel
	cancelled := jb.cancelPending
	jb.mu.Unlock()
	if cancelled {
		cancel()
	}
	if panicNow {
		panic("chaos: injected worker panic")
	}

	task := jb.task
	task.Config.Probe = probeFan{s.probe, jb.hub}
	task.Observer = observerFan{s.runObs, jb.hub}
	out, err := sim.RunContext(ctx, task, s.opts.SimWorkers, s.journal)
	completed, failed, cancelledN, timedOut := out.Counts()
	jb.mu.Lock()
	jb.counts = [4]int{completed, failed, cancelledN, timedOut}
	clientCancel := jb.cancelPending
	jb.mu.Unlock()

	switch {
	case err == nil && completed == jb.task.Replicas:
		payload, perr := canonicalResult(jb.id, out)
		if perr != nil {
			s.finishJob(jb, stateFailed, perr.Error(), nil)
			return
		}
		if cerr := s.cache.put(jb.id, payload); cerr != nil {
			s.opts.Logf("serve: job %s: cache publish failed, serving from memory: %v", jb.id, cerr)
		}
		s.finishJob(jb, stateDone, "", payload)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		switch {
		case clientCancel:
			s.finishJob(jb, stateCancelled, "cancelled by client", nil)
		case s.baseCtx.Err() != nil:
			// Server shutdown, not a client action: leave no terminal
			// record so a restarted daemon resumes this job from the
			// journal instead of forgetting it.
			s.interruptJob(jb)
		default:
			s.finishJob(jb, stateFailed, fmt.Sprintf("job timed out after %s", timeout), nil)
		}
	case err != nil:
		s.finishJob(jb, stateFailed, err.Error(), nil)
	default:
		msg := fmt.Sprintf("%d of %d replicas failed", failed, jb.task.Replicas)
		if len(out.Failures) > 0 {
			msg = fmt.Sprintf("%s (first: %v)", msg, out.Failures[0].Err)
		}
		s.finishJob(jb, stateFailed, msg, nil)
	}
}

// finishJob is the single terminal transition: job state, intent-log end
// record, metrics, stream close, and done-set eviction.
func (s *Server) finishJob(jb *job, st jobState, errMsg string, payload []byte) {
	jb.mu.Lock()
	if jb.state.terminal() {
		jb.mu.Unlock()
		return
	}
	jb.state = st
	jb.err = errMsg
	jb.cancel = nil
	if payload != nil && s.cache == nil {
		jb.payload = payload
	}
	jb.mu.Unlock()
	if err := s.log.append(jobLogEntry{Ev: "end", ID: jb.id, State: st.String(), Error: errMsg}); err != nil {
		s.opts.Logf("serve: job %s: recording end state: %v", jb.id, err)
	}
	switch st {
	case stateDone:
		s.m.jobsDone.Inc()
	case stateCancelled:
		s.m.jobsCancelled.Inc()
	default:
		s.m.jobsFailed.Inc()
	}
	jb.hub.close(Event{Type: "job_done", State: st.String()})
	s.mu.Lock()
	s.doneOrder = append(s.doneOrder, jb.id)
	s.evictDoneLocked()
	s.mu.Unlock()
}

// interruptJob returns a shutdown-interrupted job to the queued state
// without a terminal record; only a restart will run it again.
func (s *Server) interruptJob(jb *job) {
	jb.mu.Lock()
	if !jb.state.terminal() {
		jb.state = stateQueued
		jb.cancel = nil
	}
	jb.mu.Unlock()
	jb.hub.close(Event{Type: "job_done", State: "interrupted"})
}

// evictDoneLocked bounds finished-job metadata at opts.MaxDone entries,
// dropping the oldest; their results stay served from the disk cache.
// Caller holds s.mu (or is still single-goroutine in New).
func (s *Server) evictDoneLocked() {
	for len(s.doneOrder) > s.opts.MaxDone {
		id := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		if jb := s.jobs[id]; jb != nil {
			st, _, _ := jb.snapshot()
			if st.terminal() {
				delete(s.jobs, id)
			}
		}
	}
}
