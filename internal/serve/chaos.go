package serve

import (
	"sync"
	"time"

	"bitspread/internal/rng"
)

// Chaos injects seeded faults into the worker pool, the serving-layer
// analogue of internal/fault's seeded schedules: where fault.Schedule
// perturbs agents inside a simulation, Chaos perturbs the daemon around
// it — a worker that panics mid-job, a job whose deadline collapses to
// nearly nothing. The integration tests use it to prove (not assert)
// that a panicking job is isolated and a timed-out job is reported
// without taking the daemon down.
//
// Draws come from one seeded *rng.RNG under a lock, so with a single
// pool worker the injected fault sequence is a deterministic function of
// (seed, job start order).
type Chaos struct {
	// PanicProb is the probability a job's worker panics at job start.
	PanicProb float64
	// TimeoutProb is the probability a job's deadline is forced down to
	// ForcedTimeout.
	TimeoutProb float64
	// ForcedTimeout is the collapsed deadline for injected timeouts
	// (default 1ms).
	ForcedTimeout time.Duration

	mu sync.Mutex
	g  *rng.RNG
}

// NewChaos builds a chaos injector with the given seed and fault
// probabilities.
func NewChaos(seed uint64, panicProb, timeoutProb float64) *Chaos {
	return &Chaos{PanicProb: panicProb, TimeoutProb: timeoutProb, g: rng.New(seed)}
}

// plan draws this job's injected faults. A nil receiver injects nothing.
func (c *Chaos) plan() (panicNow bool, forceTimeout bool, forced time.Duration) {
	if c == nil {
		return false, false, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	panicNow = c.PanicProb > 0 && c.g.Float64() < c.PanicProb
	forceTimeout = c.TimeoutProb > 0 && c.g.Float64() < c.TimeoutProb
	forced = c.ForcedTimeout
	if forced <= 0 {
		forced = time.Millisecond
	}
	return panicNow, forceTimeout, forced
}
