package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// jobLogEntry is one line of the job intent log: either the acceptance of
// a job ("submit", with its full spec) or its terminal state ("end").
// The log is what makes acceptance crash-safe: the submit line is fsynced
// before the client sees 202, so a SIGKILL'd daemon knows on restart
// exactly which accepted jobs never reached an end state and re-runs
// them — with every finished replica served from the sim journal, so the
// redo converges on byte-identical results.
type jobLogEntry struct {
	Ev    string   `json:"ev"` // "submit" | "end"
	ID    string   `json:"id"`
	Spec  *JobSpec `json:"spec,omitempty"`  // submit lines
	State string   `json:"state,omitempty"` // end lines: done, failed, cancelled
	Error string   `json:"error,omitempty"` // end lines: failure cause
}

// jobLog is the append-only JSONL intent log. Like sim.Journal it
// tolerates a crash-truncated final line on load and fsyncs every append.
type jobLog struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// openJobLog opens (or creates) the log at path, replaying existing
// entries in order. A torn final line — a submit cut off by a kill before
// its fsync completed — is dropped with a diagnostic: the client never
// got its 202 for that job, so dropping it is the correct recovery.
func openJobLog(path string, logf func(string, ...any)) (*jobLog, []jobLogEntry, error) {
	var entries []jobLogEntry
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("serve: read job log: %w", err)
	}
	if err == nil {
		lines := splitJSONL(data)
		for i, line := range lines {
			if len(line) == 0 {
				continue
			}
			var e jobLogEntry
			if uerr := json.Unmarshal(line, &e); uerr != nil {
				if i == len(lines)-1 {
					if logf != nil {
						logf("serve: job log %s: dropping truncated final line %d (%d bytes): %v", path, i+1, len(line), uerr)
					}
					break
				}
				return nil, nil, fmt.Errorf("serve: job log line %d corrupt: %w", i+1, uerr)
			}
			entries = append(entries, e)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: open job log: %w", err)
	}
	return &jobLog{f: f, w: bufio.NewWriter(f)}, entries, nil
}

// splitJSONL splits on '\n' without requiring a trailing newline, the
// same convention sim.Journal uses.
func splitJSONL(data []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			lines = append(lines, data[start:i])
			start = i + 1
		}
	}
	if start < len(data) {
		lines = append(lines, data[start:])
	}
	return lines
}

// append writes one entry, flushed and fsynced before returning. A nil
// log (memory-only server) records nothing.
func (l *jobLog) append(e jobLogEntry) error {
	if l == nil {
		return nil
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("serve: job log encode: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.w == nil {
		return nil
	}
	if _, err := l.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("serve: job log write: %w", err)
	}
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("serve: job log fsync: %w", err)
	}
	return nil
}

// close flushes and closes the file; later appends become no-ops.
func (l *jobLog) close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	ferr := l.w.Flush()
	cerr := l.f.Close()
	l.f, l.w = nil, nil
	if ferr != nil {
		return ferr
	}
	return cerr
}
