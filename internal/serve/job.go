package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"bitspread/internal/cli"
	"bitspread/internal/engine"
	"bitspread/internal/protocol"
	"bitspread/internal/sim"
)

// JobSpec is the wire form of one simulation job: a single instance
// configuration fanned over Replicas independent seeds, exactly a
// sim.Task. Everything that determines the trajectory is part of the
// job's content address; Timeout and Tenant are serving metadata and are
// not (two tenants submitting the same experiment share one result).
type JobSpec struct {
	// Name labels the job (and its journal task key). Defaults to "job".
	Name string `json:"name,omitempty"`
	// N is the population size, source included.
	N int64 `json:"n"`
	// Z is the correct opinion held by the source (0 or 1).
	Z int `json:"z"`
	// X0 is the initial one-count. Omitted, it defaults to the worst-case
	// adversarial initialization: every non-source agent starts on 1-z.
	X0 *int64 `json:"x0,omitempty"`
	// Rule names the update rule (see internal/cli.RuleNames).
	Rule string `json:"rule"`
	// Ell is the per-activation sample size for the sized rules.
	Ell int `json:"ell,omitempty"`
	// Delta parameterizes the biased/lazy rules.
	Delta float64 `json:"delta,omitempty"`
	// Threshold parameterizes the follower rule.
	Threshold int `json:"threshold,omitempty"`
	// Mode selects the engine: parallel (default), sequential, agents,
	// aggregated.
	Mode string `json:"mode,omitempty"`
	// Replicas is the number of independent seeded runs (default 1).
	Replicas int `json:"replicas,omitempty"`
	// Seed is the task seed replica seeds are derived from.
	Seed uint64 `json:"seed"`
	// MaxRounds caps each replica (0: engine default).
	MaxRounds int64 `json:"max_rounds,omitempty"`
	// Timeout is the per-job wall-clock budget as a Go duration string
	// ("30s"). Empty or above the server cap, the server cap applies.
	Timeout string `json:"timeout,omitempty"`
	// Tenant attributes the job for quota accounting; the X-Tenant header
	// takes precedence. Empty means the shared default tenant.
	Tenant string `json:"tenant,omitempty"`
}

// normalize applies spec defaults in place.
func (sp *JobSpec) normalize() {
	if sp.Name == "" {
		sp.Name = "job"
	}
	if sp.Mode == "" {
		sp.Mode = "parallel"
	}
	if sp.Replicas == 0 {
		sp.Replicas = 1
	}
	if sp.Ell == 0 {
		sp.Ell = 1
	}
	if sp.X0 == nil {
		// Worst-case adversarial start: only the source holds z.
		x0 := sp.N - 1
		if sp.Z == 1 {
			x0 = 1
		}
		sp.X0 = &x0
	}
}

// parseMode maps the wire mode name to a sim.Mode.
func parseMode(mode string) (sim.Mode, error) {
	switch strings.ToLower(mode) {
	case "parallel":
		return sim.Parallel, nil
	case "sequential":
		return sim.Sequential, nil
	case "agents", "agent-level":
		return sim.AgentLevel, nil
	case "aggregated":
		return sim.Aggregated, nil
	default:
		return 0, fmt.Errorf("serve: unknown mode %q (want parallel, sequential, agents, aggregated)", mode)
	}
}

// ruleResolver resolves a "vm:<id>" rule reference to a registered
// materialized rule; the Server supplies its protocol registry here.
type ruleResolver func(ref string) (*protocol.Rule, error)

// buildTask compiles a normalized spec into a validated sim.Task. The
// resolver handles "vm:<id>" rule references (nil: such references are
// rejected). All errors here are client errors (HTTP 400): nothing has
// been admitted yet.
func (sp *JobSpec) buildTask(resolve ruleResolver) (sim.Task, error) {
	mode, err := parseMode(sp.Mode)
	if err != nil {
		return sim.Task{}, err
	}
	if sp.Replicas < 1 {
		return sim.Task{}, fmt.Errorf("serve: replicas must be >= 1, got %d", sp.Replicas)
	}
	var rule *protocol.Rule
	if strings.HasPrefix(sp.Rule, vmRulePrefix) {
		if resolve == nil {
			return sim.Task{}, fmt.Errorf("serve: vm protocol references are not supported here")
		}
		rule, err = resolve(sp.Rule)
	} else {
		rule, err = cli.BuildRule(sp.Rule, sp.Ell, sp.Delta, sp.Threshold)
	}
	if err != nil {
		return sim.Task{}, err
	}
	t := sim.Task{
		Name: sp.Name,
		Config: engine.Config{
			N:         sp.N,
			Rule:      rule,
			Z:         sp.Z,
			X0:        *sp.X0,
			MaxRounds: sp.MaxRounds,
		},
		Mode:     mode,
		Replicas: sp.Replicas,
		Seed:     sp.Seed,
	}
	if err := t.Config.Validate(); err != nil {
		return sim.Task{}, err
	}
	return t, nil
}

// timeoutOrDefault resolves the spec's timeout against the server cap:
// empty, unparsable-is-rejected-earlier, zero, or above the cap all mean
// the cap.
func (sp *JobSpec) timeoutOrDefault(cap time.Duration) (time.Duration, error) {
	if sp.Timeout == "" {
		return cap, nil
	}
	d, err := time.ParseDuration(sp.Timeout)
	if err != nil {
		return 0, fmt.Errorf("serve: bad timeout %q: %w", sp.Timeout, err)
	}
	if d <= 0 || d > cap {
		return cap, nil
	}
	return d, nil
}

// jobID content-addresses a job: a truncated SHA-256 of the sim task key
// (name, full config, mode, seed) plus the replica count. Determinism
// makes the address a result address — any two jobs with the same ID
// produce byte-identical result payloads, which is what lets the daemon
// serve repeats from the cache and dedupe concurrent submissions.
func jobID(task sim.Task, replicas int) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s replicas=%d", sim.TaskKey(task), replicas)))
	return hex.EncodeToString(h[:16])
}

// jobState is the lifecycle of one accepted job.
type jobState int32

const (
	stateQueued jobState = iota
	stateRunning
	stateDone
	stateFailed
	stateCancelled
)

// String implements fmt.Stringer; these are the wire state names.
func (s jobState) String() string {
	switch s {
	case stateQueued:
		return "queued"
	case stateRunning:
		return "running"
	case stateDone:
		return "done"
	case stateFailed:
		return "failed"
	case stateCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("jobState(%d)", int32(s))
	}
}

// terminal reports whether the state is an end state.
func (s jobState) terminal() bool { return s >= stateDone }

// job is one accepted job's in-memory record.
type job struct {
	id      string
	spec    JobSpec
	task    sim.Task
	timeout time.Duration
	seq     uint64
	hub     *hub

	mu            sync.Mutex
	state         jobState
	err           string
	cancel        func()
	cancelPending bool
	// payload is the canonical result JSON, kept in memory only when the
	// server has no disk cache to hold it.
	payload []byte
	counts  [4]int // completed, failed, cancelled, timed-out
}

// setState transitions the job unless it is already terminal.
func (j *job) setState(s jobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.state.terminal() {
		j.state = s
	}
}

// snapshot returns the fields the status endpoint needs, consistently.
func (j *job) snapshot() (state jobState, errMsg string, counts [4]int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.err, j.counts
}

// requestCancel marks the job for cancellation and fires the in-flight
// context cancel if it is running. It reports whether the request landed
// (false when the job already ended).
func (j *job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	j.cancelPending = true
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

// JobStatus is the wire form of a job's current state.
type JobStatus struct {
	ID       string `json:"id"`
	Name     string `json:"name,omitempty"`
	State    string `json:"state"`
	Tenant   string `json:"tenant,omitempty"`
	Replicas int    `json:"replicas,omitempty"`
	// Error is the failure cause for failed jobs.
	Error string `json:"error,omitempty"`
	// Cached is true when the result was served from the content-addressed
	// cache without running anything.
	Cached bool `json:"cached,omitempty"`
	// Completed/Failed/Cancelled/TimedOut tally replica end states once
	// the job has finished.
	Completed int `json:"completed,omitempty"`
	Failed    int `json:"failed,omitempty"`
	Cancelled int `json:"cancelled,omitempty"`
	TimedOut  int `json:"timed_out,omitempty"`
	// ResultURL points at the canonical result payload for done jobs.
	ResultURL string `json:"result_url,omitempty"`
}

// JobResult is the canonical result payload of a completed job. It is a
// pure function of the job's content address: no timestamps, no serving
// metadata — the crash/resume acceptance test compares these bytes across
// daemon restarts.
type JobResult struct {
	ID       string `json:"id"`
	Name     string `json:"name"`
	Replicas int    `json:"replicas"`
	// Converged counts replicas that reached the correct consensus.
	Converged int `json:"converged"`
	// SuccessRate is Converged/Replicas with its Wilson 95% interval.
	SuccessRate float64         `json:"success_rate"`
	SuccessLo   float64         `json:"success_lo"`
	SuccessHi   float64         `json:"success_hi"`
	Results     []engine.Result `json:"results"`
}

// canonicalResult renders the deterministic result payload for a fully
// completed outcome. json.Marshal over this fixed struct shape is
// byte-stable, so identical outcomes always yield identical payloads.
func canonicalResult(id string, out sim.Outcome) ([]byte, error) {
	rate, lo, hi := out.SuccessRate()
	res := JobResult{
		ID:          id,
		Name:        out.Task.Name,
		Replicas:    out.Task.Replicas,
		Converged:   out.ConvergedCount(),
		SuccessRate: rate,
		SuccessLo:   lo,
		SuccessHi:   hi,
		Results:     out.Results,
	}
	b, err := json.Marshal(res)
	if err != nil {
		return nil, fmt.Errorf("serve: encode result: %w", err)
	}
	return append(b, '\n'), nil
}
