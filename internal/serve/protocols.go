package serve

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"bitspread/internal/protocol"
	"bitspread/internal/vm"
)

// vmRulePrefix marks a JobSpec.Rule that references registered bytecode
// instead of a built-in: "vm:<content-address>".
const vmRulePrefix = "vm:"

// ProtocolSpec is the wire form of POST /v1/protocols: user bytecode for
// a decision rule, as assembly source or an encoded program, exactly one
// of the two. The daemon validates, gas-bounds and content-addresses it
// before any job may reference it.
type ProtocolSpec struct {
	// Name optionally overrides the program's embedded name.
	Name string `json:"name,omitempty"`
	// Asm is vm assembly source (see internal/vm.Assemble).
	Asm string `json:"asm,omitempty"`
	// Code is a base64-encoded vm program (vm.Encode bytes).
	Code string `json:"code,omitempty"`
}

// ProtocolStatus is the wire form of a registered protocol.
type ProtocolStatus struct {
	// ID is the program's content address; jobs reference it as "vm:<id>".
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	Ell  int    `json:"ell"`
	// G0 and G1 are the materialized decision tables.
	G0 []float64 `json:"g0"`
	G1 []float64 `json:"g1"`
	// Asm is the canonical disassembly (detail endpoint only).
	Asm string `json:"asm,omitempty"`
}

// protoEntry is one registered protocol: validated bytecode plus its
// materialized (gas-bounded, Proposition 3-checked) table form.
type protoEntry struct {
	prog *vm.Program
	rule *protocol.Rule
}

// protoRegistry holds the registered user protocols, optionally mirrored
// to dir as one content-addressed .bsvm file per program.
type protoRegistry struct {
	dir string

	mu   sync.RWMutex
	byID map[string]*protoEntry
}

// openProtoRegistry builds the registry, loading every persisted program
// from dir (empty dir: memory-only). Corrupt or no-longer-valid files are
// skipped with a diagnostic rather than failing startup.
func openProtoRegistry(dir string, logf func(string, ...any)) (*protoRegistry, error) {
	reg := &protoRegistry{dir: dir, byID: map[string]*protoEntry{}}
	if dir == "" {
		return reg, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: protocol dir: %w", err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.bsvm"))
	if err != nil {
		return nil, fmt.Errorf("serve: scanning protocols: %w", err)
	}
	sort.Strings(names)
	for _, path := range names {
		data, err := os.ReadFile(path)
		if err != nil {
			logf("serve: protocol %s: unreadable, skipped: %v", path, err)
			continue
		}
		prog, err := vm.Decode(data)
		if err != nil {
			logf("serve: protocol %s: corrupt, skipped: %v", path, err)
			continue
		}
		entry, err := buildProtoEntry(prog)
		if err != nil {
			logf("serve: protocol %s: no longer admissible, skipped: %v", path, err)
			continue
		}
		id := prog.Address()
		if filepath.Base(path) != id+".bsvm" {
			logf("serve: protocol %s: content address mismatch (want %s), skipped", path, id)
			continue
		}
		reg.byID[id] = entry
	}
	return reg, nil
}

// buildProtoEntry materializes and validates one program under the
// default gas and stack limits. The returned error is a client error:
// the bytecode is structurally sound but not admissible as a protocol.
func buildProtoEntry(prog *vm.Program) (*protoEntry, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	rule, err := prog.Materialize(vm.EvalLimits{})
	if err != nil {
		return nil, err
	}
	if err := rule.Validate(); err != nil {
		return nil, err
	}
	return &protoEntry{prog: prog, rule: rule}, nil
}

// register admits a validated entry, persisting its bytecode first when
// the registry is durable (temp file, sync, rename — a torn write can
// never surface as a half-program). Returns whether the id was new.
func (reg *protoRegistry) register(id string, entry *protoEntry) (bool, error) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, ok := reg.byID[id]; ok {
		return false, nil
	}
	if reg.dir != "" {
		final := filepath.Join(reg.dir, id+".bsvm")
		tmp, err := os.CreateTemp(reg.dir, "."+id+".tmp-*")
		if err != nil {
			return false, fmt.Errorf("serve: persisting protocol: %w", err)
		}
		_, werr := tmp.Write(entry.prog.Encode())
		if serr := tmp.Sync(); werr == nil {
			werr = serr
		}
		if cerr := tmp.Close(); werr == nil {
			werr = cerr
		}
		if werr == nil {
			werr = os.Rename(tmp.Name(), final)
		}
		if werr != nil {
			//bitlint:errsink best-effort temp cleanup on a path that already returns the write error; the orphan is invisible to reload (glob matches *.bsvm only)
			_ = os.Remove(tmp.Name())
			return false, fmt.Errorf("serve: persisting protocol: %w", werr)
		}
	}
	reg.byID[id] = entry
	return true, nil
}

// lookup returns the registered entry for id.
func (reg *protoRegistry) lookup(id string) (*protoEntry, bool) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	e, ok := reg.byID[id]
	return e, ok
}

// ids returns all registered content addresses, sorted.
func (reg *protoRegistry) ids() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	out := make([]string, 0, len(reg.byID))
	//bitlint:maporder the listing is sorted immediately below
	for id := range reg.byID {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// vmRule resolves a "vm:<id>" job rule reference against the registry.
// It implements the ruleResolver hook of JobSpec.buildTask.
func (s *Server) vmRule(ref string) (*protocol.Rule, error) {
	id := strings.TrimPrefix(ref, vmRulePrefix)
	entry, ok := s.protos.lookup(id)
	if !ok {
		return nil, fmt.Errorf("serve: unknown protocol %q (register it via POST /v1/protocols first)", ref)
	}
	return entry.rule, nil
}

// protoStatus renders an entry's wire form.
func protoStatus(id string, e *protoEntry, detail bool) ProtocolStatus {
	g0, g1 := e.rule.Tables()
	st := ProtocolStatus{
		ID:   id,
		Name: e.prog.Name,
		Ell:  e.prog.Ell,
		G0:   g0,
		G1:   g1,
	}
	if detail {
		if asm, err := e.prog.Disassemble(); err == nil {
			st.Asm = asm
		}
	}
	return st
}

// handleProtocolSubmit is POST /v1/protocols: decode, assemble or decode
// bytecode, validate under gas limits, reject environment-class rules,
// content-address, persist, register. Malformed input is 400; sound
// bytecode that is not admissible as a protocol (gas exhaustion,
// evaluation faults, Proposition 3 violations) is 422.
func (s *Server) handleProtocolSubmit(w http.ResponseWriter, r *http.Request) {
	var spec ProtocolSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad protocol spec: %v", err)
		return
	}
	if (spec.Asm == "") == (spec.Code == "") {
		writeError(w, http.StatusBadRequest, "exactly one of asm or code is required")
		return
	}

	var (
		prog *vm.Program
		err  error
	)
	if spec.Asm != "" {
		prog, err = vm.Assemble(spec.Asm)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	} else {
		raw, derr := base64.StdEncoding.DecodeString(spec.Code)
		if derr != nil {
			writeError(w, http.StatusBadRequest, "bad code encoding: %v", derr)
			return
		}
		prog, err = vm.Decode(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if spec.Name != "" {
		prog.Name = spec.Name
	}

	entry, err := buildProtoEntry(prog)
	if err != nil {
		// Structural problems in the program itself are the client's
		// encoding mistake (400); everything past Validate is a semantic
		// admission failure (422): the bytecode runs but exhausts its gas
		// budget, faults during evaluation, or materializes to an
		// environment-class rule that cannot solve bit dissemination.
		status := http.StatusUnprocessableEntity
		if verr := prog.Validate(); verr != nil {
			status = http.StatusBadRequest
		}
		writeError(w, status, "%v", err)
		return
	}

	id := prog.Address()
	created, err := s.protos.register(id, entry)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	w.Header().Set("Location", "/v1/protocols/"+id)
	writeJSON(w, code, protoStatus(id, entry, false))
}

// handleProtocolList is GET /v1/protocols: all registered protocols,
// sorted by content address.
func (s *Server) handleProtocolList(w http.ResponseWriter, r *http.Request) {
	ids := s.protos.ids()
	out := make([]ProtocolStatus, 0, len(ids))
	for _, id := range ids {
		if e, ok := s.protos.lookup(id); ok {
			out = append(out, protoStatus(id, e, false))
		}
	}
	//bitlint:taintdet ids() sorts the addresses before returning, so map iteration order cannot reach the payload
	writeJSON(w, http.StatusOK, out)
}

// handleProtocolGet is GET /v1/protocols/{id}: one protocol with its
// canonical disassembly.
func (s *Server) handleProtocolGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.protos.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown protocol %q", id)
		return
	}
	writeJSON(w, http.StatusOK, protoStatus(id, e, true))
}
