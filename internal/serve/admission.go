package serve

import (
	"sync"
	"time"
)

// maxTenantBuckets bounds the quota table: a flood of requests with
// unique tenant names must not grow server memory without limit. When
// the table is full, the stalest bucket is evicted — its tenant simply
// starts again from a full burst, which only ever errs in the client's
// favor.
const maxTenantBuckets = 4096

// tokenBucket is one tenant's refillable quota.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// admission implements per-tenant token-bucket rate limiting. Buckets
// refill continuously at rate tokens/second up to burst; a submission
// costs one token. The clock is injectable so tests drive it
// deterministically.
type admission struct {
	mu    sync.Mutex
	rate  float64 // tokens per second; <= 0 disables quotas entirely
	burst float64
	now   func() time.Time
	bkts  map[string]*tokenBucket
}

// newAdmission builds the limiter; now == nil uses the wall clock.
func newAdmission(rate float64, burst int, now func() time.Time) *admission {
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		//bitlint:wallclock quota refill is serving policy; simulation results never read it
		now = time.Now
	}
	return &admission{rate: rate, burst: float64(burst), now: now, bkts: map[string]*tokenBucket{}}
}

// allow charges one token to the tenant. When the bucket is empty it
// reports false together with the wait until the next token accrues —
// the Retry-After the handler sends back.
func (a *admission) allow(tenant string) (ok bool, retryAfter time.Duration) {
	if a == nil || a.rate <= 0 {
		return true, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.now()
	b := a.bkts[tenant]
	if b == nil {
		a.evictStalestLocked()
		b = &tokenBucket{tokens: a.burst, last: t}
		a.bkts[tenant] = b
	} else {
		elapsed := t.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens += elapsed * a.rate
			if b.tokens > a.burst {
				b.tokens = a.burst
			}
			b.last = t
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / a.rate
	return false, time.Duration(need * float64(time.Second))
}

// evictStalestLocked makes room for one more bucket when the table is at
// its bound, dropping the least recently refilled tenant.
func (a *admission) evictStalestLocked() {
	if len(a.bkts) < maxTenantBuckets {
		return
	}
	var victim string
	var oldest time.Time
	first := true
	//bitlint:maporder eviction picks the minimum refill time; ties are arbitrary by design
	for name, b := range a.bkts {
		if first || b.last.Before(oldest) {
			victim, oldest, first = name, b.last, false
		}
	}
	delete(a.bkts, victim)
}
