package serve

import (
	"sync"
	"sync/atomic"

	"bitspread/internal/obs"
)

// Event is one NDJSON line of a job's event stream. Round events come
// from the engine probe (shared across the job's replicas, so rounds of
// concurrent replicas interleave); replica lifecycle events come from the
// sim observer; "job_done" is the terminal line every stream ends with.
type Event struct {
	Type string `json:"type"` // round, fault, replica_start, replica_done, checkpoint, recovery, job_done
	// Round is the 1-based round index for round/fault events, or the
	// rounds count for replica_done/recovery events.
	Round int64 `json:"round,omitempty"`
	// Ones and Sampled carry the one-count and activation count of round
	// events.
	Ones    int64 `json:"ones,omitempty"`
	Sampled int64 `json:"sampled,omitempty"`
	// Replica identifies replica-scoped events.
	Replica int `json:"replica,omitempty"`
	// Converged and State describe replica_done events; State also carries
	// the job's terminal state on job_done.
	Converged bool   `json:"converged,omitempty"`
	State     string `json:"state,omitempty"`
	// Dropped reports, on the job_done line, how many events this
	// subscriber lost to backpressure (slow consumers shed load rather
	// than stall the simulation).
	Dropped int64 `json:"dropped,omitempty"`
}

// subscriber is one event-stream client. Its channel is bounded; a full
// channel drops the event and counts it — the hub never blocks a
// simulation on a slow reader.
type subscriber struct {
	ch      chan Event
	dropped atomic.Int64
}

// hub fans a job's probe/observer events out to its stream subscribers.
// It implements both the engine probe contract (RoundDone, FaultApplied,
// ShardRound) and the sim observer contract (ReplicaStart, ReplicaDone,
// Checkpoint, Recovery) so one value serves as Config.Probe and
// Task.Observer. Publishing with no subscribers is a single atomic load —
// jobs nobody watches pay essentially nothing.
type hub struct {
	nsubs   atomic.Int32
	dropped *obs.Counter // server-wide drop counter; nil-safe

	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	closed  bool
	finalEv Event
}

// newHub builds a hub; dropped may be nil.
func newHub(dropped *obs.Counter) *hub {
	return &hub{subs: map[*subscriber]struct{}{}, dropped: dropped}
}

// subscribe registers a new stream client. On a hub that already closed,
// the returned channel is immediately closed and final() carries the
// terminal event, so late subscribers still get a well-formed stream.
func (h *hub) subscribe(buffer int) *subscriber {
	sub := &subscriber{ch: make(chan Event, buffer)}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(sub.ch)
		return sub
	}
	h.subs[sub] = struct{}{}
	h.nsubs.Store(int32(len(h.subs)))
	return sub
}

// unsubscribe removes a client; its channel is not closed (the reader
// owns the exit).
func (h *hub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		h.nsubs.Store(int32(len(h.subs)))
	}
}

// publish fans one event out, dropping per-subscriber when a buffer is
// full.
func (h *hub) publish(ev Event) {
	if h == nil || h.nsubs.Load() == 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	//bitlint:maporder fan-out order is irrelevant: every subscriber gets the same event
	for sub := range h.subs {
		select {
		case sub.ch <- ev:
		default:
			sub.dropped.Add(1)
			h.dropped.Inc()
		}
	}
}

// close ends the stream: the terminal event is stored for finalEvent()
// every subscriber channel is closed. Idempotent.
func (h *hub) close(final Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	h.finalEv = final
	//bitlint:maporder closing order is irrelevant: channels are independent
	for sub := range h.subs {
		close(sub.ch)
		delete(h.subs, sub)
	}
	h.nsubs.Store(0)
}

// finalEvent returns the terminal event (zero until close).
func (h *hub) finalEvent() Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.finalEv
}

// RoundDone implements the engine probe contract.
func (h *hub) RoundDone(round, ones, sampled int64) {
	h.publish(Event{Type: "round", Round: round, Ones: ones, Sampled: sampled})
}

// FaultApplied implements the engine probe contract.
func (h *hub) FaultApplied(round int64) {
	h.publish(Event{Type: "fault", Round: round})
}

// ShardRound implements the engine probe contract; shard load is a
// metrics concern, not a stream one.
func (h *hub) ShardRound(shard int, sampled int64) {}

// ReplicaStart implements the sim observer contract.
func (h *hub) ReplicaStart(task string, replica int) {
	h.publish(Event{Type: "replica_start", Replica: replica})
}

// ReplicaDone implements the sim observer contract.
func (h *hub) ReplicaDone(task string, replica int, rounds int64, converged bool, state string) {
	h.publish(Event{Type: "replica_done", Replica: replica, Round: rounds, Converged: converged, State: state})
}

// Checkpoint implements the sim observer contract.
func (h *hub) Checkpoint(task string, replica int) {
	h.publish(Event{Type: "checkpoint", Replica: replica})
}

// Recovery implements the sim observer contract.
func (h *hub) Recovery(task string, replica int, rounds int64) {
	h.publish(Event{Type: "recovery", Replica: replica, Round: rounds})
}
