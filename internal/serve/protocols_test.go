package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const voterAsm = "name uservoter\nell 3\nfrac\nhalt\n"

// postProtocol submits a protocol spec and returns the response code and
// decoded status (zero-valued for error bodies).
func postProtocol(t *testing.T, ts *httptest.Server, spec ProtocolSpec) (int, ProtocolStatus) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal protocol spec: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/protocols", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post protocol: %v", err)
	}
	defer resp.Body.Close()
	var ps ProtocolStatus
	_ = json.NewDecoder(resp.Body).Decode(&ps)
	return resp.StatusCode, ps
}

func TestProtocolRegisterAndRunJob(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	code, ps := postProtocol(t, ts, ProtocolSpec{Asm: voterAsm})
	if code != http.StatusCreated {
		t.Fatalf("register: status %d, want 201", code)
	}
	if ps.ID == "" || ps.Ell != 3 || ps.Name != "uservoter" {
		t.Fatalf("register: unexpected status %+v", ps)
	}
	// The materialized tables must be the Voter: g(k) = k/ℓ.
	for k, want := range []float64{0, 1.0 / 3, 2.0 / 3, 1} {
		//bitlint:floatexact the Q2.61 pipeline round-trips these constants exactly
		if ps.G0[k] != want || ps.G1[k] != want {
			t.Fatalf("register: table entry %d = (%v, %v), want %v", k, ps.G0[k], ps.G1[k], want)
		}
	}

	// Re-registering identical bytecode is 200, same address.
	code2, ps2 := postProtocol(t, ts, ProtocolSpec{Asm: voterAsm})
	if code2 != http.StatusOK || ps2.ID != ps.ID {
		t.Fatalf("re-register: status %d id %s, want 200 with id %s", code2, ps2.ID, ps.ID)
	}

	// The detail endpoint serves the canonical disassembly.
	resp, err := http.Get(ts.URL + "/v1/protocols/" + ps.ID)
	if err != nil {
		t.Fatalf("get protocol: %v", err)
	}
	var detail ProtocolStatus
	_ = json.NewDecoder(resp.Body).Decode(&detail)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(detail.Asm, "frac") {
		t.Fatalf("detail: status %d asm %q", resp.StatusCode, detail.Asm)
	}

	// A job can reference the registered bytecode.
	spec := JobSpec{Name: "vmjob", N: 64, Z: 1, Rule: "vm:" + ps.ID, Replicas: 2, Seed: 5, MaxRounds: 5000}
	jcode, _, js := submitJSON(t, ts, spec, "")
	if jcode != http.StatusAccepted {
		t.Fatalf("submit vm job: status %d, want 202", jcode)
	}
	if done := waitTerminal(t, ts, js.ID); done.State != "done" {
		t.Fatalf("vm job ended %q (error %q), want done", done.State, done.Error)
	}
}

func TestProtocolRejectsEnvironmentClass(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// A constant-½ rule evaluates fine but violates Proposition 3: it is
	// an environment model, not a protocol, and must be rejected as a
	// semantic (422) failure, not a syntax error.
	code, _ := postProtocol(t, ts, ProtocolSpec{Asm: "name flat\nell 1\nconst 0.5\npushc 0\nhalt\n"})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("environment-class rule: status %d, want 422", code)
	}
}

func TestProtocolRejectsGasExhaustion(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	// Structurally valid bytecode whose evaluation never halts: the gas
	// meter must bound it and the admission must fail with 422.
	code, _ := postProtocol(t, ts, ProtocolSpec{Asm: "ell 1\nloop:\njmp loop\n"})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("gas exhaustion: status %d, want 422", code)
	}
}

func TestProtocolBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name string
		spec ProtocolSpec
	}{
		{"bad asm", ProtocolSpec{Asm: "ell 1\nnot-an-opcode\n"}},
		{"neither field", ProtocolSpec{}},
		{"both fields", ProtocolSpec{Asm: voterAsm, Code: "AAAA"}},
		{"bad base64", ProtocolSpec{Code: "!!!"}},
		{"corrupt bytecode", ProtocolSpec{Code: "AAAAAAAA"}},
	}
	for _, tc := range cases {
		if code, _ := postProtocol(t, ts, tc.spec); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}

	// Unknown vm reference on job submission is a client error too.
	code, _, _ := submitJSON(t, ts, JobSpec{Name: "j", N: 64, Z: 1, Rule: "vm:deadbeef", Replicas: 1, Seed: 1}, "")
	if code != http.StatusBadRequest {
		t.Errorf("unknown vm reference: status %d, want 400", code)
	}
}

func TestProtocolSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	s1, err := New(Options{DataDir: dir})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	code, ps := postProtocol(t, ts1, ProtocolSpec{Asm: voterAsm})
	if code != http.StatusCreated {
		t.Fatalf("register: status %d", code)
	}
	spec := JobSpec{Name: "vmjob", N: 64, Z: 1, Rule: "vm:" + ps.ID, Replicas: 2, Seed: 9, MaxRounds: 5000}
	jcode, _, js := submitJSON(t, ts1, spec, "")
	if jcode != http.StatusAccepted {
		t.Fatalf("submit: status %d", jcode)
	}
	first := waitTerminal(t, ts1, js.ID)
	if first.State != "done" {
		t.Fatalf("job ended %q, want done", first.State)
	}
	payload1 := getResult(t, ts1, js.ID)
	ts1.Close()
	s1.Close()

	// Drop a corrupt stray into the protocol dir: reload must skip it
	// without failing startup.
	if err := os.WriteFile(filepath.Join(dir, "protocols", "junk.bsvm"), []byte("not a program"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Options{DataDir: dir})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })

	resp, err := http.Get(ts2.URL + "/v1/protocols/" + ps.ID)
	if err != nil {
		t.Fatalf("get after restart: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("protocol lost across restart: status %d", resp.StatusCode)
	}

	// The same vm job resubmitted is a cache hit with identical bytes.
	code2, _, js2 := submitJSON(t, ts2, spec, "")
	if code2 != http.StatusOK || !js2.Cached {
		t.Fatalf("resubmit after restart: status %d cached %v, want 200 cached", code2, js2.Cached)
	}
	if payload2 := getResult(t, ts2, js2.ID); !bytes.Equal(payload1, payload2) {
		t.Fatal("result bytes differ across daemon restart")
	}
}
