package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"

	"bitspread/internal/engine"
	"bitspread/internal/sim"
)

// probeFan tees engine probe events to the metrics probe and the job's
// stream hub. Both legs honour the probe contract (non-blocking,
// result-neutral), so the fan does too.
type probeFan struct {
	a, b engine.Probe
}

func (f probeFan) RoundDone(round, ones, sampled int64) {
	f.a.RoundDone(round, ones, sampled)
	f.b.RoundDone(round, ones, sampled)
}
func (f probeFan) FaultApplied(round int64) {
	f.a.FaultApplied(round)
	f.b.FaultApplied(round)
}
func (f probeFan) ShardRound(shard int, sampled int64) {
	f.a.ShardRound(shard, sampled)
	f.b.ShardRound(shard, sampled)
}

// observerFan tees sim run-level observer events the same way.
type observerFan struct {
	a, b sim.Observer
}

func (f observerFan) ReplicaStart(task string, replica int) {
	f.a.ReplicaStart(task, replica)
	f.b.ReplicaStart(task, replica)
}
func (f observerFan) ReplicaDone(task string, replica int, rounds int64, converged bool, state string) {
	f.a.ReplicaDone(task, replica, rounds, converged, state)
	f.b.ReplicaDone(task, replica, rounds, converged, state)
}
func (f observerFan) Checkpoint(task string, replica int) {
	f.a.Checkpoint(task, replica)
	f.b.Checkpoint(task, replica)
}
func (f observerFan) Recovery(task string, replica int, rounds int64) {
	f.a.Recovery(task, replica, rounds)
	f.b.Recovery(task, replica, rounds)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// retryAfterSeconds renders a Retry-After header value, rounding up and
// clamping into [1, 3600]: sub-second waits must never truncate to 0 (a
// zero tells clients to hammer immediately), and NaN, negative, infinite
// or absurdly large inputs — conversion of which to int is otherwise
// platform-defined — degrade to a sane bound instead of garbage.
func retryAfterSeconds(seconds float64) string {
	const maxSeconds = 3600
	if math.IsNaN(seconds) || seconds < 0 {
		seconds = 0
	}
	if seconds > maxSeconds {
		seconds = maxSeconds
	}
	s := int(math.Ceil(seconds))
	if s < 1 {
		s = 1
	}
	return strconv.Itoa(s)
}

// statusOf snapshots a job into its wire status.
func (s *Server) statusOf(jb *job) JobStatus {
	st, errMsg, counts := jb.snapshot()
	js := JobStatus{
		ID:        jb.id,
		Name:      jb.spec.Name,
		State:     st.String(),
		Tenant:    jb.spec.Tenant,
		Replicas:  jb.spec.Replicas,
		Error:     errMsg,
		Completed: counts[0],
		Failed:    counts[1],
		Cancelled: counts[2],
		TimedOut:  counts[3],
	}
	if st == stateDone {
		js.ResultURL = "/v1/jobs/" + jb.id + "/result"
	}
	return js
}

// handleSubmit is POST /v1/jobs: decode, address, admit, enqueue.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	if t := r.Header.Get("X-Tenant"); t != "" {
		spec.Tenant = t
	}
	spec.normalize()
	task, err := spec.buildTask(s.vmRule)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	timeout, err := spec.timeoutOrDefault(s.opts.JobTimeout)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := jobID(task, spec.Replicas)

	// Dedup before admission: a repeat of known work costs nothing, so it
	// is never worth a quota token or a queue slot.
	s.mu.Lock()
	if jb := s.jobs[id]; jb != nil {
		s.mu.Unlock()
		s.m.deduped.Inc()
		st, _, _ := jb.snapshot()
		code := http.StatusAccepted
		if st.terminal() {
			code = http.StatusOK
		}
		js := s.statusOf(jb)
		js.Cached = st == stateDone
		writeJSON(w, code, js)
		return
	}
	draining := s.draining || s.closed
	s.mu.Unlock()

	if _, ok := s.cache.get(id); ok {
		jb := s.registerCachedJob(id, spec, task)
		s.m.cacheHits.Inc()
		js := s.statusOf(jb)
		js.Cached = true
		writeJSON(w, http.StatusOK, js)
		return
	}

	if draining {
		w.Header().Set("Retry-After", retryAfterSeconds(60))
		s.m.rejectedDrain.Inc()
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new jobs")
		return
	}

	tenant := spec.Tenant
	if tenant == "" {
		tenant = "default"
	}
	if ok, ra := s.adm.allow(tenant); !ok {
		w.Header().Set("Retry-After", retryAfterSeconds(ra.Seconds()))
		s.m.rejectedQuota.Inc()
		writeError(w, http.StatusTooManyRequests, "tenant %q over quota", tenant)
		return
	}

	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		w.Header().Set("Retry-After", retryAfterSeconds(60))
		s.m.rejectedDrain.Inc()
		writeError(w, http.StatusServiceUnavailable, "draining: not accepting new jobs")
		return
	}
	if jb := s.jobs[id]; jb != nil {
		// Lost a race with an identical submission; serve its record.
		s.mu.Unlock()
		s.m.deduped.Inc()
		writeJSON(w, http.StatusAccepted, s.statusOf(jb))
		return
	}
	if len(s.queue) >= s.opts.QueueDepth {
		depth := len(s.queue)
		s.mu.Unlock()
		// Rough drain estimate: queued jobs over pool width, at least 1s.
		w.Header().Set("Retry-After", retryAfterSeconds(float64(depth)/float64(s.opts.Workers)))
		s.m.rejectedQueue.Inc()
		writeError(w, http.StatusServiceUnavailable, "queue full (%d jobs)", depth)
		return
	}
	jb := &job{id: id, spec: spec, task: task, timeout: timeout, seq: s.seq, hub: newHub(s.m.eventsDropped)}
	s.seq++
	s.jobs[id] = jb
	// The submit record is fsynced before the client sees 202: an
	// accepted job survives any kill from here on.
	if err := s.log.append(jobLogEntry{Ev: "submit", ID: id, Spec: &spec}); err != nil {
		delete(s.jobs, id)
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, "journaling job: %v", err)
		return
	}
	s.jobsWG.Add(1)
	s.queue <- jb // never blocks: sends are serialized under s.mu and len was checked
	s.m.queueDepth.Set(int64(len(s.queue)))
	s.mu.Unlock()
	s.m.submitted.Inc()

	w.Header().Set("Location", "/v1/jobs/"+id)
	writeJSON(w, http.StatusAccepted, s.statusOf(jb))
}

// registerCachedJob files a synthetic done record for a result found in
// the cache from a previous daemon life.
func (s *Server) registerCachedJob(id string, spec JobSpec, task sim.Task) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if jb := s.jobs[id]; jb != nil {
		return jb
	}
	jb := &job{id: id, spec: spec, task: task, seq: s.seq, hub: newHub(s.m.eventsDropped), state: stateDone}
	s.seq++
	jb.hub.close(Event{Type: "job_done", State: stateDone.String()})
	s.jobs[id] = jb
	s.doneOrder = append(s.doneOrder, id)
	s.evictDoneLocked()
	return jb
}

// handleList is GET /v1/jobs: all known jobs in submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	//bitlint:maporder listing is sorted by submission sequence immediately below
	for _, jb := range s.jobs {
		jobs = append(jobs, jb)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].seq < jobs[j].seq })
	out := make([]JobStatus, len(jobs))
	for i, jb := range jobs {
		out[i] = s.statusOf(jb)
	}
	//bitlint:taintdet map-order taint is laundered by the sort.Slice on submission sequence above; the payload is deterministic
	writeJSON(w, http.StatusOK, out)
}

// lookupJob finds a job by ID, resurrecting a minimal done record for
// results that live only in the disk cache (evicted or from a prior
// life).
func (s *Server) lookupJob(id string) *job {
	s.mu.Lock()
	jb := s.jobs[id]
	s.mu.Unlock()
	if jb != nil {
		return jb
	}
	if _, ok := s.cache.get(id); ok {
		jb := &job{id: id, state: stateDone, hub: newHub(s.m.eventsDropped)}
		jb.hub.close(Event{Type: "job_done", State: stateDone.String()})
		return jb
	}
	return nil
}

// handleStatus is GET /v1/jobs/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	jb := s.lookupJob(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.statusOf(jb))
}

// handleCancel is DELETE /v1/jobs/{id}: request cancellation of a queued
// or running job.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	jb := s.jobs[id]
	s.mu.Unlock()
	if jb == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	if !jb.requestCancel() {
		writeError(w, http.StatusConflict, "job %s already finished", id)
		return
	}
	writeJSON(w, http.StatusAccepted, s.statusOf(jb))
}

// handleResult is GET /v1/jobs/{id}/result: the canonical result payload
// of a completed job, byte-identical for a given job ID wherever and
// whenever it was computed.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	jb := s.lookupJob(id)
	if jb == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	st, errMsg, _ := jb.snapshot()
	switch st {
	case stateDone:
	case stateFailed:
		writeError(w, http.StatusConflict, "job failed: %s", errMsg)
		return
	case stateCancelled:
		writeError(w, http.StatusConflict, "job was cancelled")
		return
	default:
		writeError(w, http.StatusConflict, "job not finished (state %s)", st)
		return
	}
	if payload, ok := s.cache.get(id); ok {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(payload)
		return
	}
	jb.mu.Lock()
	payload := jb.payload
	jb.mu.Unlock()
	if payload == nil {
		writeError(w, http.StatusNotFound, "result for %s no longer available", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(payload)
}

// handleEvents is GET /v1/jobs/{id}/events: the job's live event stream
// as NDJSON. Slow consumers lose events (counted on the terminal line)
// rather than slowing the simulation; every stream ends with a job_done
// line.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	jb := s.lookupJob(id)
	if jb == nil {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out immediately so clients see the stream open
		// before the first event arrives.
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	sub := jb.hub.subscribe(256)
	defer jb.hub.unsubscribe(sub)
	ctx := r.Context()
	for {
		select {
		case ev, ok := <-sub.ch:
			if !ok {
				final := jb.hub.finalEvent()
				if final.Type == "" {
					final = Event{Type: "job_done", State: "unknown"}
				}
				final.Dropped = sub.dropped.Load()
				_ = enc.Encode(final)
				if flusher != nil {
					flusher.Flush()
				}
				return
			}
			if err := enc.Encode(ev); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		case <-ctx.Done():
			return
		}
	}
}

// handleHealthz is liveness: the process is up.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

// handleReadyz is readiness: accepting new work.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ready := !s.draining && !s.closed
	s.mu.Unlock()
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

// handleMetrics is the Prometheus-style exposition of the registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.opts.Registry.WriteText(w)
}
