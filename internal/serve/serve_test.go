package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bitspread/internal/obs"
	"bitspread/internal/sim"
)

// testSpec is a small job that finishes in well under a second.
func testSpec(seed uint64) JobSpec {
	return JobSpec{Name: "t", N: 64, Z: 1, Rule: "voter", Replicas: 2, Seed: seed, MaxRounds: 200}
}

// longSpec is a job that runs until cancelled or timed out within any
// realistic test window.
func longSpec(seed uint64) JobSpec {
	return JobSpec{Name: "long", N: 1 << 13, Z: 1, Rule: "voter", Replicas: 4, Seed: seed, MaxRounds: 50_000_000}
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// submitJSON posts a spec and returns the response code, headers, and
// decoded status body (zero-valued for error bodies).
func submitJSON(t *testing.T, ts *httptest.Server, spec JobSpec, tenant string) (int, http.Header, JobStatus) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var js JobStatus
	_ = json.NewDecoder(resp.Body).Decode(&js)
	return resp.StatusCode, resp.Header, js
}

// getStatus fetches one job's status.
func getStatus(t *testing.T, ts *httptest.Server, id string) (int, JobStatus) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	var js JobStatus
	_ = json.NewDecoder(resp.Body).Decode(&js)
	return resp.StatusCode, js
}

// waitTerminal polls until the job reaches an end state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	for i := 0; i < 4000; i++ {
		code, js := getStatus(t, ts, id)
		if code == http.StatusOK {
			switch js.State {
			case "done", "failed", "cancelled":
				return js
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobStatus{}
}

// getResult fetches the canonical result payload bytes.
func getResult(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result for %s: status %d", id, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read result: %v", err)
	}
	return buf.Bytes()
}

// metricsText fetches the /metrics exposition.
func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read metrics: %v", err)
	}
	return buf.String()
}

func TestSubmitRunResultAndDedup(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	spec := testSpec(1)

	code, hdr, js := submitJSON(t, ts, spec, "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d, want 202", code)
	}
	if js.ID == "" || js.State != "queued" && js.State != "running" && js.State != "done" {
		t.Fatalf("submit status: %+v", js)
	}
	if loc := hdr.Get("Location"); loc != "/v1/jobs/"+js.ID {
		t.Fatalf("Location = %q", loc)
	}

	done := waitTerminal(t, ts, js.ID)
	if done.State != "done" {
		t.Fatalf("job ended %q (error %q), want done", done.State, done.Error)
	}
	if done.Completed != spec.Replicas {
		t.Fatalf("completed %d, want %d", done.Completed, spec.Replicas)
	}
	if done.ResultURL == "" {
		t.Fatalf("done status missing result_url: %+v", done)
	}

	payload := getResult(t, ts, js.ID)
	var res JobResult
	if err := json.Unmarshal(payload, &res); err != nil {
		t.Fatalf("result payload: %v", err)
	}
	if res.ID != js.ID || res.Replicas != spec.Replicas || len(res.Results) != spec.Replicas {
		t.Fatalf("result = %+v", res)
	}

	// An identical submission is deduped against the finished record.
	code, _, again := submitJSON(t, ts, spec, "")
	if code != http.StatusOK || !again.Cached || again.ID != js.ID {
		t.Fatalf("resubmit: code %d status %+v, want 200 cached", code, again)
	}

	mt := metricsText(t, ts)
	for _, want := range []string{"bitspreadd_jobs_done_total 1", "bitspreadd_jobs_deduped_total 1"} {
		if !strings.Contains(mt, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	bad := []string{
		`{"n":64,"z":1,"rule":"nope","seed":1}`,
		`{"n":64,"z":1,"rule":"voter","seed":1,"mode":"warp"}`,
		`{"n":64,"z":1,"rule":"voter","seed":1,"bogus_field":3}`,
		`{"n":64,"z":7,"rule":"voter","seed":1}`,
		`{"n":64,"z":1,"rule":"voter","seed":1,"timeout":"soon"}`,
	}
	for _, body := range bad {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %s: code %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestQuotaRejectsWithRetryAfter(t *testing.T) {
	var secs atomic.Int64
	_, ts := newTestServer(t, Options{
		Workers:     2,
		TenantRate:  1,
		TenantBurst: 2,
		now:         func() time.Time { return time.Unix(1000+secs.Load(), 0) },
	})

	for seed := uint64(1); seed <= 2; seed++ {
		if code, _, _ := submitJSON(t, ts, testSpec(seed), "alice"); code != http.StatusAccepted {
			t.Fatalf("seed %d: code %d, want 202", seed, code)
		}
	}
	code, hdr, _ := submitJSON(t, ts, testSpec(3), "alice")
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: code %d, want 429", code)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", hdr.Get("Retry-After"))
	}

	// Quotas are per tenant: bob is unaffected by alice's flood.
	if code, _, _ := submitJSON(t, ts, testSpec(4), "bob"); code != http.StatusAccepted {
		t.Fatalf("bob: code %d, want 202", code)
	}

	// After the advertised wait, alice's bucket has refilled one token.
	secs.Add(int64(ra))
	if code, _, _ := submitJSON(t, ts, testSpec(3), "alice"); code != http.StatusAccepted {
		t.Fatalf("post-refill submit: code %d, want 202", code)
	}

	if mt := metricsText(t, ts); !strings.Contains(mt, "bitspreadd_rejected_quota_total 1") {
		t.Errorf("metrics missing quota rejection count")
	}
}

func TestQueueFullRejectsBounded(t *testing.T) {
	started := make(chan string, 16)
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	t.Cleanup(unblock)

	_, ts := newTestServer(t, Options{
		Workers:    1,
		QueueDepth: 2,
		testHook:   func(jb *job) { started <- jb.id; <-release },
	})

	// Job 1 occupies the only worker...
	if code, _, _ := submitJSON(t, ts, testSpec(1), ""); code != http.StatusAccepted {
		t.Fatalf("job 1: code %d", code)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never picked up job 1")
	}
	// ...jobs 2 and 3 fill the queue...
	for seed := uint64(2); seed <= 3; seed++ {
		if code, _, _ := submitJSON(t, ts, testSpec(seed), ""); code != http.StatusAccepted {
			t.Fatalf("job %d: code %d", seed, code)
		}
	}
	// ...and job 4 is shed at the door with a drain estimate.
	code, hdr, _ := submitJSON(t, ts, testSpec(4), "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit: code %d, want 503", code)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", hdr.Get("Retry-After"))
	}

	// Bounded memory: the rejected job left no record behind.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	resp.Body.Close()
	if len(list) != 3 {
		t.Fatalf("job table has %d entries, want 3 (rejection must not allocate)", len(list))
	}

	unblock()
	for _, js := range list {
		if st := waitTerminal(t, ts, js.ID); st.State != "done" {
			t.Errorf("job %s ended %q, want done", js.ID, st.State)
		}
	}
	if mt := metricsText(t, ts); !strings.Contains(mt, "bitspreadd_rejected_queue_total 1") {
		t.Errorf("metrics missing queue rejection count")
	}
}

func TestDrainFinishesInFlightAndRejectsNew(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	t.Cleanup(unblock)

	s, ts := newTestServer(t, Options{
		Workers:  1,
		testHook: func(jb *job) { started <- jb.id; <-release },
	})

	_, _, js := submitJSON(t, ts, testSpec(1), "")
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never started the job")
	}

	s.BeginDrain()

	// Readiness flips immediately; liveness stays up.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %d, want 200", resp.StatusCode)
	}

	// New work is rejected with a retry hint; in-flight work is not touched.
	code, hdr, _ := submitJSON(t, ts, testSpec(2), "")
	if code != http.StatusServiceUnavailable || hdr.Get("Retry-After") == "" {
		t.Fatalf("submit during drain: code %d Retry-After %q", code, hdr.Get("Retry-After"))
	}

	unblock()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// The in-flight job finished and its result is still served.
	if _, st := getStatus(t, ts, js.ID); st.State != "done" {
		t.Fatalf("in-flight job ended %q, want done", st.State)
	}
	if payload := getResult(t, ts, js.ID); len(payload) == 0 {
		t.Fatal("empty result after drain")
	}
}

func TestDrainDeadlineInterruptsWithoutTerminalRecord(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	t.Cleanup(unblock)

	dir := t.TempDir()
	s, ts := newTestServer(t, Options{
		DataDir:  dir,
		Workers:  1,
		testHook: func(jb *job) { started <- jb.id; <-release },
	})

	_, _, js := submitJSON(t, ts, longSpec(1), "")
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never started the job")
	}

	// Drain with an already-dead context: its deadline branch fires at
	// once and cancels the base context while the worker is still held at
	// the gate, so on release the job is interrupted the moment it reaches
	// the engine.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	errCh := make(chan error, 1)
	go func() { errCh <- s.Drain(ctx) }()
	for i := 0; i < 4000 && s.baseCtx.Err() == nil; i++ {
		time.Sleep(time.Millisecond)
	}
	if s.baseCtx.Err() == nil {
		t.Fatal("Drain never cancelled the base context")
	}
	unblock()
	if err := <-errCh; err != context.Canceled {
		t.Fatalf("Drain = %v, want context.Canceled", err)
	}

	// The interrupted job carries no terminal record: it reports queued and
	// the intent log holds a submit with no end, so a restart re-runs it.
	if _, st := getStatus(t, ts, js.ID); st.State != "queued" {
		t.Fatalf("interrupted job state %q, want queued", st.State)
	}
	data, err := os.ReadFile(filepath.Join(dir, "jobs.jsonl"))
	if err != nil {
		t.Fatalf("read intent log: %v", err)
	}
	if strings.Contains(string(data), `"ev":"end"`) {
		t.Fatalf("interrupted job got a terminal record:\n%s", data)
	}
}

func TestChaosPanicIsIsolated(t *testing.T) {
	chaos := NewChaos(42, 1, 0) // every job's worker panics
	_, ts := newTestServer(t, Options{Workers: 1, Chaos: chaos})

	_, _, js := submitJSON(t, ts, testSpec(1), "")
	st := waitTerminal(t, ts, js.ID)
	if st.State != "failed" || !strings.Contains(st.Error, "job panicked") {
		t.Fatalf("chaos job ended %+v, want failed with panic error", st)
	}

	// The daemon survived: liveness is green and, with chaos off, the next
	// job completes normally on the same worker pool.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %d", resp.StatusCode)
	}
	chaos.mu.Lock()
	chaos.PanicProb = 0
	chaos.mu.Unlock()
	_, _, js2 := submitJSON(t, ts, testSpec(2), "")
	if st := waitTerminal(t, ts, js2.ID); st.State != "done" {
		t.Fatalf("post-panic job ended %q, want done", st.State)
	}
	if mt := metricsText(t, ts); !strings.Contains(mt, "bitspreadd_job_panics_total 1") {
		t.Errorf("metrics missing panic count")
	}
}

func TestChaosForcedTimeoutFailsJob(t *testing.T) {
	chaos := NewChaos(7, 0, 1) // every job's deadline collapses to 1ms
	_, ts := newTestServer(t, Options{Workers: 1, Chaos: chaos})

	_, _, js := submitJSON(t, ts, longSpec(1), "")
	st := waitTerminal(t, ts, js.ID)
	if st.State != "failed" || !strings.Contains(st.Error, "timed out") {
		t.Fatalf("chaos-timeout job ended %+v, want failed timeout", st)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	t.Cleanup(unblock)

	_, ts := newTestServer(t, Options{
		Workers:  1,
		testHook: func(jb *job) { started <- jb.id; <-release },
	})

	_, _, running := submitJSON(t, ts, longSpec(1), "")
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never started job 1")
	}
	_, _, queued := submitJSON(t, ts, testSpec(2), "")

	for _, id := range []string{running.ID, queued.ID} {
		req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if err != nil {
			t.Fatalf("cancel request: %v", err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("cancel: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("cancel %s: code %d, want 202", id, resp.StatusCode)
		}
	}
	unblock()

	for _, id := range []string{running.ID, queued.ID} {
		if st := waitTerminal(t, ts, id); st.State != "cancelled" {
			t.Errorf("job %s ended %q, want cancelled", id, st.State)
		}
		// Cancelling a finished job conflicts, and its result is gone.
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("re-cancel: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("re-cancel %s: code %d, want 409", id, resp.StatusCode)
		}
		rres, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatalf("result: %v", err)
		}
		rres.Body.Close()
		if rres.StatusCode != http.StatusConflict {
			t.Errorf("result of cancelled %s: code %d, want 409", id, rres.StatusCode)
		}
	}
}

func TestEventStreamEndsWithJobDone(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	var once sync.Once
	unblock := func() { once.Do(func() { close(release) }) }
	t.Cleanup(unblock)

	_, ts := newTestServer(t, Options{
		Workers:  1,
		testHook: func(jb *job) { started <- jb.id; <-release },
	})

	spec := JobSpec{Name: "ev", N: 32, Z: 1, Rule: "voter", Replicas: 1, Seed: 5, MaxRounds: 64}
	_, _, js := submitJSON(t, ts, spec, "")
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never started the job")
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + js.ID + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	unblock()

	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	last := events[len(events)-1]
	if last.Type != "job_done" || last.State != "done" {
		t.Fatalf("final event = %+v, want job_done/done", last)
	}
	counts := map[string]int{}
	for _, ev := range events {
		counts[ev.Type]++
	}
	if counts["round"] == 0 || counts["replica_done"] != spec.Replicas {
		t.Fatalf("event mix %v: want rounds > 0 and %d replica_done", counts, spec.Replicas)
	}
}

// TestRestartResumesJournalByteIdentical is the in-process half of the
// crash/resume acceptance test (the subprocess SIGKILL version lives in
// cmd/bitspreadd): a daemon that died holding an accepted, half-finished
// job — submit fsynced, 8 of 20 replicas checkpointed, no terminal
// record — must finish it after restart with a result byte-identical to
// an uninterrupted run.
func TestRestartResumesJournalByteIdentical(t *testing.T) {
	spec := JobSpec{Name: "resume", N: 256, Z: 1, Rule: "voter", Replicas: 20, Seed: 7, MaxRounds: 300}
	spec.normalize()
	task, err := spec.buildTask(nil)
	if err != nil {
		t.Fatalf("buildTask: %v", err)
	}
	id := jobID(task, spec.Replicas)

	// Fabricate the data dir of the killed daemon.
	dir := t.TempDir()
	j, err := sim.OpenJournal(filepath.Join(dir, "replicas.jsonl"), false)
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	pre := task
	pre.Replicas = 8
	if _, err := sim.RunContext(context.Background(), pre, 1, j); err != nil {
		t.Fatalf("pre-run: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}
	lg, _, err := openJobLog(filepath.Join(dir, "jobs.jsonl"), nil)
	if err != nil {
		t.Fatalf("job log: %v", err)
	}
	if err := lg.append(jobLogEntry{Ev: "submit", ID: id, Spec: &spec}); err != nil {
		t.Fatalf("append submit: %v", err)
	}
	if err := lg.close(); err != nil {
		t.Fatalf("close job log: %v", err)
	}

	// Restart: the job is re-enqueued at startup and completes, serving the
	// 8 checkpointed replicas from the journal.
	reg := obs.NewRegistry()
	srv, ts := newTestServer(t, Options{DataDir: dir, Workers: 1, Registry: reg})
	if st := waitTerminal(t, ts, id); st.State != "done" {
		t.Fatalf("resumed job ended %q (error %q), want done", st.State, st.Error)
	}
	resumed := getResult(t, ts, id)
	// Journal-served replicas never reach an engine (they emit no observer
	// events), so only the 12 unfinished ones show up as run replicas.
	if got := reg.Counter("bitspread_replicas_total").Value(); got != 12 {
		t.Fatalf("replicas run = %d, want 12 (8 of 20 served from the journal)", got)
	}

	// Control: the same job, uninterrupted, in a fresh universe.
	_, ts2 := newTestServer(t, Options{DataDir: t.TempDir(), Workers: 1})
	if code, _, _ := submitJSON(t, ts2, spec, ""); code != http.StatusAccepted {
		t.Fatalf("control submit: code %d", code)
	}
	if st := waitTerminal(t, ts2, id); st.State != "done" {
		t.Fatalf("control job ended %q, want done", st.State)
	}
	control := getResult(t, ts2, id)

	if !bytes.Equal(resumed, control) {
		t.Fatalf("resumed result differs from uninterrupted run:\nresumed: %s\ncontrol: %s", resumed, control)
	}

	// A third daemon life over the same dir serves the result straight from
	// the content-addressed cache without recomputing anything. Daemon
	// lives are sequential: the journal's exclusive flock refuses a second
	// concurrent writer, so the previous life must shut down first.
	ts.Close()
	srv.Close()
	_, ts3 := newTestServer(t, Options{DataDir: dir, Workers: 1})
	code, _, js := submitJSON(t, ts3, spec, "")
	if code != http.StatusOK || !js.Cached {
		t.Fatalf("cached resubmit: code %d status %+v, want 200 cached", code, js)
	}
	if cached := getResult(t, ts3, id); !bytes.Equal(cached, control) {
		t.Fatal("cache round-trip changed the payload")
	}
}

func TestReplayReRunsDoneJobWithMissingCacheFile(t *testing.T) {
	spec := testSpec(9)
	spec.normalize()
	task, err := spec.buildTask(nil)
	if err != nil {
		t.Fatalf("buildTask: %v", err)
	}
	id := jobID(task, spec.Replicas)

	// A terminal "done" record whose cache file never made it to disk.
	dir := t.TempDir()
	lg, _, err := openJobLog(filepath.Join(dir, "jobs.jsonl"), nil)
	if err != nil {
		t.Fatalf("job log: %v", err)
	}
	for _, e := range []jobLogEntry{
		{Ev: "submit", ID: id, Spec: &spec},
		{Ev: "end", ID: id, State: "done"},
	} {
		if err := lg.append(e); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := lg.close(); err != nil {
		t.Fatalf("close job log: %v", err)
	}

	_, ts := newTestServer(t, Options{DataDir: dir, Workers: 1})
	if st := waitTerminal(t, ts, id); st.State != "done" {
		t.Fatalf("re-run ended %q, want done", st.State)
	}
	if payload := getResult(t, ts, id); len(payload) == 0 {
		t.Fatal("empty re-run result")
	}
	if _, err := os.Stat(filepath.Join(dir, "cache", id+".json")); err != nil {
		t.Fatalf("re-run did not republish the cache file: %v", err)
	}
}

func TestLookupServesEvictedResultFromDiskCache(t *testing.T) {
	// MaxDone: 1 forces the first finished job's metadata out of memory as
	// soon as the second finishes; its result must survive on disk.
	_, ts := newTestServer(t, Options{DataDir: t.TempDir(), Workers: 1, MaxDone: 1})

	_, _, first := submitJSON(t, ts, testSpec(1), "")
	if st := waitTerminal(t, ts, first.ID); st.State != "done" {
		t.Fatalf("first job: %q", st.State)
	}
	firstPayload := getResult(t, ts, first.ID)

	_, _, second := submitJSON(t, ts, testSpec(2), "")
	if st := waitTerminal(t, ts, second.ID); st.State != "done" {
		t.Fatalf("second job: %q", st.State)
	}

	// The first job was evicted from the in-memory table, but status and
	// result still answer from the content-addressed cache.
	code, js := getStatus(t, ts, first.ID)
	if code != http.StatusOK || js.State != "done" {
		t.Fatalf("evicted status: code %d state %q", code, js.State)
	}
	if got := getResult(t, ts, first.ID); !bytes.Equal(got, firstPayload) {
		t.Fatal("evicted result changed")
	}
}

func TestMetricsAndHealthEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}
	mt := metricsText(t, ts)
	for _, want := range []string{
		"bitspreadd_jobs_submitted_total",
		"bitspreadd_queue_depth",
		"bitspread_rounds_total",
	} {
		if !strings.Contains(mt, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestUnknownJobIs404(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, path := range []string{"/v1/jobs/deadbeef", "/v1/jobs/deadbeef/result", "/v1/jobs/deadbeef/events"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("get %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: code %d, want 404", path, resp.StatusCode)
		}
	}
}
