package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"bitspread/internal/cli"
	"bitspread/internal/fabric"
)

// PullWorkerOptions configures RunPullWorker, the client half of the
// fabric coordinator API (/v1/lease*). A pull worker owns no sweep
// configuration: the coordinator's lease response carries the
// fabric.SweepSpec, so every worker in the fleet computes the same
// deterministic shard regardless of its local flags.
type PullWorkerOptions struct {
	// URL is the coordinator base URL, e.g. "http://host:8080".
	URL string
	// Name identifies this worker on the lease board. Required: lease
	// re-issue and steal accounting are per-holder.
	Name string
	// ShardDir holds this worker's shard journals
	// (shard-<partition>.jsonl). Shards resume: a worker restarted
	// after a crash re-opens its checkpoint and recomputes only the
	// missing replicas. Required.
	ShardDir string
	// Client is the HTTP client; nil means a 1-minute-timeout client.
	Client *http.Client
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
}

func (o *PullWorkerOptions) withDefaults() error {
	if o.URL == "" {
		return errors.New("pull worker needs a coordinator URL")
	}
	if o.Name == "" {
		return errors.New("pull worker needs a name: lease accounting is per-worker")
	}
	if o.ShardDir == "" {
		return errors.New("pull worker needs a shard directory for its checkpoints")
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: time.Minute}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// RunPullWorker leases partitions from a fabric coordinator until the
// sweep drains: lease → run the shard locally (checkpointing to
// ShardDir, heartbeating the lease) → upload the shard bytes → repeat.
// It returns nil once the coordinator answers "done", and ctx.Err()
// if cancelled. Transient coordinator errors (unreachable, 5xx) are
// retried with jittered backoff; losing a lease mid-shard (renew
// answers 410 Gone) abandons that partition and asks for the next one.
func RunPullWorker(ctx context.Context, opts PullWorkerOptions) error {
	if err := opts.withDefaults(); err != nil {
		return err
	}
	if err := os.MkdirAll(opts.ShardDir, 0o755); err != nil {
		return err
	}
	w := &pullWorker{opts: opts, backoff: cli.NewBackoff(200*time.Millisecond, 5*time.Second, fabric.Assign(opts.Name, 0))}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lr, err := w.lease(ctx)
		if err != nil {
			opts.Logf("worker %s: lease: %v (retrying)", opts.Name, err)
			if serr := w.sleep(ctx, w.backoff.Next()); serr != nil {
				return serr
			}
			continue
		}
		w.backoff.Reset()
		switch lr.Status {
		case "done":
			opts.Logf("worker %s: sweep drained", opts.Name)
			return nil
		case "wait":
			delay := time.Duration(lr.RetryMillis) * time.Millisecond
			if delay <= 0 {
				delay = w.backoff.Next()
			}
			if serr := w.sleep(ctx, delay); serr != nil {
				return serr
			}
		case "lease":
			if err := w.runLease(ctx, lr); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				// The lease will expire and be re-issued; the journal
				// keeps the finished replicas for our next attempt.
				opts.Logf("worker %s: partition %d: %v (abandoning lease)", opts.Name, lr.Partition, err)
				if serr := w.sleep(ctx, w.backoff.Next()); serr != nil {
					return serr
				}
			}
		default:
			return fmt.Errorf("coordinator answered unknown lease status %q", lr.Status)
		}
	}
}

type pullWorker struct {
	opts    PullWorkerOptions
	backoff *cli.Backoff
}

// runLease computes one leased shard and uploads it: the lease is
// heartbeated at TTL/3 while fabric.RunShard works, and a 410 on renew
// cancels the shard immediately (another worker owns it now — finishing
// would only produce a duplicate upload).
func (w *pullWorker) runLease(ctx context.Context, lr LeaseResponse) error {
	shard := fabric.Shard{Index: lr.Partition, Count: lr.Partitions}
	if lr.Spec == nil {
		return fmt.Errorf("lease %s carries no sweep spec", lr.LeaseID)
	}
	path := filepath.Join(w.opts.ShardDir, fmt.Sprintf("shard-%d.jsonl", lr.Partition))
	w.opts.Logf("worker %s: leased partition %s (lease %s, stolen=%v)", w.opts.Name, shard, lr.LeaseID, lr.Stolen)

	shardCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	lost := make(chan struct{})
	heartbeatDone := make(chan struct{})
	go func() {
		defer close(heartbeatDone)
		interval := time.Duration(lr.TTLMillis) * time.Millisecond / 3
		if interval <= 0 {
			interval = time.Second
		}
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-shardCtx.Done():
				return
			case <-ticker.C:
				ok, err := w.renew(shardCtx, lr.LeaseID)
				if err != nil {
					// Transient: the lease may still be live; keep
					// computing and try again next tick.
					w.opts.Logf("worker %s: renew %s: %v", w.opts.Name, lr.LeaseID, err)
					continue
				}
				if !ok {
					close(lost)
					cancel()
					return
				}
			}
		}
	}()

	stats, err := fabric.RunShard(shardCtx, *lr.Spec, shard, path, true, w.opts.Logf)
	cancel()
	<-heartbeatDone
	select {
	case <-lost:
		return fmt.Errorf("lease %s superseded while computing", lr.LeaseID)
	default:
	}
	if err != nil {
		return err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	cr, err := w.complete(ctx, lr.LeaseID, data)
	if err != nil {
		return err
	}
	w.opts.Logf("worker %s: partition %d complete: %d replicas uploaded (duplicate=%v)",
		w.opts.Name, cr.Partition, stats.Checkpointed, cr.Duplicate)
	return nil
}

func (w *pullWorker) lease(ctx context.Context) (LeaseResponse, error) {
	body, _ := json.Marshal(LeaseRequest{Worker: w.opts.Name})
	var lr LeaseResponse
	err := w.post(ctx, "/v1/lease", "application/json", body, &lr)
	return lr, err
}

// renew heartbeats a lease: (false, nil) means the lease is gone for
// good (410) and the worker must abandon the partition.
func (w *pullWorker) renew(ctx context.Context, leaseID string) (bool, error) {
	err := w.post(ctx, "/v1/lease/"+leaseID+"/renew", "application/json", nil, nil)
	var herr *httpError
	if errors.As(err, &herr) && herr.status == http.StatusGone {
		return false, nil
	}
	return err == nil, err
}

func (w *pullWorker) complete(ctx context.Context, leaseID string, shard []byte) (CompleteResponse, error) {
	var cr CompleteResponse
	err := w.post(ctx, "/v1/lease/"+leaseID+"/complete", "application/x-ndjson", shard, &cr)
	return cr, err
}

// httpError is a non-2xx coordinator answer; the status code lets
// callers distinguish routine protocol answers (410 Gone) from faults.
type httpError struct {
	status int
	body   string
}

func (e *httpError) Error() string { return fmt.Sprintf("coordinator answered %d: %s", e.status, e.body) }

func (w *pullWorker) post(ctx context.Context, path, contentType string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opts.URL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := w.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return &httpError{status: resp.StatusCode, body: string(bytes.TrimSpace(raw))}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

func (w *pullWorker) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
