package cli

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"
	"time"
)

func TestBackoffDeterministicAndBounded(t *testing.T) {
	base, max := 100*time.Millisecond, 2*time.Second
	a := NewBackoff(base, max, 7)
	b := NewBackoff(base, max, 7)
	ceiling := base
	for i := 0; i < 12; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("attempt %d: same seed drew %v and %v", i, da, db)
		}
		if da < ceiling/2 || da >= ceiling {
			t.Fatalf("attempt %d: wait %v outside [%v, %v)", i, da, ceiling/2, ceiling)
		}
		if ceiling < max {
			ceiling *= 2
			if ceiling > max {
				ceiling = max
			}
		}
	}
	// A different seed decorrelates the jitter stream.
	c := NewBackoff(base, max, 8)
	same := true
	a.Reset()
	for i := 0; i < 12; i++ {
		if a.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds drew identical jitter for 12 attempts")
	}
}

func TestBackoffResetRewindsSchedule(t *testing.T) {
	b := NewBackoff(time.Second, time.Minute, 1)
	b.Next()
	b.Next()
	b.Reset()
	if d := b.Next(); d >= time.Second {
		t.Fatalf("post-reset wait %v, want < base (attempt 0 range)", d)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	var slept []time.Duration
	calls := 0
	err := Retry(context.Background(), 5, NewBackoff(time.Second, time.Minute, 3),
		func(d time.Duration) { slept = append(slept, d) },
		func() error {
			calls++
			if calls < 3 {
				return errors.New("transient")
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 3 || len(slept) != 2 {
		t.Fatalf("calls = %d, sleeps = %d; want 3 calls, 2 sleeps", calls, len(slept))
	}
}

func TestRetryExhaustionWrapsLastError(t *testing.T) {
	last := errors.New("still down")
	var slept int
	err := Retry(context.Background(), 3, NewBackoff(time.Second, time.Minute, 3),
		func(time.Duration) { slept++ },
		func() error { return last })
	if !errors.Is(err, last) {
		t.Fatalf("Retry = %v, want wrapped %v", err, last)
	}
	if slept != 2 {
		t.Fatalf("slept %d times, want 2 (no sleep after the final attempt)", slept)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	bad := errors.New("400 bad spec")
	calls := 0
	err := Retry(context.Background(), 5, nil,
		func(time.Duration) { t.Fatal("slept on a permanent error") },
		func() error {
			calls++
			return Permanent(bad)
		})
	if err != bad {
		t.Fatalf("Retry = %v, want the unwrapped permanent error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestRetryHonorsRetryAfterHint(t *testing.T) {
	var slept []time.Duration
	hint := time.Hour // far above any backoff draw
	err := Retry(context.Background(), 2, NewBackoff(time.Millisecond, time.Second, 1),
		func(d time.Duration) { slept = append(slept, d) },
		func() error { return RetryAfter(errors.New("429"), hint) })
	if err == nil {
		t.Fatal("Retry succeeded, want exhaustion")
	}
	if len(slept) != 1 || slept[0] != hint {
		t.Fatalf("slept %v, want exactly the server hint %v", slept, hint)
	}

	// A hint below the backoff draw does not shorten the wait.
	slept = nil
	_ = Retry(context.Background(), 2, NewBackoff(time.Hour, time.Hour, 1),
		func(d time.Duration) { slept = append(slept, d) },
		func() error { return RetryAfter(errors.New("429"), time.Millisecond) })
	if len(slept) != 1 || slept[0] < time.Hour/2 {
		t.Fatalf("slept %v, want the backoff draw to win over a shorter hint", slept)
	}
}

func TestRetryStopsWhenContextEnds(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Retry(ctx, 10, NewBackoff(time.Second, time.Second, 1),
		func(time.Duration) { cancel() }, // context dies mid-wait
		func() error {
			calls++
			return errors.New("transient")
		})
	if err != context.Canceled {
		t.Fatalf("Retry = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no attempt after cancellation)", calls)
	}
}

func TestRetryAfterAndPermanentUnwrap(t *testing.T) {
	base := fmt.Errorf("boom")
	if !errors.Is(Permanent(base), base) || !errors.Is(RetryAfter(base, time.Second), base) {
		t.Fatal("wrappers must unwrap to the cause")
	}
	if Permanent(nil) != nil || RetryAfter(nil, time.Second) != nil {
		t.Fatal("wrapping nil must stay nil")
	}
}

func TestBackoffDeepAttemptsStayPositive(t *testing.T) {
	// Regression: with a large Max the doubling loop used to overflow
	// int64 around attempt 63 and return negative waits. Attempt 64 (and
	// far beyond) must yield a positive, capped, jittered delay.
	max := time.Duration(math.MaxInt64)
	b := NewBackoff(time.Millisecond, max, 3)
	var d time.Duration
	for i := 0; i < 80; i++ {
		d = b.Next()
		if d <= 0 {
			t.Fatalf("attempt %d: wait %v, want positive", i, d)
		}
		if d > max {
			t.Fatalf("attempt %d: wait %v exceeds Max", i, d)
		}
	}
	// Deep attempts saturate at the capped jitter band [Max/2, Max).
	if d < max/2 {
		t.Fatalf("attempt 80: wait %v below the saturated band [%v, %v)", d, max/2, max)
	}
}
