package cli

import (
	"strings"
	"testing"
)

func TestBuildRule(t *testing.T) {
	tests := []struct {
		name      string
		spec      string
		ell       int
		delta     float64
		threshold int
		wantName  string
		wantEll   int
		wantErr   bool
	}{
		{"voter", "voter", 3, 0, 1, "Voter", 3, false},
		{"minority", "minority", 5, 0, 1, "Minority", 5, false},
		{"majority upper", "MAJORITY", 3, 0, 1, "Majority", 3, false},
		{"3majority ignores ell", "3majority", 9, 0, 1, "3-Majority", 3, false},
		{"2choice", "2choice", 9, 0, 1, "2-Choice", 2, false},
		{"twochoice alias", "twochoice", 9, 0, 1, "2-Choice", 2, false},
		{"antivoter", "antivoter", 2, 0, 1, "AntiVoter", 2, false},
		{"biased", "biased", 4, 0.1, 1, "BiasedVoter(δ=+0.1)", 4, false},
		{"lazy", "lazy", 2, 0.3, 1, "LazyVoter(q=0.3)", 2, false},
		{"follower", "follower", 5, 0, 3, "Follower(θ=3)", 5, false},
		{"follower bad threshold", "follower", 5, 0, 9, "", 0, true},
		{"unknown", "gossip", 3, 0, 1, "", 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r, err := BuildRule(tt.spec, tt.ell, tt.delta, tt.threshold)
			if tt.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if r.Name() != tt.wantName {
				t.Errorf("name = %q, want %q", r.Name(), tt.wantName)
			}
			if r.SampleSize() != tt.wantEll {
				t.Errorf("ℓ = %d, want %d", r.SampleSize(), tt.wantEll)
			}
		})
	}
}

func TestBuildRuleErrorMentionsOptions(t *testing.T) {
	_, err := BuildRule("nope", 1, 0, 1)
	if err == nil || !strings.Contains(err.Error(), "voter") {
		t.Errorf("error should list known rules: %v", err)
	}
}

func TestBuildSchedule(t *testing.T) {
	tests := []struct {
		spec    string
		ell     int
		coeff   float64
		alpha   float64
		n       int64
		want    int
		wantErr bool
	}{
		{"fixed", 7, 0, 0, 1000000, 7, false},
		{"", 4, 0, 0, 10, 4, false}, // empty defaults to fixed
		{"fixed", 0, 0, 0, 10, 0, true},
		{"sqrtnlogn", 0, 1, 0, 1024, 85, false},
		{"logn", 0, 1, 0, 1024, 7, false},
		{"power", 0, 1, 0.5, 100, 10, false},
		{"POWER", 0, 2, 0.5, 100, 20, false},
		{"mystery", 1, 0, 0, 10, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.spec, func(t *testing.T) {
			s, err := BuildSchedule(tt.spec, tt.ell, tt.coeff, tt.alpha)
			if tt.wantErr {
				if err == nil {
					t.Fatal("expected error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got := s.Of(tt.n); got != tt.want {
				t.Errorf("Of(%d) = %d, want %d", tt.n, got, tt.want)
			}
		})
	}
}

func TestRuleNames(t *testing.T) {
	names := RuleNames()
	for _, want := range []string{"voter", "minority", "majority", "follower"} {
		if !strings.Contains(names, want) {
			t.Errorf("RuleNames() missing %q: %s", want, names)
		}
	}
}
