// Package cli holds the flag-level plumbing shared by the cmd/ binaries:
// building rules and sample-size schedules from string specifications.
package cli

import (
	"fmt"
	"strings"

	"bitspread/internal/protocol"
)

// RuleNames lists the rule spec names understood by BuildRule.
func RuleNames() string {
	return "voter, minority, majority, 3majority, 2choice, antivoter, biased, lazy, follower"
}

// BuildRule constructs a rule from its CLI specification. delta is used by
// "biased" (the tilt) and "lazy" (the laziness); threshold by "follower".
func BuildRule(name string, ell int, delta float64, threshold int) (*protocol.Rule, error) {
	switch strings.ToLower(name) {
	case "voter":
		return protocol.Voter(ell), nil
	case "minority":
		return protocol.Minority(ell), nil
	case "majority":
		return protocol.Majority(ell), nil
	case "3majority":
		return protocol.ThreeMajority(), nil
	case "2choice", "twochoice":
		return protocol.TwoChoice(), nil
	case "antivoter":
		return protocol.AntiVoter(ell), nil
	case "biased":
		return protocol.BiasedVoter(ell, delta), nil
	case "lazy":
		return protocol.LazyVoter(ell, delta), nil
	case "follower":
		if threshold < 1 || threshold > ell {
			return nil, fmt.Errorf("cli: follower threshold %d outside [1, %d]", threshold, ell)
		}
		return protocol.Follower(ell, threshold), nil
	default:
		return nil, fmt.Errorf("cli: unknown rule %q (want one of: %s)", name, RuleNames())
	}
}

// BuildSchedule constructs a sample-size schedule from its CLI spec:
// "fixed" (uses ell), "sqrtnlogn", "logn", or "power" (uses coeff and
// alpha).
func BuildSchedule(spec string, ell int, coeff, alpha float64) (protocol.SampleSchedule, error) {
	switch strings.ToLower(spec) {
	case "", "fixed":
		if ell < 1 {
			return protocol.SampleSchedule{}, fmt.Errorf("cli: fixed schedule needs -ell >= 1, got %d", ell)
		}
		return protocol.Fixed(ell), nil
	case "sqrtnlogn":
		return protocol.SqrtNLogN(coeff), nil
	case "logn":
		return protocol.LogN(coeff), nil
	case "power":
		return protocol.PowerN(coeff, alpha), nil
	default:
		return protocol.SampleSchedule{}, fmt.Errorf("cli: unknown schedule %q (want fixed, sqrtnlogn, logn, power)", spec)
	}
}
