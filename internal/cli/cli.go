// Package cli holds the flag-level plumbing shared by the cmd/ binaries:
// building rules and sample-size schedules from string specifications.
package cli

import (
	"bytes"
	"fmt"
	"os"
	"strings"

	"bitspread/internal/protocol"
	"bitspread/internal/vm"
)

// RuleNames lists the rule spec names understood by BuildRule.
func RuleNames() string {
	return "voter, minority, majority, 3majority, 2choice, antivoter, biased, lazy, follower, constant"
}

// BuildRule constructs a rule from its CLI specification. delta is used by
// "biased" (the tilt) and "lazy" (the laziness); threshold by "follower".
func BuildRule(name string, ell int, delta float64, threshold int) (*protocol.Rule, error) {
	switch strings.ToLower(name) {
	case "voter":
		return protocol.Voter(ell), nil
	case "minority":
		return protocol.Minority(ell), nil
	case "majority":
		return protocol.Majority(ell), nil
	case "3majority":
		return protocol.ThreeMajority(), nil
	case "2choice", "twochoice":
		return protocol.TwoChoice(), nil
	case "antivoter":
		return protocol.AntiVoter(ell), nil
	case "biased":
		return protocol.BiasedVoter(ell, delta), nil
	case "lazy":
		return protocol.LazyVoter(ell, delta), nil
	case "follower":
		if threshold < 1 || threshold > ell {
			return nil, fmt.Errorf("cli: follower threshold %d outside [1, %d]", threshold, ell)
		}
		return protocol.Follower(ell, threshold), nil
	case "constant":
		// Environment-class on purpose (violates Proposition 3): the
		// sample-oblivious baseline for failure-injection experiments.
		return protocol.Constant(ell, delta), nil
	default:
		return nil, fmt.Errorf("cli: unknown rule %q (want one of: %s)", name, RuleNames())
	}
}

// LoadVMRule reads a bytecode program from path — either the canonical
// binary .bsvm container or assembly text, sniffed by magic — and
// materializes it as a rule under the default evaluation limits. The
// returned rule keeps its protocol/environment classification, so
// callers that admit only protocols can still gate on rule.Validate().
func LoadVMRule(path string) (*protocol.Rule, *vm.Program, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("cli: reading vm program: %w", err)
	}
	var prog *vm.Program
	if bytes.HasPrefix(data, []byte("BSVM")) {
		prog, err = vm.Decode(data)
	} else {
		prog, err = vm.Assemble(string(data))
	}
	if err != nil {
		return nil, nil, fmt.Errorf("cli: loading vm program %s: %w", path, err)
	}
	rule, err := prog.Materialize(vm.EvalLimits{})
	if err != nil {
		return nil, nil, fmt.Errorf("cli: materializing vm program %s: %w", path, err)
	}
	return rule, prog, nil
}

// BuildSchedule constructs a sample-size schedule from its CLI spec:
// "fixed" (uses ell), "sqrtnlogn", "logn", or "power" (uses coeff and
// alpha).
func BuildSchedule(spec string, ell int, coeff, alpha float64) (protocol.SampleSchedule, error) {
	switch strings.ToLower(spec) {
	case "", "fixed":
		if ell < 1 {
			return protocol.SampleSchedule{}, fmt.Errorf("cli: fixed schedule needs -ell >= 1, got %d", ell)
		}
		return protocol.Fixed(ell), nil
	case "sqrtnlogn":
		return protocol.SqrtNLogN(coeff), nil
	case "logn":
		return protocol.LogN(coeff), nil
	case "power":
		return protocol.PowerN(coeff, alpha), nil
	default:
		return protocol.SampleSchedule{}, fmt.Errorf("cli: unknown schedule %q (want fixed, sqrtnlogn, logn, power)", spec)
	}
}
