package cli

import (
	"context"
	"errors"
	"fmt"
	"time"

	"bitspread/internal/rng"
)

// Backoff is a seeded jittered exponential backoff: attempt k draws a
// wait uniformly from [d/2, d) where d = min(Max, Base·2ᵏ). The jitter
// comes from the repo's deterministic RNG, so two clients with the same
// seed produce the same wait sequence — retry storms are testable and
// reproducible, while clients with distinct seeds still decorrelate.
type Backoff struct {
	// Base is the attempt-0 backoff ceiling.
	Base time.Duration
	// Max caps the exponential growth.
	Max time.Duration

	g       *rng.RNG
	attempt int
}

// NewBackoff builds a backoff with the given bounds and jitter seed.
func NewBackoff(base, max time.Duration, seed uint64) *Backoff {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max < base {
		max = base
	}
	return &Backoff{Base: base, Max: max, g: rng.New(seed)}
}

// Next draws the wait for the next attempt and advances the schedule.
func (b *Backoff) Next() time.Duration {
	d := b.Base
	// Saturate at Max before doubling can overflow: d ≥ Max/2 means the
	// next doubling reaches or passes Max, so jump straight there. The
	// old `d < Max` guard was not enough — with a large Max the doubling
	// itself wrapped int64 negative around attempt 63 and the schedule
	// returned negative waits.
	for i := 0; i < b.attempt; i++ {
		if d >= b.Max/2 {
			d = b.Max
			break
		}
		d *= 2
	}
	if d > b.Max {
		d = b.Max
	}
	b.attempt++
	// Uniform in [d/2, d): full-jitter's collision resistance without ever
	// returning a uselessly short wait.
	return d/2 + time.Duration(b.g.Float64()*float64(d/2))
}

// Reset rewinds the schedule to attempt 0 (the jitter stream continues).
func (b *Backoff) Reset() { b.attempt = 0 }

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Retry stops immediately and returns it as-is
// semantically: a 400 is not going to become a 202 by waiting.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// retryAfterError carries a server-provided wait hint (a Retry-After
// header) alongside the failure.
type retryAfterError struct {
	err  error
	wait time.Duration
}

func (e *retryAfterError) Error() string { return e.err.Error() }
func (e *retryAfterError) Unwrap() error { return e.err }

// RetryAfter wraps err with the server's advertised wait. Retry honours
// the hint whenever it exceeds the backoff's own draw — a client never
// hammers ahead of the time the server said it needed.
func RetryAfter(err error, wait time.Duration) error {
	if err == nil {
		return nil
	}
	return &retryAfterError{err: err, wait: wait}
}

// Retry runs fn up to attempts times, sleeping a jittered backoff
// between failures. sleep is injectable for deterministic tests; nil
// means time.Sleep. A Permanent-wrapped error stops the loop at once, a
// RetryAfter-wrapped error raises that round's wait to the server's
// hint, and ctx ending aborts between attempts and during waits.
func Retry(ctx context.Context, attempts int, b *Backoff, sleep func(time.Duration), fn func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	if b == nil {
		b = NewBackoff(0, 0, 0)
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	if ctx == nil {
		ctx = context.Background()
	}
	var err error
	for i := 0; i < attempts; i++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		err = fn()
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if i == attempts-1 {
			break
		}
		wait := b.Next()
		var hint *retryAfterError
		if errors.As(err, &hint) && hint.wait > wait {
			wait = hint.wait
		}
		if done := sleepCtx(ctx, wait, sleep); done != nil {
			return done
		}
	}
	return fmt.Errorf("cli: %d attempts failed: %w", attempts, err)
}

// sleepCtx waits via the injected sleeper but returns early with the
// context's error if it ends first.
func sleepCtx(ctx context.Context, d time.Duration, sleep func(time.Duration)) error {
	if ctx.Done() == nil {
		sleep(d)
		return nil
	}
	woke := make(chan struct{})
	go func() {
		sleep(d)
		close(woke)
	}()
	select {
	case <-woke:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
