package sweep

import (
	"context"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"bitspread/internal/protocol"
	"bitspread/internal/sim"
)

func voterGrid() *Grid {
	return &Grid{
		Name:     "test",
		Ns:       []int64{32, 64, 128},
		Families: []*protocol.Family{protocol.VoterFamily(protocol.Fixed(1))},
		Z:        1,
		Init:     WorstCase,
		Replicas: 10,
		Seed:     5,
	}
}

func TestGridValidation(t *testing.T) {
	cases := []*Grid{
		{Ns: nil, Families: []*protocol.Family{protocol.VoterFamily(protocol.Fixed(1))}, Replicas: 1, Init: WorstCase},
		{Ns: []int64{10}, Families: nil, Replicas: 1, Init: WorstCase},
		{Ns: []int64{10}, Families: []*protocol.Family{protocol.VoterFamily(protocol.Fixed(1))}, Replicas: 0, Init: WorstCase},
		{Ns: []int64{10}, Families: []*protocol.Family{protocol.VoterFamily(protocol.Fixed(1))}, Replicas: 1, Init: Init(9)},
	}
	for i, g := range cases {
		if _, err := g.Run(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestGridRunAndTable(t *testing.T) {
	cells, err := voterGrid().Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.Rate != 1 {
			t.Errorf("n=%d: rate %v", c.N, c.Rate)
		}
		if c.Rounds.N != 10 || c.Rounds.Mean <= 0 {
			t.Errorf("n=%d: summary %+v", c.N, c.Rounds)
		}
	}
	out := Table("demo", cells).String()
	if !strings.Contains(out, "Voter[ℓ=1]") || strings.Count(out, "\n") < 5 {
		t.Errorf("table malformed:\n%s", out)
	}
}

func TestGridDeterministic(t *testing.T) {
	a, err := voterGrid().Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := voterGrid().Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d differs across identical runs", i)
		}
	}
}

func TestFitExponent(t *testing.T) {
	cells, err := voterGrid().Run()
	if err != nil {
		t.Fatal(err)
	}
	fit, err := FitExponent(cells, "Voter[ℓ=1]")
	if err != nil {
		t.Fatal(err)
	}
	// Worst-case Voter is Θ(n)-to-Θ(n log n): expect a near-1 exponent.
	if fit.Exponent < 0.6 || fit.Exponent > 1.6 {
		t.Errorf("voter exponent = %v", fit.Exponent)
	}
	if _, err := FitExponent(cells, "nope"); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestGridAdversarialInit(t *testing.T) {
	g := &Grid{
		Name:     "adv",
		Ns:       []int64{256},
		Families: []*protocol.Family{protocol.MinorityFamily(protocol.Fixed(3))},
		Init:     Adversarial,
		Replicas: 5,
		MaxRounds: func(n int64) int64 {
			return int64(math.Pow(float64(n), 0.9))
		},
		Seed: 6,
	}
	cells, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Rate != 0 {
		t.Errorf("adversarial Minority(3) converged with rate %v", cells[0].Rate)
	}
}

func TestGridSequentialMode(t *testing.T) {
	g := voterGrid()
	g.Ns = []int64{24}
	g.Mode = sim.Sequential
	cells, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if cells[0].Rate != 1 {
		t.Errorf("sequential sweep rate = %v", cells[0].Rate)
	}
}

func TestInitString(t *testing.T) {
	for _, i := range []Init{WorstCase, Balanced, Adversarial, Init(7)} {
		if i.String() == "" {
			t.Errorf("empty name for %d", int(i))
		}
	}
}

// A journalled grid checkpoints every replica, a resumed run serves them
// back unchanged, and cancellation propagates through Ctx.
func TestGridJournalAndCtx(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.jsonl")
	j, err := sim.OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	g := voterGrid()
	g.Journal = j
	cells, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != len(g.Ns)*g.Replicas {
		t.Fatalf("journal holds %d replicas, want %d", j.Len(), len(g.Ns)*g.Replicas)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := sim.OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	g2 := voterGrid()
	g2.Journal = j2
	cells2, err := g2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells, cells2) {
		t.Fatal("resumed grid diverged from original")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g3 := voterGrid()
	g3.Ctx = ctx
	if _, err := g3.Run(); err == nil {
		t.Fatal("cancelled grid did not error")
	}
}
