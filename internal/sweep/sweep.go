// Package sweep is the user-facing parameter-sweep framework: run a
// protocol family over a grid of population sizes, aggregate convergence
// statistics per cell, render the result as a table, and fit scaling
// exponents per family — the workflow every experiment in this
// repository follows, packaged for downstream studies.
package sweep

import (
	"context"
	"errors"
	"fmt"

	"bitspread/internal/engine"
	"bitspread/internal/protocol"
	"bitspread/internal/sim"
	"bitspread/internal/stats"
	"bitspread/internal/table"
)

// Init selects the initial configuration of every cell.
type Init int

const (
	// WorstCase starts with every non-source agent wrong.
	WorstCase Init = iota + 1
	// Balanced starts from an even split.
	Balanced
	// Adversarial starts from the Theorem 12 instance derived from the
	// rule's bias analysis (which also overrides Z per its proof case).
	Adversarial
)

// String implements fmt.Stringer.
func (i Init) String() string {
	switch i {
	case WorstCase:
		return "worst-case"
	case Balanced:
		return "balanced"
	case Adversarial:
		return "adversarial"
	default:
		return fmt.Sprintf("Init(%d)", int(i))
	}
}

// ErrGrid is returned for invalid grid specifications.
var ErrGrid = errors.New("sweep: invalid grid")

// Grid specifies a sweep: families × population sizes.
type Grid struct {
	// Name labels the output table.
	Name string
	// Ns are the population sizes.
	Ns []int64
	// Families are the protocol families to compare.
	Families []*protocol.Family
	// Z is the correct opinion (ignored by Adversarial init).
	Z int
	// Init selects the starting configuration.
	Init Init
	// Mode selects the activation model.
	Mode sim.Mode
	// Replicas per cell.
	Replicas int
	// MaxRounds optionally caps runs as a function of n (nil: engine
	// default).
	MaxRounds func(n int64) int64
	// Seed drives all randomness.
	Seed uint64
	// Workers bounds simulation concurrency (<= 0: GOMAXPROCS).
	Workers int
	// Ctx, if non-nil, cancels in-flight cells at round boundaries.
	Ctx context.Context
	// Journal, if non-nil, checkpoints every replica; a partitioned
	// journal additionally restricts the sweep to the replicas the shard
	// owns (the fabric transport for downstream sweeps).
	Journal *sim.Journal
}

// Cell is one (family, n) measurement.
type Cell struct {
	Family string
	N      int64
	// Rate is the convergence fraction with its Wilson 95% interval.
	Rate, RateLo, RateHi float64
	// Rounds summarizes the convergence rounds of converged replicas.
	Rounds stats.Summary
}

// Run executes the grid, one task per cell, deterministically seeded.
func (g *Grid) Run() ([]Cell, error) {
	switch {
	case len(g.Ns) == 0 || len(g.Families) == 0:
		return nil, fmt.Errorf("%w: need at least one n and one family", ErrGrid)
	case g.Replicas < 1:
		return nil, fmt.Errorf("%w: replicas %d", ErrGrid, g.Replicas)
	case g.Init < WorstCase || g.Init > Adversarial:
		return nil, fmt.Errorf("%w: init %d", ErrGrid, int(g.Init))
	}
	mode := g.Mode
	if mode == 0 {
		mode = sim.Parallel
	}
	cells := make([]Cell, 0, len(g.Families)*len(g.Ns))
	taskSeed := g.Seed
	for _, fam := range g.Families {
		for _, n := range g.Ns {
			taskSeed = taskSeed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
			cfg, err := g.cellConfig(fam, n)
			if err != nil {
				return nil, err
			}
			out, err := sim.RunContext(g.Ctx, sim.Task{
				Name:     fmt.Sprintf("%s/%s/n=%d", g.Name, fam.Name(), n),
				Config:   cfg,
				Mode:     mode,
				Replicas: g.Replicas,
				Seed:     taskSeed,
			}, g.Workers, g.Journal)
			if err != nil {
				return nil, err
			}
			rate, lo, hi := out.SuccessRate()
			cells = append(cells, Cell{
				Family: fam.Name(),
				N:      n,
				Rate:   rate, RateLo: lo, RateHi: hi,
				Rounds: out.RoundsSummary(),
			})
		}
	}
	return cells, nil
}

// cellConfig builds the engine configuration for one cell.
func (g *Grid) cellConfig(fam *protocol.Family, n int64) (engine.Config, error) {
	rule := fam.For(n)
	var maxRounds int64
	if g.MaxRounds != nil {
		maxRounds = g.MaxRounds(n)
	}
	switch g.Init {
	case Adversarial:
		cfg, _ := engine.AdversarialConfig(rule, n, maxRounds)
		return cfg, nil
	case Balanced:
		return engine.Config{N: n, Rule: rule, Z: g.Z, X0: engine.BalancedInit(n, g.Z), MaxRounds: maxRounds}, nil
	default:
		return engine.Config{N: n, Rule: rule, Z: g.Z, X0: engine.WorstCaseInit(n, g.Z), MaxRounds: maxRounds}, nil
	}
}

// Table renders cells as an aligned table.
func Table(name string, cells []Cell) *table.Table {
	tb := table.New(name, "family", "n", "P(converge) [95% CI]", "mean τ", "p99 τ")
	for _, c := range cells {
		tb.AddRowf(c.Family, c.N,
			fmt.Sprintf("%.3f [%.3f,%.3f]", c.Rate, c.RateLo, c.RateHi),
			c.Rounds.Mean, c.Rounds.P99)
	}
	return tb
}

// FitExponent fits mean τ ≈ c·n^e over the cells of one family (all
// cells must have converged runs).
func FitExponent(cells []Cell, family string) (stats.PowerFit, error) {
	var xs, ys []float64
	for _, c := range cells {
		if c.Family != family {
			continue
		}
		if c.Rounds.N == 0 {
			return stats.PowerFit{}, fmt.Errorf("sweep: family %q has a cell with no converged runs at n=%d", family, c.N)
		}
		xs = append(xs, float64(c.N))
		ys = append(ys, c.Rounds.Mean)
	}
	if len(xs) < 2 {
		return stats.PowerFit{}, fmt.Errorf("sweep: family %q has %d cells, need >= 2", family, len(xs))
	}
	return stats.FitPower(xs, ys)
}
