// Package graph restricts the sampling topology: instead of the paper's
// uniform sampling over the whole population (a complete interaction
// graph), agents sample uniform *neighbors*. The related opinion-dynamics
// literature ([24]: the voter model on heterogeneous graphs) shows
// convergence times depend heavily on the topology; experiment X9
// measures that sensitivity for bit dissemination with a source.
package graph

import (
	"errors"
	"fmt"

	"bitspread/internal/rng"
)

// ErrDisconnected is returned when a generated graph is not connected
// (the source could never reach some agents).
var ErrDisconnected = errors.New("graph: not connected")

// Topology is a sampling structure over agents 0..Size()-1. Agent 0 hosts
// the source in the graph engine.
type Topology interface {
	// Name returns a display name.
	Name() string
	// Size returns the number of agents.
	Size() int
	// Degree returns the number of neighbors of agent i.
	Degree(i int) int
	// SampleNeighbor returns a uniformly random neighbor of agent i.
	SampleNeighbor(i int, g *rng.RNG) int
}

// Complete is the paper's topology: every agent samples uniformly from
// the entire population (including itself, matching Section 1.1's
// with-replacement sampling over I).
type Complete struct{ n int }

// NewComplete returns the complete topology over n agents.
func NewComplete(n int) (*Complete, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: complete topology needs n >= 2, got %d", n)
	}
	return &Complete{n: n}, nil
}

// Name implements Topology.
func (c *Complete) Name() string { return fmt.Sprintf("complete(n=%d)", c.n) }

// Size implements Topology.
func (c *Complete) Size() int { return c.n }

// Degree implements Topology; self-sampling counts, as in the paper.
func (c *Complete) Degree(int) int { return c.n }

// SampleNeighbor implements Topology.
func (c *Complete) SampleNeighbor(_ int, g *rng.RNG) int { return g.Intn(c.n) }

// adjacency is a dense neighbor-list topology shared by the concrete
// generators below.
type adjacency struct {
	name string
	adj  [][]int32
}

// Name implements Topology.
func (a *adjacency) Name() string { return a.name }

// Size implements Topology.
func (a *adjacency) Size() int { return len(a.adj) }

// Degree implements Topology.
func (a *adjacency) Degree(i int) int { return len(a.adj[i]) }

// SampleNeighbor implements Topology.
func (a *adjacency) SampleNeighbor(i int, g *rng.RNG) int {
	nbrs := a.adj[i]
	return int(nbrs[g.Intn(len(nbrs))])
}

// NewRing returns the circulant graph where agent i is adjacent to
// i±1..±k (mod n): the 1-dimensional lattice with 2k-regular degree.
func NewRing(n, k int) (Topology, error) {
	if n < 3 || k < 1 || 2*k >= n {
		return nil, fmt.Errorf("graph: invalid ring n=%d k=%d", n, k)
	}
	adj := make([][]int32, n)
	for i := 0; i < n; i++ {
		nbrs := make([]int32, 0, 2*k)
		for d := 1; d <= k; d++ {
			nbrs = append(nbrs, int32((i+d)%n), int32((i-d+n)%n))
		}
		adj[i] = nbrs
	}
	return &adjacency{name: fmt.Sprintf("ring(n=%d,k=%d)", n, k), adj: adj}, nil
}

// NewTorus returns the rows×cols 2-dimensional torus (4-regular).
func NewTorus(rows, cols int) (Topology, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: torus needs both sides >= 3, got %dx%d", rows, cols)
	}
	n := rows * cols
	adj := make([][]int32, n)
	idx := func(r, c int) int32 {
		return int32(((r+rows)%rows)*cols + (c+cols)%cols)
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			adj[idx(r, c)] = []int32{
				idx(r-1, c), idx(r+1, c), idx(r, c-1), idx(r, c+1),
			}
		}
	}
	return &adjacency{name: fmt.Sprintf("torus(%dx%d)", rows, cols), adj: adj}, nil
}

// NewStar returns the star graph: agent 0 (the source's host) adjacent to
// everyone, leaves adjacent only to the hub.
func NewStar(n int) (Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: star needs n >= 2, got %d", n)
	}
	adj := make([][]int32, n)
	hub := make([]int32, 0, n-1)
	for i := 1; i < n; i++ {
		hub = append(hub, int32(i))
		adj[i] = []int32{0}
	}
	adj[0] = hub
	return &adjacency{name: fmt.Sprintf("star(n=%d)", n), adj: adj}, nil
}

// NewErdosRenyi returns a G(n, p) sample, retrying (with derived
// randomness) until the graph is connected, up to 32 attempts.
func NewErdosRenyi(n int, p float64, g *rng.RNG) (Topology, error) {
	if n < 2 || p <= 0 || p > 1 {
		return nil, fmt.Errorf("graph: invalid G(n,p) n=%d p=%v", n, p)
	}
	for attempt := 0; attempt < 32; attempt++ {
		adj := make([][]int32, n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if g.Bernoulli(p) {
					adj[i] = append(adj[i], int32(j))
					adj[j] = append(adj[j], int32(i))
				}
			}
		}
		t := &adjacency{name: fmt.Sprintf("G(n=%d,p=%.3g)", n, p), adj: adj}
		if isConnected(t) {
			return t, nil
		}
	}
	return nil, fmt.Errorf("%w after 32 G(%d, %v) attempts", ErrDisconnected, n, p)
}

// isConnected checks connectivity (and positive degrees) by BFS from 0.
func isConnected(t *adjacency) bool {
	n := t.Size()
	for i := 0; i < n; i++ {
		if len(t.adj[i]) == 0 {
			return false
		}
	}
	seen := make([]bool, n)
	queue := []int32{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range t.adj[v] {
			if !seen[u] {
				seen[u] = true
				count++
				queue = append(queue, u)
			}
		}
	}
	return count == n
}
