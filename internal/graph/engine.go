package graph

import (
	"fmt"
	"math"

	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// Config describes a topology-restricted bit-dissemination run. Agent 0
// is the source.
type Config struct {
	// Topology is the sampling structure; its size is the population.
	Topology Topology
	// Rule is the memory-less update rule (samples are drawn from
	// neighbors instead of the whole population).
	Rule *protocol.Rule
	// Z is the correct opinion.
	Z int
	// InitialOnes is the number of non-source agents starting with
	// opinion 1, placed uniformly at random.
	InitialOnes int
	// MaxRounds caps the run (0: 64·n·ln n + 1024 — note sparse
	// topologies like the ring can genuinely need more; set an explicit
	// cap for those).
	MaxRounds int64
	// Record, if non-nil, receives (round, ones) after every round.
	Record func(round, ones int64)
}

// Result reports a topology run.
type Result struct {
	// Converged is true when every agent held z (absorbing under Prop 3
	// rules, as on the complete graph).
	Converged bool
	// Rounds is the convergence round or the executed rounds.
	Rounds int64
	// FinalOnes is the final one-count, source included.
	FinalOnes int64
}

// Run simulates the parallel dynamics on the topology: every round each
// non-source agent draws ℓ uniform neighbors (with replacement), counts
// the ones, and applies the rule. Cost is O(n·ℓ) per round.
func Run(cfg Config, g *rng.RNG) (Result, error) {
	if cfg.Topology == nil {
		return Result{}, fmt.Errorf("graph: topology must not be nil")
	}
	if cfg.Rule == nil {
		return Result{}, fmt.Errorf("graph: rule must not be nil")
	}
	if cfg.Z != 0 && cfg.Z != 1 {
		return Result{}, fmt.Errorf("graph: correct opinion %d", cfg.Z)
	}
	n := cfg.Topology.Size()
	if cfg.InitialOnes < 0 || cfg.InitialOnes > n-1 {
		return Result{}, fmt.Errorf("graph: InitialOnes %d outside [0, %d]", cfg.InitialOnes, n-1)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = int64(64*float64(n)*math.Log(float64(n))) + 1024
	}
	ell := cfg.Rule.SampleSize()
	absorbing := cfg.Rule.CheckProp3() == nil

	cur := make([]uint8, n)
	next := make([]uint8, n)
	cur[0] = uint8(cfg.Z)
	perm := g.Perm(n - 1)
	for i := 0; i < cfg.InitialOnes; i++ {
		cur[perm[i]+1] = 1
	}
	ones := int64(cfg.InitialOnes + cfg.Z)
	target := int64(cfg.Z) * int64(n)

	res := Result{FinalOnes: ones}
	if ones == target && absorbing {
		res.Converged = true
		return res, nil
	}
	for t := int64(1); t <= maxRounds; t++ {
		next[0] = uint8(cfg.Z)
		count := int64(next[0])
		for i := 1; i < n; i++ {
			k := 0
			for s := 0; s < ell; s++ {
				k += int(cur[cfg.Topology.SampleNeighbor(i, g)])
			}
			if g.Bernoulli(cfg.Rule.G(int(cur[i]), k)) {
				next[i] = 1
				count++
			} else {
				next[i] = 0
			}
		}
		cur, next = next, cur
		ones = count
		res.Rounds = t
		res.FinalOnes = ones
		if cfg.Record != nil {
			cfg.Record(t, ones)
		}
		if ones == target && absorbing {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}
