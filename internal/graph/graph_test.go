package graph

import (
	"math"
	"testing"

	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

func TestCompleteTopology(t *testing.T) {
	c, err := NewComplete(10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 10 || c.Degree(3) != 10 {
		t.Errorf("complete: size %d degree %d", c.Size(), c.Degree(3))
	}
	g := rng.New(1)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[c.SampleNeighbor(0, g)]++
	}
	for v, cnt := range counts {
		if cnt < 800 || cnt > 1200 {
			t.Errorf("complete sampling skewed at %d: %d/10000", v, cnt)
		}
	}
	if _, err := NewComplete(1); err == nil {
		t.Error("n=1 accepted")
	}
}

func TestRingTopology(t *testing.T) {
	r, err := NewRing(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Degree(0) != 4 {
		t.Errorf("ring degree = %d, want 4", r.Degree(0))
	}
	// Neighbors of 0 with k=2: {1, 9, 2, 8}.
	want := map[int]bool{1: true, 2: true, 8: true, 9: true}
	g := rng.New(2)
	for i := 0; i < 200; i++ {
		if v := r.SampleNeighbor(0, g); !want[v] {
			t.Fatalf("ring neighbor %d not adjacent to 0", v)
		}
	}
	for _, bad := range [][2]int{{2, 1}, {10, 0}, {10, 5}} {
		if _, err := NewRing(bad[0], bad[1]); err == nil {
			t.Errorf("ring(%d,%d) accepted", bad[0], bad[1])
		}
	}
}

func TestTorusTopology(t *testing.T) {
	tp, err := NewTorus(4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if tp.Size() != 20 {
		t.Errorf("torus size = %d", tp.Size())
	}
	for i := 0; i < 20; i++ {
		if tp.Degree(i) != 4 {
			t.Fatalf("torus degree at %d = %d", i, tp.Degree(i))
		}
	}
	if _, err := NewTorus(2, 5); err == nil {
		t.Error("thin torus accepted")
	}
}

func TestStarTopology(t *testing.T) {
	s, err := NewStar(8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Degree(0) != 7 || s.Degree(3) != 1 {
		t.Errorf("star degrees hub=%d leaf=%d", s.Degree(0), s.Degree(3))
	}
	g := rng.New(3)
	if v := s.SampleNeighbor(5, g); v != 0 {
		t.Errorf("leaf sampled %d, only the hub is adjacent", v)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := rng.New(4)
	er, err := NewErdosRenyi(60, 0.2, g)
	if err != nil {
		t.Fatal(err)
	}
	if er.Size() != 60 {
		t.Errorf("size = %d", er.Size())
	}
	// Mean degree concentrates near (n-1)p = 11.8.
	sum := 0
	for i := 0; i < 60; i++ {
		sum += er.Degree(i)
	}
	mean := float64(sum) / 60
	if mean < 8 || mean > 16 {
		t.Errorf("mean degree = %v, want ≈11.8", mean)
	}
	// Tiny p on a large graph: disconnection should be detected.
	if _, err := NewErdosRenyi(200, 0.001, rng.New(5)); err == nil {
		t.Error("almost-empty G(n,p) reported connected")
	}
	if _, err := NewErdosRenyi(10, 0, g); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestRunValidation(t *testing.T) {
	topo, _ := NewComplete(8)
	voter := protocol.Voter(1)
	cases := []Config{
		{Rule: voter, Z: 1},
		{Topology: topo, Z: 1},
		{Topology: topo, Rule: voter, Z: 2},
		{Topology: topo, Rule: voter, Z: 1, InitialOnes: 8},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg, rng.New(1)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestRunCompleteMatchesMainEngineRegime(t *testing.T) {
	// Voter on the complete topology converges from all-wrong, like the
	// main engine.
	topo, _ := NewComplete(64)
	res, err := Run(Config{
		Topology: topo, Rule: protocol.Voter(1), Z: 1, InitialOnes: 0,
	}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.FinalOnes != 64 {
		t.Fatalf("complete-topology voter: %+v", res)
	}
}

func TestRunOnRingAndTorus(t *testing.T) {
	ring, _ := NewRing(48, 1)
	torus, _ := NewTorus(7, 7)
	for _, topo := range []Topology{ring, torus} {
		res, err := Run(Config{
			Topology:    topo,
			Rule:        protocol.Voter(1),
			Z:           0,
			InitialOnes: topo.Size() - 1,
			MaxRounds:   400_000,
		}, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Errorf("%s: voter did not converge: %+v", topo.Name(), res)
		}
	}
}

func TestRunRecordMonotoneRange(t *testing.T) {
	topo, _ := NewStar(32)
	bad := false
	_, err := Run(Config{
		Topology: topo, Rule: protocol.Voter(1), Z: 1, InitialOnes: 16,
		MaxRounds: 100,
		Record: func(_, ones int64) {
			if ones < 1 || ones > 32 {
				bad = true
			}
		},
	}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Error("recorded one-count out of range")
	}
}

func TestTopologySlowdown(t *testing.T) {
	// The voter mixes slower on the 1-D ring than on the complete graph:
	// compare mean convergence times at equal n.
	const n, reps = 40, 8
	complete, _ := NewComplete(n)
	ring, _ := NewRing(n, 1)
	mean := func(topo Topology, seed uint64) float64 {
		master := rng.New(seed)
		sum := 0.0
		for i := 0; i < reps; i++ {
			res, err := Run(Config{
				Topology: topo, Rule: protocol.Voter(1), Z: 1,
				InitialOnes: 0, MaxRounds: 500_000,
			}, master.Split())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Fatalf("%s run did not converge", topo.Name())
			}
			sum += float64(res.Rounds)
		}
		return sum / reps
	}
	mc := mean(complete, 100)
	mr := mean(ring, 200)
	if !(mr > mc) {
		t.Errorf("ring mean τ %v should exceed complete mean τ %v", mr, mc)
	}
	if math.IsNaN(mc) || math.IsNaN(mr) {
		t.Fatal("NaN means")
	}
}
