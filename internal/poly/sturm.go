package poly

import "math"

// sturmEps is the relative tolerance below which remainder coefficients are
// treated as zero when building Sturm chains. The polynomials arising from
// Eq. 3 have degree at most ℓ+1 with coefficients of magnitude O(2^ℓ), so
// a relative 1e-11 leaves ample headroom over float64 round-off.
const sturmEps = 1e-11

// SturmChain returns the canonical Sturm sequence of p:
// p₀ = p, p₁ = p′, p_{i+1} = −rem(p_{i−1}, p_i), stopping at a (numerically)
// zero remainder. Each term is normalized to unit max coefficient, which
// preserves signs and keeps the chain well conditioned.
func (p Poly) SturmChain() []Poly {
	p = p.trim()
	if len(p) == 0 {
		return nil
	}
	scale := p.MaxAbsCoeff()
	chain := []Poly{p.Scale(1 / scale)}
	d := p.Derivative()
	if d.IsZero() {
		return chain
	}
	chain = append(chain, d.Scale(1/d.MaxAbsCoeff()))
	for {
		prev, cur := chain[len(chain)-2], chain[len(chain)-1]
		_, rem := prev.Div(cur)
		rem = rem.trimEps(sturmEps * math.Max(1, rem.MaxAbsCoeff()))
		if rem.IsZero() {
			return chain
		}
		next := rem.Scale(-1 / rem.MaxAbsCoeff())
		chain = append(chain, next)
	}
}

// signVariations counts the sign changes in the chain evaluated at x,
// skipping zeros, per Sturm's theorem.
func signVariations(chain []Poly, x float64) int {
	variations := 0
	prev := 0 // sign of the last nonzero value seen
	for _, q := range chain {
		v := q.Eval(x)
		s := 0
		switch {
		case v > 0:
			s = 1
		case v < 0:
			s = -1
		}
		if s != 0 {
			if prev != 0 && s != prev {
				variations++
			}
			prev = s
		}
	}
	return variations
}

// CountRoots returns the number of distinct real roots of p in the
// half-open interval (a, b], by Sturm's theorem. It panics if a >= b and
// returns 0 for constant polynomials. The count is exact provided neither
// endpoint is (numerically) a root of p; callers with roots at endpoints
// should nudge the endpoints (see RootsIn).
func (p Poly) CountRoots(a, b float64) int {
	if a >= b {
		panic("poly: CountRoots requires a < b")
	}
	p = p.trim()
	if len(p) <= 1 {
		return 0
	}
	chain := p.SturmChain()
	n := signVariations(chain, a) - signVariations(chain, b)
	if n < 0 {
		return 0
	}
	return n
}

// RootsIn returns the distinct real roots of p in the closed interval
// [a, b], each located to within tol, in increasing order. Roots are
// isolated by recursive Sturm bisection, so even-multiplicity roots (where
// p touches zero without a sign change) are found. Endpoints that are
// roots are detected by direct evaluation against a tolerance scaled to
// the coefficient magnitude.
func (p Poly) RootsIn(a, b, tol float64) []float64 {
	p = p.trim()
	if len(p) <= 1 || a > b {
		return nil
	}
	if tol <= 0 {
		tol = 1e-12
	}
	valEps := sturmEps * math.Max(1, p.MaxAbsCoeff()) * float64(len(p))

	var roots []float64
	if math.Abs(p.Eval(a)) <= valEps {
		roots = append(roots, a)
	}
	if b > a && math.Abs(p.Eval(b)) <= valEps {
		roots = append(roots, b)
	}

	// Shrink to an open interval clear of endpoint roots before counting.
	lo, hi := a, b
	nudge := math.Max(tol, 1e-9*(b-a+1))
	for math.Abs(p.Eval(lo)) <= valEps && lo < b {
		lo += nudge
	}
	for math.Abs(p.Eval(hi)) <= valEps && hi > lo {
		hi -= nudge
	}
	if hi-lo > tol {
		chain := p.SturmChain()
		interior := isolate(chain, lo, hi, tol)
		roots = append(roots, interior...)
	}

	return dedupSorted(roots, 2*tol)
}

// isolate recursively bisects (lo, hi] until each piece holds at most one
// distinct root, then refines that piece to width tol, returning midpoints.
func isolate(chain []Poly, lo, hi, tol float64) []float64 {
	count := signVariations(chain, lo) - signVariations(chain, hi)
	switch {
	case count <= 0:
		return nil
	case count == 1 || hi-lo <= tol:
		return []float64{refine(chain, lo, hi, tol)}
	}
	mid := (lo + hi) / 2
	left := isolate(chain, lo, mid, tol)
	right := isolate(chain, mid, hi, tol)
	return append(left, right...)
}

// refine narrows an interval known to contain exactly one distinct root,
// using Sturm counts (robust to even multiplicity), and returns its
// midpoint.
func refine(chain []Poly, lo, hi, tol float64) float64 {
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if signVariations(chain, lo)-signVariations(chain, mid) >= 1 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}

// dedupSorted sorts values (insertion sort: the slices here are tiny) and
// merges entries closer than sep.
func dedupSorted(xs []float64, sep float64) []float64 {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	out := xs[:0]
	for _, x := range xs {
		if len(out) == 0 || x-out[len(out)-1] > sep {
			out = append(out, x)
		}
	}
	return out
}
