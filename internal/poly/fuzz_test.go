package poly

import (
	"math"
	"testing"
)

// FuzzDivIdentity fuzzes the division identity p = q·quot + rem with a
// monic divisor (well-conditioned), plus the degree contract.
func FuzzDivIdentity(f *testing.F) {
	f.Add(1.0, -2.0, 3.0, 0.5, -1.0, 2.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, a, b, c, d, q0, q1 float64) {
		for _, v := range []float64{a, b, c, d, q0, q1} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				t.Skip()
			}
		}
		p := New(a, b, c, d)
		q := New(q0, q1, 1) // monic quadratic
		quot, rem := p.Div(q)
		recon := q.Mul(quot).Add(rem)
		scale := math.Max(1, p.MaxAbsCoeff())
		diff := recon.Sub(p)
		if diff.MaxAbsCoeff() > 1e-6*scale {
			t.Fatalf("p=%v q=%v: reconstruction off by %v", p, q, diff.MaxAbsCoeff())
		}
		if rem.Degree() >= q.Degree() {
			t.Fatalf("rem degree %d >= divisor degree %d", rem.Degree(), q.Degree())
		}
	})
}

// FuzzRootsInBounds fuzzes root isolation on random cubics: every
// reported root must lie in the query interval and nearly vanish.
func FuzzRootsInBounds(f *testing.F) {
	f.Add(-0.5, 1.0, 0.25, -2.0)
	f.Fuzz(func(t *testing.T, c0, c1, c2, c3 float64) {
		for _, v := range []float64{c0, c1, c2, c3} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 100 {
				t.Skip()
			}
		}
		p := New(c0, c1, c2, c3)
		if p.Degree() < 1 {
			t.Skip()
		}
		roots := p.RootsIn(0, 1, 1e-10)
		valEps := 1e-6 * math.Max(1, p.MaxAbsCoeff())
		for _, r := range roots {
			if r < -1e-9 || r > 1+1e-9 {
				t.Fatalf("root %v outside [0,1]", r)
			}
			if v := math.Abs(p.Eval(r)); v > valEps {
				t.Fatalf("p(%v) = %v, not a root of %v", r, v, p)
			}
		}
	})
}
