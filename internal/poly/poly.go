// Package poly implements dense univariate real polynomials with the root
// machinery the paper's Section 4 analysis relies on: the bias function
// F_n(p) of Eq. 3 is a polynomial of degree at most ℓ+1, and the lower-bound
// proof inspects the number, location and sign pattern of its roots in
// [0, 1]. This package provides arithmetic, Sturm-sequence root counting,
// and certified root isolation by Sturm bisection (which, unlike sign-change
// scanning, also finds even-multiplicity roots).
package poly

import (
	"fmt"
	"math"
	"strings"
)

// Poly is a polynomial in one variable; Poly[i] is the coefficient of x^i.
// The zero polynomial is represented by an empty or all-zero slice. Values
// are treated as immutable: operations return fresh slices.
type Poly []float64

// New returns a polynomial with the given coefficients, constant term
// first. Trailing zero coefficients are trimmed.
func New(coeffs ...float64) Poly {
	p := make(Poly, len(coeffs))
	copy(p, coeffs)
	return p.trim()
}

// trim removes trailing coefficients that are exactly zero.
func (p Poly) trim() Poly {
	n := len(p)
	//bitlint:floatexact trim drops only bit-exact zero coefficients; near-zeros are trimEps's job
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// trimEps removes trailing coefficients whose magnitude is below eps.
func (p Poly) trimEps(eps float64) Poly {
	n := len(p)
	for n > 0 && math.Abs(p[n-1]) <= eps {
		n--
	}
	return p[:n]
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.trim()) == 0 }

// Degree returns the degree of p, or -1 for the zero polynomial.
func (p Poly) Degree() int { return len(p.trim()) - 1 }

// MaxAbsCoeff returns the largest coefficient magnitude (0 for the zero
// polynomial). It calibrates the tolerances used by the root machinery.
func (p Poly) MaxAbsCoeff() float64 {
	m := 0.0
	for _, c := range p {
		if a := math.Abs(c); a > m {
			m = a
		}
	}
	return m
}

// Eval evaluates p at x by Horner's rule.
func (p Poly) Eval(x float64) float64 {
	v := 0.0
	for i := len(p) - 1; i >= 0; i-- {
		v = v*x + p[i]
	}
	return v
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := max(len(p), len(q))
	out := make(Poly, n)
	copy(out, p)
	for i, c := range q {
		out[i] += c
	}
	return out.trim()
}

// Sub returns p - q.
func (p Poly) Sub(q Poly) Poly {
	n := max(len(p), len(q))
	out := make(Poly, n)
	copy(out, p)
	for i, c := range q {
		out[i] -= c
	}
	return out.trim()
}

// Mul returns the product p·q by direct convolution.
func (p Poly) Mul(q Poly) Poly {
	p, q = p.trim(), q.trim()
	if len(p) == 0 || len(q) == 0 {
		return nil
	}
	out := make(Poly, len(p)+len(q)-1)
	for i, a := range p {
		//bitlint:floatexact sparse skip; a bit-exact zero coefficient contributes nothing to the convolution
		if a == 0 {
			continue
		}
		for j, b := range q {
			out[i+j] += a * b
		}
	}
	return out.trim()
}

// Scale returns k·p.
func (p Poly) Scale(k float64) Poly {
	//bitlint:floatexact scaling by bit-exact zero is the zero polynomial; near-zero scales stay representable
	if k == 0 {
		return nil
	}
	out := make(Poly, len(p))
	for i, c := range p {
		out[i] = k * c
	}
	return out.trim()
}

// Derivative returns p'.
func (p Poly) Derivative() Poly {
	p = p.trim()
	if len(p) <= 1 {
		return nil
	}
	out := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		out[i-1] = float64(i) * p[i]
	}
	return out.trim()
}

// Div returns the quotient and remainder of p / q such that
// p = q·quot + rem with deg(rem) < deg(q). It panics if q is zero.
func (p Poly) Div(q Poly) (quot, rem Poly) {
	q = q.trim()
	if len(q) == 0 {
		panic("poly: division by zero polynomial")
	}
	rem = make(Poly, len(p))
	copy(rem, p)
	rem = rem.trim()
	if len(rem) < len(q) {
		return nil, rem
	}
	quot = make(Poly, len(rem)-len(q)+1)
	lead := q[len(q)-1]
	for len(rem) >= len(q) {
		d := len(rem) - len(q)
		c := rem[len(rem)-1] / lead
		quot[d] = c
		for i, b := range q {
			rem[d+i] -= c * b
		}
		// The leading term cancels by construction; drop it explicitly to
		// guarantee progress despite round-off.
		rem = rem[:len(rem)-1].trim()
	}
	return quot.trim(), rem
}

// String renders the polynomial in human-readable form, e.g.
// "1 - 2x + 0.5x^3".
func (p Poly) String() string {
	p = p.trim()
	if len(p) == 0 {
		return "0"
	}
	var b strings.Builder
	first := true
	for i, c := range p {
		//bitlint:floatexact display formatting elides only terms stored as bit-exact zero
		if c == 0 {
			continue
		}
		switch {
		case first:
			first = false
			if c < 0 {
				b.WriteString("-")
			}
		case c < 0:
			b.WriteString(" - ")
		default:
			b.WriteString(" + ")
		}
		a := math.Abs(c)
		switch {
		case i == 0:
			fmt.Fprintf(&b, "%g", a)
		//bitlint:floatexact display formatting; the implicit-1 shorthand applies only to a bit-exact 1
		case a == 1:
			// coefficient 1 is implicit
		default:
			fmt.Fprintf(&b, "%g", a)
		}
		switch {
		case i == 1:
			b.WriteString("x")
		case i > 1:
			fmt.Fprintf(&b, "x^%d", i)
		}
	}
	if first {
		return "0"
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
