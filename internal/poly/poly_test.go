package poly

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func polyAlmostEqual(p, q Poly, tol float64) bool {
	p, q = p.trim(), q.trim()
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if math.Abs(p[i]-q[i]) > tol {
			return false
		}
	}
	return true
}

func TestNewTrims(t *testing.T) {
	p := New(1, 2, 0, 0)
	if p.Degree() != 1 {
		t.Errorf("degree = %d, want 1", p.Degree())
	}
	if !New().IsZero() || !New(0, 0).IsZero() {
		t.Error("zero polynomial not recognized")
	}
	if New().Degree() != -1 {
		t.Errorf("zero polynomial degree = %d, want -1", New().Degree())
	}
}

func TestEval(t *testing.T) {
	p := New(1, -2, 3) // 1 - 2x + 3x²
	tests := []struct{ x, want float64 }{
		{0, 1}, {1, 2}, {2, 9}, {-1, 6},
	}
	for _, tt := range tests {
		if got := p.Eval(tt.x); got != tt.want {
			t.Errorf("p(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if got := New().Eval(5); got != 0 {
		t.Errorf("zero poly eval = %v", got)
	}
}

func TestArithmetic(t *testing.T) {
	p := New(1, 2)  // 1+2x
	q := New(3, -2) // 3-2x
	if got, want := p.Add(q), New(4); !polyAlmostEqual(got, want, 0) {
		t.Errorf("Add = %v, want %v", got, want)
	}
	if got, want := p.Sub(q), New(-2, 4); !polyAlmostEqual(got, want, 0) {
		t.Errorf("Sub = %v, want %v", got, want)
	}
	if got, want := p.Mul(q), New(3, 4, -4); !polyAlmostEqual(got, want, 0) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
	if got := p.Mul(New()); !got.IsZero() {
		t.Errorf("Mul by zero = %v", got)
	}
	if got, want := p.Scale(-3), New(-3, -6); !polyAlmostEqual(got, want, 0) {
		t.Errorf("Scale = %v, want %v", got, want)
	}
}

func TestDerivative(t *testing.T) {
	p := New(5, 1, 2, 3) // 5 + x + 2x² + 3x³
	want := New(1, 4, 9)
	if got := p.Derivative(); !polyAlmostEqual(got, want, 0) {
		t.Errorf("Derivative = %v, want %v", got, want)
	}
	if !New(7).Derivative().IsZero() {
		t.Error("derivative of constant should be zero")
	}
}

func TestProductRuleQuick(t *testing.T) {
	// Property: (pq)' = p'q + pq'.
	f := func(a, b, c, d, e, g int8) bool {
		p := New(float64(a), float64(b), float64(c))
		q := New(float64(d), float64(e), float64(g))
		lhs := p.Mul(q).Derivative()
		rhs := p.Derivative().Mul(q).Add(p.Mul(q.Derivative()))
		return polyAlmostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDiv(t *testing.T) {
	// x² - 1 = (x-1)(x+1).
	p := New(-1, 0, 1)
	q := New(-1, 1)
	quot, rem := p.Div(q)
	if !polyAlmostEqual(quot, New(1, 1), 1e-12) {
		t.Errorf("quot = %v, want 1+x", quot)
	}
	if !rem.IsZero() {
		t.Errorf("rem = %v, want 0", rem)
	}
	// 2x+3 divided by x²: quotient 0, remainder 2x+3.
	quot, rem = New(3, 2).Div(New(0, 0, 1))
	if !quot.IsZero() || !polyAlmostEqual(rem, New(3, 2), 0) {
		t.Errorf("low/high division: quot %v rem %v", quot, rem)
	}
}

func TestDivQuickIdentity(t *testing.T) {
	// Property: p = q*quot + rem, deg(rem) < deg(q).
	f := func(a, b, c, d, e int8, q1, q2 int8) bool {
		p := New(float64(a), float64(b), float64(c), float64(d), float64(e))
		q := New(float64(q1), float64(q2), 1) // monic quadratic: well conditioned
		quot, rem := p.Div(q)
		recon := q.Mul(quot).Add(rem)
		return polyAlmostEqual(recon, p, 1e-7) && rem.Degree() < q.Degree()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("division by zero polynomial did not panic")
		}
	}()
	New(1, 2).Div(New())
}

func TestString(t *testing.T) {
	tests := []struct {
		p    Poly
		want string
	}{
		{New(), "0"},
		{New(1), "1"},
		{New(0, 1), "x"},
		{New(1, -2, 0, 0.5), "1 - 2x + 0.5x^3"},
		{New(-1, 1), "-1 + x"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("String(%v) = %q, want %q", []float64(tt.p), got, tt.want)
		}
	}
}

func TestCountRootsSimple(t *testing.T) {
	tests := []struct {
		name string
		p    Poly
		a, b float64
		want int
	}{
		{"linear", New(-0.5, 1), 0, 1, 1},                    // root 0.5
		{"quadratic two roots", New(0.02, -0.3, 1), 0, 1, 2}, // roots ~0.0764, ~0.2236... actually x²-0.3x+0.02 roots 0.1,0.2
		{"no roots", New(1, 0, 1), -10, 10, 0},               // x²+1
		{"cubic", New(0, -1, 0, 1).Scale(1), -2, 2, 3},       // x³-x roots -1,0,1: (a,b]=( -2,2] counts all 3
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.CountRoots(tt.a, tt.b); got != tt.want {
				t.Errorf("CountRoots = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestCountRootsMultiplicity(t *testing.T) {
	// (x-0.5)² has one distinct root in (0,1].
	p := New(-0.5, 1).Mul(New(-0.5, 1))
	if got := p.CountRoots(0, 1); got != 1 {
		t.Errorf("double root counted %d times, want 1 (distinct)", got)
	}
}

func TestRootsInKnown(t *testing.T) {
	tests := []struct {
		name string
		p    Poly
		a, b float64
		want []float64
	}{
		{"linear", New(-0.5, 1), 0, 1, []float64{0.5}},
		{"endpoints", New(0, -1, 0, 1), -1, 1, []float64{-1, 0, 1}}, // x³-x
		{"double root", New(-0.3, 1).Mul(New(-0.3, 1)), 0, 1, []float64{0.3}},
		{"none", New(2, 0, 1), 0, 1, nil},
		{"quadratic", New(0.02, -0.3, 1), 0, 1, []float64{0.1, 0.2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.p.RootsIn(tt.a, tt.b, 1e-10)
			if len(got) != len(tt.want) {
				t.Fatalf("RootsIn = %v, want %v", got, tt.want)
			}
			for i := range got {
				if math.Abs(got[i]-tt.want[i]) > 1e-8 {
					t.Errorf("root %d = %v, want %v", i, got[i], tt.want[i])
				}
			}
		})
	}
}

func TestRootsInWilkinsonStyle(t *testing.T) {
	// Product of (x - k/10) for k = 1..6: clustered roots stress isolation.
	p := New(1)
	var want []float64
	for k := 1; k <= 6; k++ {
		r := float64(k) / 10
		p = p.Mul(New(-r, 1))
		want = append(want, r)
	}
	got := p.RootsIn(0, 1, 1e-10)
	if len(got) != len(want) {
		t.Fatalf("found %d roots %v, want %d", len(got), got, len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-7 {
			t.Errorf("root %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRootsMatchCountQuick(t *testing.T) {
	// Property: for random cubics with roots drawn in (0,1), RootsIn finds
	// exactly the planted distinct roots.
	f := func(r1, r2, r3 uint8) bool {
		roots := []float64{
			0.05 + 0.9*float64(r1)/255,
			0.05 + 0.9*float64(r2)/255,
			0.05 + 0.9*float64(r3)/255,
		}
		p := New(1)
		for _, r := range roots {
			p = p.Mul(New(-r, 1))
		}
		sort.Float64s(roots)
		distinct := roots[:0:0]
		for _, r := range roots {
			if len(distinct) == 0 || r-distinct[len(distinct)-1] > 1e-6 {
				distinct = append(distinct, r)
			}
		}
		got := p.RootsIn(0, 1, 1e-10)
		if len(got) != len(distinct) {
			return false
		}
		for i := range got {
			if math.Abs(got[i]-distinct[i]) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCountRootsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CountRoots with a >= b did not panic")
		}
	}()
	New(0, 1).CountRoots(1, 1)
}
