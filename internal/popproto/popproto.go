// Package popproto implements the population-protocol model that §1 of
// the paper contrasts with: agents interact in *pairs* picked uniformly
// at random, and — unlike the paper's passive sampling — an interaction
// updates both parties through a joint transition function that can see
// the full state of the partner (active communication). The package
// provides the scheduler plus three classical protocols used as
// reference points:
//
//   - Epidemic: one-way infection, the Θ(n log n)-interaction broadcast
//     primitive behind [22]'s dissemination protocols;
//   - PairwiseVoter: the initiator copies the responder's opinion —
//     exactly the sequential Voter of [14], cross-validated against the
//     birth–death engine in tests;
//   - FourStateMajority: the classical exact-majority automaton with
//     strong/weak states (±2, ±1), which decides the initial majority —
//     and, having no notion of a source, fails bit dissemination the same
//     way Majority dynamics does.
package popproto

import (
	"errors"
	"fmt"

	"bitspread/internal/rng"
)

// State is an agent state; protocols define their own encoding.
type State uint8

// Protocol is a pairwise transition function over agent states.
type Protocol interface {
	// Name returns a display name.
	Name() string
	// States returns the number of states (all states are < States()).
	States() int
	// Interact returns the successor states of an ordered pair
	// (initiator, responder).
	Interact(initiator, responder State, g *rng.RNG) (State, State)
	// Output maps a state to the agent's current binary output.
	Output(s State) uint8
}

// ErrConfig is returned for invalid configurations.
var ErrConfig = errors.New("popproto: invalid configuration")

// Config describes a population-protocol run. Agent 0 is a source when
// SourceState is non-negative: its state is pinned after every
// interaction (the paper's source made pairwise).
type Config struct {
	// N is the population size.
	N int
	// Protocol is the pairwise transition function.
	Protocol Protocol
	// Init gives every agent's initial state.
	Init func(i int) State
	// SourceState pins agent 0 to this state when >= 0.
	SourceState int
	// MaxInteractions caps the run (0: 64·n·ln n·n... interpreted as
	// 64·n²·log₂n, far above the Θ(n log n) epidemics need).
	MaxInteractions int64
	// Stop, if non-nil, is evaluated on the output histogram after every
	// interaction and ends the run when true.
	Stop func(outputs [2]int) bool
}

// Result reports a run.
type Result struct {
	// Interactions executed (≤ the cap).
	Interactions int64
	// Stopped is true when the Stop predicate fired.
	Stopped bool
	// Outputs is the final output histogram (count of 0s and 1s).
	Outputs [2]int
	// States is the final state histogram.
	States []int
}

// Run simulates the sequential pairwise scheduler: each step picks an
// ordered pair of distinct agents uniformly at random and applies the
// protocol.
func Run(cfg Config, g *rng.RNG) (Result, error) {
	if cfg.N < 2 {
		return Result{}, fmt.Errorf("%w: N=%d", ErrConfig, cfg.N)
	}
	if cfg.Protocol == nil || cfg.Init == nil {
		return Result{}, fmt.Errorf("%w: protocol and init required", ErrConfig)
	}
	q := cfg.Protocol.States()
	states := make([]State, cfg.N)
	var outputs [2]int
	for i := range states {
		s := cfg.Init(i)
		if int(s) >= q {
			return Result{}, fmt.Errorf("%w: init state %d out of range", ErrConfig, s)
		}
		states[i] = s
	}
	if cfg.SourceState >= 0 {
		if cfg.SourceState >= q {
			return Result{}, fmt.Errorf("%w: source state %d out of range", ErrConfig, cfg.SourceState)
		}
		states[0] = State(cfg.SourceState)
	}
	for _, s := range states {
		outputs[cfg.Protocol.Output(s)]++
	}

	maxI := cfg.MaxInteractions
	if maxI <= 0 {
		n := int64(cfg.N)
		maxI = 64 * n * n
	}

	res := Result{Outputs: outputs}
	if cfg.Stop != nil && cfg.Stop(outputs) {
		res.Stopped = true
		res.States = histogram(states, q)
		return res, nil
	}
	for t := int64(1); t <= maxI; t++ {
		i := g.Intn(cfg.N)
		j := g.Intn(cfg.N - 1)
		if j >= i {
			j++
		}
		si, sj := states[i], states[j]
		ni, nj := cfg.Protocol.Interact(si, sj, g)
		if int(ni) >= q || int(nj) >= q {
			return Result{}, fmt.Errorf("popproto: protocol %q produced out-of-range state", cfg.Protocol.Name())
		}
		states[i], states[j] = ni, nj
		if cfg.SourceState >= 0 && (i == 0 || j == 0) {
			states[0] = State(cfg.SourceState)
		}
		// Update the output histogram incrementally.
		outputs[cfg.Protocol.Output(si)]--
		outputs[cfg.Protocol.Output(sj)]--
		outputs[cfg.Protocol.Output(states[i])]++
		outputs[cfg.Protocol.Output(states[j])]++

		res.Interactions = t
		res.Outputs = outputs
		if cfg.Stop != nil && cfg.Stop(outputs) {
			res.Stopped = true
			break
		}
	}
	res.States = histogram(states, q)
	return res, nil
}

func histogram(states []State, q int) []int {
	h := make([]int, q)
	for _, s := range states {
		h[s]++
	}
	return h
}
