package popproto

import "bitspread/internal/rng"

// Epidemic is one-way infection: state 1 (informed) converts state 0.
// From a single informed agent, all n agents are informed within
// Θ(n log n) interactions w.h.p. — the broadcast primitive population
// protocols get from active communication.
type Epidemic struct{}

// Name implements Protocol.
func (Epidemic) Name() string { return "Epidemic" }

// States implements Protocol.
func (Epidemic) States() int { return 2 }

// Output implements Protocol.
func (Epidemic) Output(s State) uint8 { return uint8(s) }

// Interact implements Protocol: the initiator learns from an informed
// responder and vice versa (two-way infection makes the classic bound a
// clean upper estimate).
func (Epidemic) Interact(a, b State, _ *rng.RNG) (State, State) {
	if a == 1 || b == 1 {
		return 1, 1
	}
	return a, b
}

// PairwiseVoter copies the responder's opinion onto the initiator: one
// activation of the paper's sequential Voter (ℓ = 1) per interaction.
type PairwiseVoter struct{}

// Name implements Protocol.
func (PairwiseVoter) Name() string { return "PairwiseVoter" }

// States implements Protocol.
func (PairwiseVoter) States() int { return 2 }

// Output implements Protocol.
func (PairwiseVoter) Output(s State) uint8 { return uint8(s) }

// Interact implements Protocol.
func (PairwiseVoter) Interact(a, b State, _ *rng.RNG) (State, State) {
	return b, b
}

// Four-state exact-majority states: strong and weak variants of each
// opinion. Strong agents of opposite opinions annihilate into weak ones;
// strong agents convert weak ones.
const (
	StrongZero State = 0
	WeakZero   State = 1
	WeakOne    State = 2
	StrongOne  State = 3
)

// FourStateMajority is the classical exact-majority population protocol
// (Bénézit–Thiran–Vetterli style): started from strong states only, the
// population's outputs converge to the initial majority opinion.
//
// Pinning a source to a strong state changes the story entirely: the
// source is an inexhaustible annihilator — every strong opposer it meets
// is weakened while the source resets — so the wrong side's strong
// agents are ground down one by one and the source's opinion then
// converts everyone. Active pairwise communication plus O(1) memory
// solves bit dissemination, exactly the [22] contrast the paper draws
// with its passive, memory-less setting (tested in
// TestFourStateMajorityWithSourceSolvesBD).
type FourStateMajority struct{}

// Name implements Protocol.
func (FourStateMajority) Name() string { return "FourStateMajority" }

// States implements Protocol.
func (FourStateMajority) States() int { return 4 }

// Output implements Protocol.
func (FourStateMajority) Output(s State) uint8 {
	if s >= WeakOne {
		return 1
	}
	return 0
}

// Interact implements Protocol.
func (FourStateMajority) Interact(a, b State, _ *rng.RNG) (State, State) {
	na := majorityStep(a, b)
	nb := majorityStep(b, a)
	return na, nb
}

// majorityStep returns the successor of s after meeting t.
func majorityStep(s, t State) State {
	switch {
	case s == StrongZero && t == StrongOne:
		return WeakZero // annihilation: both lose strength
	case s == StrongOne && t == StrongZero:
		return WeakOne
	case isWeak(s) && t == StrongZero:
		return WeakZero // converted by a strong zero
	case isWeak(s) && t == StrongOne:
		return WeakOne
	default:
		return s
	}
}

func isWeak(s State) bool { return s == WeakZero || s == WeakOne }
