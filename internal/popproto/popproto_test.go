package popproto

import (
	"math"
	"testing"

	"bitspread/internal/engine"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

func allState(s State) func(int) State {
	return func(int) State { return s }
}

func TestRunValidation(t *testing.T) {
	cases := []Config{
		{N: 1, Protocol: Epidemic{}, Init: allState(0), SourceState: -1},
		{N: 10, Init: allState(0), SourceState: -1},
		{N: 10, Protocol: Epidemic{}, SourceState: -1},
		{N: 10, Protocol: Epidemic{}, Init: allState(7), SourceState: -1},
		{N: 10, Protocol: Epidemic{}, Init: allState(0), SourceState: 9},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg, rng.New(1)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestEpidemicCompletesInNLogN(t *testing.T) {
	for _, n := range []int{256, 1024} {
		master := rng.New(uint64(n))
		bound := int64(6 * float64(n) * math.Log(float64(n)))
		for rep := 0; rep < 5; rep++ {
			res, err := Run(Config{
				N:        n,
				Protocol: Epidemic{},
				Init: func(i int) State {
					if i == 0 {
						return 1
					}
					return 0
				},
				SourceState:     -1,
				MaxInteractions: bound,
				Stop:            func(out [2]int) bool { return out[1] == n },
			}, master.Split())
			if err != nil {
				t.Fatal(err)
			}
			if !res.Stopped {
				t.Errorf("n=%d: epidemic incomplete after %d interactions (informed %d)", n, bound, res.Outputs[1])
			}
		}
	}
}

func TestEpidemicMonotone(t *testing.T) {
	res, err := Run(Config{
		N:        64,
		Protocol: Epidemic{},
		Init: func(i int) State {
			if i < 8 {
				return 1
			}
			return 0
		},
		SourceState:     -1,
		MaxInteractions: 50_000,
		Stop:            func(out [2]int) bool { return out[1] == 64 },
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs[1] != 64 || res.Outputs[0] != 0 {
		t.Errorf("final outputs = %v", res.Outputs)
	}
	if res.States[0] != 0 || res.States[1] != 64 {
		t.Errorf("final states = %v", res.States)
	}
}

// TestPairwiseVoterMatchesSequentialEngine cross-validates the pairwise
// scheduler against the paper-model sequential engine: with a pinned
// source, the pairwise Voter solves bit dissemination in the same
// activation regime as engine.RunSequential.
func TestPairwiseVoterMatchesSequentialEngine(t *testing.T) {
	const n = 48
	const reps = 60
	master := rng.New(9)

	meanPop := 0.0
	for rep := 0; rep < reps; rep++ {
		res, err := Run(Config{
			N:           n,
			Protocol:    PairwiseVoter{},
			Init:        allState(0),
			SourceState: 1, // source pinned to the correct opinion 1
			Stop:        func(out [2]int) bool { return out[1] == n },
		}, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Stopped {
			t.Fatal("pairwise voter did not reach consensus")
		}
		meanPop += float64(res.Interactions)
	}
	meanPop /= reps

	meanSeq := 0.0
	for rep := 0; rep < reps; rep++ {
		res, err := engine.RunSequential(engine.Config{
			N: n, Rule: protocol.Voter(1), Z: 1, X0: 1,
		}, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		meanSeq += float64(res.Activations)
	}
	meanSeq /= reps

	// Same process up to scheduler details (the pairwise initiator may be
	// the source, a wasted interaction with rate 1/n; and the engine's
	// activations exclude the source). Expect agreement within ~35%.
	ratio := meanPop / meanSeq
	if ratio < 0.65 || ratio > 1.55 {
		t.Errorf("pairwise %.0f vs sequential-engine %.0f activations (ratio %.2f)", meanPop, meanSeq, ratio)
	}
}

func TestFourStateMajorityDecidesInitialMajority(t *testing.T) {
	const n = 200
	master := rng.New(11)
	correct := 0
	const reps = 10
	for rep := 0; rep < reps; rep++ {
		res, err := Run(Config{
			N:        n,
			Protocol: FourStateMajority{},
			Init: func(i int) State {
				if i < 120 {
					return StrongOne // 60% majority for opinion 1
				}
				return StrongZero
			},
			SourceState:     -1,
			MaxInteractions: 2_000_000,
			Stop:            func(out [2]int) bool { return out[0] == 0 || out[1] == 0 },
		}, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		if res.Stopped && res.Outputs[1] == n {
			correct++
		}
	}
	if correct < 9 {
		t.Errorf("4-state majority decided the 60%% majority in only %d/%d runs", correct, reps)
	}
}

func TestFourStateMajorityWithSourceSolvesBD(t *testing.T) {
	// The [22] contrast made executable: with active pairwise
	// communication and O(1) memory, a pinned strong source solves bit
	// dissemination even against an 80% wrong majority — the source
	// annihilates strong opposers one by one without ever being consumed,
	// then converts the weakened population. The paper's lower bound is
	// about the *passive, memory-less* setting; this protocol is in
	// neither.
	const n = 200
	res, err := Run(Config{
		N:        n,
		Protocol: FourStateMajority{},
		Init: func(i int) State {
			if i < 40 {
				return StrongOne // the source's side is a 20% minority
			}
			return StrongZero
		},
		SourceState:     int(StrongOne),
		MaxInteractions: 5_000_000,
		Stop:            func(out [2]int) bool { return out[1] == n },
	}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.Outputs[1] != n {
		t.Errorf("pinned-source exact majority failed to disseminate: %+v", res)
	}
}

func TestFourStateMajorityTransitions(t *testing.T) {
	g := rng.New(1)
	p := FourStateMajority{}
	cases := []struct {
		a, b, wantA, wantB State
	}{
		{StrongZero, StrongOne, WeakZero, WeakOne}, // annihilation
		{StrongOne, StrongZero, WeakOne, WeakZero},
		{WeakZero, StrongOne, WeakOne, StrongOne}, // conversion
		{WeakOne, StrongZero, WeakZero, StrongZero},
		{WeakZero, WeakOne, WeakZero, WeakOne}, // weak pair frozen
		{StrongOne, StrongOne, StrongOne, StrongOne},
	}
	for _, c := range cases {
		gotA, gotB := p.Interact(c.a, c.b, g)
		if gotA != c.wantA || gotB != c.wantB {
			t.Errorf("Interact(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, gotA, gotB, c.wantA, c.wantB)
		}
	}
}

func TestOutputs(t *testing.T) {
	if (FourStateMajority{}).Output(WeakZero) != 0 || (FourStateMajority{}).Output(StrongOne) != 1 {
		t.Error("majority outputs wrong")
	}
	if (Epidemic{}).Output(1) != 1 || (PairwiseVoter{}).Output(0) != 0 {
		t.Error("binary outputs wrong")
	}
}
