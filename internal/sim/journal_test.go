package sim

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bitspread/internal/engine"
)

func TestJournalOptsLogsTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("k", 0, engine.Result{Converged: true, Rounds: 4}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"task":"k","replica":1,"res`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var logged []string
	j2, err := OpenJournalOpts(path, JournalOptions{
		Resume: true,
		Logf:   func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) },
	})
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	defer j2.Close()
	if len(logged) != 1 || !strings.Contains(logged[0], "truncated final line") {
		t.Errorf("torn-line recovery not logged: %q", logged)
	}
	if r, ok := j2.Lookup("k", 0); !ok || r.Rounds != 4 {
		t.Errorf("intact entry lost: %+v %v", r, ok)
	}
}

func TestJournalOptsCleanLoadLogsNothing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("k", 0, engine.Result{Rounds: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	called := false
	j2, err := OpenJournalOpts(path, JournalOptions{
		Resume: true,
		Logf:   func(string, ...any) { called = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if called {
		t.Error("clean journal load must not emit diagnostics")
	}
}

func TestJournalFsyncRecordsAreDurableAndReplayable(t *testing.T) {
	// Fsync cannot be black-box tested for durability, but the option must
	// at least leave every Record on disk and replayable through the same
	// resume path the non-fsync journal uses.
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournalOpts(path, JournalOptions{Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Record("k", i, engine.Result{Rounds: int64(10 + i)}); err != nil {
			t.Fatal(err)
		}
		// Every record is flushed and synced before Record returns, so the
		// bytes must be visible to an independent read immediately — no
		// Close needed, the SIGKILL scenario.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := strings.Count(string(data), "\n"); got != i+1 {
			t.Fatalf("after record %d: %d complete lines on disk, want %d", i, got, i+1)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournalOpts(path, JournalOptions{Resume: true, Fsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 3 {
		t.Errorf("resumed %d entries, want 3", j2.Len())
	}
	if r, ok := j2.Lookup("k", 2); !ok || r.Rounds != 12 {
		t.Errorf("entry 2 = %+v %v", r, ok)
	}
}
