package sim

import (
	"strings"
	"testing"

	"bitspread/internal/engine"
	"bitspread/internal/fault"
	"bitspread/internal/obs"
	"bitspread/internal/protocol"
)

// The standard obs implementations must satisfy the contracts they were
// written against, without either package importing the other.
var (
	_ Observer     = (*obs.RunObserver)(nil)
	_ engine.Probe = (*obs.Metrics)(nil)
)

// TestInstrumentedRunUnderFaults drives a Probe-instrumented, Observer-
// instrumented Run across the batched Parallel path and the Aggregated
// path under a fault schedule. Meant to run under -race: the probe and
// observer are shared by every worker goroutine of the pool, which is
// exactly the concurrent contract they promise.
func TestInstrumentedRunUnderFaults(t *testing.T) {
	sched := fault.Must(
		fault.ResetAt(3, 0.5, 0),
		fault.OmissionFor(5, 4, 0.3),
		fault.SourceCrashFor(2, 2),
	)
	for _, mode := range []Mode{Parallel, Aggregated} {
		t.Run(mode.String(), func(t *testing.T) {
			reg := obs.NewRegistry()
			probe := obs.NewMetrics(reg)
			var spans strings.Builder
			sw := obs.NewSpanWriter(&spans)
			task := Task{
				Name: "instrumented-" + mode.String(),
				Config: engine.Config{
					N:      256,
					Rule:   protocol.Minority(3),
					Z:      1,
					X0:     128,
					Faults: sched,
					Probe:  probe,
				},
				Mode:     mode,
				Replicas: 24,
				Seed:     99,
				Observer: obs.NewRunObserver(sw, reg),
			}
			out, err := Run(task, 8)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if c, f, _, _ := out.Counts(); f > 0 || c != task.Replicas {
				t.Fatalf("counts = %d completed, %d failed", c, f)
			}
			if err := sw.Close(); err != nil {
				t.Fatalf("spans: %v", err)
			}

			var wantRounds int64
			for _, r := range out.Results {
				wantRounds += r.Rounds
			}
			if got := probe.Rounds.Value(); got != wantRounds {
				t.Errorf("probe rounds = %d, want sum of Result.Rounds %d", got, wantRounds)
			}
			var wantActs int64
			for _, r := range out.Results {
				wantActs += r.Activations
			}
			if got := probe.Activations.Value(); got != wantActs {
				t.Errorf("probe activations = %d, want %d", got, wantActs)
			}
			if probe.FaultRounds.Value() == 0 {
				t.Error("no fault rounds observed despite an active schedule")
			}
			if got := reg.Counter("bitspread_replicas_total").Value(); got != int64(task.Replicas) {
				t.Errorf("observer replicas = %d, want %d", got, task.Replicas)
			}
			recoveries := reg.Counter("bitspread_recoveries_total").Value()
			if conv := int64(out.ConvergedCount()); recoveries != conv {
				t.Errorf("recoveries = %d, want converged count %d", recoveries, conv)
			}
			if n := strings.Count(spans.String(), `"ev":"replica_done"`); n != task.Replicas {
				t.Errorf("span file has %d replica_done lines, want %d", n, task.Replicas)
			}
		})
	}
}

// TestProbeDoesNotChangeResults pins the observer-neutrality contract at
// the sim level: the same task with and without instrumentation yields
// identical Results slices.
func TestProbeDoesNotChangeResults(t *testing.T) {
	base := Task{
		Name: "neutrality",
		Config: engine.Config{
			N:    512,
			Rule: protocol.Minority(3),
			Z:    1,
			X0:   256,
			Faults: fault.Must(
				fault.ResetAt(2, 0.25, 0),
			),
		},
		Mode:     Parallel,
		Replicas: 16,
		Seed:     7,
	}
	plain, err := Run(base, 4)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	instr := base
	instr.Config.Probe = obs.NewMetrics(reg)
	instr.Observer = obs.NewRunObserver(nil, reg)
	probed, err := Run(instr, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Results {
		if plain.Results[i] != probed.Results[i] {
			t.Fatalf("replica %d differs: plain=%+v probed=%+v",
				i, plain.Results[i], probed.Results[i])
		}
	}
}
