package sim

import (
	"reflect"
	"testing"

	"bitspread/internal/engine"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

func voterTask(replicas int, seed uint64) Task {
	return Task{
		Name: "voter",
		Config: engine.Config{
			N:    48,
			Rule: protocol.Voter(1),
			Z:    1,
			X0:   24,
		},
		Mode:     Parallel,
		Replicas: replicas,
		Seed:     seed,
	}
}

func TestRunAggregates(t *testing.T) {
	out, err := Run(voterTask(40, 1), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 40 {
		t.Fatalf("results = %d", len(out.Results))
	}
	if out.ConvergedCount() != 40 {
		t.Errorf("converged = %d of 40", out.ConvergedCount())
	}
	rate, lo, hi := out.SuccessRate()
	if rate != 1 || lo <= 0.8 || hi != 1 {
		t.Errorf("success rate = %v [%v, %v]", rate, lo, hi)
	}
	rounds := out.ConvergenceRounds()
	if len(rounds) != 40 {
		t.Fatalf("rounds = %d entries", len(rounds))
	}
	s := out.RoundsSummary()
	if s.N != 40 || s.Mean <= 0 {
		t.Errorf("summary = %+v", s)
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	a, err := Run(voterTask(20, 7), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(voterTask(20, 7), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Results, b.Results) {
		t.Error("results depend on worker count")
	}
	c, err := Run(voterTask(20, 8), 1)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Results, c.Results) {
		t.Error("different seeds produced identical results")
	}
}

// TestParallelBatchingPreservesResults: the batched lockstep path behind
// Parallel mode must reproduce, replica for replica, exactly what the
// historical one-goroutine-per-replica path produced — i.e. RunParallel on
// the task's derived seeds. This is the guarantee that published sweep
// numbers are unchanged by the caching engine.
func TestParallelBatchingPreservesResults(t *testing.T) {
	task := voterTask(25, 11)
	out, err := Run(task, 4)
	if err != nil {
		t.Fatal(err)
	}
	master := rng.New(task.Seed)
	for i := 0; i < task.Replicas; i++ {
		seed := master.Uint64()
		want, err := engine.RunParallel(task.Config, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if out.Results[i] != want {
			t.Errorf("replica %d: batched %+v vs unbatched %+v", i, out.Results[i], want)
		}
	}
}

// TestAgentBatchingPreservesResults: the lockstep path behind AgentLevel
// mode must reproduce, replica for replica, exactly what per-replica
// RunAgents on the task's derived seeds produces — the agent-level
// counterpart of the Parallel-mode guarantee above.
func TestAgentBatchingPreservesResults(t *testing.T) {
	task := voterTask(25, 11)
	task.Mode = AgentLevel
	out, err := Run(task, 4)
	if err != nil {
		t.Fatal(err)
	}
	master := rng.New(task.Seed)
	for i := 0; i < task.Replicas; i++ {
		seed := master.Uint64()
		want, err := engine.RunAgents(task.Config, engine.AgentOptions{}, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		if out.Results[i] != want {
			t.Errorf("replica %d: batched %+v vs unbatched %+v", i, out.Results[i], want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	task := voterTask(0, 1)
	if _, err := Run(task, 1); err == nil {
		t.Error("0 replicas accepted")
	}
	task = voterTask(2, 1)
	task.Mode = Mode(99)
	if _, err := Run(task, 1); err == nil {
		t.Error("unknown mode accepted")
	}
	task = voterTask(2, 1)
	task.Config.Record = func(int64, int64) {}
	if _, err := Run(task, 1); err == nil {
		t.Error("shared Record hook accepted")
	}
	task = voterTask(2, 1)
	task.Config.N = 0
	if _, err := Run(task, 1); err == nil {
		t.Error("invalid engine config accepted")
	}
}

func TestRunSequentialAndAgentModes(t *testing.T) {
	for _, mode := range []Mode{Sequential, AgentLevel} {
		task := voterTask(5, 3)
		task.Mode = mode
		task.Config.N = 24
		task.Config.X0 = 12
		out, err := Run(task, 2)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if out.ConvergedCount() != 5 {
			t.Errorf("%v: converged %d of 5", mode, out.ConvergedCount())
		}
	}
}

func TestModeString(t *testing.T) {
	for _, m := range []Mode{Parallel, Sequential, AgentLevel, Mode(42)} {
		if m.String() == "" {
			t.Errorf("empty name for mode %d", int(m))
		}
	}
}

func TestSuccessRatePartial(t *testing.T) {
	// Majority from all-wrong never converges: success rate 0.
	task := Task{
		Name: "majority-trap",
		Config: engine.Config{
			N:         32,
			Rule:      protocol.Majority(3),
			Z:         1,
			X0:        1,
			MaxRounds: 50,
		},
		Mode:     Parallel,
		Replicas: 10,
		Seed:     5,
	}
	out, err := Run(task, 4)
	if err != nil {
		t.Fatal(err)
	}
	rate, _, hi := out.SuccessRate()
	if rate != 0 {
		t.Errorf("success rate = %v, want 0", rate)
	}
	if hi >= 0.5 {
		t.Errorf("Wilson hi = %v, too loose", hi)
	}
	if len(out.ConvergenceRounds()) != 0 {
		t.Error("non-converged runs leaked into ConvergenceRounds")
	}
}
