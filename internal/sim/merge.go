package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// MergeSource is one shard journal handed to MergeJournals: the raw JSONL
// bytes plus a name for diagnostics.
type MergeSource struct {
	Name string
	Data []byte
}

// MergeStats summarizes one merge.
type MergeStats struct {
	// Sources is the number of shard inputs (empty ones included).
	Sources int
	// Entries is the number of distinct (task, replica) checkpoints written.
	Entries int
	// Tasks is the number of distinct task keys.
	Tasks int
	// Deduped counts duplicate (task, replica) lines whose result bytes
	// were identical — overlapping partitions, speculative steals, or a
	// re-leased shard completed twice.
	Deduped int
	// Torn counts shards whose final line was truncated mid-write (the
	// signature of a killed worker) and dropped.
	Torn int
}

// String renders the stats as the one-line summary the CLIs print.
func (s MergeStats) String() string {
	return fmt.Sprintf("%d entries over %d tasks from %d shards (%d duplicates deduped, %d torn lines dropped)",
		s.Entries, s.Tasks, s.Sources, s.Deduped, s.Torn)
}

// mergeEntry is one parsed shard line. Result stays raw: the merged
// output re-emits exactly the bytes the producing engine wrote, so merge
// can never perturb a checkpoint through a decode/encode round trip.
type mergeEntry struct {
	Task    string          `json:"task"`
	Replica int             `json:"replica"`
	Seq     *int            `json:"seq"`
	Result  json.RawMessage `json:"result"`
}

// mergedLine is the canonical output line shape — field order identical
// to journalEntry, seq stripped.
type mergedLine struct {
	Task    string          `json:"task"`
	Replica int             `json:"replica"`
	Result  json.RawMessage `json:"result"`
}

// taskOrder tracks where a task sits in the canonical sequence.
type taskOrder struct {
	key string
	// ord is the task's global ordinal: the shard-recorded seq when the
	// shards carry one (partition mode), else the task's first-appearance
	// index within its first source (plain journals).
	ord int
	// firstSeen breaks ordinal ties between plain journals that numbered
	// tasks independently; it is the global discovery index.
	firstSeen int
}

// MergeJournals merges shard journals into one canonical checkpoint
// stream, proven byte-identical to the journal a single process with one
// sim worker writes for the same sweep:
//
//   - lines are ordered by (task ordinal, replica index) — the order the
//     single-process run emits them in;
//   - duplicate (task, replica) lines with identical result bytes are
//     deduplicated (overlapping partitions and speculative steals are
//     legal), while differing bytes are a hard error — determinism means
//     a divergent duplicate is corruption, never a judgment call;
//   - a torn final line in a shard (a worker killed mid-write) is dropped
//     and counted, exactly as the resume loader treats it;
//   - empty shards are legal (a partition can own zero replicas).
//
// Result payloads are copied verbatim; merge never re-encodes them.
func MergeJournals(w io.Writer, srcs []MergeSource) (MergeStats, error) {
	stats := MergeStats{Sources: len(srcs)}
	type slot struct {
		result json.RawMessage
		src    string
	}
	entries := map[string]map[int]slot{}
	var order []taskOrder
	orderIdx := map[string]int{}

	for _, src := range srcs {
		lines := splitLines(src.Data)
		localOrd := 0
		localSeen := map[string]bool{}
		for i, line := range lines {
			if len(line) == 0 {
				continue
			}
			var e mergeEntry
			if err := json.Unmarshal(line, &e); err != nil || len(e.Result) == 0 || e.Task == "" {
				if i == len(lines)-1 {
					stats.Torn++
					continue
				}
				if err == nil {
					err = fmt.Errorf("missing task or result field")
				}
				return stats, fmt.Errorf("sim: merge: shard %s line %d corrupt: %v", src.Name, i+1, err)
			}
			ord := localOrd
			if e.Seq != nil {
				ord = *e.Seq
			}
			if !localSeen[e.Task] {
				localSeen[e.Task] = true
				localOrd++
			}
			if _, ok := orderIdx[e.Task]; !ok {
				orderIdx[e.Task] = len(order)
				order = append(order, taskOrder{key: e.Task, ord: ord, firstSeen: len(order)})
			}
			m := entries[e.Task]
			if m == nil {
				m = map[int]slot{}
				entries[e.Task] = m
			}
			if prev, ok := m[e.Replica]; ok {
				if !bytes.Equal(prev.result, e.Result) {
					return stats, fmt.Errorf(
						"sim: merge: task %s replica %d has conflicting results in %s and %s — shards of one sweep are deterministic, so this is corruption or a mixed-seed merge",
						e.Task, e.Replica, prev.src, src.Name)
				}
				stats.Deduped++
				continue
			}
			m[e.Replica] = slot{result: e.Result, src: src.Name}
		}
	}

	sort.SliceStable(order, func(a, b int) bool {
		if order[a].ord != order[b].ord {
			return order[a].ord < order[b].ord
		}
		return order[a].firstSeen < order[b].firstSeen
	})

	for _, t := range order {
		m := entries[t.key]
		replicas := make([]int, 0, len(m))
		//bitlint:maporder keys are sorted immediately below; emission order never follows map order
		for r := range m {
			replicas = append(replicas, r)
		}
		sort.Ints(replicas)
		for _, r := range replicas {
			line, err := json.Marshal(mergedLine{Task: t.key, Replica: r, Result: m[r].result})
			if err != nil {
				return stats, fmt.Errorf("sim: merge encode: %w", err)
			}
			if _, err := w.Write(append(line, '\n')); err != nil {
				return stats, fmt.Errorf("sim: merge write: %w", err)
			}
			stats.Entries++
		}
		stats.Tasks++
	}
	return stats, nil
}

// MergeJournalFiles reads the shard files and writes their merge to dst
// (which must not be one of the sources; it is truncated first).
func MergeJournalFiles(dst string, srcs ...string) (MergeStats, error) {
	sources := make([]MergeSource, 0, len(srcs))
	for _, path := range srcs {
		if path == dst {
			return MergeStats{}, fmt.Errorf("sim: merge: destination %s is also a source", dst)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return MergeStats{}, fmt.Errorf("sim: merge: %w", err)
		}
		sources = append(sources, MergeSource{Name: path, Data: data})
	}
	var buf bytes.Buffer
	stats, err := MergeJournals(&buf, sources)
	if err != nil {
		return stats, err
	}
	if err := os.WriteFile(dst, buf.Bytes(), 0o644); err != nil {
		return stats, fmt.Errorf("sim: merge: %w", err)
	}
	return stats, nil
}
