// Package sim is the Monte-Carlo experiment runner: it fans a configured
// bit-dissemination instance out over seeded replicas on a bounded worker
// pool and aggregates convergence statistics. Replica seeds are derived
// deterministically from the task seed before any goroutine starts, so
// results are reproducible regardless of scheduling.
package sim

import (
	"fmt"
	"runtime"
	"sync"

	"bitspread/internal/dist"
	"bitspread/internal/engine"
	"bitspread/internal/rng"
	"bitspread/internal/stats"
)

// Mode selects the activation model / engine for a task.
type Mode int

const (
	// Parallel uses the exact count-level parallel engine.
	Parallel Mode = iota + 1
	// Sequential uses the one-activation-at-a-time engine.
	Sequential
	// AgentLevel uses the literal per-agent parallel engine.
	AgentLevel
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Parallel:
		return "parallel"
	case Sequential:
		return "sequential"
	case AgentLevel:
		return "agent-level"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Task is one Monte-Carlo experiment: a single instance configuration run
// over Replicas independent seeds.
type Task struct {
	Name     string
	Config   engine.Config
	Mode     Mode
	Replicas int
	Seed     uint64
}

// Outcome aggregates the replica results of a task.
type Outcome struct {
	Task    Task
	Results []engine.Result
}

// Run executes the task's replicas on at most workers goroutines
// (workers <= 0 means GOMAXPROCS). The task's Config.Record must be nil:
// recording hooks are not safe to share across replicas.
func Run(t Task, workers int) (Outcome, error) {
	if t.Replicas < 1 {
		return Outcome{}, fmt.Errorf("sim: task %q has %d replicas", t.Name, t.Replicas)
	}
	if t.Config.Record != nil {
		return Outcome{}, fmt.Errorf("sim: task %q sets Config.Record; per-replica recording is not supported", t.Name)
	}
	run, err := runner(t.Mode)
	if err != nil {
		return Outcome{}, fmt.Errorf("sim: task %q: %w", t.Name, err)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > t.Replicas {
		workers = t.Replicas
	}

	// Derive per-replica seeds up front for scheduling-independent
	// determinism.
	master := rng.New(t.Seed)
	seeds := make([]uint64, t.Replicas)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}

	if t.Mode == Parallel {
		return runParallelBatched(t, workers, seeds)
	}

	results := make([]engine.Result, t.Replicas)
	errs := make([]error, t.Replicas)
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = run(t.Config, rng.New(seeds[i]))
			}
		}()
	}
	for i := 0; i < t.Replicas; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return Outcome{}, fmt.Errorf("sim: task %q: %w", t.Name, err)
		}
	}
	return Outcome{Task: t, Results: results}, nil
}

// runParallelBatched fans Parallel-mode replicas out as contiguous chunks,
// one engine.RunParallelReplicas batch per worker, so all replicas of a
// chunk advance in lockstep and share one memoized adopt-probability cache.
// Per-replica seeds are the same ones the unbatched path would use and the
// batched engine reproduces RunParallel exactly, so outcomes are identical
// to running each replica on its own — just cheaper by a factor of the
// cache hit rate on the O(ℓ) Eq. 4 sums.
func runParallelBatched(t Task, workers int, seeds []uint64) (Outcome, error) {
	results := make([]engine.Result, t.Replicas)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * t.Replicas / workers
		hi := (w + 1) * t.Replicas / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			batch, err := engine.RunParallelReplicas(t.Config, seeds[lo:hi])
			if err != nil {
				errs[w] = err
				return
			}
			copy(results[lo:hi], batch)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Outcome{}, fmt.Errorf("sim: task %q: %w", t.Name, err)
		}
	}
	return Outcome{Task: t, Results: results}, nil
}

// runner maps a mode to its engine entry point.
func runner(m Mode) (func(engine.Config, *rng.RNG) (engine.Result, error), error) {
	switch m {
	case Parallel:
		return engine.RunParallel, nil
	case Sequential:
		return engine.RunSequential, nil
	case AgentLevel:
		return func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{}, g)
		}, nil
	default:
		return nil, fmt.Errorf("unknown mode %d", int(m))
	}
}

// ConvergedCount returns how many replicas converged.
func (o *Outcome) ConvergedCount() int {
	c := 0
	for _, r := range o.Results {
		if r.Converged {
			c++
		}
	}
	return c
}

// SuccessRate returns the convergence fraction with its Wilson 95%
// confidence interval.
func (o *Outcome) SuccessRate() (rate, lo, hi float64) {
	n := int64(len(o.Results))
	k := int64(o.ConvergedCount())
	if n == 0 {
		return 0, 0, 1
	}
	lo, hi = dist.WilsonInterval(k, n, 0.05)
	return float64(k) / float64(n), lo, hi
}

// ConvergenceRounds returns the rounds-to-consensus of the converged
// replicas.
func (o *Outcome) ConvergenceRounds() []int64 {
	out := make([]int64, 0, len(o.Results))
	for _, r := range o.Results {
		if r.Converged {
			out = append(out, r.Rounds)
		}
	}
	return out
}

// RoundsSummary summarizes the convergence rounds of converged replicas.
func (o *Outcome) RoundsSummary() stats.Summary {
	return stats.Summarize(stats.Float64s(o.ConvergenceRounds()))
}
