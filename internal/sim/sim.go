// Package sim is the Monte-Carlo experiment runner: it fans a configured
// bit-dissemination instance out over seeded replicas on a bounded worker
// pool and aggregates convergence statistics. Replica seeds are derived
// deterministically from the task seed before any goroutine starts, so
// results are reproducible regardless of scheduling.
//
// The runner is hardened for long unattended sweeps: RunContext threads a
// context.Context through every engine as a round-boundary halt check, a
// replica that panics is recorded as Failed instead of killing the
// process, and an optional Journal checkpoints every finished replica so
// an interrupted sweep resumes where it stopped.
package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"bitspread/internal/dist"
	"bitspread/internal/engine"
	"bitspread/internal/rng"
	"bitspread/internal/stats"
)

// Mode selects the activation model / engine for a task.
type Mode int

const (
	// Parallel uses the exact count-level parallel engine.
	Parallel Mode = iota + 1
	// Sequential uses the one-activation-at-a-time engine.
	Sequential
	// AgentLevel uses the literal per-agent parallel engine.
	AgentLevel
	// Aggregated uses the opinion-class aggregated parallel engine:
	// agent-level semantics (fault classes included) at count-level cost,
	// exact in distribution.
	Aggregated
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Parallel:
		return "parallel"
	case Sequential:
		return "sequential"
	case AgentLevel:
		return "agent-level"
	case Aggregated:
		return "aggregated"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Task is one Monte-Carlo experiment: a single instance configuration run
// over Replicas independent seeds.
type Task struct {
	Name     string
	Config   engine.Config
	Mode     Mode
	Replicas int
	Seed     uint64
	// Observer, if non-nil, receives the task's run-level lifecycle
	// events (replica start/finish, checkpoint, recovery). Like
	// Config.Probe it must be safe for concurrent use and never affects
	// results; it is excluded from TaskKey, so journal resume is
	// unchanged by attaching one.
	Observer Observer
}

// Observer receives run-level lifecycle events from RunContext. The
// method set uses only primitive argument types so implementations
// (internal/obs.RunObserver is the standard one) need not import sim.
// All methods may be called concurrently from the worker pool.
type Observer interface {
	// ReplicaStart fires when a replica is handed to an engine (replicas
	// served from the journal never start).
	ReplicaStart(task string, replica int)
	// ReplicaDone fires when a replica finishes, with its round count,
	// convergence flag and terminal ReplicaState string.
	ReplicaDone(task string, replica int, rounds int64, converged bool, state string)
	// Checkpoint fires after a replica's result is flushed to the journal.
	Checkpoint(task string, replica int)
	// Recovery fires when a replica of a fault-injected task converges:
	// rounds is how many rounds past the schedule's horizon consensus was
	// re-reached — the self-stabilization delay.
	Recovery(task string, replica int, rounds int64)
}

// ReplicaState classifies how one replica of a task ended.
type ReplicaState uint8

const (
	// Done means the replica ran to its natural end (consensus or round
	// cap) and its Result is a completed measurement.
	Done ReplicaState = iota
	// Failed means the replica panicked or returned an engine error; its
	// Result is the zero value and the cause is in Outcome.Failures.
	Failed
	// Cancelled means the context was cancelled before the replica
	// finished; its Result holds the partial trajectory.
	Cancelled
	// TimedOut is Cancelled where the cause was a context deadline.
	TimedOut
	// Skipped means the replica belongs to another partition of a
	// multi-process sweep (the journal's PartitionFunc does not own it)
	// and was neither computed nor served from the checkpoint; its Result
	// is the zero value. Merging the partitions' journals recovers every
	// skipped replica exactly.
	Skipped
)

// String implements fmt.Stringer.
func (s ReplicaState) String() string {
	switch s {
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	case TimedOut:
		return "timed-out"
	case Skipped:
		return "skipped"
	default:
		return fmt.Sprintf("ReplicaState(%d)", int(s))
	}
}

// ReplicaFailure records why one replica failed.
type ReplicaFailure struct {
	// Replica is the index of the failed replica within the task.
	Replica int
	// Err is the engine error, or a wrapped panic value.
	Err error
}

// Outcome aggregates the replica results of a task.
type Outcome struct {
	Task    Task
	Results []engine.Result
	// States classifies each replica; nil when every replica completed,
	// so fully-successful outcomes stay comparable across versions.
	States []ReplicaState
	// Failures lists the causes of Failed replicas, in replica order.
	Failures []ReplicaFailure
}

// Counts tallies the replica states. completed + failed + cancelled +
// timedOut + SkippedCount() always equals len(Results); outside
// partitioned runs SkippedCount is zero and the historical four-way sum
// holds.
func (o *Outcome) Counts() (completed, failed, cancelled, timedOut int) {
	if o.States == nil {
		return len(o.Results), 0, 0, 0
	}
	for _, s := range o.States {
		switch s {
		case Failed:
			failed++
		case Cancelled:
			cancelled++
		case TimedOut:
			timedOut++
		case Skipped:
		default:
			completed++
		}
	}
	return
}

// SkippedCount returns how many replicas belong to other partitions of a
// multi-process sweep (always zero outside partition mode).
func (o *Outcome) SkippedCount() int {
	n := 0
	for _, s := range o.States {
		if s == Skipped {
			n++
		}
	}
	return n
}

// Run executes the task's replicas on at most workers goroutines
// (workers <= 0 means GOMAXPROCS). The task's Config.Record must be nil:
// recording hooks are not safe to share across replicas. Run never
// cancels and keeps no checkpoint; it is RunContext with a background
// context and no journal.
func Run(t Task, workers int) (Outcome, error) {
	return RunContext(context.Background(), t, workers, nil)
}

// RunContext executes the task's replicas on at most workers goroutines,
// honouring ctx and checkpointing into journal (both optional).
//
// Cancellation is polled by every engine at round boundaries, so workers
// stop within one round of ctx ending; the partial Outcome classifies the
// unfinished replicas as Cancelled (or TimedOut when the context died of
// its deadline) and RunContext returns it together with ctx.Err().
//
// A replica that panics does not kill the process: the panic is recovered,
// the replica is marked Failed and the cause recorded in
// Outcome.Failures, and the remaining replicas keep running.
//
// With a non-nil journal, replicas already checkpointed under this task's
// TaskKey are served from the journal without recomputation, and every
// freshly finished replica is flushed to it before the run moves on — the
// mechanism behind bitsweep's -resume.
func RunContext(ctx context.Context, t Task, workers int, journal *Journal) (Outcome, error) {
	if t.Replicas < 1 {
		return Outcome{}, fmt.Errorf("sim: task %q has %d replicas", t.Name, t.Replicas)
	}
	if t.Config.Record != nil {
		return Outcome{}, fmt.Errorf("sim: task %q sets Config.Record; per-replica recording is not supported", t.Name)
	}
	run, err := runner(t.Mode)
	if err != nil {
		return Outcome{}, fmt.Errorf("sim: task %q: %w", t.Name, err)
	}
	// Fail the whole task on a bad configuration before spawning anything,
	// rather than once per replica inside the pool.
	if err := t.Config.Validate(); err != nil {
		return Outcome{}, fmt.Errorf("sim: task %q: %w", t.Name, err)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > t.Replicas {
		workers = t.Replicas
	}

	// Derive per-replica seeds up front for scheduling-independent
	// determinism.
	master := rng.New(t.Seed)
	seeds := make([]uint64, t.Replicas)
	for i := range seeds {
		seeds[i] = master.Uint64()
	}

	st := &taskState{
		name:    t.Name,
		results: make([]engine.Result, t.Replicas),
		states:  make([]ReplicaState, t.Replicas),
		errs:    make([]error, t.Replicas),
		ctx:     ctx,
		journal: journal,
		obsv:    t.Observer,
	}
	if f := t.Config.Faults; f != nil && !f.Empty() {
		st.faultHorizon = f.Horizon()
	}
	if journal != nil {
		st.key = TaskKey(t)
	}

	// Lease-aware iteration: register the task's global ordinal (every
	// shard of a partitioned sweep sees every task, so ordinals agree
	// across shards), serve checkpointed replicas from the journal, skip
	// replicas owned by other partitions, and run only the rest.
	journal.BeginTask(st.key)
	var pending []int
	for i := 0; i < t.Replicas; i++ {
		if r, ok := journal.Lookup(st.key, i); ok {
			st.results[i] = r
			continue
		}
		if !journal.Owns(st.key, i) {
			st.states[i] = Skipped
			continue
		}
		pending = append(pending, i)
	}

	cfg := t.Config
	if ctx.Done() != nil {
		caller := cfg.Halt
		cfg.Halt = func() bool {
			return ctx.Err() != nil || (caller != nil && caller())
		}
	}

	if len(pending) > 0 {
		switch {
		case t.Mode == Parallel:
			runParallelBatched(cfg, st, pending, seeds, workers)
		case t.Mode == AgentLevel:
			runAgentsBatched(cfg, st, pending, seeds, workers)
		default:
			var wg sync.WaitGroup
			next := make(chan int)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := range next {
						if st.obsv != nil {
							st.obsv.ReplicaStart(st.name, i)
						}
						res, err := runRecovered(run, cfg, rng.New(seeds[i]))
						st.classify(i, res, err)
					}
				}()
			}
			for _, i := range pending {
				next <- i
			}
			close(next)
			wg.Wait()
		}
	}

	return st.outcome(t)
}

// taskState is the shared mutable state of one RunContext call. Workers
// write disjoint replica slots, so only the journal needs locking (it has
// its own mutex).
type taskState struct {
	name    string
	results []engine.Result
	states  []ReplicaState
	errs    []error
	ctx     context.Context
	journal *Journal
	key     string
	obsv    Observer
	// faultHorizon is the task's fault-schedule horizon (0 without
	// faults); classify uses it to report self-stabilization delays.
	faultHorizon int64

	mu         sync.Mutex
	journalErr error
}

// classify files one finished replica: state, failure cause, checkpoint,
// observer events.
func (st *taskState) classify(i int, res engine.Result, err error) {
	switch {
	case err != nil:
		st.states[i] = Failed
		st.errs[i] = err
	case res.Interrupted:
		if st.ctx.Err() == context.DeadlineExceeded {
			st.states[i] = TimedOut
		} else {
			st.states[i] = Cancelled
		}
		st.results[i] = res
	default:
		st.results[i] = res
		if st.journal != nil {
			jerr := st.journal.Record(st.key, i, res)
			if jerr != nil {
				st.mu.Lock()
				if st.journalErr == nil {
					st.journalErr = jerr
				}
				st.mu.Unlock()
			} else if st.obsv != nil {
				st.obsv.Checkpoint(st.name, i)
			}
		}
		if st.obsv != nil && st.faultHorizon > 0 && res.Converged {
			st.obsv.Recovery(st.name, i, res.Rounds-st.faultHorizon)
		}
	}
	if st.obsv != nil {
		st.obsv.ReplicaDone(st.name, i, res.Rounds, res.Converged, st.states[i].String())
	}
}

// outcome assembles the final Outcome and decides the returned error.
func (st *taskState) outcome(t Task) (Outcome, error) {
	out := Outcome{Task: t, Results: st.results}
	clean := true
	for i, s := range st.states {
		if s == Done {
			continue
		}
		clean = false
		if s == Failed {
			out.Failures = append(out.Failures, ReplicaFailure{Replica: i, Err: st.errs[i]})
		}
	}
	if !clean {
		out.States = st.states
	}
	if st.journalErr != nil {
		return out, fmt.Errorf("sim: task %q: %w", t.Name, st.journalErr)
	}
	if err := st.ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}

// runRecovered invokes one engine run, converting a panic into an error so
// a corrupted replica cannot take down the whole sweep.
func runRecovered(run func(engine.Config, *rng.RNG) (engine.Result, error), cfg engine.Config, g *rng.RNG) (res engine.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = engine.Result{}
			err = fmt.Errorf("replica panicked: %v", r)
		}
	}()
	return run(cfg, g)
}

// runParallelBatched fans Parallel-mode replicas out as contiguous chunks
// of the pending list, one engine.RunParallelReplicas batch per worker, so
// all replicas of a chunk advance in lockstep and share one memoized
// adopt-probability cache. Per-replica seeds are the same ones the
// unbatched path would use and the batched engine reproduces RunParallel
// exactly, so outcomes are identical to running each replica on its own —
// just cheaper by a factor of the cache hit rate on the O(ℓ) Eq. 4 sums.
//
// A panic inside a batch poisons the whole chunk's shared state, so the
// chunk falls back to bit-identical per-replica RunParallel runs, each
// individually recovered; only the replica that actually panics is lost.
func runParallelBatched(cfg engine.Config, st *taskState, pending []int, seeds []uint64, workers int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(pending) / workers
		hi := (w + 1) * len(pending) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(chunk []int) {
			defer wg.Done()
			chunkSeeds := make([]uint64, len(chunk))
			for k, i := range chunk {
				chunkSeeds[k] = seeds[i]
				if st.obsv != nil {
					// The whole chunk advances in lockstep, so its replicas
					// all start when the batch does.
					st.obsv.ReplicaStart(st.name, i)
				}
			}
			batch, err := runBatchRecovered(cfg, chunkSeeds)
			if err == nil {
				for k, i := range chunk {
					st.classify(i, batch[k], nil)
				}
				return
			}
			// Batch failed as a unit; isolate the fault per replica.
			for _, i := range chunk {
				res, rerr := runRecovered(engine.RunParallel, cfg, rng.New(seeds[i]))
				st.classify(i, res, rerr)
			}
		}(pending[lo:hi])
	}
	wg.Wait()
}

// runBatchRecovered is RunParallelReplicas with panics converted to errors.
func runBatchRecovered(cfg engine.Config, seeds []uint64) (rs []engine.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			rs = nil
			err = fmt.Errorf("batch panicked: %v", r)
		}
	}()
	return engine.RunParallelReplicas(cfg, seeds)
}

// agentBatchBudget caps the opinion-bitset memory one worker's lockstep
// agent-level batch keeps live at once (every replica of a batch holds two
// bitsets for its whole run). 256 MiB bounds a thousand-replica sweep at
// n = 10⁶ comfortably while keeping huge-n batches narrow enough to fit.
const agentBatchBudget = 256 << 20

// runAgentsBatched is runParallelBatched for AgentLevel mode: contiguous
// chunks of the pending list advance in lockstep through
// engine.RunAgentsReplicas, so the deterministic-regime adoption
// thresholds are memoized once per distinct one-count across the whole
// batch instead of once per replica-round. Outcomes are identical to the
// unbatched path — the batched engine is bit-identical to per-replica
// RunAgents on the same seeds — and a panicked batch falls back to
// individually recovered per-replica runs. Chunks are additionally split
// into sub-batches narrow enough that live bitsets stay under
// agentBatchBudget per worker.
func runAgentsBatched(cfg engine.Config, st *taskState, pending []int, seeds []uint64, workers int) {
	perReplica := cfg.N / 4 // two bitsets, n/8 bytes each
	if perReplica < 1 {
		perReplica = 1
	}
	maxWidth := int(int64(agentBatchBudget) / perReplica)
	if maxWidth < 1 {
		maxWidth = 1
	}
	runOne := func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
		return engine.RunAgents(cfg, engine.AgentOptions{}, g)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(pending) / workers
		hi := (w + 1) * len(pending) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(chunk []int) {
			defer wg.Done()
			for start := 0; start < len(chunk); start += maxWidth {
				end := start + maxWidth
				if end > len(chunk) {
					end = len(chunk)
				}
				sub := chunk[start:end]
				subSeeds := make([]uint64, len(sub))
				for k, i := range sub {
					subSeeds[k] = seeds[i]
					if st.obsv != nil {
						st.obsv.ReplicaStart(st.name, i)
					}
				}
				batch, err := runAgentsBatchRecovered(cfg, subSeeds)
				if err == nil {
					for k, i := range sub {
						st.classify(i, batch[k], nil)
					}
					continue
				}
				// Batch failed as a unit; isolate the fault per replica.
				for _, i := range sub {
					res, rerr := runRecovered(runOne, cfg, rng.New(seeds[i]))
					st.classify(i, res, rerr)
				}
			}
		}(pending[lo:hi])
	}
	wg.Wait()
}

// runAgentsBatchRecovered is RunAgentsReplicas with panics converted to
// errors.
func runAgentsBatchRecovered(cfg engine.Config, seeds []uint64) (rs []engine.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			rs = nil
			err = fmt.Errorf("batch panicked: %v", r)
		}
	}()
	return engine.RunAgentsReplicas(cfg, engine.AgentOptions{}, seeds)
}

// runner maps a mode to its engine entry point.
func runner(m Mode) (func(engine.Config, *rng.RNG) (engine.Result, error), error) {
	switch m {
	case Parallel:
		return engine.RunParallel, nil
	case Sequential:
		return engine.RunSequential, nil
	case AgentLevel:
		return func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{}, g)
		}, nil
	case Aggregated:
		return engine.RunAggregated, nil
	default:
		return nil, fmt.Errorf("unknown mode %d", int(m))
	}
}

// ConvergedCount returns how many replicas converged.
func (o *Outcome) ConvergedCount() int {
	c := 0
	for _, r := range o.Results {
		if r.Converged {
			c++
		}
	}
	return c
}

// SuccessRate returns the convergence fraction with its Wilson 95%
// confidence interval.
func (o *Outcome) SuccessRate() (rate, lo, hi float64) {
	n := int64(len(o.Results))
	k := int64(o.ConvergedCount())
	if n == 0 {
		return 0, 0, 1
	}
	lo, hi = dist.WilsonInterval(k, n, 0.05)
	return float64(k) / float64(n), lo, hi
}

// ConvergenceRounds returns the rounds-to-consensus of the converged
// replicas.
func (o *Outcome) ConvergenceRounds() []int64 {
	out := make([]int64, 0, len(o.Results))
	for _, r := range o.Results {
		if r.Converged {
			out = append(out, r.Rounds)
		}
	}
	return out
}

// RoundsSummary summarizes the convergence rounds of converged replicas.
func (o *Outcome) RoundsSummary() stats.Summary {
	return stats.Summarize(stats.Float64s(o.ConvergenceRounds()))
}
