package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync"

	"bitspread/internal/engine"
)

// TaskKey fingerprints everything that determines a replica's trajectory:
// the task name, the full engine configuration (rule identity included),
// the mode and the seed. Replicas is deliberately excluded so a journal
// written for a shorter run remains a valid prefix when the same task is
// re-run with more replicas. The key is an FNV-1a hash of a canonical
// description, prefixed with the task name for human-readable journals.
func TaskKey(t Task) string {
	h := fnv.New64a()
	c := &t.Config
	fmt.Fprintf(h, "n=%d z=%d x0=%d max=%d mode=%d seed=%d", c.N, c.Z, c.X0, c.MaxRounds, t.Mode, t.Seed)
	if c.Rule != nil {
		g0, g1 := c.Rule.Tables()
		fmt.Fprintf(h, " rule=%s ell=%d g0=%v g1=%v", c.Rule.Name(), c.Rule.SampleSize(), g0, g1)
	}
	if c.Faults != nil && !c.Faults.Empty() {
		// fault.Schedule stringifies to its full event list, so two tasks
		// share a key only when they inject the same perturbations.
		fmt.Fprintf(h, " faults=%v", c.Faults)
	}
	return fmt.Sprintf("%s#%016x", t.Name, h.Sum64())
}

// journalEntry is one line of the JSONL checkpoint file: a finished replica
// of a keyed task.
type journalEntry struct {
	Task    string        `json:"task"`
	Replica int           `json:"replica"`
	Result  engine.Result `json:"result"`
}

// partitionEntry is the shard-journal line format: journalEntry plus the
// global task ordinal, so MergeJournals can restore the canonical
// single-process line order without seeing every shard's task sequence.
// The extra field is ignored by the resume loader, so a shard journal is
// itself a valid resumable journal.
type partitionEntry struct {
	Task    string        `json:"task"`
	Replica int           `json:"replica"`
	Seq     int           `json:"seq"`
	Result  engine.Result `json:"result"`
}

// PartitionFunc decides which replicas of a keyed task this process owns.
// Every process of a partitioned sweep sees the identical task space (the
// experiments run everywhere, deterministically); the partition function
// selects the subset of (task key, replica) pairs this process computes
// and checkpoints. internal/fabric provides the standard hash partition.
type PartitionFunc func(key string, replica int) bool

// Journal is an append-only JSONL checkpoint of completed replicas. Every
// Record is flushed to the file before it returns, so a process killed
// mid-sweep loses at most the replica in flight; reopening the same path
// with resume=true replays the finished work instead of recomputing it.
// A Journal is safe for concurrent use by the sim worker pool.
//
// The journal file is guarded by an exclusive advisory lock (flock) for
// the journal's whole lifetime, so two processes can never interleave
// writes to one checkpoint; the second opener fails fast with an error
// naming the holder's PID.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	fsync bool
	done  map[string]map[int]engine.Result
	// own, when non-nil, puts the journal in partition mode: RunContext
	// skips replicas the partition does not own, and recorded lines carry
	// the task ordinal for canonical-order merging.
	own PartitionFunc
	// ord assigns each task key its global ordinal — the order RunContext
	// first saw it. All shards of a partitioned sweep run the same task
	// sequence, so ordinals agree across shards without coordination.
	ord     map[string]int
	nextOrd int
	// writeErr latches the first Record failure so a driver that discards
	// per-task errors (partition workers tolerate table-stage failures on
	// partial data) can still fail the shard on checkpoint loss.
	writeErr error
}

// JournalOptions configures OpenJournalOpts beyond the historical
// (path, resume) pair.
type JournalOptions struct {
	// Resume loads the existing entries at path and serves them from
	// Lookup; without it the file is truncated and the run starts clean.
	Resume bool
	// Fsync forces an fsync(2) after every Record flush, so a checkpoint
	// survives not just a process kill but a machine crash. Long-running
	// daemons (bitspreadd) turn this on; one-shot sweeps usually accept
	// the smaller page-cache window in exchange for cheaper Records.
	Fsync bool
	// Logf, if non-nil, receives recovery diagnostics during load — most
	// importantly the torn-final-line report when a crash cut a Record
	// in half. Replayed state never depends on it.
	Logf func(format string, args ...any)
	// Partition, if non-nil, makes this a shard journal: RunContext
	// computes and checkpoints only the replicas the partition owns
	// (classifying the rest as Skipped), and every recorded line carries
	// the task ordinal so MergeJournals can restore canonical order.
	Partition PartitionFunc
}

// OpenJournal opens (or creates) the checkpoint file at path. With resume
// set, existing entries are loaded and later served by Lookup; a malformed
// final line — the signature of a write cut off by a kill — is dropped,
// while corruption earlier in the file is an error. Without resume the
// file is truncated and the run starts clean.
func OpenJournal(path string, resume bool) (*Journal, error) {
	return OpenJournalOpts(path, JournalOptions{Resume: resume})
}

// OpenJournalOpts is OpenJournal with the daemon-grade knobs of
// JournalOptions: fsync-per-Record durability and a diagnostics hook for
// crash-truncation recovery.
func OpenJournalOpts(path string, opts JournalOptions) (*Journal, error) {
	j := &Journal{
		done:  map[string]map[int]engine.Result{},
		fsync: opts.Fsync,
		own:   opts.Partition,
		ord:   map[string]int{},
	}
	// Open without truncating, take the exclusive lock, and only then
	// touch the contents: a second opener must never clobber bytes the
	// holder is still writing.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sim: open journal: %w", err)
	}
	if err := lockJournal(f, path); err != nil {
		f.Close() //bitlint:errsink error-path cleanup; the lock error is the one the caller needs and no bytes were written
		return nil, err
	}
	if opts.Resume {
		valid, err := j.load(path, opts.Logf)
		if err != nil {
			f.Close() //bitlint:errsink error-path cleanup; the replay error is the one the caller needs and no bytes were written
			return nil, err
		}
		// Cut a torn final line off the file, not just the replay: the
		// handle appends, and bytes after a torn fragment would otherwise
		// turn it into mid-file corruption no later reader tolerates.
		if err := f.Truncate(valid); err != nil {
			f.Close() //bitlint:errsink error-path cleanup; the truncate error is the one the caller needs
			return nil, fmt.Errorf("sim: trim torn journal tail: %w", err)
		}
	} else if err := f.Truncate(0); err != nil {
		f.Close() //bitlint:errsink error-path cleanup; the truncate error is the one the caller needs
		return nil, fmt.Errorf("sim: truncate journal: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	return j, nil
}

// load replays an existing journal file into the in-memory index and
// returns the length of its valid prefix — everything up to (but not
// including) a torn final line. A missing file is an empty journal.
func (j *Journal) load(path string, logf func(string, ...any)) (int64, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("sim: read journal: %w", err)
	}
	lines := splitLines(data)
	valid := int64(len(data))
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			if i == len(lines)-1 {
				// Torn final write from an interrupted run; the replica it
				// described will simply be recomputed.
				if logf != nil {
					logf("sim: journal %s: dropping truncated final line %d (%d bytes): %v", path, i+1, len(line), err)
				}
				return valid - int64(len(line)), nil
			}
			return 0, fmt.Errorf("sim: journal line %d corrupt: %w", i+1, err)
		}
		j.put(e.Task, e.Replica, e.Result)
	}
	return valid, nil
}

// splitLines splits on '\n' without requiring a trailing newline.
func splitLines(data []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			lines = append(lines, data[start:i])
			start = i + 1
		}
	}
	if start < len(data) {
		lines = append(lines, data[start:])
	}
	return lines
}

func (j *Journal) put(task string, replica int, r engine.Result) {
	m := j.done[task]
	if m == nil {
		m = map[int]engine.Result{}
		j.done[task] = m
	}
	m[replica] = r
}

// Lookup returns the checkpointed result of the given replica, if one was
// recorded (in this run or a resumed one).
func (j *Journal) Lookup(task string, replica int) (engine.Result, bool) {
	if j == nil {
		return engine.Result{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.done[task][replica]
	return r, ok
}

// Len returns the number of checkpointed replicas across all tasks.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	//bitlint:maporder pure count; integer length-sum is order-insensitive
	for _, m := range j.done {
		n += len(m)
	}
	return n
}

// BeginTask assigns the task its global ordinal: the number of distinct
// tasks this journal saw before it. RunContext calls it once per task,
// owned replicas or not, so every shard of a partitioned sweep — all
// running the identical experiment sequence — numbers the identical task
// in the identical slot. No-op on a nil Journal.
func (j *Journal) BeginTask(task string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.ord[task]; !ok {
		j.ord[task] = j.nextOrd
		j.nextOrd++
	}
}

// Owns reports whether this process computes the given replica. Without a
// partition (or on a nil Journal) every replica is owned — the
// single-process behaviour.
func (j *Journal) Owns(task string, replica int) bool {
	if j == nil || j.own == nil {
		return true
	}
	return j.own(task, replica)
}

// Err returns the first Record failure, if any. Partition workers discard
// per-experiment errors (tables computed over a partial shard are expected
// to fail) but must still fail the shard when a checkpoint write was lost.
func (j *Journal) Err() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.writeErr
}

// Record checkpoints a finished replica, flushing the line to the file
// before returning. Recording on a nil Journal is a no-op, so the sim
// layer can thread an optional journal without branching.
func (j *Journal) Record(task string, replica int, r engine.Result) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	err := j.recordLocked(task, replica, r)
	if err != nil && j.writeErr == nil {
		j.writeErr = err
	}
	return err
}

func (j *Journal) recordLocked(task string, replica int, r engine.Result) error {
	j.put(task, replica, r)
	if j.w == nil {
		return nil
	}
	var line []byte
	var err error
	if j.own != nil {
		line, err = json.Marshal(partitionEntry{Task: task, Replica: replica, Seq: j.ord[task], Result: r})
	} else {
		line, err = json.Marshal(journalEntry{Task: task, Replica: replica, Result: r})
	}
	if err != nil {
		return fmt.Errorf("sim: journal encode: %w", err)
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sim: journal write: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if j.fsync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("sim: journal fsync: %w", err)
		}
	}
	return nil
}

// Close flushes and closes the underlying file. The in-memory index stays
// readable, so Lookup keeps working after Close.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	ferr := j.w.Flush()
	cerr := j.f.Close()
	j.f, j.w = nil, nil
	if ferr != nil {
		return ferr
	}
	return cerr
}
