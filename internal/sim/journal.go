package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync"

	"bitspread/internal/engine"
)

// TaskKey fingerprints everything that determines a replica's trajectory:
// the task name, the full engine configuration (rule identity included),
// the mode and the seed. Replicas is deliberately excluded so a journal
// written for a shorter run remains a valid prefix when the same task is
// re-run with more replicas. The key is an FNV-1a hash of a canonical
// description, prefixed with the task name for human-readable journals.
func TaskKey(t Task) string {
	h := fnv.New64a()
	c := &t.Config
	fmt.Fprintf(h, "n=%d z=%d x0=%d max=%d mode=%d seed=%d", c.N, c.Z, c.X0, c.MaxRounds, t.Mode, t.Seed)
	if c.Rule != nil {
		g0, g1 := c.Rule.Tables()
		fmt.Fprintf(h, " rule=%s ell=%d g0=%v g1=%v", c.Rule.Name(), c.Rule.SampleSize(), g0, g1)
	}
	if c.Faults != nil && !c.Faults.Empty() {
		// fault.Schedule stringifies to its full event list, so two tasks
		// share a key only when they inject the same perturbations.
		fmt.Fprintf(h, " faults=%v", c.Faults)
	}
	return fmt.Sprintf("%s#%016x", t.Name, h.Sum64())
}

// journalEntry is one line of the JSONL checkpoint file: a finished replica
// of a keyed task.
type journalEntry struct {
	Task    string        `json:"task"`
	Replica int           `json:"replica"`
	Result  engine.Result `json:"result"`
}

// Journal is an append-only JSONL checkpoint of completed replicas. Every
// Record is flushed to the file before it returns, so a process killed
// mid-sweep loses at most the replica in flight; reopening the same path
// with resume=true replays the finished work instead of recomputing it.
// A Journal is safe for concurrent use by the sim worker pool.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	fsync bool
	done  map[string]map[int]engine.Result
}

// JournalOptions configures OpenJournalOpts beyond the historical
// (path, resume) pair.
type JournalOptions struct {
	// Resume loads the existing entries at path and serves them from
	// Lookup; without it the file is truncated and the run starts clean.
	Resume bool
	// Fsync forces an fsync(2) after every Record flush, so a checkpoint
	// survives not just a process kill but a machine crash. Long-running
	// daemons (bitspreadd) turn this on; one-shot sweeps usually accept
	// the smaller page-cache window in exchange for cheaper Records.
	Fsync bool
	// Logf, if non-nil, receives recovery diagnostics during load — most
	// importantly the torn-final-line report when a crash cut a Record
	// in half. Replayed state never depends on it.
	Logf func(format string, args ...any)
}

// OpenJournal opens (or creates) the checkpoint file at path. With resume
// set, existing entries are loaded and later served by Lookup; a malformed
// final line — the signature of a write cut off by a kill — is dropped,
// while corruption earlier in the file is an error. Without resume the
// file is truncated and the run starts clean.
func OpenJournal(path string, resume bool) (*Journal, error) {
	return OpenJournalOpts(path, JournalOptions{Resume: resume})
}

// OpenJournalOpts is OpenJournal with the daemon-grade knobs of
// JournalOptions: fsync-per-Record durability and a diagnostics hook for
// crash-truncation recovery.
func OpenJournalOpts(path string, opts JournalOptions) (*Journal, error) {
	j := &Journal{done: map[string]map[int]engine.Result{}, fsync: opts.Fsync}
	if opts.Resume {
		if err := j.load(path, opts.Logf); err != nil {
			return nil, err
		}
	}
	flags := os.O_CREATE | os.O_WRONLY
	if opts.Resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sim: open journal: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	return j, nil
}

// load replays an existing journal file into the in-memory index. A
// missing file is an empty journal.
func (j *Journal) load(path string, logf func(string, ...any)) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("sim: read journal: %w", err)
	}
	lines := splitLines(data)
	for i, line := range lines {
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			if i == len(lines)-1 {
				// Torn final write from an interrupted run; the replica it
				// described will simply be recomputed.
				if logf != nil {
					logf("sim: journal %s: dropping truncated final line %d (%d bytes): %v", path, i+1, len(line), err)
				}
				return nil
			}
			return fmt.Errorf("sim: journal line %d corrupt: %w", i+1, err)
		}
		j.put(e.Task, e.Replica, e.Result)
	}
	return nil
}

// splitLines splits on '\n' without requiring a trailing newline.
func splitLines(data []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			lines = append(lines, data[start:i])
			start = i + 1
		}
	}
	if start < len(data) {
		lines = append(lines, data[start:])
	}
	return lines
}

func (j *Journal) put(task string, replica int, r engine.Result) {
	m := j.done[task]
	if m == nil {
		m = map[int]engine.Result{}
		j.done[task] = m
	}
	m[replica] = r
}

// Lookup returns the checkpointed result of the given replica, if one was
// recorded (in this run or a resumed one).
func (j *Journal) Lookup(task string, replica int) (engine.Result, bool) {
	if j == nil {
		return engine.Result{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.done[task][replica]
	return r, ok
}

// Len returns the number of checkpointed replicas across all tasks.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := 0
	//bitlint:maporder pure count; integer length-sum is order-insensitive
	for _, m := range j.done {
		n += len(m)
	}
	return n
}

// Record checkpoints a finished replica, flushing the line to the file
// before returning. Recording on a nil Journal is a no-op, so the sim
// layer can thread an optional journal without branching.
func (j *Journal) Record(task string, replica int, r engine.Result) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.put(task, replica, r)
	if j.w == nil {
		return nil
	}
	line, err := json.Marshal(journalEntry{Task: task, Replica: replica, Result: r})
	if err != nil {
		return fmt.Errorf("sim: journal encode: %w", err)
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sim: journal write: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if j.fsync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("sim: journal fsync: %w", err)
		}
	}
	return nil
}

// Close flushes and closes the underlying file. The in-memory index stays
// readable, so Lookup keeps working after Close.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	ferr := j.w.Flush()
	cerr := j.f.Close()
	j.f, j.w = nil, nil
	if ferr != nil {
		return ferr
	}
	return cerr
}
