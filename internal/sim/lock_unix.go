//go:build unix

package sim

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"syscall"
)

// lockJournal takes an exclusive advisory flock on the journal file for
// the life of the file handle, so two processes can never interleave
// writes to one checkpoint. The holder leaves its PID in a `<path>.lock`
// sidecar; a second opener fails fast with an error naming that PID. The
// kernel releases the lock when the holder's descriptor closes — a
// SIGKILL'd holder never wedges the journal, and a stale sidecar is only
// ever read while a live lock exists.
func lockJournal(f *os.File, path string) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
			if pid, ok := holderPID(path); ok {
				return fmt.Errorf("sim: journal %s is locked by pid %d (flock held; a second writer would corrupt the checkpoint)", path, pid)
			}
			return fmt.Errorf("sim: journal %s is locked by another process (flock held; a second writer would corrupt the checkpoint)", path)
		}
		return fmt.Errorf("sim: lock journal %s: %w", path, err)
	}
	// Best-effort holder advertisement; the lock itself is the guard.
	_ = os.WriteFile(path+".lock", []byte(strconv.Itoa(os.Getpid())+"\n"), 0o644)
	return nil
}

// holderPID reads the lock sidecar written by the current holder.
func holderPID(path string) (int, bool) {
	b, err := os.ReadFile(path + ".lock")
	if err != nil {
		return 0, false
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(b)))
	if err != nil || pid <= 0 {
		return 0, false
	}
	return pid, true
}
