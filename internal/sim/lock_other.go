//go:build !unix

package sim

import "os"

// lockJournal is a no-op where flock(2) is unavailable: the journal keeps
// its historical single-writer-by-convention behaviour on such platforms.
func lockJournal(f *os.File, path string) error { return nil }
