package sim

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bitspread/internal/engine"
)

// --- journal locking (flock) ---

// A second opener of a live journal must fail fast with an error naming
// the holder's PID; after the holder closes, the path opens again.
func TestJournalExclusiveLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("k", 0, engine.Result{Rounds: 3}); err != nil {
		t.Fatal(err)
	}

	_, err = OpenJournal(path, true)
	if err == nil {
		t.Fatal("second opener acquired a locked journal")
	}
	want := fmt.Sprintf("locked by pid %d", os.Getpid())
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("lock error %q does not name the holder (%s)", err, want)
	}
	// The failed opener must not have clobbered the holder's bytes.
	if err := j.Record("k", 1, engine.Result{Rounds: 5}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	defer j2.Close()
	if r, ok := j2.Lookup("k", 1); !ok || r.Rounds != 5 {
		t.Fatalf("entry written while lock contended is missing: %+v %v", r, ok)
	}
}

// --- merge edge cases ---

func mergedString(t *testing.T, srcs ...MergeSource) (string, MergeStats) {
	t.Helper()
	var buf bytes.Buffer
	stats, err := MergeJournals(&buf, srcs)
	if err != nil {
		t.Fatal(err)
	}
	return buf.String(), stats
}

func TestMergeOverlapIdenticalDedups(t *testing.T) {
	a := []byte(`{"task":"t","replica":0,"seq":0,"result":{"rounds":1}}` + "\n" +
		`{"task":"t","replica":2,"seq":0,"result":{"rounds":3}}` + "\n")
	b := []byte(`{"task":"t","replica":0,"seq":0,"result":{"rounds":1}}` + "\n" +
		`{"task":"t","replica":1,"seq":0,"result":{"rounds":2}}` + "\n")
	out, stats := mergedString(t, MergeSource{"a", a}, MergeSource{"b", b})
	want := `{"task":"t","replica":0,"result":{"rounds":1}}` + "\n" +
		`{"task":"t","replica":1,"result":{"rounds":2}}` + "\n" +
		`{"task":"t","replica":2,"result":{"rounds":3}}` + "\n"
	if out != want {
		t.Fatalf("merged:\n%s\nwant:\n%s", out, want)
	}
	if stats.Deduped != 1 || stats.Entries != 3 || stats.Tasks != 1 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestMergeConflictingDuplicateIsHardError(t *testing.T) {
	a := []byte(`{"task":"t","replica":0,"seq":0,"result":{"rounds":1}}` + "\n")
	b := []byte(`{"task":"t","replica":0,"seq":0,"result":{"rounds":9}}` + "\n")
	var buf bytes.Buffer
	_, err := MergeJournals(&buf, []MergeSource{{"a", a}, {"b", b}})
	if err == nil {
		t.Fatal("conflicting duplicate merged silently")
	}
	for _, frag := range []string{"conflicting results", "a", "b", "replica 0"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("conflict error %q missing %q", err, frag)
		}
	}
}

func TestMergeTornFinalLineDropped(t *testing.T) {
	a := []byte(`{"task":"t","replica":0,"seq":0,"result":{"rounds":1}}` + "\n" +
		`{"task":"t","replica":1,"seq":0,"res`)
	out, stats := mergedString(t, MergeSource{"a", a})
	if stats.Torn != 1 || stats.Entries != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if strings.Contains(out, `"replica":1`) {
		t.Fatalf("torn line leaked into merge:\n%s", out)
	}
}

func TestMergeMidFileCorruptionIsHardError(t *testing.T) {
	a := []byte(`{"task":"t","replica":0,"seq":0,"res` + "\n" +
		`{"task":"t","replica":1,"seq":0,"result":{"rounds":2}}` + "\n")
	var buf bytes.Buffer
	_, err := MergeJournals(&buf, []MergeSource{{"a", a}})
	if err == nil || !strings.Contains(err.Error(), "line 1 corrupt") {
		t.Fatalf("mid-file corruption tolerated: %v", err)
	}
}

func TestMergeEmptyShardsLegal(t *testing.T) {
	a := []byte(`{"task":"t","replica":0,"seq":0,"result":{"rounds":1}}` + "\n")
	out, stats := mergedString(t, MergeSource{"empty1", nil}, MergeSource{"a", a}, MergeSource{"empty2", []byte("\n\n")})
	if stats.Sources != 3 || stats.Entries != 1 {
		t.Fatalf("stats %+v", stats)
	}
	if !strings.Contains(out, `"replica":0`) {
		t.Fatalf("entry lost among empty shards:\n%s", out)
	}
}

// Task order in the merge follows the shard-recorded seq ordinals even
// when a shard only holds replicas of later tasks.
func TestMergeOrdersBySeqAcrossShards(t *testing.T) {
	// Shard a owns replicas of tasks A and C; shard b of B and C. The
	// canonical order A, B, C is recoverable only through seq.
	a := []byte(`{"task":"A","replica":0,"seq":0,"result":{"rounds":1}}` + "\n" +
		`{"task":"C","replica":0,"seq":2,"result":{"rounds":3}}` + "\n")
	b := []byte(`{"task":"B","replica":0,"seq":1,"result":{"rounds":2}}` + "\n" +
		`{"task":"C","replica":1,"seq":2,"result":{"rounds":4}}` + "\n")
	out, _ := mergedString(t, MergeSource{"a", a}, MergeSource{"b", b})
	want := `{"task":"A","replica":0,"result":{"rounds":1}}` + "\n" +
		`{"task":"B","replica":0,"result":{"rounds":2}}` + "\n" +
		`{"task":"C","replica":0,"result":{"rounds":3}}` + "\n" +
		`{"task":"C","replica":1,"result":{"rounds":4}}` + "\n"
	if out != want {
		t.Fatalf("merged:\n%s\nwant:\n%s", out, want)
	}
}

func TestMergeJournalFilesRejectsDstAsSource(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "a.jsonl")
	if err := os.WriteFile(src, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeJournalFiles(src, src); err == nil {
		t.Fatal("destination accepted as its own source")
	}
}

// --- partition-mode RunContext ---

// A partitioned run computes only owned replicas, classifies the rest
// Skipped, and the shard journals merge back to the bytes of an
// unpartitioned single-worker journal.
func TestRunContextPartitionRoundTrip(t *testing.T) {
	task := voterTask(12, 42)
	dir := t.TempDir()

	ref := filepath.Join(dir, "ref.jsonl")
	j, err := OpenJournal(ref, false)
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunContext(context.Background(), task, 1, j)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Two complementary parity shards.
	shardPaths := make([]string, 2)
	ownedTotal := 0
	for i := 0; i < 2; i++ {
		i := i
		path := filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i))
		shardPaths[i] = path
		sj, err := OpenJournalOpts(path, JournalOptions{
			Partition: func(key string, replica int) bool { return replica%2 == i },
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := RunContext(context.Background(), task, 3, sj)
		if err != nil {
			t.Fatal(err)
		}
		if err := sj.Close(); err != nil {
			t.Fatal(err)
		}
		if got := out.SkippedCount(); got != task.Replicas/2 {
			t.Fatalf("shard %d skipped %d replicas, want %d", i, got, task.Replicas/2)
		}
		completed, failed, cancelled, timedOut := out.Counts()
		if completed+failed+cancelled+timedOut+out.SkippedCount() != task.Replicas {
			t.Fatalf("shard %d states don't cover all replicas: %d+%d+%d+%d+%d != %d",
				i, completed, failed, cancelled, timedOut, out.SkippedCount(), task.Replicas)
		}
		ownedTotal += completed
		// Owned replicas must agree exactly with the full run.
		for r := 0; r < task.Replicas; r++ {
			if r%2 != i {
				if out.States[r] != Skipped {
					t.Fatalf("shard %d replica %d: state %v, want Skipped", i, r, out.States[r])
				}
				continue
			}
			if out.Results[r] != full.Results[r] {
				t.Fatalf("shard %d replica %d diverged from full run", i, r)
			}
		}
	}
	if ownedTotal != task.Replicas {
		t.Fatalf("shards computed %d replicas, want %d", ownedTotal, task.Replicas)
	}

	merged := filepath.Join(dir, "merged.jsonl")
	stats, err := MergeJournalFiles(merged, shardPaths...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged shard journals differ from reference (%s)", stats)
	}
}

func TestSkippedStateString(t *testing.T) {
	if Skipped.String() != "skipped" {
		t.Fatalf("Skipped.String() = %q", Skipped.String())
	}
}
