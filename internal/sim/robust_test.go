package sim

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"bitspread/internal/engine"
	"bitspread/internal/fault"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// panicPerturber implements engine.Perturber through a real fault schedule
// but panics inside PerturbCount at its trigger round. Injecting the panic
// through the Perturber hook exercises the exact code path a buggy fault
// model (or rule table) would take — no stubbed engines involved.
type panicPerturber struct {
	*fault.Schedule
	round int64
}

func (p *panicPerturber) PerturbCount(t, n int64, src int, x int64, g *rng.RNG) int64 {
	if t == p.round {
		panic("injected replica fault")
	}
	return p.Schedule.PerturbCount(t, n, src, x, g)
}

func (p *panicPerturber) PerturbAgents(t int64, ops []uint8, g *rng.RNG) {
	if t == p.round {
		panic("injected replica fault")
	}
	p.Schedule.PerturbAgents(t, ops, g)
}

func newPanicPerturber(round int64) *panicPerturber {
	return &panicPerturber{Schedule: fault.Must(fault.ResetAt(round, 0.5, 0)), round: round}
}

func TestPanickingReplicaIsRecorded(t *testing.T) {
	for _, mode := range []Mode{Parallel, Sequential, AgentLevel} {
		task := voterTask(6, 3)
		task.Mode = mode
		task.Config.Faults = newPanicPerturber(2)
		out, err := RunContext(context.Background(), task, 3, nil)
		if err != nil {
			t.Fatalf("%v: a replica panic must not fail the task: %v", mode, err)
		}
		completed, failed, cancelled, timedOut := out.Counts()
		if failed != 6 || completed != 0 || cancelled != 0 || timedOut != 0 {
			t.Errorf("%v: counts = %d,%d,%d,%d; want all 6 failed", mode, completed, failed, cancelled, timedOut)
		}
		if len(out.Failures) != 6 {
			t.Fatalf("%v: %d failures recorded", mode, len(out.Failures))
		}
		for _, f := range out.Failures {
			if !strings.Contains(f.Err.Error(), "injected replica fault") {
				t.Errorf("%v: failure lost the recovered panic value: %v", mode, f.Err)
			}
		}
	}
}

func TestCancelledContextReturnsPartialOutcome(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := RunContext(ctx, voterTask(8, 1), 4, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out.Results) != 8 || len(out.States) != 8 {
		t.Fatalf("partial outcome missing results/states: %d/%d", len(out.Results), len(out.States))
	}
	_, _, cancelled, _ := out.Counts()
	if cancelled != 8 {
		t.Errorf("cancelled = %d of 8", cancelled)
	}
	for i, r := range out.Results {
		if r.Converged || !r.Interrupted {
			t.Errorf("replica %d: %+v is not a flagged partial result", i, r)
		}
	}
}

func TestDeadlineStopsLongTaskPromptly(t *testing.T) {
	// Majority from the all-wrong trap never converges, and the round
	// budget below is astronomically beyond test time — only the deadline
	// can end this run.
	task := Task{
		Name: "deadline",
		Config: engine.Config{
			N:         4096,
			Rule:      protocol.Majority(3),
			Z:         1,
			X0:        1,
			MaxRounds: 1 << 40,
		},
		Mode:     Parallel,
		Replicas: 4,
		Seed:     9,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	out, err := RunContext(ctx, task, 2, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	_, _, _, timedOut := out.Counts()
	if timedOut != 4 {
		t.Errorf("timed out = %d of 4 (states %v)", timedOut, out.States)
	}
}

func TestCleanRunHasNilStates(t *testing.T) {
	out, err := RunContext(context.Background(), voterTask(5, 2), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.States != nil || out.Failures != nil {
		t.Errorf("clean run carries states %v failures %v", out.States, out.Failures)
	}
	completed, _, _, _ := out.Counts()
	if completed != 5 {
		t.Errorf("completed = %d of 5", completed)
	}
}

func TestJournalResumeMatchesUninterruptedRun(t *testing.T) {
	task := voterTask(20, 13)
	want, err := Run(task, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a sweep killed after 7 replicas: a journal holding only a
	// prefix of the work.
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	key := TaskKey(task)
	for i := 0; i < 7; i++ {
		if err := j.Record(key, i, want.Results[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: the finished prefix must be served from the checkpoint and
	// the remainder recomputed, landing on the exact same table.
	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Len() != 7 {
		t.Fatalf("resumed journal holds %d replicas, want 7", j2.Len())
	}
	got, err := RunContext(context.Background(), task, 4, j2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Error("resumed run differs from uninterrupted run")
	}
	if j2.Len() != task.Replicas {
		t.Errorf("journal holds %d replicas after resume, want %d", j2.Len(), task.Replicas)
	}
}

func TestJournalServesCheckpointsVerbatim(t *testing.T) {
	// A sentinel result planted in the journal must surface unchanged in
	// the outcome — proof the checkpointed replica was not recomputed.
	task := voterTask(3, 5)
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	sentinel := engine.Result{Converged: true, Rounds: 123456, FinalCount: 7}
	if err := j.Record(TaskKey(task), 1, sentinel); err != nil {
		t.Fatal(err)
	}
	out, err := RunContext(context.Background(), task, 2, j)
	if err != nil {
		t.Fatal(err)
	}
	if out.Results[1] != sentinel {
		t.Errorf("replica 1 = %+v, want the journal sentinel", out.Results[1])
	}
}

func TestJournalToleratesTornFinalLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("k", 0, engine.Result{Converged: true, Rounds: 9}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// A kill mid-write leaves a truncated trailing line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"task":"k","replica":1,"resu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatalf("torn final line must be tolerated: %v", err)
	}
	defer j2.Close()
	if r, ok := j2.Lookup("k", 0); !ok || r.Rounds != 9 {
		t.Errorf("intact entry lost: %+v %v", r, ok)
	}
	if _, ok := j2.Lookup("k", 1); ok {
		t.Error("torn entry resurrected")
	}
}

func TestJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.jsonl")
	if err := os.WriteFile(path, []byte("garbage\n{\"task\":\"k\",\"replica\":0,\"result\":{}}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, true); err == nil {
		t.Error("corruption before the final line accepted")
	}
}

func TestJournalResumeMissingFileIsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.jsonl")
	j, err := OpenJournal(path, true)
	if err != nil {
		t.Fatalf("resuming with no prior journal must start clean: %v", err)
	}
	defer j.Close()
	if j.Len() != 0 {
		t.Errorf("fresh journal holds %d entries", j.Len())
	}
}

func TestTaskKeyDiscriminates(t *testing.T) {
	base := voterTask(10, 1)
	key := TaskKey(base)
	if !strings.HasPrefix(key, "voter#") {
		t.Errorf("key %q lost the task name", key)
	}

	same := base
	same.Replicas = 500 // deliberately excluded: journals are prefix-reusable
	if TaskKey(same) != key {
		t.Error("replica count changed the key")
	}

	variants := []func(*Task){
		func(t *Task) { t.Seed = 2 },
		func(t *Task) { t.Mode = Sequential },
		func(t *Task) { t.Config.N = 12 },
		func(t *Task) { t.Config.X0 = 3 },
		func(t *Task) { t.Config.Faults = fault.Must(fault.ResetAt(3, 1, 0)) },
	}
	for i, mutate := range variants {
		v := base
		mutate(&v)
		if TaskKey(v) == key {
			t.Errorf("variant %d shares the base key", i)
		}
	}

	withFaults := base
	withFaults.Config.Faults = fault.Must(fault.ResetAt(3, 1, 0))
	other := base
	other.Config.Faults = fault.Must(fault.ResetAt(4, 1, 0))
	if TaskKey(withFaults) == TaskKey(other) {
		t.Error("different schedules share a key")
	}
	empty := base
	empty.Config.Faults = fault.Must()
	if TaskKey(empty) != key {
		t.Error("an empty schedule changed the key despite being a no-op")
	}
}

func TestNilJournalIsInert(t *testing.T) {
	var j *Journal
	if _, ok := j.Lookup("k", 0); ok {
		t.Error("nil journal found an entry")
	}
	if err := j.Record("k", 0, engine.Result{}); err != nil {
		t.Error(err)
	}
	if err := j.Close(); err != nil {
		t.Error(err)
	}
	if j.Len() != 0 {
		t.Error("nil journal non-empty")
	}
}

func TestReplicaStateStrings(t *testing.T) {
	for _, s := range []ReplicaState{Done, Failed, Cancelled, TimedOut, ReplicaState(42)} {
		if s.String() == "" {
			t.Errorf("empty name for state %d", int(s))
		}
	}
}
