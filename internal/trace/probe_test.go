package trace

import (
	"reflect"
	"testing"

	"bitspread/internal/engine"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// *Recorder must satisfy the engine probe contract, so a trajectory tap
// can ride the structured event stream instead of Config.Record.
var _ engine.Probe = (*Recorder)(nil)

// TestRecorderAsEngineProbe runs the same seeded instance twice — once
// with the recorder as Config.Record, once as Config.Probe — and demands
// identical trajectories and identical Results.
func TestRecorderAsEngineProbe(t *testing.T) {
	rule := protocol.Minority(3)
	base := engine.Config{N: 512, Rule: rule, Z: 1, X0: 256}

	viaRecord := NewRecorder(base.N, 4)
	cfgR := base
	cfgR.Record = viaRecord.Hook
	resR, err := engine.RunParallel(cfgR, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}

	viaProbe := NewRecorder(base.N, 4)
	cfgP := base
	cfgP.Probe = viaProbe
	resP, err := engine.RunParallel(cfgP, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}

	if resR != resP {
		t.Errorf("Result differs: record=%+v probe=%+v", resR, resP)
	}
	r1, c1 := viaRecord.Points()
	r2, c2 := viaProbe.Points()
	if !reflect.DeepEqual(r1, r2) || !reflect.DeepEqual(c1, c2) {
		t.Errorf("trajectories differ:\nrecord %v %v\nprobe  %v %v", r1, c1, r2, c2)
	}
	if viaProbe.Len() == 0 {
		t.Fatal("probe recorded nothing")
	}
	last := c2[len(c2)-1]
	if resP.Converged && last != base.N {
		t.Errorf("terminal point = %d, want consensus %d", last, base.N)
	}
}

// TestSequentialTerminalPoint pins the sequential engine's terminal
// emission: mid-round convergence must surface the final count to the
// Record hook instead of stopping one partial round short.
func TestSequentialTerminalPoint(t *testing.T) {
	rule := protocol.Voter(1)
	rec := NewRecorder(64, 1)
	cfg := engine.Config{N: 64, Rule: rule, Z: 1, X0: 32, Record: rec.Hook}
	res, err := engine.RunSequential(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Skip("run did not converge under the cap; nothing to pin")
	}
	_, counts := rec.Points()
	if len(counts) == 0 {
		t.Fatal("no points recorded")
	}
	if got := counts[len(counts)-1]; got != res.FinalCount {
		t.Errorf("terminal recorded count = %d, want FinalCount %d", got, res.FinalCount)
	}
}
