package trace

import (
	"strings"
	"testing"
)

func TestRecorderDownsamples(t *testing.T) {
	r := NewRecorder(100, 10)
	for round := int64(1); round <= 95; round++ {
		r.Hook(round, round)
	}
	// Rounds 10..90 on the stride, plus the retained terminal round 95.
	if r.Len() != 10 {
		t.Fatalf("recorded %d points, want 10 (rounds 10..90 + terminal 95)", r.Len())
	}
	rounds, counts := r.Points()
	if rounds[0] != 10 || counts[0] != 10 {
		t.Errorf("first point = (%d, %d)", rounds[0], counts[0])
	}
	if rounds[8] != 90 {
		t.Errorf("last stride round = %d", rounds[8])
	}
	if rounds[9] != 95 || counts[9] != 95 {
		t.Errorf("terminal point = (%d, %d), want (95, 95)", rounds[9], counts[9])
	}
}

// TestRecorderTerminalRetention is the regression test for the dropped
// terminal round: a run converging off-stride must still surface its
// final point, exactly once, without duplicating an on-stride ending.
func TestRecorderTerminalRetention(t *testing.T) {
	r := NewRecorder(100, 10)
	for round := int64(1); round <= 20; round++ {
		r.Hook(round, round)
	}
	// On-stride ending: no duplicate terminal point.
	rounds, _ := r.Points()
	if len(rounds) != 2 || rounds[1] != 20 {
		t.Fatalf("on-stride points = %v, want [10 20]", rounds)
	}
	r.Hook(23, 99)
	rounds, counts := r.Points()
	if len(rounds) != 3 || rounds[2] != 23 || counts[2] != 99 {
		t.Fatalf("off-stride points = %v/%v, want terminal (23, 99)", rounds, counts)
	}
	if len(r.Fractions()) != 3 {
		t.Errorf("Fractions len = %d, want 3", len(r.Fractions()))
	}
	if !strings.Contains(r.Plot(3), "round 0 .. 23") {
		t.Errorf("Plot does not reach the terminal round:\n%s", r.Plot(3))
	}
	// The terminal point is only the run's LAST point: once a later
	// on-stride round arrives, the former off-stride tail (23) drops back
	// out of the downsample.
	r.Hook(30, 30)
	rounds, _ = r.Points()
	if len(rounds) != 3 || rounds[2] != 30 {
		t.Errorf("points after round 30 = %v, want [10 20 30]", rounds)
	}
}

// TestZeroValueRecorderIsInert is the regression test for the zero-value
// panic: the docs promise "the zero value records nothing", but Hook used
// to divide by the zero stride.
func TestZeroValueRecorderIsInert(t *testing.T) {
	var r Recorder
	r.Hook(1, 5) // must not panic
	r.RoundDone(2, 6, 4)
	if r.Len() != 0 {
		t.Errorf("zero value recorded %d points", r.Len())
	}
	if fr := r.Fractions(); len(fr) != 0 {
		t.Errorf("zero value fractions = %v", fr)
	}
	if got := r.Sparkline(); got != "" {
		t.Errorf("zero value sparkline = %q", got)
	}
	if got := r.Plot(3); !strings.Contains(got, "no points") {
		t.Errorf("zero value plot = %q", got)
	}
	var nilR *Recorder
	nilR.Hook(1, 5) // nil receiver is inert too
}

// TestFractionsZeroPopulation is the regression test for the NaN leak: a
// recorder built without a population must yield zeros, not NaN, and the
// renderers must survive NaN inputs regardless.
func TestFractionsZeroPopulation(t *testing.T) {
	r := &Recorder{every: 1} // hand-rolled: n == 0 but recording enabled
	r.Hook(1, 5)
	fr := r.Fractions()
	if len(fr) != 1 || fr[0] != 0 {
		t.Errorf("fractions with n=0 = %v, want [0]", fr)
	}
	if got := r.Sparkline(); got != "▁" {
		t.Errorf("sparkline with n=0 = %q", got)
	}
	nan := 0.0
	nan /= nan
	if got := Sparkline([]float64{nan, 0.5}); got != "▁▅" {
		t.Errorf("Sparkline with NaN = %q, want %q", got, "▁▅")
	}
	if out := r.Plot(3); !strings.Contains(out, "*") {
		t.Errorf("plot with n=0 lost its point:\n%s", out)
	}
}

func TestRecorderEveryClamped(t *testing.T) {
	r := NewRecorder(10, 0)
	r.Hook(1, 5)
	if r.Len() != 1 {
		t.Error("every=0 should record every round")
	}
}

func TestForBudget(t *testing.T) {
	r := ForBudget(100, 600, 60)
	for round := int64(1); round <= 600; round++ {
		r.Hook(round, 50)
	}
	if r.Len() != 60 {
		t.Errorf("recorded %d points, want 60", r.Len())
	}
	if r2 := ForBudget(100, 5, 0); r2.every != 5 {
		t.Errorf("points=0 handling: every = %d", r2.every)
	}
}

func TestFractions(t *testing.T) {
	r := NewRecorder(200, 1)
	r.Hook(1, 100)
	r.Hook(2, 200)
	fr := r.Fractions()
	if len(fr) != 2 || fr[0] != 0.5 || fr[1] != 1 {
		t.Errorf("fractions = %v", fr)
	}
}

func TestPointsAreCopies(t *testing.T) {
	r := NewRecorder(10, 1)
	r.Hook(1, 5)
	rounds, _ := r.Points()
	rounds[0] = 999
	if again, _ := r.Points(); again[0] != 1 {
		t.Error("Points leaked internal state")
	}
}

func TestSparkline(t *testing.T) {
	got := Sparkline([]float64{0, 0.5, 1, -1, 2})
	want := "▁▅█▁█"
	if got != want {
		t.Errorf("Sparkline = %q, want %q", got, want)
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
}

func TestRecorderSparkline(t *testing.T) {
	r := NewRecorder(8, 1)
	r.Hook(1, 0)
	r.Hook(2, 8)
	if got := r.Sparkline(); got != "▁█" {
		t.Errorf("Sparkline = %q", got)
	}
}

func TestPlot(t *testing.T) {
	r := NewRecorder(10, 1)
	r.Hook(1, 0)
	r.Hook(2, 5)
	r.Hook(3, 10)
	out := r.Plot(5)
	if !strings.Contains(out, "1.00 |") || !strings.Contains(out, "0.00 |") {
		t.Errorf("axis labels missing:\n%s", out)
	}
	if strings.Count(out, "*") != 3 {
		t.Errorf("expected 3 plotted points:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Fraction 1 plots on the top row, fraction 0 on the bottom data row.
	if !strings.Contains(lines[0], "*") {
		t.Errorf("top row missing the max point:\n%s", out)
	}
	if !strings.Contains(lines[4], "*") {
		t.Errorf("bottom row missing the min point:\n%s", out)
	}
}

func TestPlotEmptyAndClamp(t *testing.T) {
	r := NewRecorder(10, 1)
	if got := r.Plot(5); !strings.Contains(got, "no points") {
		t.Errorf("empty plot = %q", got)
	}
	r.Hook(1, 5)
	if out := r.Plot(1); strings.Count(out, "|") < 2 {
		t.Errorf("rows clamp failed:\n%s", out)
	}
}
