package trace

import (
	"strings"
	"testing"
)

func TestRecorderDownsamples(t *testing.T) {
	r := NewRecorder(100, 10)
	for round := int64(1); round <= 95; round++ {
		r.Hook(round, round)
	}
	if r.Len() != 9 {
		t.Fatalf("recorded %d points, want 9 (rounds 10..90)", r.Len())
	}
	rounds, counts := r.Points()
	if rounds[0] != 10 || counts[0] != 10 {
		t.Errorf("first point = (%d, %d)", rounds[0], counts[0])
	}
	if rounds[8] != 90 {
		t.Errorf("last round = %d", rounds[8])
	}
}

func TestRecorderEveryClamped(t *testing.T) {
	r := NewRecorder(10, 0)
	r.Hook(1, 5)
	if r.Len() != 1 {
		t.Error("every=0 should record every round")
	}
}

func TestForBudget(t *testing.T) {
	r := ForBudget(100, 600, 60)
	for round := int64(1); round <= 600; round++ {
		r.Hook(round, 50)
	}
	if r.Len() != 60 {
		t.Errorf("recorded %d points, want 60", r.Len())
	}
	if r2 := ForBudget(100, 5, 0); r2.every != 5 {
		t.Errorf("points=0 handling: every = %d", r2.every)
	}
}

func TestFractions(t *testing.T) {
	r := NewRecorder(200, 1)
	r.Hook(1, 100)
	r.Hook(2, 200)
	fr := r.Fractions()
	if len(fr) != 2 || fr[0] != 0.5 || fr[1] != 1 {
		t.Errorf("fractions = %v", fr)
	}
}

func TestPointsAreCopies(t *testing.T) {
	r := NewRecorder(10, 1)
	r.Hook(1, 5)
	rounds, _ := r.Points()
	rounds[0] = 999
	if again, _ := r.Points(); again[0] != 1 {
		t.Error("Points leaked internal state")
	}
}

func TestSparkline(t *testing.T) {
	got := Sparkline([]float64{0, 0.5, 1, -1, 2})
	want := "▁▅█▁█"
	if got != want {
		t.Errorf("Sparkline = %q, want %q", got, want)
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty")
	}
}

func TestRecorderSparkline(t *testing.T) {
	r := NewRecorder(8, 1)
	r.Hook(1, 0)
	r.Hook(2, 8)
	if got := r.Sparkline(); got != "▁█" {
		t.Errorf("Sparkline = %q", got)
	}
}

func TestPlot(t *testing.T) {
	r := NewRecorder(10, 1)
	r.Hook(1, 0)
	r.Hook(2, 5)
	r.Hook(3, 10)
	out := r.Plot(5)
	if !strings.Contains(out, "1.00 |") || !strings.Contains(out, "0.00 |") {
		t.Errorf("axis labels missing:\n%s", out)
	}
	if strings.Count(out, "*") != 3 {
		t.Errorf("expected 3 plotted points:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Fraction 1 plots on the top row, fraction 0 on the bottom data row.
	if !strings.Contains(lines[0], "*") {
		t.Errorf("top row missing the max point:\n%s", out)
	}
	if !strings.Contains(lines[4], "*") {
		t.Errorf("bottom row missing the min point:\n%s", out)
	}
}

func TestPlotEmptyAndClamp(t *testing.T) {
	r := NewRecorder(10, 1)
	if got := r.Plot(5); !strings.Contains(got, "no points") {
		t.Errorf("empty plot = %q", got)
	}
	r.Hook(1, 5)
	if out := r.Plot(1); strings.Count(out, "|") < 2 {
		t.Errorf("rows clamp failed:\n%s", out)
	}
}
