// Package trace records and renders one-count trajectories: downsampling
// recorders that plug into the engines' Record hooks, and terminal
// renderings (sparklines and signed bar charts) used by the examples and
// the bitsim tool.
package trace

import (
	"fmt"
	"strings"
)

// Recorder collects a downsampled trajectory through an engine Record
// hook. The zero value records nothing; construct with NewRecorder.
//
// The recorder always retains the last hooked point: when a run
// converges at a round that is not a multiple of the sampling stride,
// the terminal point is appended to Points/Fractions/Plot anyway, so a
// trajectory ends at consensus instead of up to every-1 rounds early.
//
// A *Recorder is also an engine probe (it satisfies the engine Probe
// contract): RoundDone feeds the trajectory exactly like Hook, and the
// fault/shard events are ignored. Unlike the atomic obs probes it is NOT
// safe for concurrent use — attach it to single-run configs only, as
// Config.Record.
type Recorder struct {
	every  int64
	n      int64
	rounds []int64
	counts []int64
	// Terminal-point retention: the last hooked point, kept even when its
	// round is not a multiple of every.
	lastRound int64
	lastCount int64
	hasLast   bool
}

// NewRecorder returns a recorder that keeps every every-th round of a run
// over a population of n (used to normalize fractions). every < 1 is
// treated as 1.
func NewRecorder(n, every int64) *Recorder {
	if every < 1 {
		every = 1
	}
	return &Recorder{every: every, n: n}
}

// ForBudget returns a recorder sized so a run of the given round budget
// keeps about the requested number of points.
func ForBudget(n, budget int64, points int) *Recorder {
	if points < 1 {
		points = 1
	}
	return NewRecorder(n, budget/int64(points))
}

// Hook is the engine-compatible record callback. On a zero-value (or
// nil) recorder it records nothing — it must never be the hook that
// crashes a run.
func (r *Recorder) Hook(round, count int64) {
	if r == nil || r.every < 1 {
		return
	}
	r.lastRound, r.lastCount, r.hasLast = round, count, true
	if round%r.every == 0 {
		r.rounds = append(r.rounds, round)
		r.counts = append(r.counts, count)
	}
}

// RoundDone implements the engine Probe contract, feeding the trajectory
// like Hook; the sampled-agent count is not part of a trajectory.
func (r *Recorder) RoundDone(round, ones, sampled int64) { r.Hook(round, ones) }

// FaultApplied implements the engine Probe contract; recorders track
// counts only.
func (r *Recorder) FaultApplied(round int64) {}

// ShardRound implements the engine Probe contract; recorders track
// counts only.
func (r *Recorder) ShardRound(shard int, sampled int64) {}

// points returns the retained trajectory: the downsampled points plus the
// terminal point when the run ended off-stride. The slices alias internal
// state (full-slice capped, so an append cannot clobber it); exported
// accessors copy.
func (r *Recorder) points() (rounds, counts []int64) {
	rounds = r.rounds[:len(r.rounds):len(r.rounds)]
	counts = r.counts[:len(r.counts):len(r.counts)]
	if r.hasLast && (len(rounds) == 0 || rounds[len(rounds)-1] != r.lastRound) {
		rounds = append(rounds, r.lastRound)
		counts = append(counts, r.lastCount)
	}
	return rounds, counts
}

// Len returns the number of recorded points, the terminal point included.
func (r *Recorder) Len() int {
	rounds, _ := r.points()
	return len(rounds)
}

// Points returns copies of the recorded rounds and counts, the terminal
// point included.
func (r *Recorder) Points() (rounds, counts []int64) {
	rs, cs := r.points()
	return append([]int64(nil), rs...), append([]int64(nil), cs...)
}

// Fractions returns the recorded one-fractions count/n. On a recorder
// with no population (the zero value) it returns zeros rather than
// NaN/Inf, so renderings stay well-formed.
func (r *Recorder) Fractions() []float64 {
	_, counts := r.points()
	out := make([]float64, len(counts))
	if r.n <= 0 {
		return out
	}
	for i, c := range counts {
		out[i] = float64(c) / float64(r.n)
	}
	return out
}

// sparkGlyphs are the eight block glyphs used by Sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values in [0, 1] as a block-glyph strip. Values are
// clamped; NaN renders as the empty (bottom) glyph.
func Sparkline(values []float64) string {
	var b strings.Builder
	for _, v := range values {
		if v != v || v < 0 { // v != v: NaN from a degenerate normalization
			v = 0
		}
		idx := int(v * float64(len(sparkGlyphs)))
		if idx >= len(sparkGlyphs) {
			idx = len(sparkGlyphs) - 1
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}

// Sparkline renders the recorder's fraction trajectory.
func (r *Recorder) Sparkline() string { return Sparkline(r.Fractions()) }

// Plot renders the trajectory as a rows-line chart with a labeled y-axis
// of fractions, suitable for terminals. rows < 2 is clamped to 2.
func (r *Recorder) Plot(rows int) string {
	if rows < 2 {
		rows = 2
	}
	fr := r.Fractions()
	if len(fr) == 0 {
		return "(no points recorded)\n"
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", len(fr)))
	}
	for x, v := range fr {
		if v != v || v < 0 { // v != v: NaN from a degenerate normalization
			v = 0
		} else if v > 1 {
			v = 1
		}
		// Row 0 is the top (fraction 1).
		y := int((1 - v) * float64(rows-1))
		grid[y][x] = '*'
	}
	var b strings.Builder
	for i, row := range grid {
		label := "      "
		switch i {
		case 0:
			label = "1.00 |"
		case rows / 2:
			label = "0.50 |"
		case rows - 1:
			label = "0.00 |"
		default:
			label = "     |"
		}
		fmt.Fprintf(&b, "%s%s\n", label, row)
	}
	rounds, _ := r.points()
	lastRound := int64(0)
	if len(rounds) > 0 {
		lastRound = rounds[len(rounds)-1]
	}
	fmt.Fprintf(&b, "     +%s\n      round 0 .. %d (every %d)\n",
		strings.Repeat("-", len(fr)), lastRound, r.every)
	return b.String()
}
