// Package trace records and renders one-count trajectories: downsampling
// recorders that plug into the engines' Record hooks, and terminal
// renderings (sparklines and signed bar charts) used by the examples and
// the bitsim tool.
package trace

import (
	"fmt"
	"strings"
)

// Recorder collects a downsampled trajectory through an engine Record
// hook. The zero value records nothing; construct with NewRecorder.
type Recorder struct {
	every  int64
	n      int64
	rounds []int64
	counts []int64
}

// NewRecorder returns a recorder that keeps every every-th round of a run
// over a population of n (used to normalize fractions). every < 1 is
// treated as 1.
func NewRecorder(n, every int64) *Recorder {
	if every < 1 {
		every = 1
	}
	return &Recorder{every: every, n: n}
}

// ForBudget returns a recorder sized so a run of the given round budget
// keeps about the requested number of points.
func ForBudget(n, budget int64, points int) *Recorder {
	if points < 1 {
		points = 1
	}
	return NewRecorder(n, budget/int64(points))
}

// Hook is the engine-compatible record callback.
func (r *Recorder) Hook(round, count int64) {
	if round%r.every == 0 {
		r.rounds = append(r.rounds, round)
		r.counts = append(r.counts, count)
	}
}

// Len returns the number of recorded points.
func (r *Recorder) Len() int { return len(r.counts) }

// Points returns copies of the recorded rounds and counts.
func (r *Recorder) Points() (rounds, counts []int64) {
	return append([]int64(nil), r.rounds...), append([]int64(nil), r.counts...)
}

// Fractions returns the recorded one-fractions count/n.
func (r *Recorder) Fractions() []float64 {
	out := make([]float64, len(r.counts))
	for i, c := range r.counts {
		out[i] = float64(c) / float64(r.n)
	}
	return out
}

// sparkGlyphs are the eight block glyphs used by Sparkline.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values in [0, 1] as a block-glyph strip. Values are
// clamped.
func Sparkline(values []float64) string {
	var b strings.Builder
	for _, v := range values {
		if v < 0 {
			v = 0
		}
		idx := int(v * float64(len(sparkGlyphs)))
		if idx >= len(sparkGlyphs) {
			idx = len(sparkGlyphs) - 1
		}
		b.WriteRune(sparkGlyphs[idx])
	}
	return b.String()
}

// Sparkline renders the recorder's fraction trajectory.
func (r *Recorder) Sparkline() string { return Sparkline(r.Fractions()) }

// Plot renders the trajectory as a rows-line chart with a labeled y-axis
// of fractions, suitable for terminals. rows < 2 is clamped to 2.
func (r *Recorder) Plot(rows int) string {
	if rows < 2 {
		rows = 2
	}
	fr := r.Fractions()
	if len(fr) == 0 {
		return "(no points recorded)\n"
	}
	grid := make([][]byte, rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", len(fr)))
	}
	for x, v := range fr {
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		// Row 0 is the top (fraction 1).
		y := int((1 - v) * float64(rows-1))
		grid[y][x] = '*'
	}
	var b strings.Builder
	for i, row := range grid {
		label := "      "
		switch i {
		case 0:
			label = "1.00 |"
		case rows / 2:
			label = "0.50 |"
		case rows - 1:
			label = "0.00 |"
		default:
			label = "     |"
		}
		fmt.Fprintf(&b, "%s%s\n", label, row)
	}
	lastRound := int64(0)
	if len(r.rounds) > 0 {
		lastRound = r.rounds[len(r.rounds)-1]
	}
	fmt.Fprintf(&b, "     +%s\n      round 0 .. %d (every %d)\n",
		strings.Repeat("-", len(fr)), lastRound, r.every)
	return b.String()
}
