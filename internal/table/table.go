// Package table renders the harness's result tables as aligned ASCII and
// as CSV, so every experiment prints the same rows the paper's statements
// predict and can also be piped into plotting tools.
package table

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-ordered result table. The zero value is ready
// to use.
type Table struct {
	title   string
	headers []string
	rows    [][]string
	notes   []string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: append([]string(nil), headers...)}
}

// AddRow appends a row; cells beyond the header count are dropped and
// missing cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each argument is rendered
// with %v, floats with %.4g.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		case float32:
			row = append(row, fmt.Sprintf("%.4g", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// AddNote appends a free-form footnote printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.notes = append(t.notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = displayWidth(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if dw := displayWidth(c); dw > widths[i] {
				widths[i] = dw
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-displayWidth(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.headers)
	total := len(widths)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as RFC-4180-ish CSV (quoting cells containing
// commas, quotes or newlines). Notes are omitted.
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the ASCII form.
func (t *Table) String() string {
	var b strings.Builder
	// strings.Builder writes never fail.
	_ = t.WriteASCII(&b)
	return b.String()
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// displayWidth approximates the printed width as the rune count (the
// tables here use at most a few non-ASCII math glyphs, which terminals
// render single-width).
func displayWidth(s string) int {
	n := 0
	for range s {
		n++
	}
	return n
}
