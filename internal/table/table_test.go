package table

import (
	"strings"
	"testing"
)

func TestASCIIAlignment(t *testing.T) {
	tb := New("Demo", "n", "rounds")
	tb.AddRow("8", "12")
	tb.AddRow("1024", "9")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "n   ") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "8   ") {
		t.Errorf("row = %q", lines[3])
	}
	if !strings.HasPrefix(lines[4], "1024") {
		t.Errorf("row = %q", lines[4])
	}
}

func TestAddRowfAndNotes(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.AddRowf(3, 0.123456789, "x")
	tb.AddNote("seed %d", 42)
	out := tb.String()
	if !strings.Contains(out, "0.1235") {
		t.Errorf("float not %%.4g-formatted:\n%s", out)
	}
	if !strings.Contains(out, "note: seed 42") {
		t.Errorf("note missing:\n%s", out)
	}
}

func TestRowPadding(t *testing.T) {
	tb := New("", "a", "b")
	tb.AddRow("1")           // short row: missing cell blank
	tb.AddRow("1", "2", "3") // long row: extra dropped
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	out := tb.String()
	if strings.Contains(out, "3") {
		t.Errorf("extra cell survived:\n%s", out)
	}
}

func TestCSV(t *testing.T) {
	tb := New("ignored", "name", "value")
	tb.AddRow(`quo"te`, "a,b")
	tb.AddRow("plain", "1")
	tb.AddNote("not in csv")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "name,value\n\"quo\"\"te\",\"a,b\"\nplain,1\n"
	if b.String() != want {
		t.Errorf("csv = %q, want %q", b.String(), want)
	}
}

func TestUnicodeHeadersAlign(t *testing.T) {
	tb := New("", "ℓ", "τ/n")
	tb.AddRow("85", "0.02")
	out := tb.String()
	if !strings.Contains(out, "ℓ") || !strings.Contains(out, "85") {
		t.Errorf("unicode table broken:\n%s", out)
	}
}
