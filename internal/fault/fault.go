// Package fault is the deterministic fault-injection subsystem: a seeded
// Schedule of mid-run perturbations applied at parallel-round boundaries
// through the engine's Perturber hooks. It turns the paper's defining
// property — self-stabilization, convergence from *any* configuration —
// into something measurable: instead of only choosing the initial
// configuration adversarially, a schedule rewrites opinions, crashes and
// rejoins agents, pins Byzantine minorities, drops updates, and takes the
// source down mid-flight, and Recovery reports how many rounds the
// dynamics needed to re-converge once the disturbance ended.
//
// Determinism contract: a Schedule holds no mutable state and consumes
// randomness only from the generator the engine hands it, so a (seed,
// schedule) pair reproduces the same trajectory on every engine and at
// every worker count, and an empty schedule consumes nothing — engines
// with a nil or empty schedule are byte-identical to the unhooked code.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"bitspread/internal/engine"
	"bitspread/internal/rng"
)

// Kind enumerates the fault kinds a Schedule can inject.
type Kind uint8

const (
	// Reset rewrites a Fraction of the perturbable non-source agents to
	// Opinion at round Round — the adversarial configuration reset.
	Reset Kind = iota + 1
	// Churn crashes a Fraction of the perturbable non-source agents at
	// round Round; each rejoins immediately with an opinion drawn
	// Bernoulli(Bias) — memory-less rebooting.
	Churn
	// Stubborn pins a Fraction of the non-source agents at Opinion for
	// Duration rounds starting at Round: a Byzantine minority that ignores
	// the rule.
	Stubborn
	// Omission makes every non-source update in rounds [Round,
	// Round+Duration) fail independently with probability Prob (the agent
	// keeps its opinion) — a correlated sample-omission burst.
	Omission
	// SourceCrash makes the source hold the wrong opinion 1-z during
	// rounds [Round, Round+Duration), recovering afterwards.
	SourceCrash
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Reset:
		return "reset"
	case Churn:
		return "churn"
	case Stubborn:
		return "stubborn"
	case Omission:
		return "omission"
	case SourceCrash:
		return "source-crash"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// windowed reports whether the kind spans Duration rounds (as opposed to
// firing once at Round).
func (k Kind) windowed() bool {
	return k == Stubborn || k == Omission || k == SourceCrash
}

// boundary reports whether the kind rewrites opinions at its start round.
func (k Kind) boundary() bool {
	return k == Reset || k == Churn || k == Stubborn
}

// Event is one scheduled fault. Unused fields for a kind are ignored by
// the engine hooks but still validated when set (fractions and
// probabilities must be in [0,1] regardless).
type Event struct {
	Kind Kind
	// Round is the first affected parallel round, 1-based: boundary kinds
	// fire before the round's updates, windowed kinds are active from it.
	Round int64
	// Duration is the window length in rounds for Stubborn, Omission and
	// SourceCrash; it must be 0 for the point kinds Reset and Churn.
	Duration int64
	// Fraction of the perturbable non-source agents hit by Reset, Churn or
	// Stubborn.
	Fraction float64
	// Opinion is the value Reset and Stubborn write, 0 or 1.
	Opinion int
	// Bias is the probability a churned agent rejoins holding opinion 1.
	Bias float64
	// Prob is the per-agent, per-round omission probability.
	Prob float64
}

// end returns the first round no longer affected by the event.
func (e Event) end() int64 {
	if e.Kind.windowed() {
		return e.Round + e.Duration
	}
	return e.Round + 1
}

// active reports whether the event affects round t.
func (e Event) active(t int64) bool {
	return t >= e.Round && t < e.end()
}

// String renders the event compactly, e.g. "reset@12(f=1,op=0)".
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%d", e.Kind, e.Round)
	if e.Kind.windowed() {
		fmt.Fprintf(&b, "+%d", e.Duration)
	}
	switch e.Kind {
	case Reset:
		fmt.Fprintf(&b, "(f=%g,op=%d)", e.Fraction, e.Opinion)
	case Churn:
		fmt.Fprintf(&b, "(f=%g,bias=%g)", e.Fraction, e.Bias)
	case Stubborn:
		fmt.Fprintf(&b, "(f=%g,op=%d)", e.Fraction, e.Opinion)
	case Omission:
		fmt.Fprintf(&b, "(q=%g)", e.Prob)
	}
	return b.String()
}

// Convenience constructors for the five kinds.

// ResetAt rewrites fraction of the non-source agents to opinion at round.
func ResetAt(round int64, fraction float64, opinion int) Event {
	return Event{Kind: Reset, Round: round, Fraction: fraction, Opinion: opinion}
}

// ChurnAt crashes fraction of the non-source agents at round; each rejoins
// with an opinion drawn Bernoulli(bias).
func ChurnAt(round int64, fraction, bias float64) Event {
	return Event{Kind: Churn, Round: round, Fraction: fraction, Bias: bias}
}

// StubbornFor pins fraction of the non-source agents at opinion for
// duration rounds starting at round.
func StubbornFor(round, duration int64, fraction float64, opinion int) Event {
	return Event{Kind: Stubborn, Round: round, Duration: duration, Fraction: fraction, Opinion: opinion}
}

// OmissionFor drops each non-source update with probability prob during
// rounds [round, round+duration).
func OmissionFor(round, duration int64, prob float64) Event {
	return Event{Kind: Omission, Round: round, Duration: duration, Prob: prob}
}

// SourceCrashFor takes the source down (it holds 1-z) for duration rounds
// starting at round.
func SourceCrashFor(round, duration int64) Event {
	return Event{Kind: SourceCrash, Round: round, Duration: duration}
}

// Schedule is a validated, immutable set of events implementing the
// engine's Perturber hooks. The zero value and nil are valid empty
// schedules.
type Schedule struct {
	events  []Event // sorted by Round
	horizon int64
}

// Compile-time check that Schedule satisfies the engine contract.
var _ engine.Perturber = (*Schedule)(nil)

// New validates the events and returns the schedule; see Validate for the
// rules.
func New(events ...Event) (*Schedule, error) {
	if err := Validate(events); err != nil {
		return nil, err
	}
	s := &Schedule{events: append([]Event(nil), events...)}
	sort.SliceStable(s.events, func(i, j int) bool { return s.events[i].Round < s.events[j].Round })
	for _, e := range s.events {
		if end := e.end() - 1; end > s.horizon {
			s.horizon = end
		}
	}
	return s, nil
}

// Must is New for statically-known schedules; it panics on invalid events.
func Must(events ...Event) *Schedule {
	s, err := New(events...)
	if err != nil {
		panic(fmt.Sprintf("fault: invalid schedule: %v", err))
	}
	return s
}

// inUnit reports v ∈ [0,1] (false for NaN).
func inUnit(v float64) bool { return v >= 0 && v <= 1 }

// Validate reports the first problem with an event list:
//
//   - every Round must be ≥ 1, every probability/fraction in [0,1] and
//     every Opinion 0 or 1;
//   - windowed kinds need Duration ≥ 1, point kinds must leave it 0;
//   - boundary kinds (Reset, Churn, Stubborn) must not share a start
//     round, so their rewrite order is never ambiguous;
//   - Stubborn windows must not overlap each other: the pinned set is the
//     lowest-index prefix, which is only well defined for one window at a
//     time. Reset/Churn *inside* a stubborn window are fine — they only
//     touch the unpinned pool.
func Validate(events []Event) error {
	for i, e := range events {
		switch e.Kind {
		case Reset, Churn, Stubborn, Omission, SourceCrash:
		default:
			return fmt.Errorf("event %d: unknown kind %d", i, uint8(e.Kind))
		}
		if e.Round < 1 {
			return fmt.Errorf("event %d (%s): round %d < 1", i, e.Kind, e.Round)
		}
		if e.Kind.windowed() {
			if e.Duration < 1 {
				return fmt.Errorf("event %d (%s): duration %d < 1", i, e.Kind, e.Duration)
			}
			if e.Round > math.MaxInt64-e.Duration {
				return fmt.Errorf("event %d (%s): window overflows", i, e.Kind)
			}
		} else if e.Duration != 0 {
			return fmt.Errorf("event %d (%s): point events take no duration (got %d)", i, e.Kind, e.Duration)
		}
		if !inUnit(e.Fraction) {
			return fmt.Errorf("event %d (%s): fraction %v outside [0,1]", i, e.Kind, e.Fraction)
		}
		if !inUnit(e.Bias) {
			return fmt.Errorf("event %d (%s): bias %v outside [0,1]", i, e.Kind, e.Bias)
		}
		if !inUnit(e.Prob) {
			return fmt.Errorf("event %d (%s): probability %v outside [0,1]", i, e.Kind, e.Prob)
		}
		if e.Opinion != 0 && e.Opinion != 1 {
			return fmt.Errorf("event %d (%s): opinion %d not 0/1", i, e.Kind, e.Opinion)
		}
	}
	for i, a := range events {
		if !a.Kind.boundary() {
			continue
		}
		for j, b := range events {
			if i == j {
				continue
			}
			if b.Kind.boundary() && j > i && a.Round == b.Round {
				return fmt.Errorf("events %d and %d both rewrite opinions at round %d", i, j, a.Round)
			}
			if a.Kind == Stubborn && b.Kind == Stubborn && b.active(a.Round) && a.Round != b.Round {
				return fmt.Errorf("stubborn event %d starts inside stubborn window of event %d", i, j)
			}
		}
	}
	return nil
}

// Events returns a copy of the schedule's events in application order.
func (s *Schedule) Events() []Event {
	if s == nil {
		return nil
	}
	return append([]Event(nil), s.events...)
}

// String renders the schedule as its event list, stable across runs — the
// sim layer folds it into checkpoint fingerprints.
func (s *Schedule) String() string {
	if s.Empty() {
		return "no-faults"
	}
	parts := make([]string, len(s.events))
	for i, e := range s.events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// Empty implements engine.Perturber; nil-safe.
func (s *Schedule) Empty() bool { return s == nil || len(s.events) == 0 }

// Horizon implements engine.Perturber: the last round any event affects.
func (s *Schedule) Horizon() int64 {
	if s == nil {
		return 0
	}
	return s.horizon
}

// ActiveAt reports whether any event of the schedule affects round t —
// a boundary event firing at t or a window covering it. Observability
// layers use it to label rounds as perturbed; it is a pure query and
// nil-safe like the Perturber methods.
func (s *Schedule) ActiveAt(t int64) bool {
	if s == nil {
		return false
	}
	for _, e := range s.events {
		if e.active(t) {
			return true
		}
	}
	return false
}

// BoundaryAt implements engine.Perturber.
func (s *Schedule) BoundaryAt(t int64) bool {
	if s == nil {
		return false
	}
	for _, e := range s.events {
		if e.Round == t && e.Kind.boundary() {
			return true
		}
	}
	return false
}

// SourceOpinion implements engine.Perturber.
func (s *Schedule) SourceOpinion(t int64, z int) int {
	if s == nil {
		return z
	}
	for _, e := range s.events {
		if e.Kind == SourceCrash && e.active(t) {
			return 1 - z
		}
	}
	return z
}

// OmitProb implements engine.Perturber; overlapping omission bursts take
// the strongest one.
func (s *Schedule) OmitProb(t int64) float64 {
	if s == nil {
		return 0
	}
	q := 0.0
	for _, e := range s.events {
		if e.Kind == Omission && e.active(t) && e.Prob > q {
			q = e.Prob
		}
	}
	return q
}

// stubbornCount converts a pinned fraction to an agent count for
// population n (non-source agents only).
func stubbornCount(fraction float64, n int64) int64 {
	return int64(math.Round(fraction * float64(n-1)))
}

// Stubborn implements engine.Perturber.
func (s *Schedule) Stubborn(t, n int64) (ones, zeros int64) {
	if s == nil {
		return 0, 0
	}
	for _, e := range s.events {
		if e.Kind != Stubborn || !e.active(t) {
			continue
		}
		if e.Opinion == 1 {
			ones += stubbornCount(e.Fraction, n)
		} else {
			zeros += stubbornCount(e.Fraction, n)
		}
	}
	return ones, zeros
}

// PerturbCount implements engine.Perturber for the count-level engines:
// the chosen victims' previous opinions are hypergeometric in the current
// count, so the perturbed count has exactly the distribution of rewriting
// uniformly-chosen agents.
func (s *Schedule) PerturbCount(t, n int64, src int, x int64, g *rng.RNG) int64 {
	if s == nil {
		return x
	}
	for _, e := range s.events {
		if e.Round != t || !e.Kind.boundary() {
			continue
		}
		switch e.Kind {
		case Stubborn:
			// Pin over the full non-source population (no other boundary
			// event or stubborn window is active at t — validated).
			k := stubbornCount(e.Fraction, n)
			h := g.Hypergeometric(n-1, clampCount(x-int64(src), n-1), k)
			x += int64(e.Opinion)*k - h
		case Reset, Churn:
			s1, s0 := s.Stubborn(t, n)
			pool := n - 1 - s1 - s0
			poolOnes := clampCount(x-int64(src)-s1, pool)
			k := int64(math.Round(e.Fraction * float64(pool)))
			h := g.Hypergeometric(pool, poolOnes, k)
			if e.Kind == Reset {
				x += int64(e.Opinion)*k - h
			} else {
				x += g.Binomial(k, e.Bias) - h
			}
		}
	}
	return x
}

// clampCount keeps a derived count inside [0, max]; validated schedules
// never trip it, but a defensive engine should not hand rng a negative.
func clampCount(v, max int64) int64 {
	if v < 0 {
		return 0
	}
	if v > max {
		return max
	}
	return v
}

// PerturbAgents implements engine.Perturber for the agent-level engines.
// Stubborn events pin the lowest non-source indices — agents are
// anonymous, so a fixed pinned set is distributionally equivalent to a
// uniform one — and Reset/Churn choose their victims uniformly among the
// unpinned agents by Floyd's subset sampling.
func (s *Schedule) PerturbAgents(t int64, ops []uint8, g *rng.RNG) {
	if s == nil {
		return
	}
	n := int64(len(ops))
	for _, e := range s.events {
		if e.Round != t || !e.Kind.boundary() {
			continue
		}
		switch e.Kind {
		case Stubborn:
			k := stubbornCount(e.Fraction, n)
			for i := int64(1); i <= k; i++ {
				ops[i] = uint8(e.Opinion)
			}
		case Reset, Churn:
			s1, s0 := s.Stubborn(t, n)
			lo := 1 + s1 + s0 // first perturbable index
			pool := n - lo
			k := int64(math.Round(e.Fraction * float64(pool)))
			forEachVictim(pool, k, g, func(idx int64) {
				if e.Kind == Reset {
					ops[lo+idx] = uint8(e.Opinion)
				} else if g.Bernoulli(e.Bias) {
					ops[lo+idx] = 1
				} else {
					ops[lo+idx] = 0
				}
			})
		}
	}
}

// forEachVictim visits k distinct uniform indices in [0, pool) via Floyd's
// subset-sampling algorithm: O(k) draws and O(k) memory, independent of
// pool, so boundary events stay cheap even for 10⁸-agent populations.
func forEachVictim(pool, k int64, g *rng.RNG, visit func(int64)) {
	if k >= pool {
		for i := int64(0); i < pool; i++ {
			visit(i)
		}
		return
	}
	chosen := make(map[int64]struct{}, k)
	for j := pool - k; j < pool; j++ {
		v := int64(g.Intn(int(j + 1)))
		if _, dup := chosen[v]; dup {
			v = j
		}
		chosen[v] = struct{}{}
		visit(v)
	}
}

// Recovery reports the number of rounds the run needed after the last
// scheduled disturbance to reach the correct consensus: Result.Rounds
// minus the schedule horizon (0 if consensus coincided with the horizon).
// ok is false when the run never converged — the dynamics did not
// stabilize within its budget.
func (s *Schedule) Recovery(r engine.Result) (rounds int64, ok bool) {
	if !r.Converged {
		return 0, false
	}
	rounds = r.Rounds - s.Horizon()
	if rounds < 0 {
		rounds = 0
	}
	return rounds, true
}
