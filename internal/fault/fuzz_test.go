package fault

import (
	"testing"

	"bitspread/internal/rng"
)

// FuzzSchedule drives the schedule validator and, for every event list it
// accepts, checks that the engine-facing hooks uphold their contracts on a
// small instance: queries stay in range, the perturbed count never leaves
// the valid band, and the agent-level hook never touches the source slot.
// A finding here would mean a validated schedule can crash or corrupt an
// engine — exactly the class of bug the robustness layer must not have.
func FuzzSchedule(f *testing.F) {
	f.Add(uint8(1), int64(3), int64(0), 0.5, 1, 0.5, 0.25, uint8(4), int64(2), int64(5), 1.0, 0, 0.9, 0.1)
	f.Add(uint8(3), int64(1), int64(4), 0.25, 0, 0.0, 0.0, uint8(5), int64(2), int64(2), 0.0, 1, 0.0, 0.0)
	f.Add(uint8(2), int64(7), int64(0), 1.0, 1, 1.0, 1.0, uint8(1), int64(7), int64(0), 1.0, 1, 1.0, 1.0)
	f.Fuzz(func(t *testing.T,
		kindA uint8, roundA, durA int64, fracA float64, opA int, biasA, probA float64,
		kindB uint8, roundB, durB int64, fracB float64, opB int, biasB, probB float64,
	) {
		events := []Event{
			{Kind: Kind(kindA), Round: roundA, Duration: durA, Fraction: fracA, Opinion: opA, Bias: biasA, Prob: probA},
			{Kind: Kind(kindB), Round: roundB, Duration: durB, Fraction: fracB, Opinion: opB, Bias: biasB, Prob: probB},
		}
		s, err := New(events...)
		if err != nil {
			return // invalid inputs must be rejected, not applied
		}
		if s.Empty() {
			t.Fatal("validated two-event schedule is empty")
		}
		if s.Horizon() < 1 {
			t.Fatalf("horizon %d < 1 for %v", s.Horizon(), s)
		}

		const n = 33
		g := rng.New(uint64(roundA)*31 + uint64(roundB))
		ops := make([]uint8, n)
		for src := 0; src <= 1; src++ {
			ops[0] = uint8(src)
			lo, hi := int64(src), int64(n-1+src)
			x := lo + (hi-lo)/2
			maxT := s.Horizon() + 1
			if maxT > 64 {
				maxT = 64
			}
			for tr := int64(1); tr <= maxT; tr++ {
				if q := s.OmitProb(tr); q < 0 || q > 1 {
					t.Fatalf("omit prob %v", q)
				}
				if op := s.SourceOpinion(tr, src); op != 0 && op != 1 {
					t.Fatalf("source opinion %d", op)
				}
				ones, zeros := s.Stubborn(tr, n)
				if ones < 0 || zeros < 0 || ones+zeros > n-1 {
					t.Fatalf("stubborn counts %d,%d", ones, zeros)
				}
				x = s.PerturbCount(tr, n, src, x, g)
				if x < lo || x > hi {
					t.Fatalf("count %d escaped [%d,%d] at round %d of %v", x, lo, hi, tr, s)
				}
				s.PerturbAgents(tr, ops, g)
				if ops[0] != uint8(src) {
					t.Fatalf("agent hook rewrote the source at round %d of %v", tr, s)
				}
			}
		}
	})
}
