package fault

import (
	"strings"
	"testing"

	"bitspread/internal/engine"
	"bitspread/internal/rng"
)

func TestValidateRejects(t *testing.T) {
	bad := []struct {
		name   string
		events []Event
	}{
		{"unknown kind", []Event{{Kind: Kind(99), Round: 1}}},
		{"round zero", []Event{ResetAt(0, 0.5, 1)}},
		{"negative round", []Event{ChurnAt(-3, 0.5, 0.5)}},
		{"point with duration", []Event{{Kind: Reset, Round: 2, Duration: 4, Fraction: 0.5}}},
		{"window without duration", []Event{{Kind: Omission, Round: 2, Prob: 0.5}}},
		{"fraction above one", []Event{ResetAt(1, 1.5, 1)}},
		{"negative bias", []Event{ChurnAt(1, 0.5, -0.1)}},
		{"prob NaN", []Event{{Kind: Omission, Round: 1, Duration: 1, Prob: nan()}}},
		{"bad opinion", []Event{{Kind: Reset, Round: 1, Fraction: 0.5, Opinion: 2}}},
		{"same-round boundary pair", []Event{ResetAt(4, 0.5, 1), ChurnAt(4, 0.2, 0.5)}},
		{"overlapping stubborn", []Event{StubbornFor(2, 10, 0.1, 1), StubbornFor(5, 3, 0.1, 0)}},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			if err := Validate(tt.events); err == nil {
				t.Errorf("accepted %v", tt.events)
			}
			if _, err := New(tt.events...); err == nil {
				t.Errorf("New accepted %v", tt.events)
			}
		})
	}
}

func nan() float64 { var z float64; return z / z }

func TestValidateAccepts(t *testing.T) {
	good := [][]Event{
		nil,
		{ResetAt(1, 1, 0)},
		{ResetAt(3, 0.5, 1), ChurnAt(5, 0.25, 0.5), OmissionFor(3, 10, 0.9)},
		{StubbornFor(2, 4, 0.1, 0), ResetAt(3, 1, 1)},          // reset inside stubborn window
		{SourceCrashFor(1, 8), SourceCrashFor(4, 8)},           // crash windows may overlap
		{StubbornFor(2, 3, 0.1, 1), StubbornFor(5, 3, 0.1, 0)}, // back-to-back windows
	}
	for _, events := range good {
		if err := Validate(events); err != nil {
			t.Errorf("rejected %v: %v", events, err)
		}
	}
}

func TestMustPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Must accepted an invalid schedule")
		}
	}()
	Must(ResetAt(0, 1, 1))
}

func TestActiveAt(t *testing.T) {
	var nilSched *Schedule
	if nilSched.ActiveAt(1) {
		t.Error("nil schedule reported active")
	}
	s := Must(ResetAt(5, 1, 0), OmissionFor(8, 3, 0.5))
	cases := []struct {
		round int64
		want  bool
	}{
		{1, false},  // before everything
		{4, false},  // just before the reset
		{5, true},   // the point reset fires here
		{6, false},  // point events cover exactly one round
		{8, true},   // omission window start
		{10, true},  // last covered round (8 + 3 - 1)
		{11, false}, // window over
	}
	for _, c := range cases {
		if got := s.ActiveAt(c.round); got != c.want {
			t.Errorf("ActiveAt(%d) = %v, want %v", c.round, got, c.want)
		}
	}
}

func TestEmptyAndHorizon(t *testing.T) {
	var nilSched *Schedule
	if !nilSched.Empty() || nilSched.Horizon() != 0 {
		t.Error("nil schedule not empty/zero-horizon")
	}
	if s := Must(); !s.Empty() {
		t.Error("zero-event schedule not empty")
	}
	s := Must(ResetAt(5, 1, 0), OmissionFor(3, 10, 0.5), SourceCrashFor(2, 4))
	if s.Empty() {
		t.Error("non-empty schedule reported empty")
	}
	// omission covers rounds 3..12 — the latest effect.
	if got := s.Horizon(); got != 12 {
		t.Errorf("horizon = %d, want 12", got)
	}
}

func TestWindowQueries(t *testing.T) {
	s := Must(
		SourceCrashFor(4, 3),      // rounds 4,5,6
		OmissionFor(2, 2, 0.25),   // rounds 2,3
		OmissionFor(3, 2, 0.75),   // rounds 3,4 — stronger burst wins on 3
		StubbornFor(5, 2, 0.5, 1), // rounds 5,6
	)
	if s.SourceOpinion(3, 1) != 1 || s.SourceOpinion(4, 1) != 0 || s.SourceOpinion(6, 1) != 0 || s.SourceOpinion(7, 1) != 1 {
		t.Error("source crash window wrong")
	}
	if s.SourceOpinion(5, 0) != 1 {
		t.Error("crashed source must hold 1-z")
	}
	if q := s.OmitProb(1); q != 0 {
		t.Errorf("omit(1) = %v", q)
	}
	if q := s.OmitProb(2); q != 0.25 {
		t.Errorf("omit(2) = %v", q)
	}
	if q := s.OmitProb(3); q != 0.75 {
		t.Errorf("omit(3) = %v, want the stronger burst", q)
	}
	if q := s.OmitProb(5); q != 0 {
		t.Errorf("omit(5) = %v", q)
	}
	ones, zeros := s.Stubborn(5, 101)
	if ones != 50 || zeros != 0 {
		t.Errorf("stubborn(5) = %d,%d want 50,0", ones, zeros)
	}
	if ones, _ := s.Stubborn(7, 101); ones != 0 {
		t.Error("stubborn outside window")
	}
	if !s.BoundaryAt(5) || s.BoundaryAt(4) {
		t.Error("BoundaryAt wrong (stubborn activation is a boundary; omission/source are not)")
	}
}

func TestPerturbCountDeterministicCases(t *testing.T) {
	g := rng.New(1)
	const n = 101
	// Full reset to 0: every non-source agent drops to 0.
	s := Must(ResetAt(3, 1, 0))
	if x := s.PerturbCount(3, n, 1, 60, g); x != 1 {
		t.Errorf("full reset to 0: x = %d, want 1 (source only)", x)
	}
	// Full reset to 1 with source holding 0.
	s = Must(ResetAt(3, 1, 1))
	if x := s.PerturbCount(3, n, 0, 60, g); x != n-1 {
		t.Errorf("full reset to 1: x = %d, want %d", x, n-1)
	}
	// Churn with bias 1: the whole pool rejoins at 1.
	s = Must(ChurnAt(2, 1, 1))
	if x := s.PerturbCount(2, n, 1, 8, g); x != n {
		t.Errorf("churn bias 1: x = %d, want %d", x, n)
	}
	// Wrong round: untouched, no randomness consumed.
	s = Must(ResetAt(3, 1, 0))
	before := rng.New(7)
	after := rng.New(7)
	if x := s.PerturbCount(2, n, 1, 60, after); x != 60 {
		t.Errorf("off-round perturb moved the count to %d", x)
	}
	if before.Uint64() != after.Uint64() {
		t.Error("off-round perturb consumed randomness")
	}
}

func TestPerturbCountInvariant(t *testing.T) {
	g := rng.New(42)
	const n = 64
	schedules := []*Schedule{
		Must(ResetAt(1, 0.5, 1)),
		Must(ChurnAt(1, 0.3, 0.7)),
		Must(StubbornFor(1, 5, 0.25, 0)),
		Must(StubbornFor(1, 5, 0.25, 1), ResetAt(3, 1, 0)),
	}
	for _, s := range schedules {
		for src := 0; src <= 1; src++ {
			lo, hi := int64(src), int64(n-1+src)
			for trial := 0; trial < 200; trial++ {
				x := lo + int64(g.Intn(int(hi-lo+1)))
				for tr := int64(1); tr <= 5; tr++ {
					x = s.PerturbCount(tr, n, src, x, g)
					if x < lo || x > hi {
						t.Fatalf("%v: count %d escaped [%d,%d]", s, x, lo, hi)
					}
				}
			}
		}
	}
}

func TestPerturbAgentsMatchesCountSemantics(t *testing.T) {
	const n = 200
	g := rng.New(9)
	// Full reset to 0 zeroes every non-source agent, leaves the source.
	s := Must(ResetAt(1, 1, 0))
	ops := make([]uint8, n)
	for i := range ops {
		ops[i] = 1
	}
	s.PerturbAgents(1, ops, g)
	if ops[0] != 1 {
		t.Error("reset touched the source slot")
	}
	for i := 1; i < n; i++ {
		if ops[i] != 0 {
			t.Fatalf("agent %d survived a full reset", i)
		}
	}
	// Stubborn pins the lowest prefix; a same-window reset leaves it alone.
	s = Must(StubbornFor(1, 4, 0.25, 1), ResetAt(2, 1, 0))
	ops = make([]uint8, n)
	s.PerturbAgents(1, ops, g)
	pinned := int(stubbornCount(0.25, n))
	for i := 1; i <= pinned; i++ {
		if ops[i] != 1 {
			t.Fatalf("agent %d not pinned", i)
		}
	}
	for i := 1; i < n; i++ {
		if i > pinned && ops[i] != 0 {
			t.Fatalf("agent %d flipped without an event", i)
		}
	}
	s.PerturbAgents(2, ops, g)
	for i := 1; i <= pinned; i++ {
		if ops[i] != 1 {
			t.Fatalf("reset inside stubborn window overwrote pinned agent %d", i)
		}
	}
}

func TestPerturbAgentsFractionCounts(t *testing.T) {
	const n = 1000
	g := rng.New(11)
	s := Must(ResetAt(1, 0.5, 1))
	ops := make([]uint8, n)
	s.PerturbAgents(1, ops, g)
	var ones int
	for _, v := range ops[1:] {
		ones += int(v)
	}
	want := (n - 1) / 2
	if ones != want && ones != want+1 {
		t.Errorf("reset half to 1: %d ones, want ~%d", ones, want)
	}
}

func TestForEachVictimDistinct(t *testing.T) {
	g := rng.New(3)
	for _, k := range []int64{0, 1, 7, 50, 99, 100} {
		seen := map[int64]bool{}
		forEachVictim(100, k, g, func(i int64) {
			if i < 0 || i >= 100 {
				t.Fatalf("victim %d out of range", i)
			}
			if seen[i] {
				t.Fatalf("victim %d visited twice (k=%d)", i, k)
			}
			seen[i] = true
		})
		want := k
		if want > 100 {
			want = 100
		}
		if int64(len(seen)) != want {
			t.Errorf("k=%d visited %d victims", k, len(seen))
		}
	}
}

func TestRecovery(t *testing.T) {
	s := Must(ResetAt(10, 1, 0))
	if _, ok := s.Recovery(engine.Result{Converged: false, Rounds: 50}); ok {
		t.Error("recovery reported for a non-converged run")
	}
	rounds, ok := s.Recovery(engine.Result{Converged: true, Rounds: 37})
	if !ok || rounds != 27 {
		t.Errorf("recovery = %d,%v want 27,true", rounds, ok)
	}
	rounds, ok = s.Recovery(engine.Result{Converged: true, Rounds: 10})
	if !ok || rounds != 0 {
		t.Errorf("recovery at horizon = %d,%v want 0,true", rounds, ok)
	}
}

func TestStringForms(t *testing.T) {
	var nilSched *Schedule
	if nilSched.String() != "no-faults" {
		t.Errorf("nil schedule string %q", nilSched.String())
	}
	s := Must(ResetAt(5, 1, 0), OmissionFor(2, 3, 0.5))
	str := s.String()
	for _, want := range []string{"reset@5", "omission@2+3", "q=0.5"} {
		if !strings.Contains(str, want) {
			t.Errorf("schedule string %q missing %q", str, want)
		}
	}
	for k := Reset; k <= SourceCrash; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "Kind(") {
		t.Error("unknown kind string")
	}
}

func TestEventsCopies(t *testing.T) {
	s := Must(ResetAt(5, 1, 0))
	evs := s.Events()
	evs[0].Round = 99
	if s.events[0].Round != 5 {
		t.Error("Events leaked internal state")
	}
	if (*Schedule)(nil).Events() != nil {
		t.Error("nil schedule events")
	}
}
