package memory

import (
	"fmt"
	"math"

	"bitspread/internal/rng"
)

// Config describes a bounded-memory bit-dissemination run. It mirrors the
// memory-less engine.Config, with the extra choice of how agent memory is
// initialized.
type Config struct {
	// N is the population size including the source.
	N int64
	// Protocol is the bounded-memory rule run by every non-source agent.
	Protocol Protocol
	// Z is the correct opinion, held by the source at all times.
	Z int
	// X0 is the initial number of agents (source included) with opinion 1.
	X0 int64
	// AdversarialMemory initializes agent states arbitrarily (the
	// self-stabilizing regime); otherwise the protocol's designated start
	// state is used.
	AdversarialMemory bool
	// MaxRounds caps the run (0: 64·n·ln n + 1024, as in the memory-less
	// engine).
	MaxRounds int64
	// Record, if non-nil, receives (round, count) after every round.
	Record func(round, count int64)
}

// Result reports a bounded-memory run. Unlike the memory-less engines,
// reaching the correct consensus does not by itself certify stability
// (memory can carry pending flips), so the engine requires the consensus
// to hold for a full StateBits-independent confirmation window before
// declaring convergence.
type Result struct {
	// Converged is true when the correct consensus held for the whole
	// confirmation window.
	Converged bool
	// Rounds is the first round of the confirmed consensus stretch, or
	// the executed rounds when not converged.
	Rounds int64
	// FinalCount is the one-count when the run stopped.
	FinalCount int64
}

// confirmationWindow returns how many consecutive consensus rounds the
// engine demands before declaring convergence, as reported by the
// protocol (never less than 2).
func confirmationWindow(p Protocol) int64 {
	w := int64(p.StabilityWindow())
	if w < 2 {
		w = 2
	}
	return w
}

// Run simulates the bounded-memory process agent by agent. Cost is
// O(n·ℓ) per round.
func Run(cfg Config, g *rng.RNG) (Result, error) {
	if cfg.N < 2 {
		return Result{}, fmt.Errorf("memory: population %d too small", cfg.N)
	}
	if cfg.Protocol == nil {
		return Result{}, ErrNoProtocol
	}
	if cfg.Z != 0 && cfg.Z != 1 {
		return Result{}, fmt.Errorf("memory: correct opinion %d", cfg.Z)
	}
	lo, hi := int64(cfg.Z), cfg.N-1+int64(cfg.Z)
	if cfg.X0 < lo || cfg.X0 > hi {
		return Result{}, fmt.Errorf("memory: X0=%d outside [%d,%d]", cfg.X0, lo, hi)
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = defaultRounds(cfg.N)
	}

	n := int(cfg.N)
	ell := cfg.Protocol.SampleSize()
	target := int64(cfg.Z) * cfg.N
	confirm := confirmationWindow(cfg.Protocol)

	opinions := make([]uint8, n)
	nextOps := make([]uint8, n)
	states := make([]State, n)
	opinions[0] = uint8(cfg.Z)
	perm := g.Perm(n - 1)
	for i := 0; i < int(cfg.X0)-cfg.Z; i++ {
		opinions[perm[i]+1] = 1
	}
	for i := 1; i < n; i++ {
		states[i] = cfg.Protocol.InitState(cfg.AdversarialMemory, g)
	}

	res := Result{FinalCount: cfg.X0}
	var stableSince int64 = -1
	for t := int64(1); t <= maxRounds; t++ {
		nextOps[0] = uint8(cfg.Z)
		count := int64(nextOps[0])
		for i := 1; i < n; i++ {
			k := 0
			for s := 0; s < ell; s++ {
				k += int(opinions[g.Intn(n)])
			}
			st, op := cfg.Protocol.Step(states[i], opinions[i], k, g)
			states[i] = st
			nextOps[i] = op
			count += int64(op)
		}
		opinions, nextOps = nextOps, opinions
		res.Rounds = t
		res.FinalCount = count
		if cfg.Record != nil {
			cfg.Record(t, count)
		}
		if count == target {
			if stableSince < 0 {
				stableSince = t
			}
			if t-stableSince+1 >= confirm {
				res.Converged = true
				res.Rounds = stableSince
				return res, nil
			}
		} else {
			stableSince = -1
		}
	}
	return res, nil
}

// defaultRounds mirrors engine.DefaultMaxRounds (64·n·ln n + 1024),
// duplicated to keep this package free of an engine dependency.
func defaultRounds(n int64) int64 {
	if n < 2 {
		return 1024
	}
	return int64(64*float64(n)*math.Log(float64(n))) + 1024
}
