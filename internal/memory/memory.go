// Package memory extends the model with bounded per-agent state, probing
// the paper's closing question (§5): does the Ω(n^{1-ε}) lower bound
// survive a constant (or logarithmic) amount of memory?
//
// The package provides a finite-state agent framework — a protocol is a
// state machine driven by the per-round sample count — and two built-ins:
//
//   - Adapter, which embeds any memory-less Rule (used to validate the
//     framework against the exact count engine);
//   - AccumulatorMinority, which shows that memory converts time into
//     samples: with constant ℓ and O(log n) bits, an agent accumulates its
//     counts over a window of w rounds while keeping its opinion frozen,
//     then applies the Minority rule to the pooled w·ℓ samples. With
//     synchronized windows and w = ⌈√(n ln n)/ℓ⌉ the execution is, window
//     by window, exactly the big-sample Minority of [15] on a static
//     configuration, so it converges in O(w·log² n) = Õ(√n) ≪ n^{1-ε}
//     rounds — the memory-less assumption of Theorem 1 is load-bearing.
//     The unsynchronized variant (arbitrary phase initialization, as
//     self-stabilization demands) is provided for empirical study; it
//     settles into a self-sustained macroscopic oscillation that visits
//     near-consensus without ever locking it exactly, because the
//     simultaneous population-wide flip that absorbs the synchronized
//     Minority is unavailable — an empirical echo of "the power of
//     synchronicity" ([15]'s title). See experiment X4.
package memory

import (
	"errors"
	"fmt"

	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

// State is an agent's packed memory. Protocols define their own layout;
// the framework only stores and passes it back.
type State uint64

// Protocol is a bounded-memory update rule. Implementations must be
// deterministic given (state, opinion, k) and the generator stream, and
// safe for concurrent use (they carry no run state of their own).
type Protocol interface {
	// Name returns a display name.
	Name() string
	// SampleSize returns ℓ, the number of opinions sampled per round.
	SampleSize() int
	// InitState returns an agent's initial memory. Self-stabilizing
	// studies pass adversarial=true to draw an arbitrary state; otherwise
	// the protocol's designated start state is returned.
	InitState(adversarial bool, g *rng.RNG) State
	// Step consumes the round's observation (k ones among ℓ samples) and
	// returns the successor state and opinion.
	Step(st State, opinion uint8, k int, g *rng.RNG) (State, uint8)
	// StateBits returns the number of memory bits the protocol uses,
	// for reporting (the paper's lower bound is the 0-bit row).
	StateBits() int
	// StabilityWindow returns how many consecutive consensus rounds prove
	// stability for this protocol: with memory, touching n·z does not by
	// itself certify convergence (pending state can still flip agents),
	// so the engine requires the consensus to hold this long. Memory-less
	// behaviour corresponds to a small constant.
	StabilityWindow() int
}

// Adapter lifts a memory-less Rule into the framework (0 bits of state).
type Adapter struct {
	rule *protocol.Rule
}

// NewAdapter wraps a memory-less rule.
func NewAdapter(r *protocol.Rule) *Adapter { return &Adapter{rule: r} }

// Name implements Protocol.
func (a *Adapter) Name() string { return a.rule.Name() + "[0-bit]" }

// SampleSize implements Protocol.
func (a *Adapter) SampleSize() int { return a.rule.SampleSize() }

// InitState implements Protocol; memory-less agents have no state.
func (a *Adapter) InitState(bool, *rng.RNG) State { return 0 }

// StateBits implements Protocol.
func (a *Adapter) StateBits() int { return 0 }

// StabilityWindow implements Protocol: a memory-less rule satisfying
// Proposition 3 is absorbed the moment it reaches the consensus.
func (a *Adapter) StabilityWindow() int { return 2 }

// Step implements Protocol by delegating to the wrapped rule.
func (a *Adapter) Step(st State, opinion uint8, k int, g *rng.RNG) (State, uint8) {
	if g.Bernoulli(a.rule.G(int(opinion), k)) {
		return 0, 1
	}
	return 0, 0
}

// AccumulatorMinority pools w rounds of samples and applies Minority to
// the pooled count at each window boundary. State layout: low 32 bits
// hold the accumulated ones-count, high 32 bits the phase in [0, w).
type AccumulatorMinority struct {
	ell    int
	window int
	synced bool
}

// NewAccumulatorMinority returns the accumulator with the given per-round
// sample size and window length. If synced is true every agent starts at
// phase 0 (a shared clock, the regime with the [15] reduction); otherwise
// InitState draws a uniform phase, the self-stabilizing regime.
func NewAccumulatorMinority(ell, window int, synced bool) (*AccumulatorMinority, error) {
	if ell < 1 {
		return nil, fmt.Errorf("memory: sample size %d < 1", ell)
	}
	if window < 1 || window > 1<<20 {
		return nil, fmt.Errorf("memory: window %d outside [1, 2^20]", window)
	}
	return &AccumulatorMinority{ell: ell, window: window, synced: synced}, nil
}

// Name implements Protocol.
func (p *AccumulatorMinority) Name() string {
	mode := "unsync"
	if p.synced {
		mode = "sync"
	}
	return fmt.Sprintf("AccumMinority(ℓ=%d,w=%d,%s)", p.ell, p.window, mode)
}

// SampleSize implements Protocol.
func (p *AccumulatorMinority) SampleSize() int { return p.ell }

// StateBits reports the memory footprint: phase (log₂ w) + counter
// (log₂(w·ℓ+1)) bits.
func (p *AccumulatorMinority) StateBits() int {
	return bitsFor(p.window) + bitsFor(p.window*p.ell+1)
}

// StabilityWindow implements Protocol: any in-flight window must flush
// (up to w rounds for adversarial phases) and then hold one more full
// window with every pooled count unanimous.
func (p *AccumulatorMinority) StabilityWindow() int { return 2*p.window + 2 }

func bitsFor(v int) int {
	b := 0
	for 1<<b < v {
		b++
	}
	return b
}

// InitState implements Protocol.
func (p *AccumulatorMinority) InitState(adversarial bool, g *rng.RNG) State {
	if p.synced && !adversarial {
		return 0
	}
	phase := g.Intn(p.window)
	count := g.Intn(phase*p.ell + 1)
	return pack(phase, count)
}

func pack(phase, count int) State        { return State(uint64(phase)<<32 | uint64(count)) }
func unpack(st State) (phase, count int) { return int(st >> 32), int(st & 0xffffffff) }

// Step implements Protocol: accumulate; at the window boundary decide by
// the Minority rule over the pooled samples and reset.
func (p *AccumulatorMinority) Step(st State, opinion uint8, k int, g *rng.RNG) (State, uint8) {
	phase, count := unpack(st)
	count += k
	phase++
	if phase < p.window {
		return pack(phase, count), opinion
	}
	total := p.window * p.ell
	next := opinion
	switch {
	case count == 0:
		next = 0 // unanimous zeros
	case count == total:
		next = 1 // unanimous ones
	case 2*count < total:
		next = 1 // ones are the minority: adopt
	case 2*count > total:
		next = 0
	default: // exact tie
		if g.Bernoulli(0.5) {
			next = 1
		} else {
			next = 0
		}
	}
	return pack(0, 0), next
}

// ErrNoProtocol is returned when a run is configured without a protocol.
var ErrNoProtocol = errors.New("memory: protocol must not be nil")
