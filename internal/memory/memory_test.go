package memory

import (
	"math"
	"testing"

	"bitspread/internal/engine"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

func TestAdapterMatchesMemorylessEngine(t *testing.T) {
	// The 0-bit adapter run through the memory engine must reproduce the
	// count engine's one-round distribution.
	const (
		n    = 128
		x0   = 40
		z    = 1
		reps = 3000
	)
	rule := protocol.Minority(3)
	p := float64(x0) / n
	wantMean := float64(z) + float64(x0-z)*rule.AdoptProb(1, p) +
		float64(n-x0-(1-z))*rule.AdoptProb(0, p)

	master := rng.New(11)
	sum := 0.0
	for i := 0; i < reps; i++ {
		res, err := Run(Config{
			N:         n,
			Protocol:  NewAdapter(rule),
			Z:         z,
			X0:        x0,
			MaxRounds: 1,
		}, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(res.FinalCount)
	}
	mean := sum / reps
	// Generous 5-sigma band with variance at most n/4 per agent flip.
	se := math.Sqrt(float64(n) / 4 / reps)
	if math.Abs(mean-wantMean) > 5*se*3 {
		t.Errorf("adapter one-round mean = %v, want %v", mean, wantMean)
	}
}

func TestAdapterVoterConverges(t *testing.T) {
	res, err := Run(Config{
		N:        64,
		Protocol: NewAdapter(protocol.Voter(1)),
		Z:        1,
		X0:       1,
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.FinalCount != 64 {
		t.Fatalf("adapter voter: %+v", res)
	}
}

func TestAccumulatorValidation(t *testing.T) {
	if _, err := NewAccumulatorMinority(0, 4, true); err == nil {
		t.Error("ℓ=0 accepted")
	}
	if _, err := NewAccumulatorMinority(3, 0, true); err == nil {
		t.Error("window=0 accepted")
	}
	if _, err := NewAccumulatorMinority(3, 1<<21, true); err == nil {
		t.Error("huge window accepted")
	}
}

func TestAccumulatorStatePacking(t *testing.T) {
	p, err := NewAccumulatorMinority(3, 10, true)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(1)
	st := p.InitState(false, g)
	if st != 0 {
		t.Errorf("synced start state = %v, want 0", st)
	}
	// Mid-window: opinion frozen, count accumulates.
	st, op := p.Step(st, 1, 2, g)
	if op != 1 {
		t.Error("opinion changed mid-window")
	}
	phase, count := unpack(st)
	if phase != 1 || count != 2 {
		t.Errorf("state after one step = (%d, %d), want (1, 2)", phase, count)
	}
	// Adversarial init stays within bounds.
	for i := 0; i < 200; i++ {
		phase, count := unpack(p.InitState(true, g))
		if phase < 0 || phase >= 10 || count < 0 || count > phase*3 {
			t.Fatalf("adversarial init out of bounds: (%d, %d)", phase, count)
		}
	}
}

func TestAccumulatorWindowDecision(t *testing.T) {
	// Window 2, ℓ=2 → pools 4 samples; walk through one full window.
	p, err := NewAccumulatorMinority(2, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(2)
	tests := []struct {
		name   string
		k1, k2 int
		want   uint8
	}{
		{"unanimous ones", 2, 2, 1},
		{"unanimous zeros", 0, 0, 0},
		{"ones minority", 1, 0, 1},
		{"zeros minority", 2, 1, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			st := p.InitState(false, g)
			st, op := p.Step(st, 0, tt.k1, g)
			if phase, _ := unpack(st); phase != 1 {
				t.Fatalf("phase = %d after first step", phase)
			}
			st, op = p.Step(st, op, tt.k2, g)
			if op != tt.want {
				t.Errorf("decision = %d, want %d", op, tt.want)
			}
			if phase, count := unpack(st); phase != 0 || count != 0 {
				t.Errorf("state not reset: (%d, %d)", phase, count)
			}
		})
	}
}

func TestAccumulatorTieIsRandom(t *testing.T) {
	p, err := NewAccumulatorMinority(2, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(4)
	ones := 0
	for i := 0; i < 2000; i++ {
		_, op := p.Step(0, 0, 1, g) // 1 of 2: exact tie
		ones += int(op)
	}
	if ones < 850 || ones > 1150 {
		t.Errorf("tie broke to 1 %d/2000 times, want ~1000", ones)
	}
}

func TestAccumulatorStateBits(t *testing.T) {
	p, err := NewAccumulatorMinority(3, 64, true)
	if err != nil {
		t.Fatal(err)
	}
	// phase: 6 bits; counter up to 192: 8 bits.
	if got := p.StateBits(); got != 14 {
		t.Errorf("StateBits = %d, want 14", got)
	}
}

// TestAccumulatorBeatsLowerBound is the §5 headline: with constant ℓ and
// O(log n) bits of synchronized memory, the accumulator converges from
// the all-wrong configuration in far fewer than n^{1-ε} rounds — where
// the memory-less Minority(3) does not converge at all.
func TestAccumulatorBeatsLowerBound(t *testing.T) {
	const (
		n   = 2048
		ell = 3
		z   = 1
	)
	window := int(math.Ceil(math.Sqrt(n*math.Log(n)) / ell))
	proto, err := NewAccumulatorMinority(ell, window, true)
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(math.Pow(n, 0.9))

	res, err := Run(Config{
		N:         n,
		Protocol:  proto,
		Z:         z,
		X0:        1, // all wrong
		MaxRounds: budget,
	}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("accumulator did not converge within n^0.9 = %d rounds: %+v", budget, res)
	}

	// Control: the memory-less Minority(3) from its adversarial start
	// cannot do this (Theorem 1).
	cfg, _ := engine.AdversarialConfig(protocol.Minority(ell), n, budget)
	ctrl, err := engine.RunParallel(cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if ctrl.Converged {
		t.Error("memory-less control converged within the budget — unexpected")
	}
	t.Logf("accumulator (ℓ=%d, w=%d, %d bits): %d rounds; budget %d", ell, window, proto.StateBits(), res.Rounds, budget)
}

func TestRunValidation(t *testing.T) {
	p, _ := NewAccumulatorMinority(2, 2, true)
	cases := []Config{
		{N: 1, Protocol: p, Z: 1, X0: 1},
		{N: 10, Protocol: nil, Z: 1, X0: 5},
		{N: 10, Protocol: p, Z: 2, X0: 5},
		{N: 10, Protocol: p, Z: 1, X0: 0},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg, rng.New(1)); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunRecord(t *testing.T) {
	var rounds int64
	p, _ := NewAccumulatorMinority(1, 2, true)
	_, err := Run(Config{
		N: 16, Protocol: p, Z: 1, X0: 8, MaxRounds: 10,
		Record: func(round, count int64) {
			rounds++
			if count < 1 || count > 16 {
				t.Errorf("count %d out of range", count)
			}
		},
	}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if rounds == 0 {
		t.Error("record hook never fired")
	}
}

func TestUnsyncedAccumulatorStalls(t *testing.T) {
	// A genuinely interesting negative result, echoing the title of [15]
	// ("the power of synchronicity"): with adversarial phases the window
	// boundaries are spread across rounds, and the population settles into
	// a self-sustained macroscopic oscillation (period ≈ 2w — deciders
	// react to the window-averaged fraction, which lags). The trajectory
	// repeatedly visits near-consensus but exact absorption needs every
	// agent to flip in the same round, which never happens without the
	// shared clock: deciders with non-unanimous pooled windows re-inject
	// the minority opinion. Memory alone does not replace synchrony.
	// This test pins the non-convergence (the stall fraction itself
	// depends on the oscillation phase at cutoff, so it is not asserted).
	const n, ell = 1024, 3
	window := int(math.Ceil(math.Sqrt(n*math.Log(n)) / ell))
	proto, err := NewAccumulatorMinority(ell, window, false)
	if err != nil {
		t.Fatal(err)
	}
	converged := 0
	master := rng.New(13)
	const reps = 3
	for i := 0; i < reps; i++ {
		res, err := Run(Config{
			N:                 n,
			Protocol:          proto,
			Z:                 1,
			X0:                1,
			AdversarialMemory: true,
			MaxRounds:         10_000,
		}, master.Split())
		if err != nil {
			t.Fatal(err)
		}
		if res.Converged {
			converged++
		}
	}
	if converged == reps {
		t.Error("unsynced accumulator converged in every run — the synchronicity finding no longer holds; update X4 and the docs")
	}
}
