package bias

import "bitspread/internal/poly"

// Stability classifies a fixed point of the mean-field map p ↦ p + F(p).
type Stability int

const (
	// Attracting: F crosses zero downward (F' < 0); the dynamics pulls
	// nearby fractions toward the point. Interior attracting fixpoints
	// are the "traps" behind experiment X6.
	Attracting Stability = iota + 1
	// Repelling: F crosses zero upward (F' > 0); nearby fractions flee.
	Repelling
	// SemiStable: F touches zero without changing sign (even
	// multiplicity), attracting from one side only.
	SemiStable
)

// String implements fmt.Stringer.
func (s Stability) String() string {
	switch s {
	case Attracting:
		return "attracting"
	case Repelling:
		return "repelling"
	case SemiStable:
		return "semi-stable"
	default:
		return "unknown"
	}
}

// Fixpoint is a root of F with its mean-field stability.
type Fixpoint struct {
	P         float64
	Stability Stability
}

// Fixpoints returns the roots of F in [0, 1] classified by the sign of F
// on the two sides (robust to even multiplicities, unlike a derivative
// test at the root). The boundary roots 0 and 1 are classified by their
// single interior side: e.g. p = 1 is attracting when F > 0 just below
// it. Returns nil when F ≡ 0 (every point is neutrally fixed).
func (a *Analysis) Fixpoints() []Fixpoint {
	if a.IsZero() {
		return nil
	}
	out := make([]Fixpoint, 0, len(a.roots))
	for i, r := range a.roots {
		left, right := 0, 0
		if i > 0 {
			left = a.signs[i-1]
		}
		if i < len(a.signs) {
			right = a.signs[i]
		}
		out = append(out, Fixpoint{P: r, Stability: classify(left, right)})
	}
	return out
}

// classify maps the signs of F on the left and right of a root to a
// stability class. A missing side (boundary root) is encoded as 0 and
// the remaining side decides.
func classify(left, right int) Stability {
	switch {
	case left == 0 && right == 0:
		return SemiStable // isolated numerically-flat root
	case left == 0: // boundary root at 0: only the right side exists
		if right < 0 {
			return Attracting
		}
		return Repelling
	case right == 0: // boundary root at 1: only the left side exists
		if left > 0 {
			return Attracting
		}
		return Repelling
	case left > 0 && right < 0:
		return Attracting
	case left < 0 && right > 0:
		return Repelling
	default:
		return SemiStable
	}
}

// DriftDerivative returns F'(p), useful for local convergence-rate
// estimates around a fixpoint (the mean-field contraction factor per
// round is 1 + F'(p*)).
func (a *Analysis) DriftDerivative(p float64) float64 {
	return poly.Poly(a.f).Derivative().Eval(p)
}
