package bias

import (
	"math"
	"testing"
	"testing/quick"

	"bitspread/internal/poly"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
)

func TestVoterBiasIsZero(t *testing.T) {
	// Section 4.1: F_voter ≡ 0 for every sample size.
	for _, ell := range []int{1, 2, 3, 5, 10} {
		a := For(protocol.Voter(ell))
		if !a.IsZero() {
			t.Errorf("Voter(ℓ=%d) bias = %v, want 0", ell, a.F())
		}
		if got := a.Classify(); got != CaseZero {
			t.Errorf("Voter classified as %v", got)
		}
	}
}

func TestLazyVoterBiasIsZero(t *testing.T) {
	a := For(protocol.LazyVoter(3, 0.4))
	if !a.IsZero() {
		t.Errorf("LazyVoter bias = %v, want 0", a.F())
	}
}

func TestMinority3Polynomial(t *testing.T) {
	// Hand computation: F(p) = -p + 3p(1-p)² + p³ = 2p - 6p² + 4p³
	//                        = 2p(1-p)(1-2p).
	a := For(protocol.Minority(3))
	want := poly.New(0, 2, -6, 4)
	f := a.F()
	if f.Degree() != 3 {
		t.Fatalf("degree = %d, want 3 (F = %v)", f.Degree(), f)
	}
	for i := 0; i <= 3; i++ {
		if math.Abs(f[i]-want[i]) > 1e-9 {
			t.Errorf("coefficient %d = %v, want %v", i, f[i], want[i])
		}
	}

	roots := a.Roots()
	wantRoots := []float64{0, 0.5, 1}
	if len(roots) != 3 {
		t.Fatalf("roots = %v, want %v", roots, wantRoots)
	}
	for i := range roots {
		if math.Abs(roots[i]-wantRoots[i]) > 1e-9 {
			t.Errorf("root %d = %v, want %v", i, roots[i], wantRoots[i])
		}
	}
	if signs := a.Signs(); len(signs) != 2 || signs[0] != 1 || signs[1] != -1 {
		t.Errorf("signs = %v, want [+1 -1]", signs)
	}
	// Minority pushes against the majority: Case 1 near p = 1.
	if got := a.Classify(); got != CaseNegative {
		t.Errorf("Minority(3) classified as %v, want CaseNegative", got)
	}
}

func TestMajority3IsCasePositive(t *testing.T) {
	// F_majority(p) = -p(1-p)(1-2p): positive on (1/2, 1).
	a := For(protocol.Majority(3))
	if got := a.Classify(); got != CasePositive {
		t.Errorf("Majority(3) classified as %v, want CasePositive", got)
	}
	lo, hi, sign, ok := a.IntervalNearOne()
	if !ok || sign != 1 {
		t.Fatalf("IntervalNearOne = (%v,%v,%d,%v)", lo, hi, sign, ok)
	}
	if math.Abs(lo-0.5) > 1e-9 || math.Abs(hi-1) > 1e-9 {
		t.Errorf("interval = (%v, %v), want (0.5, 1)", lo, hi)
	}
}

func TestMinorityEvenTieRoot(t *testing.T) {
	// The ½ tie-break of Eq. 2 forces F(1/2) = 0 for even ℓ.
	for _, ell := range []int{2, 4, 6, 8} {
		a := For(protocol.Minority(ell))
		if a.IsZero() {
			if ell != 2 {
				t.Errorf("Minority(ℓ=%d) bias unexpectedly zero", ell)
			}
			continue // Minority(2) = Voter(2): F ≡ 0
		}
		if got := a.Drift(0.5); math.Abs(got) > 1e-9 {
			t.Errorf("Minority(ℓ=%d) F(1/2) = %v, want 0", ell, got)
		}
	}
}

func TestBiasedVoterClosedForm(t *testing.T) {
	// For δ ≤ 1/ℓ (no clamping): F(p) = δ(1 - p^ℓ - (1-p)^ℓ).
	const ell, delta = 4, 0.1
	a := For(protocol.BiasedVoter(ell, delta))
	for _, p := range []float64{0, 0.1, 0.3, 0.5, 0.8, 1} {
		want := delta * (1 - math.Pow(p, ell) - math.Pow(1-p, ell))
		if got := a.Drift(p); math.Abs(got-want) > 1e-9 {
			t.Errorf("F(%v) = %v, want %v", p, got, want)
		}
	}
	if got := a.Classify(); got != CasePositive {
		t.Errorf("BiasedVoter(+δ) classified as %v, want CasePositive", got)
	}
	if got := For(protocol.BiasedVoter(ell, -delta)).Classify(); got != CaseNegative {
		t.Errorf("BiasedVoter(-δ) classified as %v, want CaseNegative", got)
	}
}

func TestValidRulesHaveBoundaryRoots(t *testing.T) {
	// For any rule satisfying Prop 3, F(0) = F(1) = 0.
	rules := []*protocol.Rule{
		protocol.Minority(5), protocol.Majority(7), protocol.TwoChoice(),
		protocol.BiasedVoter(3, 0.2), protocol.Follower(4, 2),
	}
	for _, r := range rules {
		a := For(r)
		if a.IsZero() {
			continue
		}
		if got := a.Drift(0); math.Abs(got) > 1e-12 {
			t.Errorf("%v: F(0) = %v", r, got)
		}
		if got := a.Drift(1); math.Abs(got) > 1e-9 {
			t.Errorf("%v: F(1) = %v", r, got)
		}
		roots := a.Roots()
		if len(roots) < 2 || roots[0] > 1e-9 || roots[len(roots)-1] < 1-1e-9 {
			t.Errorf("%v: roots %v must include 0 and 1", r, roots)
		}
		// Degree bound from Eq. 3: deg F ≤ ℓ+1, so at most ℓ+1 roots.
		if len(roots) > r.SampleSize()+1 {
			t.Errorf("%v: %d roots exceeds ℓ+1", r, len(roots))
		}
	}
}

// TestEq7Identity checks F(p) = p·P₁(p) + (1-p)·P₀(p) - p (Eq. 7) for
// randomized valid rules, tying the polynomial construction to the
// independently-computed AdoptProb.
func TestEq7Identity(t *testing.T) {
	f := func(seed uint32, raw [6]uint8, pRaw uint16) bool {
		const ell = 5
		g0 := make([]float64, ell+1)
		g1 := make([]float64, ell+1)
		for k := 0; k <= ell; k++ {
			g0[k] = float64(raw[k%len(raw)]) / 255
			g1[k] = float64(raw[(k+3)%len(raw)]) / 255
		}
		g0[0], g1[ell] = 0, 1 // Prop 3
		r := protocol.MustNew("rand", ell, g0, g1)
		a := For(r)
		p := float64(pRaw) / math.MaxUint16
		want := p*r.AdoptProb(1, p) + (1-p)*r.AdoptProb(0, p) - p
		return math.Abs(a.Drift(p)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestExpectedNext(t *testing.T) {
	// Voter: E[X_{t+1}] prediction is x itself (F ≡ 0).
	a := For(protocol.Voter(3))
	if got := a.ExpectedNext(1000, 700); got != 700 {
		t.Errorf("Voter ExpectedNext = %v, want 700", got)
	}
	// Minority(3) at p = 0.75: F = 2·.75·.25·(-.5) = -0.1875.
	a = For(protocol.Minority(3))
	want := 750 + 1000*(-0.1875)
	if got := a.ExpectedNext(1000, 750); math.Abs(got-want) > 1e-6 {
		t.Errorf("Minority ExpectedNext = %v, want %v", got, want)
	}
}

func TestProofConstants(t *testing.T) {
	t.Run("case negative (minority)", func(t *testing.T) {
		a := For(protocol.Minority(3))
		c, ok := a.ProofConstants()
		if !ok {
			t.Fatal("expected derivable constants")
		}
		if !(0.5 < c.A1 && c.A1 < c.A2 && c.A2 < c.A3 && c.A3 < 1) {
			t.Errorf("constants out of order: %+v", c)
		}
		if c.Z != 1 {
			t.Errorf("Case 1 adversarial z = %d, want 1", c.Z)
		}
		if c.X0Frac <= c.A2 || c.X0Frac >= c.A3 {
			t.Errorf("X0 fraction %v outside (a2, a3)", c.X0Frac)
		}
		// F must actually be negative on [a1, a3].
		for _, p := range []float64{c.A1, (c.A1 + c.A3) / 2, c.A3} {
			if a.Drift(p) >= 0 {
				t.Errorf("F(%v) = %v, want < 0", p, a.Drift(p))
			}
		}
	})
	t.Run("case positive (majority)", func(t *testing.T) {
		a := For(protocol.Majority(3))
		c, ok := a.ProofConstants()
		if !ok {
			t.Fatal("expected derivable constants")
		}
		if c.Z != 0 {
			t.Errorf("Case 2 adversarial z = %d, want 0", c.Z)
		}
		if !(0.5 < c.A1 && c.A1 < c.A2 && c.A2 < c.A3 && c.A3 < 1) {
			t.Errorf("constants out of order: %+v", c)
		}
		if c.X0Frac <= c.A1 || c.X0Frac >= c.A2 {
			t.Errorf("X0 fraction %v outside (a1, a2)", c.X0Frac)
		}
		for _, p := range []float64{c.A1, c.A2, c.A3} {
			if a.Drift(p) <= 0 {
				t.Errorf("F(%v) = %v, want > 0", p, a.Drift(p))
			}
		}
	})
	t.Run("case zero (voter)", func(t *testing.T) {
		c, ok := For(protocol.Voter(1)).ProofConstants()
		if ok {
			t.Error("CaseZero should report ok = false")
		}
		if c.A1 != 0.25 || c.A2 != 0.5 || c.A3 != 0.75 || c.Z != 1 {
			t.Errorf("Lemma 11 constants = %+v", c)
		}
	})
}

func TestDriftMatchesMonteCarlo(t *testing.T) {
	// The polynomial drift must match a direct expectation computed from
	// the rule tables: E[g(K)] with K ~ Binomial(ℓ, p), mixed over opinions.
	r := protocol.TwoChoice()
	a := For(r)
	for _, p := range []float64{0.2, 0.5, 0.7} {
		direct := p*r.AdoptProb(1, p) + (1-p)*r.AdoptProb(0, p) - p
		if got := a.Drift(p); math.Abs(got-direct) > 1e-12 {
			t.Errorf("TwoChoice drift(%v) = %v, want %v", p, got, direct)
		}
	}
}

func TestCaseString(t *testing.T) {
	for _, c := range []Case{CaseZero, CaseNegative, CasePositive, Case(99)} {
		if c.String() == "" {
			t.Errorf("empty String for %d", int(c))
		}
	}
}

func TestFReturnsCopy(t *testing.T) {
	a := For(protocol.Minority(3))
	f := a.F()
	if len(f) > 1 {
		f[1] = 999
	}
	if a.Drift(0.25) != a.f.Eval(0.25) {
		t.Error("F() leaked internal state")
	}
	if math.Abs(a.F()[1]-2) > 1e-9 {
		t.Error("mutating F() copy affected the analysis")
	}
}

func TestProofConstantsPropertyRandomRules(t *testing.T) {
	// For random valid rules: the derived constants are ordered, the
	// adversarial start is feasible, and F has the case's sign on the
	// working interval [a1, a3] (Case 1) or [a1, a3] (Case 2), as the
	// Theorem 12 proof requires.
	g := rng.New(321)
	for i := 0; i < 200; i++ {
		ell := 2 + i%5
		r := protocol.Random(ell, g.Split())
		a := For(r)
		c, ok := a.ProofConstants()
		if !ok {
			continue // CaseZero: Lemma 11 constants, nothing to check here
		}
		if !(c.A1 < c.A2 && c.A2 < c.A3) {
			t.Fatalf("rule %d: constants out of order %+v", i, c)
		}
		if c.X0Frac <= 0 || c.X0Frac >= 1 {
			t.Fatalf("rule %d: infeasible X0 fraction %v", i, c.X0Frac)
		}
		wantSign := 0
		switch a.Classify() {
		case CaseNegative:
			wantSign = -1
			if c.Z != 1 {
				t.Fatalf("rule %d: Case 1 must set z=1", i)
			}
		case CasePositive:
			wantSign = 1
			if c.Z != 0 {
				t.Fatalf("rule %d: Case 2 must set z=0", i)
			}
		}
		// Check the sign at a few interior points of (a1, min(a3, last
		// root)) — for Case 1, a3 may exceed nothing since a3 < 1 and the
		// interval (r, 1) hosts the sign.
		for _, frac := range []float64{0.25, 0.5, 0.75} {
			p := c.A1 + frac*(c.A3-c.A1)
			v := a.Drift(p)
			if wantSign < 0 && v >= 0 {
				t.Fatalf("rule %d: Case 1 but F(%v) = %v >= 0", i, p, v)
			}
			if wantSign > 0 && v <= 0 {
				t.Fatalf("rule %d: Case 2 but F(%v) = %v <= 0", i, p, v)
			}
		}
	}
}
