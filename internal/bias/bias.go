// Package bias implements the paper's central analytical object: the bias
// function of Eq. 3,
//
//	F_n(p) = -p + Σ_{k=0}^{ℓ} C(ℓ,k) p^k (1-p)^{ℓ-k} (p·g^[1](k) + (1-p)·g^[0](k)),
//
// a polynomial of degree at most ℓ+1 measuring a protocol's expected
// one-round push toward opinion 1 when the current fraction of ones is p
// (Proposition 5: E[X_{t+1}|X_t=x] = x + n·F(x/n) ± 1).
//
// The lower-bound proof of Theorem 12 hinges on F's root structure in
// [0, 1]: because ℓ is constant, F has a constant number of roots, and the
// sign of F on the interval adjacent to p = 1 decides which of the two slow
// cases applies. This package constructs F exactly from a Rule, isolates
// its roots, classifies the protocol into the three proof cases, and
// derives the (a₁, a₂, a₃) interval constants used by Theorem 6 and
// Corollary 10.
package bias

import (
	"fmt"
	"math"

	"bitspread/internal/dist"
	"bitspread/internal/poly"
	"bitspread/internal/protocol"
)

// Case identifies which branch of the Theorem 12 proof applies to a rule.
type Case int

const (
	// CaseZero means F ≡ 0 (e.g. the Voter): Lemma 11 applies.
	CaseZero Case = iota + 1
	// CaseNegative means F < 0 on the interval adjacent to p = 1
	// (Figure 2): with correct opinion z = 1 the chain is a
	// super-martingale below consensus and crosses slowly.
	CaseNegative
	// CasePositive means F > 0 on that interval (Figure 3): with z = 0 the
	// chain is a sub-martingale above a₁·n and descends slowly.
	CasePositive
)

// String implements fmt.Stringer.
func (c Case) String() string {
	switch c {
	case CaseZero:
		return "F≡0 (Lemma 11)"
	case CaseNegative:
		return "Case 1: F<0 near p=1 (Figure 2)"
	case CasePositive:
		return "Case 2: F>0 near p=1 (Figure 3)"
	default:
		return fmt.Sprintf("Case(%d)", int(c))
	}
}

// rootTol is the absolute accuracy to which roots of F are located.
const rootTol = 1e-12

// Analysis is the complete root-and-sign portrait of a rule's bias
// polynomial. Construct it with For. Fields are read-only.
type Analysis struct {
	rule *protocol.Rule
	f    poly.Poly
	// roots are the distinct roots of F in [0, 1], ascending. For a rule
	// satisfying Proposition 3 they always include 0 and 1.
	roots []float64
	// signs[i] is the sign of F on the open interval (roots[i], roots[i+1]).
	signs []int
}

// For builds the bias polynomial of r and analyses its roots in [0, 1].
func For(r *protocol.Rule) *Analysis {
	f := Polynomial(r)
	a := &Analysis{rule: r, f: f}
	if f.IsZero() {
		return a
	}
	a.roots = f.RootsIn(0, 1, rootTol)
	a.signs = make([]int, 0, len(a.roots)-1)
	for i := 0; i+1 < len(a.roots); i++ {
		mid := (a.roots[i] + a.roots[i+1]) / 2
		v := f.Eval(mid)
		switch {
		case v > 0:
			a.signs = append(a.signs, 1)
		case v < 0:
			a.signs = append(a.signs, -1)
		default:
			a.signs = append(a.signs, 0)
		}
	}
	return a
}

// Polynomial returns F_n for rule r as an explicit polynomial in p.
// Coefficients whose magnitude is pure cancellation noise (relative 1e-12)
// are snapped to zero, so e.g. the Voter yields the genuine zero
// polynomial.
func Polynomial(r *protocol.Rule) poly.Poly {
	ell := r.SampleSize()
	x := poly.New(0, 1)
	oneMinusX := poly.New(1, -1)

	// Precompute powers of x and (1-x).
	xPow := make([]poly.Poly, ell+1)
	omPow := make([]poly.Poly, ell+1)
	xPow[0], omPow[0] = poly.New(1), poly.New(1)
	for i := 1; i <= ell; i++ {
		xPow[i] = xPow[i-1].Mul(x)
		omPow[i] = omPow[i-1].Mul(oneMinusX)
	}

	f := poly.New(0, -1) // the leading -p term
	termScale := 1.0     // largest coefficient magnitude among summed terms
	for k := 0; k <= ell; k++ {
		g1 := r.G(1, k)
		g0 := r.G(0, k)
		//bitlint:floatexact g-table entries are caller-written constants; skipping only bit-exact zeros is conservative
		if g1 == 0 && g0 == 0 {
			continue
		}
		// C(ℓ,k)·x^k·(1-x)^{ℓ-k}·(g1·x + g0·(1-x))
		base := xPow[k].Mul(omPow[ell-k]).Scale(dist.Choose(int64(ell), int64(k)))
		inner := x.Scale(g1).Add(oneMinusX.Scale(g0))
		term := base.Mul(inner)
		termScale = math.Max(termScale, term.MaxAbsCoeff())
		f = f.Add(term)
	}

	// Snap cancellation noise to zero so structural zeros are exact. The
	// threshold is relative to the magnitude of the terms *before*
	// cancellation: a rule like the Voter cancels O(2^ℓ) coefficients down
	// to exactly zero up to float round-off.
	eps := 1e-11 * termScale
	cleaned := make([]float64, 0, f.Degree()+1)
	for i := 0; i <= f.Degree(); i++ {
		c := f[i]
		if math.Abs(c) <= eps {
			c = 0
		}
		cleaned = append(cleaned, c)
	}
	return poly.New(cleaned...)
}

// Rule returns the analysed rule.
func (a *Analysis) Rule() *protocol.Rule { return a.rule }

// F returns the bias polynomial (a copy).
func (a *Analysis) F() poly.Poly { return append(poly.Poly(nil), a.f...) }

// Drift returns F(p).
func (a *Analysis) Drift(p float64) float64 { return a.f.Eval(p) }

// IsZero reports whether F ≡ 0 (the Lemma 11 regime).
func (a *Analysis) IsZero() bool { return a.f.IsZero() }

// Roots returns the distinct roots of F in [0, 1], ascending (a copy).
// It is empty when F ≡ 0.
func (a *Analysis) Roots() []float64 { return append([]float64(nil), a.roots...) }

// Signs returns the sign of F strictly between consecutive roots (a copy).
func (a *Analysis) Signs() []int { return append([]int(nil), a.signs...) }

// Classify returns the Theorem 12 proof case for the rule, derived from
// the sign of F on the root interval adjacent to p = 1 (the finite-n
// analogue of the interval (r^{(k₀-1)}, r^{(k₀)}) in the proof).
func (a *Analysis) Classify() Case {
	if a.IsZero() {
		return CaseZero
	}
	// Walk inward from 1: the last interval with a definite sign.
	for i := len(a.signs) - 1; i >= 0; i-- {
		switch a.signs[i] {
		case 1:
			return CasePositive
		case -1:
			return CaseNegative
		}
	}
	// F is non-zero as a polynomial but numerically flat on every interval;
	// treat as the zero regime.
	return CaseZero
}

// IntervalNearOne returns the open root interval of F adjacent to p = 1
// with a definite sign, and that sign. ok is false when F ≡ 0 or no signed
// interval exists.
func (a *Analysis) IntervalNearOne() (lo, hi float64, sign int, ok bool) {
	for i := len(a.signs) - 1; i >= 0; i-- {
		if a.signs[i] != 0 {
			return a.roots[i], a.roots[i+1], a.signs[i], true
		}
	}
	return 0, 0, 0, false
}

// MaxAbsDrift returns max |F(p)| over a uniform grid of samples+1 points
// in [0, 1]. It is a cheap scalar summary of how far a rule sits from the
// Voter-class F ≡ 0 regime — the evolutionary search uses it as a fitness
// pre-filter: a rule with large worst-case drift is provably slow by
// Theorem 12, so simulation can be skipped entirely. samples below 2 is
// treated as 2.
func (a *Analysis) MaxAbsDrift(samples int) float64 {
	if a.IsZero() {
		return 0
	}
	if samples < 2 {
		samples = 2
	}
	maxAbs := 0.0
	for i := 0; i <= samples; i++ {
		v := math.Abs(a.f.Eval(float64(i) / float64(samples)))
		if v > maxAbs {
			maxAbs = v
		}
	}
	return maxAbs
}

// ExpectedNext returns the Proposition 5 drift prediction
// x + n·F(x/n) for population n and count x. The true conditional
// expectation lies within ±1 of this value (Eqs. 5–6).
func (a *Analysis) ExpectedNext(n, x int64) float64 {
	p := float64(x) / float64(n)
	return float64(x) + float64(n)*a.f.Eval(p)
}

// Constants is the (a₁, a₂, a₃) triple feeding Theorem 6 / Corollary 10,
// plus the initial count X₀ and the correct opinion z for which the proof
// predicts slow convergence.
type Constants struct {
	A1, A2, A3 float64
	X0Frac     float64 // X₀ / n
	Z          int     // the adversarial choice of the correct opinion
}

// ProofConstants derives the interval constants used by the two cases of
// Theorem 12 from the analysed root structure. ok is false in the
// CaseZero regime, where Lemma 11 fixes (1/4, 1/2, 3/4) with z = 1 instead
// (returned anyway for convenience).
func (a *Analysis) ProofConstants() (Constants, bool) {
	switch a.Classify() {
	case CaseNegative:
		lo, _, _, _ := a.IntervalNearOne()
		a1 := lo + (1-lo)/4
		a2 := dist.Prop4Y(a1, a.rule.SampleSize())
		a3 := (a2 + 1) / 2
		return Constants{A1: a1, A2: a2, A3: a3, X0Frac: (a2 + a3) / 2, Z: 1}, true
	case CasePositive:
		lo, _, _, _ := a.IntervalNearOne()
		a1 := lo + (1-lo)/4
		a2 := lo + (1-lo)/2
		a3 := lo + 3*(1-lo)/4
		return Constants{A1: a1, A2: a2, A3: a3, X0Frac: (a1 + a2) / 2, Z: 0}, true
	default:
		return Constants{A1: 0.25, A2: 0.5, A3: 0.75, X0Frac: 0.625, Z: 1}, false
	}
}
