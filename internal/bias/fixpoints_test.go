package bias

import (
	"math"
	"testing"

	"bitspread/internal/protocol"
)

func TestFixpointsMinority(t *testing.T) {
	// F = 2p(1-p)(1-2p): 0 repelling, 1/2 attracting, 1 repelling — the
	// interior attractor is the trap of X6.
	fps := For(protocol.Minority(3)).Fixpoints()
	if len(fps) != 3 {
		t.Fatalf("fixpoints = %v", fps)
	}
	want := []struct {
		p float64
		s Stability
	}{
		{0, Repelling}, {0.5, Attracting}, {1, Repelling},
	}
	for i, w := range want {
		if math.Abs(fps[i].P-w.p) > 1e-9 || fps[i].Stability != w.s {
			t.Errorf("fixpoint %d = %+v, want (%v, %v)", i, fps[i], w.p, w.s)
		}
	}
}

func TestFixpointsMajority(t *testing.T) {
	// F = -p(1-p)(1-2p): both consensuses attract, 1/2 repels — why
	// Majority locks whichever side it starts on.
	fps := For(protocol.Majority(3)).Fixpoints()
	if len(fps) != 3 {
		t.Fatalf("fixpoints = %v", fps)
	}
	if fps[0].Stability != Attracting || fps[1].Stability != Repelling || fps[2].Stability != Attracting {
		t.Errorf("majority stabilities = %v", fps)
	}
}

func TestFixpointsBiasedVoter(t *testing.T) {
	// F = δ(1 - p^ℓ - (1-p)^ℓ) > 0 inside: 0 repels, 1 attracts.
	fps := For(protocol.BiasedVoter(4, 0.1)).Fixpoints()
	if len(fps) != 2 {
		t.Fatalf("fixpoints = %v", fps)
	}
	if fps[0].Stability != Repelling || fps[1].Stability != Attracting {
		t.Errorf("biased voter stabilities = %v", fps)
	}
}

func TestFixpointsVoterNil(t *testing.T) {
	if fps := For(protocol.Voter(2)).Fixpoints(); fps != nil {
		t.Errorf("driftless rule has fixpoints %v, want nil", fps)
	}
}

func TestDriftDerivative(t *testing.T) {
	// Minority(3): F = 2p - 6p² + 4p³, F' = 2 - 12p + 12p².
	a := For(protocol.Minority(3))
	cases := []struct{ p, want float64 }{
		{0, 2}, {0.5, -1}, {1, 2},
	}
	for _, c := range cases {
		if got := a.DriftDerivative(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("F'(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Sign of F' at a root matches the side-based classification.
	if a.DriftDerivative(0.5) >= 0 {
		t.Error("attracting fixpoint must have F' < 0")
	}
}

func TestStabilityString(t *testing.T) {
	for _, s := range []Stability{Attracting, Repelling, SemiStable, Stability(9)} {
		if s.String() == "" {
			t.Errorf("empty string for %d", int(s))
		}
	}
}
