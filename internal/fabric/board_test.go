package fabric

import (
	"testing"
	"time"
)

// clock returns successive instants without touching the wall clock: the
// board takes explicit times, so tests drive it with a counter.
func at(sec int) time.Time {
	return time.Date(2026, 1, 1, 0, 0, sec, 0, time.UTC)
}

func TestNewBoardValidation(t *testing.T) {
	if _, err := NewBoard(0, time.Second); err == nil {
		t.Fatal("0 partitions accepted")
	}
	if _, err := NewBoard(2, 0); err == nil {
		t.Fatal("zero ttl accepted")
	}
}

// Happy path: two workers drain two partitions, no reissues, no steals.
func TestBoardLifecycle(t *testing.T) {
	b, err := NewBoard(2, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	st, l1 := b.Acquire("w1", at(0))
	if st != Granted || l1.Shard != (Shard{0, 2}) || l1.Stolen {
		t.Fatalf("first acquire: %v %+v", st, l1)
	}
	st, l2 := b.Acquire("w2", at(0))
	if st != Granted || l2.Shard != (Shard{1, 2}) {
		t.Fatalf("second acquire: %v %+v", st, l2)
	}
	if !b.Renew(l1.ID, at(5)) {
		t.Fatal("renew of live lease refused")
	}
	if _, dup, err := b.Complete(l1.ID); err != nil || dup {
		t.Fatalf("complete l1: dup=%v err=%v", dup, err)
	}
	if _, dup, err := b.Complete(l2.ID); err != nil || dup {
		t.Fatalf("complete l2: dup=%v err=%v", dup, err)
	}
	if st, _ := b.Acquire("w1", at(6)); st != Drained {
		t.Fatalf("drained board answered %v", st)
	}
	if !b.Drained() {
		t.Fatal("Drained() false after all completions")
	}
	s := b.Stats()
	if s.Done != 2 || s.Reissues != 0 || s.Steals != 0 {
		t.Fatalf("stats %+v", s)
	}
}

// A lease that expires un-renewed is re-issued to the next worker, and
// the zombie's old lease ID can no longer renew — but its completion
// still counts (determinism makes its bytes as good as anyone's).
func TestBoardExpiryReissue(t *testing.T) {
	b, _ := NewBoard(1, 10*time.Second)
	_, dead := b.Acquire("w1", at(0))
	if st, _ := b.Acquire("w1", at(5)); st != Wait {
		t.Fatal("holder re-acquired its own live lease before expiry")
	}
	st, release := b.Acquire("w2", at(11))
	if st != Granted || release.Shard != (Shard{0, 1}) {
		t.Fatalf("expired lease not re-issued: %v %+v", st, release)
	}
	if b.Renew(dead.ID, at(12)) {
		t.Fatal("superseded lease renewed")
	}
	if !b.Renew(release.ID, at(12)) {
		t.Fatal("live re-issued lease refused renewal")
	}
	if _, dup, err := b.Complete(dead.ID); err != nil || dup {
		t.Fatalf("zombie completion rejected: dup=%v err=%v", dup, err)
	}
	if _, dup, err := b.Complete(release.ID); err != nil || !dup {
		t.Fatalf("second completion not flagged duplicate: dup=%v err=%v", dup, err)
	}
	if s := b.Stats(); s.Reissues != 1 || s.Done != 1 {
		t.Fatalf("stats %+v", s)
	}
}

// An idle worker steals a live straggler lease: same generation, marked
// Stolen, at most one steal per generation, never from itself.
func TestBoardSteal(t *testing.T) {
	b, _ := NewBoard(1, 10*time.Second)
	_, orig := b.Acquire("w1", at(0))
	if st, _ := b.Acquire("w1", at(1)); st != Wait {
		t.Fatal("worker stole its own lease")
	}
	st, stolen := b.Acquire("w2", at(1))
	if st != Granted || !stolen.Stolen || stolen.ID != orig.ID {
		t.Fatalf("steal: %v %+v (orig %q)", st, stolen, orig.ID)
	}
	if st, _ := b.Acquire("w3", at(2)); st != Wait {
		t.Fatal("second steal of one generation granted")
	}
	// Thief finishes first; victim's later completion is a duplicate.
	if _, dup, err := b.Complete(stolen.ID); err != nil || dup {
		t.Fatalf("thief completion: dup=%v err=%v", dup, err)
	}
	if _, dup, err := b.Complete(orig.ID); err != nil || !dup {
		t.Fatalf("victim completion: dup=%v err=%v", dup, err)
	}
	if s := b.Stats(); s.Steals != 1 || s.Done != 1 || s.Reissues != 0 {
		t.Fatalf("stats %+v", s)
	}
}

// Stealing prefers the straggler closest to expiry.
func TestBoardStealPicksOldest(t *testing.T) {
	b, _ := NewBoard(2, 10*time.Second)
	_, l0 := b.Acquire("w1", at(0))
	if _, l1 := b.Acquire("w2", at(3)); l1.Shard.Index != 1 {
		t.Fatalf("setup: %+v", l1)
	}
	st, stolen := b.Acquire("w3", at(4))
	if st != Granted || !stolen.Stolen || stolen.Shard.Index != 0 {
		t.Fatalf("steal picked %+v, want partition 0 (expires first, %v)", stolen, l0.Expiry)
	}
}

func TestBoardCompleteErrors(t *testing.T) {
	b, _ := NewBoard(2, time.Second)
	if _, _, err := b.Complete("garbage"); err == nil {
		t.Fatal("malformed lease id accepted")
	}
	if _, _, err := b.Complete("p9.g1"); err == nil {
		t.Fatal("out-of-range partition accepted")
	}
	if _, _, err := b.Complete("p0.g1"); err == nil {
		t.Fatal("never-issued lease accepted")
	}
	_, l := b.Acquire("w1", at(0))
	if part, dup, err := b.Complete(l.ID); err != nil || dup || part != 0 {
		t.Fatalf("complete: part=%d dup=%v err=%v", part, dup, err)
	}
}

func TestBoardMarkDone(t *testing.T) {
	b, _ := NewBoard(2, time.Second)
	if err := b.MarkDone(1); err != nil {
		t.Fatal(err)
	}
	if err := b.MarkDone(5); err == nil {
		t.Fatal("out-of-range MarkDone accepted")
	}
	st, l := b.Acquire("w1", at(0))
	if st != Granted || l.Shard.Index != 0 {
		t.Fatalf("acquire after MarkDone(1): %v %+v", st, l)
	}
	if _, _, err := b.Complete(l.ID); err != nil {
		t.Fatal(err)
	}
	if !b.Drained() {
		t.Fatal("board not drained after MarkDone + complete")
	}
}
