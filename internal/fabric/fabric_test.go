package fabric

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"bitspread/internal/experiments"
	"bitspread/internal/sim"
)

func TestParseShard(t *testing.T) {
	cases := []struct {
		in      string
		want    Shard
		wantErr bool
	}{
		{in: "0/1", want: Shard{0, 1}},
		{in: "0/4", want: Shard{0, 4}},
		{in: "3/4", want: Shard{3, 4}},
		{in: " 1 / 2 ", want: Shard{1, 2}},
		{in: "4/4", wantErr: true},
		{in: "-1/4", wantErr: true},
		{in: "0/0", wantErr: true},
		{in: "1/-2", wantErr: true},
		{in: "0", wantErr: true},
		{in: "a/b", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, c := range cases {
		got, err := ParseShard(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseShard(%q): want error, got %v", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseShard(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseShard(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Every (key, replica) pair belongs to exactly one shard, for any count.
func TestPartitionCompleteAndDisjoint(t *testing.T) {
	keys := []string{"T2#00000000deadbeef", "F1#0000000012345678", "X3#abcdef0000000000"}
	for _, count := range []int{1, 2, 3, 4, 7, 16} {
		for _, key := range keys {
			for replica := 0; replica < 64; replica++ {
				owners := 0
				for i := 0; i < count; i++ {
					if (Shard{Index: i, Count: count}).Owns(key, replica) {
						owners++
					}
				}
				if owners != 1 {
					t.Fatalf("count=%d key=%s replica=%d: %d owners, want exactly 1", count, key, replica, owners)
				}
			}
		}
	}
}

// The assignment is a pure function: stable across calls and spread
// non-trivially (no shard owns everything at count >= 2).
func TestPartitionDeterministicAndSpread(t *testing.T) {
	key := "T2#00000000deadbeef"
	for replica := 0; replica < 32; replica++ {
		if Assign(key, replica) != Assign(key, replica) {
			t.Fatalf("Assign unstable for replica %d", replica)
		}
	}
	counts := make([]int, 2)
	for replica := 0; replica < 200; replica++ {
		counts[Assign(key, replica)%2]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("degenerate split over 200 replicas: %v", counts)
	}
}

func TestSweepSpecExperiments(t *testing.T) {
	all, err := SweepSpec{}.Experiments()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(experiments.All()) {
		t.Fatalf("empty spec resolved %d experiments, want all %d", len(all), len(experiments.All()))
	}
	two, err := SweepSpec{Exps: []string{"T2", " F1 "}}.Experiments()
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].ID != "T2" || two[1].ID != "F1" {
		t.Fatalf("got %v, want [T2 F1]", two)
	}
	if _, err := (SweepSpec{Exps: []string{"nope"}}).Experiments(); err == nil {
		t.Fatal("unknown experiment id did not error")
	}
}

// referenceJournal runs the spec in one process with one sim worker —
// the canonical byte stream every partitioned run must reproduce.
func referenceJournal(t *testing.T, spec SweepSpec) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "ref.jsonl")
	j, err := sim.OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	opts := experiments.Options{Seed: spec.Seed, Workers: 1, Quick: spec.Quick, Journal: j}
	exps, err := spec.Experiments()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exps {
		if _, err := e.Run(opts); err != nil {
			t.Fatalf("reference run %s: %v", e.ID, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The tentpole proof at package level: shards 0/N..N-1/N, run
// independently with parallel sim workers, merge to the exact bytes of
// the single-process single-worker reference journal.
func TestRunShardMergeByteIdentity(t *testing.T) {
	spec := SweepSpec{Exps: []string{"T2", "F1"}, Seed: 7, Quick: true, SimWorkers: 2}
	want := referenceJournal(t, spec)
	if len(want) == 0 {
		t.Fatal("reference journal is empty; experiment selection records nothing")
	}

	for _, count := range []int{1, 2, 3} {
		dir := t.TempDir()
		var paths []string
		total := 0
		for i := 0; i < count; i++ {
			path := filepath.Join(dir, "shard.jsonl")
			if count > 1 {
				path = filepath.Join(dir, "shard"+string(rune('0'+i))+".jsonl")
			}
			stats, err := RunShard(context.Background(), spec, Shard{Index: i, Count: count}, path, false, t.Logf)
			if err != nil {
				t.Fatalf("count=%d shard %d: %v", count, i, err)
			}
			total += stats.Checkpointed
			paths = append(paths, path)
		}
		merged := filepath.Join(dir, "merged.jsonl")
		stats, err := sim.MergeJournalFiles(merged, paths...)
		if err != nil {
			t.Fatalf("count=%d merge: %v", count, err)
		}
		got, err := os.ReadFile(merged)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("count=%d: merged journal differs from single-process reference\nmerge stats: %s\nshard totals: %d", count, stats, total)
		}
		if stats.Deduped != 0 {
			t.Errorf("count=%d: disjoint shards deduped %d entries, want 0", count, stats.Deduped)
		}
	}
}

// Overlapping shards (0/2, 1/2 and a full 0/1 copy) merge to the same
// bytes with every duplicate verified identical and deduplicated.
func TestRunShardMergeOverlap(t *testing.T) {
	spec := SweepSpec{Exps: []string{"T2"}, Seed: 7, Quick: true, SimWorkers: 2}
	want := referenceJournal(t, spec)

	dir := t.TempDir()
	paths := []string{
		filepath.Join(dir, "a.jsonl"),
		filepath.Join(dir, "b.jsonl"),
		filepath.Join(dir, "full.jsonl"),
	}
	shards := []Shard{{0, 2}, {1, 2}, {0, 1}}
	for i, sh := range shards {
		if _, err := RunShard(context.Background(), spec, sh, paths[i], false, t.Logf); err != nil {
			t.Fatalf("shard %v: %v", sh, err)
		}
	}
	merged := filepath.Join(dir, "merged.jsonl")
	stats, err := sim.MergeJournalFiles(merged, paths...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("overlapping merge differs from reference (%s)", stats)
	}
	if stats.Deduped != stats.Entries {
		t.Errorf("full-copy overlap: deduped %d of %d entries, want all", stats.Deduped, stats.Entries)
	}
}

// A killed shard leaves a partial journal; re-running with resume reuses
// it and the final merge is still byte-identical.
func TestRunShardResumeAfterPartial(t *testing.T) {
	spec := SweepSpec{Exps: []string{"T2"}, Seed: 7, Quick: true, SimWorkers: 2}
	want := referenceJournal(t, spec)

	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	if _, err := RunShard(context.Background(), spec, Shard{0, 2}, a, false, t.Logf); err != nil {
		t.Fatal(err)
	}
	if _, err := RunShard(context.Background(), spec, Shard{1, 2}, b, false, t.Logf); err != nil {
		t.Fatal(err)
	}
	// Simulate a worker killed mid-write: keep a prefix of shard b and
	// tear its final line.
	data, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("shard b too small to truncate meaningfully: %d lines", len(lines))
	}
	partial := bytes.Join(lines[:2], nil)
	partial = append(partial, lines[2][:len(lines[2])/2]...)
	if err := os.WriteFile(b, partial, 0o644); err != nil {
		t.Fatal(err)
	}
	stats, err := RunShard(context.Background(), spec, Shard{1, 2}, b, true, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Checkpointed == 0 {
		t.Fatal("resumed shard checkpointed nothing")
	}
	merged := filepath.Join(dir, "merged.jsonl")
	if _, err := sim.MergeJournalFiles(merged, a, b); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("merge after kill+resume differs from reference")
	}
}

func TestRunShardValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := RunShard(context.Background(), SweepSpec{}, Shard{2, 2}, filepath.Join(dir, "j.jsonl"), false, nil); err == nil {
		t.Fatal("invalid shard accepted")
	}
	if _, err := RunShard(context.Background(), SweepSpec{Exps: []string{"nope"}}, Shard{0, 1}, filepath.Join(dir, "j.jsonl"), false, nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunShardCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunShard(ctx, SweepSpec{Exps: []string{"T2"}, Seed: 1, Quick: true}, Shard{0, 1},
		filepath.Join(t.TempDir(), "j.jsonl"), false, nil)
	if err == nil {
		t.Fatal("cancelled context did not abort the shard")
	}
}
