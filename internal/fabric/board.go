package fabric

import (
	"fmt"
	"time"
)

// Board is the coordinator-side lease state machine for one sweep: N
// partitions, each walked through pending → leased → done. It is the
// authority behind internal/serve's /v1/lease endpoints and the
// in-process scheduler of the fabric-scale bench.
//
// The board deliberately trusts determinism instead of workers:
//
//   - an expired lease is simply re-issued (generation bumped) — the dead
//     worker's partial journal, if any, merges in harmlessly;
//   - when no partition is pending or expired but some are still leased,
//     an idle worker gets a speculative duplicate lease on a straggler
//     (work stealing); whichever copy completes first wins, the loser's
//     bytes are verified identical and dropped;
//   - Complete is idempotent, so the thief and the victim can both report.
//
// Board does no locking and never reads the wall clock: callers own both.
// Every method that depends on time takes an explicit now — internal/serve
// passes its (test-fakeable) clock, and the state machine stays
// deterministic for the linter and for replay.
type Board struct {
	parts []partition
	ttl   time.Duration

	reissues int
	steals   int
}

type partState int

const (
	statePending partState = iota
	stateLeased
	stateDone
)

// partition is one unit of leased work.
type partition struct {
	state partState
	// gen counts lease issues for this partition; it salts lease IDs so a
	// zombie holding a superseded lease cannot renew or complete it.
	gen int
	// holders are the workers holding a live gen lease (victim + thieves).
	holders []string
	// expiry is when the current gen's leases lapse (extended by Renew).
	expiry time.Time
	// stolen marks that the current gen already has a speculative
	// duplicate, bounding steals to one live copy per straggler.
	stolen bool
}

// Lease is one granted unit of work.
type Lease struct {
	// ID is "p<partition>.g<generation>"; renew/complete quote it back.
	ID string
	// Shard is the partition to run.
	Shard Shard
	// Expiry is when the lease lapses unless renewed.
	Expiry time.Time
	// Stolen marks a speculative duplicate of a straggler's lease.
	Stolen bool
}

// AcquireStatus is the board's answer to an idle worker.
type AcquireStatus int

const (
	// Granted: the returned Lease holds work to run.
	Granted AcquireStatus = iota
	// Wait: everything is leased and stealing is exhausted; retry later.
	Wait
	// Drained: every partition is done; the worker can exit.
	Drained
)

func (s AcquireStatus) String() string {
	switch s {
	case Granted:
		return "lease"
	case Wait:
		return "wait"
	case Drained:
		return "done"
	default:
		return fmt.Sprintf("AcquireStatus(%d)", int(s))
	}
}

// BoardStats is a point-in-time summary.
type BoardStats struct {
	Pending  int `json:"pending"`
	Leased   int `json:"leased"`
	Done     int `json:"done"`
	Reissues int `json:"reissues"`
	Steals   int `json:"steals"`
}

// NewBoard creates a board over count partitions with the given lease TTL.
func NewBoard(count int, ttl time.Duration) (*Board, error) {
	if count < 1 {
		return nil, fmt.Errorf("fabric: board needs >= 1 partition, got %d", count)
	}
	if ttl <= 0 {
		return nil, fmt.Errorf("fabric: board needs a positive lease ttl, got %v", ttl)
	}
	return &Board{parts: make([]partition, count), ttl: ttl}, nil
}

// Count returns the number of partitions.
func (b *Board) Count() int { return len(b.parts) }

// TTL returns the lease duration.
func (b *Board) TTL() time.Duration { return b.ttl }

func leaseID(part, gen int) string { return fmt.Sprintf("p%d.g%d", part, gen) }

// parseLease resolves a lease ID against the board's current state: the
// partition index if the ID names the live generation, or false for
// malformed, unknown, and superseded IDs alike.
func (b *Board) parseLease(id string) (int, bool) {
	var part, gen int
	if n, err := fmt.Sscanf(id, "p%d.g%d", &part, &gen); n != 2 || err != nil {
		return 0, false
	}
	if part < 0 || part >= len(b.parts) {
		return 0, false
	}
	if b.parts[part].gen != gen {
		return 0, false
	}
	return part, true
}

// Acquire hands the worker its next unit of work. Priority order: a
// pending partition, then an expired lease (re-issue, generation bump),
// then a speculative steal of the longest-expiring straggler, else
// Wait/Drained.
func (b *Board) Acquire(worker string, now time.Time) (AcquireStatus, Lease) {
	// Pass 1: pending or expired work — a fresh generation either way.
	for i := range b.parts {
		p := &b.parts[i]
		switch {
		case p.state == statePending:
			p.state = stateLeased
		case p.state == stateLeased && !now.Before(p.expiry):
			b.reissues++
		default:
			continue
		}
		p.gen++
		p.holders = append(p.holders[:0], worker)
		p.expiry = now.Add(b.ttl)
		p.stolen = false
		return Granted, Lease{ID: leaseID(i, p.gen), Shard: Shard{Index: i, Count: len(b.parts)}, Expiry: p.expiry}
	}
	// Pass 2: steal — duplicate a live straggler lease for the idle
	// worker. Same generation: both copies may complete, merge dedups.
	steal := -1
	for i := range b.parts {
		p := &b.parts[i]
		if p.state != stateLeased || p.stolen || holds(p.holders, worker) {
			continue
		}
		if steal < 0 || p.expiry.Before(b.parts[steal].expiry) {
			steal = i
		}
	}
	if steal >= 0 {
		p := &b.parts[steal]
		p.stolen = true
		p.holders = append(p.holders, worker)
		b.steals++
		return Granted, Lease{ID: leaseID(steal, p.gen), Shard: Shard{Index: steal, Count: len(b.parts)}, Expiry: p.expiry, Stolen: true}
	}
	for i := range b.parts {
		if b.parts[i].state != stateDone {
			return Wait, Lease{}
		}
	}
	return Drained, Lease{}
}

func holds(holders []string, worker string) bool {
	for _, h := range holders {
		if h == worker {
			return true
		}
	}
	return false
}

// Renew extends a live lease's expiry. It returns false when the lease ID
// no longer names the current generation (expired and re-issued, or the
// partition completed) — the worker should abandon the partition.
func (b *Board) Renew(id string, now time.Time) bool {
	part, ok := b.parseLease(id)
	if !ok || b.parts[part].state != stateLeased {
		return false
	}
	// A lapsed-but-not-reissued lease revives here: no other worker was
	// granted the partition in between, so extending it is safe.
	b.parts[part].expiry = now.Add(b.ttl)
	return true
}

// Complete marks a lease's partition done. The first completion of a
// partition wins; later ones (a stolen duplicate, a re-issued lease's
// original holder resurfacing) return alreadyDone=true so the caller can
// verify the duplicate bytes instead of storing them. A lease ID from a
// superseded generation still completes its partition: the work is
// deterministic, so a stale worker's finished shard is as good as the
// live one's.
func (b *Board) Complete(id string) (part int, alreadyDone bool, err error) {
	var gen int
	if n, serr := fmt.Sscanf(id, "p%d.g%d", &part, &gen); n != 2 || serr != nil {
		return 0, false, fmt.Errorf("fabric: malformed lease id %q", id)
	}
	if part < 0 || part >= len(b.parts) {
		return 0, false, fmt.Errorf("fabric: lease id %q names partition %d of %d", id, part, len(b.parts))
	}
	if gen < 1 || gen > b.parts[part].gen {
		return 0, false, fmt.Errorf("fabric: lease id %q was never issued", id)
	}
	p := &b.parts[part]
	if p.state == stateDone {
		return part, true, nil
	}
	p.state = stateDone
	p.holders = nil
	return part, false, nil
}

// MarkDone pre-completes a partition — the coordinator calls this on
// restart for shards whose bytes it already persisted.
func (b *Board) MarkDone(part int) error {
	if part < 0 || part >= len(b.parts) {
		return fmt.Errorf("fabric: partition %d outside [0,%d)", part, len(b.parts))
	}
	b.parts[part].state = stateDone
	b.parts[part].holders = nil
	return nil
}

// Drained reports whether every partition is done.
func (b *Board) Drained() bool {
	for i := range b.parts {
		if b.parts[i].state != stateDone {
			return false
		}
	}
	return true
}

// Stats summarizes the board.
func (b *Board) Stats() BoardStats {
	s := BoardStats{Reissues: b.reissues, Steals: b.steals}
	for i := range b.parts {
		switch b.parts[i].state {
		case statePending:
			s.Pending++
		case stateLeased:
			s.Leased++
		case stateDone:
			s.Done++
		}
	}
	return s
}
