// Package fabric is the distributed sweep layer: it partitions the
// (experiment task, replica) space of a sweep deterministically across N
// worker processes, runs each partition as an independent shard writing
// its own resumable sim.Journal, and (through sim.MergeJournals) folds the
// shards back into one checkpoint stream byte-identical to a
// single-process run.
//
// The design leans entirely on the repo's determinism contract. A shard is
// a pure function of (sweep spec, shard index, shard count): every worker
// runs the identical experiment sequence, the partition function selects
// the replicas it computes, and the journal records them under content
// keys (sim.TaskKey). That makes coordination trivial — workers never
// exchange state, a dead worker's partition can be re-issued to any
// survivor, and speculative work stealing just produces duplicate lines
// the merge deduplicates, because duplicates are guaranteed identical.
//
// Two transports ship on top:
//
//   - file-based (zero coordination): `bitsweep -partition i/N -journal
//     shard-i.jsonl` per worker, then `bitsweep -join 'shard-*.jsonl'
//     -journal merged.jsonl` to merge and render;
//   - an HTTP coordinator: internal/serve exposes /v1/lease backed by
//     fabric.Board, and `bitspreadd -pull` workers lease partitions,
//     run RunShard, and upload the shard bytes.
package fabric

import (
	"context"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"bitspread/internal/experiments"
	"bitspread/internal/sim"
)

// Shard identifies one partition of the task space: index i of count N.
type Shard struct {
	Index int
	Count int
}

// ParseShard parses the CLI form "i/N".
func ParseShard(s string) (Shard, error) {
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("fabric: bad partition %q (want i/N, e.g. 0/4)", s)
	}
	idx, err1 := strconv.Atoi(strings.TrimSpace(i))
	cnt, err2 := strconv.Atoi(strings.TrimSpace(n))
	if err1 != nil || err2 != nil {
		return Shard{}, fmt.Errorf("fabric: bad partition %q (want i/N, e.g. 0/4)", s)
	}
	sh := Shard{Index: idx, Count: cnt}
	return sh, sh.Validate()
}

// Validate checks 0 <= Index < Count.
func (s Shard) Validate() error {
	if s.Count < 1 {
		return fmt.Errorf("fabric: partition count %d < 1", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("fabric: partition index %d outside [0,%d)", s.Index, s.Count)
	}
	return nil
}

// String renders the CLI form.
func (s Shard) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// Assign hashes a (task key, replica) pair to its owner-selection value.
// FNV-1a over the canonical "key:replica" string: cheap, stable across
// processes and architectures, and independent of replica count — adding
// replicas to a task never reshuffles the existing ones between workers,
// mirroring the journal's prefix-reuse property.
func Assign(key string, replica int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s:%d", key, replica)
	return h.Sum64()
}

// Owns reports whether the shard owns the pair.
func (s Shard) Owns(key string, replica int) bool {
	return Assign(key, replica)%uint64(s.Count) == uint64(s.Index)
}

// Partition returns the sim.PartitionFunc for this shard.
func (s Shard) Partition() sim.PartitionFunc {
	return func(key string, replica int) bool { return s.Owns(key, replica) }
}

// SweepSpec identifies a sweep's full task space — everything a worker
// needs to reproduce the exact experiment sequence of the render step.
// Two processes with equal specs enumerate identical tasks in identical
// order with identical seeds; that equality is what the merge proof
// stands on.
type SweepSpec struct {
	// Exps are the experiment IDs to run (nil/empty: all).
	Exps []string `json:"exps,omitempty"`
	// Seed drives all randomness, exactly bitsweep -seed.
	Seed uint64 `json:"seed"`
	// Quick selects the reduced experiment sizes, exactly bitsweep -quick.
	Quick bool `json:"quick,omitempty"`
	// SimWorkers bounds replica parallelism inside the shard process
	// (<= 0: GOMAXPROCS). Shard-internal scheduling never affects the
	// merged bytes: merge orders lines canonically.
	SimWorkers int `json:"sim_workers,omitempty"`
}

// Experiments resolves the spec's experiment selection.
func (s SweepSpec) Experiments() ([]experiments.Experiment, error) {
	if len(s.Exps) == 0 {
		return experiments.All(), nil
	}
	var out []experiments.Experiment
	for _, id := range s.Exps {
		e, ok := experiments.ByID(strings.TrimSpace(id))
		if !ok {
			return nil, fmt.Errorf("fabric: unknown experiment %q (known: %s)",
				id, strings.Join(experiments.IDs(), ", "))
		}
		out = append(out, e)
	}
	return out, nil
}

// ShardStats summarizes one RunShard call.
type ShardStats struct {
	// Checkpointed is the number of replicas in the shard journal at exit
	// (resumed entries included).
	Checkpointed int
	// Experiments is how many experiments the shard iterated.
	Experiments int
	// TolerableErrors counts experiment errors ignored because they are
	// expected on partial data (a fit or verdict computed over one shard's
	// replicas routinely fails); the shard's journal entries, the only
	// output that matters, are complete for every such experiment because
	// table-stage failures happen after the cells' simulations ran.
	TolerableErrors int
}

// RunShard executes one partition of the sweep: every selected experiment
// runs in order, but only the (task, replica) pairs the shard owns are
// computed and checkpointed into the journal at journalPath. With resume
// set, a partial shard journal from a killed worker is reused instead of
// recomputed — re-leasing a partition is cheap and, by determinism,
// byte-safe.
//
// Experiment-level errors are tolerated (logged, counted): a shard holds
// only a slice of each cell's replicas, so statistics stages can
// legitimately fail. Context cancellation and journal write failures are
// real errors and abort the shard.
func RunShard(ctx context.Context, spec SweepSpec, shard Shard, journalPath string, resume bool, logf func(string, ...any)) (ShardStats, error) {
	if err := shard.Validate(); err != nil {
		return ShardStats{}, err
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	exps, err := spec.Experiments()
	if err != nil {
		return ShardStats{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	journal, err := sim.OpenJournalOpts(journalPath, sim.JournalOptions{
		Resume:    resume,
		Logf:      logf,
		Partition: shard.Partition(),
	})
	if err != nil {
		return ShardStats{}, err
	}
	defer journal.Close()

	opts := experiments.Options{
		Seed:    spec.Seed,
		Workers: spec.SimWorkers,
		Quick:   spec.Quick,
		Ctx:     ctx,
		Journal: journal,
	}
	stats := ShardStats{}
	for _, e := range exps {
		if ctx.Err() != nil {
			return stats, ctx.Err()
		}
		stats.Experiments++
		if _, err := e.Run(opts); err != nil {
			if ctx.Err() != nil {
				return stats, ctx.Err()
			}
			if jerr := journal.Err(); jerr != nil {
				return stats, fmt.Errorf("fabric: shard %s: %w", shard, jerr)
			}
			stats.TolerableErrors++
			logf("fabric: shard %s: experiment %s failed on partial data (tolerated): %v", shard, e.ID, err)
		}
	}
	if jerr := journal.Err(); jerr != nil {
		return stats, fmt.Errorf("fabric: shard %s: %w", shard, jerr)
	}
	if err := journal.Close(); err != nil {
		return stats, fmt.Errorf("fabric: shard %s: closing journal: %w", shard, err)
	}
	stats.Checkpointed = journal.Len()
	return stats, nil
}
