package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %v, want %v", s.Std, math.Sqrt(2.5))
	}
	if s.Q25 != 2 || s.Q75 != 4 {
		t.Errorf("quartiles = %v, %v", s.Q25, s.Q75)
	}
}

func TestSummarizeEmptyAndSingle(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Std != 0 || s.Median != 7 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Summarize reordered the input")
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10, 20, 30}
	tests := []struct{ q, want float64 }{
		{0, 0}, {1, 30}, {0.5, 15}, {1.0 / 3, 10},
	}
	for _, tt := range tests {
		if got := Quantile(sorted, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	for _, bad := range []float64{-0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", bad)
				}
			}()
			Quantile(sorted, bad)
		}()
	}
}

func TestFitLinearExact(t *testing.T) {
	// y = 2 + 3x.
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{2, 5, 8, 11, 14}
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 1e-12 || math.Abs(fit.Intercept-2) > 1e-12 {
		t.Errorf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); !errors.Is(err, ErrTooFewPoints) {
		t.Errorf("short fit error = %v", err)
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := FitLinear([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestFitPowerExact(t *testing.T) {
	// y = 5 x^1.7.
	x := []float64{1, 2, 4, 8, 16}
	y := make([]float64, len(x))
	for i := range x {
		y[i] = 5 * math.Pow(x[i], 1.7)
	}
	fit, err := FitPower(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Exponent-1.7) > 1e-9 || math.Abs(fit.Coeff-5) > 1e-8 {
		t.Errorf("power fit = %+v", fit)
	}
}

func TestFitPowerRejectsNonPositive(t *testing.T) {
	if _, err := FitPower([]float64{1, 0}, []float64{1, 2}); err == nil {
		t.Error("zero x accepted")
	}
	if _, err := FitPower([]float64{1, 2}, []float64{1, -2}); err == nil {
		t.Error("negative y accepted")
	}
}

func TestFitLinearRecoversNoisyLine(t *testing.T) {
	// Deterministic "noise" with zero mean; slope should be recovered
	// closely.
	var x, y []float64
	for i := 0; i < 100; i++ {
		xi := float64(i)
		noise := 0.5 * math.Sin(float64(i)*1.7)
		x = append(x, xi)
		y = append(y, 1+0.5*xi+noise)
	}
	fit, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-0.5) > 0.01 {
		t.Errorf("slope = %v, want ~0.5", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range h.Counts {
		if c != 2 {
			t.Errorf("bin %d count = %d, want 2", i, c)
		}
	}
	if h.Lo != 0 || h.Hi != 9 {
		t.Errorf("range = [%v, %v]", h.Lo, h.Hi)
	}
	// All-equal values land in one bin.
	h, err = NewHistogram([]float64{5, 5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 3 {
		t.Errorf("degenerate histogram = %v", h.Counts)
	}
	if _, err := NewHistogram(nil, 0); err == nil {
		t.Error("0 bins accepted")
	}
}

func TestHistogramCountsPreservedQuick(t *testing.T) {
	f := func(raw []uint8, binsRaw uint8) bool {
		bins := int(binsRaw)%10 + 1
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		h, err := NewHistogram(xs, bins)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMeanInt64AndFloat64s(t *testing.T) {
	if got := MeanInt64([]int64{1, 2, 3}); got != 2 {
		t.Errorf("MeanInt64 = %v", got)
	}
	if got := MeanInt64(nil); got != 0 {
		t.Errorf("MeanInt64(nil) = %v", got)
	}
	fs := Float64s([]int64{4, 5})
	if len(fs) != 2 || fs[0] != 4 || fs[1] != 5 {
		t.Errorf("Float64s = %v", fs)
	}
}
