// Package stats provides the estimators the benchmark harness reports:
// summaries with quantiles, least-squares fits (notably log–log power-law
// fits for scaling-exponent estimation, the finite-n proxy for the paper's
// asymptotic statements), and simple histograms.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrTooFewPoints is returned by fits with fewer than two usable points.
var ErrTooFewPoints = errors.New("stats: need at least two points")

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max         float64
	Median, Q25, Q75 float64
	P90, P99         float64
}

// Summarize computes a Summary. An empty input yields the zero Summary.
// The input slice is not modified.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s := Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: Quantile(sorted, 0.5),
		Q25:    Quantile(sorted, 0.25),
		Q75:    Quantile(sorted, 0.75),
		P90:    Quantile(sorted, 0.90),
		P99:    Quantile(sorted, 0.99),
	}
	sum := 0.0
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range sorted {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Quantile returns the q-th quantile of an ascending-sorted sample using
// linear interpolation. It panics if q is outside [0, 1] or the sample is
// empty.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LinearFit is an ordinary-least-squares line y = Intercept + Slope·x.
type LinearFit struct {
	Slope, Intercept float64
	// R2 is the coefficient of determination in [0, 1].
	R2 float64
}

// FitLinear fits y = a + b·x by least squares.
func FitLinear(x, y []float64) (LinearFit, error) {
	if len(x) != len(y) {
		return LinearFit{}, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return LinearFit{}, ErrTooFewPoints
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	denom := n*sxx - sx*sx
	//bitlint:floatexact divide-by-zero guard; tiny nonzero variance still yields a finite (if noisy) fit
	if denom == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / denom
	intercept := (sy - slope*sx) / n

	meanY := sy / n
	var ssTot, ssRes float64
	for i := range x {
		pred := intercept + slope*x[i]
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// PowerFit is a power law y = Coeff · x^Exponent fitted in log–log space.
// The harness uses it to estimate convergence-time scaling exponents: the
// Theorem 1 prediction for constant ℓ is an exponent close to 1, the [15]
// prediction for ℓ = √(n log n) an exponent close to 0.
type PowerFit struct {
	Exponent, Coeff float64
	R2              float64
}

// FitPower fits y ≈ c·x^e through log–log least squares. All points must
// be strictly positive.
func FitPower(x, y []float64) (PowerFit, error) {
	if len(x) != len(y) {
		return PowerFit{}, fmt.Errorf("stats: length mismatch %d vs %d", len(x), len(y))
	}
	lx := make([]float64, 0, len(x))
	ly := make([]float64, 0, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			return PowerFit{}, fmt.Errorf("stats: FitPower needs positive data (point %d: %v, %v)", i, x[i], y[i])
		}
		lx = append(lx, math.Log(x[i]))
		ly = append(ly, math.Log(y[i]))
	}
	lin, err := FitLinear(lx, ly)
	if err != nil {
		return PowerFit{}, err
	}
	return PowerFit{
		Exponent: lin.Slope,
		Coeff:    math.Exp(lin.Intercept),
		R2:       lin.R2,
	}, nil
}

// Histogram is a fixed-width binning of a sample.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram bins xs into the given number of equal-width bins spanning
// [min, max]. Values at the upper edge land in the last bin.
func NewHistogram(xs []float64, bins int) (Histogram, error) {
	if bins < 1 {
		return Histogram{}, fmt.Errorf("stats: bins %d < 1", bins)
	}
	if len(xs) == 0 {
		return Histogram{Counts: make([]int, bins)}, nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	h := Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	width := (hi - lo) / float64(bins)
	for _, x := range xs {
		var b int
		if width > 0 {
			b = int((x - lo) / width)
		}
		if b >= bins {
			b = bins - 1
		}
		h.Counts[b]++
	}
	return h, nil
}

// MeanInt64 returns the mean of an int64 sample (0 for empty input).
func MeanInt64(xs []int64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}

// Float64s converts an int64 sample for the float-based estimators.
func Float64s(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
