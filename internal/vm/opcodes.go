package vm

import "fmt"

// Op is a single bytecode opcode. The instruction stream is a flat byte
// slice: one opcode byte, followed by that opcode's immediate operand
// (OperandBytes), big-endian. The set is deliberately tiny — every
// instruction is total (no traps beyond the typed resource errors), so
// any byte string that passes Program.Validate evaluates to *some*
// probability on every input, which is what makes random genomes and
// untrusted submissions safe to run.
type Op byte

const (
	// OpHalt stops execution; the value on top of the stack is the result.
	// Falling off the end of the code is an implicit OpHalt.
	OpHalt Op = 0x00
	// OpPushC pushes constant-pool entry imm (uint16 index).
	OpPushC Op = 0x01
	// OpPush0 pushes fixed-point 0.
	OpPush0 Op = 0x02
	// OpPush1 pushes fixed-point 1 (One).
	OpPush1 Op = 0x03
	// OpOwn pushes the agent's current opinion b as fixed-point 0 or 1.
	OpOwn Op = 0x04
	// OpFrac pushes the normalized observation k/ℓ as a fixed-point value
	// in [0, 1] (exact 128-bit division, floor rounding).
	OpFrac Op = 0x05
	// OpTbl pushes constant-pool entry b·(ℓ+1)+k: a direct table lookup.
	// The pool must hold at least 2(ℓ+1) entries (validated). This is the
	// opcode the Rule compiler emits, and it also puts plain probability
	// tables inside the evolutionary search space.
	OpTbl Op = 0x06

	// OpAdd … OpClamp01 are saturating Q2.61 fixed-point arithmetic.
	OpAdd     Op = 0x10
	OpSub     Op = 0x11
	OpMul     Op = 0x12
	OpDiv     Op = 0x13 // x/0 is defined as 0, keeping evaluation total
	OpNeg     Op = 0x14
	OpAbs     Op = 0x15
	OpMin     Op = 0x16
	OpMax     Op = 0x17
	OpClamp01 Op = 0x18 // clamp to [0, One]

	// OpLt/OpLe/OpEq pop b then a and push One when a<b / a<=b / a==b,
	// else 0. OpSelect pops cond, onZero, onNonzero and pushes onNonzero
	// when cond != 0, else onZero.
	OpLt     Op = 0x20
	OpLe     Op = 0x21
	OpEq     Op = 0x22
	OpSelect Op = 0x23

	// Stack manipulation.
	OpDup  Op = 0x30
	OpDrop Op = 0x31
	OpSwap Op = 0x32
	OpOver Op = 0x33

	// OpJmp/OpJnz jump by a signed 16-bit offset relative to the next
	// instruction. OpJnz pops the condition and jumps when it is nonzero.
	// Targets must land on an instruction boundary (or one past the end,
	// an implicit halt); loops are bounded by gas, never by trust.
	OpJmp Op = 0x40
	OpJnz Op = 0x41
)

// opInfo describes one opcode's static shape. A zero entry (empty name)
// means the byte is not a valid opcode.
type opInfo struct {
	name    string
	operand int // immediate size in bytes (0 or 2)
	pops    int
	pushes  int
	gas     int64
}

// ops is the opcode table, indexed by opcode byte.
var ops = [256]opInfo{
	OpHalt:    {"halt", 0, 0, 0, 1},
	OpPushC:   {"pushc", 2, 0, 1, 1},
	OpPush0:   {"push0", 0, 0, 1, 1},
	OpPush1:   {"push1", 0, 0, 1, 1},
	OpOwn:     {"own", 0, 0, 1, 1},
	OpFrac:    {"frac", 0, 0, 1, 1},
	OpTbl:     {"tbl", 0, 0, 1, 1},
	OpAdd:     {"fadd", 0, 2, 1, 1},
	OpSub:     {"fsub", 0, 2, 1, 1},
	OpMul:     {"fmul", 0, 2, 1, 2},
	OpDiv:     {"fdiv", 0, 2, 1, 4},
	OpNeg:     {"fneg", 0, 1, 1, 1},
	OpAbs:     {"fabs", 0, 1, 1, 1},
	OpMin:     {"fmin", 0, 2, 1, 1},
	OpMax:     {"fmax", 0, 2, 1, 1},
	OpClamp01: {"clamp01", 0, 1, 1, 1},
	OpLt:      {"flt", 0, 2, 1, 1},
	OpLe:      {"fle", 0, 2, 1, 1},
	OpEq:      {"feq", 0, 2, 1, 1},
	OpSelect:  {"select", 0, 3, 1, 1},
	OpDup:     {"dup", 0, 1, 2, 1},
	OpDrop:    {"drop", 0, 1, 0, 1},
	OpSwap:    {"swap", 0, 2, 2, 1},
	OpOver:    {"over", 0, 2, 3, 1},
	OpJmp:     {"jmp", 2, 0, 0, 1},
	OpJnz:     {"jnz", 2, 1, 0, 1},
}

// Opcodes lists every defined opcode in ascending byte order, for the
// assembler, the mutation operators, and the docs generator.
func Opcodes() []Op {
	out := make([]Op, 0, 32)
	for b := 0; b < 256; b++ {
		if ops[b].name != "" {
			out = append(out, Op(b))
		}
	}
	return out
}

// opByName resolves an assembler mnemonic; ok is false for unknown names.
func opByName(name string) (Op, bool) {
	for b := 0; b < 256; b++ {
		if ops[b].name == name {
			return Op(b), true
		}
	}
	return 0, false
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if ops[o].name != "" {
		return ops[o].name
	}
	return fmt.Sprintf("op(0x%02x)", byte(o))
}

// OperandBytes returns the size of the opcode's immediate operand.
func (o Op) OperandBytes() int {
	return ops[o].operand
}

// valid reports whether the byte is a defined opcode.
func (o Op) valid() bool {
	return ops[o].name != ""
}
