package vm_test

// Engine-level equivalence: every builtin rule, compiled to bytecode and
// materialized back, must produce byte-identical engine.Results and
// round trajectories to its native form — across all nine engine
// variants, three seeds, and a fault schedule touching every family.
// This is the acceptance bar for the VM's fixed-point story: Q2.61
// conversion moves no bits on any probability a builtin table contains.

import (
	"testing"

	"bitspread/internal/engine"
	"bitspread/internal/fault"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
	"bitspread/internal/vm"
)

func equivalenceSchedule(t *testing.T) *fault.Schedule {
	t.Helper()
	s, err := fault.New(
		fault.ResetAt(2, 0.5, 0),
		fault.StubbornFor(3, 2, 0.25, 1),
		fault.OmissionFor(6, 2, 0.5),
		fault.SourceCrashFor(9, 2),
		fault.ChurnAt(12, 0.25, 0.5),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func engineVariants() map[string]func(engine.Config, *rng.RNG) (engine.Result, error) {
	return map[string]func(engine.Config, *rng.RNG) (engine.Result, error){
		"count": engine.RunParallel,
		"sequential": func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
			return engine.RunSequential(cfg, g)
		},
		"literal": func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{Unpacked: true}, g)
		},
		"packed": func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{}, g)
		},
		"sharded": func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{Shards: 4, Unpacked: true}, g)
		},
		"sharded-packed": func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{Shards: 4}, g)
		},
		"chunked": func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{Chunked: true}, g)
		},
		"sharded-chunked": func(cfg engine.Config, g *rng.RNG) (engine.Result, error) {
			return engine.RunAgents(cfg, engine.AgentOptions{Chunked: true, Shards: 4}, g)
		},
		"aggregated": engine.RunAggregated,
	}
}

// compiledBuiltins pairs every builtin with its bytecode round-trip.
func compiledBuiltins(t *testing.T) []*protocol.Rule {
	t.Helper()
	return []*protocol.Rule{
		protocol.Voter(1),
		protocol.Voter(3),
		protocol.Minority(3),
		protocol.Majority(5),
		protocol.ThreeMajority(),
		protocol.TwoChoice(),
		protocol.AntiVoter(2),
		protocol.BiasedVoter(3, 0.125),
		protocol.Constant(2, 0.375),
		protocol.LazyVoter(3, 0.25),
		protocol.Follower(3, 2),
	}
}

// roundTrip compiles a rule to bytecode and materializes it back,
// asserting the tables come back bit-identical.
func roundTrip(t *testing.T, r *protocol.Rule) *protocol.Rule {
	t.Helper()
	prog, err := vm.Compile(r)
	if err != nil {
		t.Fatalf("Compile(%s): %v", r, err)
	}
	// Round the program through the wire encoding too, as the service does.
	decoded, err := vm.Decode(prog.Encode())
	if err != nil {
		t.Fatalf("Decode(Encode(%s)): %v", r, err)
	}
	back, err := decoded.Materialize(vm.EvalLimits{})
	if err != nil {
		t.Fatalf("Materialize(%s): %v", r, err)
	}
	wantG0, wantG1 := r.Tables()
	gotG0, gotG1 := back.Tables()
	for k := range wantG0 {
		//bitlint:floatexact the VM round-trip contract is bit-exact table reproduction
		if gotG0[k] != wantG0[k] || gotG1[k] != wantG1[k] {
			t.Fatalf("%s: table moved at k=%d: g0 %v->%v, g1 %v->%v",
				r, k, wantG0[k], gotG0[k], wantG1[k], gotG1[k])
		}
	}
	return back
}

func TestCompiledBuiltinsByteIdenticalAcrossEngines(t *testing.T) {
	sched := equivalenceSchedule(t)

	run := func(f func(engine.Config, *rng.RNG) (engine.Result, error),
		r *protocol.Rule, seed uint64) (engine.Result, []int64) {
		var traj []int64
		cfg := engine.Config{
			N:         256,
			Rule:      r,
			Z:         1,
			X0:        96,
			MaxRounds: 48,
			Faults:    sched,
			Record:    func(round, count int64) { traj = append(traj, count) },
		}
		res, err := f(cfg, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		return res, traj
	}

	for _, native := range compiledBuiltins(t) {
		compiled := roundTrip(t, native)
		t.Run(native.String(), func(t *testing.T) {
			for name, f := range engineVariants() {
				for _, seed := range []uint64{1, 0xDEADBEEF, 1 << 40} {
					resN, trajN := run(f, native, seed)
					resC, trajC := run(f, compiled, seed)
					if resN != resC {
						t.Fatalf("%s seed %#x: Results differ:\n  native:   %+v\n  compiled: %+v",
							name, seed, resN, resC)
					}
					if len(trajN) != len(trajC) {
						t.Fatalf("%s seed %#x: trajectory lengths differ: %d vs %d",
							name, seed, len(trajN), len(trajC))
					}
					for i := range trajN {
						if trajN[i] != trajC[i] {
							t.Fatalf("%s seed %#x: trajectories diverge at round %d: %d vs %d",
								name, seed, i+1, trajN[i], trajC[i])
						}
					}
					if resN.Rounds == 0 || len(trajN) == 0 {
						t.Fatalf("%s seed %#x: degenerate run proves nothing", name, seed)
					}
				}
			}
		})
	}
}

// TestHandAssembledVoterMatchesBuiltin closes the loop from source text:
// a Voter written in assembly (frac; halt — no table) materializes to the
// builtin's exact tables.
func TestHandAssembledVoterMatchesBuiltin(t *testing.T) {
	prog, err := vm.Assemble("name Voter\nell 3\nfrac\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	r, err := prog.Materialize(vm.EvalLimits{})
	if err != nil {
		t.Fatal(err)
	}
	wantG0, wantG1 := protocol.Voter(3).Tables()
	gotG0, gotG1 := r.Tables()
	for k := range wantG0 {
		//bitlint:floatexact k/ℓ for ℓ=3 is exact in both Q2.61 and float64's nearest-rounding, bit for bit
		if gotG0[k] != wantG0[k] || gotG1[k] != wantG1[k] {
			t.Fatalf("k=%d: %v/%v vs builtin %v/%v", k, gotG0[k], gotG1[k], wantG0[k], wantG1[k])
		}
	}
}
