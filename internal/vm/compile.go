package vm

import (
	"errors"
	"fmt"

	"bitspread/internal/protocol"
)

// ErrNotRepresentable is returned by Compile when a rule's table holds a
// probability that is not exact in Q2.61 fixed point. Every builtin and
// every float64 probability that is 0 or at least 2⁻⁹ is exact; only
// sub-2⁻⁹ values with long significands are not.
var ErrNotRepresentable = errors.New("vm: probability not representable in Q2.61 fixed point")

// Compile lowers a protocol.Rule to bytecode: the two probability tables
// become the constant pool (g^[0] then g^[1], each ℓ+1 entries) and the
// program body is a single table lookup. Compilation is refused unless
// every entry converts to fixed point exactly, so that Materialize
// reproduces the original float64 tables bit for bit — this is what
// makes a compiled builtin's engine.Results byte-identical to its
// native form.
func Compile(r *protocol.Rule) (*Program, error) {
	ell := r.SampleSize()
	if ell > MaxEll {
		return nil, fmt.Errorf("%w (ℓ=%d)", ErrEll, ell)
	}
	g0, g1 := r.Tables()
	pool := make([]int64, 0, 2*(ell+1))
	for b, tbl := range [][]float64{g0, g1} {
		for k, p := range tbl {
			v, exact := FromFloat(p)
			if !exact {
				return nil, fmt.Errorf("%w (g%d(%d) = %v)", ErrNotRepresentable, b, k, p)
			}
			pool = append(pool, v)
		}
	}
	p := &Program{
		Name: r.Name(),
		Ell:  ell,
		Code: []byte{byte(OpTbl), byte(OpHalt)},
		Pool: pool,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Materialize evaluates the program on every input cell (b, k), clamps
// each result into [0, 1], and returns the rule as an ordinary table
// the engines can run at native speed. The program must validate; any
// evaluation error (gas, stack) aborts materialization, so a program
// that materializes can never stall an engine round.
func (p *Program) Materialize(lim EvalLimits) (*protocol.Rule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g0 := make([]float64, p.Ell+1)
	g1 := make([]float64, p.Ell+1)
	for b, tbl := range [][]float64{g0, g1} {
		for k := range tbl {
			v, err := p.Eval(b, k, lim)
			if err != nil {
				return nil, fmt.Errorf("vm: materialize g%d(%d): %w", b, k, err)
			}
			tbl[k] = ToFloat(clamp01(v))
		}
	}
	name := p.Name
	if name == "" {
		name = "vm:" + p.Address()
	}
	return protocol.New(name, p.Ell, g0, g1)
}
