package vm

import (
	"math"
	"math/bits"
)

// The VM computes in Q2.61 signed fixed point: value = raw / 2^61. The
// representable range is (-4, 4), probabilities live in [0, One], and
// all arithmetic is saturating integer arithmetic — bit-identical on
// every platform, which is the whole point: no FMA contraction, no x87
// extended precision, no libm variance can leak into an evolved rule's
// fitness or a service-accepted protocol's table.
//
// 61 fractional bits are chosen so that conversion to and from float64
// is *exact* on the values rule tables actually contain: any float64
// probability p with p = 0 or p ≥ 2⁻⁹ (and every dyadic below that)
// satisfies p·2⁶¹ ∈ ℤ, because a 53-bit significand with binary
// exponent ≥ -9 has its lowest set bit at ≥ 2⁻⁶¹. That is what lets a
// compiled builtin round-trip to bytecode and back without moving a
// single result bit in any engine.
const (
	fracBits = 61
	// One is the fixed-point representation of 1.0.
	One int64 = 1 << fracBits
)

// satAdd returns a+b with int64 saturation.
func satAdd(a, b int64) int64 {
	s := a + b
	// Overflow iff operands share a sign and the sum flipped it.
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
		if a >= 0 {
			return math.MaxInt64
		}
		return math.MinInt64
	}
	return s
}

// satNeg returns -a, saturating MinInt64 to MaxInt64.
func satNeg(a int64) int64 {
	if a == math.MinInt64 {
		return math.MaxInt64
	}
	return -a
}

// absU64 returns |a| as a uint64 (total, including MinInt64).
func absU64(a int64) uint64 {
	if a < 0 {
		return -uint64(a)
	}
	return uint64(a)
}

// fixMul returns (a·b)/2⁶¹ with saturation, via 128-bit arithmetic.
func fixMul(a, b int64) int64 {
	neg := (a < 0) != (b < 0)
	hi, lo := bits.Mul64(absU64(a), absU64(b))
	if hi>>fracBits != 0 {
		// The shifted product does not fit in 64 bits.
		return satSigned(neg, math.MaxUint64)
	}
	return satSigned(neg, hi<<(64-fracBits)|lo>>fracBits)
}

// fixDiv returns (a·2⁶¹)/b with saturation; division by zero is defined
// as 0 so evaluation is total.
func fixDiv(a, b int64) int64 {
	if b == 0 {
		return 0
	}
	neg := (a < 0) != (b < 0)
	ua, ub := absU64(a), absU64(b)
	hi, lo := ua>>(64-fracBits), ua<<fracBits
	if hi >= ub {
		// Quotient exceeds 64 bits.
		return satSigned(neg, math.MaxUint64)
	}
	q, _ := bits.Div64(hi, lo, ub)
	return satSigned(neg, q)
}

// satSigned clamps an unsigned magnitude into int64 with the given sign.
func satSigned(neg bool, mag uint64) int64 {
	if neg {
		if mag > 1<<63 {
			return math.MinInt64
		}
		return -int64(mag)
	}
	if mag > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(mag)
}

// clamp01 clamps a fixed-point value into [0, One].
func clamp01(v int64) int64 {
	if v < 0 {
		return 0
	}
	if v > One {
		return One
	}
	return v
}

// frac returns k/ℓ in fixed point (floor rounding, exact 128-bit
// division). Callers guarantee 0 ≤ k ≤ ℓ and ℓ ≥ 1.
func frac(k, ell int) int64 {
	hi, lo := uint64(k)>>(64-fracBits), uint64(k)<<fracBits
	q, _ := bits.Div64(hi, lo, uint64(ell))
	return int64(q)
}

// ToFloat converts a fixed-point value to the nearest float64. The
// conversion is exact whenever the raw value has at most 53 significant
// bits — in particular on every value FromFloat accepts.
func ToFloat(v int64) float64 {
	return float64(v) / float64(One)
}

// FromFloat converts a float64 to fixed point. exact is false when p is
// not representable (NaN, out of (-4, 4), or needing more than 61
// fractional bits); the returned value is then the nearest representable
// one (round to nearest, ties to even).
func FromFloat(p float64) (v int64, exact bool) {
	if p != p { // NaN
		return 0, false
	}
	scaled := math.Ldexp(p, fracBits)
	if scaled >= math.MaxInt64 {
		return math.MaxInt64, false
	}
	if scaled <= math.MinInt64 {
		return math.MinInt64, false
	}
	r := math.RoundToEven(scaled)
	//bitlint:floatexact Ldexp only shifts the exponent, so scaled is unrounded iff p had ≤61 fractional bits — an exact comparison is the test itself
	return int64(r), r == scaled
}

// Quantize rounds p to the nearest fixed-point-representable probability
// in [0, 1]. It is the projection FuzzVMEquivalence and the evolutionary
// mutators use to keep float inputs on the VM's exact grid.
func Quantize(p float64) float64 {
	v, _ := FromFloat(p)
	return ToFloat(clamp01(v))
}
