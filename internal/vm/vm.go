// Package vm is a tiny deterministic, gas-metered stack bytecode VM for
// memory-less decision rules g^[b](k): a program maps an agent's current
// opinion b and its observation k (ones among ℓ samples) to an
// adopt-1 probability. Arithmetic is saturating Q2.61 fixed point —
// integer-only, so evaluation is bit-identical on every platform — and
// every run is bounded by hard gas, stack, and code-size limits, which
// is what makes untrusted, user-submitted, or randomly evolved rules
// safe to execute inside an engine round.
//
// A program is evaluated once per (b, k) cell by Materialize, which
// produces an ordinary *protocol.Rule; the engines never interpret
// bytecode on a hot path. Compile is the inverse: it lowers any
// fixed-point-representable Rule table to a two-instruction program
// (OpTbl + OpHalt with the table as the constant pool), and the
// round-trip moves no bits — compiled builtins produce byte-identical
// engine.Results to their native forms across every engine variant.
package vm

import (
	"errors"
	"fmt"
)

// Hard resource limits (Program.Validate enforces the static ones,
// EvalLimits the dynamic ones).
const (
	// MaxCodeBytes bounds the instruction stream.
	MaxCodeBytes = 4096
	// MaxPoolEntries bounds the constant pool.
	MaxPoolEntries = 2048
	// MaxEll bounds the sample size a program may declare. Beyond ~2⁹ the
	// fixed-point grid can no longer represent k/ℓ-style table entries
	// exactly, so this is a representability bound, not just a cost bound.
	MaxEll = 512
	// MaxNameLen bounds the display name (serving metadata, excluded from
	// the content address).
	MaxNameLen = 128
	// DefaultGas is the per-evaluation gas budget: generous for any
	// honest decision rule, fatal for runaway loops.
	DefaultGas = 4096
	// DefaultMaxStack bounds the operand stack depth.
	DefaultMaxStack = 64
)

// Typed errors. Validation errors describe a rejected program; Eval
// errors describe an exhausted resource — a program that validates can
// only fail with one of the Err* evaluation errors, never hang.
var (
	ErrEll        = errors.New("vm: sample size outside [1, MaxEll]")
	ErrCodeSize   = errors.New("vm: code size outside [1, MaxCodeBytes]")
	ErrPoolSize   = errors.New("vm: constant pool exceeds MaxPoolEntries")
	ErrBadOpcode  = errors.New("vm: undefined opcode")
	ErrTruncated  = errors.New("vm: truncated immediate operand")
	ErrPoolIndex  = errors.New("vm: constant index outside pool")
	ErrBadJump    = errors.New("vm: jump target not an instruction boundary")
	ErrTblPool    = errors.New("vm: tbl needs a pool with at least 2(ℓ+1) entries")
	ErrName       = errors.New("vm: name exceeds MaxNameLen")
	ErrGas        = errors.New("vm: gas exhausted")
	ErrStackOver  = errors.New("vm: stack overflow")
	ErrStackUnder = errors.New("vm: stack underflow")
	ErrNoResult   = errors.New("vm: halt with empty stack")
	ErrInput      = errors.New("vm: evaluation input outside domain")
)

// Program is one decision rule in bytecode form: an instruction stream,
// a constant pool of fixed-point values, and the sample size ℓ the rule
// is defined for. Name is display metadata; it is carried by Encode but
// excluded from the content Address.
type Program struct {
	Name string
	Ell  int
	Code []byte
	Pool []int64
}

// Validate checks every static safety property: size limits, opcode
// definedness, immediate completeness, pool indices, jump alignment,
// and the OpTbl pool requirement. A validated program cannot fault at
// evaluation time — it can only exhaust gas or stack, both typed errors.
func (p *Program) Validate() error {
	if p.Ell < 1 || p.Ell > MaxEll {
		return fmt.Errorf("%w (ℓ=%d)", ErrEll, p.Ell)
	}
	if len(p.Name) > MaxNameLen {
		return fmt.Errorf("%w (%d bytes)", ErrName, len(p.Name))
	}
	if len(p.Code) < 1 || len(p.Code) > MaxCodeBytes {
		return fmt.Errorf("%w (%d bytes)", ErrCodeSize, len(p.Code))
	}
	if len(p.Pool) > MaxPoolEntries {
		return fmt.Errorf("%w (%d entries)", ErrPoolSize, len(p.Pool))
	}
	boundary := make([]bool, len(p.Code)+1)
	type jump struct{ next, target int }
	var jumps []jump
	for pc := 0; pc < len(p.Code); {
		boundary[pc] = true
		op := Op(p.Code[pc])
		if !op.valid() {
			return fmt.Errorf("%w (0x%02x at %d)", ErrBadOpcode, byte(op), pc)
		}
		next := pc + 1 + op.OperandBytes()
		if next > len(p.Code) {
			return fmt.Errorf("%w (%s at %d)", ErrTruncated, op, pc)
		}
		switch op {
		case OpPushC:
			idx := int(p.Code[pc+1])<<8 | int(p.Code[pc+2])
			if idx >= len(p.Pool) {
				return fmt.Errorf("%w (pushc %d, pool %d, at %d)", ErrPoolIndex, idx, len(p.Pool), pc)
			}
		case OpTbl:
			if len(p.Pool) < 2*(p.Ell+1) {
				return fmt.Errorf("%w (ℓ=%d, pool %d)", ErrTblPool, p.Ell, len(p.Pool))
			}
		case OpJmp, OpJnz:
			off := int(int16(uint16(p.Code[pc+1])<<8 | uint16(p.Code[pc+2])))
			jumps = append(jumps, jump{next: next, target: next + off})
		}
		pc = next
	}
	boundary[len(p.Code)] = true // one past the end: implicit halt
	for _, j := range jumps {
		if j.target < 0 || j.target > len(p.Code) || !boundary[j.target] {
			return fmt.Errorf("%w (from %d to %d)", ErrBadJump, j.next, j.target)
		}
	}
	return nil
}

// EvalLimits bounds one evaluation. The zero value means the defaults.
type EvalLimits struct {
	// Gas is the instruction budget (DefaultGas when <= 0).
	Gas int64
	// MaxStack is the operand stack bound (DefaultMaxStack when <= 0).
	MaxStack int
}

func (l EvalLimits) gas() int64 {
	if l.Gas <= 0 {
		return DefaultGas
	}
	return l.Gas
}

func (l EvalLimits) stack() int {
	if l.MaxStack <= 0 {
		return DefaultMaxStack
	}
	return l.MaxStack
}

// Eval runs the program on one input cell (b, k) and returns the raw
// fixed-point result (callers clamp to [0, One] for a probability; see
// Materialize). The program must have passed Validate; Eval re-checks
// nothing static. Evaluation is a pure function of (program, b, k) —
// no clocks, no randomness, no floats.
func (p *Program) Eval(b, k int, lim EvalLimits) (int64, error) {
	if b < 0 || b > 1 || k < 0 || k > p.Ell {
		return 0, fmt.Errorf("%w (b=%d, k=%d, ℓ=%d)", ErrInput, b, k, p.Ell)
	}
	gas := lim.gas()
	maxStack := lim.stack()
	stack := make([]int64, 0, 16)

	pop := func() (int64, bool) {
		if len(stack) == 0 {
			return 0, false
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		return v, true
	}

	for pc := 0; ; {
		if pc >= len(p.Code) {
			break // implicit halt
		}
		op := Op(p.Code[pc])
		info := ops[op]
		gas -= info.gas
		if gas < 0 {
			return 0, fmt.Errorf("%w (limit %d)", ErrGas, lim.gas())
		}
		if len(stack) < info.pops {
			return 0, fmt.Errorf("%w (%s at %d wants %d operands, stack has %d)",
				ErrStackUnder, op, pc, info.pops, len(stack))
		}
		if len(stack)-info.pops+info.pushes > maxStack {
			return 0, fmt.Errorf("%w (%s at %d, limit %d)", ErrStackOver, op, pc, maxStack)
		}
		next := pc + 1 + info.operand

		switch op {
		case OpHalt:
			pc = len(p.Code)
			continue
		case OpPushC:
			idx := int(p.Code[pc+1])<<8 | int(p.Code[pc+2])
			stack = append(stack, p.Pool[idx])
		case OpPush0:
			stack = append(stack, 0)
		case OpPush1:
			stack = append(stack, One)
		case OpOwn:
			stack = append(stack, int64(b)*One)
		case OpFrac:
			stack = append(stack, frac(k, p.Ell))
		case OpTbl:
			stack = append(stack, p.Pool[b*(p.Ell+1)+k])
		case OpAdd:
			y, _ := pop()
			x, _ := pop()
			stack = append(stack, satAdd(x, y))
		case OpSub:
			y, _ := pop()
			x, _ := pop()
			stack = append(stack, satAdd(x, satNeg(y)))
		case OpMul:
			y, _ := pop()
			x, _ := pop()
			stack = append(stack, fixMul(x, y))
		case OpDiv:
			y, _ := pop()
			x, _ := pop()
			stack = append(stack, fixDiv(x, y))
		case OpNeg:
			x, _ := pop()
			stack = append(stack, satNeg(x))
		case OpAbs:
			x, _ := pop()
			if x < 0 {
				x = satNeg(x)
			}
			stack = append(stack, x)
		case OpMin:
			y, _ := pop()
			x, _ := pop()
			if y < x {
				x = y
			}
			stack = append(stack, x)
		case OpMax:
			y, _ := pop()
			x, _ := pop()
			if y > x {
				x = y
			}
			stack = append(stack, x)
		case OpClamp01:
			x, _ := pop()
			stack = append(stack, clamp01(x))
		case OpLt, OpLe, OpEq:
			y, _ := pop()
			x, _ := pop()
			hit := (op == OpLt && x < y) || (op == OpLe && x <= y) || (op == OpEq && x == y)
			if hit {
				stack = append(stack, One)
			} else {
				stack = append(stack, 0)
			}
		case OpSelect:
			cond, _ := pop()
			onZero, _ := pop()
			onNonzero, _ := pop()
			if cond != 0 {
				stack = append(stack, onNonzero)
			} else {
				stack = append(stack, onZero)
			}
		case OpDup:
			x := stack[len(stack)-1]
			stack = append(stack, x)
		case OpDrop:
			_, _ = pop()
		case OpSwap:
			n := len(stack)
			stack[n-1], stack[n-2] = stack[n-2], stack[n-1]
		case OpOver:
			stack = append(stack, stack[len(stack)-2])
		case OpJmp:
			off := int(int16(uint16(p.Code[pc+1])<<8 | uint16(p.Code[pc+2])))
			pc = next + off
			continue
		case OpJnz:
			cond, _ := pop()
			if cond != 0 {
				off := int(int16(uint16(p.Code[pc+1])<<8 | uint16(p.Code[pc+2])))
				pc = next + off
				continue
			}
		}
		pc = next
	}
	if len(stack) == 0 {
		return 0, ErrNoResult
	}
	return stack[len(stack)-1], nil
}
