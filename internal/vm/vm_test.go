package vm

import (
	"errors"
	"math"
	"testing"
)

// evalOK evaluates with default limits and fails the test on error.
func evalOK(t *testing.T, p *Program, b, k int) int64 {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	v, err := p.Eval(b, k, EvalLimits{})
	if err != nil {
		t.Fatalf("Eval(b=%d,k=%d): %v", b, k, err)
	}
	return v
}

func asm(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func TestFixedPointRoundTrip(t *testing.T) {
	// Every probability a builtin table can contain must convert exactly.
	cases := []float64{0, 1, 0.5, 0.25, 1.0 / 3, 2.0 / 3, 0.1, 1.0 / 512, 0.3333333333333333}
	for _, p := range cases {
		v, exact := FromFloat(p)
		if !exact {
			t.Errorf("FromFloat(%v) not exact", p)
		}
		//bitlint:floatexact the round-trip contract is bit-exactness itself
		if back := ToFloat(v); back != p {
			t.Errorf("round trip %v -> %d -> %v", p, v, back)
		}
	}
	// A tiny non-dyadic value below 2⁻⁹ genuinely needs more than 61
	// fractional bits.
	if _, exact := FromFloat(1.0 / 3 * math.Ldexp(1, -55)); exact {
		t.Error("sub-2⁻⁹ non-dyadic reported exact")
	}
	if _, exact := FromFloat(math.NaN()); exact {
		t.Error("NaN reported exact")
	}
	if v, _ := FromFloat(math.Inf(1)); v != math.MaxInt64 {
		t.Errorf("+Inf saturates to %d", v)
	}
	if got := Quantize(2.5); got != 1 {
		t.Errorf("Quantize(2.5) = %v, want clamp to 1", got)
	}
}

func TestFixedArithmeticSaturatesAndIsTotal(t *testing.T) {
	if got := fixMul(One/2, One/2); got != One/4 {
		t.Errorf("0.5*0.5 = %v", ToFloat(got))
	}
	if got := fixDiv(One, 3*One); got != frac(1, 3) {
		t.Errorf("1/3 mismatch: %d vs %d", got, frac(1, 3))
	}
	if got := fixDiv(One, 0); got != 0 {
		t.Errorf("x/0 = %d, want 0", got)
	}
	if got := fixMul(math.MaxInt64, math.MaxInt64); got != math.MaxInt64 {
		t.Errorf("max*max = %d, want saturation", got)
	}
	if got := fixMul(math.MinInt64, math.MaxInt64); got != math.MinInt64 {
		t.Errorf("min*max = %d, want saturation", got)
	}
	if got := fixDiv(math.MaxInt64, 1); got != math.MaxInt64 {
		t.Errorf("max / tiny = %d, want saturation", got)
	}
	if got := satAdd(math.MaxInt64, One); got != math.MaxInt64 {
		t.Errorf("satAdd overflow = %d", got)
	}
	if got := satAdd(math.MinInt64, -One); got != math.MinInt64 {
		t.Errorf("satAdd underflow = %d", got)
	}
	if got := satNeg(math.MinInt64); got != math.MaxInt64 {
		t.Errorf("satNeg(MinInt64) = %d", got)
	}
}

func TestEvalOpcodeSemantics(t *testing.T) {
	// frac pushes k/ℓ; own pushes b.
	p := asm(t, "ell 4\nfrac\nhalt")
	if got := evalOK(t, p, 0, 3); got != frac(3, 4) {
		t.Errorf("frac: %d", got)
	}
	p = asm(t, "ell 1\nown\nhalt")
	if got := evalOK(t, p, 1, 0); got != One {
		t.Errorf("own: %d", got)
	}
	// Arithmetic: (1 - k/ℓ) is the AntiVoter body.
	p = asm(t, "ell 2\npush1\nfrac\nfsub\nhalt")
	if got := evalOK(t, p, 0, 1); got != One-frac(1, 2) {
		t.Errorf("1 - 1/2 = %d", got)
	}
	// Comparisons and select: majority via (ℓ/2 < k).
	p = asm(t, `ell 3
const 0.5
pushc 0
frac
flt        ; 0.5 < k/ℓ
halt`)
	if got := evalOK(t, p, 0, 2); got != One {
		t.Errorf("flt true: %d", got)
	}
	if got := evalOK(t, p, 0, 1); got != 0 {
		t.Errorf("flt false: %d", got)
	}
	p = asm(t, "ell 1\npush0\npush1\nown\nselect\nhalt")
	if got := evalOK(t, p, 1, 0); got != 0 {
		t.Errorf("select nonzero picked %d, want onNonzero=0", got)
	}
	if got := evalOK(t, p, 0, 0); got != One {
		t.Errorf("select zero picked %d, want onZero=One", got)
	}
	// Stack ops.
	p = asm(t, "ell 1\npush0\npush1\nswap\ndrop\nhalt")
	if got := evalOK(t, p, 0, 0); got != One {
		t.Errorf("swap/drop: %d", got)
	}
	p = asm(t, "ell 1\npush1\npush0\nover\nhalt")
	if got := evalOK(t, p, 0, 0); got != One {
		t.Errorf("over: %d", got)
	}
	// tbl indexes pool[b(ℓ+1)+k].
	p = asm(t, "ell 1\nconst 0\nconst 0.25\nconst 0.75\nconst 1\ntbl\nhalt")
	want := [][]int64{{0, One / 4}, {3 * One / 4, One}}
	for b := 0; b <= 1; b++ {
		for k := 0; k <= 1; k++ {
			if got := evalOK(t, p, b, k); got != want[b][k] {
				t.Errorf("tbl(%d,%d) = %d, want %d", b, k, got, want[b][k])
			}
		}
	}
	// Conditional jump: jnz taken and not taken.
	p = asm(t, `ell 1
own
jnz one
push0
halt
one:
push1
halt`)
	if got := evalOK(t, p, 1, 0); got != One {
		t.Errorf("jnz taken: %d", got)
	}
	if got := evalOK(t, p, 0, 0); got != 0 {
		t.Errorf("jnz fallthrough: %d", got)
	}
	// clamp01 on an out-of-range sum.
	p = asm(t, "ell 1\npush1\npush1\nfadd\nclamp01\nhalt")
	if got := evalOK(t, p, 0, 0); got != One {
		t.Errorf("clamp01: %d", got)
	}
}

func TestEvalGasExhaustionIsTypedNotHang(t *testing.T) {
	// An unconditional self-loop must terminate with ErrGas — this is the
	// property that lets the service run untrusted bytecode inside a job.
	p := asm(t, "ell 1\nloop:\njmp loop")
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	_, err := p.Eval(0, 0, EvalLimits{})
	if !errors.Is(err, ErrGas) {
		t.Fatalf("self-loop error = %v, want ErrGas", err)
	}
	_, err = p.Eval(0, 0, EvalLimits{Gas: 7})
	if !errors.Is(err, ErrGas) {
		t.Fatalf("tiny budget error = %v, want ErrGas", err)
	}
	// A bounded loop under the same budget still completes.
	bounded := asm(t, `ell 1
push1       ; counter = 1
again:
push0
fadd        ; burn gas without changing the counter
dup
jnz done
jmp again
done:
halt`)
	if got := evalOK(t, bounded, 0, 0); got != One {
		t.Errorf("bounded loop result %d", got)
	}
}

func TestEvalStackLimits(t *testing.T) {
	p := asm(t, "ell 1\nloop:\npush1\njmp loop")
	_, err := p.Eval(0, 0, EvalLimits{Gas: 1 << 20})
	if !errors.Is(err, ErrStackOver) {
		t.Fatalf("push loop error = %v, want ErrStackOver", err)
	}
	under := &Program{Ell: 1, Code: []byte{byte(OpAdd)}}
	if err := under.Validate(); err != nil {
		t.Fatal(err)
	}
	_, err = under.Eval(0, 0, EvalLimits{})
	if !errors.Is(err, ErrStackUnder) {
		t.Fatalf("empty-stack add error = %v, want ErrStackUnder", err)
	}
	empty := &Program{Ell: 1, Code: []byte{byte(OpHalt)}}
	_, err = empty.Eval(0, 0, EvalLimits{})
	if !errors.Is(err, ErrNoResult) {
		t.Fatalf("halt-with-empty-stack error = %v, want ErrNoResult", err)
	}
	_, err = empty.Eval(2, 0, EvalLimits{})
	if !errors.Is(err, ErrInput) {
		t.Fatalf("bad opinion error = %v, want ErrInput", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		p    Program
		want error
	}{
		{"ell zero", Program{Ell: 0, Code: []byte{byte(OpHalt)}}, ErrEll},
		{"ell huge", Program{Ell: MaxEll + 1, Code: []byte{byte(OpHalt)}}, ErrEll},
		{"empty code", Program{Ell: 1}, ErrCodeSize},
		{"code huge", Program{Ell: 1, Code: make([]byte, MaxCodeBytes+1)}, ErrCodeSize},
		{"pool huge", Program{Ell: 1, Code: []byte{byte(OpHalt)}, Pool: make([]int64, MaxPoolEntries+1)}, ErrPoolSize},
		{"bad opcode", Program{Ell: 1, Code: []byte{0xff}}, ErrBadOpcode},
		{"truncated imm", Program{Ell: 1, Code: []byte{byte(OpPushC), 0}}, ErrTruncated},
		{"pool index", Program{Ell: 1, Code: []byte{byte(OpPushC), 0, 0, byte(OpHalt)}}, ErrPoolIndex},
		{"tbl pool short", Program{Ell: 1, Code: []byte{byte(OpTbl)}, Pool: []int64{0, 0, 0}}, ErrTblPool},
		{"jump out of range", Program{Ell: 1, Code: []byte{byte(OpJmp), 0, 10}}, ErrBadJump},
		{"jump into immediate", Program{Ell: 1, Code: []byte{byte(OpJmp), 0, 1, byte(OpJmp), 0xff, 0xfb}}, ErrBadJump},
		{"name huge", Program{Name: string(make([]byte, MaxNameLen+1)), Ell: 1, Code: []byte{byte(OpHalt)}}, ErrName},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate = %v, want %v", err, tc.want)
			}
		})
	}
	// Jump one past the end is a legal implicit halt.
	end := Program{Ell: 1, Code: []byte{byte(OpPush1), byte(OpJmp), 0, 0}}
	if err := end.Validate(); err != nil {
		t.Fatalf("jump-to-end should validate: %v", err)
	}
	if got := evalOK(t, &end, 0, 0); got != One {
		t.Fatalf("jump-to-end result %d", got)
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := `name demo
ell 3
const 0
const 0.5
const 1
own
jnz keep
pushc 1
frac
fmul
clamp01
halt
keep:
push1
halt`
	p := asm(t, src)
	text, err := p.Disassemble()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble:\n%s\n%v", text, err)
	}
	if string(p.Encode()) != string(p2.Encode()) {
		t.Fatalf("round trip changed the program:\n%s", text)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"ell 1\nbogus",             // unknown mnemonic
		"ell 1\njmp nowhere",       // undefined label
		"ell 1\nconst nope\nhalt",  // bad constant
		"ell 1\nconst 1e-30\nhalt", // not representable
		"halt",                     // missing ell
		"ell 1\nx:\nx:\nhalt",      // duplicate label
		"ell 1\npushc 70000\nhalt", // pool index out of u16
		"ell 1\npushc\nhalt",       // missing operand
		"ell 1\nhalt extra",        // surplus operand
		"ell one\nhalt",            // bad ell
		"ell 1\n: \nhalt",          // malformed label
	}
	for _, src := range cases {
		if _, err := Assemble(src); !errors.Is(err, ErrAsm) && !errors.Is(err, ErrNotRepresentable) {
			t.Errorf("Assemble(%q) = %v, want assembly error", src, err)
		}
	}
}

func TestEncodeDecodeRoundTripAndAddress(t *testing.T) {
	p := asm(t, "name x\nell 2\nconst 0.5\npushc 0\nhalt")
	blob := p.Encode()
	p2, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if string(p2.Encode()) != string(blob) {
		t.Fatal("decode/encode not the identity")
	}
	if p2.Name != "x" || p2.Ell != 2 {
		t.Fatalf("decoded header %q/%d", p2.Name, p2.Ell)
	}
	// The address ignores the display name but sees semantics.
	q := asm(t, "name y\nell 2\nconst 0.5\npushc 0\nhalt")
	if p.Address() != q.Address() {
		t.Error("rename changed the content address")
	}
	r := asm(t, "name x\nell 2\nconst 0.25\npushc 0\nhalt")
	if p.Address() == r.Address() {
		t.Error("different pool, same content address")
	}
	for _, cut := range []int{0, 3, len(blob) - 1} {
		if _, err := Decode(blob[:cut]); err == nil {
			t.Errorf("Decode(blob[:%d]) accepted truncated input", cut)
		}
	}
	if _, err := Decode(append(append([]byte(nil), blob...), 0)); err == nil {
		t.Error("Decode accepted trailing garbage")
	}
}
