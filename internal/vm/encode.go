package vm

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// Binary program encoding:
//
//	magic "BSVM" | version 0x01
//	u16 ℓ | u16 name length | name bytes
//	u32 code length | code bytes
//	u16 pool length | pool entries as big-endian u64 (two's complement)
//
// All integers are big-endian. The encoding is canonical — one program,
// one byte string — so decoding then re-encoding is the identity and a
// hash of the encoding is stable.

const magic = "BSVM\x01"

// ErrEncoding is returned by Decode for malformed input.
var ErrEncoding = errors.New("vm: malformed program encoding")

// Encode serializes the program to the canonical binary form.
func (p *Program) Encode() []byte {
	out := make([]byte, 0, len(magic)+8+len(p.Name)+len(p.Code)+8*len(p.Pool)+6)
	out = append(out, magic...)
	out = binary.BigEndian.AppendUint16(out, uint16(p.Ell))
	out = binary.BigEndian.AppendUint16(out, uint16(len(p.Name)))
	out = append(out, p.Name...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(p.Code)))
	out = append(out, p.Code...)
	out = binary.BigEndian.AppendUint16(out, uint16(len(p.Pool)))
	for _, v := range p.Pool {
		out = binary.BigEndian.AppendUint64(out, uint64(v))
	}
	return out
}

// Decode parses the canonical binary form and validates the program.
func Decode(data []byte) (*Program, error) {
	r := data
	take := func(n int) ([]byte, error) {
		if len(r) < n {
			return nil, fmt.Errorf("%w (truncated)", ErrEncoding)
		}
		b := r[:n]
		r = r[n:]
		return b, nil
	}
	m, err := take(len(magic))
	if err != nil || string(m) != magic {
		return nil, fmt.Errorf("%w (bad magic)", ErrEncoding)
	}
	hdr, err := take(4)
	if err != nil {
		return nil, err
	}
	p := &Program{Ell: int(binary.BigEndian.Uint16(hdr))}
	nameLen := int(binary.BigEndian.Uint16(hdr[2:]))
	name, err := take(nameLen)
	if err != nil {
		return nil, err
	}
	p.Name = string(name)
	clen, err := take(4)
	if err != nil {
		return nil, err
	}
	codeLen := int(binary.BigEndian.Uint32(clen))
	if codeLen > MaxCodeBytes {
		return nil, fmt.Errorf("%w (%d bytes)", ErrCodeSize, codeLen)
	}
	code, err := take(codeLen)
	if err != nil {
		return nil, err
	}
	p.Code = append([]byte(nil), code...)
	plen, err := take(2)
	if err != nil {
		return nil, err
	}
	poolLen := int(binary.BigEndian.Uint16(plen))
	if poolLen > MaxPoolEntries {
		return nil, fmt.Errorf("%w (%d entries)", ErrPoolSize, poolLen)
	}
	p.Pool = make([]int64, poolLen)
	for i := range p.Pool {
		e, err := take(8)
		if err != nil {
			return nil, err
		}
		p.Pool[i] = int64(binary.BigEndian.Uint64(e))
	}
	if len(r) != 0 {
		return nil, fmt.Errorf("%w (%d trailing bytes)", ErrEncoding, len(r))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// Address returns the program's content address: the first 16 hex digits
// of the SHA-256 over its semantics (ℓ, code, pool). The display Name is
// deliberately excluded, so renaming a protocol cannot mint a second
// identity for the same rule — the property the serve registry and the
// job-deduplication path rely on.
func (p *Program) Address() string {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint16(buf[:2], uint16(p.Ell))
	h.Write(buf[:2])
	binary.BigEndian.PutUint32(buf[:4], uint32(len(p.Code)))
	h.Write(buf[:4])
	h.Write(p.Code)
	binary.BigEndian.PutUint16(buf[:2], uint16(len(p.Pool)))
	h.Write(buf[:2])
	for _, v := range p.Pool {
		binary.BigEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
