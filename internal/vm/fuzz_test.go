package vm_test

import (
	"errors"
	"testing"

	"bitspread/internal/protocol"
	"bitspread/internal/rng"
	"bitspread/internal/vm"
)

// FuzzVMEquivalence is the differential contract behind Compile: any rule
// whose tables lie on the fixed-point grid must survive the full
// compile → encode → decode → materialize round trip with every (b,k)
// PMF entry bit-identical. Tables are drawn from the fuzzed seed and
// projected onto the grid with Quantize, exactly as the evolutionary
// mutators keep their genomes exact.
func FuzzVMEquivalence(f *testing.F) {
	f.Add(uint8(1), uint64(1))
	f.Add(uint8(3), uint64(0xDEADBEEF))
	f.Add(uint8(8), uint64(1)<<40)
	f.Fuzz(func(t *testing.T, ellByte uint8, seed uint64) {
		ell := int(ellByte)%8 + 1
		g := rng.New(seed)
		g0 := make([]float64, ell+1)
		g1 := make([]float64, ell+1)
		for k := range g0 {
			g0[k] = vm.Quantize(g.Float64())
			g1[k] = vm.Quantize(g.Float64())
		}
		rule, err := protocol.New("fuzz", ell, g0, g1)
		if err != nil {
			t.Fatalf("quantized table rejected: %v", err)
		}
		prog, err := vm.Compile(rule)
		if err != nil {
			t.Fatalf("Compile: %v", err)
		}
		decoded, err := vm.Decode(prog.Encode())
		if err != nil {
			t.Fatalf("Decode(Encode): %v", err)
		}
		back, err := decoded.Materialize(vm.EvalLimits{})
		if err != nil {
			t.Fatalf("Materialize: %v", err)
		}
		h0, h1 := back.Tables()
		for k := range g0 {
			//bitlint:floatexact the differential contract is bit-exact PMF reproduction
			if h0[k] != g0[k] || h1[k] != g1[k] {
				t.Fatalf("ℓ=%d seed=%#x: entry k=%d moved: g0 %v->%v, g1 %v->%v",
					ell, seed, k, g0[k], h0[k], g1[k], h1[k])
			}
		}
	})
}

// FuzzProgramTotality feeds arbitrary bytes to the validator: anything it
// accepts must evaluate deterministically on every input cell — same
// value or the same typed resource error twice — and a successful
// materialization must be a well-formed rule. This is the safety story
// for POST /v1/protocols: validation is the only gate untrusted bytecode
// passes before an engine runs it.
func FuzzProgramTotality(f *testing.F) {
	voter, err := vm.Assemble("ell 3\nfrac\nhalt")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint8(3), uint64(7), voter.Code)
	f.Add(uint8(1), uint64(1), []byte{0x40, 0xff, 0xfd}) // jmp self: gas bomb
	f.Add(uint8(2), uint64(2), []byte{0x06, 0x00})       // tbl halt
	f.Fuzz(func(t *testing.T, ellByte uint8, poolSeed uint64, code []byte) {
		ell := int(ellByte)%vm.MaxEll + 1
		g := rng.New(poolSeed)
		pool := make([]int64, 2*(ell+1))
		for i := range pool {
			v, _ := vm.FromFloat(g.Float64()*8 - 4) // spans the whole Q2.61 range
			pool[i] = v
		}
		p := &vm.Program{Ell: ell, Code: code, Pool: pool}
		if err := p.Validate(); err != nil {
			return // rejected input is a correct outcome
		}
		for b := 0; b <= 1; b++ {
			for k := 0; k <= ell; k++ {
				v1, err1 := p.Eval(b, k, vm.EvalLimits{})
				v2, err2 := p.Eval(b, k, vm.EvalLimits{})
				if v1 != v2 || !errors.Is(err2, unwrapSentinel(err1)) {
					t.Fatalf("nondeterministic eval at (b=%d,k=%d): (%d,%v) vs (%d,%v)",
						b, k, v1, err1, v2, err2)
				}
				if err1 != nil && err1.Error() != err2.Error() {
					t.Fatalf("error text diverged: %q vs %q", err1, err2)
				}
			}
		}
		rule, err := p.Materialize(vm.EvalLimits{})
		if err != nil {
			return // typed resource exhaustion, still a safe outcome
		}
		g0, g1 := rule.Tables()
		for k := range g0 {
			if g0[k] < 0 || g0[k] > 1 || g1[k] < 0 || g1[k] > 1 {
				t.Fatalf("materialized entry out of range: g0[%d]=%v g1[%d]=%v", k, g0[k], k, g1[k])
			}
		}
	})
}

// unwrapSentinel maps an eval error to its sentinel for errors.Is
// comparison; nil maps to nil (errors.Is(nil, nil) is true).
func unwrapSentinel(err error) error {
	for _, s := range []error{vm.ErrGas, vm.ErrStackOver, vm.ErrStackUnder, vm.ErrNoResult, vm.ErrInput} {
		if errors.Is(err, s) {
			return s
		}
	}
	return err
}
