package vm

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Assembly syntax, one item per line, ';' starts a comment:
//
//	name minority          ; optional display name
//	ell 3                  ; sample size (required)
//	const 0.25             ; append a pool entry (decimal, or 0x raw fixed)
//	loop:                  ; label
//	  frac                 ; instruction
//	  pushc 0              ; pool index immediate
//	  jnz loop             ; jump immediates are labels
//
// Constants are parsed as float64 and must be exactly representable in
// Q2.61 fixed point (every probability ≥ 2⁻⁹ is); `0x`-prefixed values
// are raw fixed-point bits, for values the decimal form cannot express.
// Assemble validates the finished program, so its output always runs.

// ErrAsm wraps every assembler syntax error.
var ErrAsm = errors.New("vm: assembly error")

func asmErr(line int, format string, args ...any) error {
	return fmt.Errorf("%w: line %d: %s", ErrAsm, line, fmt.Sprintf(format, args...))
}

// Assemble parses assembly text into a validated Program.
func Assemble(src string) (*Program, error) {
	p := &Program{Ell: -1}
	type fixup struct {
		line  int
		pos   int // offset of the i16 immediate in Code
		label string
	}
	var fixups []fixup
	labels := make(map[string]int)

	for lineNo, raw := range strings.Split(src, "\n") {
		line := lineNo + 1
		text := raw
		if i := strings.IndexByte(text, ';'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		head := fields[0]

		if strings.HasSuffix(head, ":") {
			label := strings.TrimSuffix(head, ":")
			if label == "" || len(fields) > 1 {
				return nil, asmErr(line, "malformed label %q", text)
			}
			if _, dup := labels[label]; dup {
				return nil, asmErr(line, "duplicate label %q", label)
			}
			labels[label] = len(p.Code)
			continue
		}

		switch head {
		case "name":
			if len(fields) != 2 {
				return nil, asmErr(line, "name takes one word")
			}
			p.Name = fields[1]
			continue
		case "ell":
			if len(fields) != 2 {
				return nil, asmErr(line, "ell takes one integer")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, asmErr(line, "bad sample size %q", fields[1])
			}
			p.Ell = n
			continue
		case "const":
			if len(fields) != 2 {
				return nil, asmErr(line, "const takes one value")
			}
			v, err := parseConst(fields[1])
			if err != nil {
				return nil, asmErr(line, "%v", err)
			}
			p.Pool = append(p.Pool, v)
			continue
		}

		op, ok := opByName(head)
		if !ok {
			return nil, asmErr(line, "unknown mnemonic %q", head)
		}
		want := 0
		if op.OperandBytes() > 0 {
			want = 1
		}
		if len(fields)-1 != want {
			return nil, asmErr(line, "%s takes %d operand(s), got %d", op, want, len(fields)-1)
		}
		p.Code = append(p.Code, byte(op))
		switch op {
		case OpPushC:
			idx, err := strconv.Atoi(fields[1])
			if err != nil || idx < 0 || idx > math.MaxUint16 {
				return nil, asmErr(line, "bad pool index %q", fields[1])
			}
			p.Code = append(p.Code, byte(idx>>8), byte(idx))
		case OpJmp, OpJnz:
			fixups = append(fixups, fixup{line: line, pos: len(p.Code), label: fields[1]})
			p.Code = append(p.Code, 0, 0)
		}
	}

	if p.Ell < 0 {
		return nil, fmt.Errorf("%w: missing ell directive", ErrAsm)
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, asmErr(f.line, "undefined label %q", f.label)
		}
		off := target - (f.pos + 2)
		if off < math.MinInt16 || off > math.MaxInt16 {
			return nil, asmErr(f.line, "jump to %q out of i16 range (%d)", f.label, off)
		}
		p.Code[f.pos] = byte(uint16(off) >> 8)
		p.Code[f.pos+1] = byte(uint16(off))
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseConst parses a pool constant: `0x`-prefixed raw fixed-point bits,
// or a decimal float that must convert exactly.
func parseConst(s string) (int64, error) {
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "-0x") {
		neg := strings.HasPrefix(s, "-")
		u, err := strconv.ParseUint(strings.TrimPrefix(strings.TrimPrefix(s, "-"), "0x"), 16, 64)
		if err != nil || (!neg && u > math.MaxInt64) || (neg && u > 1<<63) {
			return 0, fmt.Errorf("bad raw constant %q", s)
		}
		return satSigned(neg, u), nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad constant %q", s)
	}
	v, exact := FromFloat(f)
	if !exact {
		return 0, fmt.Errorf("%w (%q)", ErrNotRepresentable, s)
	}
	return v, nil
}

// Disassemble renders a validated program as assembly text that
// reassembles to the identical program (labels are synthesized as
// L<offset> for every jump target).
func (p *Program) Disassemble() (string, error) {
	if err := p.Validate(); err != nil {
		return "", err
	}
	targets := make(map[int]bool)
	for pc := 0; pc < len(p.Code); {
		op := Op(p.Code[pc])
		next := pc + 1 + op.OperandBytes()
		if op == OpJmp || op == OpJnz {
			off := int(int16(uint16(p.Code[pc+1])<<8 | uint16(p.Code[pc+2])))
			targets[next+off] = true
		}
		pc = next
	}

	var b strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&b, "name %s\n", p.Name)
	}
	fmt.Fprintf(&b, "ell %d\n", p.Ell)
	for _, v := range p.Pool {
		f := ToFloat(v)
		if rt, exact := FromFloat(f); exact && rt == v {
			fmt.Fprintf(&b, "const %s\n", strconv.FormatFloat(f, 'g', -1, 64))
		} else if v < 0 {
			fmt.Fprintf(&b, "const -0x%x\n", absU64(v))
		} else {
			fmt.Fprintf(&b, "const 0x%x\n", uint64(v))
		}
	}
	for pc := 0; pc < len(p.Code); {
		if targets[pc] {
			fmt.Fprintf(&b, "L%d:\n", pc)
		}
		op := Op(p.Code[pc])
		next := pc + 1 + op.OperandBytes()
		switch op {
		case OpPushC:
			fmt.Fprintf(&b, "  pushc %d\n", int(p.Code[pc+1])<<8|int(p.Code[pc+2]))
		case OpJmp, OpJnz:
			off := int(int16(uint16(p.Code[pc+1])<<8 | uint16(p.Code[pc+2])))
			fmt.Fprintf(&b, "  %s L%d\n", op, next+off)
		default:
			fmt.Fprintf(&b, "  %s\n", op)
		}
		pc = next
	}
	if targets[len(p.Code)] {
		fmt.Fprintf(&b, "L%d:\n", len(p.Code))
	}
	return b.String(), nil
}
