// Package evolve searches the bytecode rule space of internal/vm for
// fast bit-dissemination protocols with a seeded genetic/annealing loop.
//
// A genome is a vm.Program in canonical table form (OpTbl + constant
// pool), so every individual is executable, content-addressable bytecode
// from birth; mutation and crossover act on the pool through the exact
// Q2.61 grid, and Proposition 3 (g^[0](0)=0, g^[1](ℓ)=1) is pinned after
// every operator so no genome can leave the protocol class.
//
// Fitness is staged to make the search cheap where the paper makes it
// predictable: a rule is first materialized and its bias polynomial F
// analysed (internal/bias). Theorem 12 says a rule whose F has definite
// sign near p = 1 converges slowly, so any genome with worst-case drift
// above Options.DriftCutoff is scored by its drift alone and never
// simulated — the analytical lower bound acts as a pre-filter, and the
// drift term gives the annealer a gradient toward the F ≡ 0 (Voter
// class) regime of Lemma 11. Only near-zero-drift genomes pay for a
// seeded engine simulation (worst case over both choices of the correct
// opinion, adversarial initialization).
//
// The whole search is a pure function of Options: seeded RNG, index-
// ordered loops, fitness ties broken by content address. Re-running with
// the same Options reproduces every generation bit for bit.
package evolve

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"bitspread/internal/bias"
	"bitspread/internal/engine"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
	"bitspread/internal/vm"
)

// Sentinel errors.
var (
	// ErrOptions is returned by Search for invalid Options.
	ErrOptions = errors.New("evolve: invalid options")
)

// Options configures one search. Zero fields take the documented defaults.
type Options struct {
	// Ell is the sample size of the searched rule space (required, >= 1).
	Ell int
	// Population is the number of genomes per generation (default 24).
	Population int
	// Generations is the number of generations (default 30).
	Generations int
	// Seed drives every random choice in the search.
	Seed uint64
	// SimN is the population size used for fitness simulations
	// (default 1024).
	SimN int64
	// MaxRounds caps each fitness simulation (default 32·SimN).
	MaxRounds int64
	// DriftCutoff is the bias pre-filter threshold: genomes with
	// MaxAbsDrift above it are scored analytically and never simulated.
	// The default 1e-4 is deliberately strict — by Theorem 12 a definite
	// drift near consensus dominates the √n diffusion once n·|F| exceeds
	// the per-round noise, so rules that look fine at the fitness scale
	// would stall at measurement scale (n = 2¹⁶ needs |F| ≲ 4·10⁻³).
	DriftCutoff float64
	// DriftSamples is the drift evaluation grid (default 256).
	DriftSamples int
	// Elite is how many best genomes survive unchanged (default 2).
	Elite int
	// Tournament is the selection tournament size (default 3).
	Tournament int
	// Progress, if non-nil, is called after each generation's evaluation
	// with the generation index and its statistics.
	Progress func(gen int, stat GenStat)
}

func (o *Options) defaults() error {
	if o.Ell < 1 || o.Ell > vm.MaxEll {
		return fmt.Errorf("%w: ℓ=%d", ErrOptions, o.Ell)
	}
	if o.Population == 0 {
		o.Population = 24
	}
	if o.Generations == 0 {
		o.Generations = 30
	}
	if o.SimN == 0 {
		o.SimN = 1024
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 32 * o.SimN
	}
	//bitlint:floatexact zero is the option's unset sentinel, never a computed drift
	if o.DriftCutoff == 0 {
		o.DriftCutoff = 1e-4
	}
	if o.DriftSamples == 0 {
		o.DriftSamples = 256
	}
	if o.Elite == 0 {
		o.Elite = 2
	}
	if o.Tournament == 0 {
		o.Tournament = 3
	}
	if o.Population < 2 || o.Elite >= o.Population || o.Tournament < 1 ||
		o.Generations < 1 || o.SimN < 2 || o.MaxRounds < 1 {
		return fmt.Errorf("%w: %+v", ErrOptions, *o)
	}
	return nil
}

// Individual is one evaluated genome.
type Individual struct {
	// Program is the genome itself (canonical table bytecode).
	Program *vm.Program
	// Rule is the materialized table.
	Rule *protocol.Rule
	// Fitness is the score being minimized: for simulated genomes the
	// worst normalized round count (rounds/n over both opinions and both
	// fitness scales), for pre-filtered genomes a drift-scaled penalty
	// above every simulated score.
	Fitness float64
	// Case is the Theorem 12 classification of the bias polynomial.
	Case bias.Case
	// Drift is MaxAbsDrift over the evaluation grid.
	Drift float64
	// Simulated is true when Fitness came from an engine run rather than
	// the analytical pre-filter.
	Simulated bool
	// Rounds is the measured round count at the worst-scoring scale
	// (Simulated only).
	Rounds int64
}

// GenStat summarizes one generation.
type GenStat struct {
	Gen         int
	Best        Individual
	MeanFitness float64
	// Simulated counts genomes that reached the engine this generation;
	// the rest were pruned by the bias pre-filter.
	Simulated int
}

// Outcome is the result of a completed Search.
type Outcome struct {
	// Best is the fittest individual of the final generation.
	Best Individual
	// History holds one entry per generation, in order.
	History []GenStat
	// Evaluations counts fitness evaluations, Pruned how many of them the
	// bias pre-filter resolved without a simulation.
	Evaluations int
	Pruned      int
}

// Search runs the seeded evolutionary search and returns its outcome.
func Search(opts Options) (*Outcome, error) {
	if err := opts.defaults(); err != nil {
		return nil, err
	}
	master := rng.New(opts.Seed)
	genomeRNG := master.Split() // mutation/crossover/selection choices
	simRNG := master.Split()    // fitness simulation streams

	out := &Outcome{}
	pop := make([]Individual, opts.Population)
	for i := range pop {
		pop[i] = Individual{Program: randomGenome(opts.Ell, genomeRNG)}
	}

	// Annealing: the mutation step size decays geometrically from sigma0
	// to sigmaFloor across the whole run, so early generations explore
	// and late ones refine regardless of how many generations were
	// requested.
	const sigma0, sigmaFloor = 0.25, 0.004
	sigmaDecay := 1.0
	if opts.Generations > 1 {
		sigmaDecay = math.Pow(sigmaFloor/sigma0, 1/float64(opts.Generations-1))
	}

	for gen := 0; gen < opts.Generations; gen++ {
		for i := range pop {
			evaluate(&pop[i], &opts, simRNG, out)
		}
		rank(pop)

		stat := GenStat{Gen: gen, Best: pop[0]}
		for i := range pop {
			stat.MeanFitness += pop[i].Fitness / float64(len(pop))
			if pop[i].Simulated {
				stat.Simulated++
			}
		}
		out.History = append(out.History, stat)
		if opts.Progress != nil {
			opts.Progress(gen, stat)
		}
		if gen == opts.Generations-1 {
			break
		}

		sigma := sigma0 * math.Pow(sigmaDecay, float64(gen))
		next := make([]Individual, 0, opts.Population)
		for i := 0; i < opts.Elite; i++ {
			next = append(next, Individual{Program: pop[i].Program})
		}
		for len(next) < opts.Population {
			a := tournament(pop, opts.Tournament, genomeRNG)
			b := tournament(pop, opts.Tournament, genomeRNG)
			child := crossover(a.Program, b.Program, genomeRNG)
			mutate(child, sigma, genomeRNG)
			next = append(next, Individual{Program: child})
		}
		pop = next
	}

	// Annealing tail: if the genetic phase left any residual drift in the
	// best genome, finish the job deterministically. The coefficients of F
	// are affine in the free table entries, so the squared-coefficient
	// residual is a smooth convex quadratic and exact coordinate descent
	// walks the best genome onto the F ≡ 0 manifold — the precision regime
	// where Gaussian mutation is hopelessly slow. This matters even for
	// genomes the pre-filter let through: by Theorem 12 a drift as small
	// as 5·10⁻⁵ — invisible at the fitness scales — still stalls the rule
	// at measurement scale, so an exactly-F≡0 neighbour is preferred over
	// any sub-cutoff drift (the Lemma 11 / Theorem 12 dichotomy, applied
	// lexicographically).
	if !pop[0].Simulated || pop[0].Drift > 0 {
		polished := Individual{Program: polish(pop[0].Program)}
		evaluate(&polished, &opts, simRNG, out)
		if betterFinal(&polished, &pop[0]) {
			pop[0] = polished
		}
	}

	out.Best = pop[0]
	return out, nil
}

// betterFinal decides whether the polished candidate a should replace
// the search winner b: simulated beats pre-filtered, exact F ≡ 0 beats
// any nonzero drift (Theorem 12 makes definite drift provably slow at
// scale regardless of measured fitness), and fitness breaks the tie.
func betterFinal(a, b *Individual) bool {
	if a.Simulated != b.Simulated {
		return a.Simulated
	}
	//bitlint:floatexact drift is exactly zero on the F≡0 manifold (bias.Polynomial snaps cancellation noise); the comparison is set membership, not tolerance
	aZero, bZero := a.Drift == 0, b.Drift == 0
	if aZero != bZero {
		return aZero
	}
	return a.Fitness < b.Fitness
}

// polish projects a table genome onto the F ≡ 0 manifold exactly. The
// coefficients of the bias polynomial are affine in the free table
// entries, F(x) = c₀ + Σᵢ xᵢ·dᵢ, so the squared-coefficient residual is
// a convex quadratic whose minimizers solve the normal equations
// Gδ = −(c₀ + G·x̂-terms); polish solves them with pivoted Gaussian
// elimination for the correction δ to the current entries x̂ (non-pivot
// components of δ stay zero, keeping the result close to the evolved
// genome), clamps to [0, 1] and quantizes. Pinned corners are never
// touched. On the manifold the float residual is round-off-sized, which
// bias.Polynomial's cancellation snap turns into an exact zero drift.
func polish(p *vm.Program) *vm.Program {
	cur := &vm.Program{Ell: p.Ell, Code: append([]byte(nil), p.Code...), Pool: append([]int64(nil), p.Pool...)}
	free := make([]int, 0, len(cur.Pool))
	for i := range cur.Pool {
		k := i % (cur.Ell + 1)
		if k != 0 && k != cur.Ell {
			free = append(free, i)
		}
	}
	m := len(free)
	if m == 0 {
		return cur
	}

	// Coefficient vector of F for the pool currently in cur, padded to a
	// fixed length so vectors from different probes line up.
	dim := cur.Ell + 2
	coeffs := func() []float64 {
		rule, err := cur.Materialize(vm.EvalLimits{})
		if err != nil {
			return nil
		}
		f := bias.Polynomial(rule)
		out := make([]float64, dim)
		for i := 0; i <= f.Degree() && i < dim; i++ {
			out[i] = f[i]
		}
		return out
	}

	saved := append([]int64(nil), cur.Pool...)
	for _, i := range free {
		cur.Pool[i] = 0
	}
	base := coeffs()
	basis := make([][]float64, m)
	for j, i := range free {
		cur.Pool[i] = vm.One
		vec := coeffs()
		cur.Pool[i] = 0
		if base == nil || vec == nil {
			copy(cur.Pool, saved)
			return cur
		}
		d := make([]float64, dim)
		for t := range d {
			d[t] = vec[t] - base[t]
		}
		basis[j] = d
	}
	copy(cur.Pool, saved)

	// Normal equations for the correction δ to the current entries x̂:
	// G δ = b with Gᵢⱼ = dᵢ·dⱼ and bᵢ = −dᵢ·F(x̂).
	fhat := coeffs()
	if fhat == nil {
		return cur
	}
	g := make([][]float64, m)
	rhs := make([]float64, m)
	for i := 0; i < m; i++ {
		g[i] = make([]float64, m)
		for j := 0; j < m; j++ {
			for t := 0; t < dim; t++ {
				g[i][j] += basis[i][t] * basis[j][t]
			}
		}
		for t := 0; t < dim; t++ {
			rhs[i] -= basis[i][t] * fhat[t]
		}
	}

	// Pivoted Gaussian elimination; rank-deficient directions (the
	// manifold's tangent space) leave their δ components at zero.
	delta := make([]float64, m)
	pivTol := 0.0
	for i := 0; i < m; i++ {
		pivTol = math.Max(pivTol, math.Abs(g[i][i]))
	}
	pivTol *= 1e-12
	pivots := make([]int, 0, m)
	row := 0
	for col := 0; col < m && row < m; col++ {
		best := row
		for r := row + 1; r < m; r++ {
			if math.Abs(g[r][col]) > math.Abs(g[best][col]) {
				best = r
			}
		}
		if math.Abs(g[best][col]) <= pivTol {
			continue
		}
		g[row], g[best] = g[best], g[row]
		rhs[row], rhs[best] = rhs[best], rhs[row]
		for r := row + 1; r < m; r++ {
			f := g[r][col] / g[row][col]
			for c := col; c < m; c++ {
				g[r][c] -= f * g[row][c]
			}
			rhs[r] -= f * rhs[row]
		}
		pivots = append(pivots, col)
		row++
	}
	for r := len(pivots) - 1; r >= 0; r-- {
		col := pivots[r]
		sum := rhs[r]
		for c := col + 1; c < m; c++ {
			sum -= g[r][c] * delta[c]
		}
		delta[col] = sum / g[r][col]
	}

	for j, i := range free {
		x := vm.ToFloat(saved[i]) + delta[j]
		if x < 0 {
			x = 0
		} else if x > 1 {
			x = 1
		}
		v, _ := vm.FromFloat(vm.Quantize(x))
		cur.Pool[i] = v
	}
	return cur
}

// rank sorts by ascending fitness with content-address tie-breaking, so
// the ordering — and therefore selection — is deterministic even when
// two genomes score identically.
func rank(pop []Individual) {
	sort.SliceStable(pop, func(i, j int) bool {
		//bitlint:floatexact exact inequality routes only bit-identical scores to the address tie-break, which is the determinism guarantee itself
		if pop[i].Fitness != pop[j].Fitness {
			return pop[i].Fitness < pop[j].Fitness
		}
		return pop[i].Program.Address() < pop[j].Program.Address()
	})
}

// evaluate scores one genome in place, charging Outcome's counters.
func evaluate(ind *Individual, opts *Options, simRNG *rng.RNG, out *Outcome) {
	out.Evaluations++
	rule, err := ind.Program.Materialize(vm.EvalLimits{})
	if err != nil {
		// Unreachable for table genomes, but a mutation design error must
		// cull, not crash, the search.
		ind.Fitness = math.Inf(1)
		return
	}
	ind.Rule = rule
	a := bias.For(rule)
	ind.Case = a.Classify()
	ind.Drift = a.MaxAbsDrift(opts.DriftSamples)

	// penaltyBase sits above every possible simulated score (the simulated
	// scale is rounds/n, capped by the non-convergence penalty at
	// 2·MaxRounds/SimN = 64 with the defaults), so pruned genomes always
	// rank behind simulated ones; the drift term makes the penalty a
	// gradient toward the F ≡ 0 regime.
	penaltyBase := 8 * float64(opts.MaxRounds) / float64(opts.SimN)
	if ind.Drift > opts.DriftCutoff {
		out.Pruned++
		ind.Fitness = penaltyBase * (1 + ind.Drift)
		return
	}

	// Simulate at two population scales an octave-triple apart and score
	// the worst normalized round count. A single scale is blind to the
	// paper's central effect: a rule can have F ≡ 0 yet a variance profile
	// that collapses near consensus, so it looks Voter-like at small n and
	// stalls at large n. Normalizing by n makes the two scales comparable
	// (the Voter's worst-case rounds grow linearly in n).
	worstScore := 0.0
	worstRounds := int64(0)
	for _, n := range [2]int64{opts.SimN, 8 * opts.SimN} {
		maxRounds := opts.MaxRounds * (n / opts.SimN)
		for z := 0; z <= 1; z++ {
			cfg := engine.Config{
				N:         n,
				Rule:      rule,
				Z:         z,
				X0:        engine.WorstCaseInit(n, z),
				MaxRounds: maxRounds,
			}
			res, err := engine.RunParallel(cfg, simRNG.Split())
			if err != nil {
				ind.Fitness = math.Inf(1)
				return
			}
			rounds := res.Rounds
			if !res.Converged {
				rounds = 2 * maxRounds
			}
			if score := float64(rounds) / float64(n); score > worstScore {
				worstScore = score
				worstRounds = rounds
			}
		}
	}
	ind.Simulated = true
	ind.Rounds = worstRounds
	ind.Fitness = worstScore
}

// tournament returns the fittest of k uniform draws from an already
// ranked population.
func tournament(pop []Individual, k int, g *rng.RNG) *Individual {
	best := g.Intn(len(pop))
	for i := 1; i < k; i++ {
		if c := g.Intn(len(pop)); c < best {
			best = c
		}
	}
	return &pop[best]
}

// randomGenome draws a uniform quantized table genome with Proposition 3
// pinned.
func randomGenome(ell int, g *rng.RNG) *vm.Program {
	pool := make([]int64, 2*(ell+1))
	for i := range pool {
		v, _ := vm.FromFloat(vm.Quantize(g.Float64()))
		pool[i] = v
	}
	p := &vm.Program{
		Ell:  ell,
		Code: []byte{byte(vm.OpTbl), byte(vm.OpHalt)},
		Pool: pool,
	}
	pinContract(p)
	return p
}

// crossover mixes two table genomes entry-wise (uniform crossover on the
// constant pool).
func crossover(a, b *vm.Program, g *rng.RNG) *vm.Program {
	pool := make([]int64, len(a.Pool))
	for i := range pool {
		if g.Bernoulli(0.5) {
			pool[i] = a.Pool[i]
		} else {
			pool[i] = b.Pool[i]
		}
	}
	return &vm.Program{Ell: a.Ell, Code: append([]byte(nil), a.Code...), Pool: pool}
}

// mutate perturbs a genome in place: each pool entry is independently
// jittered with probability 2/len(pool) (about two entries per child) by
// a Gaussian step of scale sigma, occasionally reset to a uniform draw
// or snapped to a structural value (0, ½, 1, k/ℓ), always back onto the
// exact fixed-point grid, always re-pinning Proposition 3.
func mutate(p *vm.Program, sigma float64, g *rng.RNG) {
	rate := 2 / float64(len(p.Pool))
	for i := range p.Pool {
		if !g.Bernoulli(rate) {
			continue
		}
		cur := vm.ToFloat(p.Pool[i])
		var next float64
		switch g.Intn(4) {
		case 0: // fresh uniform draw
			next = g.Float64()
		case 1: // structural snap
			k := i % (p.Ell + 1)
			snaps := []float64{0, 0.5, 1, float64(k) / float64(p.Ell)}
			next = snaps[g.Intn(len(snaps))]
		default: // annealed Gaussian jitter
			next = cur + sigma*g.NormFloat64()
		}
		if next < 0 {
			next = 0
		} else if next > 1 {
			next = 1
		}
		v, _ := vm.FromFloat(vm.Quantize(next))
		p.Pool[i] = v
	}
	pinContract(p)
}

// pinContract forces the four unanimity corners of a table genome:
// g^[0](0) = g^[1](0) = 0 and g^[0](ℓ) = g^[1](ℓ) = 1. The first and
// last are Proposition 3 (consensus absorbing); the other two make each
// consensus *reachable* — an agent that observes a unanimous sample
// adopts it. Without them the search is deceived: there are F ≡ 0 rules
// (e.g. g^[0] = [0, ½, 0], g^[1] = [0, 1, 1] at ℓ = 2) whose drift
// vanishes yet whose conversion probability at near-consensus also
// vanishes, so they score well at the fitness scale and stall
// exponentially at measurement scale. Every classical dynamic in
// internal/protocol except the deliberately lazy ones satisfies all
// four corners; at ℓ = 2 they make the Voter the unique F ≡ 0 rule.
func pinContract(p *vm.Program) {
	p.Pool[0] = 0
	p.Pool[p.Ell] = vm.One
	p.Pool[p.Ell+1] = 0
	p.Pool[(p.Ell+1)+p.Ell] = vm.One
}

// Measure returns the empirical worst-case convergence time of a rule at
// population n: the mean over the given seeds of the parallel-round
// count, taken at its worst over both choices of the correct opinion
// with adversarial initialization. Non-converged replicas count as
// 2·maxRounds. It is the yardstick Search's outcome is compared against
// (e.g. evolved rule vs. Voter at n = 2¹⁶).
func Measure(r *protocol.Rule, n, maxRounds int64, seeds []uint64) (float64, error) {
	if len(seeds) == 0 {
		return 0, fmt.Errorf("%w: Measure needs at least one seed", ErrOptions)
	}
	if maxRounds <= 0 {
		maxRounds = 32 * n
	}
	worst := 0.0
	for z := 0; z <= 1; z++ {
		mean := 0.0
		for _, seed := range seeds {
			cfg := engine.Config{
				N:         n,
				Rule:      r,
				Z:         z,
				X0:        engine.WorstCaseInit(n, z),
				MaxRounds: maxRounds,
			}
			res, err := engine.RunParallel(cfg, rng.New(seed))
			if err != nil {
				return 0, err
			}
			rounds := res.Rounds
			if !res.Converged {
				rounds = 2 * maxRounds
			}
			mean += float64(rounds) / float64(len(seeds))
		}
		if mean > worst {
			worst = mean
		}
	}
	return worst, nil
}
