package evolve

import (
	"errors"
	"testing"

	"bitspread/internal/bias"
	"bitspread/internal/protocol"
)

func quickOpts(seed uint64) Options {
	return Options{
		Ell:         2,
		Population:  16,
		Generations: 16,
		Seed:        seed,
		SimN:        256,
	}
}

func TestSearchIsDeterministic(t *testing.T) {
	a, err := Search(quickOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Search(quickOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Program.Address() != b.Best.Program.Address() {
		t.Fatalf("same seed, different best genome: %s vs %s",
			a.Best.Program.Address(), b.Best.Program.Address())
	}
	//bitlint:floatexact identical replays must agree bit for bit
	if a.Best.Fitness != b.Best.Fitness || a.Evaluations != b.Evaluations || a.Pruned != b.Pruned {
		t.Fatalf("same seed, different trace: %+v vs %+v", a, b)
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("history lengths differ: %d vs %d", len(a.History), len(b.History))
	}
	for i := range a.History {
		//bitlint:floatexact identical replays must agree bit for bit
		if a.History[i].MeanFitness != b.History[i].MeanFitness ||
			a.History[i].Best.Program.Address() != b.History[i].Best.Program.Address() {
			t.Fatalf("generation %d diverged", i)
		}
	}
	// Distinct seeds must explore differently somewhere (guards against a
	// search that ignores its seed).
	c, err := Search(quickOpts(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Program.Address() == c.Best.Program.Address() && a.Evaluations == c.Evaluations && a.Pruned == c.Pruned {
		t.Fatal("seeds 7 and 8 produced identical searches; the seed is not consumed")
	}
}

func TestSearchReachesSimulatedVoterClassGenome(t *testing.T) {
	out, err := Search(quickOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	best := out.Best
	if !best.Simulated {
		t.Fatalf("best genome never reached simulation: %+v", best)
	}
	if best.Drift > 1e-4 {
		t.Fatalf("best drift %v above the pre-filter cutoff", best.Drift)
	}
	if err := best.Rule.CheckProp3(); err != nil {
		t.Fatalf("evolved rule leaked out of the protocol class: %v", err)
	}
	if out.Pruned == 0 {
		t.Fatal("the bias pre-filter never fired; random genomes should mostly be drifty")
	}
	// One extra evaluation is charged when the post-search polish fires.
	if want := len(out.History) * 16; out.Evaluations != want && out.Evaluations != want+1 {
		t.Fatalf("evaluations %d, want %d or %d", out.Evaluations, want, want+1)
	}
	first, last := out.History[0].Best.Fitness, out.History[len(out.History)-1].Best.Fitness
	if last > first {
		t.Fatalf("best fitness regressed across generations: %v -> %v", first, last)
	}
}

func TestSearchGenomesStayPinnedToProp3(t *testing.T) {
	out, err := Search(quickOpts(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, stat := range out.History {
		r := stat.Best.Rule
		if r == nil {
			t.Fatal("best individual has no materialized rule")
		}
		if err := r.CheckProp3(); err != nil {
			t.Fatalf("generation %d best violates Prop 3: %v", stat.Gen, err)
		}
	}
}

func TestMeasureVoterBaseline(t *testing.T) {
	v, err := Measure(protocol.Voter(2), 256, 0, []uint64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || v >= float64(2*32*256) {
		t.Fatalf("Voter measure %v out of sane range", v)
	}
	if _, err := Measure(protocol.Voter(2), 256, 0, nil); !errors.Is(err, ErrOptions) {
		t.Fatalf("Measure with no seeds: %v, want ErrOptions", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Search(Options{Ell: 0}); !errors.Is(err, ErrOptions) {
		t.Fatalf("ℓ=0 accepted: %v", err)
	}
	if _, err := Search(Options{Ell: 1, Population: 4, Elite: 4}); !errors.Is(err, ErrOptions) {
		t.Fatalf("elite >= population accepted: %v", err)
	}
}

func TestDriftPenaltyRanksBehindSimulation(t *testing.T) {
	// A drifty rule (Majority-like) must be scored by the pre-filter above
	// any simulated score.
	opts := quickOpts(5)
	if err := opts.defaults(); err != nil {
		t.Fatal(err)
	}
	a := bias.For(protocol.Majority(2))
	if a.MaxAbsDrift(opts.DriftSamples) <= opts.DriftCutoff {
		t.Skip("Majority(2) unexpectedly under the cutoff")
	}
	out, err := Search(opts)
	if err != nil {
		t.Fatal(err)
	}
	penaltyBase := 8 * float64(opts.MaxRounds) / float64(opts.SimN)
	for _, stat := range out.History {
		if stat.Best.Simulated && stat.Best.Fitness >= penaltyBase {
			t.Fatalf("simulated fitness %v overlaps the penalty band %v", stat.Best.Fitness, penaltyBase)
		}
		if !stat.Best.Simulated && stat.Best.Fitness < penaltyBase {
			t.Fatalf("pruned fitness %v below the penalty base %v", stat.Best.Fitness, penaltyBase)
		}
	}
}
