package experiments

import (
	"fmt"
	"math"

	"bitspread/internal/engine"
	"bitspread/internal/memory"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
	"bitspread/internal/sim"
	"bitspread/internal/stats"
	"bitspread/internal/table"
)

// x4MemoryAblation probes the paper's closing question (§5): does the
// lower bound survive bounded memory? Three rows per n:
//
//   - 0 bits (memory-less Minority(3), adversarial start): trapped, per
//     Theorem 1;
//   - O(log n) bits, shared clock (synchronized accumulator): converges in
//     Õ(√n) ≪ n^{1-ε} rounds by the window-by-window reduction to [15];
//   - O(log n) bits, adversarial phases: oscillates macroscopically,
//     visiting near-consensus without locking it — memory alone does not
//     replace synchrony.
func x4MemoryAblation() Experiment {
	return Experiment{
		ID:    "X4",
		Title: "§5 ablation: memory × synchrony vs the lower bound",
		Claim: "constant ℓ + O(log n) bits + shared clock beats n^{1-ε}; dropping either memory or the clock restores slowness",
		Run: func(opts Options) (*Result, error) {
			ns := pick(opts, []int64{1024, 2048}, []int64{2048, 8192, 32768})
			replicas := pick(opts, 6, 24)
			const ell = 3
			tb := table.New("X4 — Minority(ℓ=3) variants from hard starts, budget ⌈n^0.9⌉ rounds",
				"variant", "memory bits", "n", "P(converge ≤ budget)", "mean τ", "final frac (stalled)")

			syncMin, zeroMax, unsyncMax := 1.0, 0.0, 0.0
			var syncNs, syncTaus []float64
			for _, n := range ns {
				budget := polyCap(n, 0.9)
				// The 1.2 factor keeps the pooled sample size comfortably inside
				// the Ω(√(n log n)) regime of [15] at small n.
				window := int(math.Ceil(1.2 * math.Sqrt(float64(n)*math.Log(float64(n))) / ell))

				// Row 1: memory-less control from the Theorem 12 start.
				ctrlCfg, c := engine.AdversarialConfig(protocol.Minority(ell), n, budget)
				ctrlCfg.X0 = int64((c.A1 + c.A3) / 2 * float64(n))
				m, err := measure(opts, "x4-ctrl", ctrlCfg, sim.Parallel, replicas, uint64(n))
				if err != nil {
					return nil, err
				}
				zeroMax = math.Max(zeroMax, m.rate)
				tb.AddRowf("memory-less", 0, n, m.rate, m.meanTau, "-")

				// Rows 2–3: the accumulator, synchronized and not.
				for _, synced := range []bool{true, false} {
					proto, err := memory.NewAccumulatorMinority(ell, window, synced)
					if err != nil {
						return nil, err
					}
					master := rng.New(subSeed(opts, uint64(n)*11+boolSalt(synced)))
					conv := 0
					var taus, fracs []float64
					for rep := 0; rep < replicas; rep++ {
						res, err := memory.Run(memory.Config{
							N:                 n,
							Protocol:          proto,
							Z:                 1,
							X0:                1, // all wrong
							AdversarialMemory: !synced,
							MaxRounds:         budget,
						}, master.Split())
						if err != nil {
							return nil, err
						}
						if res.Converged {
							conv++
							taus = append(taus, float64(res.Rounds))
						} else {
							fracs = append(fracs, float64(res.FinalCount)/float64(n))
						}
					}
					rate := float64(conv) / float64(replicas)
					meanTau := math.NaN()
					if len(taus) > 0 {
						meanTau = stats.Summarize(taus).Mean
					}
					stalled := "-"
					if len(fracs) > 0 {
						stalled = fmt.Sprintf("%.3f", stats.Summarize(fracs).Mean)
					}
					name := "accumulator+clock"
					if !synced {
						name = "accumulator, no clock"
					}
					tb.AddRowf(name, proto.StateBits(), n, rate, meanTau, stalled)
					if synced {
						syncMin = math.Min(syncMin, rate)
						if len(taus) > 0 {
							syncNs = append(syncNs, float64(n))
							syncTaus = append(syncTaus, stats.Summarize(taus).Mean)
						}
					} else {
						unsyncMax = math.Max(unsyncMax, rate)
					}
				}
			}
			exponent := math.NaN()
			if len(syncNs) >= 2 {
				if fit, err := stats.FitPower(syncNs, syncTaus); err == nil {
					exponent = fit.Exponent
					tb.AddNote("synchronized accumulator τ scaling: ~n^%.2f (reduction to [15] predicts ≈0.5, i.e. Õ(√n))", exponent)
				}
			}
			tb.AddNote("window w = ⌈1.2·√(n ln n)/ℓ⌉; 'no clock' = adversarial phases and memory (self-stabilizing regime)")
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"memoryless_rate_max": zeroMax,
					"sync_rate_min":       syncMin,
					"unsync_rate_max":     unsyncMax,
					"sync_tau_exponent":   exponent,
				},
				Verdict: fmt.Sprintf(
					"memory-less: rate ≤ %.2f (trapped); memory+clock: rate ≥ %.2f within n^0.9, τ~n^%.2f; memory without clock: rate ≤ %.2f (oscillates, no lock-in) — both memory AND synchrony are load-bearing",
					zeroMax, syncMin, exponent, unsyncMax),
			}, nil
		},
	}
}

func boolSalt(b bool) uint64 {
	if b {
		return 1
	}
	return 2
}
