package experiments

import (
	"fmt"
	"math"

	"bitspread/internal/bias"
	"bitspread/internal/multi"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
	"bitspread/internal/table"
)

// x5MultiOpinion makes the paper's footnote 2 executable: with more than
// two opinions — under the constraint that agents never adopt an opinion
// they have not seen — a binary initial configuration evolves exactly as
// a binary protocol, so the Ω(n^{1-ε}) lower bound transfers. The
// experiment (a) verifies the reduction dynamically (unseen opinions
// never appear; the binary drift identity of Prop 5 holds for the
// restricted process), and (b) shows the q=3 chain from the binary
// adversarial start is as slow as its binary counterpart.
func x5MultiOpinion() Experiment {
	return Experiment{
		ID:    "X5",
		Title: "Footnote 2: the lower bound transfers to q > 2 opinions",
		Claim: "from binary starts, q=3 rules reduce exactly to their binary counterparts; the adversarial slowness carries over",
		Run: func(opts Options) (*Result, error) {
			ns := pick(opts, []int64{512, 2048}, []int64{4096, 32768, 262144})
			replicas := pick(opts, 20, 80)
			const exp = 0.9

			tb := table.New("X5 — q=3 Minority(ℓ=3) from the binary adversarial start (z=1)",
				"n", "budget", "P(converge ≤ budget)", "unseen-opinion rounds", "max drift dev")

			binary := protocol.Minority(3)
			a := bias.For(binary)
			c, _ := a.ProofConstants()
			rule := multi.Minority(3, 3)
			if err := multi.Validate(rule); err != nil {
				return nil, fmt.Errorf("experiments: X5 rule invalid: %w", err)
			}

			maxRate, worstDrift := 0.0, 0.0
			unseenTotal := 0
			for _, n := range ns {
				budget := polyCap(n, exp)
				// Mid-interval binary start, as in T1's trapped rows.
				x1 := int64((c.A1 + c.A3) / 2 * float64(n))
				master := rng.New(subSeed(opts, uint64(n)*17))
				converged := 0
				for rep := 0; rep < replicas; rep++ {
					g := master.Split()
					x := []int64{n - x1, x1, 0}
					for t := int64(1); t <= budget; t++ {
						// Binary drift prediction before stepping.
						predicted := a.ExpectedNext(n, x[1])
						x = multi.Step(rule, n, 1, x, g)
						if x[2] != 0 {
							unseenTotal++
						}
						// Prop 5 transfers to the restricted process: the
						// one-round mean must track x + nF(x/n) within ±1
						// plus sampling noise; track the systematic part
						// via a single-step deviation cap of O(√n·log n).
						dev := math.Abs(float64(x[1]) - predicted)
						if lim := 8 * math.Sqrt(float64(n)); dev > lim && dev > worstDrift {
							worstDrift = dev / math.Sqrt(float64(n))
						}
						if x[1] == n {
							converged++
							break
						}
					}
				}
				rate := float64(converged) / float64(replicas)
				maxRate = math.Max(maxRate, rate)
				tb.AddRowf(n, budget, rate, unseenTotal, worstDrift)
			}
			tb.AddNote("binary adversarial start X₀/n=%.3f from the Minority(3) bias analysis; opinion 2 starts empty", (c.A1+c.A3)/2)
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"max_rate":       maxRate,
					"unseen_rounds":  float64(unseenTotal),
					"max_drift_sdev": worstDrift,
				},
				Verdict: fmt.Sprintf(
					"q=3 convergence rate ≤ %.3f within n^0.9 (binary bound transfers); unseen opinion appeared in %d rounds (exact reduction: 0); drift excursions beyond 8√n: %.2f",
					maxRate, unseenTotal, worstDrift),
			}, nil
		},
	}
}
