package experiments

import (
	"strings"
	"testing"
)

var quickOpts = Options{Seed: 2024, Workers: 0, Quick: true}

// runExp executes an experiment in quick mode and returns its result.
func runExp(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	res, err := e.Run(quickOpts)
	if err != nil {
		t.Fatalf("%s failed: %v", id, err)
	}
	if res.Table == nil || res.Table.String() == "" {
		t.Fatalf("%s produced no table", id)
	}
	if res.Verdict == "" {
		t.Fatalf("%s produced no verdict", id)
	}
	t.Logf("%s metrics: %v\n%s", id, res.Metrics, res.Verdict)
	return res
}

func metric(t *testing.T, res *Result, key string) float64 {
	t.Helper()
	v, ok := res.Metrics[key]
	if !ok {
		t.Fatalf("metric %q missing (have %v)", key, res.Metrics)
	}
	return v
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 24 {
		t.Fatalf("registered %d experiments, want 24", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate ID %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("T1"); !ok {
		t.Error("ByID(T1) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
	ids := IDs()
	if len(ids) != len(all) {
		t.Errorf("IDs() returned %d entries", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("IDs not sorted: %v", ids)
		}
	}
}

func TestT1LowerBound(t *testing.T) {
	res := runExp(t, "T1")
	if v := metric(t, res, "trapped_rate_max"); v > 0.05 {
		t.Errorf("drift-trapped rules converged within the budget with rate %v (paper: ~0)", v)
	}
	if v := metric(t, res, "voter_tau_exponent"); v < 0.7 || v > 1.35 {
		t.Errorf("voter exponent = %v, want ≈1 (almost-linear)", v)
	}
	if v := metric(t, res, "big_sample_rate_min"); v < 0.95 {
		t.Errorf("big-sample Minority rate = %v, want ≈1", v)
	}
}

func TestT2VoterUpper(t *testing.T) {
	res := runExp(t, "T2")
	if v := metric(t, res, "min_rate"); v < 1 {
		t.Errorf("voter failed to converge in some runs (rate %v)", v)
	}
	if v := metric(t, res, "max_ratio"); v > 10 {
		t.Errorf("τ/(n ln n) = %v, want bounded (≲ a few)", v)
	}
	if v := metric(t, res, "ratio_growth"); v > 2.5 {
		t.Errorf("ratio grew %vx across the sweep; should be roughly flat", v)
	}
}

func TestT3MinorityBigSample(t *testing.T) {
	res := runExp(t, "T3")
	if v := metric(t, res, "min_rate"); v < 0.95 {
		t.Errorf("minority big-sample rate = %v", v)
	}
	if v := metric(t, res, "max_ratio"); v > 40 {
		t.Errorf("τ/ln²n = %v, want bounded", v)
	}
	if v := metric(t, res, "speedup_growth"); v < 1.5 {
		t.Errorf("speedup over voter grew only %vx; want clear growth (separation)", v)
	}
}

func TestT4Sequential(t *testing.T) {
	res := runExp(t, "T4")
	if v := metric(t, res, "min_rounds_per_n"); v < 0.05 {
		t.Errorf("sequential E[τ]/n = %v, want bounded below (Ω(n) rounds)", v)
	}
}

func TestT5Prop3(t *testing.T) {
	res := runExp(t, "T5")
	if v := metric(t, res, "max_violator_stay_prob"); v > 0.05 {
		t.Errorf("a Prop-3 violator held consensus with probability %v (paper: escapes a.s.)", v)
	}
	if v := metric(t, res, "control_escape_prob"); v != 0 {
		t.Errorf("the valid control escaped consensus with probability %v (paper: absorbing)", v)
	}
}

func TestT6JumpBound(t *testing.T) {
	res := runExp(t, "T6")
	if v := metric(t, res, "violations"); v != 0 {
		t.Errorf("%v violations of the Prop 4 jump bound (paper: exp(-2√n) ≈ 0)", v)
	}
}

func TestT7Drift(t *testing.T) {
	res := runExp(t, "T7")
	if v := metric(t, res, "max_deviation"); v > 1+1e-9 {
		t.Errorf("max exact drift deviation = %v, Prop 5 bound is 1", v)
	}
}

func TestF1Escape(t *testing.T) {
	res := runExp(t, "F1")
	if v := metric(t, res, "escape_exponent"); v < 0.7 || v > 1.35 {
		t.Errorf("exit-time exponent = %v, want ≈1", v)
	}
	if v := metric(t, res, "dominance_ok"); v != 1 {
		t.Error("Doob dominance M ≥ Y violated")
	}
	// Increments should be √n-scale: a handful of standard deviations.
	if v := metric(t, res, "max_step_per_sqrtn"); v > 8 {
		t.Errorf("martingale increment %v·√n too large for condition (iii)", v)
	}
}

func TestF2Case1(t *testing.T) {
	res := runExp(t, "F2")
	if v := metric(t, res, "max_cross_rate"); v > 0.05 {
		t.Errorf("Case 1 chain crossed a₃n with rate %v (paper: ≈0)", v)
	}
}

func TestF3Case2(t *testing.T) {
	res := runExp(t, "F3")
	if v := metric(t, res, "max_cross_rate"); v > 0.05 {
		t.Errorf("Case 2 chain crossed a₁n with rate %v (paper: ≈0)", v)
	}
}

func TestF4Dual(t *testing.T) {
	res := runExp(t, "F4")
	if v := metric(t, res, "min_coalesce_rate"); v < 0.9 {
		t.Errorf("coalescence within 2n·ln n rate = %v (paper: ≥ 1-1/n)", v)
	}
	if v := metric(t, res, "identity_violations"); v != 0 {
		t.Errorf("%v duality identity violations (it is an exact identity)", v)
	}
}

func TestX1Threshold(t *testing.T) {
	res := runExp(t, "X1")
	smallest := metric(t, res, "smallest_fast_ell")
	sqrt := metric(t, res, "sqrt_ell")
	if smallest > sqrt {
		t.Errorf("no fast ℓ found at or below √(n ln n)=%v", sqrt)
	}
	if v := metric(t, res, "rate_at_sqrt_ell"); v < 0.9 {
		t.Errorf("rate at ℓ=√(n ln n) = %v, the [15] regime must be fast", v)
	}
}

func TestX2MajorityFails(t *testing.T) {
	res := runExp(t, "X2")
	if v := metric(t, res, "majority_worst_rate"); v > 0.05 {
		t.Errorf("Majority solved a wrong-leaning instance with rate %v (paper: fails)", v)
	}
	if v := metric(t, res, "minority_worst_rate"); v < 0.95 {
		t.Errorf("Minority failed with rate %v (paper: solves)", v)
	}
}

func TestX3SampleSizeBoundary(t *testing.T) {
	res := runExp(t, "X3")
	if v := metric(t, res, "const_teleport_max"); v > 0.01 {
		t.Errorf("constant-ℓ one-round teleport rate = %v (paper: exp(-Ω(√n)))", v)
	}
	if v := metric(t, res, "log_teleport_min"); v < 0.95 {
		t.Errorf("log-ℓ teleport rate = %v (paper: →1)", v)
	}
}

func TestX12FaultRecovery(t *testing.T) {
	res := runExp(t, "X12")
	if v := metric(t, res, "voter_min_rate"); v < 0.95 {
		t.Errorf("voter recovery rate = %v, want ≈1 (self-stabilization)", v)
	}
	if v := metric(t, res, "voter_recovery_per_nlogn"); v > 5 {
		t.Errorf("voter E[recovery]/(n ln n) = %v, want a small constant (Theorem 2)", v)
	}
	if v := metric(t, res, "minority_trap_rate"); v > 0.05 {
		t.Errorf("Minority escaped the injected 3n/4 trap with rate %v (X6: exponential time)", v)
	}
}

func TestDeterminism(t *testing.T) {
	// Same seed, same table, twice — across the cheapest experiment.
	e, _ := ByID("T7")
	a, err := e.Run(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(quickOpts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.String() != b.Table.String() {
		t.Error("same seed produced different tables")
	}
}

func TestTablesRenderCSVFriendly(t *testing.T) {
	// Spot check that a produced table has rows and a header line.
	res := runExp(t, "T6")
	out := res.Table.String()
	if !strings.Contains(out, "rule") || strings.Count(out, "\n") < 4 {
		t.Errorf("table malformed:\n%s", out)
	}
}

func TestX4MemoryAblation(t *testing.T) {
	res := runExp(t, "X4")
	if v := metric(t, res, "memoryless_rate_max"); v > 0.05 {
		t.Errorf("memory-less control converged with rate %v (Theorem 1: trapped)", v)
	}
	if v := metric(t, res, "sync_rate_min"); v < 0.95 {
		t.Errorf("synchronized accumulator rate = %v, want ≈1 (reduction to [15])", v)
	}
	if v := metric(t, res, "unsync_rate_max"); v > 0.34 {
		t.Errorf("unsynced accumulator rate = %v; it should mostly fail to lock consensus", v)
	}
}

func TestX5MultiOpinion(t *testing.T) {
	res := runExp(t, "X5")
	if v := metric(t, res, "max_rate"); v > 0.05 {
		t.Errorf("q=3 chain converged within the budget with rate %v (footnote 2: bound transfers)", v)
	}
	if v := metric(t, res, "unseen_rounds"); v != 0 {
		t.Errorf("unseen opinion appeared in %v rounds (reduction must be exact)", v)
	}
}

func TestX6ExponentialTrap(t *testing.T) {
	res := runExp(t, "X6")
	if v := metric(t, res, "exp_rate_per_agent"); v <= 0.01 {
		t.Errorf("log E[tau] growth per agent = %v, want clearly positive (exponential trap)", v)
	}
	if v := metric(t, res, "fit_r2"); v < 0.95 {
		t.Errorf("exponential fit R2 = %v, want a clean linear log-fit", v)
	}
	if v := metric(t, res, "min_tau_over_n09"); v < 1 {
		t.Errorf("E[tau]/n^0.9 = %v, the exact time must dominate the bound", v)
	}
}

func TestX7ConflictingSources(t *testing.T) {
	res := runExp(t, "X7")
	if v := metric(t, res, "consensus_visits"); v != 0 {
		t.Errorf("consensus visited %v times with opposed sources (impossible)", v)
	}
	if v := metric(t, res, "worst_mean_error"); v > 0.08 {
		t.Errorf("zealot stationary mean off by %v", v)
	}
}

func TestX8PricePassivity(t *testing.T) {
	res := runExp(t, "X8")
	if v := metric(t, res, "active_per_log2n"); v > 5 {
		t.Errorf("active gossip took %v x log2(n) rounds, want O(log n) with a small constant", v)
	}
	if v := metric(t, res, "gap_exponent"); v < 0.6 || v > 1.4 {
		t.Errorf("active/passive gap exponent = %v, want ~1", v)
	}
}

func TestX9Topology(t *testing.T) {
	res := runExp(t, "X9")
	if v := metric(t, res, "min_rate"); v < 1 {
		t.Errorf("some topology runs failed to converge (min rate %v)", v)
	}
	ring := metric(t, res, "ring_slowdown")
	torus := metric(t, res, "torus_slowdown")
	if !(ring > torus && torus > 1) {
		t.Errorf("slowdown ordering violated: ring %v, torus %v (want ring > torus > 1)", ring, torus)
	}
	if v := metric(t, res, "expander_vs_complete"); v > 6 {
		t.Errorf("expander slowdown = %v, should stay within a small factor of complete", v)
	}
}

func TestX10Universality(t *testing.T) {
	res := runExp(t, "X10")
	if v := metric(t, res, "converged_cell_frac"); v > 0.02 {
		t.Errorf("%.1f%% of random-rule cells converged within the budget (theorem: none should)", v*100)
	}
}

func TestX11PopulationProtocols(t *testing.T) {
	res := runExp(t, "X11")
	if v := metric(t, res, "min_success_rate"); v < 1 {
		t.Errorf("a pairwise protocol failed (min rate %v)", v)
	}
	if v := metric(t, res, "epidemic_per_nlogn"); v > 6 {
		t.Errorf("epidemic used %v x n ln n interactions, want a small constant", v)
	}
	if v := metric(t, res, "voter_int_exponent"); v < 1.6 || v > 2.4 {
		t.Errorf("pairwise Voter interactions ~ n^%v, want ~2", v)
	}
}

func TestX13EvolveSearch(t *testing.T) {
	res := runExp(t, "X13")
	if v := metric(t, res, "max_ratio"); v > 2 {
		t.Errorf("worst evolved/Voter time ratio %v exceeds the 2x acceptance bound", v)
	}
	if v := metric(t, res, "zero_drift_rules"); v < 1 {
		t.Errorf("no evolved rule reached F≡0 exactly (%v); Voter-class rediscovery failed", v)
	}
	// At ℓ=1 every table entry is a pinned unanimity corner, so the genome
	// space collapses to the Voter and nothing is ever pruned; the pre-filter
	// only has work to do at ℓ≥2.
	if v := metric(t, res, "pruned_frac_ell1"); v != 0 {
		t.Errorf("ℓ=1: pruned fraction %v, want 0 (search space is the single pinned Voter genome)", v)
	}
	for _, ell := range []int{2, 3} {
		if v := metric(t, res, "pruned_frac_ell"+string(rune('0'+ell))); v <= 0 || v >= 1 {
			t.Errorf("ℓ=%d: bias pre-filter pruned fraction %v outside (0,1)", ell, v)
		}
	}
}
