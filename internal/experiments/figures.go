package experiments

import (
	"fmt"
	"math"

	"bitspread/internal/bias"
	"bitspread/internal/dual"
	"bitspread/internal/engine"
	"bitspread/internal/markov"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
	"bitspread/internal/stats"
	"bitspread/internal/table"
)

// figure1Escape reproduces Figure 1 / Theorem 6: a Markov chain that is a
// super-martingale on [a₁n, a₃n], cannot skip [a₁n, a₂n] in one step, and
// has √n-scale increments, started at (a₂+a₃)n/2, does not cross a₃n
// within T = n^{1-ε} steps — and the Doob decomposition behaves as the
// proof describes (M dominates Y; M stays in its Azuma corridor).
func figure1Escape() Experiment {
	return Experiment{
		ID:    "F1",
		Title: "Figure 1 / Theorem 6: martingale escape-time bound",
		Claim: "escape time across a₃n scales as n^≈1 ≫ n^{1-ε}; M_t ≥ Y_t throughout; Doob increments are O(√n)",
		Run: func(opts Options) (*Result, error) {
			ns := pick(opts, []int64{256, 1024, 4096}, []int64{1024, 8192, 65536, 524288})
			replicas := pick(opts, 25, 80)
			const a2, a3 = 0.50, 0.75
			// The driftless chain X_{t+1} ~ Binomial(n, X_t/n) satisfies
			// assumption (i) with equality, and (ii)-(iii) by Hoeffding:
			// the purest instance of the theorem (the Voter chain without
			// a source). Theorem 6 says escape needs ≥ n^{1-ε} steps for
			// every ε; the chain's true escape time is Θ(n), so the
			// finite-n signature is a scaling exponent ≈ 1 (it cannot
			// drop toward the n^{1/2}-style scaling a heavy-jump chain
			// would show).
			const a1 = 0.25
			tb := table.New("F1 — exit of the driftless chain from (a₁n, a₃n), started at (a₂+a₃)n/2",
				"n", "mean exit time", "p99", "frac exiting above", "max |ΔM|/√n", "M≥Y held")
			dominanceOK := true
			maxStepRatio := 0.0
			var xs, ys []float64
			for _, n := range ns {
				x0 := int64((a2 + a3) / 2 * float64(n))
				limit := 100 * n // generous: exit is Θ(n)
				var exitTimes []float64
				upExits := 0
				master := rng.New(subSeed(opts, uint64(n)))
				for rep := 0; rep < replicas; rep++ {
					g := master.Split()
					x := x0
					traj := make([]int64, 0, 1024)
					traj = append(traj, x)
					for t := int64(1); t <= limit; t++ {
						// Driftless: every agent resamples uniformly.
						//bitlint:probok x stays in [0,n] by construction and n >= 1, so the ratio is a probability
						x = g.Binomial(n, float64(x)/float64(n))
						traj = append(traj, x)
						if float64(x) >= a3*float64(n) || float64(x) <= a1*float64(n) {
							exitTimes = append(exitTimes, float64(t))
							if float64(x) >= a3*float64(n) {
								upExits++
							}
							break
						}
					}
					// Doob decomposition with the exact drift oracle
					// E[X_{t+1}|X_t=x] = x and the proof's shift of 1.
					d := markov.Decompose(traj, 1, func(x int64) float64 { return float64(x) })
					if !d.DominanceHolds(1e-6) {
						dominanceOK = false
					}
					if r := d.MaxMartingaleStep() / math.Sqrt(float64(n)); r > maxStepRatio {
						maxStepRatio = r
					}
				}
				s := stats.Summarize(exitTimes)
				tb.AddRowf(n, s.Mean, s.P99, float64(upExits)/float64(replicas), maxStepRatio, dominanceOK)
				if s.N > 0 {
					xs = append(xs, float64(n))
					ys = append(ys, s.Mean)
				}
			}
			fit, err := stats.FitPower(xs, ys)
			if err != nil {
				return nil, err
			}
			tb.AddNote("exit-time fit: τ ≈ %.3f·n^%.3f (R²=%.3f); Theorem 6 forbids exponents below 1-ε", fit.Coeff, fit.Exponent, fit.R2)
			tb.AddNote("condition (iii) check: martingale increments stay O(√n·polylog); dominance is Claims 7+9")
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"escape_exponent":    fit.Exponent,
					"fit_r2":             fit.R2,
					"max_step_per_sqrtn": maxStepRatio,
					"dominance_ok":       boolMetric(dominanceOK),
				},
				Verdict: fmt.Sprintf("interval exit time ~ n^%.3f (paper: ≥ n^{1-ε}, true order n); M≥Y always: %v; max |ΔM| = %.2f·√n",
					fit.Exponent, dominanceOK, maxStepRatio),
			}, nil
		},
	}
}

// figure2Case1 reproduces Figure 2 (Case 1 of Theorem 12): a rule whose
// bias is negative on the interval adjacent to 1 (Minority with constant
// ℓ), with correct opinion z=1, stays below a₃n for the whole n^{1-ε}
// budget.
func figure2Case1() Experiment {
	return Experiment{
		ID:    "F2",
		Title: "Figure 2 / Case 1: F<0 near p=1 traps the chain below a₃n (z=1)",
		Claim: "P(X reaches a₃n within n^0.9 rounds) ≈ 0 for Minority(ℓ=3) from X₀=(a₂+a₃)n/2",
		Run: func(opts Options) (*Result, error) {
			return runCaseFigure(opts, caseFigureParams{
				id:   "F2",
				rule: protocol.Minority(3),
			})
		},
	}
}

// figure3Case2 reproduces Figure 3 (Case 2): a rule whose bias is positive
// near 1 (Majority, BiasedVoter(+δ)), with correct opinion z=0, stays
// above a₁n for the whole budget.
func figure3Case2() Experiment {
	return Experiment{
		ID:    "F3",
		Title: "Figure 3 / Case 2: F>0 near p=1 traps the chain above a₁n (z=0)",
		Claim: "P(X reaches a₁n within n^0.9 rounds) ≈ 0 for Majority(3) and BiasedVoter(+0.05) from X₀=(a₁+a₂)n/2",
		Run: func(opts Options) (*Result, error) {
			return runCaseFigure(opts, caseFigureParams{
				id:   "F3",
				rule: protocol.Majority(3),
				more: []*protocol.Rule{protocol.BiasedVoter(3, 0.05)},
			})
		},
	}
}

type caseFigureParams struct {
	id   string
	rule *protocol.Rule
	more []*protocol.Rule
}

// runCaseFigure measures, for each rule, the probability of crossing the
// proof's blocking threshold within the n^{1-ε} budget, starting from the
// proof's X₀ with the adversarial z.
func runCaseFigure(opts Options, params caseFigureParams) (*Result, error) {
	ns := pick(opts, []int64{512, 2048}, []int64{4096, 65536, 1048576})
	replicas := pick(opts, 25, 100)
	const exp = 0.9
	rules := append([]*protocol.Rule{params.rule}, params.more...)
	tb := table.New(params.id+" — crossing probability of the blocking threshold within ⌈n^0.9⌉ rounds",
		"rule", "case", "n", "z", "X₀/n", "threshold/n", "P(cross ≤ T)")
	maxCross := 0.0
	for _, r := range rules {
		a := bias.For(r)
		c, ok := a.ProofConstants()
		if !ok {
			return nil, fmt.Errorf("experiments: %s: rule %v has zero bias, not a case rule", params.id, r)
		}
		for _, n := range ns {
			budget := polyCap(n, exp)
			x0 := int64(c.X0Frac * float64(n))
			// Case 1 blocks upward crossings of a₃; Case 2 blocks downward
			// crossings of a₁.
			up := c.Z == 1
			threshold := c.A3
			if !up {
				threshold = c.A1
			}
			master := rng.New(subSeed(opts, uint64(n)+hash(r.Name())))
			crossings := 0
			for rep := 0; rep < replicas; rep++ {
				g := master.Split()
				x := x0
				for t := int64(1); t <= budget; t++ {
					x = engine.StepCount(r, n, c.Z, x, g)
					if (up && float64(x) >= threshold*float64(n)) ||
						(!up && float64(x) <= threshold*float64(n)) {
						crossings++
						break
					}
				}
			}
			rate := float64(crossings) / float64(replicas)
			maxCross = math.Max(maxCross, rate)
			tb.AddRowf(r.Name(), a.Classify().String(), n, c.Z, c.X0Frac, threshold, rate)
		}
	}
	tb.AddNote("thresholds and starts derived from the rule's bias-root structure (Theorem 12 proof)")
	return &Result{
		Table: tb,
		Metrics: map[string]float64{
			"max_cross_rate": maxCross,
		},
		Verdict: fmt.Sprintf("max crossing probability %.3f within the n^0.9 budget (paper: ≈0)", maxCross),
	}, nil
}

// figure4Dual reproduces Figure 4 / Appendix B: the coalescing-walk dual
// of the Voter absorbs into the source within 2n·ln n rounds w.h.p., and
// the duality identity holds exactly on recorded executions.
func figure4Dual() Experiment {
	return Experiment{
		ID:    "F4",
		Title: "Figure 4 / Appendix B: coalescing-walk dual of the Voter",
		Claim: "P(full coalescence ≤ 2n·ln n) ≥ 1-1/n; duality identity exact",
		Run: func(opts Options) (*Result, error) {
			ns := pick(opts, []int64{64, 256}, []int64{256, 1024, 4096})
			replicas := pick(opts, 30, 100)
			tb := table.New("F4 — dual-process coalescence into the source",
				"n", "bound 2n·ln n", "P(coalesce ≤ bound)", "mean steps", "steps/bound")
			minRate := 1.0
			for _, n := range ns {
				bound := int64(2 * float64(n) * math.Log(float64(n)))
				master := rng.New(subSeed(opts, uint64(n)*7))
				var steps []float64
				absorbed := 0
				for rep := 0; rep < replicas; rep++ {
					res := dual.CoalescenceTime(n, bound, master.Split(), false)
					if res.Absorbed {
						absorbed++
						steps = append(steps, float64(res.Steps))
					}
				}
				rate := float64(absorbed) / float64(replicas)
				minRate = math.Min(minRate, rate)
				s := stats.Summarize(steps)
				tb.AddRowf(n, bound, rate, s.Mean, s.Mean/float64(bound))
			}

			// Exact duality identity on a recorded execution.
			g := rng.New(subSeed(opts, 4242))
			const dn, dz = 48, 1
			horizon := int(2 * dn * math.Log(dn))
			exec, err := dual.Run(dn, horizon, dz, dn/3, g)
			if err != nil {
				return nil, err
			}
			initial := exec.OpinionsAt(0)
			final := exec.OpinionsAt(horizon)
			identityViolations := 0
			for i := 0; i < dn; i++ {
				if final[i] != initial[exec.WalkEndpoint(i)] {
					identityViolations++
				}
				if exec.WalkHitsSource(i) && int(final[i]) != dz {
					identityViolations++
				}
			}
			tb.AddNote("duality identity checked on a recorded n=%d execution: %d violations", dn, identityViolations)
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"min_coalesce_rate":   minRate,
					"identity_violations": float64(identityViolations),
				},
				Verdict: fmt.Sprintf("coalescence within 2n·ln n with probability ≥ %.3f (paper: ≥ 1-1/n); duality violations: %d (paper: 0, it is an identity)",
					minRate, identityViolations),
			}, nil
		},
	}
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
