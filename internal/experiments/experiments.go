// Package experiments defines the reproduction harness: one runnable
// experiment per theorem, proposition and figure of the paper (plus the
// context results it builds on and the extension studies from the
// discussion section). Each experiment produces the table of rows its
// statement predicts, together with headline metrics that the test suite
// and EXPERIMENTS.md assert on.
//
// The paper is a brief announcement with no empirical tables, so "the
// evaluation" is its set of formal claims; every claim becomes a
// finite-size, seeded Monte-Carlo (or exact Markov) measurement whose
// shape — who wins, by what growth order, where crossovers fall — must
// match the statement. See DESIGN.md §4 for the full index.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"bitspread/internal/engine"
	"bitspread/internal/sim"
)

// Options control experiment sizing and reproducibility.
type Options struct {
	// Seed drives all randomness; equal seeds give identical outputs.
	Seed uint64
	// Workers bounds simulation concurrency (<= 0: GOMAXPROCS).
	Workers int
	// Quick shrinks population sizes and replica counts so the whole suite
	// runs in seconds (used by `go test`); full-size runs are the default
	// for the benchmark harness and cmd/bitsweep.
	Quick bool
	// Ctx, if non-nil, cancels in-flight simulations at round boundaries
	// (cmd/bitsweep wires SIGINT/SIGTERM and -timeout through it). A
	// cancelled experiment returns the context error rather than a
	// partial table.
	Ctx context.Context
	// Journal, if non-nil, checkpoints every finished replica so an
	// interrupted sweep can resume without recomputation.
	Journal *sim.Journal
	// Probe, if non-nil, is attached to every engine run of the suite as
	// Config.Probe (it must be concurrency-safe; internal/obs.Metrics is
	// the standard choice). Probes never change results.
	Probe engine.Probe
	// Observer, if non-nil, receives run-level lifecycle events from
	// every sim task of the suite (internal/obs.RunObserver is the
	// standard choice).
	Observer sim.Observer
}

// ctx resolves the run context, defaulting to context.Background().
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Result is an experiment's output: the rendered table plus named metrics
// for programmatic assertions.
type Result struct {
	// Table holds the rows the experiment regenerates.
	Table fmt.Stringer
	// Metrics are headline numbers, e.g. "exponent" or "max_ratio".
	Metrics map[string]float64
	// Verdict is a one-line comparison of prediction vs measurement.
	Verdict string
}

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	// ID is the index key used by DESIGN.md, EXPERIMENTS.md, bench targets
	// and cmd/bitsweep: T1..T7, F1..F4, X1..X3.
	ID string
	// Title is a short human-readable name.
	Title string
	// Claim states what the paper predicts for this experiment.
	Claim string
	// Run executes the experiment.
	Run func(Options) (*Result, error)
}

// registry is populated by the experiment files' constructors.
func registry() []Experiment {
	return []Experiment{
		table1LowerBound(),
		table2VoterUpper(),
		table3MinorityBigSample(),
		table4Sequential(),
		table5Prop3(),
		table6JumpBound(),
		table7Drift(),
		figure1Escape(),
		figure2Case1(),
		figure3Case2(),
		figure4Dual(),
		x1Threshold(),
		x2MajorityFails(),
		x3SampleSizeBoundary(),
		x4MemoryAblation(),
		x5MultiOpinion(),
		x6ExponentialTrap(),
		x7ConflictingSources(),
		x8PricePassivity(),
		x9Topology(),
		x10Universality(),
		x11PopulationProtocols(),
		x12FaultRecovery(),
		x13EvolveSearch(),
	}
}

// All returns every registered experiment, ordered by ID group
// (T*, F*, X*) as registered.
func All() []Experiment {
	return registry()
}

// ByID returns the experiment with the given ID (case-sensitive).
func ByID(id string) (Experiment, bool) {
	for _, e := range registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	exps := registry()
	ids := make([]string, 0, len(exps))
	for _, e := range exps {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}
