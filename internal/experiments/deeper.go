package experiments

import (
	"fmt"
	"math"

	"bitspread/internal/engine"
	"bitspread/internal/markov"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
	"bitspread/internal/stats"
	"bitspread/internal/table"
)

// x6ExponentialTrap sharpens Theorem 1 for the Minority dynamics with
// exact computations: the paper proves every constant-ℓ protocol needs
// n^{1-ε} rounds, but for drift-trapped rules the truth is far stronger —
// the exact expected convergence time grows exponentially in n, because
// escaping the interior attractor requires a large-deviation excursion
// against the bias. The experiment computes E[τ] exactly (dense linear
// solve, no Monte Carlo) and fits log E[τ] against n.
func x6ExponentialTrap() Experiment {
	return Experiment{
		ID:    "X6",
		Title: "Beyond Theorem 1: the Minority trap is exponential (exact)",
		Claim: "exact E[τ] from the adversarial start grows exponentially in n (log E[τ] ≈ c·n), far above the n^{1-ε} bound",
		Run: func(opts Options) (*Result, error) {
			// E[τ] ~ e^{0.6n}: beyond n ≈ 56 the value exceeds what a float64
			// linear solve can resolve (the system's conditioning tracks E[τ]),
			// so the sweep stays below that; the guard below catches any
			// numerical breakdown loudly instead of fitting garbage.
			ns := pick(opts, []int64{16, 24, 32, 40}, []int64{16, 24, 32, 40, 48, 56})
			tb := table.New("X6 — exact expected convergence time of Minority(ℓ=3), z=1, from X₀=3n/4",
				"n", "E[τ] rounds", "log E[τ]", "E[τ]/n^0.9")
			var xs, logTaus []float64
			minRatio := math.Inf(1)
			for _, n := range ns {
				chain, err := markov.ParallelChain(protocol.Minority(3), n, 1)
				if err != nil {
					return nil, err
				}
				h, err := chain.ExpectedHittingTimes(map[int]bool{int(n): true})
				if err != nil {
					return nil, err
				}
				x0 := 3 * n / 4
				tau := h[x0]
				if math.IsNaN(tau) || math.IsInf(tau, 0) || tau <= 0 {
					return nil, fmt.Errorf("experiments: X6 exact solve unstable at n=%d (E[τ]=%v); keep n ≤ 56", n, tau)
				}
				ratio := tau / math.Pow(float64(n), 0.9)
				minRatio = math.Min(minRatio, ratio)
				tb.AddRowf(n, tau, math.Log(tau), ratio)
				xs = append(xs, float64(n))
				logTaus = append(logTaus, math.Log(tau))
			}
			fit, err := stats.FitLinear(xs, logTaus)
			if err != nil {
				return nil, err
			}
			tb.AddNote("linear fit log E[τ] ≈ %.4f·n %+.2f (R²=%.3f): exponential growth rate per agent", fit.Slope, fit.Intercept, fit.R2)
			tb.AddNote("dense-chain linear solves — no Monte-Carlo error in this table")
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"exp_rate_per_agent": fit.Slope,
					"fit_r2":             fit.R2,
					"min_tau_over_n09":   minRatio,
				},
				Verdict: fmt.Sprintf(
					"log E[τ] grows at %.4f per agent (R²=%.3f) — exponential, consistent with (and far beyond) the Ω(n^{1-ε}) bound; min E[τ]/n^0.9 = %.3g",
					fit.Slope, fit.R2, minRatio),
			}, nil
		},
	}
}

// x7ConflictingSources reproduces the related-work boundary (§1.3): with
// stubborn sources on both sides (the majority-bit-dissemination setting)
// no configuration is absorbing, so no memory-less passive protocol can
// stabilize — and for the Voter the process instead mixes around the
// classical zealot stationary mean s1/(s1+s0).
func x7ConflictingSources() Experiment {
	return Experiment{
		ID:    "X7",
		Title: "§1.3: conflicting sources — stabilization is impossible, the zealot mean emerges",
		Claim: "consensus is visited 0 times; the Voter's time-average fraction tracks s1/(s1+s0)",
		Run: func(opts Options) (*Result, error) {
			n := pick(opts, int64(512), int64(8192))
			rounds := pick(opts, int64(40_000), int64(400_000))
			tb := table.New(fmt.Sprintf("X7 — Voter with opposed stubborn sources (n=%d, %d rounds)", n, rounds),
				"s1", "s0", "predicted mean", "measured mean", "consensus visits")
			worstErr := 0.0
			var visits int64
			cases := []struct{ s1, s0 int64 }{
				{1, 1}, {3, 1}, {1, 3}, {8, 2}, {5, 5},
			}
			for i, c := range cases {
				res, err := engine.RunConflict(engine.ConflictConfig{
					N:        n,
					Rule:     protocol.Voter(1),
					Sources1: c.s1,
					Sources0: c.s0,
					X0:       n / 2,
					Rounds:   rounds,
				}, rng.New(subSeed(opts, uint64(i)+300)))
				if err != nil {
					return nil, err
				}
				want := float64(c.s1) / float64(c.s1+c.s0)
				errAbs := math.Abs(res.MeanFraction - want)
				worstErr = math.Max(worstErr, errAbs)
				visits += res.ConsensusVisits
				tb.AddRowf(c.s1, c.s0, want, res.MeanFraction, res.ConsensusVisits)
			}
			tb.AddNote("prediction: the drift fixed point s1+(x/n)(n-s1-s0) = x, i.e. x*/n = s1/(s1+s0) (zealot voter model)")
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"worst_mean_error": worstErr,
					"consensus_visits": float64(visits),
				},
				Verdict: fmt.Sprintf(
					"consensus visited %d times across all cases ([7]: impossible with passive communication); worst |measured-predicted| mean = %.4f",
					visits, worstErr),
			}, nil
		},
	}
}
