package experiments

import (
	"fmt"
	"math"

	"bitspread/internal/evolve"
	"bitspread/internal/protocol"
	"bitspread/internal/table"
)

// x13EvolveSearch runs the evolutionary search over the bytecode rule
// space (internal/evolve on internal/vm genomes) once per sample size
// ℓ ∈ {1, 2, 3} and maps the resulting convergence-time frontier against
// the Voter baseline.
//
// The paper's Theorem 12 machinery is used generatively here: the bias
// polynomial's root/drift analysis prunes provably-slow genomes before
// any simulation, so the search is pushed toward the F ≡ 0 (Lemma 11)
// regime — and the experiment checks that it lands there, i.e. that a
// Voter-class rule is *rediscovered* from random genomes. At ℓ = 1 and
// ℓ = 2 the Voter is the unique unanimity-compliant F ≡ 0 rule, so the
// rediscovery is exact; at ℓ = 3 the manifold has genuine extra freedom
// and the search may surface a non-Voter zero-drift rule whose measured
// time still tracks the Voter's — the frontier the related work
// (universal protocols, memory separations) asks about.
func x13EvolveSearch() Experiment {
	return Experiment{
		ID:    "X13",
		Title: "Evolutionary rule search over bytecode protocols",
		Claim: "bias-guided evolution rediscovers Voter-class (F≡0) rules from random genomes; the evolved frontier at ℓ∈{1,2,3} stays within 2× of Voter at measurement scale",
		Run: func(opts Options) (*Result, error) {
			measureN := pick(opts, int64(1<<12), int64(1<<16))
			searchOpts := evolve.Options{
				Population:  pick(opts, 32, 48),
				Generations: pick(opts, 60, 100),
				SimN:        pick(opts, int64(256), int64(1024)),
			}
			measureSeeds := []uint64{
				subSeed(opts, 1301), subSeed(opts, 1302), subSeed(opts, 1303),
			}

			tb := table.New(
				fmt.Sprintf("X13 — evolved rules vs Voter (measured at n=%d, worst over z)", measureN),
				"ℓ", "evolved rule", "case", "drift", "evolved rounds", "Voter rounds", "ratio", "pruned/evals")
			metrics := map[string]float64{}
			maxRatio, zeroDrift := 0.0, 0
			for _, ell := range []int{1, 2, 3} {
				if err := opts.ctx().Err(); err != nil {
					return nil, err
				}
				so := searchOpts
				so.Ell = ell
				so.Seed = subSeed(opts, 1300+uint64(ell))
				out, err := evolve.Search(so)
				if err != nil {
					return nil, err
				}
				best := out.Best
				evolvedRounds, err := evolve.Measure(best.Rule, measureN, 0, measureSeeds)
				if err != nil {
					return nil, err
				}
				voterRounds, err := evolve.Measure(protocol.Voter(ell), measureN, 0, measureSeeds)
				if err != nil {
					return nil, err
				}
				ratio := evolvedRounds / voterRounds
				maxRatio = math.Max(maxRatio, ratio)
				//bitlint:floatexact exact zero marks the F≡0 manifold (evolve's polish lands there exactly); this counts membership, not closeness
				if best.Drift == 0 {
					zeroDrift++
				}
				g0, g1 := best.Rule.Tables()
				tb.AddRowf(ell,
					fmt.Sprintf("g0=%v g1=%v", fmtTable(g0), fmtTable(g1)),
					best.Case.String(), fmtF(best.Drift),
					fmtF(evolvedRounds), fmtF(voterRounds), fmtF(ratio),
					fmt.Sprintf("%d/%d", out.Pruned, out.Evaluations))
				metrics[fmt.Sprintf("ratio_ell%d", ell)] = ratio
				metrics[fmt.Sprintf("drift_ell%d", ell)] = best.Drift
				metrics[fmt.Sprintf("pruned_frac_ell%d", ell)] = float64(out.Pruned) / float64(out.Evaluations)
			}
			tb.AddNote("genomes are vm bytecode (table form); unanimity corners pinned, Prop 3 holds by construction")
			tb.AddNote("bias pre-filter: genomes with max|F| above the cutoff are scored analytically (Theorem 12) and never simulated")
			metrics["max_ratio"] = maxRatio
			metrics["zero_drift_rules"] = float64(zeroDrift)
			return &Result{
				Table:   tb,
				Metrics: metrics,
				Verdict: fmt.Sprintf(
					"%d of 3 evolved rules have exactly F≡0 (Voter class); worst evolved/Voter time ratio %.2f at n=%d (bound: 2)",
					zeroDrift, maxRatio, measureN),
			}, nil
		},
	}
}

// fmtTable renders a probability table compactly.
func fmtTable(g []float64) string {
	s := "["
	for i, v := range g {
		if i > 0 {
			s += " "
		}
		s += fmtF(v)
	}
	return s + "]"
}
