package experiments

import (
	"fmt"
	"math"

	"bitspread/internal/engine"
	"bitspread/internal/fault"
	"bitspread/internal/protocol"
	"bitspread/internal/sim"
	"bitspread/internal/table"
)

// x12FaultRecovery probes the self-stabilization claim head on: the paper's
// protocols are memory-less precisely so that the process forgets any
// transient corruption, so a mid-run adversarial perturbation of a
// converged instance is just another initial configuration. For the Voter
// that means recovery in O(n log n) rounds from anything the fault layer
// can inject (Theorem 2 applied to the post-fault configuration); for
// Minority with constant sample size it means the opposite — an injected
// 3n/4 configuration is the drift trap of Theorem 1/X6, and the process is
// stuck again. Faults are injected at round boundaries by the seeded
// internal/fault schedules, and recovery is measured from the schedule's
// horizon (the last round it touches) to consensus.
func x12FaultRecovery() Experiment {
	return Experiment{
		ID:    "X12",
		Title: "Fault injection: recovery of memory-less protocols from mid-run perturbations",
		Claim: "Voter re-converges in O(n log n) rounds from every injected configuration; Minority(ℓ=3) is re-trapped by an adversarial reset",
		Run: func(opts Options) (*Result, error) {
			ns := pick(opts, []int64{24, 48}, []int64{256, 512})
			reps := pick(opts, 16, 200)
			const r0 = 8 // injection round: the instance is converged well before it

			// The adversarial reset is rule-specific: all-wrong is the
			// Voter's worst configuration, while Minority's trap is the
			// mixed 3n/4 configuration of X6 (from all-wrong, Minority
			// recovers in one round — everyone sees only zeros).
			type scenario struct {
				name  string
				sched func(r *protocol.Rule) *fault.Schedule
			}
			scenarios := []scenario{
				{"adversarial-reset", func(r *protocol.Rule) *fault.Schedule {
					if r.Name() == "Minority" {
						return fault.Must(fault.ResetAt(r0, 0.25, 0))
					}
					return fault.Must(fault.ResetAt(r0, 1, 0))
				}},
				{"churn-half", func(*protocol.Rule) *fault.Schedule {
					return fault.Must(fault.ChurnAt(r0, 0.5, 0.5))
				}},
				{"stubborn-window", func(*protocol.Rule) *fault.Schedule {
					return fault.Must(fault.StubbornFor(r0, 8, 0.25, 0))
				}},
				{"source-crash", func(*protocol.Rule) *fault.Schedule {
					return fault.Must(fault.SourceCrashFor(r0, 8))
				}},
			}
			rules := []*protocol.Rule{protocol.Voter(1), protocol.Minority(3)}

			tb := table.New("X12 — recovery from faults injected into a converged instance (z=1, X₀=n)",
				"rule", "fault", "n", "recovery rate", "E[recovery] rounds", "E[recovery]/(n ln n)")
			voterMinRate := 1.0
			voterMaxNorm := 0.0
			minorityTrapRate := 0.0
			salt := uint64(1200)
			for _, r := range rules {
				for _, sc := range scenarios {
					for _, n := range ns {
						s := sc.sched(r)
						nlogn := float64(n) * math.Log(float64(n))
						cfg := engine.Config{
							N:         n,
							Rule:      r,
							Z:         1,
							X0:        n, // converged before the schedule fires
							MaxRounds: s.Horizon() + int64(8*nlogn),
							Faults:    s,
						}
						salt++
						m, err := measure(opts, fmt.Sprintf("x12-%s-%s-%d", r.Name(), sc.name, n),
							cfg, sim.Parallel, reps, salt)
						if err != nil {
							return nil, err
						}
						recovery := m.meanTau - float64(s.Horizon())
						norm := recovery / nlogn
						tb.AddRowf(r.Name(), sc.name, n, fmtRate(m), fmtF(recovery), fmtF(norm))
						if r.Name() == "Voter" {
							voterMinRate = math.Min(voterMinRate, m.rate)
							if !math.IsNaN(norm) {
								voterMaxNorm = math.Max(voterMaxNorm, norm)
							}
						}
						if r.Name() == "Minority" && sc.name == "adversarial-reset" && n == ns[len(ns)-1] {
							minorityTrapRate = m.rate
						}
					}
				}
			}
			tb.AddNote("budget per cell: horizon + 8·n·ln n rounds; recovery counts rounds past the schedule horizon")
			tb.AddNote("Minority fails every scenario, not just the tailored reset: any perturbation seeds a mixed configuration that cascades into the 3n/4 drift trap")
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"voter_min_rate":           voterMinRate,
					"voter_recovery_per_nlogn": voterMaxNorm,
					"minority_trap_rate":       minorityTrapRate,
				},
				Verdict: fmt.Sprintf(
					"Voter recovered every injected configuration (min rate %s, E[recovery] ≤ %s·n ln n); Minority(3) re-trapped by the 3n/4 reset (rate %s within the budget)",
					fmtF(voterMinRate), fmtF(voterMaxNorm), fmtF(minorityTrapRate)),
			}, nil
		},
	}
}
