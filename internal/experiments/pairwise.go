package experiments

import (
	"fmt"
	"math"

	"bitspread/internal/popproto"
	"bitspread/internal/rng"
	"bitspread/internal/stats"
	"bitspread/internal/table"
)

// x11PopulationProtocols reproduces the [22] contrast drawn in §1.3: in
// the population-protocol model — active pairwise communication, where an
// interaction reads the partner's full state — bit dissemination is
// solvable with O(1) memory, unlike in the paper's passive memory-less
// setting. Three rows per n:
//
//   - Epidemic: the broadcast primitive completes in Θ(n log n)
//     interactions (Θ(log n) parallel time);
//   - PairwiseVoter + source: the sequential Voter in pairwise clothing,
//     Θ(n²) interactions (the passive baseline);
//   - FourStateMajority + pinned strong source, from an 80% wrong
//     majority: the source grinds down strong opposers (it annihilates
//     without being consumed) and wins — O(1) states suffice with active
//     communication.
func x11PopulationProtocols() Experiment {
	return Experiment{
		ID:    "X11",
		Title: "[22] contrast: population protocols solve BD with O(1) memory",
		Claim: "epidemic ~ n log n interactions; 4-state majority with a pinned source beats an 80% wrong majority; pairwise Voter matches the sequential Θ(n²)",
		Run: func(opts Options) (*Result, error) {
			ns := pick(opts, []int{128, 256, 512}, []int{256, 1024, 4096})
			replicas := pick(opts, 8, 25)
			tb := table.New("X11 — pairwise (active) protocols, interactions to success",
				"protocol", "n", "P(success)", "mean interactions", "/ n·ln n")
			type rowSpec struct {
				name  string
				run   func(n int, g *rng.RNG) (bool, int64, error)
				track *[]float64 // per-n normalized means for metrics
			}
			var epiNorm, majNorm, voterNorm []float64
			rows := []rowSpec{
				{"Epidemic (broadcast)", func(n int, g *rng.RNG) (bool, int64, error) {
					res, err := popproto.Run(popproto.Config{
						N:        n,
						Protocol: popproto.Epidemic{},
						Init: func(i int) popproto.State {
							if i == 0 {
								return 1
							}
							return 0
						},
						SourceState: -1,
						Stop:        func(out [2]int) bool { return out[1] == n },
					}, g)
					return res.Stopped, res.Interactions, err
				}, &epiNorm},
				{"4-state majority + source (80% wrong)", func(n int, g *rng.RNG) (bool, int64, error) {
					res, err := popproto.Run(popproto.Config{
						N:        n,
						Protocol: popproto.FourStateMajority{},
						Init: func(i int) popproto.State {
							if i < n/5 {
								return popproto.StrongOne
							}
							return popproto.StrongZero
						},
						SourceState:     int(popproto.StrongOne),
						MaxInteractions: int64(n) * int64(n) * 64,
						Stop:            func(out [2]int) bool { return out[1] == n },
					}, g)
					return res.Stopped, res.Interactions, err
				}, &majNorm},
				{"Pairwise Voter + source (all wrong)", func(n int, g *rng.RNG) (bool, int64, error) {
					res, err := popproto.Run(popproto.Config{
						N:           n,
						Protocol:    popproto.PairwiseVoter{},
						Init:        func(int) popproto.State { return 0 },
						SourceState: 1,
						Stop:        func(out [2]int) bool { return out[1] == n },
					}, g)
					return res.Stopped, res.Interactions, err
				}, &voterNorm},
			}

			minRate := 1.0
			for _, row := range rows {
				for _, n := range ns {
					master := rng.New(subSeed(opts, uint64(n)+hash(row.name)))
					var times []float64
					ok := 0
					for rep := 0; rep < replicas; rep++ {
						success, inter, err := row.run(n, master.Split())
						if err != nil {
							return nil, err
						}
						if success {
							ok++
							times = append(times, float64(inter))
						}
					}
					rate := float64(ok) / float64(replicas)
					minRate = math.Min(minRate, rate)
					mean := stats.Summarize(times).Mean
					norm := mean / (float64(n) * math.Log(float64(n)))
					*row.track = append(*row.track, norm)
					tb.AddRowf(row.name, n, rate, mean, norm)
				}
			}
			epiMax := maxOf(epiNorm)
			// Voter and majority scale ~n²: their n·ln n-normalized column
			// must grow; fit interactions ~ n^e for the voter.
			var xs []float64
			for _, n := range ns {
				xs = append(xs, float64(n))
			}
			voterFit, err := stats.FitPower(xs, denorm(voterNorm, ns))
			if err != nil {
				return nil, err
			}
			tb.AddNote("epidemic stays O(n ln n) (col ≤ %.2f); pairwise Voter interactions ~ n^%.2f (sequential Θ(n²))", epiMax, voterFit.Exponent)
			tb.AddNote("the same O(1)-memory agents are impossible in the passive model (Theorem 1): activeness is the difference")
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"min_success_rate":   minRate,
					"epidemic_per_nlogn": epiMax,
					"voter_int_exponent": voterFit.Exponent,
				},
				Verdict: fmt.Sprintf(
					"all protocols succeeded (min rate %.2f); epidemic ≤ %.2f·n·ln n interactions; pairwise Voter ~ n^%.2f; the 4-state-majority-with-source row solves BD with 2 bits of memory — active communication sidesteps the lower bound",
					minRate, epiMax, voterFit.Exponent),
			}, nil
		},
	}
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		m = math.Max(m, x)
	}
	return m
}

// denorm converts n·ln n-normalized means back to raw interaction counts.
func denorm(norm []float64, ns []int) []float64 {
	out := make([]float64, len(norm))
	for i, v := range norm {
		n := float64(ns[i])
		out[i] = v * n * math.Log(n)
	}
	return out
}
