package experiments

import (
	"fmt"
	"math"

	"bitspread/internal/bias"
	"bitspread/internal/engine"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
	"bitspread/internal/table"
)

// x10Universality probes Theorem 1's universal quantifier empirically:
// the theorem holds for *every* memory-less constant-ℓ protocol, so a
// scan over uniformly random valid rules must find none that converges
// within the n^{1-ε} budget from its own adversarial instance (which the
// bias analysis derives per rule, exactly as the Theorem 12 proof does).
//
// One honest caveat: the theorem is asymptotic. At a fixed n, a sampled
// rule can sit arbitrarily close to a degenerate root structure — a
// blocking interval of width O(1/√n), or drift of diffusive magnitude
// O(1/√n) — for which the slowness only materializes at larger n (for
// such rules even the proof's constants collapse onto the consensus).
// The scan therefore classifies each rule as *resolvable at this n* (its
// blocking interval and drift clear explicit √n-scale thresholds) or
// *deferred*; the zero-convergence assertion applies to the resolvable
// set, and the deferred count is reported, never hidden.
func x10Universality() Experiment {
	return Experiment{
		ID:    "X10",
		Title: "Universality scan: Theorem 1 over random protocols",
		Claim: "no resolvable sampled rule converges within n^0.9 from its bias-derived adversarial instance; rule space splits across the proof cases",
		Run: func(opts Options) (*Result, error) {
			n := pick(opts, int64(2048), int64(16384))
			ruleCount := pick(opts, 16, 80)
			replicas := pick(opts, 4, 10)
			ells := []int{2, 3, 5}
			budget := polyCap(n, 0.9)
			sqrtN := math.Sqrt(float64(n))

			tb := table.New(fmt.Sprintf("X10 — random valid rules vs their adversarial instances (n=%d, budget=%d)", n, budget),
				"ℓ", "rules", "case F<0 / F>0 / F≡0", "deferred", "conv. cells (resolvable)", "worst rule rate")
			master := rng.New(subSeed(opts, 777))
			totalCells, convCells, deferredTotal := 0, 0, 0
			worstRate := 0.0
			for _, ell := range ells {
				neg, pos, zero := 0, 0, 0
				deferred, ellConv, ellCells := 0, 0, 0
				ellWorst := 0.0
				for ri := 0; ri < ruleCount; ri++ {
					r := protocol.Random(ell, master.Split())
					a := bias.For(r)
					switch a.Classify() {
					case bias.CaseNegative:
						neg++
					case bias.CasePositive:
						pos++
					default:
						zero++
					}
					if !resolvableAt(a, sqrtN) {
						deferred++
						continue
					}
					cfg, c := engine.AdversarialConfig(r, n, budget)
					if a.Classify() == bias.CaseNegative {
						// As in T1: the proof's X₀=(a₂+a₃)/2 sits within
						// O((1-a₁)^{ℓ+1}·n) of the consensus, a nearly
						// driftless sliver at finite n; start mid-interval
						// where the trapping drift is representative.
						cfg.X0 = int64((c.A1 + c.A3) / 2 * float64(n))
					}
					conv := 0
					for rep := 0; rep < replicas; rep++ {
						res, err := engine.RunParallel(cfg, master.Split())
						if err != nil {
							return nil, err
						}
						ellCells++
						if res.Converged {
							conv++
							ellConv++
						}
					}
					ellWorst = math.Max(ellWorst, float64(conv)/float64(replicas))
				}
				totalCells += ellCells
				convCells += ellConv
				deferredTotal += deferred
				worstRate = math.Max(worstRate, ellWorst)
				tb.AddRowf(ell, ruleCount,
					fmt.Sprintf("%d / %d / %d", neg, pos, zero),
					deferred,
					fmt.Sprintf("%d/%d", ellConv, ellCells), ellWorst)
			}
			tb.AddNote("each rule's z, X₀ derived from its own F_n root structure (the Theorem 12 construction)")
			tb.AddNote("deferred = blocking interval narrower than 10/√n or drift below 1/√n at this n; their slowness needs larger n")
			convFrac := 0.0
			if totalCells > 0 {
				convFrac = float64(convCells) / float64(totalCells)
			}
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"converged_cell_frac": convFrac,
					"worst_rule_rate":     worstRate,
					"deferred_rules":      float64(deferredTotal),
					"resolvable_cells":    float64(totalCells),
				},
				Verdict: fmt.Sprintf(
					"%d of %d resolvable (rule, replica) cells converged within n^0.9 (%.3f; paper: 0 for every rule); %d rules deferred to larger n; worst single-rule rate %.2f",
					convCells, totalCells, convFrac, deferredTotal, worstRate),
			}, nil
		},
	}
}

// resolvableAt reports whether the rule's adversarial instance can
// exhibit the asymptotic slowness at population scale √n: the blocking
// interval next to p=1 must be wider than 10/√n, and the drift at its
// midpoint must exceed the diffusive scale 1/√n.
func resolvableAt(a *bias.Analysis, sqrtN float64) bool {
	lo, hi, _, ok := a.IntervalNearOne()
	if !ok {
		return false // F ≡ 0: the driftless regime needs the scaling view
	}
	if (hi-lo)*sqrtN < 10 {
		return false
	}
	mid := (lo + hi) / 2
	return math.Abs(a.Drift(mid))*sqrtN >= 1
}
