package experiments

import (
	"math"
	"strconv"

	"bitspread/internal/engine"
	"bitspread/internal/protocol"
	"bitspread/internal/sim"
)

// pick returns quick when opts.Quick, full otherwise — the single sizing
// switch used everywhere.
func pick[T any](opts Options, quick, full T) T {
	if opts.Quick {
		return quick
	}
	return full
}

// subSeed derives a distinct deterministic seed per experiment component.
func subSeed(opts Options, salt uint64) uint64 {
	return opts.Seed*0x9e3779b97f4a7c15 + salt*0xbf58476d1ce4e5b9 + 1
}

// polyCap returns ⌈n^exp⌉, the round budget n^{1-ε} used by the
// lower-bound experiments (exp = 1-ε).
func polyCap(n int64, exp float64) int64 {
	return int64(math.Ceil(math.Pow(float64(n), exp)))
}

// measured is one Monte-Carlo cell: a task's convergence statistics.
type measured struct {
	out     sim.Outcome
	rate    float64
	rateLo  float64
	rateHi  float64
	meanTau float64 // mean rounds over converged replicas (NaN if none)
	p99Tau  float64
}

// measure runs replicas of the given configuration and aggregates. It
// honours opts.Ctx (cancellation surfaces as the context error) and
// checkpoints finished replicas into opts.Journal when one is set.
func measure(opts Options, name string, cfg engine.Config, mode sim.Mode, replicas int, salt uint64) (measured, error) {
	if opts.Probe != nil {
		cfg.Probe = opts.Probe
	}
	out, err := sim.RunContext(opts.ctx(), sim.Task{
		Name:     name,
		Config:   cfg,
		Mode:     mode,
		Replicas: replicas,
		Seed:     subSeed(opts, salt),
		Observer: opts.Observer,
	}, opts.Workers, opts.Journal)
	if err != nil {
		return measured{}, err
	}
	m := measured{out: out}
	m.rate, m.rateLo, m.rateHi = out.SuccessRate()
	s := out.RoundsSummary()
	if s.N > 0 {
		m.meanTau = s.Mean
		m.p99Tau = s.P99
	} else {
		m.meanTau = math.NaN()
		m.p99Tau = math.NaN()
	}
	return m, nil
}

// adversarialTask builds the Theorem 12 adversarial instance for a rule.
func adversarialTask(r *protocol.Rule, n, maxRounds int64) engine.Config {
	cfg, _ := engine.AdversarialConfig(r, n, maxRounds)
	return cfg
}

// worstCaseTask builds the all-wrong instance for a rule.
func worstCaseTask(r *protocol.Rule, n int64, z int, maxRounds int64) engine.Config {
	return engine.Config{
		N:         n,
		Rule:      r,
		Z:         z,
		X0:        engine.WorstCaseInit(n, z),
		MaxRounds: maxRounds,
	}
}

// fmtRate renders a success rate with its Wilson interval.
func fmtRate(m measured) string {
	return fmtF(m.rate) + " [" + fmtF(m.rateLo) + "," + fmtF(m.rateHi) + "]"
}

func fmtF(v float64) string {
	switch {
	case math.IsNaN(v):
		return "n/a"
	case math.IsInf(v, 1):
		return "inf"
	default:
		return strconv.FormatFloat(v, 'g', 4, 64)
	}
}
