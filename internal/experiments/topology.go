package experiments

import (
	"fmt"
	"math"

	"bitspread/internal/graph"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
	"bitspread/internal/stats"
	"bitspread/internal/table"
)

// x9Topology probes the model's complete-interaction assumption, in the
// spirit of the related opinion-dynamics work on graphs ([24]): restrict
// the ℓ samples to graph neighbors and measure how the Voter's
// source-driven convergence degrades with mixing. Prediction: complete
// and well-connected expanders (G(n,p) above the connectivity threshold)
// behave alike; low-dimensional lattices are polynomially slower; and the
// ordering complete ≤ G(n,p) ≪ torus ≪ ring holds throughout.
func x9Topology() Experiment {
	return Experiment{
		ID:    "X9",
		Title: "Topology sensitivity: bit dissemination beyond the complete graph",
		Claim: "Voter convergence time ordering: complete ≈ G(n,p) ≪ torus ≪ ring (mixing controls the source's reach)",
		Run: func(opts Options) (*Result, error) {
			side := pick(opts, 8, 16) // torus side; n = side²
			replicas := pick(opts, 8, 24)
			n := side * side
			capRounds := int64(n) * int64(n) * 8 // the 1-D ring needs Θ(n²)

			builders := []struct {
				name  string
				build func(g *rng.RNG) (graph.Topology, error)
			}{
				{"complete", func(*rng.RNG) (graph.Topology, error) { return graph.NewComplete(n) }},
				{"G(n, 4ln n/n)", func(g *rng.RNG) (graph.Topology, error) {
					p := 4 * math.Log(float64(n)) / float64(n)
					return graph.NewErdosRenyi(n, p, g)
				}},
				{"torus", func(*rng.RNG) (graph.Topology, error) { return graph.NewTorus(side, side) }},
				{"ring(k=1)", func(*rng.RNG) (graph.Topology, error) { return graph.NewRing(n, 1) }},
			}

			tb := table.New(fmt.Sprintf("X9 — Voter convergence from the all-wrong start by topology (n=%d, z=1)", n),
				"topology", "P(converge)", "mean τ", "τ / complete τ")
			means := make(map[string]float64, len(builders))
			minRate := 1.0
			for bi, b := range builders {
				master := rng.New(subSeed(opts, uint64(bi)*37+11))
				var taus []float64
				conv := 0
				for rep := 0; rep < replicas; rep++ {
					g := master.Split()
					topo, err := b.build(g)
					if err != nil {
						return nil, fmt.Errorf("experiments: X9 %s: %w", b.name, err)
					}
					res, err := graph.Run(graph.Config{
						Topology:    topo,
						Rule:        protocol.Voter(1),
						Z:           1,
						InitialOnes: 0,
						MaxRounds:   capRounds,
					}, g)
					if err != nil {
						return nil, err
					}
					if res.Converged {
						conv++
						taus = append(taus, float64(res.Rounds))
					}
				}
				rate := float64(conv) / float64(replicas)
				minRate = math.Min(minRate, rate)
				mean := math.NaN()
				if len(taus) > 0 {
					mean = stats.Summarize(taus).Mean
				}
				means[b.name] = mean
				ratio := mean / means["complete"]
				tb.AddRowf(b.name, rate, mean, ratio)
			}
			tb.AddNote("the source sits at node 0 (a hub for the star/ring labelings); ring runs are capped at 8n² rounds")

			slowRing := means["ring(k=1)"] / means["complete"]
			slowTorus := means["torus"] / means["complete"]
			erRatio := means["G(n, 4ln n/n)"] / means["complete"]
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"min_rate":             minRate,
					"ring_slowdown":        slowRing,
					"torus_slowdown":       slowTorus,
					"expander_vs_complete": erRatio,
				},
				Verdict: fmt.Sprintf(
					"all topologies converged (min rate %.2f); slowdowns vs complete: expander %.1f×, torus %.1f×, ring %.1f× (paper's uniform-sampling assumption = the fastest case)",
					minRate, erRatio, slowTorus, slowRing),
			}, nil
		},
	}
}
