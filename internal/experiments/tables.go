package experiments

import (
	"errors"
	"fmt"
	"math"

	"bitspread/internal/bias"
	"bitspread/internal/engine"
	"bitspread/internal/markov"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
	"bitspread/internal/sim"
	"bitspread/internal/stats"
	"bitspread/internal/table"
)

// table1LowerBound reproduces Theorem 1/12: with constant sample size,
// no memory-less protocol converges within n^{1-ε} rounds from the
// adversarial configuration the proof constructs — while the large-sample
// Minority of [15] does (contrast row).
func table1LowerBound() Experiment {
	return Experiment{
		ID:    "T1",
		Title: "Theorem 1: constant-ℓ protocols need almost-linear time",
		Claim: "from the adversarial start, drift-trapped constant-ℓ rules never converge within n^0.9 rounds; the driftless Voter's τ scales as n^≈1 (almost-linear); Minority with ℓ=√(n ln n) beats the budget easily",
		Run: func(opts Options) (*Result, error) {
			ns := pick(opts, []int64{128, 256, 512, 1024}, []int64{1024, 4096, 16384, 65536})
			replicas := pick(opts, 20, 80)
			const budgetExp = 0.9 // budget n^{1-ε} with ε = 0.1

			// Part A: convergence rate within the n^0.9 budget.
			rules := []struct {
				name  string
				build func(n int64) *protocol.Rule
				kind  string // "trapped", "driftless", "fast"
			}{
				{"Voter(ℓ=1)", func(int64) *protocol.Rule { return protocol.Voter(1) }, "driftless"},
				{"Minority(ℓ=3)", func(int64) *protocol.Rule { return protocol.Minority(3) }, "trapped"},
				{"Minority(ℓ=5)", func(int64) *protocol.Rule { return protocol.Minority(5) }, "trapped"},
				{"Majority(ℓ=3)", func(int64) *protocol.Rule { return protocol.Majority(3) }, "trapped"},
				{"Minority(ℓ=√(n·ln n))", func(n int64) *protocol.Rule {
					return protocol.Minority(protocol.SqrtNLogN(1).Of(n))
				}, "fast"},
			}
			tb := table.New("T1 — convergence within the n^0.9 budget from the Theorem 12 adversarial start",
				"rule", "n", "budget", "P(converge) [95% CI]")
			trappedMax, fastMin := 0.0, 1.0
			for _, rl := range rules {
				for _, n := range ns {
					budget := polyCap(n, budgetExp)
					r := rl.build(n)
					var cfg engine.Config
					if rl.kind == "fast" {
						// The fast protocol must beat the same budget from
						// its hardest start (all wrong).
						cfg = worstCaseTask(r, n, 1, budget)
					} else {
						cfg = adversarialTask(r, n, budget)
						if rl.kind == "trapped" {
							// Start mid-interval: the proof's X₀=(a₂+a₃)/2
							// sits within O(1) agents of the consensus at
							// small n (a₂ = y(a₁,ℓ) ≈ 1), which lets a
							// single lucky round finish — a finite-size
							// artifact, not an escape of the drift trap.
							cfg2, c := engine.AdversarialConfig(r, n, budget)
							mid := (c.A1 + c.A3) / 2
							cfg2.X0 = int64(mid * float64(n))
							cfg = cfg2
						}
					}
					m, err := measure(opts, rl.name, cfg, sim.Parallel, replicas, uint64(n)+hash(rl.name))
					if err != nil {
						return nil, err
					}
					tb.AddRow(rl.name, fmt.Sprint(n), fmt.Sprint(budget), fmtRate(m))
					switch rl.kind {
					case "trapped":
						trappedMax = math.Max(trappedMax, m.rate)
					case "fast":
						fastMin = math.Min(fastMin, m.rate)
					}
				}
			}
			tb.AddNote("adversarial start per Theorem 12 proof constants; budget = ⌈n^%.1f⌉ rounds", budgetExp)

			// Part B: the Voter's uncapped convergence-time exponent from
			// the Lemma 11 start. Theorem 1 predicts ≥ 1-ε for every ε;
			// the true Voter scaling here is Θ(n) (exponent ≈ 1).
			var xs, ys []float64
			for _, n := range ns {
				cfg := adversarialTask(protocol.Voter(1), n, 0)
				m, err := measure(opts, "voter-exponent", cfg, sim.Parallel, replicas, uint64(n)*13)
				if err != nil {
					return nil, err
				}
				xs = append(xs, float64(n))
				ys = append(ys, m.meanTau)
			}
			fit, err := stats.FitPower(xs, ys)
			if err != nil {
				return nil, err
			}
			tb.AddNote("Voter τ̄ scaling fit: τ ≈ %.2f·n^%.3f (R²=%.3f); Theorem 1 demands exponent ≥ 1-ε", fit.Coeff, fit.Exponent, fit.R2)

			verdict := fmt.Sprintf(
				"drift-trapped constant-ℓ rules: max convergence rate %.3f within n^0.9 (paper: 0); Voter exponent %.3f (paper: ≈1); big-sample Minority min rate %.3f (paper: 1)",
				trappedMax, fit.Exponent, fastMin)
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"trapped_rate_max":    trappedMax,
					"voter_tau_exponent":  fit.Exponent,
					"voter_fit_r2":        fit.R2,
					"big_sample_rate_min": fastMin,
				},
				Verdict: verdict,
			}, nil
		},
	}
}

// table2VoterUpper reproduces Theorem 2: the Voter solves bit
// dissemination in O(n log n) rounds w.h.p., from the worst-case start.
func table2VoterUpper() Experiment {
	return Experiment{
		ID:    "T2",
		Title: "Theorem 2: Voter converges in O(n log n) rounds",
		Claim: "τ/(n·ln n) stays bounded as n grows; all runs converge",
		Run: func(opts Options) (*Result, error) {
			ns := pick(opts, []int64{128, 512, 2048}, []int64{1024, 4096, 16384, 65536})
			replicas := pick(opts, 15, 60)
			tb := table.New("T2 — Voter convergence from the all-wrong start (z=1, X₀=1)",
				"n", "P(converge)", "mean τ", "p99 τ", "τ̄/(n·ln n)")
			var ratios []float64
			minRate := 1.0
			for _, n := range ns {
				cfg := worstCaseTask(protocol.Voter(1), n, 1, 0)
				m, err := measure(opts, "voter-upper", cfg, sim.Parallel, replicas, uint64(n))
				if err != nil {
					return nil, err
				}
				ratio := m.meanTau / (float64(n) * math.Log(float64(n)))
				ratios = append(ratios, ratio)
				if m.rate < minRate {
					minRate = m.rate
				}
				tb.AddRowf(n, m.rate, m.meanTau, m.p99Tau, ratio)
			}
			maxRatio := 0.0
			for _, r := range ratios {
				maxRatio = math.Max(maxRatio, r)
			}
			growth := ratios[len(ratios)-1] / ratios[0]
			tb.AddNote("Theorem 2 predicts a bounded τ/(n ln n) ratio; growth across the sweep = %.2f×", growth)
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"min_rate":     minRate,
					"max_ratio":    maxRatio,
					"ratio_growth": growth,
				},
				Verdict: fmt.Sprintf("all runs converged (min rate %.2f); τ/(n ln n) ≤ %.2f with %.2f× drift across the sweep (paper: bounded)",
					minRate, maxRatio, growth),
			}, nil
		},
	}
}

// table3MinorityBigSample reproduces the [15] context result: Minority
// with ℓ = Ω(√(n log n)) converges in O(log² n) rounds — exponentially
// faster than any constant-ℓ protocol (the separation motivating the
// paper's question).
func table3MinorityBigSample() Experiment {
	return Experiment{
		ID:    "T3",
		Title: "[15]: Minority with ℓ=√(n ln n) converges in O(log² n) rounds",
		Claim: "τ/ln²n bounded; speedup over the Voter grows with n",
		Run: func(opts Options) (*Result, error) {
			ns := pick(opts, []int64{256, 1024, 4096}, []int64{1024, 8192, 65536, 262144})
			replicas := pick(opts, 15, 50)
			tb := table.New("T3 — Minority[ℓ=⌈√(n ln n)⌉] vs Voter from the all-wrong start",
				"n", "ℓ", "minority τ̄", "τ̄/ln²n", "voter τ̄", "speedup")
			var ratios, speedups []float64
			minRate := 1.0
			for _, n := range ns {
				ell := protocol.SqrtNLogN(1).Of(n)
				logn := math.Log(float64(n))
				mMin, err := measure(opts, "minority-big",
					worstCaseTask(protocol.Minority(ell), n, 1, int64(400*logn*logn)),
					sim.Parallel, replicas, uint64(n)*3)
				if err != nil {
					return nil, err
				}
				mVot, err := measure(opts, "voter-ref",
					worstCaseTask(protocol.Voter(1), n, 1, 0),
					sim.Parallel, replicas, uint64(n)*5)
				if err != nil {
					return nil, err
				}
				ratio := mMin.meanTau / (logn * logn)
				speedup := mVot.meanTau / mMin.meanTau
				ratios = append(ratios, ratio)
				speedups = append(speedups, speedup)
				minRate = math.Min(minRate, mMin.rate)
				tb.AddRowf(n, ell, mMin.meanTau, ratio, mVot.meanTau, speedup)
			}
			maxRatio := 0.0
			for _, r := range ratios {
				maxRatio = math.Max(maxRatio, r)
			}
			speedupGrowth := speedups[len(speedups)-1] / speedups[0]
			tb.AddNote("speedup = voter τ̄ / minority τ̄ must grow with n (exponential separation)")
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"min_rate":       minRate,
					"max_ratio":      maxRatio,
					"speedup_growth": speedupGrowth,
				},
				Verdict: fmt.Sprintf("minority converged always (min rate %.2f), τ/ln²n ≤ %.1f; speedup grew %.1f× across the sweep",
					minRate, maxRatio, speedupGrowth),
			}, nil
		},
	}
}

// table4Sequential reproduces the [14] context result through exact
// birth–death hitting times: in the sequential setting every protocol
// needs Ω(n) parallel rounds, regardless of the sample size.
func table4Sequential() Experiment {
	return Experiment{
		ID:    "T4",
		Title: "[14]: sequential setting needs Ω(n) parallel rounds for every ℓ",
		Claim: "exact E[τ]/n bounded below by a constant for all rules and sample sizes",
		Run: func(opts Options) (*Result, error) {
			ns := pick(opts, []int64{64, 256, 1024}, []int64{256, 1024, 4096, 16384})
			tb := table.New("T4 — exact sequential expected convergence (worst start, z=1), in parallel rounds",
				"rule", "n", "E[τ] rounds", "E[τ]/n")
			minRatio := math.Inf(1)
			families := []struct {
				name  string
				build func(n int64) *protocol.Rule
			}{
				{"Voter(ℓ=1)", func(int64) *protocol.Rule { return protocol.Voter(1) }},
				{"Voter(ℓ=√(n·ln n))", func(n int64) *protocol.Rule {
					return protocol.Voter(protocol.SqrtNLogN(1).Of(n))
				}},
				{"Minority(ℓ=√(n·ln n))", func(n int64) *protocol.Rule {
					return protocol.Minority(protocol.SqrtNLogN(1).Of(n))
				}},
			}
			for _, fam := range families {
				for _, n := range ns {
					bd, err := markov.SequentialBirthDeath(fam.build(n), n, 1)
					if err != nil {
						return nil, err
					}
					rounds := bd.ExpectedTimeUp(1, int(n)) / float64(n)
					ratio := rounds / float64(n)
					if !math.IsInf(rounds, 1) {
						minRatio = math.Min(minRatio, ratio)
					}
					tb.AddRowf(fam.name, n, rounds, ratio)
				}
			}
			tb.AddNote("closed-form birth–death hitting times (no Monte-Carlo error)")
			tb.AddNote("sequential Minority values beyond float64 print as +Inf (≥1e308): without synchronous rounds its oscillation mechanism is gone and the trap is exponential — the [14]/[15] separation, exactly")
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"min_rounds_per_n": minRatio,
				},
				Verdict: fmt.Sprintf("E[τ]/n ≥ %.3f across all rules and sizes (paper: Ω(1)·n rounds, i.e. ratio bounded below)", minRatio),
			}, nil
		},
	}
}

// table5Prop3 reproduces Proposition 3: a rule with g[0](0) > 0 (or
// g[1](ℓ) < 1) cannot hold a consensus, so it fails the problem outright.
func table5Prop3() Experiment {
	return Experiment{
		ID:    "T5",
		Title: "Proposition 3: consensus must be absorbing",
		Claim: "rules violating g[0](0)=0 escape the correct consensus almost immediately",
		Run: func(opts Options) (*Result, error) {
			n := pick(opts, int64(256), int64(4096))
			horizon := pick(opts, int64(200), int64(2000))
			replicas := pick(opts, 30, 200)
			rules := []*protocol.Rule{
				protocol.WithNoise(protocol.Voter(1), 0.02),
				protocol.AntiVoter(3),
				protocol.MustNew("leaky", 2, []float64{0.05, 0.5, 1}, []float64{0, 0.5, 1}),
				protocol.Voter(1), // control: satisfies Prop 3
			}
			tb := table.New("T5 — escape from the correct consensus (z=0, start at consensus)",
				"rule", "violates Prop 3", "P(escape ≤ horizon)", "mean escape round")
			maxViolatorStay, controlEscape := 0.0, 0.0
			for i, r := range rules {
				violates := errors.Is(r.CheckProp3(), protocol.ErrProp3)
				escapes := 0
				var escapeRounds []float64
				master := rng.New(subSeed(opts, uint64(i)+99))
				for rep := 0; rep < replicas; rep++ {
					g := master.Split()
					x := int64(0) // consensus on z=0
					for t := int64(1); t <= horizon; t++ {
						x = engine.StepCount(r, n, 0, x, g)
						if x != 0 {
							escapes++
							escapeRounds = append(escapeRounds, float64(t))
							break
						}
					}
				}
				rate := float64(escapes) / float64(replicas)
				meanEscape := math.NaN()
				if len(escapeRounds) > 0 {
					meanEscape = stats.Summarize(escapeRounds).Mean
				}
				tb.AddRowf(r.Name(), violates, rate, meanEscape)
				if violates {
					maxViolatorStay = math.Max(maxViolatorStay, 1-rate)
				} else {
					controlEscape = rate
				}
			}
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"max_violator_stay_prob": maxViolatorStay,
					"control_escape_prob":    controlEscape,
				},
				Verdict: fmt.Sprintf("violators stayed in consensus with probability ≤ %.3f (paper: 0 a.s.); valid control escaped with probability %.3f (paper: 0)",
					maxViolatorStay, controlEscape),
			}, nil
		},
	}
}

// table6JumpBound reproduces Proposition 4: from X_t ≤ c·n the next count
// stays below y(c,ℓ)·n = (1 - (1-c)^{ℓ+1}/2)·n up to exp(-2√n) failure.
func table6JumpBound() Experiment {
	return Experiment{
		ID:    "T6",
		Title: "Proposition 4: one-round jumps are bounded",
		Claim: "max X_{t+1}/n over many trials never exceeds y(c,ℓ)",
		Run: func(opts Options) (*Result, error) {
			n := pick(opts, int64(2048), int64(65536))
			trials := pick(opts, 400, 4000)
			tb := table.New("T6 — one-round jump from X_t = c·n vs the y(c,ℓ) bound",
				"rule", "c", "y(c,ℓ)", "max observed X₊/n", "violations")
			totalViolations := 0
			rules := []*protocol.Rule{
				protocol.Voter(3), protocol.Minority(3), protocol.Minority(7), protocol.TwoChoice(),
			}
			cs := []float64{0.1, 0.3, 0.5, 0.7}
			for i, r := range rules {
				// Prop 4 only needs Prop 3 (g[0](0)=0); all rules here satisfy it.
				for _, c := range cs {
					y := prop4Y(c, r.SampleSize())
					x0 := int64(c * float64(n))
					if x0 < 1 {
						x0 = 1
					}
					g := rng.New(subSeed(opts, uint64(i)*31+uint64(c*100)))
					maxFrac := 0.0
					violations := 0
					for tr := 0; tr < trials; tr++ {
						next := engine.StepCount(r, n, 1, x0, g)
						frac := float64(next) / float64(n)
						maxFrac = math.Max(maxFrac, frac)
						if frac > y {
							violations++
						}
					}
					totalViolations += violations
					tb.AddRowf(r.Name(), c, y, maxFrac, violations)
				}
			}
			tb.AddNote("prediction: 0 violations (failure probability exp(-2√n) ≈ %.1e at n=%d)",
				math.Exp(-2*math.Sqrt(float64(n))), n)
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"violations": float64(totalViolations),
				},
				Verdict: fmt.Sprintf("%d violations of the Prop 4 bound across all cells (paper: 0 w.h.p.)", totalViolations),
			}, nil
		},
	}
}

// prop4Y mirrors dist.Prop4Y without importing dist here (kept local to
// make the experiment self-describing).
func prop4Y(c float64, ell int) float64 {
	return 1 - math.Pow(1-c, float64(ell)+1)/2
}

// table7Drift reproduces Proposition 5 exactly: the conditional
// expectation of the next count, computed from the exact transition rows,
// lies within ±1 of x + n·F(x/n) for every state and rule.
func table7Drift() Experiment {
	return Experiment{
		ID:    "T7",
		Title: "Proposition 5: drift identity |E[X₊] - x - nF(x/n)| ≤ 1",
		Claim: "exact deviation at most 1 for every feasible state and both source opinions",
		Run: func(opts Options) (*Result, error) {
			n := pick(opts, int64(60), int64(240))
			rules := []*protocol.Rule{
				protocol.Voter(2), protocol.Minority(3), protocol.Minority(4),
				protocol.Majority(3), protocol.TwoChoice(), protocol.BiasedVoter(3, 0.1),
			}
			tb := table.New("T7 — exact drift deviation vs the Proposition 5 bound (±1)",
				"rule", "z", "max |E[X₊] − x − nF(x/n)|", "bound holds")
			worst := 0.0
			for _, r := range rules {
				a := bias.For(r)
				for _, z := range []int{0, 1} {
					chain, err := markov.ParallelChain(r, n, z)
					if err != nil {
						return nil, err
					}
					maxDev := 0.0
					for x := int64(z); x <= n-1+int64(z); x++ {
						mean := 0.0
						for y := int64(0); y <= n; y++ {
							mean += float64(y) * chain.Prob(int(x), int(y))
						}
						dev := math.Abs(mean - a.ExpectedNext(n, x))
						maxDev = math.Max(maxDev, dev)
					}
					worst = math.Max(worst, maxDev)
					tb.AddRowf(r.Name(), z, maxDev, maxDev <= 1+1e-9)
				}
			}
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"max_deviation": worst,
				},
				Verdict: fmt.Sprintf("max exact deviation = %.6f (paper: ≤ 1)", worst),
			}, nil
		},
	}
}

// hash gives a small deterministic salt from a name.
func hash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
