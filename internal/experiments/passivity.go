package experiments

import (
	"fmt"
	"math"

	"bitspread/internal/gossip"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
	"bitspread/internal/sim"
	"bitspread/internal/stats"
	"bitspread/internal/table"
)

// x8PricePassivity contrasts the paper's passive-communication model
// against classical active rumor spreading: with active push&pull a
// single informed agent reaches everyone in Θ(log n) rounds, while the
// passive memory-less Voter needs Θ(n log n) (Theorem 2) and no passive
// memory-less constant-ℓ protocol can beat n^{1-ε} (Theorem 1). The gap
// is the price of the model's defining constraint (§1: agents "can only
// disclose their current decision", after [7, 8]).
func x8PricePassivity() Experiment {
	return Experiment{
		ID:    "X8",
		Title: "The price of passivity: active gossip vs passive bit dissemination",
		Claim: "push&pull completes in Θ(log n) rounds; the passive Voter needs Θ(n log n): the gap grows ~n",
		Run: func(opts Options) (*Result, error) {
			ns := pick(opts, []int64{1024, 4096, 16384}, []int64{4096, 32768, 262144})
			replicas := pick(opts, 15, 50)
			tb := table.New("X8 — rounds to full dissemination from a single informed agent",
				"n", "push&pull (active)", "/log₂n", "Voter (passive)", "gap factor")
			var gapNs, gaps []float64
			maxLogRatio := 0.0
			for _, n := range ns {
				master := rng.New(subSeed(opts, uint64(n)*23))
				var active []float64
				for rep := 0; rep < replicas; rep++ {
					res, err := gossip.Spread(gossip.Config{
						N: n, Informed0: 1, Mode: gossip.PushPull,
					}, master.Split())
					if err != nil {
						return nil, err
					}
					if !res.Completed {
						return nil, fmt.Errorf("experiments: X8 gossip did not complete at n=%d", n)
					}
					active = append(active, float64(res.Rounds))
				}
				activeMean := stats.Summarize(active).Mean
				logRatio := activeMean / math.Log2(float64(n))
				maxLogRatio = math.Max(maxLogRatio, logRatio)

				m, err := measure(opts, "x8-voter",
					worstCaseTask(protocol.Voter(1), n, 1, 0),
					sim.Parallel, replicas, uint64(n)*29)
				if err != nil {
					return nil, err
				}
				gap := m.meanTau / activeMean
				gapNs = append(gapNs, float64(n))
				gaps = append(gaps, gap)
				tb.AddRowf(n, activeMean, logRatio, m.meanTau, gap)
			}
			fit, err := stats.FitPower(gapNs, gaps)
			if err != nil {
				return nil, err
			}
			tb.AddNote("gap-factor scaling: ~n^%.2f (prediction: ≈1, the active/passive separation is linear in n)", fit.Exponent)
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"active_per_log2n": maxLogRatio,
					"gap_exponent":     fit.Exponent,
				},
				Verdict: fmt.Sprintf(
					"active push&pull ≤ %.2f·log₂n rounds; passive/active gap grows as n^%.2f (paper: the passivity constraint costs a ~linear factor)",
					maxLogRatio, fit.Exponent),
			}, nil
		},
	}
}
