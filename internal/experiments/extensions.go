package experiments

import (
	"fmt"
	"math"

	"bitspread/internal/engine"
	"bitspread/internal/protocol"
	"bitspread/internal/rng"
	"bitspread/internal/sim"
	"bitspread/internal/table"
)

// x1Threshold probes the paper's open question (§1.2, §5): between the
// Ω(1) lower bound and the O(√(n log n)) upper bound, at what sample size
// does the Minority dynamics become fast? The paper notes that
// "simulations suggest that its convergence might be fast even when the
// sample size is qualitatively small".
func x1Threshold() Experiment {
	return Experiment{
		ID:    "X1",
		Title: "Open question: Minority's sample-size threshold",
		Claim: "convergence within a polylog budget switches on well below ℓ=√(n ln n)",
		Run: func(opts Options) (*Result, error) {
			n := pick(opts, int64(2048), int64(65536))
			replicas := pick(opts, 12, 50)
			logn := math.Log(float64(n))
			budget := int64(60 * logn * logn) // a generous polylog budget
			sqrtEll := protocol.SqrtNLogN(1).Of(n)

			ells := []int{1, 2, 3, 5, 8, 13, 21, 34, 55}
			for _, extra := range []int{sqrtEll / 4, sqrtEll / 2, sqrtEll} {
				if extra > ells[len(ells)-1] {
					ells = append(ells, extra)
				}
			}

			tb := table.New(fmt.Sprintf("X1 — Minority convergence within a polylog budget (n=%d, budget=%d rounds, all-wrong start)", n, budget),
				"ℓ", "P(converge) [95% CI]", "mean τ (converged)")
			smallest := math.Inf(1)
			rateAtSqrt := 0.0
			for _, ell := range ells {
				cfg := worstCaseTask(protocol.Minority(ell), n, 1, budget)
				m, err := measure(opts, "x1", cfg, sim.Parallel, replicas, uint64(ell)*101)
				if err != nil {
					return nil, err
				}
				tb.AddRow(fmt.Sprint(ell), fmtRate(m), fmtF(m.meanTau))
				if m.rate >= 0.9 && float64(ell) < smallest {
					smallest = float64(ell)
				}
				if ell == sqrtEll {
					rateAtSqrt = m.rate
				}
			}
			tb.AddNote("√(n ln n) = %d for this n; the proof in [15] needs ℓ ≥ that", sqrtEll)
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"smallest_fast_ell": smallest,
					"sqrt_ell":          float64(sqrtEll),
					"rate_at_sqrt_ell":  rateAtSqrt,
				},
				Verdict: fmt.Sprintf("smallest ℓ with ≥90%% convergence inside the polylog budget: %v (vs ℓ=√(n ln n)=%d required by the [15] analysis)",
					fmtF(smallest), sqrtEll),
			}, nil
		},
	}
}

// x2MajorityFails demonstrates the §1 remark that majority-like dynamics
// "lack sensitivity towards an informed individual, and in fact, fail in
// general to solve the bit-dissemination problem": from a wrong-leaning
// start, Majority locks the wrong consensus, while Minority with the same
// large sample size recovers.
func x2MajorityFails() Experiment {
	return Experiment{
		ID:    "X2",
		Title: "Majority dynamics fails bit dissemination",
		Claim: "from a wrong-leaning start Majority converges to the wrong consensus; Minority (large ℓ) still solves the instance",
		Run: func(opts Options) (*Result, error) {
			n := pick(opts, int64(1024), int64(16384))
			replicas := pick(opts, 20, 100)
			ell := protocol.SqrtNLogN(1).Of(n)
			// Both rules converge (when they do) in polylog rounds at this
			// sample size; a generous polylog budget keeps trapped Majority
			// runs from burning an O(n log n) default cap.
			logn := math.Log(float64(n))
			budget := int64(200 * logn * logn)
			starts := []struct {
				name string
				frac float64
			}{
				{"25% correct", 0.25},
				{"40% correct", 0.40},
				{"all wrong", 0.0},
			}
			tb := table.New(fmt.Sprintf("X2 — correct opinion z=1, n=%d: Majority vs Minority from wrong-leaning starts", n),
				"start", "rule", "P(correct consensus)", "P(wrong consensus visit)")
			majorityWorst, minorityWorst := 1.0, 1.0
			for _, st := range starts {
				x0 := int64(st.frac * float64(n))
				if x0 < 1 {
					x0 = 1
				}
				for _, rl := range []*protocol.Rule{protocol.Majority(ell), protocol.Minority(ell)} {
					cfg := engine.Config{N: n, Rule: rl, Z: 1, X0: x0, MaxRounds: budget}
					m, err := measure(opts, "x2", cfg, sim.Parallel, replicas, uint64(x0)+hash(rl.Name()))
					if err != nil {
						return nil, err
					}
					wrongVisits := 0
					for _, res := range m.out.Results {
						if res.HitWrongConsensus {
							wrongVisits++
						}
					}
					tb.AddRowf(st.name, rl.Name(), m.rate, float64(wrongVisits)/float64(replicas))
					if rl.Name() == "Majority" {
						majorityWorst = math.Min(majorityWorst, m.rate)
					} else {
						minorityWorst = math.Min(minorityWorst, m.rate)
					}
				}
			}
			tb.AddNote("both rules use ℓ=√(n ln n)=%d: the gap is about source sensitivity, not sample size", ell)
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"majority_worst_rate": majorityWorst,
					"minority_worst_rate": minorityWorst,
				},
				Verdict: fmt.Sprintf("Majority worst-case success %.2f (paper: fails); Minority worst-case success %.2f (paper: solves)",
					majorityWorst, minorityWorst),
			}, nil
		},
	}
}

// x3SampleSizeBoundary demonstrates the §1.2 obstruction to extending the
// lower bound past ℓ = Ω(log n): with logarithmic samples a protocol can
// cross a constant-width interval of the configuration space in a single
// round w.h.p. — exactly what Proposition 4 forbids for constant ℓ.
func x3SampleSizeBoundary() Experiment {
	return Experiment{
		ID:    "X3",
		Title: "Why the technique stops at ℓ=Ω(log n): one-round teleports",
		Claim: "P(X jumps 0.2n → ≥0.9n in one round) ≈ 0 for constant ℓ but → 1 for ℓ = 6·ln n (rule: adopt 1 on any 1-sample)",
		Run: func(opts Options) (*Result, error) {
			ns := pick(opts, []int64{512, 2048}, []int64{4096, 65536, 1048576})
			trials := pick(opts, 300, 2000)
			tb := table.New("X3 — one-round jump probability from X=0.2n to ≥0.9n (rule: Follower(θ=1))",
				"ℓ schedule", "n", "ℓ", "P(teleport)")
			maxConstant, minLog := 0.0, 1.0
			schedules := []struct {
				name string
				of   func(n int64) int
				kind string
			}{
				{"constant ℓ=4", func(int64) int { return 4 }, "const"},
				{"constant ℓ=8", func(int64) int { return 8 }, "const"},
				{"ℓ=⌈6·ln n⌉", func(n int64) int { return protocol.LogN(6).Of(n) }, "log"},
			}
			for _, sc := range schedules {
				for _, n := range ns {
					ell := sc.of(n)
					r := protocol.Follower(ell, 1)
					x0 := int64(0.2 * float64(n))
					g := rng.New(subSeed(opts, uint64(n)+hash(sc.name)))
					jumps := 0
					for tr := 0; tr < trials; tr++ {
						if float64(engine.StepCount(r, n, 1, x0, g)) >= 0.9*float64(n) {
							jumps++
						}
					}
					rate := float64(jumps) / float64(trials)
					tb.AddRowf(sc.name, n, ell, rate)
					if sc.kind == "const" {
						maxConstant = math.Max(maxConstant, rate)
					} else {
						minLog = math.Min(minLog, rate)
					}
				}
			}
			tb.AddNote("Proposition 4 bounds one-round growth for constant ℓ; with ℓ=Θ(log n) the bound's premise fails")
			return &Result{
				Table: tb,
				Metrics: map[string]float64{
					"const_teleport_max": maxConstant,
					"log_teleport_min":   minLog,
				},
				Verdict: fmt.Sprintf("constant-ℓ teleport probability ≤ %.4f (paper: exp(-Ω(√n))); log-ℓ teleport probability ≥ %.3f (paper: →1)",
					maxConstant, minLog),
			}, nil
		},
	}
}
