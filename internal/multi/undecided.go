package multi

import "fmt"

// UndecidedOpinion is the auxiliary third state of the undecided-state
// dynamics: opinions 0 and 1 are the decided ones, 2 marks "undecided".
const UndecidedOpinion = 2

// Undecided returns the classical undecided-state dynamics (USD, see the
// consensus survey [17] cited in §1) over one sample:
//
//   - a decided agent that samples the opposite decided opinion becomes
//     undecided;
//   - an undecided agent adopts the first decided opinion it samples;
//   - all other encounters leave the agent unchanged.
//
// With ℓ > 1 the rule processes the sample as a whole: a decided agent
// turns undecided iff it saw the opposite opinion at least once and its
// own not at all; an undecided agent adopts the decided majority of its
// sample (ties stay undecided).
//
// Note: the undecided state is *adopted without being seen*, so the rule
// deliberately violates the footnote 2 support constraint (Validate
// rejects it) — it is the paper's example of how auxiliary states smuggle
// in extra communication. USD amplifies the initial decided majority, so
// like Majority it fails bit dissemination from wrong-leaning starts.
func Undecided(ell int) Rule {
	return undecidedRule{ell: ell}
}

type undecidedRule struct{ ell int }

func (r undecidedRule) Name() string    { return fmt.Sprintf("Undecided(ℓ=%d)", r.ell) }
func (r undecidedRule) Opinions() int   { return 3 }
func (r undecidedRule) SampleSize() int { return r.ell }

func (r undecidedRule) AdoptDist(b int, counts []int) []float64 {
	d := make([]float64, 3)
	zeros, ones := counts[0], counts[1]
	switch b {
	case 0, 1:
		own, other := zeros, ones
		if b == 1 {
			own, other = ones, zeros
		}
		if other > 0 && own == 0 {
			d[UndecidedOpinion] = 1 // confronted without support: waver
		} else {
			d[b] = 1
		}
	default: // undecided
		switch {
		case zeros > ones:
			d[0] = 1
		case ones > zeros:
			d[1] = 1
		default:
			d[UndecidedOpinion] = 1 // includes the all-undecided sample
		}
	}
	return d
}
