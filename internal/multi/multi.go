// Package multi generalizes the model to q ≥ 2 opinions, the setting of
// the paper's footnote 2: Theorem 1 "also holds when agents can choose
// from more than 2 opinions, provided that they may not adopt an opinion
// that they have never seen or adopted", because a binary initial
// configuration then evolves exactly as a binary protocol — a reduction
// this package makes executable (experiment X5).
//
// A multi-opinion rule maps the agent's opinion and the sampled count
// vector (how many of each opinion appeared among the ℓ samples) to a
// distribution over next opinions whose support is contained in
// {seen opinions} ∪ {own opinion}. The exact count-level engine mirrors
// the binary one: conditioned on the configuration, the agents of each
// opinion class transition independently, so per-class transition counts
// are multinomial.
package multi

import (
	"errors"
	"fmt"
	"math"
)

// Rule is a memory-less multi-opinion update rule.
type Rule interface {
	// Name returns a display name.
	Name() string
	// Opinions returns q, the number of opinions.
	Opinions() int
	// SampleSize returns ℓ.
	SampleSize() int
	// AdoptDist returns the distribution over next opinions for an agent
	// holding opinion b that sampled the given count vector (counts has
	// length q and sums to ℓ). The returned slice must sum to 1 and must
	// be supported on {j : counts[j] > 0} ∪ {b} (footnote 2).
	AdoptDist(b int, counts []int) []float64
}

// ErrSupport is returned by Validate when a rule can adopt an unseen
// opinion, violating the footnote 2 constraint.
var ErrSupport = errors.New("multi: rule adopts an opinion it has not seen")

// Validate checks a rule's distributions over every sample profile: they
// must be probability vectors respecting the support constraint. Cost is
// O(q · #profiles); profiles number C(ℓ+q-1, q-1).
func Validate(r Rule) error {
	q, ell := r.Opinions(), r.SampleSize()
	if q < 2 {
		return fmt.Errorf("multi: rule %q has %d opinions, need at least 2", r.Name(), q)
	}
	if ell < 1 {
		return fmt.Errorf("multi: rule %q has sample size %d", r.Name(), ell)
	}
	var err error
	enumerateProfiles(q, ell, func(counts []int) {
		if err != nil {
			return
		}
		for b := 0; b < q; b++ {
			d := r.AdoptDist(b, counts)
			if len(d) != q {
				err = fmt.Errorf("multi: rule %q returned %d-length distribution", r.Name(), len(d))
				return
			}
			sum := 0.0
			for j, p := range d {
				if p < 0 || p > 1 {
					err = fmt.Errorf("multi: rule %q probability %v out of range", r.Name(), p)
					return
				}
				if p > 0 && counts[j] == 0 && j != b {
					err = fmt.Errorf("%w (rule %q, opinion %d, profile %v, target %d)",
						ErrSupport, r.Name(), b, counts, j)
					return
				}
				sum += p
			}
			if sum < 1-1e-9 || sum > 1+1e-9 {
				err = fmt.Errorf("multi: rule %q distribution sums to %v", r.Name(), sum)
				return
			}
		}
	})
	return err
}

// enumerateProfiles calls fn for every count vector of length q summing
// to ell. The slice is reused; fn must not retain it.
func enumerateProfiles(q, ell int, fn func(counts []int)) {
	counts := make([]int, q)
	var rec func(pos, left int)
	rec = func(pos, left int) {
		if pos == q-1 {
			counts[pos] = left
			fn(counts)
			return
		}
		for v := 0; v <= left; v++ {
			counts[pos] = v
			rec(pos+1, left-v)
		}
	}
	rec(0, ell)
}

// Voter returns the q-opinion Voter: adopt the opinion of one uniformly
// random sample. With binary opinions it coincides with the classical
// Voter dynamics.
func Voter(q, ell int) Rule {
	return voterRule{q: q, ell: ell}
}

type voterRule struct{ q, ell int }

func (r voterRule) Name() string    { return fmt.Sprintf("MultiVoter(q=%d)", r.q) }
func (r voterRule) Opinions() int   { return r.q }
func (r voterRule) SampleSize() int { return r.ell }

func (r voterRule) AdoptDist(b int, counts []int) []float64 {
	d := make([]float64, r.q)
	for j, c := range counts {
		d[j] = float64(c) / float64(r.ell)
	}
	return d
}

// Minority returns the q-opinion Minority: adopt the least frequent
// opinion among those present in the sample (the unanimous opinion if
// only one is present), ties broken uniformly among the tied minima.
// Restricted to binary configurations it coincides with Protocol 2.
func Minority(q, ell int) Rule {
	return minorityRule{q: q, ell: ell}
}

type minorityRule struct{ q, ell int }

func (r minorityRule) Name() string    { return fmt.Sprintf("MultiMinority(q=%d)", r.q) }
func (r minorityRule) Opinions() int   { return r.q }
func (r minorityRule) SampleSize() int { return r.ell }

func (r minorityRule) AdoptDist(b int, counts []int) []float64 {
	d := make([]float64, r.q)
	minCount := r.ell + 1
	for _, c := range counts {
		if c > 0 && c < minCount {
			minCount = c
		}
	}
	if minCount > r.ell {
		// Empty profile cannot occur for ℓ >= 1; keep own opinion to stay
		// total just in case.
		d[b] = 1
		return d
	}
	ties := 0
	for _, c := range counts {
		if c == minCount {
			ties++
		}
	}
	for j, c := range counts {
		if c == minCount {
			d[j] = 1 / float64(ties)
		}
	}
	return d
}

// StayRule keeps the current opinion regardless of the sample — a
// degenerate control that trivially satisfies the support constraint and
// never converges (used in tests).
func StayRule(q, ell int) Rule { return stayRule{q: q, ell: ell} }

type stayRule struct{ q, ell int }

func (r stayRule) Name() string    { return fmt.Sprintf("Stay(q=%d)", r.q) }
func (r stayRule) Opinions() int   { return r.q }
func (r stayRule) SampleSize() int { return r.ell }

func (r stayRule) AdoptDist(b int, counts []int) []float64 {
	d := make([]float64, r.q)
	d[b] = 1
	return d
}

// multinomialPMF returns the probability of the sample profile counts
// when each of the ℓ draws lands in category j with probability p[j],
// computed in log space for stability.
func multinomialPMF(ell int, counts []int, p []float64) float64 {
	logCoef, _ := math.Lgamma(float64(ell) + 1)
	logP := logCoef
	for j, c := range counts {
		if c == 0 {
			continue
		}
		if p[j] <= 0 {
			return 0
		}
		lg, _ := math.Lgamma(float64(c) + 1)
		logP += float64(c)*math.Log(p[j]) - lg
	}
	return math.Exp(logP)
}
